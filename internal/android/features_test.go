package android

import (
	"strings"
	"testing"

	"droidracer/internal/hb"
	"droidracer/internal/race"
	"droidracer/internal/trace"
)

// detectRaces runs the analysis pipeline on the env's trace.
func detectRaces(t *testing.T, e *Env) []race.Race {
	t.Helper()
	tr := finish(t, e)
	info, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	return race.NewDetector(hb.Build(info, hb.DefaultConfig())).DetectDeduped()
}

// customQueueApp enqueues a conflicting writer and reader from two
// independent threads. The dispatch order of the two runnables is a real
// race (it depends on which enqueuer wins).
func customQueueApp(mapped bool) func() Activity {
	return func() Activity {
		return &customQueueAct{mapped: mapped}
	}
}

type customQueueAct struct {
	BaseActivity
	mapped bool
}

func (a *customQueueAct) OnResume(c *Ctx) {
	q := c.NewCustomQueue("dbq", a.mapped)
	c.Fork("writer-src", func(b *Ctx) {
		q.Enqueue(b, "update", func(w *Ctx) { w.Write("db.row") })
	})
	c.Fork("reader-src", func(b *Ctx) {
		q.Enqueue(b, "query", func(w *Ctx) { w.Read("db.row") })
	})
}

func TestCustomQueueHidesRealRace(t *testing.T) {
	// Unmapped: the worker is a plain thread; NO-Q-PO spuriously orders
	// the two runnables and the real dispatch race on db.row is MISSED —
	// the §6 false-negative mode.
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("A", func() Activity { return &customQueueAct{mapped: false} })
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	for _, r := range detectRaces(t, e) {
		if r.Loc == "db.row" {
			t.Fatalf("unmapped custom queue should hide the db.row race (false negative); got %v", r)
		}
	}
}

func TestMappedCustomQueueRecoversRace(t *testing.T) {
	// Mapped to the core language (the paper's proposed remedy), the same
	// construct exposes the race: the two posts are unordered.
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("A", func() Activity { return &customQueueAct{mapped: true} })
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	found := false
	for _, r := range detectRaces(t, e) {
		if r.Loc == "db.row" && r.Category == race.CrossPosted {
			found = true
		}
	}
	if !found {
		t.Fatal("mapped custom queue did not expose the cross-posted race")
	}
}

func TestCustomQueueRunsAllItems(t *testing.T) {
	var ran []string
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("A", func() Activity {
		return &testActivity{onResume: func(c *Ctx) {
			q := c.NewCustomQueue("jobs", false)
			for _, n := range []string{"a", "b", "c"} {
				n := n
				q.Enqueue(c, n, func(*Ctx) { ran = append(ran, n) })
			}
		}}
	})
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	if err := e.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(ran, ""); got != "abc" {
		t.Fatalf("ran = %q (same-source enqueues must stay ordered)", got)
	}
}

func TestIdleHandlerRunsWhenIdle(t *testing.T) {
	var order []string
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("A", func() Activity {
		return &testActivity{onResume: func(c *Ctx) {
			c.AddIdleHandler("warmCache", func(c *Ctx) {
				order = append(order, "idle")
				c.Write("cache.warm")
			})
			c.Env.MainHandler().Post(c, "regular", func(*Ctx) {
				order = append(order, "regular")
			})
		}}
	})
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	tr := finish(t, e)
	// The regular task runs first; the idle handler only when the queue
	// drained.
	if got := strings.Join(order, ","); got != "regular,idle" {
		t.Fatalf("order = %q", got)
	}
	// The idle handler's task is enabled at registration and posted by the
	// looper itself.
	enabled, posted := -1, -1
	for i, op := range tr.Ops() {
		if op.Task == "warmCache" {
			switch op.Kind {
			case trace.OpEnable:
				enabled = i
			case trace.OpPost:
				posted = i
				if op.Thread != e.Main().ID() {
					t.Fatalf("idle post by t%d, want main", op.Thread)
				}
			}
		}
	}
	if enabled < 0 || posted < 0 || enabled > posted {
		t.Fatalf("enable/post shape wrong: enable@%d post@%d", enabled, posted)
	}
}

func TestIntentService(t *testing.T) {
	var handled int
	var workerID trace.ThreadID
	e := NewEnv(DefaultOptions())
	e.RegisterService("Upload", func() Service {
		return &IntentService{Name: "Upload", OnHandleIntent: func(c *Ctx) {
			handled++
			workerID = c.T.ID()
			c.Write("upload.progress")
		}}
	})
	e.RegisterActivity("A", func() Activity {
		return &testActivity{onResume: func(c *Ctx) {
			c.StartService("Upload")
			c.StartService("Upload")
		}}
	})
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	finish(t, e)
	if handled != 2 {
		t.Fatalf("handled = %d, want 2", handled)
	}
	if workerID == e.Main().ID() {
		t.Fatal("intent handling ran on the main thread")
	}
}

func TestSchedulePeriodic(t *testing.T) {
	var ticks int
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("A", func() Activity {
		return &testActivity{onResume: func(c *Ctx) {
			c.SchedulePeriodic("poll", 50, 3, func(c *Ctx) {
				ticks++
				c.Write("poll.state")
			})
		}}
	})
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	tr := finish(t, e)
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
	// Each tick is enabled before its post: the §5 TimerTask connection.
	enables := 0
	for _, op := range tr.Ops() {
		if op.Kind == trace.OpEnable && strings.HasPrefix(string(op.Task), "poll.tick") {
			enables++
		}
	}
	if enables != 3 {
		t.Fatalf("tick enables = %d, want 3", enables)
	}
	// Consecutive ticks are happens-before ordered (no self-races).
	races := detectRacesOnTrace(t, tr)
	for _, r := range races {
		if r.Loc == "poll.state" {
			t.Fatalf("periodic ticks race: %v", r)
		}
	}
}

func detectRacesOnTrace(t *testing.T, tr *trace.Trace) []race.Race {
	t.Helper()
	info, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	return race.NewDetector(hb.Build(info, hb.DefaultConfig())).DetectDeduped()
}

func TestBroadcastInjection(t *testing.T) {
	var got []string
	opts := DefaultOptions()
	opts.EnableBroadcasts = true
	e := NewEnv(opts)
	e.RegisterActivity("A", func() Activity {
		return &testActivity{onResume: func(c *Ctx) {
			c.RegisterReceiver("net.change", func(c *Ctx, action string) {
				got = append(got, action)
			})
		}}
	})
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	evs := e.EnabledEvents()
	var bcast *UIEvent
	for i := range evs {
		if evs[i].Kind == EvBroadcast {
			bcast = &evs[i]
		}
	}
	if bcast == nil || bcast.Widget != "net.change" {
		t.Fatalf("broadcast event not offered: %v", evs)
	}
	if bcast.String() != "broadcast(net.change)" {
		t.Fatalf("event rendering = %q", bcast.String())
	}
	// Fire it twice: the receiver re-arms after each delivery.
	for i := 0; i < 2; i++ {
		if err := e.Fire(*bcast); err != nil {
			t.Fatal(err)
		}
		mustRun(t, e)
	}
	finish(t, e)
	if len(got) != 2 {
		t.Fatalf("deliveries = %v", got)
	}
}

func TestBroadcastInjectionRequiresReceiver(t *testing.T) {
	opts := DefaultOptions()
	opts.EnableBroadcasts = true
	e := NewEnv(opts)
	e.RegisterActivity("A", func() Activity { return &testActivity{} })
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	if err := e.Fire(UIEvent{Kind: EvBroadcast, Widget: "nope"}); err == nil {
		t.Fatal("broadcast with no receiver accepted")
	}
	e.Close()
}
