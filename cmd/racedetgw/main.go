// Command racedetgw is the fleet front door: a gateway that routes trace
// submissions across N racedetd backends by consistent-hashing the
// content-derived idempotency key, probes backend health and ejects
// failing peers, fails accepted-but-unacknowledged submissions over to
// the next live ring peer (with a reconcile handshake that reclaims
// in-doubt spool orphans on backend recovery), and serves duplicate
// submissions of completed work from a bounded result cache without
// touching any backend.
//
// Usage:
//
//	racedetgw -listen HOST:PORT -backends URL,URL,... [-probe-interval 1s]
//	          [-probe-timeout 1s] [-eject-after 3] [-max-failover N]
//	          [-cache-entries 1024] [-max-body BYTES] [-forward-timeout 30s]
//	          [-retry-after 10s] [-seed N] [-metrics-addr HOST:PORT]
//	          [-events PATH]
//
// The gateway speaks the same /v1/jobs API as racedetd, so clients
// (racedet -submit, racedet -flood) point at it unchanged. /readyz turns
// 503 while draining or while zero backends are live; when the whole
// fleet is down, submissions get an honest 503 with a Retry-After hint
// instead of queueing without bound. SIGINT/SIGTERM drain and exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"droidracer/internal/core"
	"droidracer/internal/gateway"
	"droidracer/internal/obs"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7400", "serve the gateway API on this address")
	backends := flag.String("backends", "", "comma-separated racedetd base URLs (required)")
	probeInterval := flag.Duration("probe-interval", time.Second, "health-probe period for live backends")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "per-probe request timeout")
	ejectAfter := flag.Int("eject-after", 3, "consecutive probe/forward failures before ejecting a backend")
	maxFailover := flag.Int("max-failover", 0, "max ring peers one submission may walk (0 = all)")
	engineFlag := flag.String("engine", "", "default analysis engine forwarded to backends: graph (default) or stream; a submission's X-Analysis-Engine overrides")
	cacheEntries := flag.Int("cache-entries", 1024, "bounded LRU capacity for terminal results")
	maxBody := flag.Int64("max-body", 8<<20, "largest accepted trace body in bytes")
	forwardTimeout := flag.Duration("forward-timeout", 30*time.Second, "per-forward timeout including retry")
	retryAfter := flag.Duration("retry-after", 10*time.Second, "Retry-After hint when the fleet is unavailable")
	seed := flag.Int64("seed", 0, "jitter seed for probe backoff and forward retries")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof/ on this address (empty = off)")
	eventsPath := flag.String("events", "", "append structured JSONL lifecycle events to this file (empty = off)")
	traceSlow := flag.Duration("trace-slow", time.Second, "tail-capture threshold: unsampled submissions routed slower than this keep their trace in /debug/traces (0 = only failures)")
	eventsMaxBytes := flag.Int64("events-max-bytes", obs.DefaultEventsMaxBytes, "rotate the -events file after this many bytes (kept as <file>.1)")
	flag.Parse()
	obs.SetServiceName("racedetgw")
	if *backends == "" {
		fatal(fmt.Errorf("missing -backends"))
	}
	engine, err := core.NormalizeEngine(*engineFlag)
	if err != nil {
		fatal(err)
	}
	if *engineFlag == "" {
		engine = "" // leave backend defaults alone unless asked
	}
	var fleet []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			fleet = append(fleet, strings.TrimSuffix(b, "/"))
		}
	}

	events := obs.Nop()
	if *eventsPath != "" {
		ef, err := obs.OpenRotatingFile(*eventsPath, *eventsMaxBytes)
		if err != nil {
			fatal(err)
		}
		defer ef.Close()
		events = obs.NewEventLog(ef, obs.NewRunID())
	}

	var debugSrv interface{ Close() error }
	if *metricsAddr != "" {
		srv, bound, err := obs.ServeDebug(*metricsAddr, obs.Default())
		if err != nil {
			fatal(err)
		}
		debugSrv = srv
		fmt.Fprintf(os.Stderr, "racedetgw: debug listener on http://%s/ (metrics, expvar, pprof)\n", bound)
		events.Info("gateway.debug-listener", "addr", bound)
	}

	gw, err := gateway.New(gateway.Config{
		Backends:       fleet,
		MaxBody:        *maxBody,
		CacheEntries:   *cacheEntries,
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		EjectThreshold: *ejectAfter,
		MaxFailover:    *maxFailover,
		ForwardTimeout: *forwardTimeout,
		RetryAfter:     *retryAfter,
		Engine:         engine,
		Seed:           *seed,
		Events:         events,
		TraceSlow:      *traceSlow,
	})
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	gw.StartProbing(ctx)

	hs, bound, err := gw.Serve(*listen)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "racedetgw: routing %d backend(s) on http://%s/v1/jobs\n", len(fleet), bound)
	events.Info("gateway.start", "addr", bound, "backends", len(fleet))

	<-ctx.Done()
	gw.BeginDrain()
	events.Info("gateway.stop")
	hs.Close()
	if debugSrv != nil {
		debugSrv.Close()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "racedetgw:", err)
	os.Exit(1)
}
