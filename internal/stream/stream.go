// Package stream implements the streaming vector-clock analysis engine:
// a second backend that replays the trace event-by-event and reports the
// same races as the happens-before graph engine without materializing a
// graph or running a transitive closure.
//
// Every program-order segment — a thread's pre-loop region, one
// asynchronous task, one merged run of out-of-task accesses — is a
// *context* carrying two vector clocks: an ST view (which operations
// precede this point via single-threaded Figure 6 rules alone) and a
// Full view (which precede it via any rule path). Each Figure 6–7 rule
// becomes a clock transfer: an st edge joins the source's ST view into
// the target's ST view and its Full view into the target's Full view; an
// mt edge joins Full into Full only. Ordering queries then decompose
// exactly like the paper's st/mt relation: a same-thread pair consults
// the ST view, a cross-thread pair the Full view. Ops are stamped with
// FastTrack-style epochs (context, time), and shadow state per memory
// location answers most race checks with a single epoch-in-clock
// comparison.
//
// The engine is exact with respect to the graph engine for every query
// race detection makes (access-pair ordering and the classifier's
// post-ordering oracle): same-thread mt base edges exist in the graph
// (e.g. a thread forking itself) but never touch accesses or posts, and
// the graph's edges all point forward in trace order, so a single
// forward pass computes final views (see DESIGN.md §17 for the
// rule-by-rule transfer table and the equivalence argument).
package stream

import (
	"errors"
	"sort"
	"time"

	"droidracer/internal/budget"
	"droidracer/internal/hb"
	"droidracer/internal/race"
	"droidracer/internal/trace"
	"droidracer/internal/vc"
)

// ErrSTOnly is returned for the STOnly ablation, which the streaming
// engine does not support: STOnly truncates the multithreaded relation
// non-transitively (base mt edges without closure), which a clock —
// inherently transitive — cannot express. The graph engine remains the
// backend for that ablation.
var ErrSTOnly = errors.New("stream: STOnly ablation requires the graph engine")

// Options configures one streaming analysis.
type Options struct {
	// HB carries the same rule toggles as the graph engine. STOnly is
	// rejected (ErrSTOnly); every other combination is supported.
	HB hb.Config
	// Dedup reports one representative race per (location, category) —
	// the same representative DetectDeduped picks.
	Dedup bool
	// RecordClocks retains per-operation view snapshots so tests can
	// query arbitrary op pairs via Outcome.OrderedLE and Outcome.Clocks.
	// Costs O(ops × clock width) memory; leave off outside tests.
	RecordClocks bool
}

// Stats summarizes the work one replay performed.
type Stats struct {
	// Ops is the number of trace operations replayed.
	Ops int
	// Contexts is the number of clock contexts created (thread roots,
	// task slots, stray runs).
	Contexts int
	// Joins is the number of clock components raised by rule transfers.
	Joins int
	// EpochHits counts shadow-state scans skipped because a location
	// summary clock was covered by the accessor's view.
	EpochHits int
	// Pairs is the number of candidate access pairs actually examined.
	Pairs int
}

// Outcome is the result of one streaming replay.
type Outcome struct {
	// Races is the detected race set, sorted by (First, Second); with
	// Options.Dedup it holds one representative per (location,
	// category), exactly the pair DetectDeduped reports.
	Races []race.Race
	// Stats summarizes the replay.
	Stats Stats

	info   *trace.Info
	naive  bool
	epochs []vc.Epoch
	runID  []int32
	stV    []vc.VC // per-op ST views; RecordClocks only
	fullV  []vc.VC // per-op Full views; RecordClocks only
}

// Run replays the trace under the given options. On a budget trip the
// partial (still sound) race set found so far is returned together with
// the *budget.Error, mirroring the graph engine's contract.
func Run(info *trace.Info, opts Options, ck *budget.Checker) (*Outcome, error) {
	if opts.HB.STOnly {
		return nil, ErrSTOnly
	}
	start := time.Now()
	e := newEngine(info, opts, ck)
	err := e.replay()
	out := &Outcome{
		Races:  e.finish(),
		Stats:  e.stats,
		info:   info,
		naive:  e.naive,
		epochs: e.epochs,
		runID:  e.runID,
		stV:    e.stV,
		fullV:  e.fullV,
	}
	publishReplay(out, time.Since(start))
	return out, err
}

// OrderedLE reports αi ≼ αj over the replayed relation, decomposed
// exactly as the graph's OrderedLE for the pairs race analysis queries.
// Requires Options.RecordClocks.
func (o *Outcome) OrderedLE(i, j int) bool {
	if i == j {
		return true
	}
	if i > j {
		return false
	}
	if o.runID != nil && o.runID[i] >= 0 && o.runID[i] == o.runID[j] {
		return true // same merged access run: ordered by trace position
	}
	if o.stV == nil {
		panic("stream: OrderedLE requires Options.RecordClocks")
	}
	tr := o.info.Trace()
	if !o.naive && tr.Op(i).Thread == tr.Op(j).Thread {
		return o.epochs[i].LEq(o.stV[j])
	}
	return o.epochs[i].LEq(o.fullV[j])
}

// Clocks returns copies of operation i's ST and Full views (after the
// op executed). Requires Options.RecordClocks.
func (o *Outcome) Clocks(i int) (st, full vc.VC) {
	if o.stV == nil {
		panic("stream: Clocks requires Options.RecordClocks")
	}
	return o.stV[i].Copy(), o.fullV[i].Copy()
}

// EpochOf returns the (context, time) stamp of operation i.
func (o *Outcome) EpochOf(i int) vc.Epoch { return o.epochs[i] }

// ctx is one program-order segment's clock state. Views are
// own-inclusive: after an op ticks, view[id] is that op's time, so
// joining a view transfers the source op itself along with its past.
// Under Config.Naive st and full alias one map (the naive combination
// has a single, unrestricted relation).
type ctx struct {
	id   vc.ID
	time uint64
	st   vc.VC
	full vc.VC
}

// snap is a frozen copy of a context's views at one operation, stored
// where a rule will later need the source side of a clock transfer.
type snap struct {
	st   vc.VC
	full vc.VC
}

// taskState is the per-asynchronous-task bookkeeping.
type taskState struct {
	id      trace.TaskID
	postIdx int
	postOp  trace.Op
	post    snap // views at the post op; set once the post is replayed
	postSet bool

	c    *ctx
	base uint64 // c.time before the task's first op

	endEpoch vc.Epoch
	end      snap
	ended    bool

	// fullyCovered records that every earlier task on this thread had
	// end ≼st this task's begin when it began — the prefix property the
	// FIFO/NOPRE walk uses to stop early.
	fullyCovered bool
}

type threadState struct {
	id   trace.ThreadID
	loop int
	root *ctx

	curTask *taskState
	begun   []*taskState // tasks begun on this thread, in begin order

	strayCtx *ctx // context of the current merged out-of-task access run
	strayRun int32
}

// accEntry is one access in a location's shadow state.
type accEntry struct {
	idx   int
	ep    vc.Epoch
	write bool
}

// threadAcc groups a location's accesses by thread, with summary clocks
// over write (wSum) and all (aSum) entry epochs for the epoch fast path.
type threadAcc struct {
	entries []accEntry
	wSum    vc.VC
	aSum    vc.VC
}

// locState is the shadow state of one memory location.
type locState struct {
	threads map[trace.ThreadID]*threadAcc
	order   []trace.ThreadID
	best    [race.Unknown + 1]race.Race
	seen    [race.Unknown + 1]bool
}

type engine struct {
	info  *trace.Info
	tr    *trace.Trace
	cfg   hb.Config
	ck    *budget.Checker
	dedup bool
	naive bool

	nextCtx vc.ID
	epochs  []vc.Epoch
	runID   []int32 // merged-run id per access, -1 otherwise; nil unless MergeAccesses

	threads map[trace.ThreadID]*threadState
	tasks   map[trace.TaskID]*taskState
	postOf  map[int]*taskState // post trace index → its task

	enables  map[trace.TaskID]snap     // views at each task's first enable
	attach   map[trace.ThreadID]snap   // views at each thread's attachQ
	forkAcc  map[trace.ThreadID]vc.VC  // Full views of forks targeting a thread
	exitSnap map[trace.ThreadID]vc.VC  // Full view at a thread's last exit
	lastInit map[trace.ThreadID]int
	lastExit map[trace.ThreadID]int
	lockRel  map[trace.LockID]map[trace.ThreadID]vc.VC

	locs map[trace.Loc]*locState
	cl   *race.Classifier
	all  []race.Race // non-dedup mode accumulator

	record bool
	stV    []vc.VC
	fullV  []vc.VC

	stats Stats
	trip  error
}

func newEngine(info *trace.Info, opts Options, ck *budget.Checker) *engine {
	e := &engine{
		info:     info,
		tr:       info.Trace(),
		cfg:      opts.HB,
		ck:       ck,
		dedup:    opts.Dedup,
		naive:    opts.HB.Naive,
		epochs:   make([]vc.Epoch, info.Trace().Len()),
		threads:  make(map[trace.ThreadID]*threadState),
		tasks:    make(map[trace.TaskID]*taskState),
		postOf:   make(map[int]*taskState),
		enables:  make(map[trace.TaskID]snap),
		attach:   make(map[trace.ThreadID]snap),
		forkAcc:  make(map[trace.ThreadID]vc.VC),
		exitSnap: make(map[trace.ThreadID]vc.VC),
		lastInit: make(map[trace.ThreadID]int),
		lastExit: make(map[trace.ThreadID]int),
		lockRel:  make(map[trace.LockID]map[trace.ThreadID]vc.VC),
		locs:     make(map[trace.Loc]*locState),
		record:   opts.RecordClocks,
	}
	e.cl = race.NewClassifier(info, e.orderedAt)
	if e.record {
		e.stV = make([]vc.VC, e.tr.Len())
		e.fullV = make([]vc.VC, e.tr.Len())
	}
	return e
}

// replay is the single forward pass. All graph edges point forward in
// trace order, so when an op is processed every rule source it could
// receive a transfer from already carries its final views.
func (e *engine) replay() error {
	e.prescan()
	for i, op := range e.tr.Ops() {
		if err := e.ck.Check(); err != nil {
			return err
		}
		e.stats.Ops++
		if err := e.step(i, op); err != nil {
			return err
		}
		if e.trip != nil {
			return e.trip
		}
	}
	return nil
}

// prescan mirrors the graph's last-wins init/exit maps (FORK targets the
// last threadinit, JOIN sources the last threadexit) and, under
// MergeAccesses, assigns run ids: maximal same-thread sequences of
// accesses sharing one enclosing task, which the graph merges into one
// node and thereby orders internally by trace position.
func (e *engine) prescan() {
	type runState struct {
		run   int32
		task  trace.TaskID
		valid bool
	}
	var per map[trace.ThreadID]*runState
	var next int32
	if e.cfg.MergeAccesses {
		e.runID = make([]int32, e.tr.Len())
		per = make(map[trace.ThreadID]*runState)
	}
	for i, op := range e.tr.Ops() {
		switch op.Kind {
		case trace.OpThreadInit:
			e.lastInit[op.Thread] = i
		case trace.OpThreadExit:
			e.lastExit[op.Thread] = i
		}
		if e.runID == nil {
			continue
		}
		s := per[op.Thread]
		if !op.Kind.IsAccess() {
			if s != nil {
				s.valid = false
			}
			e.runID[i] = -1
			continue
		}
		if s == nil {
			s = &runState{}
			per[op.Thread] = s
		}
		if t := e.info.Task(i); !s.valid || s.task != t {
			next++
			s.run, s.task, s.valid = next, t, true
		}
		e.runID[i] = s.run
	}
}

func (e *engine) step(i int, op trace.Op) error {
	ts := e.thread(op.Thread)
	var c *ctx
	if op.Kind == trace.OpBegin && e.taskCtxs(ts, i) {
		c = e.beginTask(i, op, ts)
	} else {
		c = e.ctxFor(i, op, ts)
		e.applyIncoming(i, op, c)
	}
	c.time++
	t := c.time
	c.st[c.id] = t
	c.full[c.id] = t
	ep := vc.Epoch{C: c.id, T: t}
	e.epochs[i] = ep
	if e.record {
		e.stV[i] = c.st.Copy()
		e.fullV[i] = c.full.Copy()
	}
	e.applyOutgoing(i, op, c, ts)
	if op.Kind.IsAccess() {
		return e.access(i, op, c, ep)
	}
	return nil
}

// taskCtxs reports whether op i on ts lives in the per-task context
// regime: the thread loops on a queue, i is past the loop, and the
// WholeThreadPO ablation (which subsumes task boundaries under total
// program order) is off.
func (e *engine) taskCtxs(ts *threadState, i int) bool {
	return !e.cfg.WholeThreadPO && ts.loop >= 0 && i > ts.loop
}

func (e *engine) thread(id trace.ThreadID) *threadState {
	ts := e.threads[id]
	if ts == nil {
		st, full := e.newViews()
		ts = &threadState{id: id, loop: e.info.LoopIdx(id), root: e.mkCtx(st, full)}
		e.threads[id] = ts
	}
	return ts
}

func (e *engine) task(id trace.TaskID) *taskState {
	td := e.tasks[id]
	if td == nil {
		td = &taskState{id: id, postIdx: e.info.PostIdx(id)}
		e.tasks[id] = td
	}
	return td
}

func (e *engine) newViews() (st, full vc.VC) {
	st = vc.New()
	if e.naive {
		return st, st
	}
	return st, vc.New()
}

func (e *engine) mkCtx(st, full vc.VC) *ctx {
	id := e.nextCtx
	e.nextCtx++
	e.stats.Contexts++
	if err := e.ck.Nodes(int(e.nextCtx)); err != nil && e.trip == nil {
		e.trip = err
	}
	return &ctx{id: id, st: st, full: full}
}

// snapshot freezes c's views. Under Naive both fields alias one copy.
func (e *engine) snapshot(c *ctx) snap {
	st := c.st.Copy()
	if e.naive {
		return snap{st: st, full: st}
	}
	return snap{st: st, full: c.full.Copy()}
}

// ctxFor resolves the context of a non-begin operation: the thread root
// (pre-loop, queueless thread, or WholeThreadPO), the running task, or a
// stray context for post-loop out-of-task ops. Under MergeAccesses a
// maximal run of stray accesses shares one context — the graph merges
// them into a single node, ordering the run internally — while every
// other stray op gets a fresh singleton context, mutually unordered
// exactly as the graph leaves out-of-task nodes unordered.
func (e *engine) ctxFor(i int, op trace.Op, ts *threadState) *ctx {
	if !e.taskCtxs(ts, i) {
		return ts.root
	}
	if e.info.Task(i) != "" && ts.curTask != nil {
		return ts.curTask.c
	}
	if op.Kind.IsAccess() && e.runID != nil && ts.strayCtx != nil && e.runID[i] == ts.strayRun {
		return ts.strayCtx
	}
	// NO-Q-PO: loopOnQ precedes every post-loop region entry. Root views
	// are frozen after the loop op (the root region is the prefix), so
	// seeding from them is the loop→stray transfer.
	st, full := e.newViews()
	e.stats.Joins += st.JoinCounted(ts.root.st)
	if !e.naive {
		e.stats.Joins += full.JoinCounted(ts.root.full)
	}
	c := e.mkCtx(st, full)
	if op.Kind.IsAccess() && e.runID != nil {
		ts.strayCtx, ts.strayRun = c, e.runID[i]
	} else {
		ts.strayCtx = nil
	}
	return c
}

// beginTask replays OpBegin: it gathers every rule transfer targeting
// the begin (NO-Q-PO from the loop, POST, FIFO, NOPRE) into tentative
// views, then either reuses the previous task's context slot — sound
// when that task's end is ≼st this begin, which keeps clock width at
// O(threads) on FIFO-ordered loopers — or opens a fresh context.
func (e *engine) beginTask(i int, op trace.Op, ts *threadState) *ctx {
	td := e.task(op.Task)
	tst, tfull := e.newViews()

	// NO-Q-PO: loop → begin.
	e.stats.Joins += tst.JoinCounted(ts.root.st)
	if !e.naive {
		e.stats.Joins += tfull.JoinCounted(ts.root.full)
	}
	// POST-ST/MT: post(p) → begin(p). Analyze guarantees the post
	// precedes the begin, so its snapshot is final.
	if td.postSet {
		e.join(tst, tfull, td.postOp.Thread == op.Thread, td.post)
	}
	e.taskWalk(td, ts, tst, tfull)

	// Context slot: reuse the previous task's context iff its end is
	// already ≼st this begin under the tentative views.
	if n := len(ts.begun); n > 0 {
		if prev := ts.begun[n-1]; prev.ended && prev.endEpoch.LEq(tst) {
			c := prev.c
			e.stats.Joins += c.st.JoinCounted(tst)
			if !e.naive {
				e.stats.Joins += c.full.JoinCounted(tfull)
			}
			td.c, td.base = c, c.time
			ts.begun = append(ts.begun, td)
			ts.curTask = td
			return c
		}
	}
	c := e.mkCtx(tst, tfull)
	td.c, td.base = c, 0
	ts.begun = append(ts.begun, td)
	ts.curTask = td
	return c
}

// taskWalk applies FIFO and NOPRE: for each earlier ended task p1 on the
// thread whose end is not yet ≼st this begin, test the rule premises
// against p1's and this task's post snapshots and, when one holds, join
// p1's end views. Walking newest-first lets a covered task that was
// itself fully covered terminate the walk: every older task is then
// transitively covered.
func (e *engine) taskWalk(td *taskState, ts *threadState, tst, tfull vc.VC) {
	if !e.cfg.FIFO && !e.cfg.NoPre {
		td.fullyCovered = len(ts.begun) == 0
		return
	}
	fully := true
	for k := len(ts.begun) - 1; k >= 0; k-- {
		p1 := ts.begun[k]
		if !p1.ended { // trace ends inside p1; no end to order
			fully = false
			continue
		}
		if p1.endEpoch.LEq(tst) {
			if p1.fullyCovered {
				break
			}
			continue
		}
		added := false
		if e.cfg.FIFO && td.postSet && p1.postSet &&
			fifoCompatible(p1.postOp, td.postOp) && e.orderedAt(p1.postIdx, td.postIdx) {
			added = true
		}
		if !added && e.cfg.NoPre && td.postSet && e.noPreHolds(p1, td, ts.id) {
			added = true
		}
		if added {
			// FIFO/NOPRE: end(p1) → begin(p2) is an st edge.
			e.join(tst, tfull, true, p1.end)
		} else {
			fully = false
		}
	}
	td.fullyCovered = fully
}

// noPreHolds tests the NOPRE premise: some operation of p1 is ≼ this
// task's post. The post may run inside p1 itself (reflexivity); else
// the post's view must cover part of p1's context segment — a component
// past p1's base time means some p1 op reaches the post. Same-thread
// reach is st-only (the only base mt edges out of a task's ops that
// reach a post, ENABLE-MT, are cross-thread by construction). p1 runs
// on thread t.
func (e *engine) noPreHolds(p1, td *taskState, t trace.ThreadID) bool {
	if e.info.Task(td.postIdx) == p1.id {
		return true
	}
	view := td.post.full
	if !e.naive && td.postOp.Thread == t {
		view = td.post.st
	}
	return view.Get(p1.c.id) > p1.base
}

// join transfers a snapshot along an edge: st edges feed both views,
// mt edges the Full view only (Naive aliases the two, making every
// edge feed the single combined relation).
func (e *engine) join(tst, tfull vc.VC, sameThread bool, s snap) {
	if sameThread {
		e.stats.Joins += tst.JoinCounted(s.st)
	}
	e.stats.Joins += tfull.JoinCounted(s.full)
}

// orderedAt reports αx ≼ αy for the post-ordering queries the FIFO
// premise and the race classifier make, answered from retained post
// snapshots: x ≼ y iff x's epoch is in y's (thread-appropriate) view.
func (e *engine) orderedAt(x, y int) bool {
	if x == y {
		return true
	}
	if x > y {
		return false
	}
	ty := e.postOf[y]
	if ty == nil || !ty.postSet {
		return false
	}
	if !e.naive && e.tr.Op(x).Thread == e.tr.Op(y).Thread {
		return e.epochs[x].LEq(ty.post.st)
	}
	return e.epochs[x].LEq(ty.post.full)
}

// applyIncoming joins every rule transfer targeting a non-begin op into
// its context. A transfer whose source has not been replayed yet
// corresponds to a backward rule instance, which the graph rejects; the
// missing snapshot skips it here for the same effect.
func (e *engine) applyIncoming(i int, op trace.Op, c *ctx) {
	switch op.Kind {
	case trace.OpBegin:
		// Reached only outside the per-task context regime (e.g.
		// WholeThreadPO collapses tasks into thread program order); the
		// POST rule still applies there, with task-rule transfers
		// subsumed by the total program order.
		if td := e.tasks[op.Task]; td != nil && td.postSet {
			e.join(c.st, c.full, td.postOp.Thread == op.Thread, td.post)
		}
	case trace.OpPost:
		// ENABLE-ST/MT: the task's first enable → its post.
		if e.cfg.EnableEdges {
			if en := e.info.EnableIdx(op.Task); en >= 0 {
				if s, ok := e.enables[op.Task]; ok {
					e.join(c.st, c.full, e.tr.Op(en).Thread == op.Thread, s)
				}
			}
		}
		// ATTACH-Q-MT: the target thread's attachQ → a cross-thread
		// post (same-thread posts are covered by program order).
		if op.Thread != op.Other {
			if s, ok := e.attach[op.Other]; ok {
				e.join(c.st, c.full, false, s)
			}
		}
	case trace.OpThreadInit:
		// FORK: every fork targeting this thread → its last init.
		if e.lastInit[op.Thread] == i {
			if acc := e.forkAcc[op.Thread]; acc != nil {
				e.stats.Joins += c.full.JoinCounted(acc)
			}
		}
	case trace.OpJoin:
		// JOIN: the joined thread's last exit → this join.
		if s := e.exitSnap[op.Other]; s != nil {
			e.stats.Joins += c.full.JoinCounted(s)
		}
	case trace.OpAcquire:
		// LOCK: every earlier release of this lock on another thread
		// (Naive: any thread) → this acquire.
		for relT, acc := range e.lockRel[op.Lock] {
			if e.naive || relT != op.Thread {
				e.stats.Joins += c.full.JoinCounted(acc)
			}
		}
	}
}

// applyOutgoing freezes the snapshots and accumulators that later ops'
// incoming transfers will consume.
func (e *engine) applyOutgoing(i int, op trace.Op, c *ctx, ts *threadState) {
	switch op.Kind {
	case trace.OpAttachQ:
		if e.info.AttachIdx(op.Thread) == i {
			e.attach[op.Thread] = e.snapshot(c)
		}
	case trace.OpEnable:
		if e.cfg.EnableEdges && e.info.EnableIdx(op.Task) == i {
			e.enables[op.Task] = e.snapshot(c)
		}
	case trace.OpPost:
		// Snapshots are only consumed for tasks that begin (POST edge,
		// FIFO/NOPRE premises, and the classifier all query posts of
		// begun tasks), so unexecuted tasks cost nothing.
		if e.info.BeginIdx(op.Task) >= 0 {
			td := e.task(op.Task)
			td.postOp = op
			td.post = e.snapshot(c)
			td.postSet = true
			e.postOf[i] = td
		}
	case trace.OpFork:
		acc := e.forkAcc[op.Other]
		if acc == nil {
			acc = vc.New()
			e.forkAcc[op.Other] = acc
		}
		e.stats.Joins += acc.JoinCounted(c.full)
	case trace.OpThreadExit:
		if e.lastExit[op.Thread] == i {
			e.exitSnap[op.Thread] = c.full.Copy()
		}
	case trace.OpRelease:
		m := e.lockRel[op.Lock]
		if m == nil {
			m = make(map[trace.ThreadID]vc.VC)
			e.lockRel[op.Lock] = m
		}
		acc := m[op.Thread]
		if acc == nil {
			acc = vc.New()
			m[op.Thread] = acc
		}
		e.stats.Joins += acc.JoinCounted(c.full)
	case trace.OpEnd:
		if ts.curTask != nil && ts.curTask.id == op.Task {
			td := ts.curTask
			td.endEpoch = e.epochs[i]
			td.end = e.snapshot(c)
			td.ended = true
			ts.curTask = nil
		}
	}
}

// access runs race detection for one read/write against the location's
// shadow state, then records the access. Partners are grouped by thread:
// cross-thread racing pairs are always Multithreaded, same-thread pairs
// carry the other four categories, and per-group summary clocks skip
// whole scans when every prior conflicting access is already ordered
// before this one.
func (e *engine) access(i int, op trace.Op, c *ctx, ep vc.Epoch) error {
	ls := e.locs[op.Loc]
	if ls == nil {
		ls = &locState{threads: make(map[trace.ThreadID]*threadAcc)}
		e.locs[op.Loc] = ls
	}
	w := op.Kind == trace.OpWrite
	var err error
	if e.dedup {
		err = e.scanDedup(i, op, c, ls, w)
	} else {
		err = e.scanAll(i, op, c, ls, w)
	}
	ta := ls.threads[op.Thread]
	if ta == nil {
		ta = &threadAcc{wSum: vc.New(), aSum: vc.New()}
		ls.threads[op.Thread] = ta
		ls.order = append(ls.order, op.Thread)
	}
	ta.entries = append(ta.entries, accEntry{idx: i, ep: ep, write: w})
	if w {
		ta.wSum.JoinEpoch(ep)
	}
	ta.aSum.JoinEpoch(ep)
	return err
}

// orderedSame reports whether prior same-thread access a is ≼ the
// current op in context c. Accesses merged into one graph node (same
// run) are ordered by trace position; otherwise the ST view decides.
func (e *engine) orderedSame(a accEntry, i int, c *ctx) bool {
	if e.runID != nil && e.runID[a.idx] == e.runID[i] {
		return true
	}
	if e.naive {
		return a.ep.LEq(c.full)
	}
	return a.ep.LEq(c.st)
}

const maxIdx = int(^uint(0) >> 1)

// sameThreshold is the first-index cutoff for same-thread scans in
// dedup mode: an entry at or past the largest recorded First of the
// four single-threaded categories cannot improve any representative.
func (e *engine) sameThreshold(ls *locState) int {
	maxT := 0
	for cat := race.CoEnabled; cat <= race.Unknown; cat++ {
		if !ls.seen[cat] {
			return maxIdx
		}
		if f := ls.best[cat].First; f > maxT {
			maxT = f
		}
	}
	return maxT
}

// scanDedup maintains, per (location, category), the lexicographically
// least racing pair — exactly the representative DetectDeduped reports.
// Seconds arrive in ascending trace order, so a recorded pair is only
// ever replaced by one with a strictly smaller First, and entries are
// scanned in ascending order so the per-category cutoffs make scans
// stop as soon as no improvement is possible.
func (e *engine) scanDedup(i int, op trace.Op, c *ctx, ls *locState, w bool) error {
	if me := ls.threads[op.Thread]; me != nil {
		sum := me.wSum
		if w {
			sum = me.aSum
		}
		view := c.st
		if e.naive {
			view = c.full
		}
		if view.Covers(sum) {
			e.stats.EpochHits++
		} else {
			maxT := e.sameThreshold(ls)
			for _, a := range me.entries {
				if a.idx >= maxT {
					break
				}
				if err := e.ck.Check(); err != nil {
					return err
				}
				if !a.write && !w {
					continue
				}
				e.stats.Pairs++
				if e.orderedSame(a, i, c) {
					continue
				}
				cat := e.cl.Classify(a.idx, i)
				if !ls.seen[cat] || a.idx < ls.best[cat].First {
					ls.best[cat] = race.Race{First: a.idx, Second: i, Loc: op.Loc, Category: cat}
					ls.seen[cat] = true
					maxT = e.sameThreshold(ls)
				}
			}
		}
	}
	mtT := maxIdx
	if ls.seen[race.Multithreaded] {
		mtT = ls.best[race.Multithreaded].First
	}
	bestA := -1
	for _, t := range ls.order {
		if t == op.Thread {
			continue
		}
		ta := ls.threads[t]
		sum := ta.wSum
		if w {
			sum = ta.aSum
		}
		if c.full.Covers(sum) {
			e.stats.EpochHits++
			continue
		}
		limit := mtT
		if bestA >= 0 && bestA < limit {
			limit = bestA
		}
		for _, a := range ta.entries {
			if a.idx >= limit {
				break
			}
			if err := e.ck.Check(); err != nil {
				return err
			}
			if !a.write && !w {
				continue
			}
			e.stats.Pairs++
			if a.ep.LEq(c.full) {
				continue
			}
			bestA = a.idx
			break
		}
	}
	if bestA >= 0 && (!ls.seen[race.Multithreaded] || bestA < ls.best[race.Multithreaded].First) {
		ls.best[race.Multithreaded] = race.Race{First: bestA, Second: i, Loc: op.Loc, Category: race.Multithreaded}
		ls.seen[race.Multithreaded] = true
	}
	return nil
}

// scanAll enumerates every racing pair, for the non-dedup mode.
func (e *engine) scanAll(i int, op trace.Op, c *ctx, ls *locState, w bool) error {
	for _, t := range ls.order {
		ta := ls.threads[t]
		same := t == op.Thread
		sum := ta.wSum
		if w {
			sum = ta.aSum
		}
		view := c.full
		if same && !e.naive {
			view = c.st
		}
		if view.Covers(sum) {
			e.stats.EpochHits++
			continue
		}
		for _, a := range ta.entries {
			if err := e.ck.Check(); err != nil {
				return err
			}
			if !a.write && !w {
				continue
			}
			e.stats.Pairs++
			if same {
				if e.orderedSame(a, i, c) {
					continue
				}
			} else if a.ep.LEq(c.full) {
				continue
			}
			e.all = append(e.all, race.Race{
				First: a.idx, Second: i, Loc: op.Loc, Category: e.cl.Classify(a.idx, i),
			})
		}
	}
	return nil
}

// finish sorts the collected race set by (First, Second) — the same
// order both graph-engine detection modes report.
func (e *engine) finish() []race.Race {
	out := e.all
	if e.dedup {
		for _, ls := range e.locs {
			for cat, ok := range ls.seen {
				if ok {
					out = append(out, ls.best[cat])
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].First != out[b].First {
			return out[a].First < out[b].First
		}
		return out[a].Second < out[b].Second
	})
	return out
}

// fifoCompatible mirrors the graph engine's FIFO side conditions for
// delayed and front-of-queue posts (§4.2): given ordered posts β1 ≼ β2
// to one thread, β1's task is dispatched first when β2 does not jump
// the queue and β1 does not lag behind β2 on a delay.
func fifoCompatible(b1, b2 trace.Op) bool {
	if b2.Front {
		return false
	}
	if b1.Delayed {
		return b2.Delayed && b1.Delay <= b2.Delay
	}
	return true
}
