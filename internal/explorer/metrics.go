package explorer

import "droidracer/internal/obs"

// Exploration and verification metrics. Every counter here sits next to
// a full app-model replay, so one atomic increment per event is noise;
// no local tallying needed.
var (
	sequencesTotal = obs.Default().Counter("droidracer_explorer_sequences_total",
		"DFS prefixes executed, including interior nodes.")
	eventsFiredTotal = obs.Default().Counter("droidracer_explorer_events_fired_total",
		"UI event injections across all exploration runs.")
	testsTotal = obs.Default().Counter("droidracer_explorer_tests_total",
		"Tests recorded (streamed or accumulated).")
	replaysTotal = obs.Default().Counter("droidracer_explorer_replays_total",
		"Prefix replays on a fresh environment (one per DFS node visited).")
	backtracksTotal = obs.Default().Counter("droidracer_explorer_backtracks_total",
		"DFS backtracks: returns to a parent prefix to try a sibling event.")
	maxDepth = obs.Default().Gauge("droidracer_explorer_max_depth",
		"Deepest event-sequence prefix explored so far.")
	checkpointBarriers = obs.Default().Counter("droidracer_explorer_checkpoint_barriers_total",
		"Completed-subtree checkpoints made durable (SubtreeDone calls).")
	subtreesSkipped = obs.Default().Counter("droidracer_explorer_subtrees_skipped_total",
		"Subtrees skipped on resume because a checkpoint marked them done.")

	verifyRunsTotal = obs.Default().Counter("droidracer_verify_runs_total",
		"Race verifications started (reorder-replay campaigns).")
	verifyAttemptsTotal = obs.Default().Counter("droidracer_verify_attempts_total",
		"Reorder-replay attempts across all verifications.")
	verifyRetriesTotal = obs.Default().Counter("droidracer_verify_retries_total",
		"Verification retry rounds beyond each campaign's first.")
	verifyConfirmedTotal = obs.Default().Counter("droidracer_verify_confirmed_total",
		"Verifications that confirmed a race by exhibiting the opposite order.")
)
