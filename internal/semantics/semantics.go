// Package semantics implements the operational semantics of the Android
// concurrency model formalized in §3 (Figure 5) of the DroidRacer paper.
//
// The state of an application is the tuple σ = (C, R, F, B, E, Q, L):
// created threads C, running threads R, finished threads F, threads B that
// have begun processing their task queues, the executing procedure E per
// thread (⊥ when idle), the task queue Q per thread (ε when absent), and
// the lock set L per thread.
//
// Step applies one operation to a state, checking the antecedents of the
// corresponding semantic rule; Validate replays a whole trace. A trace is
// an execution of the application exactly when every operation steps
// without error, so Validate doubles as a well-formedness oracle for
// traces produced by the simulated runtime and by hand in tests.
//
// Two refinements from §4.2 are modeled beyond Figure 5: delayed posts
// enter a pending set and may begin in any order relative to other delayed
// tasks (their firing time is abstracted away by the trace), and
// front-of-queue posts prepend to the FIFO queue.
package semantics

import (
	"fmt"

	"droidracer/internal/trace"
)

// Status is the lifecycle phase of a thread: the set among C, R, F that
// contains it.
type Status uint8

// Thread lifecycle phases.
const (
	StatusUnknown  Status = iota // never seen
	StatusCreated                // ∈ C: created, not yet scheduled
	StatusRunning                // ∈ R
	StatusFinished               // ∈ F
)

func (s Status) String() string {
	switch s {
	case StatusCreated:
		return "created"
	case StatusRunning:
		return "running"
	case StatusFinished:
		return "finished"
	default:
		return "unknown"
	}
}

type threadState struct {
	status   Status
	looping  bool // ∈ B
	idle     bool // E(t) = ⊥ (meaningful only after loopOnQ)
	current  trace.TaskID
	hasQueue bool
	queue    []trace.TaskID        // FIFO portion of the task queue
	delayed  map[trace.TaskID]bool // pending delayed tasks
	locks    map[trace.LockID]int  // held locks with reentrancy counts
}

// State is an application state σ. Create one with NewState; Step mutates
// it in place.
type State struct {
	threads map[trace.ThreadID]*threadState
	// owner maps each held lock to the thread holding it, mirroring the
	// ACQUIRE antecedent l ∉ L(t') for all t' ≠ t.
	owner map[trace.LockID]trace.ThreadID
}

// NewState returns the initial state σ0 of the START rule: the given
// framework-created threads are in C with no queues and no locks.
func NewState(initial []trace.ThreadID) *State {
	s := &State{
		threads: make(map[trace.ThreadID]*threadState),
		owner:   make(map[trace.LockID]trace.ThreadID),
	}
	for _, t := range initial {
		s.threads[t] = newThreadState()
	}
	return s
}

func newThreadState() *threadState {
	return &threadState{
		status:  StatusCreated,
		delayed: make(map[trace.TaskID]bool),
		locks:   make(map[trace.LockID]int),
	}
}

// Status returns the lifecycle phase of thread t.
func (s *State) Status(t trace.ThreadID) Status {
	if ts, ok := s.threads[t]; ok {
		return ts.status
	}
	return StatusUnknown
}

// Looping reports whether t ∈ B (the thread processes its queue).
func (s *State) Looping(t trace.ThreadID) bool {
	ts, ok := s.threads[t]
	return ok && ts.looping
}

// HasQueue reports whether Q(t) ≠ ε.
func (s *State) HasQueue(t trace.ThreadID) bool {
	ts, ok := s.threads[t]
	return ok && ts.hasQueue
}

// QueueLen returns the number of pending tasks on t's queue, including
// delayed ones.
func (s *State) QueueLen(t trace.ThreadID) int {
	ts, ok := s.threads[t]
	if !ok {
		return 0
	}
	return len(ts.queue) + len(ts.delayed)
}

// Current returns E(t): the task executing on t, or "" when idle or when t
// is not a looping queue thread.
func (s *State) Current(t trace.ThreadID) trace.TaskID {
	if ts, ok := s.threads[t]; ok {
		return ts.current
	}
	return ""
}

// HoldsLock reports whether l ∈ L(t).
func (s *State) HoldsLock(t trace.ThreadID, l trace.LockID) bool {
	ts, ok := s.threads[t]
	return ok && ts.locks[l] > 0
}

// RuleError reports a violated antecedent of a semantic rule.
type RuleError struct {
	Rule string   // the Figure 5 rule name, e.g. "BEGIN"
	Op   trace.Op // the offending operation
	Msg  string
}

func (e *RuleError) Error() string {
	return fmt.Sprintf("rule %s violated by %v: %s", e.Rule, e.Op, e.Msg)
}

func ruleErr(rule string, op trace.Op, format string, args ...any) error {
	return &RuleError{Rule: rule, Op: op, Msg: fmt.Sprintf(format, args...)}
}

// Step applies op to the state, enforcing the antecedents of the matching
// Figure 5 rule. On error the state is left unchanged.
func (s *State) Step(op trace.Op) error {
	switch op.Kind {
	case trace.OpThreadInit:
		ts, ok := s.threads[op.Thread]
		if !ok || ts.status != StatusCreated {
			return ruleErr("INIT", op, "thread not in C (status %v)", s.Status(op.Thread))
		}
		ts.status = StatusRunning
		return nil

	case trace.OpThreadExit:
		ts, err := s.running("EXIT", op, op.Thread)
		if err != nil {
			return err
		}
		ts.status = StatusFinished
		return nil

	case trace.OpFork:
		if _, err := s.running("FORK", op, op.Thread); err != nil {
			return err
		}
		if s.Status(op.Other) != StatusUnknown {
			return ruleErr("FORK", op, "thread t%d is not fresh", op.Other)
		}
		s.threads[op.Other] = newThreadState()
		return nil

	case trace.OpJoin:
		if _, err := s.running("JOIN", op, op.Thread); err != nil {
			return err
		}
		if s.Status(op.Other) != StatusFinished {
			return ruleErr("JOIN", op, "joined thread t%d has not finished (status %v)", op.Other, s.Status(op.Other))
		}
		return nil

	case trace.OpAttachQ:
		ts, err := s.running("ATTACHQ", op, op.Thread)
		if err != nil {
			return err
		}
		if ts.hasQueue {
			return ruleErr("ATTACHQ", op, "Q(t%d) already attached", op.Thread)
		}
		ts.hasQueue = true
		return nil

	case trace.OpLoopOnQ:
		ts, err := s.running("LOOPONQ", op, op.Thread)
		if err != nil {
			return err
		}
		if ts.looping {
			return ruleErr("LOOPONQ", op, "thread already in B")
		}
		if !ts.hasQueue {
			return ruleErr("LOOPONQ", op, "Q(t%d) = ε", op.Thread)
		}
		ts.looping = true
		ts.idle = true
		return nil

	case trace.OpPost:
		if _, err := s.running("POST", op, op.Thread); err != nil {
			return err
		}
		dest, err := s.running("POST", op, op.Other)
		if err != nil {
			return err
		}
		if !dest.hasQueue {
			return ruleErr("POST", op, "destination Q(t%d) = ε", op.Other)
		}
		switch {
		case op.Delayed:
			dest.delayed[op.Task] = true
		case op.Front:
			dest.queue = append([]trace.TaskID{op.Task}, dest.queue...)
		default:
			dest.queue = append(dest.queue, op.Task)
		}
		return nil

	case trace.OpBegin:
		ts, err := s.running("BEGIN", op, op.Thread)
		if err != nil {
			return err
		}
		if !ts.looping {
			return ruleErr("BEGIN", op, "thread not in B")
		}
		if !ts.idle {
			return ruleErr("BEGIN", op, "E(t%d) = %s, not ⊥", op.Thread, ts.current)
		}
		switch {
		case len(ts.queue) > 0 && ts.queue[0] == op.Task:
			ts.queue = ts.queue[1:]
		case ts.delayed[op.Task]:
			// A delayed task may fire at any point once posted; the trace
			// abstracts the timeout away.
			delete(ts.delayed, op.Task)
		default:
			return ruleErr("BEGIN", op, "task %s is not Front(Q(t%d))", op.Task, op.Thread)
		}
		ts.idle = false
		ts.current = op.Task
		return nil

	case trace.OpEnd:
		ts, err := s.running("END", op, op.Thread)
		if err != nil {
			return err
		}
		if ts.idle || ts.current != op.Task {
			return ruleErr("END", op, "E(t%d) = %s", op.Thread, s.describeE(op.Thread))
		}
		ts.idle = true
		ts.current = ""
		return nil

	case trace.OpAcquire:
		ts, err := s.running("ACQUIRE", op, op.Thread)
		if err != nil {
			return err
		}
		if holder, held := s.owner[op.Lock]; held && holder != op.Thread {
			return ruleErr("ACQUIRE", op, "lock held by t%d", holder)
		}
		s.owner[op.Lock] = op.Thread
		ts.locks[op.Lock]++
		return nil

	case trace.OpRelease:
		ts, err := s.running("RELEASE", op, op.Thread)
		if err != nil {
			return err
		}
		if ts.locks[op.Lock] == 0 {
			return ruleErr("RELEASE", op, "lock not held by t%d", op.Thread)
		}
		ts.locks[op.Lock]--
		if ts.locks[op.Lock] == 0 {
			delete(ts.locks, op.Lock)
			delete(s.owner, op.Lock)
		}
		return nil

	case trace.OpRead, trace.OpWrite, trace.OpEnable:
		// These do not change the application state (§3), but only running
		// threads execute operations.
		_, err := s.running(op.Kind.String(), op, op.Thread)
		return err

	case trace.OpCancel:
		ts, err := s.running("CANCEL", op, op.Thread)
		if err != nil {
			return err
		}
		// Cancellation removes a pending post from any queue; a cancel of a
		// task that already ran or was never posted is a no-op, matching
		// Android's removeCallbacks.
		_ = ts
		for _, other := range s.threads {
			if other.delayed[op.Task] {
				delete(other.delayed, op.Task)
				return nil
			}
			for i, q := range other.queue {
				if q == op.Task {
					other.queue = append(other.queue[:i], other.queue[i+1:]...)
					return nil
				}
			}
		}
		return nil

	default:
		return ruleErr("?", op, "unknown operation kind")
	}
}

func (s *State) running(rule string, op trace.Op, t trace.ThreadID) (*threadState, error) {
	ts, ok := s.threads[t]
	if !ok || ts.status != StatusRunning {
		return nil, ruleErr(rule, op, "thread t%d not in R (status %v)", t, s.Status(t))
	}
	return ts, nil
}

func (s *State) describeE(t trace.ThreadID) string {
	ts := s.threads[t]
	if ts.idle {
		return "⊥"
	}
	return string(ts.current)
}

// InferInitialThreads returns the threads that must be framework-created
// for the trace to be executable: every thread that executes an operation
// without a preceding fork creating it.
func InferInitialThreads(tr *trace.Trace) []trace.ThreadID {
	forked := make(map[trace.ThreadID]bool)
	seen := make(map[trace.ThreadID]bool)
	var initial []trace.ThreadID
	note := func(t trace.ThreadID) {
		if !seen[t] && !forked[t] {
			initial = append(initial, t)
		}
		seen[t] = true
	}
	for _, op := range tr.Ops() {
		note(op.Thread)
		switch op.Kind {
		case trace.OpFork:
			forked[op.Other] = true
		case trace.OpPost, trace.OpJoin:
			// The destination/joined thread participates but might never
			// execute an op itself in a partial trace; only count threads
			// that actually execute.
		}
	}
	return initial
}

// Validate replays tr from the initial state with the given
// framework-created threads, applying Step to every operation. It returns
// the index of the first offending operation and the rule error, or -1 and
// nil when the whole trace is a valid execution.
func Validate(tr *trace.Trace, initial []trace.ThreadID) (int, error) {
	s := NewState(initial)
	for i, op := range tr.Ops() {
		if err := s.Step(op); err != nil {
			return i, fmt.Errorf("op %d: %w", i, err)
		}
	}
	return -1, nil
}

// ValidateInferred is Validate with the initial thread set inferred by
// InferInitialThreads. It accepts partial traces in which framework
// threads (such as the binder thread t0 in the paper's figures) appear
// without explicit threadinit operations by pre-running them.
func ValidateInferred(tr *trace.Trace) (int, error) {
	initial := InferInitialThreads(tr)
	s := NewState(initial)
	// Framework threads that never execute threadinit in a partial trace
	// are promoted to running up front.
	inits := make(map[trace.ThreadID]bool)
	for _, op := range tr.Ops() {
		if op.Kind == trace.OpThreadInit {
			inits[op.Thread] = true
		}
	}
	for _, t := range initial {
		if !inits[t] {
			if err := s.Step(trace.ThreadInit(t)); err != nil {
				return 0, err
			}
		}
	}
	for i, op := range tr.Ops() {
		if err := s.Step(op); err != nil {
			return i, fmt.Errorf("op %d: %w", i, err)
		}
	}
	return -1, nil
}
