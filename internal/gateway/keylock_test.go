package gateway

import (
	"sync"
	"testing"
	"time"
)

// A holder of one key must not block an acquirer of a different key:
// the gateway holds a key's lock across an entire failover walk, and
// striped locks here once collapsed throughput for unrelated keys
// queued behind a single slow backend.
func TestKeyedLocksDistinctKeysDoNotContend(t *testing.T) {
	var kl keyedLocks
	unlockA := kl.lock("a")
	defer unlockA()
	done := make(chan struct{})
	go func() {
		kl.lock("b")()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("holding key a blocked an acquirer of key b")
	}
}

func TestKeyedLocksSameKeySerializesAndDrains(t *testing.T) {
	var kl keyedLocks
	n := 0 // unsynchronized on purpose: -race flags any mutual-exclusion gap
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			unlock := kl.lock("k")
			n++
			unlock()
		}()
	}
	wg.Wait()
	if n != 32 {
		t.Fatalf("n = %d after 32 serialized increments, want 32", n)
	}
	kl.mu.Lock()
	defer kl.mu.Unlock()
	if len(kl.locks) != 0 {
		t.Fatalf("%d lock entries leaked after every holder released", len(kl.locks))
	}
}
