package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"droidracer/internal/faultinject"
	"droidracer/internal/flood"
	"droidracer/internal/journal"
	"droidracer/internal/obs"
	"droidracer/internal/server"
)

// startFleet boots n backend subprocesses (extraEnv[i] applies to
// backend i) and a probing gateway over them, returning everything the
// storage chaos tests drive.
func startFleet(t *testing.T, n int, extraEnv [][]string, eject int) (dirs []string, cmds []*execCmd, addrs []string, g *Gateway, gwURL string, gwLog *syncBuffer) {
	t.Helper()
	root := t.TempDir()
	dirs = make([]string, n)
	cmds = make([]*execCmd, n)
	addrs = make([]string, n)
	for i := range dirs {
		dirs[i] = filepath.Join(root, fmt.Sprintf("b%d", i))
		if err := os.MkdirAll(dirs[i], 0o777); err != nil {
			t.Fatal(err)
		}
		cmd, log := backendCmd(t, dirs[i], "2s", false, extraEnv[i]...)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		cmds[i] = &execCmd{Cmd: cmd, log: log}
		addrs[i] = "http://" + waitBackendAddr(t, dirs[i], log)
	}
	t.Cleanup(func() {
		for _, c := range cmds {
			if c.Process != nil {
				c.Process.Kill()
				c.Wait()
			}
		}
	})
	gwLog = &syncBuffer{}
	g, err := New(Config{
		Backends:       addrs,
		ProbeInterval:  50 * time.Millisecond,
		ProbeTimeout:   2 * time.Second,
		EjectThreshold: eject,
		RetryAfter:     5 * time.Second,
		Seed:           1,
		Events:         obs.NewEventLog(gwLog, "gw"),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	g.StartProbing(ctx)
	waitLive(t, g, n, "startup")
	gwSrv, gwAddr, err := g.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gwSrv.Close() })
	return dirs, cmds, addrs, g, "http://" + gwAddr, gwLog
}

// execCmd pairs a backend subprocess with its captured log.
type execCmd struct {
	*exec.Cmd
	log *bytes.Buffer
}

// TestGatewayFleetBitFlipChaos is the bit-flip acceptance proof: one
// backend of a three-backend fleet flips a bit on every spool read.
// Flooding the fleet through the gateway, every answer must be either
// digest-correct (verified against an independent in-process analysis)
// or an explicit corruption quarantine — zero silently wrong results —
// and the journal audit must show a correct completion record for every
// done key and no completion record at all for a quarantined one.
func TestGatewayFleetBitFlipChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	const flipped = 2
	env := [][]string{nil, nil, {faultinject.EnvStorageFault + "=spool.read:flip:1"}}
	dirs, _, addrs, g, gwURL, gwLog := startFleet(t, 3, env, 2)

	corpus, err := flood.BuildCorpus([]string{"Music Player", "Aard Dictionary", "Messenger"}, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	keyToBody := make(map[string][]byte, len(corpus))
	for _, b := range corpus {
		keyToBody[server.IdempotencyKey(b)] = b
	}
	sum, err := flood.Run(context.Background(), flood.Config{
		BaseURL:     gwURL,
		Requests:    len(corpus),
		Corpus:      corpus,
		Seed:        2,
		MaxAttempts: 4,
		Timeout:     20 * time.Second,
	})
	if err != nil {
		t.Fatalf("flood: %v", err)
	}
	if len(sum.AcceptedKeys) == 0 {
		t.Fatalf("flood accepted nothing: %+v", sum)
	}

	// Every accepted key terminates as digest-correct done or an explicit
	// corruption quarantine; which one is dictated by its home backend.
	cl := &server.Client{BaseURL: gwURL}
	pollCtx, pollCancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer pollCancel()
	quarantined := 0
	for _, key := range sum.AcceptedKeys {
		home := g.ring.Order(key)[0]
		var final *server.SubmitResponse
		for {
			resp, err := cl.Status(pollCtx, key)
			if err == nil && (resp.Status == server.StatusDone || resp.Status == server.StatusQuarantined) {
				final = resp
				break
			}
			if pollCtx.Err() != nil {
				t.Fatalf("key %s never terminated\ngateway:\n%s", key, gwLog.String())
			}
			time.Sleep(25 * time.Millisecond)
		}
		switch final.Status {
		case server.StatusDone:
			if want := localDigest(t, keyToBody[key]); final.Digest != want {
				t.Errorf("key %s (home %s): silently wrong answer — digest %q != local %q",
					key, home, final.Digest, want)
			}
		case server.StatusQuarantined:
			quarantined++
			if !containsCorrupt(final.Reason) {
				t.Errorf("key %s quarantined without an explicit corruption reason: %q", key, final.Reason)
			}
			if home != addrs[flipped] {
				t.Errorf("key %s quarantined on a healthy backend (home %s)", key, home)
			}
		}
	}
	// The flipped backend detected — not served — its rot: every key it
	// homed is an explicit quarantine.
	flippedKeys := 0
	for _, key := range sum.AcceptedKeys {
		if g.ring.Order(key)[0] == addrs[flipped] {
			flippedKeys++
		}
	}
	if flippedKeys == 0 {
		t.Fatalf("seed routed no keys to the flipped backend; pick a different corpus seed")
	}
	if quarantined != flippedKeys {
		t.Errorf("flipped backend homed %d keys but %d quarantined", flippedKeys, quarantined)
	}

	// Journal audit: a correct completion record for every done key,
	// and no completion record claiming success for a quarantined one.
	records := fleetRecords(t, dirs)
	for _, key := range sum.AcceptedKeys {
		name := key + ".trace"
		recs := records[name]
		if g.ring.Order(key)[0] == addrs[flipped] {
			if len(recs) != 0 {
				t.Errorf("quarantined key %s has %d completion records: %+v", key, len(recs), recs)
			}
			continue
		}
		if len(recs) != 1 {
			t.Errorf("key %s: %d completion records across the fleet, want 1: %+v", key, len(recs), recs)
			continue
		}
		if want := localDigest(t, keyToBody[key]); recs[0].Digest != want {
			t.Errorf("key %s: journaled digest %q != local digest %q", key, recs[0].Digest, want)
		}
	}
	if t.Failed() {
		t.Logf("gateway:\n%s", gwLog.String())
	}
}

// containsCorrupt reports whether a quarantine reason names corruption.
func containsCorrupt(reason string) bool {
	return bytes.Contains([]byte(reason), []byte("corrupt"))
}

// TestGatewayRoutesAroundStorageDegraded is the fleet half of the
// ENOSPC proof: a backend whose journal device fills poisons itself and
// flips /readyz to 503, the gateway ejects it and fails fresh work over
// to the healthy peer, and a restart with space available reinstates it
// with an intact journal and restored acceptance.
func TestGatewayRoutesAroundStorageDegraded(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	// b0's journal fsync returns ENOSPC from hit 2 onward: Create's
	// truncation sync passes, the first completion record's Sync poisons.
	env := [][]string{{faultinject.EnvStorageFault + "=journal.sync:enospc:2"}, nil}
	dirs, cmds, addrs, g, gwURL, gwLog := startFleet(t, 2, env, 1)

	corpus, err := flood.BuildCorpus([]string{"Music Player", "Aard Dictionary", "Messenger"}, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	var homed [][]byte
	for _, b := range corpus {
		if g.ring.Order(server.IdempotencyKey(b))[0] == addrs[0] {
			homed = append(homed, b)
		}
	}
	if len(homed) < 3 {
		t.Fatalf("only %d corpus bodies home to b0; enlarge the corpus", len(homed))
	}
	trigger, failover, restored := homed[0], homed[1], homed[2]

	// The trigger lands on b0, completes in memory, and its completion
	// record's fsync poisons the journal.
	cl := &server.Client{BaseURL: gwURL, BaseBackoff: 10 * time.Millisecond, MaxAttempts: 6, Seed: 5}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, _, err := cl.Submit(ctx, trigger); err != nil {
		t.Fatalf("trigger submission: %v\ngw:\n%s", err, gwLog.String())
	}
	waitDone(t, ctx, cl, server.IdempotencyKey(trigger), gwLog)

	// The poisoned backend fails its readiness probes; the gateway ejects
	// it and routes fresh work to the survivor.
	waitLive(t, g, 1, "after poison")
	resp, code := submitRaw(t, gwURL, failover)
	if code != http.StatusAccepted {
		t.Fatalf("failover submit = %d %+v, want 202 from the healthy peer\ngw:\n%s", code, resp, gwLog.String())
	}
	// (The journal audit below proves the work landed on b1 — an ejected
	// home is skipped at ring-walk time, so the failover counter, which
	// tracks mid-forward failures, legitimately stays put.)
	waitDone(t, ctx, cl, server.IdempotencyKey(failover), gwLog)

	// Restart b0 with space available (no fault): the journal recovers
	// intact — degraded, never corrupted — and acceptance is restored.
	cmds[0].Process.Kill()
	cmds[0].Wait()
	jpath := filepath.Join(dirs[0], "state", "daemon.journal")
	if _, stats, err := journal.RecoverStats(jpath); err != nil || stats.Corrupt != 0 {
		t.Fatalf("b0 journal after ENOSPC: corrupt=%d err=%v, want intact", stats.Corrupt, err)
	}
	cmd, log := backendCmd(t, dirs[0], "2s", false)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	cmds[0].Cmd, cmds[0].log = cmd, log
	waitLive(t, g, 2, "after restart")
	resp, code = submitRaw(t, gwURL, restored)
	if code != http.StatusAccepted {
		t.Fatalf("post-restart submit = %d %+v, want acceptance restored\ngw:\n%s", code, resp, gwLog.String())
	}
	waitDone(t, ctx, cl, server.IdempotencyKey(restored), gwLog)

	// The failed-over key lives on the survivor, exactly once, with the
	// independent digest.
	for _, c := range cmds {
		c.Process.Kill()
		c.Wait()
	}
	records := fleetRecords(t, dirs)
	name := server.IdempotencyKey(failover) + ".trace"
	recs := records[name]
	if len(recs) != 1 || recs[0].dir != "b1" {
		t.Fatalf("failover key records = %+v, want exactly one on b1", recs)
	}
	if want := localDigest(t, failover); recs[0].Digest != want {
		t.Fatalf("failover digest %q != local digest %q", recs[0].Digest, want)
	}
	if _, stats, err := journal.RecoverStats(jpath); err != nil || stats.Corrupt != 0 {
		t.Fatalf("b0 journal after recovery: corrupt=%d err=%v", stats.Corrupt, err)
	}
}

// submitRaw posts one body to the gateway without retries.
func submitRaw(t *testing.T, gwURL string, body []byte) (*server.SubmitResponse, int) {
	t.Helper()
	hr, err := http.Post(gwURL+"/v1/jobs", "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var resp server.SubmitResponse
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	return &resp, hr.StatusCode
}

// waitDone polls a key through the gateway until it completes.
func waitDone(t *testing.T, ctx context.Context, cl *server.Client, key string, gwLog *syncBuffer) {
	t.Helper()
	for {
		resp, err := cl.Status(ctx, key)
		if err == nil && resp.Status == server.StatusDone {
			return
		}
		if err == nil && resp.Status == server.StatusQuarantined {
			t.Fatalf("key %s quarantined (%s)", key, resp.Reason)
		}
		if ctx.Err() != nil {
			t.Fatalf("key %s never completed\ngw:\n%s", key, gwLog.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
}
