module droidracer

go 1.22
