package race

import (
	"testing"

	"droidracer/internal/hb"
	"droidracer/internal/trace"
)

// build analyzes and builds the graph for classification tests.
func build(t *testing.T, tr *trace.Trace) *Detector {
	t.Helper()
	info, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	return NewDetector(hb.Build(info, hb.DefaultConfig()))
}

// TestCoEnabledPrecedesDelayed: a race satisfying both the co-enabled and
// delayed criteria classifies as co-enabled — §4.3 checks the criteria in
// presentation order.
func TestCoEnabledPrecedesDelayed(t *testing.T) {
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.LoopOnQ(1),
		trace.ThreadInit(2),
		trace.ThreadInit(3),
		trace.Enable(2, "alarm1"),
		trace.PostDelayed(2, "alarm1", 1, 100),
		trace.Enable(3, "alarm2"),
		trace.PostDelayed(3, "alarm2", 1, 300),
		trace.Begin(1, "alarm1"),
		trace.Write(1, "x"),
		trace.End(1, "alarm1"),
		trace.Begin(1, "alarm2"),
		trace.Write(1, "x"),
		trace.End(1, "alarm2"),
	})
	races := build(t, tr).Detect()
	if len(races) != 1 {
		t.Fatalf("races = %v", races)
	}
	if races[0].Category != CoEnabled {
		t.Fatalf("category = %v, want co-enabled (precedence over delayed)", races[0].Category)
	}
}

// TestDelayedPrecedesCrossPosted: both delayed and cross-posted criteria
// hold; delayed wins.
func TestDelayedPrecedesCrossPosted(t *testing.T) {
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.LoopOnQ(1),
		trace.ThreadInit(2),
		trace.ThreadInit(3),
		trace.PostDelayed(2, "d1", 1, 100),
		trace.Post(3, "p2", 1),
		trace.Begin(1, "p2"),
		trace.Write(1, "x"),
		trace.End(1, "p2"),
		trace.Begin(1, "d1"),
		trace.Write(1, "x"),
		trace.End(1, "d1"),
	})
	races := build(t, tr).Detect()
	if len(races) != 1 {
		t.Fatalf("races = %v", races)
	}
	if races[0].Category != Delayed {
		t.Fatalf("category = %v, want delayed (precedence over cross-posted)", races[0].Category)
	}
}

// TestChainWalksNestedPosts: classification uses the most recent matching
// post of the whole chain, not just the immediate one.
func TestChainWalksNestedPosts(t *testing.T) {
	// Thread 2 posts task a; a posts b (self-post); b's access races with
	// task c posted by thread 3. The most recent cross post of b's chain is
	// post(a) by t2 — distinct from c's post by t3 → cross-posted.
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.LoopOnQ(1),
		trace.ThreadInit(2),
		trace.ThreadInit(3),
		trace.Post(2, "a", 1),
		trace.Begin(1, "a"),
		trace.Post(1, "b", 1),
		trace.End(1, "a"),
		trace.Post(3, "c", 1),
		trace.Begin(1, "b"),
		trace.Write(1, "x"),
		trace.End(1, "b"),
		trace.Begin(1, "c"),
		trace.Write(1, "x"),
		trace.End(1, "c"),
	})
	d := build(t, tr)
	races := d.Detect()
	if len(races) != 1 {
		t.Fatalf("races = %v", races)
	}
	if races[0].Category != CrossPosted {
		t.Fatalf("category = %v, want cross-posted via the nested chain", races[0].Category)
	}
}

// TestSameEventPostNotCoEnabled: two accesses descending from the SAME
// enabled post are not co-enabled (βi = βj ⇒ βi ≼ βj).
func TestSameEventPostNotCoEnabled(t *testing.T) {
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.LoopOnQ(1),
		trace.ThreadInit(2),
		trace.Enable(2, "parent"),
		trace.Post(2, "parent", 1),
		trace.Begin(1, "parent"),
		trace.Post(1, "backTask", 1),
		trace.PostFront(1, "frontTask", 1),
		trace.End(1, "parent"),
		trace.Begin(1, "frontTask"),
		trace.Read(1, "x"),
		trace.End(1, "frontTask"),
		trace.Begin(1, "backTask"),
		trace.Write(1, "x"),
		trace.End(1, "backTask"),
	})
	races := build(t, tr).Detect()
	if len(races) != 1 {
		t.Fatalf("races = %v", races)
	}
	if races[0].Category != Unknown {
		t.Fatalf("category = %v, want unknown (same event post on both chains)", races[0].Category)
	}
}

// TestWriteWriteRace: write-write pairs race like read-write pairs.
func TestWriteWriteRace(t *testing.T) {
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.ThreadInit(2),
		trace.Write(1, "x"),
		trace.Write(2, "x"),
	})
	races := build(t, tr).Detect()
	if len(races) != 1 || races[0].Category != Multithreaded {
		t.Fatalf("races = %v", races)
	}
}

// TestDetectOrderingDeterministic: Detect returns races sorted by trace
// position regardless of map iteration.
func TestDetectOrderingDeterministic(t *testing.T) {
	ops := []trace.Op{trace.ThreadInit(1), trace.ThreadInit(2)}
	for _, loc := range []trace.Loc{"z", "a", "m", "q", "b"} {
		ops = append(ops, trace.Write(1, loc), trace.Write(2, loc))
	}
	tr := trace.FromOps(ops)
	d := build(t, tr)
	first := d.Detect()
	for round := 0; round < 5; round++ {
		again := d.Detect()
		if len(again) != len(first) {
			t.Fatal("race count varies")
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("ordering varies at %d", i)
			}
		}
	}
	for i := 1; i < len(first); i++ {
		if first[i-1].First > first[i].First {
			t.Fatal("races not sorted by position")
		}
	}
}
