// Package storage is the thin file-system seam of the persistence
// stack: the journal and the server spool do their disk I/O through the
// FS interface so chaos tests can slide a fault-injecting layer (see
// faultinject.Storage) underneath without touching production code
// paths. The package also owns the content-integrity vocabulary the
// stack shares — the sha256-derived content key that names spool files,
// read-back verification against that key, and the corruption error
// type — plus the droidracer_storage_errors_total metric every storage
// failure is classified into.
//
// The integrity rule is end-to-end: a name (spool file) or record
// (journal entry) commits to a digest of its content at write time, and
// every read back recomputes and compares. Storage that lies — bit rot,
// torn sectors, a misdirected write — surfaces as a *CorruptError
// instead of being analyzed or replayed as if it were the original
// bytes.
package storage

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"strings"
	"syscall"
)

// File is the slice of *os.File the journal and spool need. *os.File
// implements it; fault layers wrap it.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
}

// FS is the file-system surface of the persistence stack. OS is the
// real thing; faultinject.Storage returns a wrapper that injects disk
// faults when armed.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// OS is the passthrough FS over the real file system.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }

// KeyLen is the length of a content key in hex characters: the first 8
// bytes of a sha256, the same truncation jobs.ResultDigest uses.
const KeyLen = 16

// Key derives the content key of a body: hex of the first 8 bytes of
// its sha256. It is simultaneously the submit API's idempotency key and
// the spool file stem — which is what makes spool reads verifiable: the
// file name commits to the content it was written with.
func Key(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:8])
}

// ContentKey extracts the content key a spool-style file name commits
// to: a bare 16-hex-char stem, optionally suffixed ".trace". Names that
// carry no key (operator-dropped files like "music.trace", dotfiles,
// repair artifacts) return ok=false and are exempt from verification.
func ContentKey(name string) (key string, ok bool) {
	stem := strings.TrimSuffix(name, ".trace")
	if len(stem) != KeyLen {
		return "", false
	}
	for i := 0; i < len(stem); i++ {
		c := stem[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", false
		}
	}
	return stem, true
}

// VerifyBody checks body against the content key its file name commits
// to. Names without a key verify trivially; a mismatch returns a
// *CorruptError.
func VerifyBody(name string, body []byte) error {
	key, ok := ContentKey(name)
	if !ok {
		return nil
	}
	if got := Key(body); got != key {
		return &CorruptError{Path: name, Want: key, Got: got}
	}
	return nil
}

// CorruptError reports a content-integrity failure: bytes read back
// from storage no longer match the digest their file name or journal
// record committed to at write time.
type CorruptError struct {
	// Path is the file the corrupt bytes came from (journal path or
	// spool file name).
	Path string
	// Seq is the journal sequence number of the corrupt record; 0 for
	// spool files.
	Seq int
	// Offset is the byte offset of the corrupt record in a journal.
	Offset int64
	// Want is the committed digest (stored CRC or name-derived key);
	// Got is what the bytes actually hash to.
	Want, Got string
	// Reason refines the classification when the mismatch is not a
	// plain digest failure (e.g. "out-of-sequence").
	Reason string
}

func (e *CorruptError) Error() string {
	what := "corrupt content"
	if e.Seq > 0 {
		what = fmt.Sprintf("corrupt record seq=%d offset=%d", e.Seq, e.Offset)
	}
	msg := fmt.Sprintf("storage: %s: %s", e.Path, what)
	if e.Reason != "" {
		msg += " (" + e.Reason + ")"
	}
	if e.Want != "" || e.Got != "" {
		msg += fmt.Sprintf(": want %s, got %s", e.Want, e.Got)
	}
	return msg
}

// IsCorrupt reports whether err is (or wraps) a CorruptError.
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}

// Kind classifies a storage error for the kind label of
// droidracer_storage_errors_total: enospc, corrupt, eio, or other.
func Kind(err error) string {
	switch {
	case IsCorrupt(err):
		return "corrupt"
	case errors.Is(err, syscall.ENOSPC):
		return "enospc"
	case errors.Is(err, syscall.EIO):
		return "eio"
	default:
		return "other"
	}
}

// CountError records a non-nil err under
// droidracer_storage_errors_total{op,kind} and returns err unchanged,
// so call sites can wrap it inline. op names the failed operation as
// "<scope>.<verb>" (journal.sync, spool.write, spool.read, ...).
func CountError(op string, err error) error {
	if err != nil {
		errorsTotal(op, Kind(err)).Inc()
	}
	return err
}
