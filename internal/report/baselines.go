package report

import (
	"fmt"

	"droidracer/internal/baseline"
	"droidracer/internal/eval"
	"droidracer/internal/trace"
)

// Baselines compares the baseline detectors of §7 against the full
// DroidRacer analysis on the same traces: for each app and detector, the
// racy locations reported, how many of those DroidRacer also reports
// (agreement), how many are extra (the baseline's false-positive modes),
// and how many DroidRacer locations the baseline misses (false-negative
// modes, e.g. single-threaded races invisible to pure multithreaded
// happens-before).
func Baselines(results []*eval.AppResult, detectors []baseline.Detector) string {
	t := &table{header: []string{"Application", "Detector", "Locs", "Agree", "Extra", "Missed"}}
	for _, r := range results {
		full := make(map[trace.Loc]bool)
		for _, rc := range r.Races {
			full[rc.Loc] = true
		}
		for _, d := range detectors {
			locs := baseline.Locs(d.Detect(r.Test.Trace))
			agree, extra := 0, 0
			for l := range locs {
				if full[l] {
					agree++
				} else {
					extra++
				}
			}
			missed := 0
			for l := range full {
				if !locs[l] {
					missed++
				}
			}
			t.addRow(r.App.Name(), d.Name(),
				fmt.Sprintf("%d", len(locs)),
				fmt.Sprintf("%d", agree),
				fmt.Sprintf("%d", extra),
				fmt.Sprintf("%d", missed))
		}
	}
	return "Baseline detectors vs DroidRacer (racy locations)\n" + t.String()
}
