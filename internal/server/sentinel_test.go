package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"droidracer/internal/faultinject"
	"droidracer/internal/jobs"
	"droidracer/internal/journal"
	"droidracer/internal/sentinel"
)

// sentinelWorkerMarker gates TestServerSentinelWorkerProcess, the worker
// subprocess the isolator tests re-exec this test binary into.
const sentinelWorkerMarker = "DROIDRACER_SERVER_TEST_WORKER"

func TestServerSentinelWorkerProcess(t *testing.T) {
	if os.Getenv(sentinelWorkerMarker) != "1" {
		t.Skip("not a worker invocation")
	}
	os.Exit(sentinel.WorkerMain())
}

// testIsolator re-execs this test binary as a sandboxed worker; extraEnv
// arms child-side faults.
func testIsolator(extraEnv ...string) *sentinel.Isolator {
	return &sentinel.Isolator{
		Exe:      os.Args[0],
		Args:     []string{"-test.run=^TestServerSentinelWorkerProcess$"},
		Env:      append([]string{sentinelWorkerMarker + "=1"}, extraEnv...),
		MemLimit: 256 << 20,
		Wall:     time.Minute,
	}
}

// heavyBody builds a valid trace whose alternating-thread accesses
// defeat node merging, so the admission estimate is large while the body
// stays small — the memory-bomb shape.
func heavyBody(writes int) []byte {
	var sb strings.Builder
	sb.WriteString("threadinit(t1)\nfork(t1,t2)\nthreadinit(t2)\n")
	for i := 0; i < writes; i++ {
		fmt.Fprintf(&sb, "write(t%d,x)\n", 1+i%2)
	}
	return []byte(sb.String())
}

func TestSubmitCostExceeded(t *testing.T) {
	h := newHarness(t, jobs.Config{Workers: 1},
		Config{Cost: sentinel.CostLimits{Hard: 1 << 20}})
	resp, httpResp := h.post(t, heavyBody(4000), nil)
	if httpResp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("heavy submit = %d, want 413", httpResp.StatusCode)
	}
	if resp.Status != StatusRejected || resp.Reason != RejectCostExceeded {
		t.Fatalf("response = %+v", resp)
	}
	// The 413 carries the estimate so the client learns why.
	if resp.Estimate == nil || resp.Estimate.MemBytes <= 1<<20 || resp.Estimate.Nodes < 4000 {
		t.Fatalf("413 without a meaningful estimate: %+v", resp.Estimate)
	}
	// Nothing was spooled for a refused submission.
	ents, err := os.ReadDir(h.spool)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("refused submission left %d spool entries", len(ents))
	}
}

func TestSubmitSizeDirectiveBomb(t *testing.T) {
	h := newHarness(t, jobs.Config{Workers: 1},
		Config{Cost: sentinel.CostLimits{Hard: 1 << 30}})
	bomb := []byte("#! ops=400000000\nthreadinit(t1)\n")
	resp, httpResp := h.post(t, bomb, nil)
	if httpResp.StatusCode != http.StatusUnprocessableEntity || resp.Reason != RejectMalformedTrace {
		t.Fatalf("directive bomb = %d %+v, want 422 malformed-trace", httpResp.StatusCode, resp)
	}
}

func TestBrownoutDegradesAndRefuses(t *testing.T) {
	mem := int64(0)
	snt := sentinel.New(sentinel.Config{Watermark: 1000, MemFn: func() int64 { return mem }})
	// The soft ceiling is low and the heavy bodies small so the isolated
	// runs stay fast even race-instrumented: TSan multiplies both the
	// closure time and the worker's address-space appetite.
	h := newHarness(t, jobs.Config{Workers: 1}, Config{
		Sentinel: snt,
		Cost:     sentinel.CostLimits{Soft: 256 << 10},
		Isolator: testIsolator(),
	})

	// Healthy: readyz 200.
	r, err := http.Get(h.ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/readyz healthy = %d", r.StatusCode)
	}

	// Cross the watermark.
	mem = 5000
	snt.Sample()

	// Heavy work is refused 503 resource-degraded with an honest hint.
	resp, httpResp := h.post(t, heavyBody(1200), nil)
	if httpResp.StatusCode != http.StatusServiceUnavailable || resp.Reason != RejectResourceDegraded {
		t.Fatalf("heavy during brownout = %d %+v", httpResp.StatusCode, resp)
	}
	if resp.RetryAfterSeconds < 1 {
		t.Fatalf("resource-degraded without Retry-After: %+v", resp)
	}

	// readyz reports the resource condition so probers route around.
	r, err = http.Get(h.ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	cond, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable || strings.TrimSpace(string(cond)) != "resource" {
		t.Fatalf("/readyz browned out = %d %q, want 503 resource", r.StatusCode, cond)
	}

	// Liveness is unaffected.
	r, err = http.Get(h.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/healthz browned out = %d", r.StatusCode)
	}

	// Non-heavy work is still accepted but runs the pure-MT baseline.
	resp, httpResp = h.post(t, figure4Body(t), nil)
	if httpResp.StatusCode != http.StatusAccepted {
		t.Fatalf("normal during brownout = %d %+v", httpResp.StatusCode, resp)
	}
	done := h.waitStatus(t, resp.Job, StatusDone)
	if done.Mode != "degraded" {
		t.Fatalf("brownout job mode = %q, want degraded", done.Mode)
	}

	// Recovery restores full fidelity and readiness.
	mem = 100
	snt.Sample()
	r, err = http.Get(h.ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/readyz recovered = %d", r.StatusCode)
	}
	resp, httpResp = h.post(t, heavyBody(1200), nil)
	if httpResp.StatusCode != http.StatusAccepted {
		t.Fatalf("heavy after recovery = %d %+v", httpResp.StatusCode, resp)
	}
	h.waitStatus(t, resp.Job, StatusDone)
}

// TestWorkerOOMKilledQuarantinedAndReplayed is the satellite-c scenario:
// an isolated worker is OOM-killed mid-analysis (SIGKILL at the
// sentinel.worker kill-point — death without a word, exactly like the
// kernel's OOM killer), the parent classifies the death, the input is
// quarantined with a "resource" reason, and after a restart the
// recovered journal answers the replay 422 without ever re-running the
// bomb.
func TestWorkerOOMKilledQuarantinedAndReplayed(t *testing.T) {
	qdir := t.TempDir()
	h := newHarness(t,
		jobs.Config{Workers: 1, Quarantine: &jobs.Quarantine{Dir: qdir}},
		Config{
			Cost: sentinel.CostLimits{Soft: 1 << 20},
			Isolator: testIsolator(
				faultinject.EnvKillpoint + "=sentinel.worker"),
		})
	body := heavyBody(4000)

	resp, httpResp := h.post(t, body, nil)
	if httpResp.StatusCode != http.StatusAccepted {
		t.Fatalf("heavy submit = %d %+v", httpResp.StatusCode, resp)
	}
	q := h.waitStatus(t, resp.Job, StatusQuarantined)
	if !strings.HasPrefix(q.Reason, "resource: "+sentinel.ClassOOMKill) {
		t.Fatalf("quarantine reason = %q, want a resource: %s prefix", q.Reason, sentinel.ClassOOMKill)
	}

	// Exactly one resource quarantine record made it into the journal.
	h.pool.Quiesce()
	h.w.Sync()
	entries, err := journal.Recover(h.jpath)
	if err != nil {
		t.Fatal(err)
	}
	resourceRecords := 0
	for name, reason := range jobs.QuarantinedJobs(entries) {
		if strings.HasPrefix(reason, "resource: ") {
			t.Logf("quarantined %s: %s", name, reason)
			resourceRecords++
		}
	}
	if resourceRecords != 1 {
		t.Fatalf("journal holds %d resource quarantine records, want exactly 1", resourceRecords)
	}

	// Restart: a server seeded from the recovered journal answers the
	// replay 422 immediately — the bomb never runs again.
	srv2 := New(Config{
		Pool:        h.pool,
		Spool:       h.spool,
		Quarantined: jobs.QuarantinedJobs(entries),
	})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	r2, err := http.Post(ts2.URL+"/v1/jobs", "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("recovered server replay = %d, want 422", r2.StatusCode)
	}
}

func TestStorageDegradedRetryAfterClamped(t *testing.T) {
	// Satellite b: degraded-state hints pass through the clamp. A
	// configured hint above the ceiling must come back clamped.
	poisoned := fmt.Errorf("journal: poisoned by failed fsync")
	h := newHarness(t, jobs.Config{Workers: 1}, Config{
		StorageErr:        func() error { return poisoned },
		StorageRetryAfter: time.Hour,
		MaxRetryAfter:     10 * time.Second,
	})
	resp, httpResp := h.post(t, figure4Body(t), nil)
	if httpResp.StatusCode != http.StatusServiceUnavailable || resp.Reason != RejectStorageDegraded {
		t.Fatalf("storage-degraded = %d %+v", httpResp.StatusCode, resp)
	}
	if resp.RetryAfterSeconds != 10 {
		t.Fatalf("Retry-After = %ds, want clamped to 10", resp.RetryAfterSeconds)
	}
}
