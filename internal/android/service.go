package android

import (
	"fmt"

	"droidracer/internal/lifecycle"
	"droidracer/internal/sched"
	"droidracer/internal/trace"
)

// Service is the application-visible interface for started services. The
// callbacks run on the main thread, as in Android; services performing
// background work fork threads or HandlerThreads from their callbacks.
type Service interface {
	OnCreate(c *Ctx)
	OnStartCommand(c *Ctx)
	OnDestroy(c *Ctx)
}

// BaseService provides no-op service callbacks.
type BaseService struct{}

// OnCreate implements Service.
func (BaseService) OnCreate(*Ctx) {}

// OnStartCommand implements Service.
func (BaseService) OnStartCommand(*Ctx) {}

// OnDestroy implements Service.
func (BaseService) OnDestroy(*Ctx) {}

type serviceRecord struct {
	name     string
	instance Service
	machine  *lifecycle.Service
}

// RegisterService registers a service class under name.
func (e *Env) RegisterService(name string, factory func() Service) {
	e.services[name] = &serviceRecord{name: name, instance: factory(), machine: lifecycle.NewService()}
}

// StartService starts a registered service: the lifecycle callbacks
// (onCreate on first start, then onStartCommand) are enabled by the caller
// and posted to the main thread through the binder.
func (c *Ctx) StartService(name string) {
	e := c.Env
	rec, ok := e.services[name]
	if !ok {
		modelFail("StartService", fmt.Sprintf("service %q", name), "not registered")
	}
	seq, err := rec.machine.StartSequence()
	if err != nil {
		modelFail("StartService", fmt.Sprintf("service %q", name), "%v", err)
	}
	// The machine transitions at request time: the scheduled callbacks are
	// now committed, and a later StartService/StopService must see the
	// state they will produce. Execution order on the main thread matches
	// request order by FIFO dispatch.
	for _, cb := range seq {
		if err := rec.machine.Apply(cb); err != nil {
			panic(err)
		}
	}
	id := e.sim.FreshTask(name + ".start")
	c.T.Enable(id)
	e.amsExec(func(b *sched.Thread) {
		b.PostTask(e.main, id, func(t *sched.Thread) {
			sc := e.ctx(t, nil)
			for _, cb := range seq {
				switch cb {
				case lifecycle.SvcOnCreate:
					rec.instance.OnCreate(sc)
				case lifecycle.SvcOnStartCommand:
					rec.instance.OnStartCommand(sc)
				}
			}
		})
	})
}

// StopService stops a running service; onDestroy is posted to the main
// thread.
func (c *Ctx) StopService(name string) {
	e := c.Env
	rec, ok := e.services[name]
	if !ok {
		modelFail("StopService", fmt.Sprintf("service %q", name), "not registered")
	}
	if _, err := rec.machine.StopSequence(); err != nil {
		modelFail("StopService", fmt.Sprintf("service %q", name), "%v", err)
	}
	if err := rec.machine.Apply(lifecycle.SvcOnDestroy); err != nil {
		panic(err)
	}
	id := e.sim.FreshTask(name + ".onDestroy")
	c.T.Enable(id)
	e.amsExec(func(b *sched.Thread) {
		b.PostTask(e.main, id, func(t *sched.Thread) {
			rec.instance.OnDestroy(e.ctx(t, nil))
		})
	})
}

// ReceiverFunc handles a delivered broadcast.
type ReceiverFunc func(c *Ctx, action string)

// ReceiverHandle identifies a registration for unregistering.
type ReceiverHandle struct {
	rec *receiverRecord
}

type receiverRecord struct {
	action     string
	fn         ReceiverFunc
	machine    *lifecycle.Receiver
	armed      trace.TaskID
	registered bool
}

// RegisterReceiver dynamically registers a broadcast receiver for action.
// Registration enables the next onReceive delivery, connecting the
// registration to the callback as §5 describes for BroadcastReceiver.
func (c *Ctx) RegisterReceiver(action string, fn ReceiverFunc) *ReceiverHandle {
	e := c.Env
	rec := &receiverRecord{action: action, fn: fn, machine: lifecycle.NewReceiver()}
	if err := rec.machine.Register(); err != nil {
		panic(err)
	}
	rec.registered = true
	rec.armed = e.sim.FreshTask("onReceive." + action)
	c.T.Enable(rec.armed)
	e.receivers[action] = append(e.receivers[action], rec)
	return &ReceiverHandle{rec: rec}
}

// UnregisterReceiver stops delivery to the handle's receiver.
func (c *Ctx) UnregisterReceiver(h *ReceiverHandle) {
	if err := h.rec.machine.Unregister(); err != nil {
		panic(err)
	}
	h.rec.registered = false
	recs := c.Env.receivers[h.rec.action]
	for i, r := range recs {
		if r == h.rec {
			c.Env.receivers[h.rec.action] = append(recs[:i], recs[i+1:]...)
			return
		}
	}
}

// SendBroadcast delivers action to every registered receiver: the system
// posts each armed onReceive task to the main thread, and the receiver
// re-arms after delivery while it stays registered.
func (c *Ctx) SendBroadcast(action string) {
	c.Env.deliverBroadcast(action)
}

// FireBroadcast injects a system-sent intent from the driver (the
// explorer's EvBroadcast event): registered receivers for the action get
// their armed onReceive tasks posted through the binder. Intent injection
// in the testing phase is the paper's stated future work.
func (e *Env) FireBroadcast(action string) error {
	delivered := e.deliverBroadcast(action)
	if delivered == 0 {
		return fmt.Errorf("android: no registered receiver for %q", action)
	}
	return nil
}

// deliverBroadcast posts the armed onReceive task of every registered
// receiver for action and returns how many deliveries were scheduled.
func (e *Env) deliverBroadcast(action string) int {
	delivered := 0
	for _, rec := range e.receivers[action] {
		if !rec.machine.CanReceive() || rec.armed == "" {
			continue
		}
		rec := rec
		id := rec.armed
		rec.armed = "" // consumed; re-armed after delivery
		delivered++
		e.amsExec(func(b *sched.Thread) {
			b.PostTask(e.main, id, func(t *sched.Thread) {
				rc := e.ctx(t, nil)
				rec.fn(rc, action)
				if rec.registered {
					rec.armed = e.sim.FreshTask("onReceive." + action)
					t.Enable(rec.armed)
				}
			})
		})
	}
	return delivered
}

// IntentService mirrors android.app.IntentService: start requests are
// handled sequentially on a dedicated worker HandlerThread.
type IntentService struct {
	BaseService
	// Name names the worker thread and the handler tasks.
	Name string
	// OnHandleIntent processes one start request on the worker thread.
	OnHandleIntent func(c *Ctx)

	h *Handler
}

// OnCreate implements Service: it spawns the worker thread.
func (s *IntentService) OnCreate(c *Ctx) {
	s.h = c.NewHandlerThread(s.Name + "-worker")
}

// OnStartCommand implements Service: each start is queued to the worker.
func (s *IntentService) OnStartCommand(c *Ctx) {
	fn := s.OnHandleIntent
	s.h.Post(c, s.Name+".handleIntent", func(wc *Ctx) {
		if fn != nil {
			fn(wc)
		}
	})
}
