// Command droidracer runs the full DroidRacer pipeline on one application
// model: systematic UI exploration, trace generation, happens-before
// analysis, race detection, classification, and optional reorder-replay
// verification of each reported race (the paper's true-positive check).
//
// Usage:
//
//	droidracer -app "Music Player" [-k 2] [-max-tests 12] [-verify] [-v]
//	           [-deadline 30s] [-retries 2]
//	droidracer -list
//
// With -deadline both exploration and per-test analysis are budgeted;
// a test whose analysis fails or runs out of budget is reported and
// skipped instead of aborting the run. -retries adds seeded
// retry-with-backoff rounds to -verify.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"droidracer"
	"droidracer/internal/apps"
	"droidracer/internal/explorer"
	"droidracer/internal/race"
)

func main() {
	appName := flag.String("app", "", "application model to test (see -list)")
	k := flag.Int("k", 0, "event-sequence bound (0 = the app's default)")
	maxTests := flag.Int("max-tests", 0, "cap on explored tests (0 = the app's default)")
	verify := flag.Bool("verify", false, "attempt reorder-replay verification of each reported race")
	attempts := flag.Int("attempts", 60, "verification attempts per race and round")
	retries := flag.Int("retries", 0, "extra verification rounds with backoff after an unconfirmed first round")
	deadline := flag.Duration("deadline", 0, "wall-clock budget for exploration and for each test's analysis (0 = unlimited)")
	verbose := flag.Bool("v", false, "print every explored test")
	list := flag.Bool("list", false, "list available application models")
	flag.Parse()

	if *list {
		for _, name := range apps.Names() {
			fmt.Println(name)
		}
		return
	}
	if *appName == "" {
		fatal(fmt.Errorf("missing -app (use -list to see models)"))
	}
	app, err := apps.New(*appName)
	if err != nil {
		fatal(err)
	}
	opts := app.Explore()
	if *k > 0 {
		opts.MaxEvents = *k
	}
	if *maxTests > 0 {
		opts.MaxTests = *maxTests
	}
	opts.Budget = droidracer.Budget{Wall: *deadline}
	factory := apps.Factory(app)
	res, err := explorer.ExploreContext(context.Background(), factory, opts)
	if err != nil {
		if _, ok := droidracer.AsBudgetError(err); !ok || res == nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "droidracer: %v; analyzing the %d tests explored so far\n", err, len(res.Tests))
	}
	fmt.Printf("%s: %d tests explored (%d sequences, %d events fired)\n",
		app.Name(), len(res.Tests), res.SequencesExplored, res.EventsFired)

	policy := droidracer.DefaultRetryPolicy(*attempts)
	policy.Retries = *retries

	type key struct {
		loc string
		cat race.Category
	}
	reported := map[key]bool{}
	failed := 0
	aopts := droidracer.DefaultOptions()
	aopts.Budget = droidracer.Budget{Wall: *deadline}
	for _, test := range res.Tests {
		result, err := droidracer.AnalyzeContext(context.Background(), test.Trace, aopts)
		if err != nil {
			// One bad test fails its own row, not the whole run.
			failed++
			fmt.Fprintf(os.Stderr, "droidracer: test %s: %v (skipped)\n", test.Name(), err)
			continue
		}
		if *verbose {
			mode := ""
			if result.Degraded {
				mode = " [degraded]"
			}
			fmt.Printf("  test %-40s %6d ops, %d race(s)%s\n", test.Name(), test.Trace.Len(), len(result.Races), mode)
		}
		for _, r := range result.Races {
			kk := key{string(r.Loc), r.Category}
			if reported[kk] {
				continue
			}
			reported[kk] = true
			fmt.Printf("  %-13s race on %-40s (test %s)\n", r.Category, r.Loc, test.Name())
			if *verify && result.Info != nil {
				v, err := droidracer.VerifyRaceWithRetry(factory, test.Sequence, result.Info, r, policy)
				if err != nil {
					fmt.Fprintf(os.Stderr, "droidracer: verify %s: %v\n", r.Loc, err)
					continue
				}
				if v.Confirmed {
					fmt.Printf("                CONFIRMED: reordered under seed %d (%d attempts, %d round(s))\n", v.Seed, v.Attempts, v.Rounds)
				} else {
					fmt.Printf("                unconfirmed after %d attempts in %d round(s) (possible false positive)\n", v.Attempts, v.Rounds)
				}
			}
		}
	}
	fmt.Printf("%d distinct race report(s)\n", len(reported))
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "droidracer: %d test(s) failed analysis\n", failed)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "droidracer:", err)
	os.Exit(1)
}
