package android

import (
	"fmt"

	"droidracer/internal/lifecycle"
	"droidracer/internal/sched"
	"droidracer/internal/trace"
)

// Activity is the application-visible lifecycle interface. Embed
// BaseActivity to implement only the callbacks a component cares about.
type Activity interface {
	OnCreate(c *Ctx)
	OnStart(c *Ctx)
	OnResume(c *Ctx)
	OnPause(c *Ctx)
	OnStop(c *Ctx)
	OnRestart(c *Ctx)
	OnDestroy(c *Ctx)
}

// BaseActivity provides no-op lifecycle callbacks.
type BaseActivity struct{}

// OnCreate implements Activity.
func (BaseActivity) OnCreate(*Ctx) {}

// OnStart implements Activity.
func (BaseActivity) OnStart(*Ctx) {}

// OnResume implements Activity.
func (BaseActivity) OnResume(*Ctx) {}

// OnPause implements Activity.
func (BaseActivity) OnPause(*Ctx) {}

// OnStop implements Activity.
func (BaseActivity) OnStop(*Ctx) {}

// OnRestart implements Activity.
func (BaseActivity) OnRestart(*Ctx) {}

// OnDestroy implements Activity.
func (BaseActivity) OnDestroy(*Ctx) {}

// Ctx is the execution context passed to every application callback: the
// simulated thread running the code, the environment, and the activity the
// callback belongs to (nil for services, receivers, and plain background
// work).
type Ctx struct {
	T   *sched.Thread
	Env *Env
	rec *activityRecord
}

func (e *Env) ctx(t *sched.Thread, rec *activityRecord) *Ctx {
	return &Ctx{T: t, Env: e, rec: rec}
}

// Read logs a read of m on the current thread.
func (c *Ctx) Read(m trace.Loc) { c.T.Read(m) }

// Write logs a write of m on the current thread.
func (c *Ctx) Write(m trace.Loc) { c.T.Write(m) }

// Acquire takes lock l.
func (c *Ctx) Acquire(l trace.LockID) { c.T.Acquire(l) }

// Release releases lock l.
func (c *Ctx) Release(l trace.LockID) { c.T.Release(l) }

// Fork spawns a plain background thread running fn with a derived context.
func (c *Ctx) Fork(name string, fn func(*Ctx)) *sched.Thread {
	rec := c.rec
	env := c.Env
	return c.T.Fork(name, func(t *sched.Thread) {
		fn(env.ctx(t, rec))
	})
}

// Join waits for a forked thread.
func (c *Ctx) Join(t *sched.Thread) { c.T.Join(t) }

// SetFlag raises an ad-hoc synchronization flag (invisible to the trace;
// see sched.Thread.SetFlag).
func (c *Ctx) SetFlag(name string) { c.T.SetFlag(name) }

// WaitFlag blocks on an ad-hoc synchronization flag.
func (c *Ctx) WaitFlag(name string) { c.T.WaitFlag(name) }

// ActivityName returns the name of the activity this context belongs to,
// or "".
func (c *Ctx) ActivityName() string {
	if c.rec == nil {
		return ""
	}
	return c.rec.name
}

// widget is one interactive UI element of an activity.
type widget struct {
	name        string
	kind        EventKind
	enabled     bool
	armed       trace.TaskID
	clickFn     func(*Ctx)
	textFn      func(*Ctx, string)
	inputs      []string
	longClickFn func(*Ctx)
}

// activityRecord is the runtime's bookkeeping for one activity instance.
type activityRecord struct {
	env      *Env
	name     string
	instance Activity
	machine  *lifecycle.Activity
	widgets  []*widget

	destroyArmed trace.TaskID
	stopArmed    trace.TaskID
	returnArmed  trace.TaskID
	rotateArmed  trace.TaskID

	stopped  bool
	finished bool
}

func (r *activityRecord) findWidget(name string) *widget {
	for _, w := range r.widgets {
		if w.name == name {
			return w
		}
	}
	return nil
}

// applyCb runs one lifecycle callback on the activity instance, validating
// the transition against the Figure 8 machine.
func (r *activityRecord) applyCb(c *Ctx, cb lifecycle.Callback) {
	if err := r.machine.Apply(cb); err != nil {
		panic(fmt.Sprintf("android: %s: %v", r.name, err))
	}
	switch cb {
	case lifecycle.OnCreate:
		r.instance.OnCreate(c)
	case lifecycle.OnStart:
		r.instance.OnStart(c)
	case lifecycle.OnResume:
		r.instance.OnResume(c)
	case lifecycle.OnPause:
		r.instance.OnPause(c)
	case lifecycle.OnStop:
		r.instance.OnStop(c)
	case lifecycle.OnRestart:
		r.instance.OnRestart(c)
	case lifecycle.OnDestroy:
		r.instance.OnDestroy(c)
	}
}

// Launch schedules the launch of the registered activity name as the
// (next) foreground activity, via the binder on behalf of the
// ActivityManagerService. Drive with Run afterwards.
func (e *Env) Launch(name string) error {
	factory, ok := e.factories[name]
	if !ok {
		return fmt.Errorf("android: activity %q not registered", name)
	}
	rec := &activityRecord{
		env:      e,
		name:     name,
		instance: factory(),
		machine:  lifecycle.NewActivity(),
	}
	e.stack = append(e.stack, rec)
	launchID := e.sim.FreshTask(name + ".LAUNCH_ACTIVITY")
	e.amsExec(func(b *sched.Thread) {
		b.Enable(launchID)
		b.PostTask(e.main, launchID, func(t *sched.Thread) {
			e.runLaunch(t, rec)
		})
	})
	return nil
}

// runLaunch executes the LAUNCH_ACTIVITY task body on the main thread:
// the synchronous onCreate/onStart/onResume callbacks followed by the
// lifecycle enables (the Figure 3 trace shape, operations 6–10).
func (e *Env) runLaunch(t *sched.Thread, rec *activityRecord) {
	c := e.ctx(t, rec)
	seq, err := rec.machine.Sequence(lifecycle.Launch)
	if err != nil {
		panic(err)
	}
	for _, cb := range seq {
		rec.applyCb(c, cb)
	}
	e.armLifecycle(c, rec)
}

// armLifecycle emits the enable operations for the environment events that
// may now affect rec: destruction (always, Figure 3 operation 9), leaving
// the foreground, and rotation, as configured.
func (e *Env) armLifecycle(c *Ctx, rec *activityRecord) {
	rec.destroyArmed = e.sim.FreshTask(rec.name + ".onDestroy")
	c.T.Enable(rec.destroyArmed)
	if e.opts.EnableHome {
		rec.stopArmed = e.sim.FreshTask(rec.name + ".onStop")
		c.T.Enable(rec.stopArmed)
	}
	if e.opts.EnableRotate {
		rec.rotateArmed = e.sim.FreshTask(rec.name + ".relaunch")
		c.T.Enable(rec.rotateArmed)
	}
}

// StartActivity starts another registered activity from application code
// running on the main thread: the current activity's onPause is enabled
// and scheduled through the binder (Figure 3 operations 21 and 23), the
// new activity launches, and the old one stops afterwards.
func (c *Ctx) StartActivity(name string) {
	e := c.Env
	cur := e.foreground()
	factory, ok := e.factories[name]
	if !ok {
		modelFail("StartActivity", fmt.Sprintf("activity %q", name), "not registered")
	}
	next := &activityRecord{
		env:      e,
		name:     name,
		instance: factory(),
		machine:  lifecycle.NewActivity(),
	}
	pauseID := e.sim.FreshTask(cur.name + ".onPause")
	c.T.Enable(pauseID)
	e.stack = append(e.stack, next)
	e.amsExec(func(b *sched.Thread) {
		b.PostTask(e.main, pauseID, func(t *sched.Thread) {
			pc := e.ctx(t, cur)
			cur.applyCb(pc, lifecycle.OnPause)
			// The new activity launches between the old activity's
			// onPause and onStop, as in Android.
			launchID := e.sim.FreshTask(name + ".LAUNCH_ACTIVITY")
			t.Enable(launchID)
			e.amsExec(func(b *sched.Thread) {
				b.PostTask(e.main, launchID, func(t *sched.Thread) {
					e.runLaunch(t, next)
					stopID := e.sim.FreshTask(cur.name + ".onStop")
					t.Enable(stopID)
					e.amsExec(func(b *sched.Thread) {
						b.PostTask(e.main, stopID, func(t *sched.Thread) {
							e.runStop(t, cur)
						})
					})
				})
			})
		})
	})
}

// runStop executes an onStop task for rec and arms the return transition.
func (e *Env) runStop(t *sched.Thread, rec *activityRecord) {
	c := e.ctx(t, rec)
	seq, err := rec.machine.Sequence(lifecycle.LeaveForeground)
	if err != nil {
		panic(err)
	}
	for _, cb := range seq {
		rec.applyCb(c, cb)
	}
	rec.stopped = true
	rec.returnArmed = e.sim.FreshTask(rec.name + ".onRestart")
	t.Enable(rec.returnArmed)
}

// Finish finishes the current activity from application code, scheduling
// its destruction through the binder.
func (c *Ctx) Finish() {
	c.Env.scheduleDestroy(c.rec)
}

// scheduleDestroy posts the armed destruction task for rec.
func (e *Env) scheduleDestroy(rec *activityRecord) {
	if rec.finished || rec.destroyArmed == "" {
		return
	}
	id := rec.destroyArmed
	rec.destroyArmed = ""
	e.amsExec(func(b *sched.Thread) {
		b.PostTask(e.main, id, func(t *sched.Thread) {
			e.runDestroy(t, rec)
		})
	})
}

// runDestroy executes the destruction task: the remaining lifecycle
// callbacks down to onDestroy in one task, matching the Figure 4
// abstraction (operations 20–22). If a covered activity becomes the new
// foreground, its return transition is scheduled.
func (e *Env) runDestroy(t *sched.Thread, rec *activityRecord) {
	c := e.ctx(t, rec)
	seq, err := rec.machine.Sequence(lifecycle.Finish)
	if err != nil {
		panic(err)
	}
	for _, cb := range seq {
		rec.applyCb(c, cb)
	}
	rec.finished = true
	// Pop rec from the back stack.
	for i := len(e.stack) - 1; i >= 0; i-- {
		if e.stack[i] == rec {
			e.stack = append(e.stack[:i], e.stack[i+1:]...)
			break
		}
	}
	if below := e.foreground(); below != nil {
		if below.stopped {
			id := below.returnArmed
			e.amsExec(func(b *sched.Thread) {
				b.PostTask(e.main, id, func(t *sched.Thread) {
					e.runReturn(t, below)
				})
			})
		}
	} else {
		e.exited = true
	}
}

// runReturn brings a stopped activity back to the foreground.
func (e *Env) runReturn(t *sched.Thread, rec *activityRecord) {
	c := e.ctx(t, rec)
	seq, err := rec.machine.Sequence(lifecycle.Return)
	if err != nil {
		panic(err)
	}
	for _, cb := range seq {
		rec.applyCb(c, cb)
	}
	rec.stopped = false
	if e.opts.EnableHome {
		rec.stopArmed = e.sim.FreshTask(rec.name + ".onStop")
		t.Enable(rec.stopArmed)
	}
}

// runRotate destroys and relaunches the foreground activity (a
// configuration change).
func (e *Env) runRotate(t *sched.Thread, rec *activityRecord) {
	c := e.ctx(t, rec)
	// Destroy the old instance.
	for _, cb := range []lifecycle.Callback{lifecycle.OnPause, lifecycle.OnStop, lifecycle.OnDestroy} {
		rec.applyCb(c, cb)
	}
	rec.finished = true
	// Replace it with a fresh instance at the same stack position.
	next := &activityRecord{
		env:      e,
		name:     rec.name,
		instance: e.factories[rec.name](),
		machine:  lifecycle.NewActivity(),
	}
	for i := range e.stack {
		if e.stack[i] == rec {
			e.stack[i] = next
		}
	}
	launchID := e.sim.FreshTask(rec.name + ".LAUNCH_ACTIVITY")
	t.Enable(launchID)
	e.amsExec(func(b *sched.Thread) {
		b.PostTask(e.main, launchID, func(t *sched.Thread) {
			e.runLaunch(t, next)
		})
	})
}

// AddButton registers a clickable widget on the current activity. Enabled
// widgets are armed: their next click handler task is enabled immediately.
func (c *Ctx) AddButton(name string, enabled bool, fn func(*Ctx)) {
	w := &widget{name: name, kind: EvClick, clickFn: fn}
	c.rec.widgets = append(c.rec.widgets, w)
	if enabled {
		c.armWidget(w)
	}
}

// AddLongClick registers a long-clickable widget.
func (c *Ctx) AddLongClick(name string, enabled bool, fn func(*Ctx)) {
	w := &widget{name: name, kind: EvLongClick, longClickFn: fn}
	c.rec.widgets = append(c.rec.widgets, w)
	if enabled {
		c.armWidget(w)
	}
}

// AddTextField registers a text input widget with the candidate inputs the
// explorer may type (the paper's manually constructed input data set).
func (c *Ctx) AddTextField(name string, enabled bool, inputs []string, fn func(*Ctx, string)) {
	w := &widget{name: name, kind: EvText, textFn: fn, inputs: inputs}
	c.rec.widgets = append(c.rec.widgets, w)
	if enabled {
		c.armWidget(w)
	}
}

// SetEnabled enables or disables a widget of the current activity,
// arming it when it becomes enabled (Figure 3 operation 17:
// btn.setEnabled(true) emits enable(onPlayClick)).
func (c *Ctx) SetEnabled(name string, on bool) {
	w := c.rec.findWidget(name)
	if w == nil {
		modelFail("SetEnabled", fmt.Sprintf("widget %q", name), "not found on %s", c.rec.name)
	}
	if on && !w.enabled {
		c.armWidget(w)
		return
	}
	w.enabled = on
}

// armWidget allocates the widget's next handler task and enables it.
func (c *Ctx) armWidget(w *widget) {
	w.enabled = true
	w.armed = c.Env.sim.FreshTask(fmt.Sprintf("%s.%s.on%s", c.rec.name, w.name, handlerSuffix(w.kind)))
	c.T.Enable(w.armed)
}

func handlerSuffix(k EventKind) string {
	switch k {
	case EvLongClick:
		return "LongClick"
	case EvText:
		return "TextChanged"
	default:
		return "Click"
	}
}

// Fire injects one UI event; call at quiescence, then Run. It returns an
// error for events that are not currently enabled.
func (e *Env) Fire(ev UIEvent) error {
	fg := e.foreground()
	if fg == nil || e.exited {
		return fmt.Errorf("android: no foreground activity")
	}
	switch ev.Kind {
	case EvClick, EvLongClick, EvText:
		if fg.stopped {
			return fmt.Errorf("android: widget event on stopped activity")
		}
		w := fg.findWidget(ev.Widget)
		if w == nil || !w.enabled || w.armed == "" || w.kind != ev.Kind {
			return fmt.Errorf("android: widget event %v not enabled", ev)
		}
		id := w.armed
		w.armed = "" // consumed; the handler wrapper re-arms on completion
		text := ev.Text
		e.sim.Inject(e.main, id, func(t *sched.Thread) {
			c := e.ctx(t, fg)
			switch w.kind {
			case EvClick:
				w.clickFn(c)
			case EvLongClick:
				w.longClickFn(c)
			case EvText:
				w.textFn(c, text)
			}
			if w.enabled && !fg.finished {
				c.armWidget(w)
			}
		})
		return nil
	case EvBack:
		if !e.opts.EnableBack || fg.destroyArmed == "" {
			return fmt.Errorf("android: BACK not enabled")
		}
		e.scheduleDestroy(fg)
		return nil
	case EvHome:
		if !e.opts.EnableHome || fg.stopped || fg.stopArmed == "" {
			return fmt.Errorf("android: HOME not enabled")
		}
		id := fg.stopArmed
		fg.stopArmed = ""
		e.amsExec(func(b *sched.Thread) {
			b.PostTask(e.main, id, func(t *sched.Thread) { e.runStop(t, fg) })
		})
		return nil
	case EvReturn:
		if !fg.stopped || fg.returnArmed == "" {
			return fmt.Errorf("android: return on foreground activity")
		}
		id := fg.returnArmed
		fg.returnArmed = ""
		e.amsExec(func(b *sched.Thread) {
			b.PostTask(e.main, id, func(t *sched.Thread) { e.runReturn(t, fg) })
		})
		return nil
	case EvBroadcast:
		if !e.opts.EnableBroadcasts {
			return fmt.Errorf("android: broadcast injection not enabled")
		}
		return e.FireBroadcast(ev.Widget)
	case EvRotate:
		if !e.opts.EnableRotate || fg.stopped || fg.rotateArmed == "" {
			return fmt.Errorf("android: rotate not enabled")
		}
		id := fg.rotateArmed
		fg.rotateArmed = ""
		e.amsExec(func(b *sched.Thread) {
			b.PostTask(e.main, id, func(t *sched.Thread) { e.runRotate(t, fg) })
		})
		return nil
	}
	return fmt.Errorf("android: unknown event %v", ev)
}
