package core

import (
	"strings"
	"testing"

	"droidracer/internal/hb"
	"droidracer/internal/paper"
	"droidracer/internal/race"
	"droidracer/internal/trace"
)

func TestAnalyzeFigure4(t *testing.T) {
	res, err := Analyze(paper.Figure4(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Races) != 2 {
		t.Fatalf("races = %v, want 2", res.Races)
	}
	cats := map[race.Category]bool{}
	for _, r := range res.Races {
		cats[r.Category] = true
	}
	if !cats[race.Multithreaded] || !cats[race.CrossPosted] {
		t.Fatalf("categories = %v", res.Races)
	}
	if res.Stats.Length != res.Trace.Len() || res.Graph == nil || res.Info == nil {
		t.Fatal("result incompletely populated")
	}
}

func TestAnalyzeRejectsInvalidTrace(t *testing.T) {
	bad := trace.FromOps([]trace.Op{trace.Begin(1, "p")})
	_, err := Analyze(bad, DefaultOptions())
	if err == nil || !strings.Contains(err.Error(), "not a valid execution") {
		t.Fatalf("err = %v", err)
	}
	// Validation can be disabled; the structural pass still rejects it.
	opts := DefaultOptions()
	opts.Validate = false
	if _, err := Analyze(bad, opts); err == nil {
		t.Fatal("structurally malformed trace accepted")
	}
}

func TestAnalyzeWithoutDedup(t *testing.T) {
	// Three pairwise-racing writer tasks: 3 pairs undeduped, 1 deduped.
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.LoopOnQ(1),
		trace.ThreadInit(2),
		trace.ThreadInit(3),
		trace.ThreadInit(4),
		trace.Post(2, "a", 1),
		trace.Post(3, "b", 1),
		trace.Post(4, "c", 1),
		trace.Begin(1, "a"),
		trace.Write(1, "x"),
		trace.End(1, "a"),
		trace.Begin(1, "b"),
		trace.Write(1, "x"),
		trace.End(1, "b"),
		trace.Begin(1, "c"),
		trace.Write(1, "x"),
		trace.End(1, "c"),
	})
	opts := DefaultOptions()
	opts.Dedup = false
	res, err := Analyze(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Races) != 3 {
		t.Fatalf("undeduped races = %d, want 3", len(res.Races))
	}
	res, err = Analyze(tr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Races) != 1 {
		t.Fatalf("deduped races = %d, want 1", len(res.Races))
	}
}

func TestAnalyzeDropsCancelledPosts(t *testing.T) {
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.LoopOnQ(1),
		trace.ThreadInit(2),
		trace.Post(2, "never", 1),
		trace.Cancel(2, "never"),
	})
	res, err := Analyze(tr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range res.Trace.Ops() {
		if op.Kind == trace.OpCancel || (op.Kind == trace.OpPost && op.Task == "never") {
			t.Fatalf("cancelled post survived: %v", op)
		}
	}
}

func TestAnalyzeAblation(t *testing.T) {
	// The naive-combination ablation plugs straight into Options.HB.
	opts := DefaultOptions()
	opts.HB = hb.Config{MergeAccesses: true, EnableEdges: true, FIFO: true, NoPre: true, Naive: true}
	res, err := Analyze(paper.Figure4(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// The naive relation is strictly stronger, so it cannot report more
	// races than the precise one.
	precise, err := Analyze(paper.Figure4(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Races) > len(precise.Races) {
		t.Fatalf("naive %d races > precise %d", len(res.Races), len(precise.Races))
	}
}
