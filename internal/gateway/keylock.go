package gateway

import "sync"

// keyedLocks serializes work per exact key with refcounted mutexes. The
// gateway's per-key critical section spans a whole failover walk — up to
// MaxFailover forwards at ForwardTimeout each — so striped locks (as the
// backend's admission path uses for its fast, local sections) would let
// one slow backend stall every unrelated key sharing a stripe. Here only
// true duplicates contend, which is exactly the coalescing the gateway
// wants, and memory is bounded by the number of in-flight keys.
type keyedLocks struct {
	mu    sync.Mutex
	locks map[string]*keyLock
}

type keyLock struct {
	mu   sync.Mutex
	refs int
}

// lock acquires the mutex for key, creating it on first use, and returns
// the unlock function. The entry is dropped once the last holder or
// waiter releases, so idle keys cost nothing.
func (l *keyedLocks) lock(key string) (unlock func()) {
	l.mu.Lock()
	if l.locks == nil {
		l.locks = make(map[string]*keyLock)
	}
	kl := l.locks[key]
	if kl == nil {
		kl = &keyLock{}
		l.locks[key] = kl
	}
	kl.refs++
	l.mu.Unlock()
	kl.mu.Lock()
	return func() {
		kl.mu.Unlock()
		l.mu.Lock()
		kl.refs--
		if kl.refs == 0 {
			delete(l.locks, key)
		}
		l.mu.Unlock()
	}
}
