// Package obs is the zero-dependency observability core of the
// detector: an atomic metrics registry (counters, gauges, fixed-bucket
// histograms, all labeled), a lightweight span/phase-timer API, a
// structured JSONL event log built on log/slog, and a debug HTTP
// surface exposing Prometheus text format, expvar, and pprof.
//
// The paper evaluates DroidRacer by trace statistics (Table 2),
// happens-before edge and race counts (Table 3, §4.3), and exploration
// progress under the bound k (§5); this package makes exactly those
// numbers visible while the detector runs. Instrumented packages
// declare their metrics as package-level vars against Default() so the
// full series set is present (at zero) from process start — a scrape
// never has to guess which metrics exist.
//
// Everything is stdlib-only and cheap when unobserved: counters and
// gauges are single atomics, histograms are one atomic bucket increment
// per observation, and nothing allocates on the hot path once a metric
// handle is held.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metric types, used for the Prometheus # TYPE line and to reject a
// name registered twice under different types.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n < 0 is ignored: counters only go up).
func (c *Counter) Add(n int) {
	if n > 0 {
		c.v.Add(uint64(n))
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// SetMax raises the gauge to v if v is greater (a high-water mark,
// e.g. the deepest DFS prefix explored).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets. Bounds are the
// inclusive upper edges; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, cumulative only at render time
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket lists are short (~14 bounds) and the inlined
	// loop beats the sort.SearchFloat64s call on this hot path.
	i := 0
	for i < len(h.bounds) && h.bounds[i] < v {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records d in seconds — the Prometheus base unit.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) of the observed
// distribution by linear interpolation inside the bucket holding the
// target rank, the same estimator Prometheus's histogram_quantile
// uses: the first bucket interpolates from zero, and ranks landing in
// the +Inf bucket clamp to the highest finite bound (the estimator
// cannot see past it). Returns 0 when nothing has been observed.
//
// Reads are atomic per bucket but not mutually consistent with
// concurrent Observes; for a monitoring estimate that skew is noise.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.bounds {
		c := float64(h.counts[i].Load())
		if cum+c >= rank && c > 0 {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			return lower + (h.bounds[i]-lower)*((rank-cum)/c)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// DurationBuckets returns the default latency bucket bounds, in
// seconds: 5µs to ~10s, roughly trebling — wide enough for both an
// fsync and a whole-trace closure.
func DurationBuckets() []float64 {
	return []float64{
		0.000005, 0.000025, 0.0001, 0.0005, 0.001, 0.005,
		0.01, 0.05, 0.1, 0.5, 1, 2.5, 5, 10,
	}
}

// series is one labeled instance of a metric family.
type series struct {
	labels  string // rendered {k="v",...} or ""
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family groups every labeled series of one metric name.
type family struct {
	name   string
	help   string
	typ    string
	series map[string]*series
}

// Registry holds metric families. Lookups are mutex-guarded and meant
// for init time; the handles they return are lock-free.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every instrumented package
// publishes into and the daemon's /metrics endpoint serves.
func Default() *Registry { return defaultRegistry }

// renderLabels validates and renders alternating key, value pairs into
// the canonical {k="v",...} form, sorted by key so the same label set
// always maps to the same series.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", p.k, p.v)
	}
	sb.WriteByte('}')
	return sb.String()
}

// lookup finds or creates the series for (name, labels), enforcing one
// type and one help string per family.
func (r *Registry) lookup(name, help, typ string, labels []string) *series {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.fams[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", name, f.typ, typ))
	}
	s, ok := f.series[ls]
	if !ok {
		s = &series{labels: ls}
		f.series[ls] = s
	}
	return s
}

// Counter returns (creating if needed) the counter for name and the
// alternating key, value label pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.lookup(name, help, typeCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns (creating if needed) the gauge for name and labels.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.lookup(name, help, typeGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram returns (creating if needed) the histogram for name and
// labels, with the given inclusive upper bucket bounds (sorted
// ascending; a +Inf bucket is implicit). Bounds are fixed at first
// registration.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	s := r.lookup(name, help, typeHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		s.hist = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	}
	return s.hist
}

// Snapshot returns every series' current value as a flat map from
// "name{labels}" to a number (histograms contribute _count and _sum).
// The expvar bridge publishes this.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any)
	for _, f := range r.fams {
		for _, s := range f.series {
			key := f.name + s.labels
			switch {
			case s.counter != nil:
				out[key] = s.counter.Value()
			case s.gauge != nil:
				out[key] = s.gauge.Value()
			case s.hist != nil:
				out[key+"_count"] = s.hist.Count()
				out[key+"_sum"] = s.hist.Sum()
				if s.hist.Count() > 0 {
					out[key+"_p50"] = s.hist.Quantile(0.50)
					out[key+"_p90"] = s.hist.Quantile(0.90)
					out[key+"_p99"] = s.hist.Quantile(0.99)
				}
			}
		}
	}
	return out
}
