package sched

import (
	"strings"
	"testing"

	"droidracer/internal/trace"
)

func TestRunStepsPausesAndResumes(t *testing.T) {
	s := New(DefaultOptions())
	s.Spawn("a", func(w *Thread) {
		for i := 0; i < 20; i++ {
			w.Write("x")
		}
	})
	st, err := s.RunSteps(5)
	if err != nil {
		t.Fatal(err)
	}
	if st != Paused {
		t.Fatalf("status = %v, want paused", st)
	}
	mid := s.Trace().Len()
	if mid == 0 || mid > 6 {
		t.Fatalf("ops after 5 steps = %d", mid)
	}
	st, err = s.RunUntilQuiescent()
	if err != nil {
		t.Fatal(err)
	}
	if st != Done {
		t.Fatalf("status = %v, want done", st)
	}
	if got := s.Trace().Len(); got != 22 { // init + 20 writes + exit
		t.Fatalf("final ops = %d, want 22", got)
	}
}

func TestRunStepsZeroBudget(t *testing.T) {
	s := New(DefaultOptions())
	s.Spawn("a", func(w *Thread) { w.Write("x") })
	st, err := s.RunSteps(0)
	if err != nil {
		t.Fatal(err)
	}
	if st != Paused {
		t.Fatalf("status = %v, want paused with zero budget", st)
	}
	if s.Trace().Len() != 0 {
		t.Fatal("work performed with zero budget")
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseIdempotentAndAfterError(t *testing.T) {
	s := New(DefaultOptions())
	s.Spawn("a", func(w *Thread) {
		w.Acquire("l") // exits holding a lock: runtime error
	})
	if _, err := s.RunUntilQuiescent(); err == nil {
		t.Fatal("expected lock-leak error")
	}
	s.Close()
	s.Close() // must be safe twice
	if s.Err() == nil {
		t.Fatal("Err() lost the failure")
	}
}

func TestSpawnAfterRunPanics(t *testing.T) {
	s := New(DefaultOptions())
	s.Spawn("a", func(w *Thread) {})
	if _, err := s.RunUntilQuiescent(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Spawn after Run did not panic")
		}
	}()
	s.Spawn("late", func(w *Thread) {})
}

func TestWaitFlagOrQuitDrainsDaemon(t *testing.T) {
	s := New(DefaultOptions())
	processed := 0
	s.Spawn("daemon", func(w *Thread) {
		w.SetDaemon(true)
		for {
			if s.flags["work"] {
				w.ClearFlag("work")
				processed++
				w.Write("work.item")
				continue
			}
			if !w.WaitFlagOrQuit("work") {
				return
			}
		}
	})
	s.Spawn("producer", func(w *Thread) {
		w.SetFlag("work")
	})
	st, err := s.RunUntilQuiescent()
	if err != nil {
		t.Fatal(err)
	}
	if st != Quiescent {
		t.Fatalf("status = %v, want quiescent (daemon parked)", st)
	}
	if processed != 1 {
		t.Fatalf("processed = %d", processed)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestDaemonBlockedOnFlagIsNotDeadlock(t *testing.T) {
	s := New(DefaultOptions())
	s.Spawn("daemon", func(w *Thread) {
		w.SetDaemon(true)
		w.WaitFlagOrQuit("never")
	})
	st, err := s.RunUntilQuiescent()
	if err != nil {
		t.Fatalf("daemon park reported as error: %v", err)
	}
	if st != Quiescent {
		t.Fatalf("status = %v", st)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestIdleHookRunsOnEmptyQueue(t *testing.T) {
	s := New(DefaultOptions())
	fired := false
	main := s.Spawn("main", func(w *Thread) {
		w.AttachQueue()
		w.SetIdleHook(func(t *Thread) bool {
			if fired {
				return false
			}
			fired = true
			t.PostTask(t.sim.threadByName("main"), "idleTask", func(*Thread) {
				t.sim.threadByName("main").sim.emit(trace.Read(t.id, "warm"))
			})
			return true
		})
		w.Loop()
	})
	_ = main
	st, err := s.RunUntilQuiescent()
	if err != nil {
		t.Fatal(err)
	}
	if st != Quiescent {
		t.Fatalf("status = %v", st)
	}
	if !fired {
		t.Fatal("idle hook never ran")
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// The idle task ran as a real begin/end pair.
	var kinds []string
	for _, op := range s.Trace().Ops() {
		if op.Task == "idleTask" {
			kinds = append(kinds, op.Kind.String())
		}
	}
	if got := strings.Join(kinds, ","); got != "post,begin,end" {
		t.Fatalf("idle task shape = %q", got)
	}
}

func TestNoisePolicyDeterministic(t *testing.T) {
	mk := func() []int {
		p := NewNoisePolicy(9)
		a := &Thread{id: 1}
		b := &Thread{id: 2}
		c := &Thread{id: 3}
		var picks []int
		for i := 0; i < 200; i++ {
			picks = append(picks, p.Pick([]*Thread{a, b, c}))
		}
		return picks
	}
	x, y := mk(), mk()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("noise policy diverges at pick %d", i)
		}
	}
}

func TestNoisePolicyStarves(t *testing.T) {
	// Some thread must experience a long starvation streak — the point of
	// the PCT-style priorities.
	p := NewNoisePolicy(3)
	a := &Thread{id: 1}
	b := &Thread{id: 2}
	runs := map[int]int{}
	cur, streak := -1, 0
	longest := 0
	for i := 0; i < 300; i++ {
		k := p.Pick([]*Thread{a, b})
		runs[k]++
		if k == cur {
			streak++
		} else {
			cur, streak = k, 1
		}
		if streak > longest {
			longest = streak
		}
	}
	if runs[0] == 0 || runs[1] == 0 {
		t.Fatalf("one thread never ran: %v (demotions should rotate priorities)", runs)
	}
	if longest < 10 {
		t.Fatalf("longest streak %d; expected starvation bursts", longest)
	}
}
