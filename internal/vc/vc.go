// Package vc provides vector clocks, the substrate for the baseline race
// detectors (pure multithreaded happens-before and async-as-threads) that
// the DroidRacer paper compares against in §7.
//
// Clocks are keyed by ID, an abstract context identifier: baseline
// detectors assign IDs to threads and, for the async-as-threads baseline,
// to individual asynchronous tasks.
package vc

import (
	"fmt"
	"sort"
	"strings"
)

// ID identifies one logical context (a thread or a task) in a clock.
type ID int32

// VC is a vector clock: a map from context ID to that context's logical
// time. The zero value (nil) is the all-zeros clock and is usable with
// every read-only method; use New or Copy before mutating.
type VC map[ID]uint64

// New returns an empty (all-zeros) mutable clock.
func New() VC { return make(VC) }

// Get returns the component for id (zero when absent).
func (v VC) Get(id ID) uint64 { return v[id] }

// Set sets the component for id.
func (v VC) Set(id ID, t uint64) {
	if t == 0 {
		delete(v, id)
		return
	}
	v[id] = t
}

// Tick increments the component for id and returns the new value.
func (v VC) Tick(id ID) uint64 {
	v[id]++
	return v[id]
}

// Join sets v to the pointwise maximum of v and o.
func (v VC) Join(o VC) {
	for id, t := range o {
		if t > v[id] {
			v[id] = t
		}
	}
}

// Copy returns an independent copy of v.
func (v VC) Copy() VC {
	c := make(VC, len(v))
	for id, t := range v {
		c[id] = t
	}
	return c
}

// LessEq reports whether v ≤ o pointwise (v happens before or equals o).
func (v VC) LessEq(o VC) bool {
	for id, t := range v {
		if t > o[id] {
			return false
		}
	}
	return true
}

// HappensBefore reports v ≤ o and v ≠ o.
func (v VC) HappensBefore(o VC) bool {
	return v.LessEq(o) && !o.LessEq(v)
}

// Concurrent reports that neither clock is ≤ the other.
func (v VC) Concurrent(o VC) bool {
	return !v.LessEq(o) && !o.LessEq(v)
}

// Equal reports pointwise equality.
func (v VC) Equal(o VC) bool { return v.LessEq(o) && o.LessEq(v) }

// String renders the clock deterministically, e.g. "[1:3 2:1]".
func (v VC) String() string {
	ids := make([]ID, 0, len(v))
	for id := range v {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var sb strings.Builder
	sb.WriteByte('[')
	for k, id := range ids {
		if k > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d:%d", id, v[id])
	}
	sb.WriteByte(']')
	return sb.String()
}
