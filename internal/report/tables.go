package report

import (
	"fmt"

	"droidracer/internal/eval"
	"droidracer/internal/paper"
)

// paperRow2 finds the published Table 2 row for an app name.
func paperRow2(name string) *paper.Table2Row {
	for i := range paper.Table2 {
		if paper.Table2[i].App == name {
			return &paper.Table2[i]
		}
	}
	return nil
}

// paperRow3 finds the published Table 3 row for an app name.
func paperRow3(name string) *paper.Table3Row {
	for i := range paper.Table3 {
		if paper.Table3[i].App == name {
			return &paper.Table3[i]
		}
	}
	return nil
}

// pair renders "measured/published".
func pair(measured, published int) string {
	return fmt.Sprintf("%d/%d", measured, published)
}

// Table2 renders the regenerated Table 2 (statistics about applications
// and traces); each cell shows measured/published.
func Table2(results []*eval.AppResult) string {
	t := &table{header: []string{
		"Application", "Trace length", "Fields", "Thr w/o Q", "Thr w/ Q", "Async tasks",
	}}
	for _, r := range results {
		p := paperRow2(r.App.Name())
		if p == nil {
			continue
		}
		t.addRow(
			r.App.Name(),
			pair(r.Stats.Length, p.TraceLen),
			pair(r.Stats.Fields, p.Fields),
			pair(r.Stats.ThreadsNoQ, p.ThreadsNoQ),
			pair(r.Stats.ThreadsQ, p.ThreadsQ),
			pair(r.Stats.AsyncTasks, p.AsyncTasks),
		)
	}
	return "Table 2: trace statistics (measured/published)\n" + t.String()
}

// xy renders the paper's "X(Y)" reported(true) notation; Y is omitted for
// untriaged (proprietary) rows.
func xy(c eval.CategoryCount) string {
	if c.True < 0 {
		return fmt.Sprintf("%d", c.Reported)
	}
	return fmt.Sprintf("%d(%d)", c.Reported, c.True)
}

// xyPaper renders a published count pair.
func xyPaper(c paper.Count) string {
	if c.True < 0 {
		return fmt.Sprintf("%d", c.Reported)
	}
	return fmt.Sprintf("%d(%d)", c.Reported, c.True)
}

// Table3 renders the regenerated Table 3 (data races by category) with the
// published row below each measured row.
func Table3(results []*eval.AppResult) string {
	t := &table{header: []string{
		"Application", "Multithreaded", "Cross-posted", "Co-enabled", "Delayed", "Unknown", "Total",
	}}
	var mt, cp, ce, dl, un, tot eval.CategoryCount
	addTotals := func(dst *eval.CategoryCount, c eval.CategoryCount) {
		dst.Reported += c.Reported
		if c.True > 0 {
			dst.True += c.True
		}
	}
	for _, r := range results {
		t.addRow(
			r.App.Name(),
			xy(r.Multithreaded), xy(r.CrossPosted), xy(r.CoEnabled), xy(r.Delayed), xy(r.Unknown),
			fmt.Sprintf("%d(%d)", r.TotalReported(), r.TotalTrue()),
		)
		if p := paperRow3(r.App.Name()); p != nil {
			t.addRow(
				"  (paper)",
				xyPaper(p.Multithreaded), xyPaper(p.CrossPosted), xyPaper(p.CoEnabled),
				xyPaper(p.Delayed), xyPaper(p.Unknown), "",
			)
		}
		addTotals(&mt, r.Multithreaded)
		addTotals(&cp, r.CrossPosted)
		addTotals(&ce, r.CoEnabled)
		addTotals(&dl, r.Delayed)
		addTotals(&un, r.Unknown)
		tot.Reported += r.TotalReported()
		tot.True += r.TotalTrue()
	}
	t.addRow("TOTAL", xy(mt), xy(cp), xy(ce), xy(dl), xy(un),
		fmt.Sprintf("%d(%d)", tot.Reported, tot.True))
	return "Table 3: data races reported, as reported(true positives)\n" + t.String()
}

// Perf renders the §6 performance paragraph data: merged-graph size as a
// fraction of trace length (published range 1.4%–24.8%, average 11.1%)
// and analysis time.
func Perf(results []*eval.AppResult) string {
	t := &table{header: []string{
		"Application", "Trace len", "Graph nodes", "Unmerged", "Ratio", "Analysis",
	}}
	sum := 0.0
	for _, r := range results {
		t.addRow(
			r.App.Name(),
			fmt.Sprintf("%d", r.Stats.Length),
			fmt.Sprintf("%d", r.GraphNodes),
			fmt.Sprintf("%d", r.UnmergedNodes),
			fmt.Sprintf("%.1f%%", 100*r.MergeRatio),
			r.AnalysisTime.Round(100_000).String(),
		)
		sum += r.MergeRatio
	}
	avg := 100 * sum / float64(len(results))
	return fmt.Sprintf(
		"Node-merging optimization (published: 1.4%%–24.8%% of trace length, avg 11.1%%)\n%saverage ratio: %.1f%%\n",
		t.String(), avg)
}
