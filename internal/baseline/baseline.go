// Package baseline implements the race detectors the DroidRacer paper
// compares against in §7, to reproduce its false-positive/false-negative
// arguments on the same traces:
//
//   - PureMT: classic multithreaded happens-before (FastTrack/DJIT+-style
//     vector clocks over threads, fork/join and locks). It ignores
//     asynchronous dispatch: single-threaded races are invisible (false
//     negatives) and post-induced orderings are missed (false positives).
//   - AsyncAsThreads: asynchronous calls "simulated through additional
//     threads" — every task becomes its own vector-clock context, created
//     at its post. FIFO and run-to-completion orderings are lost, so
//     same-queue tasks appear concurrent (false positives).
//   - EventOnly: the happens-before of single-threaded event-driven
//     programs applied per thread (the §4.1 specialization), blind to
//     inter-thread synchronization (false positives on multithreaded
//     orderings).
//   - Lockset: Eraser-style lockset analysis; "analyses based on locksets
//     produce false positives because there may be no explicit locks and
//     instead the synchronization could be through ordering of events."
//
// Each detector reports racy memory locations with one representative
// access pair, the granularity at which the comparison harness tallies
// agreement with the full DroidRacer analysis.
package baseline

import (
	"sort"

	"droidracer/internal/trace"
)

// Finding is one racy memory location with a representative access pair
// (First < Second in trace order).
type Finding struct {
	Loc    trace.Loc
	First  int
	Second int
}

// Detector is a race detector operating directly on execution traces.
type Detector interface {
	// Name identifies the detector in comparison tables.
	Name() string
	// Detect returns the racy locations found in tr, sorted by location.
	Detect(tr *trace.Trace) []Finding
}

// All returns one instance of every baseline detector.
func All() []Detector {
	return []Detector{
		NewPureMT(),
		NewAsyncAsThreads(),
		NewEventOnly(),
		NewLockset(),
	}
}

// sortFindings orders findings by location for deterministic output.
func sortFindings(fs []Finding) []Finding {
	sort.Slice(fs, func(i, j int) bool { return fs[i].Loc < fs[j].Loc })
	return fs
}

// Locs returns the set of racy locations in a finding list.
func Locs(fs []Finding) map[trace.Loc]bool {
	m := make(map[trace.Loc]bool, len(fs))
	for _, f := range fs {
		m[f.Loc] = true
	}
	return m
}
