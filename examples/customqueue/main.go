// Custom task queues and false negatives (§6 of the paper): Messenger and
// FBReader implement their own task queues as lists of Runnables drained
// by a plain worker thread. DroidRacer sees that worker as an ordinary
// thread, applies the NO-Q-PO program-order rule to it, and spuriously
// orders the runnables — hiding a real dispatch race. Mapping the
// high-level construct to the core language (the paper's proposed remedy)
// recovers the race.
//
// The program runs the same application twice — once with the raw custom
// queue, once with the mapped one — and compares the reports.
//
//	go run ./examples/customqueue
package main

import (
	"fmt"
	"log"

	"droidracer"
)

// feedActivity enqueues a cache update and a cache read from two
// independent sources; the dispatch order of the two runnables is
// genuinely racy.
type feedActivity struct {
	droidracer.BaseActivity
	mapped bool
}

func (a *feedActivity) OnResume(c *droidracer.Ctx) {
	q := c.NewCustomQueue("feedq", a.mapped)
	c.Fork("network", func(b *droidracer.Ctx) {
		q.Enqueue(b, "updateCache", func(w *droidracer.Ctx) { w.Write("feed.cache") })
	})
	c.Fork("ui-prefetch", func(b *droidracer.Ctx) {
		q.Enqueue(b, "readCache", func(w *droidracer.Ctx) { w.Read("feed.cache") })
	})
}

func run(mapped bool) ([]droidracer.Race, error) {
	env := droidracer.NewEnv(droidracer.DefaultEnvOptions())
	env.RegisterActivity("Feed", func() droidracer.Activity { return &feedActivity{mapped: mapped} })
	if err := env.Launch("Feed"); err != nil {
		return nil, err
	}
	if err := env.Run(); err != nil {
		return nil, err
	}
	if err := env.Shutdown(); err != nil {
		return nil, err
	}
	res, err := droidracer.Analyze(env.Trace(), droidracer.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return res.Races, nil
}

func main() {
	raw, err := run(false)
	if err != nil {
		log.Fatal(err)
	}
	mapped, err := run(true)
	if err != nil {
		log.Fatal(err)
	}
	report := func(label string, races []droidracer.Race) {
		onCache := 0
		for _, r := range races {
			if r.Loc == "feed.cache" {
				onCache++
				fmt.Printf("  %v\n", r)
			}
		}
		if onCache == 0 {
			fmt.Println("  no race reported on feed.cache")
		}
	}
	fmt.Println("raw custom queue (worker looks like a plain thread):")
	report("raw", raw)
	fmt.Println("same app with the queue mapped to the core language:")
	report("mapped", mapped)
	fmt.Println("\nThe dispatch order of updateCache and readCache is real")
	fmt.Println("nondeterminism; only the mapped construction lets the")
	fmt.Println("analysis see it — the §6 false-negative mode and its fix.")
}
