package faultinject

import (
	"os"
	"path/filepath"
	"testing"

	"droidracer/internal/storage"
)

// BenchmarkStorageShim measures what the fault-injection seam costs on
// the hot accept path: one journal-sized record written and fsync'd per
// iteration, through the raw OS layer versus through a FaultFS with an
// armed-but-never-firing clause (the worst production case — every
// operation pays the hit-counter check). The fsync dominates both; the
// shim's delta is the ≤5% overhead budget EXPERIMENTS.md records.
func BenchmarkStorageShim(b *testing.B) {
	record := []byte(`{"seq":1,"type":"job","data":{"name":"8be9f50d83ee26b4.trace","mode":"full","attempts":1,"digest":"e3b0c44298fc1c14"},"crc":"48de9b50"}` + "\n")
	bench := func(b *testing.B, fs storage.FS) {
		f, err := fs.OpenFile(filepath.Join(b.TempDir(), "bench.journal"),
			os.O_CREATE|os.O_WRONLY, 0o666)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.Write(record); err != nil {
				b.Fatal(err)
			}
			if err := f.Sync(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("os", func(b *testing.B) { bench(b, storage.OS) })
	b.Run("shim-armed-inert", func(b *testing.B) {
		ResetStorageHits()
		bench(b, NewFaultFS(storage.OS, "journal", []StorageFault{
			{Scope: "journal", Op: "sync", Kind: "enospc", From: 1 << 30},
		}))
	})
}
