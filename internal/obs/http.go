package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
)

// expvarOnce guards the global expvar publication: expvar.Publish
// panics on duplicate names, and tests build multiple muxes.
var expvarOnce sync.Once

// DebugMux returns the daemon's debug surface over reg:
//
//	/metrics          Prometheus text exposition
//	/debug/vars       expvar (process stats + a registry snapshot)
//	/debug/pprof/...  runtime profiling (net/http/pprof)
//	/debug/traces     committed traces in the span store (list)
//	/debug/traces/ID  one trace's spans as JSON
//
// The handlers are registered on a private mux, not
// http.DefaultServeMux, so importing this package never adds routes to
// a server the caller didn't ask for.
func DebugMux(reg *Registry) *http.ServeMux {
	MarkExporterAttached()
	expvarOnce.Do(func() {
		expvar.Publish("droidracer", expvar.Func(func() any {
			return Default().Snapshot()
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/traces", serveTraceList)
	mux.HandleFunc("/debug/traces/", serveTraceByID)
	return mux
}

// serveTraceList lists the span store's committed traces, newest first.
// ?id=TRACEID is accepted as an alternative to the path form.
func serveTraceList(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("id"); id != "" {
		writeTrace(w, id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"traces": Traces().Summaries()})
}

// serveTraceByID serves /debug/traces/<trace-id>.
func serveTraceByID(w http.ResponseWriter, r *http.Request) {
	writeTrace(w, strings.TrimPrefix(r.URL.Path, "/debug/traces/"))
}

func writeTrace(w http.ResponseWriter, id string) {
	spans := Traces().Trace(id)
	if spans == nil {
		http.Error(w, "unknown trace", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"trace_id": id, "spans": spans})
}

// ServeDebug binds addr and serves DebugMux(reg) in the background,
// returning the server (for Close on shutdown) and the bound address
// (useful with ":0"). Serve errors after Close are expected and
// dropped; a bind failure is returned synchronously so a daemon with a
// mistyped -metrics-addr fails fast instead of running unobservable.
func ServeDebug(addr string, reg *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: DebugMux(reg)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
