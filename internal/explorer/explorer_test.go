package explorer_test

import (
	"strings"
	"testing"

	"droidracer/internal/android"
	"droidracer/internal/apps"
	"droidracer/internal/explorer"
	"droidracer/internal/hb"
	"droidracer/internal/race"
	"droidracer/internal/semantics"
	"droidracer/internal/trace"
)

// twoButtonFactory builds a minimal app with two buttons and a BACK exit.
func twoButtonFactory() explorer.AppFactory {
	return func(seed int64) (*android.Env, error) {
		opts := android.DefaultOptions()
		opts.Seed = seed
		e := android.NewEnv(opts)
		e.RegisterActivity("Main", func() android.Activity { return &twoButtonAct{} })
		if err := e.Launch("Main"); err != nil {
			e.Close()
			return nil, err
		}
		return e, nil
	}
}

type twoButtonAct struct {
	android.BaseActivity
}

func (a *twoButtonAct) OnCreate(c *android.Ctx) {
	c.AddButton("one", true, func(c *android.Ctx) { c.Write("pressed.one") })
	c.AddButton("two", true, func(c *android.Ctx) { c.Write("pressed.two") })
}

func TestExploreEnumeratesDFS(t *testing.T) {
	res, err := explorer.Explore(twoButtonFactory(), explorer.Options{MaxEvents: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Events per screen: one, two, BACK. Sequences of length 2 plus
	// terminal BACK-first sequences: [one,*]×3, [two,*]×3, [BACK] = 7.
	if len(res.Tests) != 7 {
		var names []string
		for _, tst := range res.Tests {
			names = append(names, tst.Name())
		}
		t.Fatalf("tests = %d (%v), want 7", len(res.Tests), names)
	}
	// DFS order: the first maximal test extends the first event.
	if !strings.HasPrefix(res.Tests[0].Name(), "click(one)") {
		t.Fatalf("first test = %s", res.Tests[0].Name())
	}
	if res.SequencesExplored == 0 || res.EventsFired == 0 {
		t.Fatal("exploration counters empty")
	}
	// Every trace validates and carries system threads.
	for _, tst := range res.Tests {
		if i, err := semantics.ValidateInferred(tst.Trace); err != nil {
			t.Fatalf("%s: invalid at %d: %v", tst.Name(), i, err)
		}
		if len(tst.SystemThreads) == 0 {
			t.Fatalf("%s: no system threads recorded", tst.Name())
		}
	}
}

func TestExploreMaxTests(t *testing.T) {
	res, err := explorer.Explore(twoButtonFactory(), explorer.Options{MaxEvents: 2, MaxTests: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tests) != 3 {
		t.Fatalf("tests = %d, want 3 (capped)", len(res.Tests))
	}
}

func TestExploreRecordAll(t *testing.T) {
	res, err := explorer.Explore(twoButtonFactory(), explorer.Options{MaxEvents: 1, RecordAll: true})
	if err != nil {
		t.Fatal(err)
	}
	// RecordAll includes the empty prefix: [], [one], [two], [BACK].
	if len(res.Tests) != 4 {
		t.Fatalf("tests = %d, want 4", len(res.Tests))
	}
	if res.Tests[0].Name() != "<empty>" {
		t.Fatalf("first test = %s, want empty prefix", res.Tests[0].Name())
	}
}

func TestExploreNegativeBound(t *testing.T) {
	if _, err := explorer.Explore(twoButtonFactory(), explorer.Options{MaxEvents: -1}); err == nil {
		t.Fatal("negative bound accepted")
	}
}

func TestReplayMatchesExploredTrace(t *testing.T) {
	res, err := explorer.Explore(twoButtonFactory(), explorer.Options{MaxEvents: 2})
	if err != nil {
		t.Fatal(err)
	}
	tst := res.Tests[0]
	replayed, err := explorer.Replay(twoButtonFactory(), 0, tst.Sequence)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Len() != tst.Trace.Len() {
		t.Fatalf("replay length %d, want %d", replayed.Len(), tst.Trace.Len())
	}
	for i := range tst.Trace.Ops() {
		if replayed.Op(i) != tst.Trace.Op(i) {
			t.Fatalf("replay diverges at op %d", i)
		}
	}
}

func TestReplayUnknownEventFails(t *testing.T) {
	_, err := explorer.Replay(twoButtonFactory(), 0, []android.UIEvent{
		{Kind: android.EvClick, Widget: "no-such-button"},
	})
	if err == nil || !strings.Contains(err.Error(), "divergence") {
		t.Fatalf("err = %v, want divergence", err)
	}
}

func TestVerifyRaceConfirmsPaperPlayerRace(t *testing.T) {
	// The Figure 4 multithreaded race is genuinely reorderable: under some
	// schedule the onDestroy write precedes the background read.
	app := apps.NewPaperMusicPlayer()
	factory := apps.Factory(app)
	tr, err := explorer.Replay(factory, 0, []android.UIEvent{{Kind: android.EvBack}})
	if err != nil {
		t.Fatal(err)
	}
	info, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	races := race.NewDetector(hb.Build(info, hb.DefaultConfig())).Detect()
	var mtRace *race.Race
	for i := range races {
		if races[i].Loc == apps.DestroyedFlag && races[i].Category == race.Multithreaded {
			mtRace = &races[i]
		}
	}
	if mtRace == nil {
		t.Fatalf("multithreaded race not found in %v", races)
	}
	v, err := explorer.VerifyRace(factory, []android.UIEvent{{Kind: android.EvBack}}, info, *mtRace, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Confirmed {
		t.Fatalf("race not confirmed in %d attempts", v.Attempts)
	}
}

// flagOrderedFactory builds an app whose conflicting accesses are ordered
// by an ad-hoc flag: reported as a race, but never reorderable.
func flagOrderedFactory() explorer.AppFactory {
	return func(seed int64) (*android.Env, error) {
		opts := android.DefaultOptions()
		opts.Seed = seed
		e := android.NewEnv(opts)
		e.RegisterActivity("Main", func() android.Activity { return &flagOrderedAct{} })
		if err := e.Launch("Main"); err != nil {
			e.Close()
			return nil, err
		}
		return e, nil
	}
}

type flagOrderedAct struct {
	android.BaseActivity
}

func (a *flagOrderedAct) OnResume(c *android.Ctx) {
	c.Fork("writer", func(b *android.Ctx) {
		b.Write("adhoc.data")
		b.SetFlag("written")
	})
	c.Fork("reader", func(b *android.Ctx) {
		b.WaitFlag("written")
		b.Read("adhoc.data")
	})
}

func TestVerifyRaceRejectsAdHocSyncFalsePositive(t *testing.T) {
	factory := flagOrderedFactory()
	tr, err := explorer.Replay(factory, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	info, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	races := race.NewDetector(hb.Build(info, hb.DefaultConfig())).Detect()
	if len(races) != 1 || races[0].Loc != "adhoc.data" {
		t.Fatalf("races = %v, want the ad-hoc pair reported", races)
	}
	v, err := explorer.VerifyRace(factory, nil, info, races[0], 25)
	if err != nil {
		t.Fatal(err)
	}
	if v.Confirmed {
		t.Fatal("ad-hoc-synchronized pair confirmed as reorderable")
	}
	if v.Attempts != 25 {
		t.Fatalf("attempts = %d, want all 25 used", v.Attempts)
	}
}

func TestIdentifyAccessErrors(t *testing.T) {
	tr := trace.FromOps([]trace.Op{trace.ThreadInit(1), trace.Write(1, "x")})
	info, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := explorer.IdentifyAccess(info, 0); err == nil {
		t.Fatal("IdentifyAccess accepted a non-access op")
	}
	id, err := explorer.IdentifyAccess(info, 1)
	if err != nil {
		t.Fatal(err)
	}
	if id.Loc != "x" || id.Ordinal != 0 || id.TaskBase != "" {
		t.Fatalf("id = %+v", id)
	}
}

func TestRandomExploreFiresEvents(t *testing.T) {
	res, err := explorer.RandomExplore(twoButtonFactory(), explorer.RandomOptions{Events: 3, Runs: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tests) != 4 {
		t.Fatalf("tests = %d, want 4 runs", len(res.Tests))
	}
	if res.EventsFired == 0 {
		t.Fatal("no events fired")
	}
	for _, tst := range res.Tests {
		if i, err := semantics.ValidateInferred(tst.Trace); err != nil {
			t.Fatalf("%s: op %d: %v", tst.Name(), i, err)
		}
		// A run can end early only by app exit (BACK).
		if len(tst.Sequence) < 3 {
			sawBack := false
			for _, ev := range tst.Sequence {
				if ev.Kind == android.EvBack {
					sawBack = true
				}
			}
			if !sawBack {
				t.Fatalf("%s: short run without BACK", tst.Name())
			}
		}
	}
}

func TestRandomExploreDeterministic(t *testing.T) {
	opts := explorer.RandomOptions{Events: 2, Runs: 2, Seed: 5}
	a, err := explorer.RandomExplore(twoButtonFactory(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := explorer.RandomExplore(twoButtonFactory(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tests {
		if a.Tests[i].Name() != b.Tests[i].Name() {
			t.Fatalf("run %d differs: %s vs %s", i, a.Tests[i].Name(), b.Tests[i].Name())
		}
		if a.Tests[i].Trace.Len() != b.Tests[i].Trace.Len() {
			t.Fatalf("run %d trace lengths differ", i)
		}
	}
}

func TestRandomExploreBadOptions(t *testing.T) {
	if _, err := explorer.RandomExplore(twoButtonFactory(), explorer.RandomOptions{}); err == nil {
		t.Fatal("zero options accepted")
	}
}

// TestRandomVsSystematicCoverage compares the two exploration styles on
// the paper player: the systematic DFS always exposes the Figure 4 races;
// random exploration finds them with enough runs (the §7 comparison).
func TestRandomVsSystematicCoverage(t *testing.T) {
	app := apps.NewPaperMusicPlayer()
	factory := apps.Factory(app)

	exposes := func(tests []explorer.Test) bool {
		for _, tst := range tests {
			info, err := trace.Analyze(tst.Trace)
			if err != nil {
				t.Fatal(err)
			}
			g := hb.Build(info, hb.DefaultConfig())
			for _, r := range race.NewDetector(g).DetectDeduped() {
				if r.Loc == apps.DestroyedFlag {
					return true
				}
			}
		}
		return false
	}

	sys, err := explorer.Explore(factory, app.Explore())
	if err != nil {
		t.Fatal(err)
	}
	if !exposes(sys.Tests) {
		t.Fatal("systematic exploration missed the Figure 4 races")
	}
	rnd, err := explorer.RandomExplore(factory, explorer.RandomOptions{Events: 2, Runs: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !exposes(rnd.Tests) {
		t.Fatal("random exploration missed the Figure 4 races in 8 runs")
	}
}
