// Offline analysis of a hand-written trace: the literal Figure 4 trace of
// the paper in the textual core-language format, parsed and analyzed
// without running any application — the workflow of cmd/racedet as a
// library call. The analysis reports exactly the two races the paper
// derives: (12,21) multithreaded and (16,21) cross-posted.
//
//	go run ./examples/offline
package main

import (
	"fmt"
	"log"
	"strings"

	"droidracer"
)

// figure4 is the Figure 4 trace, one operation per line (comments allowed).
const figure4 = `
# Figure 4: the music player when the user presses BACK.
threadinit(t1)
attachQ(t1)
loopOnQ(t1)
enable(t1,LAUNCH_ACTIVITY)
post(t0,LAUNCH_ACTIVITY,t1)
begin(t1,LAUNCH_ACTIVITY)
write(t1,DwFileAct-obj)
fork(t1,t2)
enable(t1,onDestroy)
end(t1,LAUNCH_ACTIVITY)
threadinit(t2)
read(t2,DwFileAct-obj)
post(t2,onPostExecute,t1)
threadexit(t2)
begin(t1,onPostExecute)
read(t1,DwFileAct-obj)
enable(t1,onPlayClick)
end(t1,onPostExecute)
post(t0,onDestroy,t1)
begin(t1,onDestroy)
write(t1,DwFileAct-obj)
end(t1,onDestroy)
`

func main() {
	tr, err := droidracer.ParseTrace(strings.NewReader(figure4))
	if err != nil {
		log.Fatal(err)
	}
	if i, err := droidracer.ValidateTrace(tr); err != nil {
		log.Fatalf("op %d: %v", i, err)
	}
	result, err := droidracer.Analyze(tr, droidracer.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d operations, %d graph nodes after merging\n",
		tr.Len(), result.Graph.NodeCount())
	for _, r := range result.Races {
		// Print 1-based indices to match the paper's figure numbering.
		fmt.Printf("%-13s race on %s between operations %d and %d\n",
			r.Category, r.Loc, r.First+1, r.Second+1)
	}

	// Ablations, reproducing §2.4's arguments. The variant posts onDestroy
	// from a second binder-pool thread t3 (in the literal figure both IPCs
	// share t0, whose program order incidentally recovers some edges), and
	// racing pairs are counted without deduplication.
	variant := strings.Replace(figure4, "post(t0,onDestroy,t1)", "post(t3,onDestroy,t1)", 1)
	vtr, err := droidracer.ParseTrace(strings.NewReader(variant))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nablations (binder-pool variant, racing pairs):")
	for _, abl := range []struct {
		name string
		mut  func(*droidracer.Options)
	}{
		{"full analysis        ", func(*droidracer.Options) {}},
		{"without enable edges ", func(o *droidracer.Options) { o.HB.EnableEdges = false }},
		{"without FIFO rule    ", func(o *droidracer.Options) { o.HB.FIFO = false }},
		{"naive combination    ", func(o *droidracer.Options) { o.HB.Naive = true }},
		{"event-only (st rules)", func(o *droidracer.Options) { o.HB.STOnly = true }},
	} {
		opts := droidracer.DefaultOptions()
		opts.Dedup = false
		abl.mut(&opts)
		res, err := droidracer.Analyze(vtr, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s -> %d racing pair(s)\n", abl.name, len(res.Races))
	}
}
