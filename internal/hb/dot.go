package hb

import (
	"bufio"
	"fmt"
	"io"

	"droidracer/internal/trace"
)

// WriteDOT renders the happens-before graph in Graphviz DOT form: one node
// per graph node (merged access blocks show their access count), grouped
// into clusters per thread, with the transitive reduction of the combined
// relation as edges (solid for thread-local st, dashed for inter-thread
// mt). Intended for debugging small traces; the reduction is cubic in the
// node count.
func (g *Graph) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph happensbefore {")
	fmt.Fprintln(bw, "  rankdir=TB;")
	fmt.Fprintln(bw, "  node [shape=box, fontsize=10];")

	byThread := make(map[trace.ThreadID][]int)
	var threads []trace.ThreadID
	for i := range g.nodes {
		t := g.nodes[i].Thread
		if _, ok := byThread[t]; !ok {
			threads = append(threads, t)
		}
		byThread[t] = append(byThread[t], i)
	}
	for _, t := range threads {
		fmt.Fprintf(bw, "  subgraph cluster_t%d {\n", t)
		fmt.Fprintf(bw, "    label=\"thread t%d\";\n", t)
		for _, i := range byThread[t] {
			fmt.Fprintf(bw, "    n%d [label=%q];\n", i, g.nodeLabel(i))
		}
		fmt.Fprintln(bw, "  }")
	}

	// Transitive reduction: emit (i,j) only when no intermediate k with
	// i ≼ k ≼ j exists.
	for i := range g.nodes {
		emit := func(j int, style string) {
			fmt.Fprintf(bw, "  n%d -> n%d%s;\n", i, j, style)
		}
		for j := g.st[i].NextSet(0); j != -1; j = g.st[i].NextSet(j + 1) {
			if !g.hasIntermediate(i, j) {
				emit(j, "")
			}
		}
		for j := g.mt[i].NextSet(0); j != -1; j = g.mt[i].NextSet(j + 1) {
			if g.st[i].Has(j) {
				continue // already drawn as st
			}
			if !g.hasIntermediate(i, j) {
				emit(j, " [style=dashed]")
			}
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// hasIntermediate reports whether some k satisfies i ≼ k ≼ j.
func (g *Graph) hasIntermediate(i, j int) bool {
	row := g.st[i]
	for k := row.NextSet(i + 1); k != -1; k = row.NextSet(k + 1) {
		if k != j && (g.st[k].Has(j) || g.mt[k].Has(j)) {
			return true
		}
	}
	mrow := g.mt[i]
	for k := mrow.NextSet(i + 1); k != -1; k = mrow.NextSet(k + 1) {
		if k != j && (g.st[k].Has(j) || g.mt[k].Has(j)) {
			return true
		}
	}
	return false
}

// nodeLabel renders a node for DOT output.
func (g *Graph) nodeLabel(i int) string {
	n := &g.nodes[i]
	tr := g.info.Trace()
	if len(n.Ops) == 1 {
		return fmt.Sprintf("%d: %v", n.Ops[0], tr.Op(n.Ops[0]))
	}
	return fmt.Sprintf("%d..%d: %d accesses", n.Ops[0], n.Ops[len(n.Ops)-1], len(n.Ops))
}
