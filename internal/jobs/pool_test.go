package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"droidracer/internal/budget"
	"droidracer/internal/core"
	"droidracer/internal/faultinject"
	"droidracer/internal/journal"
	"droidracer/internal/paper"
	"droidracer/internal/report"
	"droidracer/internal/trace"
)

// blockingJob returns a job that signals started and then waits for
// release (or ctx).
func blockingJob(name string, started chan<- string, release <-chan struct{}) Job {
	return Job{
		Name: name,
		Run: func(ctx context.Context, _ budget.Limits) (*core.Result, error) {
			started <- name
			select {
			case <-release:
				return &core.Result{}, nil
			case <-ctx.Done():
				return nil, &budget.Error{Stage: "test", Resource: budget.ResourceContext, Cause: ctx.Err()}
			}
		},
	}
}

func TestSaturatedQueueShedsTyped(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	p := NewPool(Config{Workers: 1, QueueDepth: 1})
	if err := p.Submit(blockingJob("running", started, release)); err != nil {
		t.Fatal(err)
	}
	<-started // worker busy; queue empty
	if err := p.Submit(blockingJob("queued", started, release)); err != nil {
		t.Fatal(err)
	}
	// Queue full: the next submit must shed immediately with the typed
	// rejection, not block.
	err := p.Submit(blockingJob("shed", started, release))
	var rej *RejectionError
	if !errors.As(err, &rej) {
		t.Fatalf("want *RejectionError, got %v", err)
	}
	if rej.Reason != ReasonQueueFull || rej.Capacity != 1 {
		t.Fatalf("got %+v", rej)
	}
	close(release)
	p.Quiesce()
	outs := p.Shutdown(context.Background())
	byName := outcomesByName(outs)
	if byName["shed"].JobState != report.JobShed {
		t.Fatalf("shed outcome = %+v", byName["shed"])
	}
	if byName["running"].Err != nil || byName["queued"].Err != nil {
		t.Fatalf("completed jobs errored: %+v", outs)
	}
}

func TestSubmitAfterShutdownSheds(t *testing.T) {
	p := NewPool(Config{Workers: 1})
	p.Shutdown(context.Background())
	err := p.Submit(Job{Name: "late", Run: func(context.Context, budget.Limits) (*core.Result, error) {
		return nil, nil
	}})
	var rej *RejectionError
	if !errors.As(err, &rej) || rej.Reason != ReasonShuttingDown {
		t.Fatalf("want shutting-down rejection, got %v", err)
	}
}

func TestRetryWithBackoffThenSuccess(t *testing.T) {
	var slept []time.Duration
	var mu sync.Mutex
	attempts := 0
	p := NewPool(Config{
		Workers: 1,
		Retry: RetryPolicy{
			MaxAttempts: 3,
			BaseBackoff: 10 * time.Millisecond,
			Sleep: func(d time.Duration) {
				mu.Lock()
				slept = append(slept, d)
				mu.Unlock()
			},
		},
	})
	p.Submit(Job{Name: "flaky", Run: func(context.Context, budget.Limits) (*core.Result, error) {
		attempts++
		if attempts < 3 {
			return nil, fmt.Errorf("transient divergence")
		}
		return &core.Result{}, nil
	}})
	p.Quiesce()
	outs := p.Shutdown(context.Background())
	out := outcomesByName(outs)["flaky"]
	if out.Err != nil || out.Attempts != 3 {
		t.Fatalf("outcome = %+v", out)
	}
	if len(slept) != 2 || slept[1] < slept[0] {
		t.Fatalf("backoff pauses = %v, want 2 increasing", slept)
	}
	if got := outcomeMode(out); got != "full+retried" {
		t.Fatalf("rendered mode = %q", got)
	}
}

func TestCancellationIsNotRetried(t *testing.T) {
	attempts := 0
	p := NewPool(Config{Workers: 1, Retry: RetryPolicy{MaxAttempts: 5}})
	p.Submit(Job{Name: "canceled", Run: func(context.Context, budget.Limits) (*core.Result, error) {
		attempts++
		return nil, &budget.Error{Stage: "test", Resource: budget.ResourceContext, Cause: context.Canceled}
	}})
	p.Quiesce()
	outs := p.Shutdown(context.Background())
	out := outcomesByName(outs)["canceled"]
	if attempts != 1 {
		t.Fatalf("canceled job ran %d times", attempts)
	}
	if be, ok := budget.AsError(out.Err); !ok || !be.Canceled() {
		t.Fatalf("outcome err = %v", out.Err)
	}
}

func TestBreakerTripsToDegradedFallback(t *testing.T) {
	p := NewPool(Config{Workers: 1, Breaker: BreakerPolicy{Threshold: 2}})
	panicky := func(name string) Job {
		return Job{
			Name: name,
			Key:  "same-input",
			Run: func(context.Context, budget.Limits) (*core.Result, error) {
				panic("corrupt model")
			},
			Fallback: func(_ context.Context, reason error) (*core.Result, error) {
				return &core.Result{Degraded: true, DegradedReason: reason}, nil
			},
		}
	}
	for i := 0; i < 3; i++ {
		p.Submit(panicky(fmt.Sprintf("job-%d", i)))
		p.Quiesce() // serialize so the breaker sees consecutive failures
	}
	outs := p.Shutdown(context.Background())
	byName := outcomesByName(outs)
	// First run: panic surfaces as an isolated error.
	var pe *budget.PanicError
	if !errors.As(byName["job-0"].Err, &pe) {
		t.Fatalf("job-0 err = %v", byName["job-0"].Err)
	}
	// Second panic on the same key opens the breaker mid-job: degraded.
	if r := byName["job-1"].Result; r == nil || !r.Degraded {
		t.Fatalf("job-1 = %+v", byName["job-1"])
	}
	// Third never enters the panicking path: straight to the fallback.
	if r := byName["job-2"].Result; r == nil || !r.Degraded {
		t.Fatalf("job-2 = %+v", byName["job-2"])
	}
}

func TestShutdownDrainsInFlightAndCheckpointsQueued(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	p := NewPool(Config{Workers: 1, QueueDepth: 4})
	p.Submit(blockingJob("in-flight", started, release))
	<-started
	p.Submit(blockingJob("never-started", started, release))
	// Snapshot before shutdown shows the queued placeholder.
	snap := outcomesByName(p.Outcomes())
	if snap["never-started"].JobState != report.JobQueued {
		t.Fatalf("snapshot = %+v", p.Outcomes())
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	outs := p.Shutdown(context.Background())
	byName := outcomesByName(outs)
	if byName["in-flight"].Err != nil {
		t.Fatalf("in-flight was not drained: %+v", byName["in-flight"])
	}
	if byName["never-started"].JobState != report.JobDrained {
		t.Fatalf("queued job = %+v", byName["never-started"])
	}
}

func TestShutdownDeadlineCancelsInFlight(t *testing.T) {
	started := make(chan string, 1)
	p := NewPool(Config{Workers: 1})
	p.Submit(blockingJob("stuck", started, nil)) // never released
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	outs := p.Shutdown(ctx)
	out := outcomesByName(outs)["stuck"]
	if be, ok := budget.AsError(out.Err); !ok || !be.Canceled() {
		t.Fatalf("stuck job outcome = %+v", out)
	}
}

func TestPoolJournalsCompletedJobs(t *testing.T) {
	dir := t.TempDir()
	w, err := journal.Create(filepath.Join(dir, "daemon.journal"))
	if err != nil {
		t.Fatal(err)
	}
	tracePath := writeTestTrace(t, dir)
	p := NewPool(Config{Workers: 1, Journal: w})
	p.Submit(TraceJob("t1.trace", tracePath, core.DefaultOptions()))
	p.Quiesce()
	p.Shutdown(context.Background())
	w.Close()
	entries, err := journal.Recover(filepath.Join(dir, "daemon.journal"))
	if err != nil {
		t.Fatal(err)
	}
	done := CompletedJobs(entries)
	if !done["t1.trace"] {
		t.Fatalf("completed jobs = %v", done)
	}
}

// poolHelperEnv marks the re-exec'd helper of the drain chaos test.
const poolHelperEnv = "DROIDRACER_POOL_HELPER"

// TestPoolHelperProcess is the subprocess body of the drain chaos test:
// it journals one completed job, then shuts down with the jobs.drain
// kill-point armed by the parent, dying after intake closes but before
// the queued jobs drain.
func TestPoolHelperProcess(t *testing.T) {
	dir := os.Getenv(poolHelperEnv)
	if dir == "" {
		t.Skip("helper subprocess only")
	}
	w, err := journal.Create(filepath.Join(dir, "daemon.journal"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p := NewPool(Config{Workers: 1, QueueDepth: 4, Journal: w})
	p.Submit(TraceJob("t1.trace", filepath.Join(dir, "t1.trace"), core.DefaultOptions()))
	p.Quiesce() // t1 finishes and is journaled before the crash
	p.Submit(TraceJob("t2.trace", filepath.Join(dir, "t1.trace"), core.DefaultOptions()))
	p.Submit(TraceJob("t3.trace", filepath.Join(dir, "t1.trace"), core.DefaultOptions()))
	p.Shutdown(context.Background()) // jobs.drain kill-point fires here
	os.Exit(0)
}

// TestPoolKilledMidDrainResumesFromJournal proves the daemon-restart
// guarantee: a pool SIGKILL'd mid-drain loses only un-journaled work,
// and the next incarnation's journal recovery re-runs exactly the jobs
// that never completed.
func TestPoolKilledMidDrainResumesFromJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	dir := t.TempDir()
	writeTestTrace(t, dir)
	cmd := exec.Command(os.Args[0], "-test.run=^TestPoolHelperProcess$")
	for _, kv := range os.Environ() {
		if strings.HasPrefix(kv, faultinject.EnvKillpoint+"=") ||
			strings.HasPrefix(kv, poolHelperEnv+"=") {
			continue
		}
		cmd.Env = append(cmd.Env, kv)
	}
	cmd.Env = append(cmd.Env,
		poolHelperEnv+"="+dir,
		faultinject.EnvKillpoint+"=jobs.drain")
	out, err := cmd.CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != faultinject.KillExitCode {
		t.Fatalf("helper exit = %v, want kill at jobs.drain\n%s", err, out)
	}
	// Incarnation 2: recover, resubmit only unfinished inputs.
	jpath := filepath.Join(dir, "daemon.journal")
	entries, err := journal.Recover(jpath)
	if err != nil {
		t.Fatal(err)
	}
	done := CompletedJobs(entries)
	if !done["t1.trace"] {
		t.Fatalf("journaled work lost in crash: %v", done)
	}
	if done["t2.trace"] || done["t3.trace"] {
		t.Fatalf("drained jobs journaled as complete: %v", done)
	}
	w, err := journal.Create(jpath)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(Config{Workers: 1, Journal: w})
	for _, name := range []string{"t1.trace", "t2.trace", "t3.trace"} {
		if done[name] {
			continue
		}
		p.Submit(TraceJob(name, filepath.Join(dir, "t1.trace"), core.DefaultOptions()))
	}
	p.Quiesce()
	p.Shutdown(context.Background())
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err = journal.Recover(jpath)
	if err != nil {
		t.Fatal(err)
	}
	done = CompletedJobs(entries)
	for _, name := range []string{"t1.trace", "t2.trace", "t3.trace"} {
		if !done[name] {
			t.Fatalf("after restart %s still unfinished: %v", name, done)
		}
	}
}

// writeTestTrace writes the paper's Figure 4 trace (two known races) as
// a spool file.
func writeTestTrace(t *testing.T, dir string) string {
	t.Helper()
	var buf strings.Builder
	if err := trace.Format(&buf, paper.Figure4()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "t1.trace")
	if err := os.WriteFile(path, []byte(buf.String()), 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

func outcomesByName(outs []report.Outcome) map[string]report.Outcome {
	m := make(map[string]report.Outcome)
	for _, o := range outs {
		m[o.Name] = o
	}
	return m
}

// outcomeMode exposes the rendered mode column for assertions via the
// public Pipeline renderer.
func outcomeMode(o report.Outcome) string {
	rows := strings.Split(report.Pipeline([]report.Outcome{o}), "\n")
	for _, row := range rows[1:] {
		fields := strings.Fields(row)
		if len(fields) >= 2 && fields[0] == o.Name {
			return fields[1]
		}
	}
	return ""
}

func TestShedCountsPerReasonAndRejectionDepth(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	p := NewPool(Config{Workers: 1, QueueDepth: 1})
	if err := p.Submit(blockingJob("running", started, release)); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := p.Submit(blockingJob("queued", started, release)); err != nil {
		t.Fatal(err)
	}
	err := p.Submit(blockingJob("shed", started, release))
	var rej *RejectionError
	if !errors.As(err, &rej) {
		t.Fatalf("want *RejectionError, got %v", err)
	}
	// The rejection must report the queue as observed at rejection time,
	// not merely its capacity.
	if rej.Depth != 1 || rej.Capacity != 1 {
		t.Fatalf("rejection depth/capacity = %d/%d, want 1/1", rej.Depth, rej.Capacity)
	}
	if !strings.Contains(rej.Error(), "1/1 queued") {
		t.Fatalf("rejection message %q does not include queue state", rej.Error())
	}
	close(release)
	p.Quiesce()
	p.Shutdown(context.Background())
	if err := p.Submit(blockingJob("late", started, release)); err == nil {
		t.Fatal("submit after shutdown succeeded")
	}
	sheds := p.Sheds()
	if sheds[ReasonQueueFull] != 1 || sheds[ReasonShuttingDown] != 1 {
		t.Fatalf("sheds = %v, want one per reason", sheds)
	}
}

// TestConcurrentSubmitVsShutdown races many producers against Shutdown:
// every Submit must either enqueue or shed with a typed rejection, and
// closing intake concurrently with sends must never panic (the pool
// holds its mutex across the draining check and the channel send). Run
// under -race, this is the regression net for send-on-closed-channel.
func TestConcurrentSubmitVsShutdown(t *testing.T) {
	for round := 0; round < 20; round++ {
		p := NewPool(Config{Workers: 2, QueueDepth: 4})
		var wg sync.WaitGroup
		errs := make(chan error, 64)
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 16; i++ {
					err := p.Submit(Job{
						Name: fmt.Sprintf("r%d-g%d-j%d", round, g, i),
						Run: func(context.Context, budget.Limits) (*core.Result, error) {
							return &core.Result{}, nil
						},
					})
					if err != nil {
						errs <- err
					}
				}
			}(g)
		}
		outs := p.Shutdown(context.Background())
		wg.Wait()
		close(errs)
		for err := range errs {
			var rej *RejectionError
			if !errors.As(err, &rej) {
				t.Fatalf("round %d: untyped submit error %v", round, err)
			}
			if rej.Reason != ReasonQueueFull && rej.Reason != ReasonShuttingDown {
				t.Fatalf("round %d: unexpected rejection %+v", round, rej)
			}
		}
		for _, out := range outs {
			if out.JobState == "" && out.Err != nil {
				t.Fatalf("round %d: executed job failed: %+v", round, out)
			}
		}
		// After Shutdown returns, every Submit sheds with shutting-down.
		err := p.Submit(Job{Name: "late", Run: func(context.Context, budget.Limits) (*core.Result, error) {
			return &core.Result{}, nil
		}})
		var rej *RejectionError
		if !errors.As(err, &rej) || rej.Reason != ReasonShuttingDown {
			t.Fatalf("round %d: post-shutdown submit = %v", round, err)
		}
	}
}

// TestPoolQuarantinesPoisonInput proves the dead-letter path end to end
// at the pool layer: a deterministic parse failure exhausts its
// attempts, gets a quarantine journal entry instead of a job entry, is
// marked report.JobQuarantined, and its input file moves into the
// quarantine directory.
func TestPoolQuarantinesPoisonInput(t *testing.T) {
	dir := t.TempDir()
	spool := filepath.Join(dir, "spool")
	if err := os.MkdirAll(spool, 0o777); err != nil {
		t.Fatal(err)
	}
	poison := filepath.Join(spool, "bad.trace")
	if err := os.WriteFile(poison, []byte("this is not a trace\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, "daemon.journal")
	w, err := journal.Create(jpath)
	if err != nil {
		t.Fatal(err)
	}
	qdir := filepath.Join(dir, "quarantine")
	p := NewPool(Config{
		Workers:    1,
		Journal:    w,
		Quarantine: &Quarantine{Dir: qdir},
	})
	p.Submit(TraceJob("bad.trace", poison, core.DefaultOptions()))
	p.Quiesce()
	outs := p.Shutdown(context.Background())
	w.Close()

	out := outcomesByName(outs)["bad.trace"]
	if out.JobState != report.JobQuarantined {
		t.Fatalf("outcome = %+v, want quarantined", out)
	}
	if _, err := os.Stat(poison); !os.IsNotExist(err) {
		t.Fatalf("poison input still in spool (err=%v)", err)
	}
	if _, err := os.Stat(filepath.Join(qdir, "bad.trace")); err != nil {
		t.Fatalf("poison input not dead-lettered: %v", err)
	}
	entries, err := journal.Recover(jpath)
	if err != nil {
		t.Fatal(err)
	}
	quarantined := QuarantinedJobs(entries)
	if reason, ok := quarantined["bad.trace"]; !ok || reason == "" {
		t.Fatalf("quarantine journal entries = %v", quarantined)
	}
	// The dead letter is not a completion: a restart must not treat the
	// input as analyzed, it must treat it as untouchable.
	if CompletedJobs(entries)["bad.trace"] {
		t.Fatal("quarantined input journaled as completed")
	}
}

// TestTransientFailureNotQuarantined pins the quarantine boundary:
// budget exhaustion is not poison — the same input may succeed under a
// later incarnation's budget, so its file stays in the spool.
func TestTransientFailureNotQuarantined(t *testing.T) {
	dir := t.TempDir()
	input := filepath.Join(dir, "slow.trace")
	if err := os.WriteFile(input, []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}
	qdir := filepath.Join(dir, "quarantine")
	p := NewPool(Config{Workers: 1, Quarantine: &Quarantine{Dir: qdir}})
	p.Submit(Job{
		Name: "slow.trace",
		Path: input,
		Run: func(context.Context, budget.Limits) (*core.Result, error) {
			return nil, &budget.Error{Stage: "test", Resource: budget.ResourceWallClock}
		},
	})
	p.Quiesce()
	outs := p.Shutdown(context.Background())
	out := outcomesByName(outs)["slow.trace"]
	if out.JobState == report.JobQuarantined {
		t.Fatalf("budget exhaustion quarantined: %+v", out)
	}
	if _, err := os.Stat(input); err != nil {
		t.Fatalf("transiently failed input removed from spool: %v", err)
	}
}
