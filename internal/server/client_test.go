package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// scriptTransport is a no-network http.RoundTripper that plays back a
// fixed sequence of responses (repeating the last one when exhausted).
type scriptTransport struct {
	responses []scriptedResponse
	calls     int
}

type scriptedResponse struct {
	code       int
	retryAfter int // seconds; 0 omits the header
	body       string
	err        error
}

func (s *scriptTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	i := s.calls
	if i >= len(s.responses) {
		i = len(s.responses) - 1
	}
	s.calls++
	r := s.responses[i]
	if r.err != nil {
		return nil, r.err
	}
	body := r.body
	if body == "" {
		body = `{"status":"rejected"}`
	}
	resp := &http.Response{
		StatusCode: r.code,
		Header:     make(http.Header),
		Body:       io.NopCloser(strings.NewReader(body)),
		Request:    req,
	}
	if r.retryAfter > 0 {
		resp.Header.Set("Retry-After", strconv.Itoa(r.retryAfter))
	}
	return resp, nil
}

// TestClientBackoffSchedule drives the retrying client against scripted
// refusals — no sockets — and checks the waits it chose.
func TestClientBackoffSchedule(t *testing.T) {
	const base = 100 * time.Millisecond
	refuse := func(n int, code, retryAfter int) []scriptedResponse {
		out := make([]scriptedResponse, n)
		for i := range out {
			out[i] = scriptedResponse{code: code, retryAfter: retryAfter}
		}
		return out
	}
	cases := []struct {
		name      string
		responses []scriptedResponse
		attempts  int
		// checkWait validates the recorded wait of retry attempt n
		// (1-based, only non-terminal attempts have one).
		checkWait func(n int, wait time.Duration) error
	}{
		{
			name:      "seeded jitter stays within the exponential envelope",
			responses: refuse(5, http.StatusServiceUnavailable, 0),
			attempts:  5,
			checkWait: func(n int, wait time.Duration) error {
				hi := base << (n - 1)
				if wait < base/4 || wait > hi {
					return fmt.Errorf("wait %v outside [%v, %v]", wait, base/4, hi)
				}
				return nil
			},
		},
		{
			name:      "Retry-After overrides the backoff schedule",
			responses: refuse(3, http.StatusTooManyRequests, 2),
			attempts:  3,
			checkWait: func(n int, wait time.Duration) error {
				if wait != 2*time.Second {
					return fmt.Errorf("wait %v, want the server's 2s hint", wait)
				}
				return nil
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := &scriptTransport{responses: tc.responses}
			var slept []time.Duration
			c := &Client{
				BaseURL:     "http://fake",
				HTTPClient:  &http.Client{Transport: st},
				MaxAttempts: tc.attempts,
				BaseBackoff: base,
				Seed:        42,
				Sleep:       func(d time.Duration) { slept = append(slept, d) },
			}
			_, attempts, err := c.Submit(context.Background(), []byte("post(t0,X,t1)\n"))
			if err == nil {
				t.Fatal("want a terminal error after exhausted retries")
			}
			if len(attempts) != tc.attempts {
				t.Fatalf("%d attempts recorded, want %d", len(attempts), tc.attempts)
			}
			if len(slept) != tc.attempts-1 {
				t.Fatalf("slept %d times, want %d", len(slept), tc.attempts-1)
			}
			for i, w := range slept {
				if err := tc.checkWait(i+1, w); err != nil {
					t.Errorf("retry %d: %v", i+1, err)
				}
				if attempts[i].Wait != w {
					t.Errorf("retry %d: Attempt.Wait %v != slept %v", i+1, attempts[i].Wait, w)
				}
			}
			// The jitter is seeded: a second run must sleep identically.
			st2 := &scriptTransport{responses: tc.responses}
			var slept2 []time.Duration
			c2 := *c
			c2.HTTPClient = &http.Client{Transport: st2}
			c2.Sleep = func(d time.Duration) { slept2 = append(slept2, d) }
			c2.Submit(context.Background(), []byte("post(t0,X,t1)\n"))
			for i := range slept {
				if slept2[i] != slept[i] {
					t.Fatalf("seeded backoff not reproducible: %v vs %v", slept2, slept)
				}
			}
		})
	}
}

// TestClientAttemptHistory checks the diagnostic fields the CLI prints
// on terminal failure: code, structured reason, and slept backoff.
func TestClientAttemptHistory(t *testing.T) {
	st := &scriptTransport{responses: []scriptedResponse{
		{code: http.StatusServiceUnavailable, body: `{"status":"rejected","reason":"shutting-down"}`},
		{code: http.StatusBadRequest, body: `{"status":"rejected","reason":"key-mismatch"}`},
	}}
	c := &Client{
		BaseURL:     "http://fake",
		HTTPClient:  &http.Client{Transport: st},
		MaxAttempts: 5,
		BaseBackoff: time.Millisecond,
		Sleep:       func(time.Duration) {},
	}
	_, attempts, err := c.Submit(context.Background(), []byte("post(t0,X,t1)\n"))
	if err == nil {
		t.Fatal("want the 400 surfaced as an error")
	}
	if len(attempts) != 2 {
		t.Fatalf("%d attempts, want 2 (503 retried, 400 terminal)", len(attempts))
	}
	if attempts[0].Code != 503 || attempts[0].Reason != "shutting-down" || attempts[0].Wait <= 0 {
		t.Fatalf("attempt 1 = %+v, want 503/shutting-down with a recorded wait", attempts[0])
	}
	if attempts[1].Code != 400 || attempts[1].Reason != "key-mismatch" || attempts[1].Wait != 0 {
		t.Fatalf("attempt 2 = %+v, want terminal 400/key-mismatch with no wait", attempts[1])
	}
}

// TestClientCancelDuringBackoff cancels the context while the client is
// sleeping on a long Retry-After and requires a prompt return.
func TestClientCancelDuringBackoff(t *testing.T) {
	st := &scriptTransport{responses: []scriptedResponse{
		{code: http.StatusServiceUnavailable, retryAfter: 30},
	}}
	c := &Client{
		BaseURL:     "http://fake",
		HTTPClient:  &http.Client{Transport: st},
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := c.Submit(ctx, []byte("post(t0,X,t1)\n"))
	elapsed := time.Since(start)
	if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("err = %v, want context cancellation", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("returned after %v — did not abandon the 30s Retry-After sleep", elapsed)
	}
}

// TestClientRetryableStatusOverride checks the gateway's 5xx-only
// override: a 429 becomes terminal instead of retrying.
func TestClientRetryableStatusOverride(t *testing.T) {
	st := &scriptTransport{responses: []scriptedResponse{
		{code: http.StatusTooManyRequests, retryAfter: 9,
			body: `{"status":"rejected","reason":"rate-limited","retry_after_seconds":9}`},
	}}
	c := &Client{
		BaseURL:         "http://fake",
		HTTPClient:      &http.Client{Transport: st},
		MaxAttempts:     4,
		BaseBackoff:     time.Millisecond,
		RetryableStatus: func(code int) bool { return code >= 500 },
		Sleep:           func(time.Duration) { t.Fatal("must not sleep: 429 is terminal under the override") },
	}
	resp, attempts, err := c.Submit(context.Background(), []byte("post(t0,X,t1)\n"))
	if err == nil {
		t.Fatal("want the 429 surfaced as a rejection error")
	}
	if len(attempts) != 1 || st.calls != 1 {
		t.Fatalf("attempts=%d calls=%d, want exactly one", len(attempts), st.calls)
	}
	if resp == nil || resp.RetryAfterSeconds != 9 {
		t.Fatalf("resp = %+v, want the backend's rate-limit answer passed back", resp)
	}
}
