// Package apps contains the application models the evaluation runs on:
// one model per row of Table 2 of the DroidRacer paper, reproducing each
// application's concurrency skeleton — thread and task-queue usage,
// asynchronous task volume, and seeded races with ground-truth labels.
//
// The paper evaluated 10 open-source applications (200K lines of Java)
// and 5 proprietary ones on real devices; those binaries cannot run here,
// so each model reproduces the *concurrency shape* that drives Tables 2
// and 3: how many threads with and without task queues the app uses, how
// many asynchronous tasks a representative test executes, which memory
// locations race, and whether each race is real (reorderable) or a false
// positive (ordered by ad-hoc synchronization invisible to the
// instrumentation). Ground-truth labels replace the paper's manual DDMS
// triage.
package apps

import (
	"fmt"
	"sort"

	"droidracer/internal/android"
	"droidracer/internal/explorer"
	"droidracer/internal/race"
	"droidracer/internal/trace"
)

// SeededRace is a ground-truth entry: a memory location intentionally left
// racy in a model, the category the classifier should assign, and what
// goes wrong when the orders flip.
type SeededRace struct {
	Loc      trace.Loc
	Category race.Category
	Note     string
}

// App is one modeled application.
type App interface {
	// Name is the Table 2 application name.
	Name() string
	// LOC is the paper-reported source size (0 for proprietary apps).
	LOC() int
	// Proprietary marks the five closed-source applications.
	Proprietary() bool
	// MainActivity is the activity launched at app start.
	MainActivity() string
	// Options configures the simulated environment.
	Options() android.Options
	// Explore bounds the representative exploration (the paper used event
	// sequences of length 1–7, or 1–3 for apps with complex startup).
	Explore() explorer.Options
	// Register installs the app's components into the environment.
	Register(e *android.Env)
	// GroundTruth lists the seeded true races; nil for proprietary apps
	// (the paper could not triage them either).
	GroundTruth() []SeededRace
}

// Factory adapts an app to the explorer's factory interface.
func Factory(app App) explorer.AppFactory {
	return func(seed int64) (*android.Env, error) {
		opts := app.Options()
		opts.Seed = seed
		e := android.NewEnv(opts)
		app.Register(e)
		if err := e.Launch(app.MainActivity()); err != nil {
			e.Close()
			return nil, err
		}
		return e, nil
	}
}

// RepresentativeTest explores the app and returns the test with the
// longest trace — the "one representative test" per app that Table 2
// reports statistics over.
func RepresentativeTest(app App) (*explorer.Test, error) {
	res, err := explorer.Explore(Factory(app), app.Explore())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", app.Name(), err)
	}
	if len(res.Tests) == 0 {
		return nil, fmt.Errorf("%s: exploration produced no tests", app.Name())
	}
	best := &res.Tests[0]
	for i := range res.Tests {
		if res.Tests[i].Trace.Len() > best.Trace.Len() {
			best = &res.Tests[i]
		}
	}
	return best, nil
}

var registry = map[string]func() App{}

// register adds an app constructor to the registry (called from init
// functions of the per-app files).
func register(name string, ctor func() App) {
	registry[name] = ctor
}

// Names returns all registered app names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// New instantiates a registered app by name.
func New(name string) (App, error) {
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("apps: unknown app %q", name)
	}
	return ctor(), nil
}

// table2Order lists the models in the paper's Table 2 row order.
var table2Order = []string{
	"Aard Dictionary",
	"Music Player",
	"My Tracks",
	"Messenger",
	"Tomdroid Notes",
	"FBReader",
	"Browser",
	"OpenSudoku",
	"K-9 Mail",
	"SGTPuzzles",
	"Remind Me",
	"Twitter",
	"Adobe Reader",
	"Facebook",
	"Flipkart",
}

// All instantiates every model in Table 2 row order.
func All() []App {
	out := make([]App, 0, len(table2Order))
	for _, n := range table2Order {
		app, err := New(n)
		if err != nil {
			panic(err)
		}
		out = append(out, app)
	}
	return out
}

// OpenSource instantiates the ten open-source models.
func OpenSource() []App {
	var out []App
	for _, a := range All() {
		if !a.Proprietary() {
			out = append(out, a)
		}
	}
	return out
}
