package hb

import (
	"strings"
	"testing"

	"droidracer/internal/paper"
	"droidracer/internal/trace"
)

func TestWriteDOTFigure4(t *testing.T) {
	info, err := trace.Analyze(paper.Figure4())
	if err != nil {
		t.Fatal(err)
	}
	g := Build(info, DefaultConfig())
	var sb strings.Builder
	if err := g.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph happensbefore",
		"cluster_t0", "cluster_t1", "cluster_t2",
		"fork(t1,t2)",
		"style=dashed", // at least one inter-thread edge
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Every edge of the reduction must be a real ≼ pair, and the closure
	// of the reduction must equal the original relation (spot check: the
	// fork edge's endpoints stay connected).
	if !g.HappensBefore(paper.Idx(8), paper.Idx(11)) {
		t.Fatal("fork edge lost")
	}
}

func TestWriteDOTMergedBlocks(t *testing.T) {
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.Read(1, "a"),
		trace.Read(1, "b"),
		trace.Read(1, "c"),
	})
	info, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	g := Build(info, DefaultConfig())
	var sb strings.Builder
	if err := g.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "3 accesses") {
		t.Errorf("merged block label missing:\n%s", sb.String())
	}
}
