package trace

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		OpThreadInit: "threadinit",
		OpThreadExit: "threadexit",
		OpFork:       "fork",
		OpJoin:       "join",
		OpAttachQ:    "attachQ",
		OpLoopOnQ:    "loopOnQ",
		OpPost:       "post",
		OpBegin:      "begin",
		OpEnd:        "end",
		OpAcquire:    "acquire",
		OpRelease:    "release",
		OpRead:       "read",
		OpWrite:      "write",
		OpEnable:     "enable",
		OpCancel:     "cancel",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind %d: got %q, want %q", k, got, want)
		}
	}
	if got := Kind(200).String(); !strings.Contains(got, "200") {
		t.Errorf("out-of-range kind: got %q", got)
	}
}

func TestOpString(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{ThreadInit(1), "threadinit(t1)"},
		{ThreadExit(2), "threadexit(t2)"},
		{Fork(1, 2), "fork(t1,t2)"},
		{Join(1, 2), "join(t1,t2)"},
		{AttachQ(1), "attachQ(t1)"},
		{LoopOnQ(1), "loopOnQ(t1)"},
		{Post(0, "LAUNCH_ACTIVITY", 1), "post(t0,LAUNCH_ACTIVITY,t1)"},
		{PostDelayed(1, "tick", 1, 500), "postd(t1,tick,t1,500)"},
		{PostFront(1, "urgent", 1), "postf(t1,urgent,t1)"},
		{Begin(1, "p"), "begin(t1,p)"},
		{End(1, "p"), "end(t1,p)"},
		{Acquire(1, "l"), "acquire(t1,l)"},
		{Release(1, "l"), "release(t1,l)"},
		{Read(2, "DwFileAct-obj"), "read(t2,DwFileAct-obj)"},
		{Write(1, "DwFileAct-obj"), "write(t1,DwFileAct-obj)"},
		{Enable(1, "onDestroy"), "enable(t1,onDestroy)"},
		{Cancel(1, "tick"), "cancel(t1,tick)"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("got %q, want %q", got, c.want)
		}
	}
}

func TestConflicts(t *testing.T) {
	cases := []struct {
		a, b Op
		want bool
	}{
		{Write(1, "m"), Read(2, "m"), true},
		{Read(1, "m"), Write(2, "m"), true},
		{Write(1, "m"), Write(2, "m"), true},
		{Read(1, "m"), Read(2, "m"), false},
		{Write(1, "m"), Write(2, "n"), false},
		{Write(1, "m"), Post(2, "p", 1), false},
		{Begin(1, "p"), End(1, "p"), false},
	}
	for _, c := range cases {
		if got := c.a.Conflicts(c.b); got != c.want {
			t.Errorf("Conflicts(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Conflicts(c.a); got != c.want {
			t.Errorf("Conflicts(%v, %v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestTraceAppendLenOp(t *testing.T) {
	tr := New(4)
	if tr.Len() != 0 {
		t.Fatalf("fresh trace Len = %d", tr.Len())
	}
	i := tr.Append(ThreadInit(1))
	j := tr.Append(AttachQ(1))
	if i != 0 || j != 1 {
		t.Fatalf("Append indices = %d,%d, want 0,1", i, j)
	}
	if tr.Op(0).Kind != OpThreadInit || tr.Op(1).Kind != OpAttachQ {
		t.Fatal("Op returned wrong operations")
	}
}

func TestCloneIndependent(t *testing.T) {
	tr := New(2)
	tr.Append(ThreadInit(1))
	c := tr.Clone()
	c.Append(ThreadExit(1))
	if tr.Len() != 1 || c.Len() != 2 {
		t.Fatalf("clone not independent: orig=%d clone=%d", tr.Len(), c.Len())
	}
}

func TestWithoutCancelled(t *testing.T) {
	tr := FromOps([]Op{
		ThreadInit(1),
		AttachQ(1),
		LoopOnQ(1),
		Post(1, "a", 1),
		Post(1, "b", 1),
		Cancel(1, "b"),
		Begin(1, "a"),
		End(1, "a"),
	})
	got := tr.WithoutCancelled()
	if got.Len() != 6 {
		t.Fatalf("Len = %d, want 6: %v", got.Len(), got.Ops())
	}
	for _, op := range got.Ops() {
		if op.Kind == OpCancel {
			t.Error("cancel op survived")
		}
		if op.Kind == OpPost && op.Task == "b" {
			t.Error("cancelled post survived")
		}
	}
}

func TestWithoutCancelledKeepsBegunTask(t *testing.T) {
	// A cancel that raced with dispatch: the task already began, so its
	// post must stay to keep the trace well-formed.
	tr := FromOps([]Op{
		ThreadInit(1),
		AttachQ(1),
		LoopOnQ(1),
		Post(1, "a", 1),
		Begin(1, "a"),
		End(1, "a"),
		Cancel(1, "a"),
	})
	got := tr.WithoutCancelled()
	posts := 0
	for _, op := range got.Ops() {
		if op.Kind == OpPost {
			posts++
		}
	}
	if posts != 1 {
		t.Fatalf("post count = %d, want 1", posts)
	}
}

func TestComputeStats(t *testing.T) {
	tr := FromOps([]Op{
		ThreadInit(1),
		AttachQ(1),
		LoopOnQ(1),
		Fork(1, 2),
		ThreadInit(2),
		Read(2, "x"),
		Write(2, "y"),
		Read(2, "x"),
		Post(2, "p", 1),
		Begin(1, "p"),
		Write(1, "x"),
		End(1, "p"),
	})
	st := ComputeStats(tr, nil)
	if st.Length != 12 {
		t.Errorf("Length = %d, want 12", st.Length)
	}
	if st.Fields != 2 {
		t.Errorf("Fields = %d, want 2", st.Fields)
	}
	if st.ThreadsQ != 1 || st.ThreadsNoQ != 1 {
		t.Errorf("ThreadsQ,NoQ = %d,%d, want 1,1", st.ThreadsQ, st.ThreadsNoQ)
	}
	if st.AsyncTasks != 1 {
		t.Errorf("AsyncTasks = %d, want 1", st.AsyncTasks)
	}

	// Excluding thread 2 as a system thread drops it from the counts.
	st = ComputeStats(tr, func(id ThreadID) bool { return id == 2 })
	if st.ThreadsQ != 1 || st.ThreadsNoQ != 0 {
		t.Errorf("with filter: ThreadsQ,NoQ = %d,%d, want 1,0", st.ThreadsQ, st.ThreadsNoQ)
	}
}
