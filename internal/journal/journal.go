// Package journal implements the crash-safe write-ahead journal of the
// resilient analysis service: an append-only file of JSON-line entries
// under a state directory, fsync'd at chunk boundaries, with a recovery
// reader that tolerates the torn tail a hard crash leaves behind.
//
// The journal is what makes exploration campaigns restartable: the
// explorer's DFS work (bound-k event sequences and their per-test race
// results) is the expensive resource worth preserving across failures,
// so every completed unit of work is journaled before the process may
// die. Recovery follows standard WAL discipline: entries are replayed in
// order until the first undecodable line, which is treated as the torn
// tail of an interrupted append and discarded — everything before it was
// fsync'd and is trusted.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"droidracer/internal/faultinject"
)

// Entry is one journal record: a type tag and an opaque payload the
// owning subsystem marshals. Seq is the 1-based position in the journal,
// assigned on append and verified on replay so a corrupted middle (not
// just a torn tail) is detected rather than silently skipped.
type Entry struct {
	Seq  int             `json:"seq"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Decode unmarshals the entry payload into v.
func (e Entry) Decode(v any) error {
	if err := json.Unmarshal(e.Data, v); err != nil {
		return fmt.Errorf("journal: entry %d (%s): %w", e.Seq, e.Type, err)
	}
	return nil
}

// DefaultChunk is the number of appended entries between automatic
// fsyncs. Callers mark durability barriers explicitly with Sync; the
// chunk bound caps how much unsynced work a crash between barriers can
// lose.
const DefaultChunk = 16

// RecoveryStats quantifies one journal recovery: what was kept, and
// what the torn tail silently cost. A crash mid-append leaves a partial
// final line that recovery must discard; without these numbers that
// data loss is invisible to operators resuming a campaign.
type RecoveryStats struct {
	// Entries is the number of valid entries replayed.
	Entries int
	// DiscardedEntries counts torn-tail lines (usually 0 or 1) dropped
	// after the last valid entry.
	DiscardedEntries int
	// DiscardedBytes is the size of the truncated torn tail.
	DiscardedBytes int64
}

// Torn reports whether recovery discarded anything.
func (s RecoveryStats) Torn() bool {
	return s.DiscardedEntries > 0 || s.DiscardedBytes > 0
}

// Writer appends entries to a journal file. It is safe for concurrent
// use; appends are serialized internally.
type Writer struct {
	mu        sync.Mutex
	f         *os.File
	bw        *bufio.Writer
	seq       int
	pending   int
	chunk     int
	recovered RecoveryStats
}

// Create opens the journal file at path for appending, creating it (and
// its parent directory) when absent. An existing journal is continued:
// the sequence counter resumes after the last recoverable entry, and a
// torn tail from a previous crash is truncated away first.
//
// Kill-point: "journal.create" crashes after the file and its directory
// entry are durable but before the first append — the window where a
// fresh daemon owns an empty journal.
func Create(path string) (*Writer, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	entries, valid, stats, err := recoverFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	tornEntriesTotal.Add(stats.DiscardedEntries)
	tornBytesTotal.Add(int(stats.DiscardedBytes))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o666)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	// fsync the truncation, then the parent directory: creating (or
	// truncating) the file changes the directory entry, and data fsyncs
	// alone do not make that durable. Without this a host crash right
	// after daemon start can lose the journal file itself — the next
	// incarnation would silently begin from an empty history.
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	if err := SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	faultinject.Crash("journal.create")
	return &Writer{f: f, bw: bufio.NewWriter(f), seq: len(entries), chunk: DefaultChunk, recovered: stats}, nil
}

// SyncDir fsyncs a directory, making renames and file creations under it
// durable. The quarantine mover shares it with Create.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: syncing %s: %w", dir, err)
	}
	return nil
}

// Recovered returns the recovery statistics of the journal this writer
// continued: entries kept and the torn tail discarded, if any.
func (w *Writer) Recovered() RecoveryStats {
	return w.recovered
}

// Seq returns the sequence number of the most recently appended entry
// (or the last recovered one, before the first append). Event logs use
// it to correlate log lines with WAL records.
func (w *Writer) Seq() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// SetChunk overrides the automatic-fsync chunk size (entries per fsync);
// n <= 1 syncs every append.
func (w *Writer) SetChunk(n int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n < 1 {
		n = 1
	}
	w.chunk = n
}

// Append marshals data under the given type tag and writes it as one
// journal line. The entry becomes durable at the next chunk boundary or
// explicit Sync, whichever comes first.
func (w *Writer) Append(typ string, data any) error {
	_, err := w.AppendSeq(typ, data)
	return err
}

// AppendSeq is Append returning the sequence number assigned to this
// entry. The number is taken under the writer's own mutex, so it
// identifies exactly this record even with concurrent appenders — a
// later Seq() call could observe another appender's entry. Event logs
// use it to correlate log lines with WAL records. A marshal or write
// error means the entry was not appended and the sequence number is 0;
// a failed chunk-boundary fsync still returns the assigned number (the
// entry reached the file, it is just not durable yet).
//
// Kill-points: "journal.append" crashes after the line is buffered but
// before any sync; "journal.torn" crashes after flushing only half of
// the line to the file, leaving the torn tail recovery must discard.
func (w *Writer) AppendSeq(typ string, data any) (int, error) {
	raw, err := json.Marshal(data)
	if err != nil {
		return 0, fmt.Errorf("journal: marshaling %s entry: %w", typ, err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	line, err := json.Marshal(Entry{Seq: w.seq + 1, Type: typ, Data: raw})
	if err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	w.seq++
	line = append(line, '\n')
	if faultinject.Triggered("journal.torn") {
		// Model a crash mid-write: half the line reaches the disk, the
		// rest is lost with the process.
		w.bw.Write(line[:len(line)/2])
		w.bw.Flush()
		w.f.Sync()
		os.Exit(faultinject.KillExitCode)
	}
	if _, err := w.bw.Write(line); err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	appendsTotal.Inc()
	faultinject.Crash("journal.append")
	w.pending++
	if w.pending >= w.chunk {
		return w.seq, w.sync()
	}
	return w.seq, nil
}

// Sync flushes buffered entries and fsyncs the file — the durability
// barrier callers place after each completed unit of work.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sync()
}

func (w *Writer) sync() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	fsyncsTotal.Inc()
	fsyncDur.ObserveDuration(time.Since(start))
	w.pending = 0
	faultinject.Crash("journal.synced")
	return nil
}

// Close syncs and closes the journal file.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Recover reads the journal at path, returning every entry before the
// torn tail (if any). A missing file is an empty journal, not an error:
// resuming from a state dir that never got as far as its first sync must
// behave like a fresh start.
func Recover(path string) ([]Entry, error) {
	entries, _, err := RecoverStats(path)
	return entries, err
}

// RecoverStats is Recover plus the recovery statistics: how many
// entries were kept and how many torn-tail lines and bytes were
// discarded, so resume reporting can surface the loss instead of
// swallowing it. A missing file is an empty journal with zero stats.
func RecoverStats(path string) ([]Entry, RecoveryStats, error) {
	entries, _, stats, err := recoverFile(path)
	if os.IsNotExist(err) {
		return nil, RecoveryStats{}, nil
	}
	return entries, stats, err
}

// recoverFile reads entries and also reports the byte offset of the end
// of the last valid entry, so Create can truncate a torn tail before
// appending, plus the recovery statistics. A final line without its
// '\n' terminator is torn by definition — the writer always line-frames
// records — even when its bytes happen to decode.
func recoverFile(path string) ([]Entry, int64, RecoveryStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, RecoveryStats{}, err
	}
	defer f.Close()
	var entries []Entry
	var valid int64
	var stats RecoveryStats
	r := bufio.NewReaderSize(f, 64*1024)
	for {
		line, err := r.ReadString('\n')
		if err == io.EOF {
			// line, if non-empty, is an unterminated (torn) tail.
			if len(line) > 0 {
				stats.DiscardedEntries++
				stats.DiscardedBytes += int64(len(line))
			}
			stats.Entries = len(entries)
			return entries, valid, stats, nil
		}
		if err != nil {
			return nil, 0, RecoveryStats{}, fmt.Errorf("journal: %s: %w", path, err)
		}
		var e Entry
		if uerr := json.Unmarshal([]byte(line), &e); uerr != nil || e.Seq != len(entries)+1 {
			if uerr == nil && e.Seq != 0 {
				// A decodable entry with the wrong sequence number is not a
				// torn tail — the journal middle is corrupt and resuming
				// from it could silently drop work.
				return nil, 0, RecoveryStats{}, fmt.Errorf("journal: %s: entry out of sequence (want %d, got %d)",
					path, len(entries)+1, e.Seq)
			}
			// Undecodable line: the torn tail of an interrupted append.
			// Everything after it (normally nothing) is untrusted too.
			stats.DiscardedEntries++
			stats.DiscardedBytes += int64(len(line))
			for {
				rest, rerr := r.ReadString('\n')
				if len(rest) > 0 {
					stats.DiscardedEntries++
					stats.DiscardedBytes += int64(len(rest))
				}
				if rerr != nil {
					break
				}
			}
			stats.Entries = len(entries)
			return entries, valid, stats, nil
		}
		entries = append(entries, e)
		valid += int64(len(line))
	}
}
