package jobs

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"droidracer/internal/core"
	"droidracer/internal/journal"
	"droidracer/internal/paper"
	"droidracer/internal/report"
	"droidracer/internal/storage"
	"droidracer/internal/trace"
)

// figure4Body renders the paper's Figure 4 trace as spool-file bytes.
func figure4Body(t *testing.T) []byte {
	t.Helper()
	var buf strings.Builder
	if err := trace.Format(&buf, paper.Figure4()); err != nil {
		t.Fatal(err)
	}
	return []byte(buf.String())
}

// TestVerifiedSpoolRoundTrip: a content-named spool file whose bytes
// still match its key analyzes normally — verification is invisible on
// the healthy path.
func TestVerifiedSpoolRoundTrip(t *testing.T) {
	dir := t.TempDir()
	body := figure4Body(t)
	name := storage.Key(body) + ".trace"
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, body, 0o666); err != nil {
		t.Fatal(err)
	}
	p := NewPool(Config{Workers: 1})
	p.Submit(TraceJob(name, path, core.DefaultOptions()))
	p.Quiesce()
	out := outcomesByName(p.Shutdown(context.Background()))[name]
	if out.Err != nil || out.Result == nil {
		t.Fatalf("verified round trip failed: %+v", out)
	}
	if len(out.Result.Races) == 0 {
		t.Fatal("Figure 4 trace analyzed raceless")
	}
}

// TestCorruptSpoolBodyQuarantined proves the read-back integrity check
// end to end at the pool layer: a spool file whose bytes no longer
// match the content key in its name (rot after write, or a misdirected
// write) must not be analyzed as if it were the original submission —
// it fails deterministically and is dead-lettered with a corruption
// reason, journal entry included.
func TestCorruptSpoolBodyQuarantined(t *testing.T) {
	dir := t.TempDir()
	spool := filepath.Join(dir, "spool")
	if err := os.MkdirAll(spool, 0o777); err != nil {
		t.Fatal(err)
	}
	body := figure4Body(t)
	name := storage.Key(body) + ".trace"
	// Rot one byte after the name was derived: the file still parses as
	// a perfectly valid trace — only the digest knows it is not the
	// trace that was accepted.
	rotted := append([]byte(nil), body...)
	rotted[0] = '#' // comment out the first op: still syntactically valid
	path := filepath.Join(spool, name)
	if err := os.WriteFile(path, rotted, 0o666); err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, "daemon.journal")
	w, err := journal.Create(jpath)
	if err != nil {
		t.Fatal(err)
	}
	qdir := filepath.Join(dir, "quarantine")
	p := NewPool(Config{
		Workers:    1,
		Journal:    w,
		Quarantine: &Quarantine{Dir: qdir},
	})
	p.Submit(TraceJob(name, path, core.DefaultOptions()))
	p.Quiesce()
	out := outcomesByName(p.Shutdown(context.Background()))[name]
	w.Close()
	if out.JobState != report.JobQuarantined {
		t.Fatalf("outcome = %+v, want quarantined", out)
	}
	if !storage.IsCorrupt(out.Err) {
		t.Fatalf("failure not classified as corruption: %v", out.Err)
	}
	if _, err := os.Stat(filepath.Join(qdir, name)); err != nil {
		t.Fatalf("corrupt body not dead-lettered: %v", err)
	}
	entries, err := journal.Recover(jpath)
	if err != nil {
		t.Fatal(err)
	}
	reason, ok := QuarantinedJobs(entries)[name]
	if !ok || !strings.Contains(reason, "corrupt") {
		t.Fatalf("quarantine reason = %q, want a corrupt reason", reason)
	}
	if CompletedJobs(entries)[name] {
		t.Fatal("corrupt input journaled as completed")
	}
}
