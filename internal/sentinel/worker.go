package sentinel

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	"droidracer/internal/budget"
	"droidracer/internal/core"
	"droidracer/internal/faultinject"
	"droidracer/internal/hb"
	"droidracer/internal/storage"
	"droidracer/internal/trace"
)

// rlimitSlack is headroom added on top of the measured address space
// and the configured limit when arming RLIMIT_AS: the Go runtime's own
// reservations (spans, bitmaps, stacks — and the race detector's shadow
// in -race test builds) must not count against the job's budget.
const rlimitSlack = 512 << 20

// WorkerMain is the entry point of `racedetd -worker`: one isolated
// analysis in a sandboxed child process. It reads its contract from the
// EnvWorker variable (see workerSpec), arms RLIMIT_AS so an allocation
// spree dies against the kernel instead of growing the fleet's heap,
// runs the analysis, and writes the result file the parent rebuilds a
// core.Result from. The exit code is part of the protocol: 0 success,
// 3 analysis error (details in the result file), anything else a death
// the parent classifies. Returns the process exit code.
func WorkerMain() int {
	specJSON := os.Getenv(EnvWorker)
	if specJSON == "" {
		fmt.Fprintln(os.Stderr, "sentinel: worker started without "+EnvWorker)
		return 64
	}
	var spec workerSpec
	if err := json.Unmarshal([]byte(specJSON), &spec); err != nil {
		fmt.Fprintf(os.Stderr, "sentinel: bad worker spec: %v\n", err)
		return 64
	}
	if spec.MemLimit > 0 {
		// GOMEMLIMIT (set by the parent in the environment) makes the GC
		// fight before the wall; RLIMIT_AS is the wall. The limit rides
		// on top of the address space already mapped at startup, so only
		// the job's own growth counts against it.
		debug.SetMemoryLimit(spec.MemLimit)
		armRlimit(spec.MemLimit)
	}

	body, err := os.ReadFile(spec.Trace)
	if err != nil {
		return writeWorkerError(spec.Out, err)
	}
	base := filepath.Base(spec.Trace)
	if _, keyed := storage.ContentKey(base); keyed {
		// Content-named spool files commit to their key; the worker
		// verifies the same end-to-end chain the in-process path does.
		if err := storage.VerifyBody(base, body); err != nil {
			return writeWorkerError(spec.Out, err)
		}
	}
	tr, err := trace.ParseBytes(body)
	if err != nil {
		return writeWorkerError(spec.Out, err)
	}

	// Kill-point: death mid-analysis, after the input is parsed — the
	// window the OOM killer strikes in production, and the one the
	// quarantine-replay chaos test arms.
	faultinject.Crash("sentinel.worker")
	switch childFault() {
	case "oom":
		var sink [][]byte
		for {
			b := make([]byte, 1<<20)
			for i := 0; i < len(b); i += 4096 {
				b[i] = 1
			}
			sink = append(sink, b)
		}
	case "hang":
		select {}
	case "panic":
		panic("sentinel: injected worker panic")
	}

	opts := core.Options{
		HB:              hb.DefaultConfig(),
		Engine:          spec.Engine,
		Dedup:           spec.Dedup,
		Validate:        spec.Validate,
		DropCancelled:   spec.DropCancelled,
		DegradeOnBudget: spec.DegradeOnBudget,
		Parallelism:     spec.Parallelism,
		Budget:          budget.Limits{Wall: time.Duration(spec.WallMS) * time.Millisecond},
	}
	res, err := core.AnalyzeContext(context.Background(), tr, opts)
	if err != nil {
		return writeWorkerError(spec.Out, err)
	}

	wr := workerResult{
		Degraded:  res.Degraded,
		Stats:     res.Stats,
		PeakBytes: peakRSS(),
	}
	if res.DegradedReason != nil {
		wr.DegradedReason = res.DegradedReason.Error()
	}
	wr.Races = make([]workerRace, len(res.Races))
	for i, r := range res.Races {
		wr.Races[i] = workerRace{First: r.First, Second: r.Second,
			Loc: string(r.Loc), Category: int(r.Category)}
	}
	if err := writeWorkerResult(spec.Out, &wr); err != nil {
		fmt.Fprintf(os.Stderr, "sentinel: write result: %v\n", err)
		return 1
	}
	return 0
}

// writeWorkerError records an analysis failure — the input's fault, not
// the sandbox's — and returns the analysis-error exit code.
func writeWorkerError(out string, err error) int {
	if werr := writeWorkerResult(out, &workerResult{Err: err.Error()}); werr != nil {
		fmt.Fprintf(os.Stderr, "sentinel: write result: %v\n", werr)
		return 1
	}
	return workerExitAnalysisError
}

func writeWorkerResult(out string, wr *workerResult) error {
	data, err := json.Marshal(wr)
	if err != nil {
		return err
	}
	return os.WriteFile(out, data, 0o666)
}

// armRlimit caps the address space at what the process has already
// mapped plus the job's memory budget plus slack. Measuring the current
// VmSize first keeps the cap meaningful for any build: a -race test
// binary starts with gigabytes of shadow reservations that must not eat
// the budget. When the job then allocates past its budget, mmap fails
// and the Go runtime throws "out of memory" — the classifiable death
// the parent maps to ClassMemLimit.
func armRlimit(memLimit int64) {
	base := vmSizeBytes()
	if base <= 0 {
		base = 1 << 30
	}
	limit := uint64(base + memLimit + rlimitSlack)
	syscall.Setrlimit(syscall.RLIMIT_AS, &syscall.Rlimit{Cur: limit, Max: limit})
}

// vmSizeBytes reads the process's current virtual size from
// /proc/self/status (0 when unavailable — non-Linux or a hermetic
// sandbox).
func vmSizeBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		var kb int64
		if n, _ := fmt.Sscanf(line, "VmSize: %d kB", &kb); n == 1 {
			return kb << 10
		}
	}
	return 0
}

// peakRSS reports the process's peak resident set in bytes (Linux
// getrusage, ru_maxrss in KiB).
func peakRSS() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Maxrss << 10
}
