package trace

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFormatParseRoundTrip(t *testing.T) {
	tr := figureTrace()
	tr.Append(PostDelayed(1, "tick", 1, 250))
	tr.Append(PostFront(1, "urgent", 1))
	tr.Append(Cancel(1, "tick"))
	tr.Append(Acquire(1, "L"))
	tr.Append(Release(1, "L"))

	var sb strings.Builder
	if err := Format(&sb, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip length %d, want %d", got.Len(), tr.Len())
	}
	for i := range tr.Ops() {
		if got.Op(i) != tr.Op(i) {
			t.Fatalf("op %d: got %v, want %v", i, got.Op(i), tr.Op(i))
		}
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	input := `
# a comment
threadinit(t1)

attachQ(t1)
# another
`
	tr, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
}

func TestParseWhitespaceInArgs(t *testing.T) {
	op, err := ParseOp("post(t0, LAUNCH_ACTIVITY, t1)")
	if err != nil {
		t.Fatal(err)
	}
	if op.Task != "LAUNCH_ACTIVITY" || op.Thread != 0 || op.Other != 1 {
		t.Fatalf("parsed %+v", op)
	}
}

func TestParseOpErrors(t *testing.T) {
	bad := []string{
		"",
		"post",
		"post(t0,p,t1",
		"frobnicate(t1)",
		"threadinit(x1)",
		"threadinit(t-1)",
		"fork(t1)",
		"post(t1,p)",
		"postd(t1,p,t1,abc)",
		"postd(t1,p,t1,-5)",
		"read(t1)",
		"join(t1,q2)",
	}
	for _, s := range bad {
		if _, err := ParseOp(s); err == nil {
			t.Errorf("ParseOp(%q): no error", s)
		}
	}
}

func TestParseBadLineReportsLineNumber(t *testing.T) {
	_, err := Parse(strings.NewReader("threadinit(t1)\nbogus(t1)\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line 2 mention", err)
	}
}

// randomOp produces an arbitrary well-formed operation for round-trip
// property testing.
func randomOp(rng *rand.Rand) Op {
	t := ThreadID(rng.Intn(8))
	o := ThreadID(rng.Intn(8))
	task := TaskID([]string{"p", "q", "onPause", "task_42"}[rng.Intn(4)])
	loc := Loc([]string{"x", "Obj.field", "DwFileAct-obj"}[rng.Intn(3)])
	lock := LockID([]string{"l", "mu"}[rng.Intn(2)])
	switch rng.Intn(12) {
	case 0:
		return ThreadInit(t)
	case 1:
		return ThreadExit(t)
	case 2:
		return Fork(t, o)
	case 3:
		return Join(t, o)
	case 4:
		return AttachQ(t)
	case 5:
		return LoopOnQ(t)
	case 6:
		switch rng.Intn(3) {
		case 0:
			return Post(t, task, o)
		case 1:
			return PostDelayed(t, task, o, int64(rng.Intn(10000)))
		default:
			return PostFront(t, task, o)
		}
	case 7:
		return Begin(t, task)
	case 8:
		return End(t, task)
	case 9:
		if rng.Intn(2) == 0 {
			return Acquire(t, lock)
		}
		return Release(t, lock)
	case 10:
		if rng.Intn(2) == 0 {
			return Read(t, loc)
		}
		return Write(t, loc)
	default:
		if rng.Intn(2) == 0 {
			return Enable(t, task)
		}
		return Cancel(t, task)
	}
}

// TestQuickOpRoundTrip checks String/ParseOp inversion on random ops.
func TestQuickOpRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for k := 0; k < 50; k++ {
			op := randomOp(rng)
			back, err := ParseOp(op.String())
			if err != nil || back != op {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
