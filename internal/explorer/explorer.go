// Package explorer implements the UI Explorer of the DroidRacer tool
// (§5): systematic depth-first generation of UI event sequences up to a
// bound k, with deterministic replay for backtracking — "the event
// sequences generated are stored in a database and used for backtracking
// and replay". An event fires only after the previous event is consumed
// (the explorer waits for quiescence), matching the paper's
// instrumentation checks.
//
// The package also provides the reorder-replay verifier used to confirm
// reported races: it re-executes an event sequence under different
// schedules looking for an execution in which the racing accesses occur in
// the opposite order — the paper's manual DDMS procedure, automated.
package explorer

import (
	"context"
	"fmt"

	"droidracer/internal/android"
	"droidracer/internal/budget"
	"droidracer/internal/sched"
	"droidracer/internal/trace"
)

// AppFactory builds a fresh environment with the application registered
// and its main activity launched (but not yet run). The seed selects the
// scheduling interleaving; seed 0 means round-robin.
type AppFactory func(seed int64) (*android.Env, error)

// Options bound the exploration.
type Options struct {
	// MaxEvents is the bound k on UI event sequence length.
	MaxEvents int
	// MaxTests caps the number of recorded tests (0 = unlimited).
	MaxTests int
	// Seed selects the scheduling policy used for every run.
	Seed int64
	// RecordAll records a test for every explored prefix instead of only
	// maximal sequences.
	RecordAll bool
	// Budget bounds the exploration: Wall caps total wall-clock time and
	// MaxSequences caps the number of prefixes executed. The zero value
	// means unlimited.
	Budget budget.Limits
	// OnTest, when set, streams each recorded test to the caller instead
	// of accumulating it in Result.Tests, so a campaign can analyze and
	// checkpoint tests as they are produced without holding every trace
	// in memory. An error from OnTest aborts the exploration.
	OnTest func(*Test) error
	// Checkpoint, when set, makes the DFS restartable: completed subtrees
	// are reported to the sink and previously completed subtrees are
	// skipped wholesale on resume (their tests are not re-recorded — the
	// sink already has them). See the jobs package for the journal-backed
	// implementation.
	Checkpoint CheckpointSink
}

// CheckpointSink receives DFS progress for crash-safe resume. The
// explorer calls SubtreeDone(prefix) only after every sequence extending
// prefix (and prefix itself) has been recorded — the resume invariant:
// skipping a done subtree can never lose a test. Implementations must
// make SubtreeDone durable before returning.
type CheckpointSink interface {
	// SkipSubtree reports whether the subtree rooted at this prefix was
	// fully explored by an earlier (crashed or drained) run.
	SkipSubtree(prefix []android.UIEvent) bool
	// SubtreeDone marks the subtree rooted at this prefix complete.
	SubtreeDone(prefix []android.UIEvent) error
}

// Test is one explored event sequence and the trace its execution
// produced.
type Test struct {
	Sequence []android.UIEvent
	Trace    *trace.Trace
	// SystemThreads are the runtime-internal (binder) threads of the run,
	// excluded from the paper's Table 2 thread counts.
	SystemThreads []trace.ThreadID
}

// Name renders the event sequence, e.g. "click(play);BACK".
func (t *Test) Name() string {
	s := ""
	for i, ev := range t.Sequence {
		if i > 0 {
			s += ";"
		}
		s += ev.String()
	}
	if s == "" {
		return "<empty>"
	}
	return s
}

// Result is the outcome of an exploration.
type Result struct {
	Tests []Test
	// SequencesExplored counts all prefixes executed, including interior
	// DFS nodes.
	SequencesExplored int
	// EventsFired counts every event injection across all runs.
	EventsFired int
}

// Explore systematically enumerates event sequences of length up to
// opts.MaxEvents in depth-first order, recording a test per maximal
// sequence (or per prefix with RecordAll). Backtracking replays the prefix
// on a fresh environment, relying on deterministic scheduling. See
// ExploreContext for budgeted exploration.
func Explore(factory AppFactory, opts Options) (*Result, error) {
	return ExploreContext(context.Background(), factory, opts)
}

// ExploreContext is Explore under ctx and opts.Budget. The budget is
// polled at every DFS node and — when a wall-clock deadline or context
// is in play — between scheduler quanta inside each run, so a hung or
// long-running app model cannot stall the explorer. On a trip the tests
// recorded so far are returned together with a *budget.Error; a panic in
// the app model surfaces as a *budget.PanicError.
func ExploreContext(ctx context.Context, factory AppFactory, opts Options) (res *Result, err error) {
	ierr := budget.Isolate("explorer.Explore", func() error {
		res, err = explore(ctx, factory, opts)
		return nil
	})
	if ierr != nil {
		return nil, ierr
	}
	return res, err
}

func explore(ctx context.Context, factory AppFactory, opts Options) (*Result, error) {
	if opts.MaxEvents < 0 {
		return nil, fmt.Errorf("explorer: negative event bound")
	}
	ck := budget.NewChecker(ctx, opts.Budget)
	ck.SetStage("explore")
	res := &Result{}
	recorded := 0 // tests recorded, whether streamed or accumulated
	var dfs func(prefix []android.UIEvent) error
	dfs = func(prefix []android.UIEvent) error {
		if opts.MaxTests > 0 && recorded >= opts.MaxTests {
			return nil
		}
		if opts.Checkpoint != nil && opts.Checkpoint.SkipSubtree(prefix) {
			// A previous run completed this whole subtree and durably
			// recorded its tests; re-exploring it would redo the work the
			// checkpoint exists to preserve.
			subtreesSkipped.Inc()
			return nil
		}
		if err := ck.CheckNow(); err != nil {
			return err
		}
		if err := ck.Sequences(res.SequencesExplored + 1); err != nil {
			return err
		}
		env, enabled, err := runPrefix(factory, opts.Seed, prefix, res, ck)
		if err != nil {
			return err
		}
		res.SequencesExplored++
		sequencesTotal.Inc()
		maxDepth.SetMax(int64(len(prefix)))
		atBound := len(prefix) >= opts.MaxEvents || len(enabled) == 0
		record := atBound || opts.RecordAll
		if record {
			if err := env.Shutdown(); err != nil {
				return fmt.Errorf("explorer: shutdown after %v: %w", prefix, err)
			}
			t := Test{
				Sequence:      append([]android.UIEvent(nil), prefix...),
				Trace:         env.Trace(),
				SystemThreads: env.SystemThreads(),
			}
			recorded++
			testsTotal.Inc()
			if opts.OnTest != nil {
				if err := opts.OnTest(&t); err != nil {
					return err
				}
			} else {
				res.Tests = append(res.Tests, t)
			}
		} else {
			env.Close()
		}
		if !atBound {
			for i, ev := range enabled {
				if opts.MaxTests > 0 && recorded >= opts.MaxTests {
					// The cap cut this subtree short; it must not be marked
					// done, or a resume would skip its unexplored remainder.
					return nil
				}
				if i > 0 {
					// Every sibling after the first means the DFS returned
					// here and will replay this prefix from scratch.
					backtracksTotal.Inc()
				}
				if err := dfs(append(prefix, ev)); err != nil {
					return err
				}
			}
		}
		if opts.Checkpoint != nil {
			if err := opts.Checkpoint.SubtreeDone(prefix); err != nil {
				return err
			}
			checkpointBarriers.Inc()
		}
		return nil
	}
	if err := dfs(nil); err != nil {
		return res, err
	}
	return res, nil
}

// runQuanta is the scheduler step quantum between budget polls of a
// budgeted run. Small enough that a 50 ms deadline is honored within a
// couple of quanta even on slow app models.
const runQuanta = 512

// runAll drives env to quiescence. Without an active checker it is a
// single uninterruptible env.Run; with one it runs in quanta, polling
// the budget between them so deadlines interrupt even a single long run.
func runAll(env *android.Env, ck *budget.Checker) error {
	if !ck.Active() {
		return env.Run()
	}
	for {
		if err := ck.CheckNow(); err != nil {
			return err
		}
		st, err := env.RunSteps(runQuanta)
		if err != nil {
			return err
		}
		if st != sched.Paused {
			return nil
		}
	}
}

// runPrefix builds a fresh environment and replays the event prefix,
// returning the environment at quiescence together with the events enabled
// there. Replay divergence (an event from the stored sequence no longer
// enabled) is an error.
func runPrefix(factory AppFactory, seed int64, prefix []android.UIEvent, res *Result, ck *budget.Checker) (*android.Env, []android.UIEvent, error) {
	env, err := factory(seed)
	if err != nil {
		return nil, nil, err
	}
	replaysTotal.Inc()
	if err := runAll(env, ck); err != nil {
		env.Close()
		return nil, nil, fmt.Errorf("explorer: initial run: %w", err)
	}
	for i, ev := range prefix {
		if !contains(env.EnabledEvents(), ev) {
			env.Close()
			return nil, nil, fmt.Errorf("explorer: replay divergence at step %d: %v not enabled", i, ev)
		}
		if err := env.Fire(ev); err != nil {
			env.Close()
			return nil, nil, fmt.Errorf("explorer: replay step %d: %w", i, err)
		}
		if res != nil {
			res.EventsFired++
			eventsFiredTotal.Inc()
		}
		if err := runAll(env, ck); err != nil {
			env.Close()
			return nil, nil, fmt.Errorf("explorer: replay step %d run: %w", i, err)
		}
	}
	return env, env.EnabledEvents(), nil
}

// Replay re-executes a stored event sequence under the given seed and
// returns the resulting trace.
func Replay(factory AppFactory, seed int64, sequence []android.UIEvent) (*trace.Trace, error) {
	env, _, err := runPrefix(factory, seed, sequence, nil, nil)
	if err != nil {
		return nil, err
	}
	if err := env.Shutdown(); err != nil {
		return nil, err
	}
	return env.Trace(), nil
}

func contains(evs []android.UIEvent, ev android.UIEvent) bool {
	for _, e := range evs {
		if e == ev {
			return true
		}
	}
	return false
}
