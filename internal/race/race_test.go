package race

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"droidracer/internal/hb"
	"droidracer/internal/paper"
	"droidracer/internal/semantics"
	"droidracer/internal/trace"
)

func detect(t *testing.T, tr *trace.Trace) []Race {
	t.Helper()
	info, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	return NewDetector(hb.Build(info, hb.DefaultConfig())).Detect()
}

func TestCategoryString(t *testing.T) {
	for c, want := range map[Category]string{
		Multithreaded: "multithreaded",
		CoEnabled:     "co-enabled",
		Delayed:       "delayed",
		CrossPosted:   "cross-posted",
		Unknown:       "unknown",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
	if !strings.Contains(Category(42).String(), "42") {
		t.Error("out-of-range category formatting")
	}
}

func TestFigure3NoRaces(t *testing.T) {
	if races := detect(t, paper.Figure3()); len(races) != 0 {
		t.Fatalf("Figure 3 should be race free; got %v", races)
	}
}

func TestFigure4TwoRaces(t *testing.T) {
	races := detect(t, paper.Figure4())
	if len(races) != 2 {
		t.Fatalf("Figure 4 should have exactly 2 races; got %v", races)
	}
	got := map[[2]int]Category{}
	for _, r := range races {
		got[[2]int{r.First, r.Second}] = r.Category
	}
	// (12,21): read on t2 vs write on t1 — multithreaded.
	if c, ok := got[[2]int{paper.Idx(12), paper.Idx(21)}]; !ok || c != Multithreaded {
		t.Errorf("race (12,21): got %v, want multithreaded", got)
	}
	// (16,21): both on t1, tasks posted from t2 and t0 — cross-posted
	// (the paper's Messenger example shape).
	if c, ok := got[[2]int{paper.Idx(16), paper.Idx(21)}]; !ok || c != CrossPosted {
		t.Errorf("race (16,21): got %v, want cross-posted", got)
	}
}

func TestCoEnabledClassification(t *testing.T) {
	// Two independently enabled UI events whose handlers run on the main
	// thread: a co-enabled race.
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.Enable(1, "onClick1"),
		trace.Enable(1, "onClick2"),
		trace.LoopOnQ(1),
		trace.Post(1, "onClick1", 1),
		trace.Begin(1, "onClick1"),
		trace.Write(1, "x"),
		trace.End(1, "onClick1"),
		trace.Post(1, "onClick2", 1),
		trace.Begin(1, "onClick2"),
		trace.Write(1, "x"),
		trace.End(1, "onClick2"),
	})
	races := detect(t, tr)
	if len(races) != 1 || races[0].Category != CoEnabled {
		t.Fatalf("got %v, want one co-enabled race", races)
	}
}

func TestOrderedEventsNotCoEnabled(t *testing.T) {
	// The second event is enabled from INSIDE the first handler (e.g. a
	// button enabled by the first callback): enable ≼ post orders the
	// handlers, so there is no race at all.
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.Enable(1, "onClick1"),
		trace.LoopOnQ(1),
		trace.Post(1, "onClick1", 1),
		trace.Begin(1, "onClick1"),
		trace.Write(1, "x"),
		trace.Enable(1, "onClick2"),
		trace.End(1, "onClick1"),
		trace.Post(1, "onClick2", 1),
		trace.Begin(1, "onClick2"),
		trace.Write(1, "x"),
		trace.End(1, "onClick2"),
	})
	if races := detect(t, tr); len(races) != 0 {
		t.Fatalf("got %v, want no races (enable orders the handlers)", races)
	}
}

func TestDelayedClassification(t *testing.T) {
	// A delayed post racing with a plain post: the delayed category.
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.LoopOnQ(1),
		trace.ThreadInit(2),
		trace.PostDelayed(2, "d1", 1, 100),
		trace.Post(2, "p2", 1),
		trace.Begin(1, "p2"),
		trace.Write(1, "x"),
		trace.End(1, "p2"),
		trace.Begin(1, "d1"),
		trace.Write(1, "x"),
		trace.End(1, "d1"),
	})
	races := detect(t, tr)
	if len(races) != 1 || races[0].Category != Delayed {
		t.Fatalf("got %v, want one delayed race", races)
	}
}

func TestTwoDistinctDelayedPostsClassifiedDelayed(t *testing.T) {
	// Both chains end in delayed posts with δ1 > δ2: unordered, delayed.
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.LoopOnQ(1),
		trace.ThreadInit(2),
		trace.PostDelayed(2, "d1", 1, 300),
		trace.PostDelayed(2, "d2", 1, 100),
		trace.Begin(1, "d2"),
		trace.Write(1, "x"),
		trace.End(1, "d2"),
		trace.Begin(1, "d1"),
		trace.Write(1, "x"),
		trace.End(1, "d1"),
	})
	races := detect(t, tr)
	if len(races) != 1 || races[0].Category != Delayed {
		t.Fatalf("got %v, want one delayed race", races)
	}
}

func TestUnknownClassification(t *testing.T) {
	// Both tasks self-posted by the main thread with no enables, delays,
	// or cross-thread posts: unknown.
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.LoopOnQ(1),
		trace.Post(1, "a", 1),
		trace.Begin(1, "a"),
		trace.Write(1, "x"),
		trace.End(1, "a"),
		trace.Post(1, "b", 1),
		trace.Begin(1, "b"),
		trace.Write(1, "x"),
		trace.End(1, "b"),
	})
	races := detect(t, tr)
	if len(races) != 1 || races[0].Category != Unknown {
		t.Fatalf("got %v, want one unknown race", races)
	}
}

func TestReadReadNotARace(t *testing.T) {
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.ThreadInit(2),
		trace.Read(1, "x"),
		trace.Read(2, "x"),
	})
	if races := detect(t, tr); len(races) != 0 {
		t.Fatalf("read-read pair reported: %v", races)
	}
}

func TestMultithreadedRaceAndLockFix(t *testing.T) {
	racy := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.ThreadInit(2),
		trace.Write(1, "x"),
		trace.Read(2, "x"),
	})
	races := detect(t, racy)
	if len(races) != 1 || races[0].Category != Multithreaded {
		t.Fatalf("got %v, want one multithreaded race", races)
	}
	fixed := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.ThreadInit(2),
		trace.Acquire(1, "l"),
		trace.Write(1, "x"),
		trace.Release(1, "l"),
		trace.Acquire(2, "l"),
		trace.Read(2, "x"),
		trace.Release(2, "l"),
	})
	if races := detect(t, fixed); len(races) != 0 {
		t.Fatalf("lock-protected accesses reported racy: %v", races)
	}
}

func TestDetectDeduped(t *testing.T) {
	// Three unordered writer tasks on one location: 3 pairwise races of
	// the same (loc, category) dedupe to one report.
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.LoopOnQ(1),
		trace.ThreadInit(2),
		trace.ThreadInit(3),
		trace.ThreadInit(4),
		trace.Post(2, "a", 1),
		trace.Post(3, "b", 1),
		trace.Post(4, "c", 1),
		trace.Begin(1, "a"),
		trace.Write(1, "x"),
		trace.End(1, "a"),
		trace.Begin(1, "b"),
		trace.Write(1, "x"),
		trace.End(1, "b"),
		trace.Begin(1, "c"),
		trace.Write(1, "x"),
		trace.End(1, "c"),
	})
	info, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDetector(hb.Build(info, hb.DefaultConfig()))
	all := d.Detect()
	if len(all) != 3 {
		t.Fatalf("Detect: got %d races, want 3", len(all))
	}
	deduped := d.DetectDeduped()
	if len(deduped) != 1 {
		t.Fatalf("DetectDeduped: got %v, want 1 report", deduped)
	}
	if deduped[0].Category != CrossPosted {
		t.Fatalf("category = %v, want cross-posted", deduped[0].Category)
	}
}

func TestSummarize(t *testing.T) {
	races := []Race{
		{Category: Multithreaded},
		{Category: Multithreaded},
		{Category: CoEnabled},
		{Category: Delayed},
		{Category: CrossPosted},
		{Category: Unknown},
	}
	s := Summarize(races)
	if s.Multithreaded != 2 || s.CoEnabled != 1 || s.Delayed != 1 ||
		s.CrossPosted != 1 || s.Unknown != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Total() != 6 {
		t.Fatalf("Total = %d, want 6", s.Total())
	}
	if Summarize(nil).Total() != 0 {
		t.Fatal("empty summary not zero")
	}
}

func TestRaceString(t *testing.T) {
	r := Race{First: 15, Second: 20, Loc: "DwFileAct-obj", Category: CrossPosted}
	s := r.String()
	for _, want := range []string{"cross-posted", "DwFileAct-obj", "15", "20"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

// TestQuickRacesAreUnorderedConflicts cross-checks Detect against a direct
// definition on random valid traces.
func TestQuickRacesAreUnorderedConflicts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := semantics.RandomTrace(rng, semantics.DefaultGenConfig())
		info, err := trace.Analyze(tr)
		if err != nil {
			return false
		}
		g := hb.Build(info, hb.DefaultConfig())
		got := make(map[[2]int]bool)
		for _, r := range NewDetector(g).Detect() {
			if r.First >= r.Second {
				return false
			}
			got[[2]int{r.First, r.Second}] = true
		}
		want := make(map[[2]int]bool)
		for a := 0; a < tr.Len(); a++ {
			for b := a + 1; b < tr.Len(); b++ {
				if tr.Op(a).Conflicts(tr.Op(b)) &&
					!g.HappensBefore(a, b) && !g.HappensBefore(b, a) {
					want[[2]int{a, b}] = true
				}
			}
		}
		if len(got) != len(want) {
			t.Logf("seed %d: got %d races, want %d", seed, len(got), len(want))
			return false
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDedupIsSubset checks DetectDeduped reports a subset of Detect
// with unique (loc, category) keys.
func TestQuickDedupIsSubset(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := semantics.RandomTrace(rng, semantics.DefaultGenConfig())
		info, err := trace.Analyze(tr)
		if err != nil {
			return false
		}
		d := NewDetector(hb.Build(info, hb.DefaultConfig()))
		all := make(map[[2]int]bool)
		for _, r := range d.Detect() {
			all[[2]int{r.First, r.Second}] = true
		}
		seen := make(map[string]bool)
		for _, r := range d.DetectDeduped() {
			if !all[[2]int{r.First, r.Second}] {
				return false
			}
			k := string(r.Loc) + "|" + r.Category.String()
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
