// Command racedetd is the resilient analysis daemon: it watches a spool
// directory for trace files, runs each through the supervised job pool
// (bounded queue, per-job budgets, retry-with-backoff, per-input circuit
// breaker with the pure-MT baseline as the degraded fallback), and
// journals finished work under a state directory so a restarted daemon
// re-analyzes only unfinished inputs.
//
// Usage:
//
//	racedetd -spool DIR -state DIR [-workers N] [-queue N]
//	         [-deadline 30s] [-retries N] [-poll 2s] [-once]
//	         [-drain-timeout 30s] [-metrics-addr HOST:PORT]
//	         [-events PATH]
//
// -metrics-addr starts the debug HTTP listener: Prometheus-text
// /metrics, expvar /debug/vars, and net/http/pprof under /debug/pprof/.
// The bound address is printed to stderr (port 0 picks a free port).
// -events appends a structured JSONL event log (log/slog) with a
// per-incarnation run ID; job-finish events carry the journal sequence
// number of their WAL record.
//
// SIGINT/SIGTERM trigger a graceful shutdown: intake closes, in-flight
// analyses run to completion (bounded by -drain-timeout, after which
// they are cancelled into partial outcomes), queued jobs are recorded as
// drained for the next incarnation, and the per-job report prints to
// stdout. -once sweeps the spool a single time, waits for the pool to
// quiesce, and exits — the mode batch pipelines and the CI smoke test
// drive.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"droidracer/internal/budget"
	"droidracer/internal/core"
	"droidracer/internal/jobs"
	"droidracer/internal/journal"
	"droidracer/internal/obs"
	"droidracer/internal/report"
)

// journalName is the daemon's completed-work journal inside -state.
const journalName = "daemon.journal"

func main() {
	spool := flag.String("spool", "", "directory of trace files to analyze")
	state := flag.String("state", "", "state directory for the completed-work journal")
	workers := flag.Int("workers", 2, "concurrent analysis workers")
	queue := flag.Int("queue", 16, "admission queue depth; a full queue sheds new work")
	deadline := flag.Duration("deadline", 0, "wall-clock budget per analysis attempt (0 = unlimited)")
	retries := flag.Int("retries", 1, "extra attempts per job after a transient failure")
	backoff := flag.Duration("backoff", 100*time.Millisecond, "base backoff between attempts")
	breaker := flag.Int("breaker", 3, "consecutive hard failures on one input before degrading it (-1 disables)")
	poll := flag.Duration("poll", 2*time.Second, "spool re-scan interval")
	once := flag.Bool("once", false, "sweep the spool once, drain, and exit")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound for in-flight jobs")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof/ on this address (empty = off)")
	eventsPath := flag.String("events", "", "append structured JSONL lifecycle events to this file (empty = off)")
	flag.Parse()
	if *spool == "" || *state == "" {
		fatal(fmt.Errorf("missing -spool or -state"))
	}

	events := obs.Nop()
	runID := obs.NewRunID()
	if *eventsPath != "" {
		ef, err := os.OpenFile(*eventsPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o666)
		if err != nil {
			fatal(err)
		}
		defer ef.Close()
		events = obs.NewEventLog(ef, runID)
	}

	var debugSrv interface{ Close() error }
	if *metricsAddr != "" {
		srv, bound, err := obs.ServeDebug(*metricsAddr, obs.Default())
		if err != nil {
			fatal(err)
		}
		debugSrv = srv
		fmt.Fprintf(os.Stderr, "racedetd: debug listener on http://%s/ (metrics, expvar, pprof)\n", bound)
		events.Info("daemon.debug-listener", "addr", bound)
	}

	jpath := filepath.Join(*state, journalName)
	entries, rstats, err := journal.RecoverStats(jpath)
	if err != nil {
		fatal(err)
	}
	if rstats.Torn() {
		// A hard crash left a torn tail; the discarded bytes were never
		// acknowledged durable, but say what resume is not replaying.
		fmt.Fprintf(os.Stderr, "racedetd: journal recovery discarded a torn tail (%d entr(ies), %d bytes)\n",
			rstats.DiscardedEntries, rstats.DiscardedBytes)
	}
	done := jobs.CompletedJobs(entries)
	if len(done) > 0 {
		fmt.Fprintf(os.Stderr, "racedetd: journal holds %d completed input(s); skipping them\n", len(done))
	}
	events.Info("daemon.start", "spool", *spool, "state", *state,
		"recovered_entries", rstats.Entries,
		"torn_entries", rstats.DiscardedEntries, "torn_bytes", rstats.DiscardedBytes,
		"completed_jobs", len(done))
	w, err := journal.Create(jpath)
	if err != nil {
		fatal(err)
	}

	pool := jobs.NewPool(jobs.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		Budget:     budget.Limits{Wall: *deadline},
		Retry:      jobs.RetryPolicy{MaxAttempts: 1 + *retries, BaseBackoff: *backoff},
		Breaker:    jobs.BreakerPolicy{Threshold: *breaker},
		Journal:    w,
		Events:     events,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	submitted := make(map[string]bool)
	for {
		if err := sweep(pool, *spool, done, submitted); err != nil {
			fmt.Fprintf(os.Stderr, "racedetd: %v\n", err)
		}
		if *once {
			pool.Quiesce()
			break
		}
		select {
		case <-ctx.Done():
		case <-time.After(*poll):
			continue
		}
		break
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	events.Info("daemon.drain", "timeout", drainTimeout.String())
	outs := pool.Shutdown(drainCtx)
	fmt.Print(report.Pipeline(outs))
	events.Info("daemon.stop", "outcomes", len(outs), "journal_seq", w.Seq())
	if debugSrv != nil {
		debugSrv.Close()
	}
	if err := w.Close(); err != nil {
		fatal(err)
	}
}

// sweep submits every spool file not yet journaled as complete and not
// already submitted this incarnation. A shed submission (saturated
// queue) is not marked submitted, so the next sweep retries it — the
// producer-side reaction to backpressure.
func sweep(pool *jobs.Pool, spool string, done, submitted map[string]bool) error {
	ents, err := os.ReadDir(spool)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if done[name] || submitted[name] {
			continue
		}
		job := jobs.TraceJob(name, filepath.Join(spool, name), core.DefaultOptions())
		if err := pool.Submit(job); err != nil {
			fmt.Fprintf(os.Stderr, "racedetd: %s: %v\n", name, err)
			continue
		}
		submitted[name] = true
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "racedetd:", err)
	os.Exit(1)
}
