package hb

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"droidracer/internal/budget"
	"droidracer/internal/paper"
	"droidracer/internal/semantics"
	"droidracer/internal/trace"
)

// requireEngineMatch builds tr serially and with the given worker count
// and asserts the two graphs are indistinguishable: the same relation
// bit for bit, the same rule attribution, the same edge and skip counts.
// This is the contract the parallel engine promises — not merely the
// same fixpoint, but the serial engine's exact output.
func requireEngineMatch(t *testing.T, tr *trace.Trace, cfg Config, workers int) {
	t.Helper()
	info, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	serialCfg := cfg
	serialCfg.Parallelism = 1
	parCfg := cfg
	parCfg.Parallelism = workers
	want := Build(info, serialCfg)
	got := Build(info, parCfg)

	if g, w := got.NodeCount(), want.NodeCount(); g != w {
		t.Fatalf("workers=%d: node count %d, serial %d", workers, g, w)
	}
	n := tr.Len()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if g, w := got.STHas(i, j), want.STHas(i, j); g != w {
				t.Fatalf("workers=%d: st(%d,%d) = %v, serial %v", workers, i, j, g, w)
			}
			if g, w := got.MTHas(i, j), want.MTHas(i, j); g != w {
				t.Fatalf("workers=%d: mt(%d,%d) = %v, serial %v", workers, i, j, g, w)
			}
		}
	}
	if g, w := got.EdgeCount(), want.EdgeCount(); g != w {
		t.Errorf("workers=%d: EdgeCount %d, serial %d", workers, g, w)
	}
	if g, w := got.Skipped(), want.Skipped(); g != w {
		t.Errorf("workers=%d: Skipped %d, serial %d", workers, g, w)
	}
	if g, w := got.RuleEdges(), want.RuleEdges(); !reflect.DeepEqual(g, w) {
		t.Errorf("workers=%d: RuleEdges %v, serial %v", workers, g, w)
	}
}

// TestParallelMatchesSerial anchors the parallel closure's bit-for-bit
// equivalence on the paper figures and on the configurations the
// ablations exercise, at worker counts below, at, and far above the
// word-shard limit.
func TestParallelMatchesSerial(t *testing.T) {
	traces := map[string]*trace.Trace{
		"figure3": paper.Figure3(),
		"figure4": paper.Figure4(),
		"locks":   lockTrace(),
	}
	configs := map[string]func() Config{
		"default": DefaultConfig,
		"naive": func() Config {
			c := DefaultConfig()
			c.Naive = true
			return c
		},
		"no-fifo": func() Config {
			c := DefaultConfig()
			c.FIFO = false
			return c
		},
		"st-only": func() Config {
			c := DefaultConfig()
			c.STOnly = true
			return c
		},
		"unmerged": func() Config {
			c := DefaultConfig()
			c.MergeAccesses = false
			return c
		},
	}
	for tname, tr := range traces {
		for cname, mk := range configs {
			for _, workers := range []int{2, 3, 8, 64} {
				requireEngineMatch(t, tr, mk(), workers)
			}
			_ = tname
			_ = cname
		}
	}
}

// TestQuickParallelMatchesSerial compares the engines on random valid
// traces. Unlike the O(n⁴) brute-force reference this compares two fast
// engines, so the traces can be full-sized.
func TestQuickParallelMatchesSerial(t *testing.T) {
	cfg := semantics.DefaultGenConfig()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := semantics.RandomTrace(rng, cfg)
		for _, workers := range []int{2, 7} {
			requireEngineMatch(t, tr, DefaultConfig(), workers)
		}
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelBudgetTrip verifies a budget trip mid-closure surfaces the
// *budget.Error and leaves a sound under-approximation: every pair the
// tripped parallel build relates is related by the completed serial
// closure.
func TestParallelBudgetTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := semantics.RandomTrace(rng, semantics.DefaultGenConfig())
	info, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	full := Build(info, DefaultConfig())

	cfg := DefaultConfig()
	cfg.Parallelism = 4
	ck := budget.NewChecker(context.Background(), budget.Limits{MaxClosureEdges: 50})
	g, err := BuildBudgeted(info, cfg, ck)
	var be *budget.Error
	if !errors.As(err, &be) {
		t.Fatalf("BuildBudgeted error = %v, want *budget.Error", err)
	}
	if g == nil {
		t.Fatal("tripped build returned nil graph")
	}
	n := tr.Len()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if g.STHas(i, j) && !full.STHas(i, j) {
				t.Fatalf("tripped build has st(%d,%d) not in the full closure", i, j)
			}
			if g.MTHas(i, j) && !full.MTHas(i, j) {
				t.Fatalf("tripped build has mt(%d,%d) not in the full closure", i, j)
			}
		}
	}
}

// TestParallelWallBudgetTrip exercises the workers' mid-pass poll path:
// an already-expired wall budget must stop the parallel closure with a
// *budget.Error rather than hang or panic.
func TestParallelWallBudgetTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := semantics.RandomTrace(rng, semantics.DefaultGenConfig())
	info, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Parallelism = 4
	ck := budget.NewChecker(context.Background(), budget.Limits{Wall: time.Nanosecond})
	_, err = BuildBudgeted(info, cfg, ck)
	var be *budget.Error
	if !errors.As(err, &be) {
		t.Fatalf("BuildBudgeted error = %v, want *budget.Error", err)
	}
}

// TestClosureWorkersClamp pins the Parallelism resolution: serial for
// values ≤ 1, clamped to the per-row word count above it.
func TestClosureWorkersClamp(t *testing.T) {
	g := &Graph{cfg: Config{Parallelism: 0}, nodes: make([]Node, 100)}
	if w := g.closureWorkers(); w != 1 {
		t.Errorf("Parallelism 0: workers = %d, want 1", w)
	}
	g.cfg.Parallelism = 1
	if w := g.closureWorkers(); w != 1 {
		t.Errorf("Parallelism 1: workers = %d, want 1", w)
	}
	g.cfg.Parallelism = 8
	// 100 nodes → 2 words per row: no point in more than 2 workers.
	if w := g.closureWorkers(); w != 2 {
		t.Errorf("Parallelism 8 on 100 nodes: workers = %d, want 2", w)
	}
	g.nodes = make([]Node, 1000)
	if w := g.closureWorkers(); w != 8 {
		t.Errorf("Parallelism 8 on 1000 nodes: workers = %d, want 8", w)
	}
}
