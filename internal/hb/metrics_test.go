package hb

import (
	"testing"

	"droidracer/internal/paper"
)

// TestRuleEdgesFigure3 checks the per-rule edge attribution on the
// paper's Figure 3 trace: expected base rules fire, the transitive
// remainders are attributed, and the per-rule counts sum to the total
// pair count of the final relations (a pair in both st and mt counted
// twice, matching RuleEdges' contract).
func TestRuleEdgesFigure3(t *testing.T) {
	g := build(t, paper.Figure3(), DefaultConfig())
	edges := g.RuleEdges()

	for _, rule := range []string{"fork", "post-mt", "enable-st", "enable-mt", "no-q-po"} {
		if edges[rule] == 0 {
			t.Errorf("rule %q attributed 0 edges on Figure 3, want > 0", rule)
		}
	}
	if edges["trans-st"] == 0 && edges["trans-mt"] == 0 {
		t.Error("no closure edges attributed to trans-st/trans-mt on Figure 3")
	}

	sum := 0
	for _, n := range edges {
		sum += n
	}
	stmt := 0
	for i := range g.nodes {
		stmt += g.st[i].Count() + g.mt[i].Count()
	}
	if sum != stmt {
		t.Errorf("rule edge counts sum to %d, want st+mt pair total %d", sum, stmt)
	}
}

// TestRuleEdgesSTOnly checks that the single-threaded specialization
// attributes no multithreaded-rule edges.
func TestRuleEdgesSTOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.STOnly = true
	g := build(t, paper.Figure3(), cfg)
	edges := g.RuleEdges()
	for _, rule := range []string{"fork", "join", "enable-mt", "post-mt", "attach-q-mt", "lock", "trans-mt"} {
		if edges[rule] != 0 {
			t.Errorf("STOnly graph attributed %d edges to mt rule %q, want 0", edges[rule], rule)
		}
	}
}
