package gateway

import (
	"container/list"
	"sync"

	"droidracer/internal/server"
)

// resultCache is the gateway's bounded LRU of terminal analysis answers,
// keyed by idempotency key. Only terminal responses (done, quarantined)
// are cached — they are immutable facts derived from the trace content,
// so a cache hit can answer a duplicate submission without touching any
// backend, even one whose home backend is down. Pending answers are
// never cached: they would go stale the moment the job finishes.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

type cacheEntry struct {
	key  string
	resp server.SubmitResponse
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1024
	}
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// get returns a copy of the cached terminal response for key and marks
// it most-recently-used.
func (c *resultCache) get(key string) (server.SubmitResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return server.SubmitResponse{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).resp, true
}

// add stores a terminal response, evicting the least-recently-used entry
// past capacity.
func (c *resultCache) add(key string, resp server.SubmitResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).resp = resp
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, resp: resp})
	for c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
		cacheEvictions.Inc()
	}
	cacheEntriesGauge.Set(int64(c.order.Len()))
}

// remove evicts key, if cached. The digest cross-check uses it when two
// backends answer the same key with contradictory digests: neither side
// may keep serving from the cache.
func (c *resultCache) remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.Remove(el)
		delete(c.entries, key)
		cacheEntriesGauge.Set(int64(c.order.Len()))
	}
}

// len reports the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
