// Package core assembles the DroidRacer analysis pipeline: semantic
// validation of an execution trace (Figure 5), structural annotation,
// happens-before computation (Figures 6–7), and race detection with
// classification (§4.3). It is the single entry point the command-line
// tools, the public API, and the evaluation harness share.
package core

import (
	"fmt"

	"droidracer/internal/hb"
	"droidracer/internal/race"
	"droidracer/internal/semantics"
	"droidracer/internal/trace"
)

// Options configure one analysis.
type Options struct {
	// HB selects the happens-before rule set; DefaultOptions uses the
	// paper's full relation.
	HB hb.Config
	// Dedup reports one race per (location, category), the paper's
	// reporting granularity. When false, every racing pair is reported.
	Dedup bool
	// Validate replays the trace under the Figure 5 semantics first and
	// rejects traces that are not valid executions.
	Validate bool
	// DropCancelled removes cancelled posts before analysis (§4.2).
	DropCancelled bool
}

// DefaultOptions returns the configuration DroidRacer runs with.
func DefaultOptions() Options {
	return Options{
		HB:            hb.DefaultConfig(),
		Dedup:         true,
		Validate:      true,
		DropCancelled: true,
	}
}

// Result is a completed analysis.
type Result struct {
	// Trace is the analyzed trace (after cancellation pruning).
	Trace *trace.Trace
	// Info carries the structural annotations.
	Info *trace.Info
	// Graph is the happens-before graph.
	Graph *hb.Graph
	// Races are the reported data races, classified.
	Races []race.Race
	// Stats are the Table 2 statistics of the trace.
	Stats trace.Stats
}

// Analyze runs the full pipeline on tr.
func Analyze(tr *trace.Trace, opts Options) (*Result, error) {
	if opts.DropCancelled {
		tr = tr.WithoutCancelled()
	}
	if opts.Validate {
		if i, err := semantics.ValidateInferred(tr); err != nil {
			return nil, fmt.Errorf("core: trace is not a valid execution (op %d): %w", i, err)
		}
	}
	info, err := trace.Analyze(tr)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	g := hb.Build(info, opts.HB)
	d := race.NewDetector(g)
	var races []race.Race
	if opts.Dedup {
		races = d.DetectDeduped()
	} else {
		races = d.Detect()
	}
	return &Result{
		Trace: tr,
		Info:  info,
		Graph: g,
		Races: races,
		Stats: trace.ComputeStats(tr, nil),
	}, nil
}
