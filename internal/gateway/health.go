package gateway

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"time"
)

// StartProbing launches one prober goroutine per backend. Backends start
// not-live and join routing on their first passing probe (which, like
// every reinstatement, runs the reconcile handshake first). Probing
// stops when ctx is cancelled.
func (g *Gateway) StartProbing(ctx context.Context) {
	for i, b := range g.cfg.Backends {
		go g.probeLoop(ctx, g.backends[b], g.cfg.Seed+int64(i))
	}
}

// probeLoop drives one backend's health state machine. Live backends are
// probed at a fixed interval, feeding the same consecutive-failure
// breaker as forwards — EjectThreshold straight failures eject. Ejected
// (and initial) backends are probed with seeded-jitter exponential
// backoff; a passing probe runs the reconcile handshake and reinstates.
func (g *Gateway) probeLoop(ctx context.Context, b *backendState, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	backoff := g.cfg.ProbeInterval
	for ctx.Err() == nil {
		if b.live.Load() {
			if !sleepCtx(ctx, g.cfg.ProbeInterval) {
				return
			}
			if !b.live.Load() {
				continue // ejected by a forward failure while we slept
			}
			if err := g.probe(ctx, b.url); err != nil {
				g.brk.Failure(b.url, err) // OnOpen ejects at threshold
			} else {
				g.brk.Success(b.url)
			}
			continue
		}
		err := g.probe(ctx, b.url)
		if err == nil && g.reinstate(ctx, b) {
			backoff = g.cfg.ProbeInterval
			continue
		}
		// Full jitter over an exponentially growing window, capped at
		// 16× the probe interval: a dead backend is checked less and
		// less often, and N gateways probing it decorrelate. The window
		// grows only when the probe itself failed — a backend that
		// answers /readyz is demonstrably back, so a transiently failed
		// reconcile handshake retries at the base cadence instead of
		// waiting out a dead-backend backoff.
		backoff = nextBackoff(backoff, g.cfg.ProbeInterval, err == nil)
		wait := time.Duration(rng.Float64() * float64(backoff))
		if wait < g.cfg.ProbeInterval/4 {
			wait = g.cfg.ProbeInterval / 4
		}
		if !sleepCtx(ctx, wait) {
			return
		}
	}
}

// nextBackoff advances the ejected-backend probe backoff: reset to the
// base interval on a passing probe, double up to 16× on a failing one.
func nextBackoff(cur, interval time.Duration, probeOK bool) time.Duration {
	if probeOK {
		return interval
	}
	if cur >= 16*interval {
		return 16 * interval
	}
	return cur * 2
}

// probe checks one backend's readiness endpoint.
func (g *Gateway) probe(ctx context.Context, url string) error {
	pctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, url+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := g.httpc.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("probe: %s not ready (%d)", url, resp.StatusCode)
	}
	return nil
}

// eject removes a backend from routing; installed as the breaker's
// OnOpen hook, so it fires on EjectThreshold consecutive failures from
// any mix of probes and forwards.
func (g *Gateway) eject(url string, err error) {
	b, ok := g.backends[url]
	if !ok || !b.live.CompareAndSwap(true, false) {
		return
	}
	b.wasEjected.Store(true)
	ejectionsTotal(url).Inc()
	backendsLiveGauge.Set(int64(g.liveCount()))
	g.cfg.Events.Warn("gateway.eject", "backend", url, "err", err.Error())
}

// reinstate brings a probed-healthy backend back into routing. The
// reconcile handshake runs first — before any traffic can land there —
// so the backend reclaims in-doubt spool orphans and releases its
// restart sweep knowing the fleet's view. A failed handshake keeps the
// backend ejected (the next probe cycle retries).
func (g *Gateway) reinstate(ctx context.Context, b *backendState) bool {
	if err := g.reconcile(ctx, b.url); err != nil {
		g.cfg.Events.Warn("gateway.reconcile-failed", "backend", b.url, "err", err.Error())
		return false
	}
	g.brk.Reset(b.url)
	if !b.live.CompareAndSwap(false, true) {
		return true
	}
	backendsLiveGauge.Set(int64(g.liveCount()))
	if b.wasEjected.Load() {
		reinstatementsTotal(b.url).Inc()
		g.cfg.Events.Info("gateway.reinstate", "backend", b.url)
	} else {
		g.cfg.Events.Info("gateway.backend-live", "backend", b.url)
	}
	return true
}

// sleepCtx sleeps for d, reporting false if ctx ended first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
