package trace

import "droidracer/internal/obs"

// Parser metrics (Table 2's "trace length" as a live series). Counts
// are accumulated locally per Parse call and published once at the
// end, so the per-line hot loop carries no atomic operations.
var (
	parseOps = obs.Default().Counter("droidracer_trace_parse_ops_total",
		"Operations parsed from trace input.")
	parseTraces = obs.Default().Counter("droidracer_trace_parse_total",
		"Traces parsed successfully.")
	parseErrors = obs.Default().Counter("droidracer_trace_parse_errors_total",
		"Trace parses that failed (malformed input or read error).")
	parseDur = obs.Default().Histogram("droidracer_trace_parse_duration_seconds",
		"Wall-clock time per trace parse.", obs.DurationBuckets())
)
