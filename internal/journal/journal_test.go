package journal

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Key string `json:"key"`
	N   int    `json:"n"`
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state", "job.journal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append("seq", payload{Key: "k", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("recovered %d entries, want 5", len(entries))
	}
	for i, e := range entries {
		if e.Seq != i+1 || e.Type != "seq" {
			t.Fatalf("entry %d: seq=%d type=%q", i, e.Seq, e.Type)
		}
		var p payload
		if err := e.Decode(&p); err != nil {
			t.Fatal(err)
		}
		if p.N != i {
			t.Fatalf("entry %d decoded N=%d", i, p.N)
		}
	}
}

// AppendSeq must return the number assigned to this exact entry — with
// concurrent appenders a later Seq() call could observe someone else's
// append — and the numbers must match what recovery replays.
func TestAppendSeqReturnsAssignedNumber(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.journal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		seq, err := w.AppendSeq("seq", payload{N: i})
		if err != nil {
			t.Fatal(err)
		}
		if seq != i {
			t.Fatalf("AppendSeq = %d, want %d", seq, i)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 || entries[2].Seq != 3 {
		t.Fatalf("recovered %d entries, last seq %d", len(entries), entries[len(entries)-1].Seq)
	}
}

func TestRecoverMissingFileIsEmpty(t *testing.T) {
	entries, err := Recover(filepath.Join(t.TempDir(), "absent.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if entries != nil {
		t.Fatalf("got %v, want nil", entries)
	}
}

func TestTornTailDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.journal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append("seq", payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: half a record, no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":4,"type":"seq","da`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	entries, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("recovered %d entries, want 3", len(entries))
	}
}

func TestUnterminatedDecodableTailDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.journal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append("seq", payload{N: 0}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// A complete JSON object that lost only its trailing newline is still
	// torn: the writer line-frames every record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":2,"type":"seq"}`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	entries, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("recovered %d entries, want 1", len(entries))
	}
}

func TestCreateResumesAfterTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.journal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append("seq", payload{N: 0}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("garbage-tail"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// Reopening truncates the torn tail and continues the sequence.
	w, err = Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append("seq", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[1].Seq != 2 {
		t.Fatalf("recovered %v, want 2 sequential entries", entries)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "garbage") {
		t.Fatalf("torn tail survived reopen: %q", data)
	}
}

func TestOutOfSequenceMiddleIsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.journal")
	body := `{"seq":1,"type":"a"}` + "\n" + `{"seq":3,"type":"b"}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(path); err == nil {
		t.Fatal("out-of-sequence journal recovered without error")
	}
}

func TestChunkSyncBoundsUnsyncedEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.journal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.SetChunk(2)
	// Three appends: the first two auto-sync at the chunk boundary, the
	// third sits in the buffer. Without Close, only the chunk is on disk.
	for i := 0; i < 3; i++ {
		if err := w.Append("seq", payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("recovered %d entries before close, want 2 (one chunk)", len(entries))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err = Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("recovered %d entries after close, want 3", len(entries))
	}
}

func TestRecoverStatsReportsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.journal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Recovered(); got.Torn() || got.Entries != 0 {
		t.Fatalf("fresh journal recovery stats = %+v, want zero", got)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append("seq", payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	torn := `{"seq":4,"type":"seq","da`
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	entries, stats, err := RecoverStats(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 || stats.Entries != 3 {
		t.Fatalf("recovered %d entries (stats %+v), want 3", len(entries), stats)
	}
	if !stats.Torn() || stats.DiscardedEntries != 1 || stats.DiscardedBytes != int64(len(torn)) {
		t.Fatalf("stats = %+v, want 1 discarded entry of %d bytes", stats, len(torn))
	}
	// Continuing the journal truncates the tail and reports what was lost.
	w2, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.Recovered(); got.DiscardedEntries != 1 || got.DiscardedBytes != int64(len(torn)) {
		t.Fatalf("writer recovery stats = %+v", got)
	}
	if w2.Seq() != 3 {
		t.Fatalf("resumed seq = %d, want 3", w2.Seq())
	}
}

func TestRecoverStatsMissingFile(t *testing.T) {
	entries, stats, err := RecoverStats(filepath.Join(t.TempDir(), "absent"))
	if err != nil || entries != nil || stats.Torn() {
		t.Fatalf("got %v, %+v, %v; want empty", entries, stats, err)
	}
}

// journalHelperEnv marks the re-exec'd helper of the create kill-point
// test.
const journalHelperEnv = "DROIDRACER_JOURNAL_HELPER"

// TestJournalCreateHelperProcess is the subprocess body of the create
// kill-point test: it opens a fresh journal with the journal.create
// kill-point armed by the parent, dying after the file and its directory
// entry are durable but before any append.
func TestJournalCreateHelperProcess(t *testing.T) {
	dir := os.Getenv(journalHelperEnv)
	if dir == "" {
		t.Skip("helper subprocess only")
	}
	w, err := Create(filepath.Join(dir, "state", "job.journal"))
	if err != nil {
		t.Fatal(err) // unreachable: the kill-point fires inside Create
	}
	w.Append("seq", payload{N: 1})
	w.Close()
	os.Exit(0)
}

// TestJournalCreateKillPoint proves the create-path durability ordering:
// a process SIGKILL'd immediately after Create returns control (modeled
// by the journal.create kill-point, which fires after the file fsync and
// the parent-directory fsync) leaves a journal file that exists and
// recovers cleanly. Before Create synced the directory, this crash could
// lose the journal file itself.
func TestJournalCreateKillPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestJournalCreateHelperProcess$")
	for _, kv := range os.Environ() {
		if strings.HasPrefix(kv, "DROIDRACER_KILLPOINT=") ||
			strings.HasPrefix(kv, journalHelperEnv+"=") {
			continue
		}
		cmd.Env = append(cmd.Env, kv)
	}
	cmd.Env = append(cmd.Env,
		journalHelperEnv+"="+dir,
		"DROIDRACER_KILLPOINT=journal.create")
	out, err := cmd.CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 137 {
		t.Fatalf("helper exit = %v, want kill at journal.create\n%s", err, out)
	}
	path := filepath.Join(dir, "state", "job.journal")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("journal file lost across the create-time crash: %v", err)
	}
	entries, stats, err := RecoverStats(path)
	if err != nil {
		t.Fatalf("recovery after create-time crash: %v", err)
	}
	if len(entries) != 0 || stats.Torn() {
		t.Fatalf("fresh journal recovered %d entries (stats %+v), want empty", len(entries), stats)
	}
	// The survivor is a normal journal: the next incarnation appends to it.
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append("seq", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
