package sentinel

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"droidracer/internal/budget"
	"droidracer/internal/core"
	"droidracer/internal/obs"
	"droidracer/internal/race"
	"droidracer/internal/trace"
)

// Exit-status classes of a dead isolated worker. Each becomes the Class
// of a ResourceError, so the quarantine reason records *how* the input
// killed its sandbox.
const (
	// ClassOOMKill: the kernel (or a kill-point simulating it) SIGKILLed
	// the child — death without a word.
	ClassOOMKill = "oom-kill"
	// ClassMemLimit: the child's allocator hit RLIMIT_AS and the Go
	// runtime threw "out of memory" — the rlimit did its job.
	ClassMemLimit = "memlimit"
	// ClassDeadline: the parent's wall watchdog killed a child that
	// would not finish.
	ClassDeadline = "deadline"
	// ClassPanic: the child died of an uncaught panic.
	ClassPanic = "panic"
	// ClassCrash: any other abnormal death.
	ClassCrash = "crash"
)

// ResourceError is the classified death of an isolated worker. Its
// Error string carries the "resource:" prefix into the quarantine
// reason, and Deterministic tells the retry policy not to burn more
// attempts (and more subprocesses) on an input that just proved it
// exhausts its sandbox.
type ResourceError struct {
	// Class is one of the Class* exit classes.
	Class string
	// Detail is the clipped evidence: the child's stderr tail or the
	// wait error.
	Detail string
}

// Error implements error.
func (e *ResourceError) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("resource: %s", e.Class)
	}
	return fmt.Sprintf("resource: %s: %s", e.Class, e.Detail)
}

// Deterministic marks the failure as input-caused: re-running the same
// trace in the same sandbox dies the same way.
func (e *ResourceError) Deterministic() bool { return true }

// workerSpec is the contract between Isolator and WorkerMain, passed
// through the EnvWorker environment variable as JSON. The result comes
// back through the Out file, never stdout — a re-exec'd test binary
// chatters on stdout.
type workerSpec struct {
	Trace           string `json:"trace"`
	Out             string `json:"out"`
	MemLimit        int64  `json:"mem_limit"`
	Parallelism     int    `json:"parallelism,omitempty"`
	Dedup           bool   `json:"dedup,omitempty"`
	Validate        bool   `json:"validate,omitempty"`
	DropCancelled   bool   `json:"drop_cancelled,omitempty"`
	DegradeOnBudget bool   `json:"degrade_on_budget,omitempty"`
	WallMS          int64  `json:"wall_ms,omitempty"`
	Engine          string `json:"engine,omitempty"`
}

// workerResult is what a surviving worker writes to the Out file:
// either an analysis error (Err — the original failure taxonomy, not a
// resource one) or the races and stats the parent rebuilds a
// core.Result from. Races travel with the exact fields ResultDigest
// hashes, so fleet digest equality holds across the process boundary.
type workerResult struct {
	Err            string       `json:"err,omitempty"`
	Races          []workerRace `json:"races,omitempty"`
	Degraded       bool         `json:"degraded,omitempty"`
	DegradedReason string       `json:"degraded_reason,omitempty"`
	Stats          trace.Stats  `json:"stats"`
	PeakBytes      int64        `json:"peak_bytes,omitempty"`
}

type workerRace struct {
	First    int    `json:"first"`
	Second   int    `json:"second"`
	Loc      string `json:"loc"`
	Category int    `json:"category"`
}

// EnvWorker carries the workerSpec JSON to the child.
const EnvWorker = "DROIDRACER_WORKER"

// Isolator runs heavy analyses in a re-exec'd worker subprocess whose
// address space is capped by RLIMIT_AS (hard kill) and GOMEMLIMIT (GC
// pressure before the kill), under a wall watchdog. The daemon's heap
// never hosts the input; the worst a memory bomb achieves is one dead
// child, classified into a ResourceError.
type Isolator struct {
	// Exe is the binary to re-exec (racedetd itself, or a test binary).
	Exe string
	// Args is the argv prefix selecting worker mode (e.g. ["-worker"]).
	Args []string
	// Env is extra child environment (test helper markers, kill-points).
	Env []string
	// MemLimit caps the child's address-space growth in bytes (default
	// 512 MiB).
	MemLimit int64
	// Wall is the watchdog deadline (default 2m).
	Wall time.Duration
	// Events, when set, receives sentinel.isolated events with the
	// outcome and the child's peak memory — the "actual" against the
	// admission estimate.
	Events *slog.Logger
}

// stderrCap bounds how much child stderr the parent retains for
// classification and quarantine reasons.
const stderrCap = 16 << 10

// limitedBuf keeps the first stderrCap bytes and drops the rest: the
// classification markers ("runtime: out of memory", "panic:") lead the
// crash output.
type limitedBuf struct{ b []byte }

func (l *limitedBuf) Write(p []byte) (int, error) {
	if room := stderrCap - len(l.b); room > 0 {
		if len(p) < room {
			room = len(p)
		}
		l.b = append(l.b, p[:room]...)
	}
	return len(p), nil
}

// Run analyzes the trace file at path in a worker subprocess, blocking
// until the child exits, the watchdog fires, or ctx is cancelled. A
// surviving child's result is rebuilt into a *core.Result; a dead one
// is classified into a *ResourceError.
func (i *Isolator) Run(ctx context.Context, path string, opts core.Options) (*core.Result, error) {
	memLimit := i.MemLimit
	if memLimit <= 0 {
		memLimit = 512 << 20
	}
	wall := i.Wall
	if wall <= 0 {
		wall = 2 * time.Minute
	}
	out, err := os.CreateTemp("", "droidracer-worker-*.json")
	if err != nil {
		return nil, fmt.Errorf("sentinel: worker out file: %w", err)
	}
	outPath := out.Name()
	out.Close()
	defer os.Remove(outPath)

	spec := workerSpec{
		Trace:           path,
		Out:             outPath,
		MemLimit:        memLimit,
		Parallelism:     opts.Parallelism,
		Dedup:           opts.Dedup,
		Validate:        opts.Validate,
		DropCancelled:   opts.DropCancelled,
		DegradeOnBudget: opts.DegradeOnBudget,
		WallMS:          int64(opts.Budget.Wall / time.Millisecond),
		Engine:          opts.Engine,
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("sentinel: worker spec: %w", err)
	}

	var sp *obs.TSpan
	if rec, parent := obs.TraceFromContext(ctx); rec != nil {
		sp = rec.StartSpan("sentinel.isolate", parent)
		defer sp.End()
	}

	cmd := exec.Command(i.Exe, i.Args...)
	cmd.Env = append(os.Environ(), i.Env...)
	cmd.Env = append(cmd.Env,
		EnvWorker+"="+string(specJSON),
		"GOMEMLIMIT="+strconv.FormatInt(memLimit, 10),
	)
	var stderr limitedBuf
	cmd.Stderr = &stderr
	cmd.Stdout = nil
	start := time.Now()
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("sentinel: start worker: %w", err)
	}
	var timedOut atomic.Bool
	watchdog := time.AfterFunc(wall, func() {
		timedOut.Store(true)
		cmd.Process.Kill()
	})
	waitDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			cmd.Process.Kill()
		case <-waitDone:
		}
	}()
	werr := cmd.Wait()
	close(waitDone)
	watchdog.Stop()
	elapsed := time.Since(start)

	res, rerr := i.conclude(path, outPath, werr, &stderr, &timedOut, ctx)
	outcome := "ok"
	var peak int64
	if res != nil {
		// Peak memory travels back inside the result file; surface it.
		if wr := readWorkerResult(outPath); wr != nil {
			peak = wr.PeakBytes
		}
	}
	var re *ResourceError
	if errors.As(rerr, &re) {
		outcome = re.Class
	}
	countIsolated(outcome)
	if peak > 0 {
		isolatedPeak.Set(peak)
	}
	if sp != nil {
		sp.SetAttr("outcome", outcome)
		sp.SetAttr("peak_bytes", strconv.FormatInt(peak, 10))
		sp.SetErr(rerr)
	}
	if i.Events != nil {
		i.Events.Info("sentinel.isolated", "trace", path, "outcome", outcome,
			"peak_bytes", peak, "mem_limit", memLimit, "wall", elapsed.String())
	}
	return res, rerr
}

// conclude turns the child's exit into a result or a classified error.
func (i *Isolator) conclude(path, outPath string, werr error, stderr *limitedBuf, timedOut *atomic.Bool, ctx context.Context) (*core.Result, error) {
	if ctx.Err() != nil {
		// The parent cancelled (shutdown drain): a transient outcome the
		// next incarnation retries, never a quarantine.
		return nil, &budget.Error{Stage: "sentinel", Resource: budget.ResourceContext, Cause: ctx.Err()}
	}
	if timedOut.Load() {
		return nil, &ResourceError{Class: ClassDeadline,
			Detail: fmt.Sprintf("worker exceeded the %s wall watchdog", i.wallString())}
	}
	if werr == nil || exitCode(werr) == workerExitAnalysisError {
		wr := readWorkerResult(outPath)
		if wr == nil {
			return nil, &ResourceError{Class: ClassCrash, Detail: "worker exited clean without a readable result"}
		}
		if wr.Err != "" {
			// The analysis itself failed — a parse error, a validation
			// failure. That is the original quarantine taxonomy, not a
			// resource death; reconstruct the error transparently.
			return nil, errors.New(wr.Err)
		}
		races := make([]race.Race, len(wr.Races))
		for k, r := range wr.Races {
			races[k] = race.Race{First: r.First, Second: r.Second,
				Loc: trace.Loc(r.Loc), Category: race.Category(r.Category)}
		}
		res := &core.Result{Races: races, Stats: wr.Stats, Degraded: wr.Degraded}
		if wr.DegradedReason != "" {
			res.DegradedReason = errors.New(wr.DegradedReason)
		}
		return res, nil
	}
	return nil, classifyExit(werr, string(stderr.b))
}

func (i *Isolator) wallString() string {
	if i.Wall > 0 {
		return i.Wall.String()
	}
	return (2 * time.Minute).String()
}

// readWorkerResult decodes the child's result file, nil when missing or
// garbled (a crash mid-write).
func readWorkerResult(path string) *workerResult {
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		return nil
	}
	var wr workerResult
	if json.Unmarshal(data, &wr) != nil {
		return nil
	}
	return &wr
}

// exitCode extracts the exit status from a wait error (-1 when the
// process died of a signal or the error is not an ExitError).
func exitCode(werr error) int {
	var ee *exec.ExitError
	if errors.As(werr, &ee) {
		return ee.ExitCode()
	}
	return -1
}

// classifyExit maps a dead child's wait status and stderr onto the
// exit-status classification table (DESIGN.md §16): SIGKILL and exit
// 137 read as the OOM killer, the Go runtime's out-of-memory throw as
// the rlimit, a panic banner as a panic, anything else as a crash.
func classifyExit(werr error, stderr string) *ResourceError {
	detail := clipDetail(stderr)
	if detail == "" {
		detail = werr.Error()
	}
	var ee *exec.ExitError
	if errors.As(werr, &ee) {
		if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() && ws.Signal() == syscall.SIGKILL {
			return &ResourceError{Class: ClassOOMKill, Detail: detail}
		}
		if ee.ExitCode() == 137 {
			return &ResourceError{Class: ClassOOMKill, Detail: detail}
		}
	}
	switch {
	// "failed to allocate" is how the sanitizer runtimes (TSan under
	// -race) report hitting the rlimit, and "address space collisions"
	// is the Go runtime giving up after rlimit-blocked mappings land at
	// unexpected addresses; errno 12 is ENOMEM from any allocator that
	// prints it.
	case containsAny(stderr, "runtime: out of memory", "out of memory", "cannot allocate memory", "failed to allocate", "errno: 12", "address space collisions", "runtime: VirtualAlloc", "mmap errno"):
		return &ResourceError{Class: ClassMemLimit, Detail: detail}
	case containsAny(stderr, "panic:"):
		return &ResourceError{Class: ClassPanic, Detail: detail}
	default:
		return &ResourceError{Class: ClassCrash, Detail: detail}
	}
}

// clipDetail compresses stderr into a one-line quarantine reason: the
// first non-empty line, clipped.
func clipDetail(stderr string) string {
	for _, line := range strings.Split(stderr, "\n") {
		line = strings.TrimSpace(line)
		if line != "" {
			if len(line) > 200 {
				line = line[:200]
			}
			return line
		}
	}
	return ""
}

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}

// workerExitAnalysisError is the worker's exit code for an analysis
// failure whose error travelled back in the result file — a failure of
// the input, not of the sandbox.
const workerExitAnalysisError = 3
