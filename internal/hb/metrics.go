package hb

import (
	"time"

	"droidracer/internal/obs"
)

// Rule identifies the Figure 6–7 happens-before rule that contributed
// an edge. Base rules are counted exactly at their addST/addMT call
// sites; the transitive closures (TRANS-ST, TRANS-MT) are attributed by
// subtraction after the fixpoint, since the semi-naive closure adds
// edges by whole-row bitset unions rather than one pair at a time.
type Rule uint8

// Figure 6 (single-threaded) and Figure 7 (multithreaded) rules.
const (
	RuleNoQPO Rule = iota
	RuleAsyncPO
	RuleEnableST
	RuleEnableMT
	RulePostST
	RulePostMT
	RuleAttachQMT
	RuleFork
	RuleJoin
	RuleLock
	RuleFIFO
	RuleNoPre
	RuleTransST
	RuleTransMT
	numRules
)

var ruleNames = [numRules]string{
	RuleNoQPO:     "no-q-po",
	RuleAsyncPO:   "async-po",
	RuleEnableST:  "enable-st",
	RuleEnableMT:  "enable-mt",
	RulePostST:    "post-st",
	RulePostMT:    "post-mt",
	RuleAttachQMT: "attach-q-mt",
	RuleFork:      "fork",
	RuleJoin:      "join",
	RuleLock:      "lock",
	RuleFIFO:      "fifo",
	RuleNoPre:     "nopre",
	RuleTransST:   "trans-st",
	RuleTransMT:   "trans-mt",
}

// String returns the rule's metric label, e.g. "fifo".
func (r Rule) String() string {
	if int(r) < len(ruleNames) {
		return ruleNames[r]
	}
	return "unknown"
}

// Build metrics. The per-rule counters are pre-registered for every
// rule at init so a scrape sees the full Figure 6–7 rule set (at zero)
// before the first trace is analyzed.
var (
	edgeCounters = func() (c [numRules]*obs.Counter) {
		for r := Rule(0); r < numRules; r++ {
			c[r] = obs.Default().Counter("droidracer_hb_edges_total",
				"Happens-before edges recorded, by Figure 6-7 rule.",
				"rule", r.String())
		}
		return
	}()
	buildsTotal = obs.Default().Counter("droidracer_hb_builds_total",
		"Happens-before graphs built.")
	buildDur = obs.Default().Histogram("droidracer_hb_build_duration_seconds",
		"Wall-clock time per happens-before graph build (base edges + closure).",
		obs.DurationBuckets())
	graphNodes = obs.Default().Gauge("droidracer_hb_graph_nodes",
		"Nodes in the most recently built happens-before graph (after merging).")
	skippedTotal = obs.Default().Counter("droidracer_hb_skipped_edges_total",
		"Rule instances dropped because they would order a later op before an earlier one.")
)

// publishMetrics records one finished build into the process-wide
// registry. Called once per Build, never in the hot loops.
func (g *Graph) publishMetrics(start time.Time) {
	if !obs.ExporterAttached() {
		return
	}
	buildsTotal.Inc()
	buildDur.ObserveDuration(time.Since(start))
	graphNodes.Set(int64(len(g.nodes)))
	skippedTotal.Add(g.skipped)
	for r := Rule(0); r < numRules; r++ {
		edgeCounters[r].Add(g.ruleEdges[r])
	}
}

// RuleEdges returns the edge count attributed to each rule for this
// graph. Base-rule counts are exact distinct pairs (a pair derivable by
// two rules is attributed to whichever fired first); trans-st and
// trans-mt are the closure remainders. The values sum to the total
// st-plus-mt pair count, counting a pair related by both relations
// twice (EdgeCount counts it once).
func (g *Graph) RuleEdges() map[string]int {
	m := make(map[string]int, numRules)
	for r := Rule(0); r < numRules; r++ {
		m[r.String()] = g.ruleEdges[r]
	}
	return m
}

// finalizeRuleCounts attributes closure edges: total pairs in the final
// st and mt relations, minus the pairs base rules inserted directly,
// are the TRANS-ST and TRANS-MT contributions. One Count pass per row —
// O(nodes²/64) words, a small constant next to the fixpoint itself.
func (g *Graph) finalizeRuleCounts() {
	stTotal, mtTotal, pairs := 0, 0, 0
	for i := range g.nodes {
		stTotal += g.st[i].Count()
		mtTotal += g.mt[i].Count()
		pairs += g.st[i].UnionCount(g.mt[i])
	}
	g.edgeCount = pairs
	if d := stTotal - g.baseST; d > 0 {
		g.ruleEdges[RuleTransST] = d
	}
	if d := mtTotal - g.baseMT; d > 0 {
		g.ruleEdges[RuleTransMT] = d
	}
}
