// Package droidracer is a Go reproduction of "Race Detection for Android
// Applications" (Maiya, Kanade, Majumdar — PLDI 2014): a formal
// concurrency semantics for Android's mixed multithreading/event-dispatch
// model, the happens-before relation that generalizes the multithreaded
// and single-threaded-event-driven relations, and the DroidRacer dynamic
// race detector with systematic UI testing.
//
// The package is organized in three layers:
//
//   - Traces and analysis: execution traces in the paper's core language
//     (Table 1), the Figure 5 operational semantics, the Figures 6–7
//     happens-before engine, and the §4.3 race detector/classifier.
//     Entry point: Analyze.
//   - Simulated runtime: a deterministic scheduler plus a model of the
//     Android framework (loopers, handlers, AsyncTask, lifecycles, UI
//     input, services, receivers) that replaces the paper's instrumented
//     Dalvik VM and executes application models into traces. Entry point:
//     NewEnv.
//   - Systematic testing: the UI Explorer (DFS over event sequences with
//     replay) and the reorder-replay race verifier. Entry points: Explore,
//     VerifyRace.
//
// A minimal end-to-end use:
//
//	env := droidracer.NewEnv(droidracer.DefaultEnvOptions())
//	env.RegisterActivity("Main", func() droidracer.Activity { return &myActivity{} })
//	_ = env.Launch("Main")
//	_ = env.Run()
//	_ = env.Shutdown()
//	result, _ := droidracer.Analyze(env.Trace(), droidracer.DefaultOptions())
//	for _, r := range result.Races {
//	    fmt.Println(r)
//	}
package droidracer

import (
	"context"
	"io"

	"droidracer/internal/android"
	"droidracer/internal/budget"
	"droidracer/internal/core"
	"droidracer/internal/explain"
	"droidracer/internal/explorer"
	"droidracer/internal/hb"
	"droidracer/internal/minimize"
	"droidracer/internal/race"
	"droidracer/internal/semantics"
	"droidracer/internal/trace"
)

// Trace and core-language types.
type (
	// Trace is an execution trace in the paper's core language.
	Trace = trace.Trace
	// Op is one trace operation.
	Op = trace.Op
	// ThreadID identifies a thread.
	ThreadID = trace.ThreadID
	// TaskID identifies an asynchronous task.
	TaskID = trace.TaskID
	// Loc identifies a memory location.
	Loc = trace.Loc
	// LockID identifies a lock.
	LockID = trace.LockID
	// Stats are per-trace statistics (Table 2 columns).
	Stats = trace.Stats
)

// Analysis types.
type (
	// Options configure Analyze.
	Options = core.Options
	// Result is a completed analysis.
	Result = core.Result
	// HBConfig selects happens-before rule subsets and optimizations.
	HBConfig = hb.Config
	// Race is one detected data race.
	Race = race.Race
	// Category classifies a race (§4.3).
	Category = race.Category
)

// Robustness types of the hardened pipeline.
type (
	// Budget bounds one analysis or exploration (wall-clock deadline,
	// graph/closure caps, explorer sequence cap). The zero value means
	// unlimited.
	Budget = budget.Limits
	// BudgetError is the structured budget-exhaustion/cancellation error;
	// match with errors.As. Its Canceled method distinguishes explicit
	// cancellation from exhausted budgets.
	BudgetError = budget.Error
	// PanicError is a panic recovered at a pipeline boundary.
	PanicError = budget.PanicError
	// ModelError reports a mistake in an application model (unregistered
	// activity, missing widget, invalid lifecycle request), surfaced
	// through the run's error instead of crashing the process.
	ModelError = android.ModelError
	// RetryPolicy bounds retry-with-backoff around race verification.
	RetryPolicy = explorer.RetryPolicy
)

// Race categories.
const (
	Multithreaded = race.Multithreaded
	CoEnabled     = race.CoEnabled
	Delayed       = race.Delayed
	CrossPosted   = race.CrossPosted
	Unknown       = race.Unknown
)

// Runtime types.
type (
	// Env is a simulated Android process.
	Env = android.Env
	// EnvOptions configure the environment.
	EnvOptions = android.Options
	// Ctx is the execution context passed to application callbacks.
	Ctx = android.Ctx
	// Activity is the activity lifecycle interface.
	Activity = android.Activity
	// BaseActivity provides no-op lifecycle callbacks for embedding.
	BaseActivity = android.BaseActivity
	// Service is the started-service interface.
	Service = android.Service
	// BaseService provides no-op service callbacks for embedding.
	BaseService = android.BaseService
	// AsyncTask mirrors android.os.AsyncTask.
	AsyncTask = android.AsyncTask
	// Handler posts tasks to a thread's queue.
	Handler = android.Handler
	// UIEvent is an explorer-fireable event.
	UIEvent = android.UIEvent
	// EventKind classifies UI events.
	EventKind = android.EventKind
)

// UI event kinds.
const (
	EvClick     = android.EvClick
	EvLongClick = android.EvLongClick
	EvText      = android.EvText
	EvBack      = android.EvBack
	EvHome      = android.EvHome
	EvReturn    = android.EvReturn
	EvRotate    = android.EvRotate
)

// Explorer types.
type (
	// AppFactory builds a fresh environment for one exploration run.
	AppFactory = explorer.AppFactory
	// ExploreOptions bound an exploration.
	ExploreOptions = explorer.Options
	// ExploreResult is the outcome of an exploration.
	ExploreResult = explorer.Result
	// Test is one explored event sequence with its trace.
	Test = explorer.Test
	// Verification is the outcome of a reorder-replay attempt.
	Verification = explorer.Verification
)

// Analysis engine selectors for Options.Engine. Both engines report
// identical race sets; EngineGraph materializes the happens-before
// graph (required by Explain, Minimize, and DOT export), EngineStream
// replays the trace once with vector clocks in linear memory.
const (
	EngineGraph  = core.EngineGraph
	EngineStream = core.EngineStream
)

// DefaultOptions returns the analysis configuration DroidRacer uses: the
// full happens-before relation, semantic validation, cancellation
// pruning, and per-(location, category) deduplication.
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultHBConfig returns the paper's full happens-before rule set.
func DefaultHBConfig() HBConfig { return hb.DefaultConfig() }

// Analyze runs the DroidRacer analysis pipeline on a trace: semantic
// validation, happens-before computation, race detection, and
// classification.
func Analyze(tr *Trace, opts Options) (*Result, error) { return core.Analyze(tr, opts) }

// AnalyzeContext is Analyze under a context and opts.Budget: the
// pipeline polls both in its hot loops, recovers panics into
// *PanicError, and (with opts.DegradeOnBudget) falls back to the
// pure-MT baseline detector when the budget runs out, marking the
// Result Degraded — a report is always produced.
func AnalyzeContext(ctx context.Context, tr *Trace, opts Options) (*Result, error) {
	return core.AnalyzeContext(ctx, tr, opts)
}

// DefaultEnvOptions returns the default simulated-runtime configuration:
// deterministic scheduling, trace recording, one binder thread, and BACK
// events enabled.
func DefaultEnvOptions() EnvOptions { return android.DefaultOptions() }

// NewEnv creates a simulated Android process.
func NewEnv(opts EnvOptions) *Env { return android.NewEnv(opts) }

// Explore systematically tests an application: depth-first generation of
// UI event sequences up to opts.MaxEvents with deterministic replay.
func Explore(factory AppFactory, opts ExploreOptions) (*ExploreResult, error) {
	return explorer.Explore(factory, opts)
}

// ExploreContext is Explore under a context and opts.Budget; on budget
// exhaustion the tests recorded so far are returned together with a
// *BudgetError.
func ExploreContext(ctx context.Context, factory AppFactory, opts ExploreOptions) (*ExploreResult, error) {
	return explorer.ExploreContext(ctx, factory, opts)
}

// RandomExploreOptions bound a random (Dynodroid/Monkey-style)
// exploration.
type RandomExploreOptions = explorer.RandomOptions

// RandomExplore fires uniformly random enabled events instead of
// enumerating sequences (the §7 comparison point).
func RandomExplore(factory AppFactory, opts RandomExploreOptions) (*ExploreResult, error) {
	return explorer.RandomExplore(factory, opts)
}

// Replay re-executes a stored event sequence under the given scheduling
// seed and returns the trace.
func Replay(factory AppFactory, seed int64, sequence []UIEvent) (*Trace, error) {
	return explorer.Replay(factory, seed, sequence)
}

// VerifyRace attempts to confirm a reported race by producing an execution
// with the opposite access order (the paper's true-positive criterion).
func VerifyRace(factory AppFactory, sequence []UIEvent, info *trace.Info, r Race, maxAttempts int) (Verification, error) {
	return explorer.VerifyRace(factory, sequence, info, r, maxAttempts)
}

// VerifyRaceWithRetry is VerifyRace with seeded, deterministic
// retry-with-backoff: each round tries a disjoint block of scheduling
// seeds, pausing per the policy between rounds.
func VerifyRaceWithRetry(factory AppFactory, sequence []UIEvent, info *trace.Info, r Race, policy RetryPolicy) (Verification, error) {
	return explorer.VerifyRaceWithRetry(factory, sequence, info, r, policy)
}

// DefaultRetryPolicy retries verification twice beyond the first round
// with doubling, jittered backoff.
func DefaultRetryPolicy(attemptsPerRound int) RetryPolicy {
	return explorer.DefaultRetryPolicy(attemptsPerRound)
}

// AsBudgetError unwraps err to a *BudgetError when one is in its chain.
func AsBudgetError(err error) (*BudgetError, bool) { return budget.AsError(err) }

// ParseTrace reads a trace in the textual format (one operation per line,
// e.g. "post(t0,LAUNCH_ACTIVITY,t1)").
func ParseTrace(r io.Reader) (*Trace, error) { return trace.Parse(r) }

// FormatTrace writes a trace in the textual format.
func FormatTrace(w io.Writer, tr *Trace) error { return trace.Format(w, tr) }

// ValidateTrace replays a trace under the Figure 5 operational semantics,
// returning the index of the first invalid operation and an error, or
// (-1, nil) for valid executions. Framework threads without explicit
// threadinit operations are inferred.
func ValidateTrace(tr *Trace) (int, error) { return semantics.ValidateInferred(tr) }

// Explanation is the debugging story of one race: post chains, hints, and
// near misses (rules that almost ordered the pair).
type Explanation = explain.Explanation

// Explain builds a debugging explanation for a detected race over the
// analysis result's graph.
func Explain(g *HBGraph, r Race) Explanation { return explain.Explain(g, r) }

// HBGraph is the computed happens-before graph of an analysis.
type HBGraph = hb.Graph

// MinimizedRace is the result of trace minimization: the smallest trace
// the greedy reduction found that still exhibits the race.
type MinimizedRace = minimize.Result

// Minimize shrinks tr while preserving r: unrelated accesses, tasks, and
// whole threads are removed as long as the trace stays a valid execution
// and the race is still reported. The result is a small witness for
// debugging.
func Minimize(tr *Trace, r Race, cfg HBConfig) (*MinimizedRace, error) {
	return minimize.Minimize(tr, r, cfg)
}
