package eval

import (
	"droidracer/internal/apps"
	"droidracer/internal/explorer"
	"droidracer/internal/race"
	"droidracer/internal/trace"
)

// TriagedRace is one report with its reorder-replay verdict.
type TriagedRace struct {
	Race race.Race
	// Confirmed: some replay exhibited the opposite access order (the
	// paper's true-positive criterion).
	Confirmed bool
	// Seed of the confirming replay (when confirmed).
	Seed int64
	// Attempts executed.
	Attempts int
}

// TriageResult is the automated version of the paper's manual validation:
// every report of the representative test re-executed under alternate
// schedules and event timings.
type TriageResult struct {
	App       apps.App
	Races     []TriagedRace
	Confirmed int
}

// Triage runs the representative test, detects races, and attempts to
// confirm each by reorder-replay with the given attempt budget. It
// automates the DDMS-debugger procedure of §6 (stall threads, reorder
// asynchronous calls, alter delays) through mid-run event injection under
// noise scheduling.
//
// Unlike the ground-truth labels (which decide Table 3's true positives),
// triage is a dynamic procedure: it can miss reorderable races whose
// window the scheduler never hits, so Confirmed is a lower bound — the
// same caveat the paper's manual validation carries.
func Triage(app apps.App, attempts int) (*TriageResult, error) {
	test, err := apps.RepresentativeTest(app)
	if err != nil {
		return nil, err
	}
	res, err := AnalyzeTest(app, test)
	if err != nil {
		return nil, err
	}
	info, err := trace.Analyze(test.Trace)
	if err != nil {
		return nil, err
	}
	factory := apps.Factory(app)
	out := &TriageResult{App: app}
	for _, r := range res.Races {
		v, err := explorer.VerifyRace(factory, test.Sequence, info, r, attempts)
		if err != nil {
			return nil, err
		}
		tr := TriagedRace{Race: r, Confirmed: v.Confirmed, Seed: v.Seed, Attempts: v.Attempts}
		if v.Confirmed {
			out.Confirmed++
		}
		out.Races = append(out.Races, tr)
	}
	return out, nil
}
