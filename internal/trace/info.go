package trace

import "fmt"

// Info carries per-trace structural annotations computed once and shared by
// the happens-before engine and the race classifier: the position of queue
// operations per thread, the enclosing asynchronous task of every
// operation, and per-task begin/end/post/enable indices.
type Info struct {
	tr *Trace

	// loopIdx and attachIdx give the trace index of the loopOnQ/attachQ
	// operation of each thread, or -1 when the thread has none.
	loopIdx   map[ThreadID]int
	attachIdx map[ThreadID]int

	// enclTask[i] is the task enclosing operation i, or "" when i executes
	// outside any asynchronous task (before loopOnQ, or on a thread without
	// a queue).
	enclTask []TaskID

	// Per-task indices; -1 when the corresponding operation is absent.
	beginIdx  map[TaskID]int
	endIdx    map[TaskID]int
	postIdx   map[TaskID]int
	enableIdx map[TaskID]int

	threads []ThreadID // in order of first appearance
}

// Analyze computes structural annotations for tr. It returns an error if
// the trace is structurally malformed: a task begins twice, ends without
// beginning, begins while another task runs on the same thread, begins
// without a post, or begins before the thread's loopOnQ.
func Analyze(tr *Trace) (*Info, error) {
	info := &Info{
		tr:        tr,
		loopIdx:   make(map[ThreadID]int),
		attachIdx: make(map[ThreadID]int),
		enclTask:  make([]TaskID, tr.Len()),
		beginIdx:  make(map[TaskID]int),
		endIdx:    make(map[TaskID]int),
		postIdx:   make(map[TaskID]int),
		enableIdx: make(map[TaskID]int),
	}
	seen := make(map[ThreadID]bool)
	current := make(map[ThreadID]TaskID) // task currently running on each thread
	for i, op := range tr.Ops() {
		if !seen[op.Thread] {
			seen[op.Thread] = true
			info.threads = append(info.threads, op.Thread)
		}
		info.enclTask[i] = current[op.Thread]
		switch op.Kind {
		case OpAttachQ:
			if _, dup := info.attachIdx[op.Thread]; dup {
				return nil, fmt.Errorf("op %d: %v: thread already has a queue", i, op)
			}
			info.attachIdx[op.Thread] = i
		case OpLoopOnQ:
			if _, dup := info.loopIdx[op.Thread]; dup {
				return nil, fmt.Errorf("op %d: %v: thread already loops on its queue", i, op)
			}
			if _, ok := info.attachIdx[op.Thread]; !ok {
				return nil, fmt.Errorf("op %d: %v: loopOnQ without attachQ", i, op)
			}
			info.loopIdx[op.Thread] = i
		case OpPost:
			if _, dup := info.postIdx[op.Task]; dup {
				return nil, fmt.Errorf("op %d: %v: task posted twice (tasks must be uniquely named)", i, op)
			}
			info.postIdx[op.Task] = i
		case OpEnable:
			if _, dup := info.enableIdx[op.Task]; !dup {
				info.enableIdx[op.Task] = i
			}
		case OpBegin:
			if _, dup := info.beginIdx[op.Task]; dup {
				return nil, fmt.Errorf("op %d: %v: task began twice", i, op)
			}
			if cur := current[op.Thread]; cur != "" {
				return nil, fmt.Errorf("op %d: %v: task %s still running on t%d (tasks run to completion)", i, op, cur, op.Thread)
			}
			if _, ok := info.loopIdx[op.Thread]; !ok {
				return nil, fmt.Errorf("op %d: %v: begin before loopOnQ", i, op)
			}
			if _, ok := info.postIdx[op.Task]; !ok {
				return nil, fmt.Errorf("op %d: %v: begin without post", i, op)
			}
			info.beginIdx[op.Task] = i
			current[op.Thread] = op.Task
			info.enclTask[i] = op.Task // begin/end belong to their own task
		case OpEnd:
			if current[op.Thread] != op.Task {
				return nil, fmt.Errorf("op %d: %v: end does not match running task %q", i, op, current[op.Thread])
			}
			info.endIdx[op.Task] = i
			info.enclTask[i] = op.Task
			current[op.Thread] = ""
		}
	}
	return info, nil
}

// Trace returns the analyzed trace.
func (in *Info) Trace() *Trace { return in.tr }

// Threads returns all thread IDs appearing in the trace, in order of first
// appearance. The caller must treat the slice as read-only.
func (in *Info) Threads() []ThreadID { return in.threads }

// LoopIdx returns the index of thread t's loopOnQ operation, or -1.
func (in *Info) LoopIdx(t ThreadID) int {
	if i, ok := in.loopIdx[t]; ok {
		return i
	}
	return -1
}

// AttachIdx returns the index of thread t's attachQ operation, or -1.
func (in *Info) AttachIdx(t ThreadID) int {
	if i, ok := in.attachIdx[t]; ok {
		return i
	}
	return -1
}

// HasQueue reports whether thread t attached a task queue in the trace.
func (in *Info) HasQueue(t ThreadID) bool {
	_, ok := in.attachIdx[t]
	return ok
}

// Task returns the asynchronous task enclosing operation i, or "" when the
// operation runs outside any task. This is the paper's task(α) helper;
// begin and end operations belong to their own task.
func (in *Info) Task(i int) TaskID { return in.enclTask[i] }

// BeginIdx returns the index of task p's begin operation, or -1.
func (in *Info) BeginIdx(p TaskID) int { return idxOr(in.beginIdx, p) }

// EndIdx returns the index of task p's end operation, or -1.
func (in *Info) EndIdx(p TaskID) int { return idxOr(in.endIdx, p) }

// PostIdx returns the index of the post operation for task p, or -1.
func (in *Info) PostIdx(p TaskID) int { return idxOr(in.postIdx, p) }

// EnableIdx returns the index of the first enable operation for task p, or
// -1 when p was never explicitly enabled.
func (in *Info) EnableIdx(p TaskID) int { return idxOr(in.enableIdx, p) }

func idxOr(m map[TaskID]int, p TaskID) int {
	if i, ok := m[p]; ok {
		return i
	}
	return -1
}

// PostChain returns the paper's chain(α) for the operation at index i: the
// maximal sequence of post operations β1,…,βm (as trace indices, in trace
// order) such that each βj executes inside the task posted by βj−1 and βm
// posts the task enclosing operation i. The chain is empty when i executes
// outside any task.
func (in *Info) PostChain(i int) []int {
	var rev []int
	task := in.Task(i)
	for task != "" {
		post, ok := in.postIdx[task]
		if !ok {
			break
		}
		rev = append(rev, post)
		task = in.Task(post)
	}
	// Reverse into chain order β1..βm.
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

// Stats are the per-trace statistics reported in Table 2 of the paper.
type Stats struct {
	Length     int // number of operations in the core language
	Fields     int // distinct memory locations accessed
	ThreadsNoQ int // threads without task queues
	ThreadsQ   int // threads with task queues
	AsyncTasks int // asynchronous tasks executed (begin operations)
}

// ComputeStats computes Table 2 statistics for tr. Threads for which
// isSystem returns true (e.g. binder and other runtime-created threads,
// which the paper excludes from its thread counts) are not counted;
// isSystem may be nil to count every thread.
func ComputeStats(tr *Trace, isSystem func(ThreadID) bool) Stats {
	st := Stats{Length: tr.Len()}
	locs := make(map[Loc]bool)
	hasQ := make(map[ThreadID]bool)
	seen := make(map[ThreadID]bool)
	for _, op := range tr.Ops() {
		seen[op.Thread] = true
		switch op.Kind {
		case OpAttachQ:
			hasQ[op.Thread] = true
		case OpRead, OpWrite:
			locs[op.Loc] = true
		case OpBegin:
			st.AsyncTasks++
		}
	}
	st.Fields = len(locs)
	for t := range seen {
		if isSystem != nil && isSystem(t) {
			continue
		}
		if hasQ[t] {
			st.ThreadsQ++
		} else {
			st.ThreadsNoQ++
		}
	}
	return st
}
