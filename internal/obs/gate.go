package obs

import "sync/atomic"

// exporterActive flips once the process gains a metrics consumer — a
// debug HTTP listener, a Prometheus scrape, or an expvar snapshot.
// Publish-once-per-operation instrumentation (phase histograms, build
// and scan summaries) checks it so a process with no exporter pays a
// single atomic load instead of mirroring numbers nobody can read.
// Series registration is NOT gated: families are declared at init, so
// the first scrape still sees the complete series set at zero.
var exporterActive atomic.Bool

// MarkExporterAttached records that a metrics consumer exists; called
// by DebugMux/ServeDebug at bind time and by the render paths as a
// fallback. It is never unset.
func MarkExporterAttached() { exporterActive.Store(true) }

// ExporterAttached reports whether any metrics consumer has attached.
// Instrumented code may skip batched publish work when false.
func ExporterAttached() bool { return exporterActive.Load() }
