package apps

import (
	"droidracer/internal/android"
	"droidracer/internal/explorer"
	"droidracer/internal/race"
)

// AblationWorkload is a synthetic application that is race free under the
// full happens-before relation, with each conflicting pair ordered by
// exactly one mechanism. Disabling a rule therefore surfaces a specific
// set of false positives (and the naive combination hides one real race):
//
//   - fifo.data: two tasks posted in order from one thread — ordered by
//     the FIFO rule only;
//   - nopre.data: a task posts a successor to its own thread and keeps
//     writing — ordered by NOPRE (run to completion) only;
//   - enable.data: written at launch, written again in the destruction
//     callback — ordered through enable ≼ post, the Figure 4 (7,21) pair;
//   - lock.data and post.data: cross-thread pairs ordered by a lock and by
//     an asynchronous post — invisible to the event-only (st-only)
//     specialization;
//   - samequeue-lock.data: a REAL single-threaded race between two tasks
//     that share a lock — the naive combination spuriously orders it
//     (a false negative).
//
// It is registered as "Ablation Workload" and drives the DESIGN.md
// ablation experiments and BenchmarkAblation.
type AblationWorkload struct{}

// NewAblationWorkload returns the ablation app.
func NewAblationWorkload() *AblationWorkload { return &AblationWorkload{} }

func init() {
	register("Ablation Workload", func() App { return NewAblationWorkload() })
}

// Name implements App.
func (*AblationWorkload) Name() string { return "Ablation Workload" }

// LOC implements App.
func (*AblationWorkload) LOC() int { return 0 }

// Proprietary implements App.
func (*AblationWorkload) Proprietary() bool { return false }

// MainActivity implements App.
func (*AblationWorkload) MainActivity() string { return "Ablation" }

// Options implements App. Two binder threads make the launch and
// destruction IPCs arrive on different binder-pool threads, so the
// enable-based ordering is the only one available (as in a real pool).
func (*AblationWorkload) Options() android.Options {
	opts := android.DefaultOptions()
	opts.BinderThreads = 2
	return opts
}

// Explore implements App.
func (*AblationWorkload) Explore() explorer.Options {
	return explorer.Options{MaxEvents: 1, MaxTests: 4}
}

// GroundTruth implements App: the only real race is the same-queue locked
// pair (cross-posted: the tasks come from two different threads).
func (*AblationWorkload) GroundTruth() []SeededRace {
	return []SeededRace{{
		Loc:      "samequeue-lock.data",
		Category: race.CrossPosted,
		Note:     "locks do not order tasks on one thread (§1)",
	}}
}

// Register implements App.
func (*AblationWorkload) Register(e *android.Env) {
	e.RegisterActivity("Ablation", func() android.Activity { return &ablationActivity{} })
}

type ablationActivity struct {
	android.BaseActivity
}

func (a *ablationActivity) OnCreate(c *android.Ctx) {
	// enable.data: the Figure 4 shape — written at launch and again in
	// onDestroy; the ordering needs the launch-time enable of destruction.
	c.Write("enable.data")
}

func (a *ablationActivity) OnDestroy(c *android.Ctx) {
	c.Write("enable.data")
}

func (a *ablationActivity) OnResume(c *android.Ctx) {
	h := c.Env.MainHandler()

	// fifo.data: ordered by FIFO dispatch of same-source posts.
	c.Fork("fifo-src", func(b *android.Ctx) {
		h.Post(b, "fifo.first", func(m *android.Ctx) { m.Write("fifo.data") })
		h.Post(b, "fifo.second", func(m *android.Ctx) { m.Write("fifo.data") })
	})

	// nopre.data: a DELAYED parent task forks a worker that posts the
	// child; the parent keeps writing after the fork. The FIFO rule is
	// gated off (the parent's post is delayed, §4.2 case (a) reversed), so
	// only NOPRE — run to completion through the fork ≼ post chain —
	// orders the parent's trailing write before the child.
	h.PostDelayed(c, "nopre.parent", func(m *android.Ctx) {
		m.Fork("nopre-relay", func(b *android.Ctx) {
			h.Post(b, "nopre.child", func(mm *android.Ctx) { mm.Write("nopre.data") })
		})
		m.Write("nopre.data")
	}, 5)

	// lock.data: classic cross-thread mutual exclusion.
	c.Fork("locker", func(b *android.Ctx) {
		b.Acquire("ablation.mu")
		b.Write("lock.data")
		b.Release("ablation.mu")
	})
	c.Acquire("ablation.mu")
	c.Write("lock.data")
	c.Release("ablation.mu")

	// post.data: a hand-off synchronized purely by an asynchronous post.
	c.Fork("producer", func(b *android.Ctx) {
		b.Write("post.data")
		h.Post(b, "consume", func(m *android.Ctx) { m.Write("post.data") })
	})

	// samequeue-lock.data: two tasks posted from independent threads,
	// both protected by a lock — which cannot order tasks on one thread.
	// A REAL race that the naive combination masks (§1).
	for _, name := range []string{"sq.first", "sq.second"} {
		name := name
		c.Fork(name+"-poster", func(b *android.Ctx) {
			h.Post(b, name, func(m *android.Ctx) {
				m.Acquire("sq.mu")
				m.Write("samequeue-lock.data")
				m.Release("sq.mu")
			})
		})
	}
}
