// Package hb computes the happens-before relation of the DroidRacer paper
// (§4.1, Figures 6 and 7) over execution traces.
//
// The relation ≼ is the union of two mutually recursive relations: a
// thread-local relation st (rules NO-Q-PO, ASYNC-PO, ENABLE-ST, POST-ST,
// FIFO, NOPRE, TRANS-ST) and an inter-thread relation mt (rules
// ATTACH-Q-MT, ENABLE-MT, POST-MT, FORK, JOIN, LOCK, TRANS-MT). The
// decomposition restricts transitivity so that two asynchronous tasks
// running on the same thread are never ordered merely because they use the
// same lock — the spurious ordering a naive combination of multithreaded
// and event-driven rules would produce (§1 of the paper). The naive
// combination is available behind Config.Naive for ablation.
//
// The engine follows the paper's graph-based algorithm (§4.3): trace
// operations become graph nodes, happens-before edges are derived to a
// fixpoint, and reachability is answered from per-node bit sets. The
// node-merging optimization from §6 (contiguous memory accesses with no
// intervening synchronization collapse into one node) is on by default and
// reduces graphs to a few percent of the trace length.
package hb

import (
	"time"

	"droidracer/internal/bitset"
	"droidracer/internal/budget"
	"droidracer/internal/obs"
	"droidracer/internal/trace"
)

// Config selects rule subsets and optimizations. Use DefaultConfig for the
// paper's full relation; the ablation flags reproduce the specializations
// discussed in §4.1 and §6.
type Config struct {
	// MergeAccesses enables the §6 node-merging optimization.
	MergeAccesses bool
	// EnableEdges honors enable operations (ENABLE-ST/ENABLE-MT). Turning
	// it off reproduces the false positives the paper's environment model
	// eliminates (the Figure 4 onDestroy example).
	EnableEdges bool
	// FIFO applies the FIFO rule. Turning it off yields the
	// non-deterministic scheduling semantics of asynchronous programs.
	FIFO bool
	// NoPre applies the NOPRE (run-to-completion) rule.
	NoPre bool
	// Naive replaces the decomposed st/mt relation with the naive
	// combination: the LOCK rule applies within a thread and transitivity
	// is unrestricted. Tasks on one thread sharing a lock become spuriously
	// ordered.
	Naive bool
	// WholeThreadPO imposes program order across an entire thread,
	// ignoring task boundaries — the classic multithreaded happens-before
	// obtained by "discarding all rules for asynchronous procedure calls"
	// (§4.1 specializations). Single-threaded races become invisible.
	WholeThreadPO bool
	// STOnly drops every inter-thread rule, keeping only the thread-local
	// relation — the happens-before of single-threaded event-driven
	// programs (§4.1 specializations), used by the event-only baseline.
	// Cross-thread interference becomes invisible (false positives).
	STOnly bool
	// Parallelism is the number of worker goroutines the closure
	// fixpoint shards its passes across. Values ≤ 1 run the serial
	// engine. The parallel engine is pass-for-pass identical to the
	// serial one (see parallel.go), so the resulting relation, edge
	// counts, and rule attribution are byte-identical at any setting;
	// only wall-clock time changes.
	Parallelism int
}

// DefaultConfig returns the configuration of the full analysis as
// implemented in DroidRacer.
func DefaultConfig() Config {
	return Config{MergeAccesses: true, EnableEdges: true, FIFO: true, NoPre: true}
}

// Node is one vertex of the happens-before graph: a single non-access
// operation, or a maximal run of contiguous memory accesses on one thread
// within one task with no intervening synchronization (when merging is
// enabled).
type Node struct {
	// Ops are the trace indices of the operations in this node, in trace
	// order. Non-access nodes have exactly one.
	Ops    []int
	Thread trace.ThreadID
	// Task is the enclosing asynchronous task, or "" outside any task.
	Task trace.TaskID
}

// First returns the trace index of the node's first operation.
func (n *Node) First() int { return n.Ops[0] }

// Graph is the happens-before graph of one trace. Build constructs it;
// afterwards it is immutable and safe for concurrent readers.
type Graph struct {
	cfg  Config
	info *trace.Info

	nodes  []Node
	nodeOf []int // op index → node index

	// st[i] and mt[i] hold the node indices j with node i ≼st / ≼mt node j.
	st, mt []*bitset.Set

	// skipped counts rule instances dropped because they would have added
	// a backward edge — possible only on traces that are not valid
	// executions (e.g. a hand-written trace violating FIFO dispatch).
	skipped int

	// edges counts recorded ≼ pairs; the budget checker compares it
	// against Limits.MaxClosureEdges during construction.
	edges int

	// ruleEdges attributes edges to the Figure 6–7 rule that derived
	// them; baseST/baseMT count direct (non-closure) insertions per
	// relation so the TRANS-* remainders can be computed afterwards.
	ruleEdges [numRules]int
	baseST    int
	baseMT    int

	// edgeCount caches EdgeCount for completed builds (-1 = not yet
	// computed; budget-tripped builds leave it unset and EdgeCount
	// recomputes on demand, still allocation-free).
	edgeCount int

	// Budget enforcement during Build; both are nil/zero afterwards on
	// the unbudgeted path.
	ck       *budget.Checker
	buildErr error
}

// Build computes the happens-before relation for the analyzed trace.
func Build(info *trace.Info, cfg Config) *Graph {
	g, _ := BuildBudgeted(info, cfg, nil)
	return g
}

// BuildBudgeted computes the happens-before relation under a budget: the
// checker's wall clock and context are polled throughout construction,
// MaxGraphNodes is enforced before the O(nodes²) reachability bitsets
// are allocated (the primary OOM guard), and MaxClosureEdges bounds the
// fixpoint. On a trip the partially closed graph built so far is
// returned together with a *budget.Error; its relation is a sound
// under-approximation of ≼, so reachability answers remain usable for
// diagnostics, but race detection over it may report false positives —
// callers should degrade instead (see core.AnalyzeContext). A nil
// checker reproduces Build exactly.
func BuildBudgeted(info *trace.Info, cfg Config, ck *budget.Checker) (*Graph, error) {
	start := time.Now()
	g := &Graph{cfg: cfg, info: info, ck: ck, edgeCount: -1}
	g.buildNodes()
	n := len(g.nodes)
	if err := ck.Nodes(n); err != nil {
		g.buildErr = err
	}
	g.st = make([]*bitset.Set, n)
	g.mt = make([]*bitset.Set, n)
	for i := range g.nodes {
		if !g.check() {
			break
		}
		g.st[i] = bitset.New(n)
		g.mt[i] = bitset.New(n)
	}
	if g.buildErr == nil {
		g.addBaseEdges()
		fx := time.Now()
		workers := g.closureWorkers()
		if workers > 1 {
			g.fixpointParallel(workers)
		} else {
			g.fixpoint()
		}
		obs.ParallelPhaseObserve("hb-closure", workers, time.Since(fx))
	}
	err := g.buildErr
	g.ck, g.buildErr = nil, nil
	if err != nil {
		// Rows never allocated (budget tripped mid-allocation) share one
		// empty set so the partial graph stays safe to query without
		// paying the O(n²) allocation the budget just prevented. The
		// graph is immutable after Build, so sharing is safe.
		empty := bitset.New(n)
		for i := range g.nodes {
			if g.st[i] == nil {
				g.st[i] = empty
			}
			if g.mt[i] == nil {
				g.mt[i] = empty
			}
		}
	}
	if err == nil {
		// Attribute closure edges only for completed builds: the Count
		// pass is O(nodes²/64) — trivial next to a finished fixpoint,
		// but not next to a build the budget stopped almost immediately.
		// Base-rule counts are exact either way; an abandoned closure's
		// TRANS-* contribution stays 0.
		g.finalizeRuleCounts()
	}
	g.publishMetrics(start)
	return g, err
}

// check polls the budget during construction, recording the first trip
// in buildErr. It reports whether construction may continue.
func (g *Graph) check() bool {
	if g.buildErr != nil {
		return false
	}
	if g.ck == nil {
		return true
	}
	if err := g.ck.Check(); err != nil {
		g.buildErr = err
		return false
	}
	if err := g.ck.Edges(g.edges); err != nil {
		g.buildErr = err
		return false
	}
	return true
}

// buildNodes partitions trace operations into graph nodes, merging
// contiguous accesses when configured.
func (g *Graph) buildNodes() {
	tr := g.info.Trace()
	g.nodeOf = make([]int, tr.Len())
	// lastNode[t] is the index of the most recent node on thread t.
	lastNode := make(map[trace.ThreadID]int)
	for i, op := range tr.Ops() {
		if g.cfg.MergeAccesses && op.Kind.IsAccess() {
			if prev, ok := lastNode[op.Thread]; ok {
				pn := &g.nodes[prev]
				lastOp := tr.Op(pn.Ops[len(pn.Ops)-1])
				if lastOp.Kind.IsAccess() && pn.Task == g.info.Task(i) {
					// Contiguous on this thread: no same-thread operation
					// intervened, since lastNode tracks the latest one.
					pn.Ops = append(pn.Ops, i)
					g.nodeOf[i] = prev
					continue
				}
			}
		}
		g.nodes = append(g.nodes, Node{
			Ops:    []int{i},
			Thread: op.Thread,
			Task:   g.info.Task(i),
		})
		g.nodeOf[i] = len(g.nodes) - 1
		lastNode[op.Thread] = len(g.nodes) - 1
	}
}

// NodeCount returns the number of graph nodes after merging.
func (g *Graph) NodeCount() int { return len(g.nodes) }

// NodeOf returns the node index of the operation at trace index i.
func (g *Graph) NodeOf(i int) int { return g.nodeOf[i] }

// Info returns the trace annotations the graph was built from.
func (g *Graph) Info() *trace.Info { return g.info }

// Skipped returns the number of rule instances dropped because they would
// have ordered a later operation before an earlier one. It is zero for
// traces that are valid executions.
func (g *Graph) Skipped() int { return g.skipped }

// EdgeCount returns the number of recorded ≼ pairs (st plus mt, counting a
// pair once if present in both). Completed builds answer from a count
// cached during finalization; partial (budget-tripped) graphs recompute
// on demand. Either way the count is allocation-free — metrics publish
// calls this per scrape, so it must not clone a bitset per row.
func (g *Graph) EdgeCount() int {
	if g.edgeCount >= 0 {
		return g.edgeCount
	}
	total := 0
	for i := range g.nodes {
		total += g.st[i].UnionCount(g.mt[i])
	}
	return total
}

// HappensBefore reports whether the operation at trace index i happens
// before the operation at trace index j (αi ≼ αj). Operations within one
// merged node are ordered by program order.
func (g *Graph) HappensBefore(i, j int) bool {
	ni, nj := g.nodeOf[i], g.nodeOf[j]
	if ni == nj {
		return i < j
	}
	return g.st[ni].Has(nj) || g.mt[ni].Has(nj)
}

// OrderedLE reports αi ≼ αj treating ≼ as reflexive (the paper defines st
// as reflexive); the race classifier uses this form.
func (g *Graph) OrderedLE(i, j int) bool {
	return i == j || g.HappensBefore(i, j)
}

// STHas reports whether the operations at trace indices i and j are
// related by the thread-local relation (αi ≼st αj). Exposed for tests
// that validate individual paper rules.
func (g *Graph) STHas(i, j int) bool {
	ni, nj := g.nodeOf[i], g.nodeOf[j]
	if ni == nj {
		return i < j
	}
	return g.st[ni].Has(nj)
}

// MTHas reports whether αi ≼mt αj.
func (g *Graph) MTHas(i, j int) bool {
	ni, nj := g.nodeOf[i], g.nodeOf[j]
	if ni == nj {
		return false
	}
	return g.mt[ni].Has(nj)
}

// addST records node a ≼st node b under rule r, guarding against
// backward edges.
func (g *Graph) addST(a, b int, r Rule) bool {
	if a == b {
		return false
	}
	if a > b {
		g.skipped++
		return false
	}
	if g.st[a].Has(b) {
		return false
	}
	g.st[a].Set(b)
	g.edges++
	g.ruleEdges[r]++
	g.baseST++
	return true
}

// addMT records node a ≼mt node b under rule r, guarding against
// backward edges. Under Config.STOnly inter-thread edges are suppressed
// entirely.
func (g *Graph) addMT(a, b int, r Rule) bool {
	if g.cfg.STOnly || a == b {
		return false
	}
	if a > b {
		g.skipped++
		return false
	}
	if g.mt[a].Has(b) {
		return false
	}
	g.mt[a].Set(b)
	g.edges++
	g.ruleEdges[r]++
	g.baseMT++
	return true
}
