package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the global expvar publication: expvar.Publish
// panics on duplicate names, and tests build multiple muxes.
var expvarOnce sync.Once

// DebugMux returns the daemon's debug surface over reg:
//
//	/metrics          Prometheus text exposition
//	/debug/vars       expvar (process stats + a registry snapshot)
//	/debug/pprof/...  runtime profiling (net/http/pprof)
//
// The handlers are registered on a private mux, not
// http.DefaultServeMux, so importing this package never adds routes to
// a server the caller didn't ask for.
func DebugMux(reg *Registry) *http.ServeMux {
	MarkExporterAttached()
	expvarOnce.Do(func() {
		expvar.Publish("droidracer", expvar.Func(func() any {
			return Default().Snapshot()
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug binds addr and serves DebugMux(reg) in the background,
// returning the server (for Close on shutdown) and the bound address
// (useful with ":0"). Serve errors after Close are expected and
// dropped; a bind failure is returned synchronously so a daemon with a
// mistyped -metrics-addr fails fast instead of running unobservable.
func ServeDebug(addr string, reg *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: DebugMux(reg)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
