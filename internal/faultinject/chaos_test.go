package faultinject_test

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"droidracer/internal/android"
	"droidracer/internal/core"
	"droidracer/internal/faultinject"
	"droidracer/internal/paper"
	"droidracer/internal/trace"
)

// figure3Lines renders the paper's Figure 3 trace to its textual lines,
// the base input every corruption operator mutates.
func figure3Lines(t *testing.T) []string {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.Format(&buf, paper.Figure3()); err != nil {
		t.Fatal(err)
	}
	return strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
}

// TestChaosOperatorsThroughPipeline feeds every corruption operator,
// under several seeds, through parse + analysis with a tight budget.
// Each run must end in a structured error or a report (possibly
// degraded) — never a panic, never a hang.
func TestChaosOperatorsThroughPipeline(t *testing.T) {
	lines := figure3Lines(t)
	opts := core.DefaultOptions()
	opts.Budget = core.Budget{Wall: 2 * time.Second}
	for _, op := range faultinject.Operators() {
		op := op
		t.Run(op.Name, func(t *testing.T) {
			for seed := int64(1); seed <= 20; seed++ {
				corrupted := op.Apply(lines, rand.New(rand.NewSource(seed)))
				text := strings.Join(corrupted, "\n")
				tr, err := trace.Parse(strings.NewReader(text))
				if err != nil {
					if err.Error() == "" {
						t.Fatalf("seed %d: empty parse error", seed)
					}
					continue // structured parse error: acceptable outcome
				}
				res, err := core.Analyze(tr, opts)
				if err != nil {
					if err.Error() == "" {
						t.Fatalf("seed %d: empty analysis error", seed)
					}
					continue // structured analysis error: acceptable outcome
				}
				if res == nil {
					t.Fatalf("seed %d: nil result without error", seed)
				}
			}
		})
	}
}

// TestMutateTextNeverCrashesParse drives MutateText over many seeds and
// asserts the parser survives every mutation.
func TestMutateTextNeverCrashesParse(t *testing.T) {
	var buf bytes.Buffer
	if err := trace.Format(&buf, paper.Figure4()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for seed := int64(0); seed < 200; seed++ {
		mutated := faultinject.MutateText(data, seed)
		if _, err := trace.Parse(bytes.NewReader(mutated)); err != nil && err.Error() == "" {
			t.Fatalf("seed %d: empty parse error", seed)
		}
	}
}

// chaosApp is a minimal activity whose button touches shared state.
type chaosApp struct{ android.BaseActivity }

func (a *chaosApp) OnCreate(c *android.Ctx) {
	c.AddButton("go", true, func(c *android.Ctx) { c.Write("pressed") })
}

func chaosEnv(hook func(step int, op trace.Op) error) *android.Env {
	opts := android.DefaultOptions()
	opts.FaultHook = hook
	e := android.NewEnv(opts)
	e.RegisterActivity("Main", func() android.Activity { return &chaosApp{} })
	return e
}

// TestSchedulerFaultHookError injects an error mid-run and asserts it
// surfaces as the run's error with the cause preserved.
func TestSchedulerFaultHookError(t *testing.T) {
	cause := errors.New("injected io failure")
	e := chaosEnv(faultinject.FailAt(5, cause))
	defer e.Close()
	if err := e.Launch("Main"); err != nil {
		t.Fatal(err)
	}
	err := e.Run()
	if err == nil {
		t.Fatal("injected fault did not fail the run")
	}
	if !errors.Is(err, cause) {
		t.Fatalf("cause lost: %v", err)
	}
}

// TestSchedulerFaultHookPanic injects a panic mid-run and asserts the
// scheduler recovers it into a structured error, including typed
// *android.ModelError values.
func TestSchedulerFaultHookPanic(t *testing.T) {
	modelErr := &android.ModelError{Component: "chaos", Op: "hook", Err: errors.New("boom")}
	e := chaosEnv(faultinject.PanicAt(5, modelErr))
	defer e.Close()
	if err := e.Launch("Main"); err != nil {
		t.Fatal(err)
	}
	err := e.Run()
	if err == nil {
		t.Fatal("injected panic did not fail the run")
	}
	var me *android.ModelError
	if !errors.As(err, &me) {
		t.Fatalf("ModelError lost through recovery: %v", err)
	}
}

// TestModelErrorSurfacesFromApp asserts a broken app model (starting an
// unregistered activity) fails its run with a typed ModelError instead
// of crashing the process.
func TestModelErrorSurfacesFromApp(t *testing.T) {
	opts := android.DefaultOptions()
	e := android.NewEnv(opts)
	defer e.Close()
	e.RegisterActivity("Main", func() android.Activity { return &badApp{} })
	if err := e.Launch("Main"); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		checkModelError(t, err)
		return
	}
	// The bad StartActivity fires from a button press.
	if err := e.Fire(android.UIEvent{Kind: android.EvClick, Widget: "bad"}); err != nil {
		t.Fatal(err)
	}
	err := e.Run()
	if err == nil {
		t.Fatal("unregistered activity did not fail the run")
	}
	checkModelError(t, err)
}

func checkModelError(t *testing.T, err error) {
	t.Helper()
	var me *android.ModelError
	if !errors.As(err, &me) {
		t.Fatalf("want *android.ModelError in chain, got %v", err)
	}
	if me.Op != "StartActivity" {
		t.Fatalf("got %+v", me)
	}
}

type badApp struct{ android.BaseActivity }

func (a *badApp) OnCreate(c *android.Ctx) {
	c.AddButton("bad", true, func(c *android.Ctx) { c.StartActivity("no-such-activity") })
}

// TestFaultHookStepsAreDeterministic asserts the same hook position
// fails at the same operation across runs, the property replayable
// chaos tests rely on.
func TestFaultHookStepsAreDeterministic(t *testing.T) {
	cause := errors.New("probe")
	run := func() string {
		var at trace.Op
		hook := func(step int, op trace.Op) error {
			if step == 7 {
				at = op
				return cause
			}
			return nil
		}
		e := chaosEnv(hook)
		defer e.Close()
		if err := e.Launch("Main"); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(); !errors.Is(err, cause) {
			t.Fatalf("fault not injected: %v", err)
		}
		return at.String()
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("nondeterministic fault site: %q vs %q", got, first)
		}
	}
}
