package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"droidracer/internal/budget"
	"droidracer/internal/core"
	"droidracer/internal/jobs"
	"droidracer/internal/journal"
	"droidracer/internal/paper"
	"droidracer/internal/report"
	"droidracer/internal/trace"
)

// figure4Body renders the paper's Figure 4 trace as a submission body.
func figure4Body(t *testing.T) []byte {
	t.Helper()
	var buf strings.Builder
	if err := trace.Format(&buf, paper.Figure4()); err != nil {
		t.Fatal(err)
	}
	return []byte(buf.String())
}

// harness is one daemon-shaped stack: journal, pool, server, HTTP
// listener — everything handleSubmit needs end to end.
type harness struct {
	spool string
	state string
	jpath string
	w     *journal.Writer
	pool  *jobs.Pool
	srv   *Server
	ts    *httptest.Server
}

func newHarness(t *testing.T, poolCfg jobs.Config, srvCfg Config) *harness {
	t.Helper()
	h := &harness{spool: t.TempDir(), state: t.TempDir()}
	h.jpath = filepath.Join(h.state, "daemon.journal")
	w, err := journal.Create(h.jpath)
	if err != nil {
		t.Fatal(err)
	}
	h.w = w
	var srv *Server
	poolCfg.Journal = w
	poolCfg.OnFinish = func(out report.Outcome) {
		if s := srv; s != nil {
			s.JobFinished(out)
		}
	}
	h.pool = jobs.NewPool(poolCfg)
	srvCfg.Pool = h.pool
	srvCfg.Spool = h.spool
	srvCfg.Analyze = core.DefaultOptions()
	srv = New(srvCfg)
	h.srv = srv
	h.ts = httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		h.ts.Close()
		h.pool.Shutdown(context.Background())
		h.w.Close()
	})
	return h
}

// post submits body and decodes the response.
func (h *harness) post(t *testing.T, body []byte, hdr map[string]string) (*SubmitResponse, *http.Response) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, h.ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	httpResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var resp SubmitResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return &resp, httpResp
}

// waitStatus polls GET /v1/jobs/{id} until the index reports status.
func (h *harness) waitStatus(t *testing.T, id, status string) *SubmitResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		httpResp, err := http.Get(h.ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var resp SubmitResponse
		err = json.NewDecoder(httpResp.Body).Decode(&resp)
		httpResp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status == status {
			return &resp
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached status %q", id, status)
	return nil
}

func TestSubmitAnalyzeReplay(t *testing.T) {
	h := newHarness(t, jobs.Config{Workers: 1}, Config{})
	body := figure4Body(t)

	resp, httpResp := h.post(t, body, nil)
	if httpResp.StatusCode != http.StatusAccepted || resp.Status != StatusAccepted {
		t.Fatalf("first submit = %d %+v", httpResp.StatusCode, resp)
	}
	if resp.Job != IdempotencyKey(body) {
		t.Fatalf("job id %q != content key %q", resp.Job, IdempotencyKey(body))
	}
	done := h.waitStatus(t, resp.Job, StatusDone)
	if done.Mode != "full" || done.Races == 0 || done.Digest == "" {
		t.Fatalf("done entry = %+v", done)
	}

	// The duplicate answers from the index — same digest, 200, no new work.
	dup, httpResp := h.post(t, body, nil)
	if httpResp.StatusCode != http.StatusOK || dup.Status != StatusDone {
		t.Fatalf("duplicate = %d %+v", httpResp.StatusCode, dup)
	}
	if dup.Digest != done.Digest || dup.Races != done.Races {
		t.Fatalf("replayed %+v, first %+v", dup, done)
	}

	h.pool.Quiesce()
	h.w.Sync()
	entries, err := journal.Recover(h.jpath)
	if err != nil {
		t.Fatal(err)
	}
	jobsSeen := 0
	for _, e := range entries {
		if e.Type == "job" {
			jobsSeen++
		}
	}
	if jobsSeen != 1 {
		t.Fatalf("journal has %d job entries, want 1 (duplicate must not re-run)", jobsSeen)
	}
}

func TestDuplicateOfPendingCoalesces(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	h := newHarness(t, jobs.Config{Workers: 1, QueueDepth: 4}, Config{})
	// Occupy the only worker so the HTTP submission stays queued.
	h.pool.Submit(jobs.Job{Name: "blocker", Run: func(ctx context.Context, _ budget.Limits) (*core.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return &core.Result{}, nil
	}})
	<-started
	defer close(release)

	body := figure4Body(t)
	first, httpResp := h.post(t, body, nil)
	if httpResp.StatusCode != http.StatusAccepted || first.Coalesced {
		t.Fatalf("first = %d %+v", httpResp.StatusCode, first)
	}
	dup, httpResp := h.post(t, body, nil)
	if httpResp.StatusCode != http.StatusAccepted || !dup.Coalesced || dup.Status != StatusPending {
		t.Fatalf("duplicate of pending = %d %+v, want coalesced 202", httpResp.StatusCode, dup)
	}
	// Exactly one spool file: the coalesced duplicate did not rewrite it.
	ents, err := os.ReadDir(h.spool)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("spool has %d entries, want 1", len(ents))
	}
}

func TestRateLimitRejectsWithRetryAfter(t *testing.T) {
	h := newHarness(t, jobs.Config{Workers: 1}, Config{Rate: 0.5, Burst: 1})
	hdr := map[string]string{"X-Client-ID": "flooder"}
	if _, httpResp := h.post(t, figure4Body(t), hdr); httpResp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", httpResp.StatusCode)
	}
	resp, httpResp := h.post(t, []byte("op 2 distinct body\n"), hdr)
	if httpResp.StatusCode != http.StatusTooManyRequests || resp.Reason != RejectRateLimited {
		t.Fatalf("flood = %d %+v, want 429 rate-limited", httpResp.StatusCode, resp)
	}
	if httpResp.Header.Get("Retry-After") == "" || resp.RetryAfterSeconds < 1 {
		t.Fatalf("429 without honest Retry-After: header=%q body=%+v",
			httpResp.Header.Get("Retry-After"), resp)
	}
	// A different client is not collateral damage of the flooder.
	other, httpResp := h.post(t, []byte("op 3 another body\n"), map[string]string{"X-Client-ID": "calm"})
	if httpResp.StatusCode == http.StatusTooManyRequests {
		t.Fatalf("distinct client rate-limited: %+v", other)
	}
}

func TestQueueFullRejectsAndCleansSpool(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	h := newHarness(t, jobs.Config{Workers: 1, QueueDepth: 1}, Config{})
	blocker := func(name string) jobs.Job {
		return jobs.Job{Name: name, Run: func(ctx context.Context, _ budget.Limits) (*core.Result, error) {
			started <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
			}
			return &core.Result{}, nil
		}}
	}
	h.pool.Submit(blocker("running"))
	<-started
	h.pool.Submit(blocker("queued")) // fills the 1-deep queue
	defer close(release)

	body := figure4Body(t)
	resp, httpResp := h.post(t, body, nil)
	if httpResp.StatusCode != http.StatusTooManyRequests || resp.Reason != RejectQueueFull {
		t.Fatalf("saturated submit = %d %+v, want 429 queue-full", httpResp.StatusCode, resp)
	}
	if resp.RetryAfterSeconds < 1 {
		t.Fatalf("queue-full without Retry-After: %+v", resp)
	}
	// The unaccepted body must not leak into the spool (the restart sweep
	// would silently run work the client was told to retry).
	if _, err := os.Stat(filepath.Join(h.spool, jobName(IdempotencyKey(body)))); !os.IsNotExist(err) {
		t.Fatalf("rejected submission left a spool file (err=%v)", err)
	}
	// And a retry of the same body after the rejection must be accepted
	// once capacity returns, not answered "pending" from a stale claim.
	if st, _, ok := h.srv.lookup(jobName(IdempotencyKey(body))); ok {
		t.Fatalf("rejected submission left an index entry: %+v", st)
	}
}

func TestBodyLimits(t *testing.T) {
	h := newHarness(t, jobs.Config{Workers: 1}, Config{MaxBody: 64})
	resp, httpResp := h.post(t, bytes.Repeat([]byte("x"), 128), nil)
	if httpResp.StatusCode != http.StatusRequestEntityTooLarge || resp.Reason != RejectBodyTooLarge {
		t.Fatalf("oversized = %d %+v", httpResp.StatusCode, resp)
	}
	resp, httpResp = h.post(t, []byte("  \n"), nil)
	if httpResp.StatusCode != http.StatusBadRequest || resp.Reason != RejectEmptyBody {
		t.Fatalf("empty = %d %+v", httpResp.StatusCode, resp)
	}
}

func TestIdempotencyKeyMismatch(t *testing.T) {
	h := newHarness(t, jobs.Config{Workers: 1}, Config{})
	resp, httpResp := h.post(t, figure4Body(t), map[string]string{"Idempotency-Key": "deadbeefdeadbeef"})
	if httpResp.StatusCode != http.StatusBadRequest || resp.Reason != RejectKeyMismatch {
		t.Fatalf("corrupted body = %d %+v, want 400 key-mismatch", httpResp.StatusCode, resp)
	}
}

func TestBadDeadlineRejected(t *testing.T) {
	h := newHarness(t, jobs.Config{Workers: 1}, Config{})
	_, httpResp := h.post(t, figure4Body(t), map[string]string{DeadlineHeader: "not-a-duration"})
	if httpResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad deadline = %d, want 400", httpResp.StatusCode)
	}
}

func TestReadyzFlipsOnDrain(t *testing.T) {
	h := newHarness(t, jobs.Config{Workers: 1}, Config{})
	for _, path := range []string{"/healthz", "/readyz"} {
		r, err := http.Get(h.ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d before drain", path, r.StatusCode)
		}
	}
	h.srv.BeginDrain()
	r, err := http.Get(h.ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d after BeginDrain, want 503", r.StatusCode)
	}
	// Liveness is unaffected: the process is healthy, just not accepting.
	r, err = http.Get(h.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d after BeginDrain, want 200", r.StatusCode)
	}
	resp, httpResp := h.post(t, figure4Body(t), nil)
	if httpResp.StatusCode != http.StatusServiceUnavailable || resp.Reason != RejectShuttingDown {
		t.Fatalf("submit during drain = %d %+v", httpResp.StatusCode, resp)
	}
	if resp.RetryAfterSeconds < 1 {
		t.Fatalf("drain rejection without Retry-After: %+v", resp)
	}
}

func TestPoisonInputQuarantinedAndReplayed(t *testing.T) {
	qdir := filepath.Join(t.TempDir(), "quarantine")
	h := newHarness(t,
		jobs.Config{Workers: 1, Quarantine: &jobs.Quarantine{Dir: qdir}},
		Config{})
	garbage := []byte("this is not a trace\n")
	resp, httpResp := h.post(t, garbage, nil)
	if httpResp.StatusCode != http.StatusAccepted {
		t.Fatalf("garbage submit = %d %+v", httpResp.StatusCode, resp)
	}
	q := h.waitStatus(t, resp.Job, StatusQuarantined)
	if q.Reason == "" {
		t.Fatalf("quarantined without a reason: %+v", q)
	}
	// The duplicate answers 422 from the dead-letter record.
	dup, httpResp := h.post(t, garbage, nil)
	if httpResp.StatusCode != http.StatusUnprocessableEntity || dup.Status != StatusQuarantined {
		t.Fatalf("duplicate of poison = %d %+v, want 422", httpResp.StatusCode, dup)
	}
	// The input moved out of the spool into the quarantine directory.
	name := jobName(resp.Job)
	if _, err := os.Stat(filepath.Join(h.spool, name)); !os.IsNotExist(err) {
		t.Fatalf("poison input still in spool (err=%v)", err)
	}
	if _, err := os.Stat(filepath.Join(qdir, name)); err != nil {
		t.Fatalf("poison input not in quarantine: %v", err)
	}
	// And the journal carries the dead-letter record for the next
	// incarnation.
	h.w.Sync()
	entries, err := journal.Recover(h.jpath)
	if err != nil {
		t.Fatal(err)
	}
	quarantined := jobs.QuarantinedJobs(entries)
	if _, ok := quarantined[name]; !ok {
		t.Fatalf("journal has no quarantine entry for %s: %v", name, quarantined)
	}
	// A server seeded from the recovered journal answers 422 immediately.
	srv2 := New(Config{Pool: h.pool, Spool: h.spool, Quarantined: quarantined})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	r2, err := http.Post(ts2.URL+"/v1/jobs", "text/plain", bytes.NewReader(garbage))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("recovered server = %d, want 422", r2.StatusCode)
	}
}

func TestStatusUnknown(t *testing.T) {
	h := newHarness(t, jobs.Config{Workers: 1}, Config{})
	r, err := http.Get(h.ts.URL + "/v1/jobs/0000000000000000")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", r.StatusCode)
	}
}

func TestClientRetriesWithStableKey(t *testing.T) {
	var mu sync.Mutex
	var keys []string
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		n := attempts
		keys = append(keys, r.Header.Get("Idempotency-Key"))
		mu.Unlock()
		if n < 3 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(&SubmitResponse{Status: StatusRejected, Reason: RejectQueueFull})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(&SubmitResponse{Job: "abc", Status: StatusAccepted})
	}))
	defer ts.Close()

	body := []byte("op 1 trace body\n")
	c := &Client{BaseURL: ts.URL, BaseBackoff: 2 * time.Millisecond, Seed: 42}
	resp, history, err := c.Submit(context.Background(), body)
	if err != nil || resp.Status != StatusAccepted {
		t.Fatalf("submit = %+v, %v", resp, err)
	}
	if len(history) != 3 {
		t.Fatalf("attempts = %d (%+v), want 3", len(history), history)
	}
	want := IdempotencyKey(body)
	for i, k := range keys {
		if k != want {
			t.Fatalf("attempt %d sent key %q, want stable %q", i+1, k, want)
		}
	}
	for _, at := range history[:2] {
		if at.Wait <= 0 {
			t.Fatalf("retryable refusal without backoff: %+v", history)
		}
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(&SubmitResponse{Status: StatusRejected, Reason: RejectShuttingDown, RetryAfterSeconds: 1})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(&SubmitResponse{Job: "abc", Status: StatusAccepted})
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, BaseBackoff: time.Millisecond, Seed: 1}
	start := time.Now()
	_, history, err := c.Submit(context.Background(), []byte("op 1 x\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 2 || history[0].Wait != time.Second {
		t.Fatalf("history = %+v, want first wait = server's Retry-After", history)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("client ignored Retry-After: resolved in %v", elapsed)
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(&SubmitResponse{Status: StatusRejected, Reason: RejectEmptyBody})
	}))
	defer ts.Close()
	c := &Client{BaseURL: ts.URL, BaseBackoff: time.Millisecond}
	_, history, err := c.Submit(context.Background(), []byte("op 1 x\n"))
	if err == nil {
		t.Fatal("400 did not surface as an error")
	}
	if attempts != 1 || len(history) != 1 {
		t.Fatalf("client retried a 400: %d attempts", attempts)
	}
}

func TestEstimatorQueueWait(t *testing.T) {
	e := &estimator{}
	if w := e.queueWait(4, 2, 0); w != 3*time.Second {
		t.Fatalf("default service queueWait = %v, want 3s", w)
	}
	e.observe(10 * time.Second)
	if w := e.queueWait(4, 2, 0); w < 20*time.Second {
		t.Fatalf("observed-service queueWait = %v, want ≥ 20s", w)
	}
	if w := e.queueWait(1000, 1, 0); w != 5*time.Minute {
		t.Fatalf("default-ceiling queueWait = %v, want 5m", w)
	}
	if w := e.queueWait(1000, 1, 30*time.Second); w != 30*time.Second {
		t.Fatalf("configured-ceiling queueWait = %v, want 30s", w)
	}
}

func TestBucketsRefill(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBuckets(1, 1)
	b.now = func() time.Time { return now }
	if _, ok := b.take("c"); !ok {
		t.Fatal("fresh bucket refused its burst")
	}
	wait, ok := b.take("c")
	if ok {
		t.Fatal("empty bucket granted a token")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("wait = %v, want (0, 1s]", wait)
	}
	now = now.Add(1100 * time.Millisecond)
	if _, ok := b.take("c"); !ok {
		t.Fatal("refilled bucket refused")
	}
}
