package fsck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"droidracer/internal/journal"
	"droidracer/internal/storage"
)

type payload struct {
	Key string `json:"key"`
	N   int    `json:"n"`
}

// writeJournal creates a valid checksummed journal with n records at
// <state>/daemon.journal and returns its path.
func writeJournal(t *testing.T, state string, n int) string {
	t.Helper()
	path := filepath.Join(state, "daemon.journal")
	w, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if _, err := w.AppendSeq("job", payload{Key: "k", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func findings(rep *Report, kind string) []Finding {
	var out []Finding
	for _, f := range rep.Findings {
		if f.Kind == kind {
			out = append(out, f)
		}
	}
	return out
}

func TestFsckCleanStateDir(t *testing.T) {
	state := t.TempDir()
	writeJournal(t, state, 3)
	spool := t.TempDir()
	body := []byte("post(t0,LAUNCH_ACTIVITY,t1)\n")
	if err := os.WriteFile(filepath.Join(spool, storage.Key(body)+".trace"), body, 0o666); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Options{State: state, Spool: spool})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean directories produced findings: %+v", rep.Findings)
	}
	if rep.JournalEntries != 3 || rep.SpoolChecked != 1 {
		t.Fatalf("counts: %d entries, %d spool checked; want 3, 1", rep.JournalEntries, rep.SpoolChecked)
	}
}

// TestFsckDetectsAndRepairsCorruptJournal: a bit-flipped middle record
// is reported with its offset, and -repair sidecars the untrusted
// suffix and truncates so journal recovery succeeds afterwards.
func TestFsckDetectsAndRepairsCorruptJournal(t *testing.T) {
	state := t.TempDir()
	path := writeJournal(t, state, 3)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rotted := strings.Replace(string(raw), `"n":2`, `"n":7`, 1)
	if rotted == string(raw) {
		t.Fatal("corruption did not apply")
	}
	if err := os.WriteFile(path, []byte(rotted), 0o666); err != nil {
		t.Fatal(err)
	}

	rep, err := Run(Options{State: state})
	if err != nil {
		t.Fatal(err)
	}
	fs := findings(rep, KindJournalCorrupt)
	if len(fs) != 1 {
		t.Fatalf("findings: %+v, want one %s", rep.Findings, KindJournalCorrupt)
	}
	if !strings.Contains(fs[0].Detail, "checksum mismatch") {
		t.Fatalf("detail %q does not name the checksum mismatch", fs[0].Detail)
	}
	if rep.JournalEntries != 1 {
		t.Fatalf("trusted prefix %d records, want 1", rep.JournalEntries)
	}

	rep, err = Run(Options{State: state, Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Repaired() {
		t.Fatalf("repair left findings standing: %+v", rep.Findings)
	}
	// The suffix is preserved in a sidecar, and recovery now trusts the
	// truncated journal.
	sidecars, _ := filepath.Glob(path + ".corrupt@*")
	if len(sidecars) != 1 {
		t.Fatalf("sidecars %v, want exactly one", sidecars)
	}
	entries, stats, err := journal.RecoverStats(path)
	if err != nil {
		t.Fatalf("recovery after repair: %v", err)
	}
	if len(entries) != 1 || stats.Corrupt != 0 {
		t.Fatalf("recovered %d entries, %d corrupt; want 1, 0", len(entries), stats.Corrupt)
	}
	// A second scan is clean: repair converged.
	rep, err = Run(Options{State: state})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("post-repair scan not clean: %+v", rep.Findings)
	}
}

// TestFsckRepairsTornTail: an unterminated final line is the ordinary
// crash artifact — truncated without a sidecar.
func TestFsckRepairsTornTail(t *testing.T) {
	state := t.TempDir()
	path := writeJournal(t, state, 2)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"type":"job","da`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Options{State: state, Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings(rep, KindJournalTorn)) != 1 || !rep.Repaired() {
		t.Fatalf("findings: %+v, want one repaired torn tail", rep.Findings)
	}
	if sidecars, _ := filepath.Glob(path + ".corrupt@*"); len(sidecars) != 0 {
		t.Fatalf("torn tail produced sidecars %v; tears carry nothing acknowledged", sidecars)
	}
	entries, _, err := journal.RecoverStats(path)
	if err != nil || len(entries) != 2 {
		t.Fatalf("recovery after repair: %d entries, %v; want 2, nil", len(entries), err)
	}
}

// TestFsckSpoolAndQuarantineBodies: a corrupt spool body moves to the
// quarantine with a .corrupt suffix, a corrupt quarantine body is
// renamed inert, stale staging tmps are removed, and unkeyed names are
// skipped untouched.
func TestFsckSpoolAndQuarantineBodies(t *testing.T) {
	state := t.TempDir()
	writeJournal(t, state, 1)
	spool := t.TempDir()
	qdir := filepath.Join(state, "quarantine")
	if err := os.MkdirAll(qdir, 0o777); err != nil {
		t.Fatal(err)
	}

	good := []byte("post(t0,LAUNCH_ACTIVITY,t1)\n")
	bad := []byte("read(t9,f1)\n")
	for name, body := range map[string][]byte{
		storage.Key(good) + ".trace": good, // intact keyed body
		"music.trace":                bad,  // unkeyed: skipped
		".1234.trace.98765.tmp":      bad,  // stale staging litter
	} {
		if err := os.WriteFile(filepath.Join(spool, name), body, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	// A spool body whose content no longer matches its name, and a
	// quarantined body rotted after the fact.
	corruptName := storage.Key(bad) + ".trace"
	if err := os.WriteFile(filepath.Join(spool, corruptName), []byte("read(t9,f2)\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	qName := storage.Key([]byte("fork(t1,t2)\n")) + ".trace"
	if err := os.WriteFile(filepath.Join(qdir, qName), []byte("fork(t1,t3)\n"), 0o666); err != nil {
		t.Fatal(err)
	}

	rep, err := Run(Options{State: state, Spool: spool})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(findings(rep, KindSpoolCorrupt)); n != 1 {
		t.Fatalf("%d spool-corrupt findings, want 1 (%+v)", n, rep.Findings)
	}
	if n := len(findings(rep, KindQuarantineRotted)); n != 1 {
		t.Fatalf("%d quarantine-corrupt findings, want 1", n)
	}
	if n := len(findings(rep, KindStaleTmp)); n != 1 {
		t.Fatalf("%d stale-tmp findings, want 1", n)
	}
	if rep.SpoolSkipped != 1 {
		t.Fatalf("skipped %d unkeyed files, want 1", rep.SpoolSkipped)
	}

	rep, err = Run(Options{State: state, Spool: spool, Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Repaired() {
		t.Fatalf("repair left findings standing: %+v", rep.Findings)
	}
	if _, err := os.Stat(filepath.Join(qdir, corruptName+".corrupt")); err != nil {
		t.Fatalf("corrupt spool body not moved to quarantine: %v", err)
	}
	if _, err := os.Stat(filepath.Join(qdir, qName+".corrupt")); err != nil {
		t.Fatalf("rotted quarantine body not renamed inert: %v", err)
	}
	if _, err := os.Stat(filepath.Join(spool, ".1234.trace.98765.tmp")); !os.IsNotExist(err) {
		t.Fatalf("stale tmp not removed: %v", err)
	}
	if _, err := os.Stat(filepath.Join(spool, "music.trace")); err != nil {
		t.Fatalf("unkeyed file must be left alone: %v", err)
	}

	rep, err = Run(Options{State: state, Spool: spool})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("post-repair scan not clean: %+v", rep.Findings)
	}
}

// TestFsckReportsAllDamage: unlike recovery, the scanner keeps going
// past the first corrupt record and reports every checksum mismatch.
func TestFsckReportsAllDamage(t *testing.T) {
	state := t.TempDir()
	path := writeJournal(t, state, 4)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rotted := strings.Replace(string(raw), `"n":2`, `"n":6`, 1)
	rotted = strings.Replace(rotted, `"n":4`, `"n":8`, 1)
	if err := os.WriteFile(path, []byte(rotted), 0o666); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Options{State: state})
	if err != nil {
		t.Fatal(err)
	}
	fs := findings(rep, KindJournalCorrupt)
	if len(fs) != 1 {
		t.Fatalf("findings: %+v", rep.Findings)
	}
	if got := strings.Count(fs[0].Detail, "checksum mismatch"); got != 2 {
		t.Fatalf("detail reports %d mismatches, want both: %q", got, fs[0].Detail)
	}
}
