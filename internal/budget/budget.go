// Package budget provides the resource-budget and fault-isolation
// primitives of the hardened analysis pipeline: wall-clock deadlines,
// caps on happens-before graph size and closure work, cooperative
// cancellation via context.Context, and panic isolation at pipeline
// boundaries.
//
// The paper's detector ran "seconds to hours" per trace with graphs up
// to 20 MB (§6); a service analyzing adversarial traces must never hang
// or OOM on one bad input. Every hot loop of the pipeline (the hb
// fixpoint, the race scan, the explorer DFS) polls a Checker, which
// turns an exhausted budget into a structured *Error instead of an
// unbounded computation. Callers then either surface the error with the
// partial results produced so far or degrade to a cheaper detector (see
// core.AnalyzeContext).
package budget

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"
)

// Limits bound one unit of analysis work. The zero value means
// unlimited. Wall combines with any context deadline; the earlier of
// the two wins.
type Limits struct {
	// Wall is the wall-clock budget for the whole unit of work.
	Wall time.Duration
	// MaxGraphNodes caps the happens-before graph size after node
	// merging. The graph's reachability bitsets cost O(nodes²) bits, so
	// this is the primary OOM guard.
	MaxGraphNodes int
	// MaxClosureEdges caps the number of ≼ pairs the fixpoint may
	// record (st plus mt).
	MaxClosureEdges int
	// MaxSequences caps the number of event-sequence prefixes the UI
	// explorer may execute.
	MaxSequences int
}

// IsZero reports whether no limit is set.
func (l Limits) IsZero() bool {
	return l.Wall == 0 && l.MaxGraphNodes == 0 && l.MaxClosureEdges == 0 && l.MaxSequences == 0
}

// Resource names the budget dimension an Error reports against.
type Resource string

// Budgeted resources.
const (
	ResourceWallClock    Resource = "wall-clock"
	ResourceGraphNodes   Resource = "graph-nodes"
	ResourceClosureEdges Resource = "closure-edges"
	ResourceSequences    Resource = "sequences"
	ResourceContext      Resource = "context"
)

// Error is the structured budget/cancellation error of the pipeline. It
// records which stage stopped, which resource ran out, and — for
// countable resources — how far over the limit the work was when it
// stopped. Partial results are returned alongside the error by the
// stage that produced it (see core.AnalyzeContext, explorer
// ExploreContext).
type Error struct {
	// Stage is the pipeline stage that stopped, e.g. "happens-before".
	Stage string
	// Resource is the exhausted budget dimension.
	Resource Resource
	// Limit and Used quantify countable resources; both are zero for
	// wall-clock and context errors.
	Limit, Used int64
	// Cause carries the context error for Resource == ResourceContext.
	Cause error
}

// Error implements error.
func (e *Error) Error() string {
	switch e.Resource {
	case ResourceContext:
		return fmt.Sprintf("budget: %s canceled: %v", e.Stage, e.Cause)
	case ResourceWallClock:
		return fmt.Sprintf("budget: %s exceeded the wall-clock budget", e.Stage)
	default:
		return fmt.Sprintf("budget: %s exceeded the %s budget (%d > %d)",
			e.Stage, e.Resource, e.Used, e.Limit)
	}
}

// Unwrap exposes the context cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Cause }

// Canceled reports whether the error represents an explicit caller
// cancellation (context.Canceled) rather than an exhausted budget.
// Deadline expiry — from Limits.Wall or a context deadline — counts as
// budget exhaustion, which degraded mode may absorb; cancellation
// always propagates.
func (e *Error) Canceled() bool {
	return e.Cause != nil && errors.Is(e.Cause, context.Canceled)
}

// AsError unwraps err to a budget *Error when there is one in its chain.
func AsError(err error) (*Error, bool) {
	var be *Error
	ok := errors.As(err, &be)
	return be, ok
}

// PanicError is a panic captured at a pipeline boundary by Isolate: one
// broken app model or corrupt trace fails its unit of work with this
// typed error instead of crashing the process.
type PanicError struct {
	// Stage is the boundary that recovered the panic.
	Stage string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at recovery time.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("%s: recovered panic: %v", e.Stage, e.Value)
}

// Unwrap exposes an underlying error panic value to errors.Is/As, so a
// panic(&android.ModelError{...}) recovered here still matches
// errors.As(err, &modelErr).
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Isolate runs fn, converting a panic into a *PanicError. It is the
// per-unit-of-work fault boundary used by the evaluation harness, the
// command-line tools, and core.AnalyzeContext.
func Isolate(stage string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Stage: stage, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// checkInterval rate-limits the wall-clock/context poll: Check consults
// the clock once per this many calls, so hot loops can call it per
// iteration at the cost of an increment and a mask.
const checkInterval = 256

// Checker is the cooperative budget monitor one unit of work threads
// through its stages. A nil *Checker is valid and never trips, so
// unbudgeted call paths (hb.Build, race.Detect) pay nothing.
//
// A Checker is not safe for concurrent use; each unit of work owns one.
type Checker struct {
	ctx    context.Context
	limits Limits
	// start carries Go's monotonic clock reading; the wall budget is
	// enforced as time.Since(start) > wall, so a wall-clock jump (NTP
	// step, suspend/resume of the host) in a long-running daemon can
	// neither instantly expire nor extend a job's deadline.
	start   time.Time
	wall    time.Duration
	hasWall bool
	stage   string
	calls   uint32
}

// NewChecker builds a checker for one unit of work. The effective
// deadline is the earlier of ctx's deadline and now+limits.Wall,
// captured once as a monotonic duration from start. A nil result is
// returned when there is nothing to enforce (background context, zero
// limits), keeping the unbudgeted path free.
func NewChecker(ctx context.Context, limits Limits) *Checker {
	if ctx == nil {
		ctx = context.Background()
	}
	c := &Checker{ctx: ctx, limits: limits, start: time.Now()}
	if limits.Wall > 0 {
		c.wall = limits.Wall
		c.hasWall = true
	}
	if d, ok := ctx.Deadline(); ok {
		// Convert the context deadline to a monotonic duration once, at
		// start; a negative remainder means it already expired.
		if remain := d.Sub(c.start); !c.hasWall || remain < c.wall {
			c.wall = remain
			c.hasWall = true
		}
	}
	if !c.hasWall && ctx.Done() == nil && limits.IsZero() {
		return nil
	}
	return c
}

// Active reports whether the checker can ever trip. It is false for a
// nil checker.
func (c *Checker) Active() bool { return c != nil }

// Limits returns the configured limits (zero for a nil checker).
func (c *Checker) Limits() Limits {
	if c == nil {
		return Limits{}
	}
	return c.limits
}

// SetStage labels subsequent errors with the named pipeline stage.
func (c *Checker) SetStage(stage string) {
	if c != nil {
		c.stage = stage
	}
}

// Stage returns the current stage label.
func (c *Checker) Stage() string {
	if c == nil {
		return ""
	}
	return c.stage
}

// Check polls the wall clock and the context, rate-limited so it is
// cheap enough for per-iteration use in hot loops. It returns nil until
// the budget trips, then a *Error.
func (c *Checker) Check() error {
	if c == nil {
		return nil
	}
	c.calls++
	if c.calls&(checkInterval-1) != 0 {
		return nil
	}
	return c.CheckNow()
}

// CheckNow polls the wall clock and the context immediately (stage
// boundaries, chunked scheduler runs).
func (c *Checker) CheckNow() error {
	if c == nil {
		return nil
	}
	select {
	case <-c.ctx.Done():
		cause := c.ctx.Err()
		if errors.Is(cause, context.DeadlineExceeded) {
			return &Error{Stage: c.stage, Resource: ResourceWallClock, Cause: cause}
		}
		return &Error{Stage: c.stage, Resource: ResourceContext, Cause: cause}
	default:
	}
	if c.hasWall && time.Since(c.start) > c.wall {
		return &Error{Stage: c.stage, Resource: ResourceWallClock}
	}
	return nil
}

// Nodes enforces MaxGraphNodes against the given node count.
func (c *Checker) Nodes(used int) error {
	if c == nil || c.limits.MaxGraphNodes <= 0 || used <= c.limits.MaxGraphNodes {
		return nil
	}
	return &Error{Stage: c.stage, Resource: ResourceGraphNodes,
		Limit: int64(c.limits.MaxGraphNodes), Used: int64(used)}
}

// Edges enforces MaxClosureEdges against the given edge count.
func (c *Checker) Edges(used int) error {
	if c == nil || c.limits.MaxClosureEdges <= 0 || used <= c.limits.MaxClosureEdges {
		return nil
	}
	return &Error{Stage: c.stage, Resource: ResourceClosureEdges,
		Limit: int64(c.limits.MaxClosureEdges), Used: int64(used)}
}

// Sequences enforces MaxSequences against the given prefix count.
func (c *Checker) Sequences(used int) error {
	if c == nil || c.limits.MaxSequences <= 0 || used <= c.limits.MaxSequences {
		return nil
	}
	return &Error{Stage: c.stage, Resource: ResourceSequences,
		Limit: int64(c.limits.MaxSequences), Used: int64(used)}
}

// Elapsed returns the time since the checker was created (zero for a
// nil checker).
func (c *Checker) Elapsed() time.Duration {
	if c == nil {
		return 0
	}
	return time.Since(c.start)
}
