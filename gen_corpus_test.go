package droidracer_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"droidracer"
	"droidracer/internal/paper"
	"droidracer/internal/trace"
)

func TestGenCorpus(t *testing.T) {
	if os.Getenv("GEN_CORPUS") == "" {
		t.Skip("set GEN_CORPUS=1 to regenerate")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzStreamVsGraph")
	if err := os.MkdirAll(dir, 0o777); err != nil {
		t.Fatal(err)
	}
	sampler := []trace.Op{
		trace.ThreadInit(0),
		trace.ThreadInit(1), trace.AttachQ(1), trace.LoopOnQ(1),
		trace.Fork(0, 2), trace.ThreadInit(2),
		trace.Post(0, "A", 1),
		trace.PostDelayed(0, "B", 1, 10),
		trace.PostFront(2, "C", 1),
		trace.Begin(1, "A"), trace.Write(1, "x"), trace.Read(1, "y"), trace.End(1, "A"),
		trace.Begin(1, "C"),
		trace.Acquire(1, "m"), trace.Write(1, "y"), trace.Release(1, "m"),
		trace.End(1, "C"),
		trace.Begin(1, "B"), trace.Write(1, "x"), trace.End(1, "B"),
		trace.Acquire(2, "m"), trace.Write(2, "y"), trace.Release(2, "m"),
		trace.Write(2, "x"),
		trace.Join(0, 2),
	}
	seeds := map[string]*droidracer.Trace{
		"figure3":            paper.Figure3(),
		"figure4":            paper.Figure4(),
		"async-rule-sampler": trace.FromOps(sampler),
	}
	for name, tr := range seeds {
		var sb strings.Builder
		if err := droidracer.FormatTrace(&sb, tr); err != nil {
			t.Fatal(err)
		}
		graph, stream, diverged := diffEngines(t, tr)
		t.Logf("%s: graph=%v stream=%v", name, graph, stream)
		if diverged {
			t.Fatalf("%s diverges before check-in", name)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", sb.String())
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o666); err != nil {
			t.Fatal(err)
		}
	}
}
