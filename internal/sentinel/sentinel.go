// Package sentinel is the resource-governance layer of the analysis
// service. The paper's graph-closure engine is O(nodes²) in bitset
// memory, so one adversarial or merely huge trace can OOM-kill a whole
// daemon — destroying every in-flight job despite the WAL, quarantine,
// and breaker machinery, because the breaker only learns from failures
// it survives. This package makes a pathological input cost the fleet
// exactly one quarantine record, never a daemon, through three
// mechanisms layered around the existing pipeline:
//
//   - Cost pre-estimation at admission (Estimate): a cheap line scan of
//     the submitted body predicts the closure's bitset footprint from
//     trace shape. Submissions above a hard ceiling are refused 413
//     before they are ever spooled; above a soft ceiling they are
//     flagged heavy and denied the shared in-process heap.
//
//   - Subprocess isolation (Isolator/WorkerMain): heavy inputs run in a
//     re-exec'd `racedetd -worker` child under RLIMIT_AS + GOMEMLIMIT
//     and a wall watchdog. The parent classifies the child's death
//     (OOM-kill, rlimit, panic, deadline) into a ResourceError whose
//     "resource:" reason feeds the existing quarantine taxonomy.
//
//   - Brownout (Sentinel): a goroutine samples the daemon's own heap
//     against a watermark. Above it, non-heavy work degrades to the
//     pure-MT baseline and heavy work is refused 503 with a Retry-After
//     sourced from the observed recovery time, while /readyz reports
//     "resource" so gateway probers route around the backend until it
//     recovers — the same mechanics as storage-degraded.
//
// Everything is observable (droidracer_sentinel_* series, cost
// estimates vs actuals in events and spans) and deterministic in tests
// via the DROIDRACER_SENTINEL_FAULT hook.
package sentinel

import (
	"errors"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"droidracer/internal/obs"
)

// ErrBrownout is the degradation reason recorded on results produced
// while the daemon was above its memory watermark: non-heavy work is
// not refused during brownout, it runs the cheap pure-MT baseline and
// says so.
var ErrBrownout = errors.New("sentinel: memory brownout, degraded to baseline")

// Config configures the brownout sentinel.
type Config struct {
	// Watermark is the heap-in-use level (bytes) that flips the daemon
	// into brownout. Required: zero disables the sampler entirely.
	Watermark int64
	// Recover is the level brownout lifts at (default 80% of Watermark —
	// the hysteresis gap keeps readiness from flapping at the boundary).
	Recover int64
	// Interval is the sampling period (default 250ms).
	Interval time.Duration
	// MemFn overrides the heap sample for tests. The default reads
	// runtime.MemStats.HeapAlloc: live heap, the number GOGC reasons
	// about, not the OS mapping high-water mark.
	MemFn func() int64
	// Events, when set, receives sentinel.brownout / sentinel.recover
	// lifecycle events.
	Events *slog.Logger
}

// Sentinel samples the daemon's memory pressure and exposes the
// brownout state machine: Normal → Brownout when a sample crosses the
// watermark, Brownout → Normal when one falls below the recovery level.
// All methods are safe on a nil receiver (reporting "no brownout"), so
// callers need not branch on whether governance is configured.
type Sentinel struct {
	cfg  Config
	stop chan struct{}
	done chan struct{}

	mu          sync.Mutex
	brownout    bool
	since       time.Time     // current brownout start
	recoverEWMA time.Duration // smoothed past brownout durations
}

// New builds a sentinel over cfg (nil when cfg.Watermark is zero:
// governance off is represented by the nil receiver).
func New(cfg Config) *Sentinel {
	if cfg.Watermark <= 0 {
		return nil
	}
	if cfg.Recover <= 0 || cfg.Recover >= cfg.Watermark {
		cfg.Recover = cfg.Watermark * 8 / 10
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	if cfg.MemFn == nil {
		cfg.MemFn = func() int64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return int64(ms.HeapAlloc)
		}
	}
	if cfg.Events == nil {
		cfg.Events = obs.Nop()
	}
	return &Sentinel{cfg: cfg}
}

// Start launches the sampling goroutine. Stop ends it.
func (s *Sentinel) Start() {
	if s == nil || s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.cfg.Interval)
		defer t.Stop()
		for {
			s.Sample()
			select {
			case <-s.stop:
				return
			case <-t.C:
			}
		}
	}()
}

// Stop ends the sampling goroutine and waits for it.
func (s *Sentinel) Stop() {
	if s == nil || s.stop == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.stop = nil
}

// Sample takes one pressure reading and advances the state machine. The
// sampler goroutine calls it on every tick; tests call it directly for
// deterministic transitions.
func (s *Sentinel) Sample() {
	if s == nil {
		return
	}
	mem := s.cfg.MemFn()
	if forcedBrownout() {
		mem = s.cfg.Watermark + 1
	}
	memGauge.Set(mem)
	s.mu.Lock()
	var ev string
	var attrs []any
	switch {
	case !s.brownout && mem >= s.cfg.Watermark:
		s.brownout = true
		s.since = time.Now()
		brownoutGauge.Set(1)
		brownoutsTotal.Inc()
		ev = "sentinel.brownout"
		attrs = []any{"heap_bytes", mem, "watermark", s.cfg.Watermark}
	case s.brownout && mem < s.cfg.Recover:
		d := time.Since(s.since)
		s.brownout = false
		if s.recoverEWMA == 0 {
			s.recoverEWMA = d
		} else {
			s.recoverEWMA = time.Duration(0.7*float64(s.recoverEWMA) + 0.3*float64(d))
		}
		brownoutGauge.Set(0)
		ev = "sentinel.recover"
		attrs = []any{"heap_bytes", mem, "brownout_duration", d.String()}
	}
	s.mu.Unlock()
	if ev != "" {
		s.cfg.Events.Info(ev, attrs...)
	}
}

// Brownout reports whether the daemon is above its memory watermark.
func (s *Sentinel) Brownout() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.brownout
}

// RetryAfter is the brownout recovery signal: the expected time until
// this brownout lifts, derived from the smoothed duration of past
// brownouts minus how long this one has already run. Callers clamp it
// into their Retry-After policy; the floor here keeps the hint honest
// (never "retry immediately" while still degraded) and the first-ever
// brownout — no history — answers a conservative default.
func (s *Sentinel) RetryAfter() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.brownout {
		return 0
	}
	expected := s.recoverEWMA
	if expected == 0 {
		expected = 10 * time.Second
	}
	remaining := expected - time.Since(s.since)
	if remaining < time.Second {
		remaining = time.Second
	}
	return remaining
}
