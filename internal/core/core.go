// Package core assembles the DroidRacer analysis pipeline: semantic
// validation of an execution trace (Figure 5), structural annotation,
// happens-before computation (Figures 6–7), and race detection with
// classification (§4.3). It is the single entry point the command-line
// tools, the public API, and the evaluation harness share.
//
// The pipeline is hardened for adversarial inputs: AnalyzeContext
// accepts a context and a Budget, polls them in every hot loop, recovers
// panics into typed errors, and — when the full st/mt analysis exceeds
// its budget — degrades to the linear pure-MT baseline detector so a
// report is always produced.
package core

import (
	"context"
	"errors"
	"fmt"

	"droidracer/internal/baseline"
	"droidracer/internal/budget"
	"droidracer/internal/hb"
	"droidracer/internal/obs"
	"droidracer/internal/race"
	"droidracer/internal/semantics"
	"droidracer/internal/stream"
	"droidracer/internal/trace"
)

// Analysis engine selectors for Options.Engine.
const (
	// EngineGraph is the paper's engine: materialize the happens-before
	// graph, close it transitively, scan access pairs. Memory is
	// O(nodes²); required for -dot, -explain, and trace minimization,
	// which need the graph object.
	EngineGraph = "graph"
	// EngineStream replays the trace once with per-context vector
	// clocks and per-location shadow state — no graph, no closure.
	// Memory is O(ops + contexts²-free clock width); race sets are
	// identical to EngineGraph (CI diffs the two continuously).
	EngineStream = "stream"
)

// NormalizeEngine canonicalizes an engine selector: the empty string
// means EngineGraph. Unknown names are an error listing the choices.
func NormalizeEngine(engine string) (string, error) {
	switch engine {
	case "", EngineGraph:
		return EngineGraph, nil
	case EngineStream:
		return EngineStream, nil
	default:
		return "", fmt.Errorf("unknown analysis engine %q (choices: %s, %s)", engine, EngineGraph, EngineStream)
	}
}

// Budget bounds one analysis: wall-clock deadline, happens-before graph
// size, closure work, and explorer sequences. The zero value means
// unlimited. See the budget package for field semantics.
type Budget = budget.Limits

// Options configure one analysis.
type Options struct {
	// HB selects the happens-before rule set; DefaultOptions uses the
	// paper's full relation.
	HB hb.Config
	// Engine selects the analysis backend: EngineGraph (the default;
	// also selected by "") or EngineStream. Both report identical race
	// sets; they trade differently — the graph engine supports -dot/
	// -explain/minimization and the STOnly ablation, the streaming
	// engine analyzes traces whose closure would not fit in memory.
	Engine string
	// Dedup reports one race per (location, category), the paper's
	// reporting granularity. When false, every racing pair is reported.
	Dedup bool
	// Validate replays the trace under the Figure 5 semantics first and
	// rejects traces that are not valid executions.
	Validate bool
	// DropCancelled removes cancelled posts before analysis (§4.2).
	DropCancelled bool
	// Budget bounds the analysis. The zero value means unlimited.
	Budget Budget
	// DegradeOnBudget falls back to the pure-MT baseline detector when
	// the full analysis exhausts its budget, producing a Degraded result
	// instead of an error. Explicit cancellation (context.Canceled) is
	// never absorbed. When false, budget exhaustion returns the
	// *budget.Error together with the partial Result built so far.
	DegradeOnBudget bool
	// Parallelism shards the happens-before closure and the race scan
	// across this many worker goroutines. 0 or 1 runs both serially —
	// the library default, so embedders opt in explicitly (the CLIs
	// default to GOMAXPROCS). Completed results are byte-identical at
	// any setting: the parallel engines reproduce the serial ones
	// pass for pass (see internal/hb/parallel.go). An explicit
	// HB.Parallelism takes precedence for the closure.
	Parallelism int
}

// DefaultOptions returns the configuration DroidRacer runs with.
func DefaultOptions() Options {
	return Options{
		HB:              hb.DefaultConfig(),
		Dedup:           true,
		Validate:        true,
		DropCancelled:   true,
		DegradeOnBudget: true,
	}
}

// Result is a completed analysis.
type Result struct {
	// Trace is the analyzed trace (after cancellation pruning).
	Trace *trace.Trace
	// Info carries the structural annotations. Nil in degraded results
	// when annotation itself was cut short.
	Info *trace.Info
	// Graph is the happens-before graph. Nil in degraded results: the
	// full graph was abandoned when the budget tripped.
	Graph *hb.Graph
	// Races are the reported data races, classified. In degraded results
	// they come from the pure-MT baseline: single-threaded races are
	// missing and classification is limited to multithreaded/unknown.
	Races []race.Race
	// Stats are the Table 2 statistics of the trace.
	Stats trace.Stats
	// Degraded reports that the full analysis exceeded its budget and
	// the races come from the baseline fallback detector.
	Degraded bool
	// DegradedReason is the budget error that forced the fallback, nil
	// for full results.
	DegradedReason error
	// Phases are the per-phase wall-clock timings of this analysis
	// (validate, annotate, happens-before, race-scan — or stream-replay
	// — and degrade when the fallback ran), in completion order.
	// racedet -phase-timings renders them; they are also mirrored into
	// the process-wide droidracer_phase_duration_seconds histogram.
	Phases []obs.PhaseTiming
	// Engine is the backend that produced Races: EngineGraph or
	// EngineStream (degraded results keep the engine that was asked
	// for; the baseline fallback is reported via Degraded).
	Engine string
}

// Analyze runs the full pipeline on tr without a deadline. See
// AnalyzeContext for budgeted analysis.
func Analyze(tr *trace.Trace, opts Options) (*Result, error) {
	return AnalyzeContext(context.Background(), tr, opts)
}

// AnalyzeContext runs the pipeline under ctx and opts.Budget. Outcomes:
//
//   - Within budget: a full Result, nil error.
//   - Budget exhausted, opts.DegradeOnBudget: a Degraded Result backed
//     by the pure-MT baseline detector, nil error.
//   - Budget exhausted otherwise: the partial Result built so far (its
//     Graph may be nil or under-closed) and a *budget.Error.
//   - ctx canceled: partial Result and a *budget.Error with
//     Canceled() == true — never absorbed by degradation.
//   - Panic in the pipeline or the app model: a *budget.PanicError.
//   - Invalid trace: a plain validation error, as before.
func AnalyzeContext(ctx context.Context, tr *trace.Trace, opts Options) (res *Result, err error) {
	ierr := budget.Isolate("core.Analyze", func() error {
		res, err = analyze(ctx, tr, opts)
		return nil
	})
	if ierr != nil {
		publishAnalysis(nil, ierr)
		return nil, ierr
	}
	publishAnalysis(res, err)
	return res, err
}

// analyze runs the phased pipeline, attaching the per-phase timings to
// whatever result (full, degraded, or partial) comes back.
func analyze(ctx context.Context, tr *trace.Trace, opts Options) (*Result, error) {
	ph := obs.NewPhases()
	// When the request carries a distributed-trace recorder, each phase
	// timing doubles as a trace span. One context lookup per analysis;
	// untraced callers (benchmarks, CLI) pay only a nil check per phase.
	if rec, parent := obs.TraceFromContext(ctx); rec != nil {
		ph.AttachTrace(rec, parent)
	}
	res, err := analyzePhased(ctx, tr, opts, ph)
	if res != nil {
		res.Phases = ph.Timings()
		// Record which backend the caller asked for, even on degraded or
		// partial results; an unknown selector never reaches here.
		res.Engine, _ = NormalizeEngine(opts.Engine)
	}
	return res, err
}

func analyzePhased(ctx context.Context, tr *trace.Trace, opts Options, ph *obs.Phases) (*Result, error) {
	eng, err := NormalizeEngine(opts.Engine)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	ck := budget.NewChecker(ctx, opts.Budget)
	if opts.DropCancelled {
		tr = tr.WithoutCancelled()
	}
	ck.SetStage("validate")
	if opts.Validate {
		sp := ph.Start("validate")
		if err := ck.CheckNow(); err != nil {
			sp.End()
			return degradeOrErr(tr, nil, opts, ck, ph, err)
		}
		i, err := semantics.ValidateInferred(tr)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("core: trace is not a valid execution (op %d): %w", i, err)
		}
	}
	sp := ph.Start("annotate")
	info, err := trace.Analyze(tr)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if eng == EngineStream {
		return analyzeStream(tr, info, opts, ck, ph)
	}
	ck.SetStage("happens-before")
	sp = ph.Start("happens-before")
	hbCfg := opts.HB
	if hbCfg.Parallelism == 0 {
		hbCfg.Parallelism = opts.Parallelism
	}
	g, err := hb.BuildBudgeted(info, hbCfg, ck)
	sp.End()
	if err != nil {
		res := &Result{Trace: tr, Info: info, Graph: g, Stats: trace.ComputeStats(tr, nil)}
		return degradeOrErr(tr, res, opts, ck, ph, err)
	}
	ck.SetStage("race-scan")
	sp = ph.Start("race-scan")
	d := race.NewDetector(g)
	d.Parallelism = opts.Parallelism
	var races []race.Race
	if opts.Dedup {
		races, err = d.DetectDedupedBudgeted(ck)
	} else {
		races, err = d.DetectBudgeted(ck)
	}
	sp.End()
	res := &Result{
		Trace: tr,
		Info:  info,
		Graph: g,
		Races: races,
		Stats: trace.ComputeStats(tr, nil),
	}
	if err != nil {
		return degradeOrErr(tr, res, opts, ck, ph, err)
	}
	return res, nil
}

// analyzeStream is the EngineStream pipeline tail: one budgeted clock
// replay instead of graph construction plus the quadratic pair scan.
// Result.Graph stays nil — graph-only features (-dot, -explain, trace
// minimization) require EngineGraph and report that themselves. The
// STOnly ablation has no streaming equivalent (its truncated relation
// is not transitive, and a vector clock is inherently transitive), so
// that configuration is a hard error rather than a budget degrade.
func analyzeStream(tr *trace.Trace, info *trace.Info, opts Options, ck *budget.Checker, ph *obs.Phases) (*Result, error) {
	ck.SetStage("stream-replay")
	sp := ph.Start("stream-replay")
	out, err := stream.Run(info, stream.Options{HB: opts.HB, Dedup: opts.Dedup}, ck)
	sp.End()
	res := &Result{Trace: tr, Info: info, Stats: trace.ComputeStats(tr, nil)}
	if out != nil {
		res.Races = out.Races
	}
	if err != nil {
		if errors.Is(err, stream.ErrSTOnly) {
			return nil, fmt.Errorf("core: %w", err)
		}
		return degradeOrErr(tr, res, opts, ck, ph, err)
	}
	return res, nil
}

// AnalyzeBaseline runs only the linear pure-MT baseline detector on tr,
// producing the same Degraded result shape that budget exhaustion
// degrades to. The jobs supervisor routes inputs here once their circuit
// breaker opens: an input that repeatedly paniced or timed out under the
// full analysis still yields a report, at baseline fidelity, without
// re-entering the code that failed. The reason is recorded as
// DegradedReason.
func AnalyzeBaseline(tr *trace.Trace, opts Options, reason error) (res *Result, err error) {
	// Even the fallback is panic-isolated: an input bad enough to trip
	// the breaker must not get a second chance to crash the process.
	ierr := budget.Isolate("core.AnalyzeBaseline", func() error {
		if opts.DropCancelled {
			tr = tr.WithoutCancelled()
		}
		ph := obs.NewPhases()
		res = degrade(tr, nil, ph, reason)
		res.Phases = ph.Timings()
		return nil
	})
	if ierr != nil {
		publishAnalysis(nil, ierr)
		return nil, ierr
	}
	publishAnalysis(res, nil)
	return res, nil
}

// degradeOrErr decides what an exhausted budget becomes: a degraded
// baseline-backed result, or the partial result plus the budget error.
// Explicit cancellation always propagates. The partial result is never
// nil — a budget that trips before any stage produced output (e.g.
// during validation) still hands back the pruned trace and its stats,
// so downstream reporting always has a row to render.
func degradeOrErr(tr *trace.Trace, partial *Result, opts Options, ck *budget.Checker, ph *obs.Phases, err error) (*Result, error) {
	if be, ok := budget.AsError(err); ok && opts.DegradeOnBudget && !be.Canceled() {
		return degrade(tr, partial, ph, err), nil
	}
	if partial == nil {
		partial = &Result{Trace: tr, Stats: trace.ComputeStats(tr, nil)}
	}
	return partial, err
}

// degrade produces the fallback result: races from the linear pure-MT
// baseline detector, which needs no happens-before graph and no budget.
func degrade(tr *trace.Trace, partial *Result, ph *obs.Phases, reason error) *Result {
	sp := ph.Start("degrade")
	defer sp.End()
	res := partial
	if res == nil {
		res = &Result{Trace: tr, Stats: trace.ComputeStats(tr, nil)}
	}
	res.Graph = nil
	res.Races = racesFromFindings(tr, baseline.NewPureMT().Detect(tr))
	res.Degraded = true
	res.DegradedReason = reason
	return res
}

// racesFromFindings converts baseline findings into the report's race
// representation. Baseline detectors have no post-chain information, so
// classification is limited: accesses on two threads are multithreaded,
// anything else is unknown.
func racesFromFindings(tr *trace.Trace, fs []baseline.Finding) []race.Race {
	races := make([]race.Race, 0, len(fs))
	for _, f := range fs {
		cat := race.Unknown
		if tr.Op(f.First).Thread != tr.Op(f.Second).Thread {
			cat = race.Multithreaded
		}
		races = append(races, race.Race{First: f.First, Second: f.Second, Loc: f.Loc, Category: cat})
	}
	return races
}
