package trace

import (
	"strings"
	"testing"
)

// figureTrace is the Figure 3 trace of the paper, kept local to avoid an
// import cycle with internal/paper (which imports this package).
func figureTrace() *Trace {
	return FromOps([]Op{
		ThreadInit(1),                 // 1
		AttachQ(1),                    // 2
		LoopOnQ(1),                    // 3
		Enable(1, "LAUNCH_ACTIVITY"),  // 4
		Post(0, "LAUNCH_ACTIVITY", 1), // 5
		Begin(1, "LAUNCH_ACTIVITY"),   // 6
		Write(1, "DwFileAct-obj"),     // 7
		Fork(1, 2),                    // 8
		Enable(1, "onDestroy"),        // 9
		End(1, "LAUNCH_ACTIVITY"),     // 10
		ThreadInit(2),                 // 11
		Read(2, "DwFileAct-obj"),      // 12
		Post(2, "onPostExecute", 1),   // 13
		ThreadExit(2),                 // 14
		Begin(1, "onPostExecute"),     // 15
		Read(1, "DwFileAct-obj"),      // 16
		Enable(1, "onPlayClick"),      // 17
		End(1, "onPostExecute"),       // 18
		Post(1, "onPlayClick", 1),     // 19
		Begin(1, "onPlayClick"),       // 20
		Enable(1, "onPause"),          // 21
		End(1, "onPlayClick"),         // 22
		Post(0, "onPause", 1),         // 23
	})
}

func TestAnalyzeFigure3(t *testing.T) {
	in, err := Analyze(figureTrace())
	if err != nil {
		t.Fatal(err)
	}
	if got := in.LoopIdx(1); got != 2 {
		t.Errorf("LoopIdx(t1) = %d, want 2", got)
	}
	if got := in.LoopIdx(2); got != -1 {
		t.Errorf("LoopIdx(t2) = %d, want -1", got)
	}
	if !in.HasQueue(1) || in.HasQueue(0) || in.HasQueue(2) {
		t.Error("HasQueue wrong: only t1 has a queue")
	}
	// Operation 7 (write) runs inside LAUNCH_ACTIVITY; op 12 (read on t2)
	// runs outside any task; op 16 runs inside onPostExecute.
	if got := in.Task(6); got != "LAUNCH_ACTIVITY" {
		t.Errorf("Task(op7) = %q", got)
	}
	if got := in.Task(11); got != "" {
		t.Errorf("Task(op12) = %q, want none", got)
	}
	if got := in.Task(14); got != "onPostExecute" {
		t.Errorf("Task(op15=begin) = %q, want its own task", got)
	}
	if got := in.Task(17); got != "onPostExecute" {
		t.Errorf("Task(op18=end) = %q, want its own task", got)
	}
	if got := in.BeginIdx("onPostExecute"); got != 14 {
		t.Errorf("BeginIdx(onPostExecute) = %d, want 14", got)
	}
	if got := in.EndIdx("onPostExecute"); got != 17 {
		t.Errorf("EndIdx = %d, want 17", got)
	}
	if got := in.PostIdx("onPostExecute"); got != 12 {
		t.Errorf("PostIdx = %d, want 12", got)
	}
	if got := in.EnableIdx("onPlayClick"); got != 16 {
		t.Errorf("EnableIdx(onPlayClick) = %d, want 16", got)
	}
	if got := in.EnableIdx("onPostExecute"); got != -1 {
		t.Errorf("EnableIdx(onPostExecute) = %d, want -1", got)
	}
	// onPause is posted but never begins in the partial trace.
	if got := in.BeginIdx("onPause"); got != -1 {
		t.Errorf("BeginIdx(onPause) = %d, want -1", got)
	}
	// Thread order of first appearance: t1, t0, t2.
	ths := in.Threads()
	if len(ths) != 3 || ths[0] != 1 || ths[1] != 0 || ths[2] != 2 {
		t.Errorf("Threads() = %v", ths)
	}
}

func TestPostChain(t *testing.T) {
	in, err := Analyze(figureTrace())
	if err != nil {
		t.Fatal(err)
	}
	// Op 16 (read in onPostExecute): its task was posted by op 13, which
	// executes on t2 outside any task, so the chain is just [12].
	chain := in.PostChain(15)
	if len(chain) != 1 || chain[0] != 12 {
		t.Errorf("PostChain(op16) = %v, want [12]", chain)
	}
	// Op 12 (read on t2, outside any task): empty chain.
	if got := in.PostChain(11); len(got) != 0 {
		t.Errorf("PostChain(op12) = %v, want empty", got)
	}
	// Op 21 (enable in onPlayClick): onPlayClick posted by op 19, which
	// runs inside onPlayClick? No — op 19 runs on t1 between tasks, outside
	// any task, so the chain is just [18].
	chain = in.PostChain(20)
	if len(chain) != 1 || chain[0] != 18 {
		t.Errorf("PostChain(op21) = %v, want [18]", chain)
	}
}

func TestPostChainNested(t *testing.T) {
	// a posts b from inside a; b posts c from inside b. chain of an op in c
	// is [post(b)? ...]: the posts of b and c.
	tr := FromOps([]Op{
		ThreadInit(1),
		AttachQ(1),
		LoopOnQ(1),
		Post(0, "a", 1),
		Begin(1, "a"),
		Post(1, "b", 1),
		End(1, "a"),
		Begin(1, "b"),
		Post(1, "c", 1),
		End(1, "b"),
		Begin(1, "c"),
		Read(1, "x"),
		End(1, "c"),
	})
	in, err := Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	chain := in.PostChain(11) // the read inside c
	// post(a)=3 runs outside tasks; post(b)=5 inside a; post(c)=8 inside b.
	want := []int{3, 5, 8}
	if len(chain) != len(want) {
		t.Fatalf("chain = %v, want %v", chain, want)
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("chain = %v, want %v", chain, want)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cases := []struct {
		name string
		ops  []Op
		want string
	}{
		{
			"begin-before-loop",
			[]Op{ThreadInit(1), AttachQ(1), Post(0, "p", 1), Begin(1, "p")},
			"begin before loopOnQ",
		},
		{
			"begin-without-post",
			[]Op{ThreadInit(1), AttachQ(1), LoopOnQ(1), Begin(1, "p")},
			"begin without post",
		},
		{
			"double-begin",
			[]Op{ThreadInit(1), AttachQ(1), LoopOnQ(1), Post(0, "p", 1), Begin(1, "p"), End(1, "p"), Begin(1, "p")},
			"began twice",
		},
		{
			"nested-begin",
			[]Op{ThreadInit(1), AttachQ(1), LoopOnQ(1), Post(0, "p", 1), Post(0, "q", 1), Begin(1, "p"), Begin(1, "q")},
			"still running",
		},
		{
			"end-mismatch",
			[]Op{ThreadInit(1), AttachQ(1), LoopOnQ(1), Post(0, "p", 1), Begin(1, "p"), End(1, "q")},
			"end does not match",
		},
		{
			"double-post",
			[]Op{ThreadInit(1), AttachQ(1), LoopOnQ(1), Post(0, "p", 1), Post(0, "p", 1)},
			"posted twice",
		},
		{
			"double-attach",
			[]Op{ThreadInit(1), AttachQ(1), AttachQ(1)},
			"already has a queue",
		},
		{
			"loop-without-attach",
			[]Op{ThreadInit(1), LoopOnQ(1)},
			"loopOnQ without attachQ",
		},
		{
			"double-loop",
			[]Op{ThreadInit(1), AttachQ(1), LoopOnQ(1), LoopOnQ(1)},
			"already loops",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Analyze(FromOps(c.ops))
			if err == nil {
				t.Fatal("no error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}
