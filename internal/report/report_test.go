package report

import (
	"strings"
	"testing"

	"droidracer/internal/apps"
	"droidracer/internal/baseline"
	"droidracer/internal/eval"
)

// result runs one small app through the evaluation pipeline.
func result(t *testing.T, name string) *eval.AppResult {
	t.Helper()
	app, err := apps.New(name)
	if err != nil {
		t.Fatal(err)
	}
	r, err := eval.RunApp(app)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTableAlignment(t *testing.T) {
	tb := &table{header: []string{"App", "N"}}
	tb.addRow("short", "1")
	tb.addRow("a much longer name", "12345")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// All rows share the same width.
	w := len(lines[0])
	for _, l := range lines[2:] {
		if len(l) != w {
			t.Errorf("ragged table:\n%s", out)
		}
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("missing separator:\n%s", out)
	}
}

func TestTable2Rendering(t *testing.T) {
	rs := []*eval.AppResult{result(t, "Aard Dictionary")}
	out := Table2(rs)
	for _, want := range []string{"Table 2", "Aard Dictionary", "/1355", "/189", "2/2", "1/1", "/58"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2SkipsUnknownApps(t *testing.T) {
	rs := []*eval.AppResult{result(t, "Paper Music Player")}
	out := Table2(rs)
	if strings.Contains(out, "Paper Music Player") {
		t.Errorf("apps without a published row should be skipped:\n%s", out)
	}
}

func TestTable3Rendering(t *testing.T) {
	rs := []*eval.AppResult{result(t, "Aard Dictionary")}
	out := Table3(rs)
	for _, want := range []string{"Table 3", "1(1)", "(paper)", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 output missing %q:\n%s", want, out)
		}
	}
}

func TestPerfRendering(t *testing.T) {
	rs := []*eval.AppResult{result(t, "Aard Dictionary")}
	out := Perf(rs)
	for _, want := range []string{"Node-merging", "average ratio", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Perf output missing %q:\n%s", want, out)
		}
	}
}

func TestBaselinesRendering(t *testing.T) {
	rs := []*eval.AppResult{result(t, "Aard Dictionary")}
	out := Baselines(rs, baseline.All())
	for _, want := range []string{"pure-mt-hb", "async-as-threads", "event-only", "eraser-lockset", "Agree", "Missed"} {
		if !strings.Contains(out, want) {
			t.Errorf("Baselines output missing %q:\n%s", want, out)
		}
	}
}
