package gateway

// Trace-propagation chaos tests: a client's traceparent must survive a
// gateway failover — dead home backend, second forward to the peer —
// and a duplicate submission carrying a different traceparent, ending
// up as the trace_id on the one journal record the fleet writes.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"droidracer/internal/core"
	"droidracer/internal/flood"
	"droidracer/internal/jobs"
	"droidracer/internal/journal"
	"droidracer/internal/obs"
	"droidracer/internal/report"
	"droidracer/internal/server"
)

// inProcessBackend is a miniature racedetd running inside the test
// process: real journal, pool, and ingestion server, so its spans land
// in the process span store and its journal can be read after the job
// finishes.
type inProcessBackend struct {
	dir  string
	pool *jobs.Pool
	srv  *server.Server
	http *http.Server
	url  string
}

func startBackend(t *testing.T, dir string) *inProcessBackend {
	t.Helper()
	spool := filepath.Join(dir, "spool")
	state := filepath.Join(dir, "state")
	for _, d := range []string{spool, state} {
		if err := os.MkdirAll(d, 0o777); err != nil {
			t.Fatal(err)
		}
	}
	w, err := journal.Create(filepath.Join(state, "daemon.journal"))
	if err != nil {
		t.Fatal(err)
	}
	b := &inProcessBackend{dir: dir}
	b.pool = jobs.NewPool(jobs.Config{
		Workers:    1,
		QueueDepth: 16,
		Journal:    w,
		Quarantine: &jobs.Quarantine{Dir: filepath.Join(state, "quarantine")},
		OnFinish: func(out report.Outcome) {
			if s := b.srv; s != nil {
				s.JobFinished(out)
			}
		},
	})
	b.srv = server.New(server.Config{
		Pool:        b.pool,
		Spool:       spool,
		Analyze:     core.DefaultOptions(),
		Workers:     1,
		Events:      obs.Nop(),
		Rate:        10000,
		Burst:       10000,
		MaxInflight: 256,
	})
	srv, addr, err := b.srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b.http, b.url = srv, "http://"+addr
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		b.pool.Shutdown(ctx)
	})
	return b
}

// journalTraceID returns the trace_id of the single "job" journal
// record for name on this backend, failing on zero or multiple records.
func (b *inProcessBackend) journalTraceID(t *testing.T, name string) string {
	t.Helper()
	entries, err := journal.Recover(filepath.Join(b.dir, "state", "daemon.journal"))
	if err != nil {
		t.Fatal(err)
	}
	var found []jobs.JobEntry
	for _, e := range entries {
		if e.Type != "job" {
			continue
		}
		var je jobs.JobEntry
		if err := e.Decode(&je); err != nil {
			t.Fatal(err)
		}
		if je.Name == name {
			found = append(found, je)
		}
	}
	if len(found) != 1 {
		t.Fatalf("%d journal records for %s, want exactly 1: %+v", len(found), name, found)
	}
	return found[0].TraceID
}

// deadBackend is a backend that passes health probes but kills every
// submission mid-flight: /v1/jobs hijacks the connection and closes it,
// which the gateway sees as an in-doubt transport error — the precise
// shape of a backend SIGKILLed between spooling and answering.
func deadBackend(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v1/reconcile", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(server.ReconcileResponse{})
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, _ *http.Request) {
		conn, _, err := w.(http.Hijacker).Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		conn.Close()
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// homedBody returns a corpus body whose consistent-hash home is the
// given backend, so the failover walk deterministically starts at the
// dead one.
func homedBody(t *testing.T, g *Gateway, home string) []byte {
	t.Helper()
	corpus, err := flood.BuildCorpus([]string{"Music Player", "Aard Dictionary"}, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, body := range corpus {
		if g.ring.Order(server.IdempotencyKey(body))[0] == home {
			return body
		}
	}
	t.Fatal("no corpus body homes to the dead backend")
	return nil
}

// TestGatewayFailoverTracePropagation drives one traced submission into
// a two-backend fleet whose home backend dies mid-forward, and asserts
// the full tentpole chain: the surviving backend's reply and journal
// record carry the client's original trace ID, and the committed trace
// holds the gateway span, a failed and a successful forward with
// distinct backends, and every analysis-phase span.
func TestGatewayFailoverTracePropagation(t *testing.T) {
	dead := deadBackend(t)
	live := startBackend(t, t.TempDir())

	g, err := New(Config{
		Backends:       []string{dead.URL, live.url},
		ProbeInterval:  20 * time.Millisecond,
		ProbeTimeout:   2 * time.Second,
		EjectThreshold: 100, // keep the dead backend in routing: every walk must hit it first
		Seed:           1,
		Events:         obs.Nop(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g.StartProbing(ctx)
	waitLive(t, g, 2, "startup")

	body := homedBody(t, g, dead.URL)
	key := server.IdempotencyKey(body)

	// The client side: mint a traceparent exactly as `racedet -submit`
	// does and send it with the submission.
	sc := obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID()}
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body))
	req.Header.Set(obs.TraceparentHeader, sc.Traceparent())
	rw := httptest.NewRecorder()
	g.Handler().ServeHTTP(rw, req)
	if rw.Code != http.StatusAccepted {
		t.Fatalf("failover submit = %d, want 202\n%s", rw.Code, rw.Body.String())
	}
	var resp server.SubmitResponse
	if err := json.NewDecoder(rw.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Job != key {
		t.Fatalf("job %s, want %s", resp.Job, key)
	}
	if resp.TraceID != sc.TraceID {
		t.Fatalf("accepted reply trace %q, want the client's %q", resp.TraceID, sc.TraceID)
	}

	// Wait for the analysis to finish so the phase spans commit and the
	// journal record lands.
	name := key + ".trace"
	deadline := time.Now().Add(30 * time.Second)
	cl := server.Client{BaseURL: live.url}
	for {
		st, err := cl.Status(ctx, key)
		if err == nil && st.Status == server.StatusDone {
			if st.TraceID != sc.TraceID {
				t.Fatalf("done status trace %q, want %q", st.TraceID, sc.TraceID)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("failed-over job never completed")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The journal record on the surviving backend names the client's
	// trace.
	if got := live.journalTraceID(t, name); got != sc.TraceID {
		t.Fatalf("journal trace_id %q, want the client's %q", got, sc.TraceID)
	}

	// The committed trace (gateway and backend share this process's span
	// store) holds the whole story.
	spans := obs.Traces().Trace(sc.TraceID)
	if spans == nil {
		t.Fatal("trace not committed to the span store")
	}
	var sawGateway, sawServer, sawFailed, sawOK bool
	forwardBackends := make(map[string]bool)
	phases := make(map[string]bool)
	for _, sp := range spans {
		switch sp.Name {
		case "gateway.submit":
			sawGateway = true
		case "server.submit":
			sawServer = true
		case "gateway.forward":
			forwardBackends[sp.Attrs["backend"]] = true
			switch sp.Attrs["outcome"] {
			case "failed":
				sawFailed = true
				if sp.Err == "" {
					t.Error("failed forward span has no error")
				}
			case "ok":
				sawOK = true
			}
		}
		if len(sp.Name) > 6 && sp.Name[:6] == "phase." {
			phases[sp.Name] = true
		}
	}
	if !sawGateway || !sawServer {
		t.Fatalf("missing gateway.submit/server.submit spans: %+v", spanNames(spans))
	}
	if !sawFailed || !sawOK || len(forwardBackends) != 2 {
		t.Fatalf("want one failed and one ok forward across 2 backends, got %+v", spanNames(spans))
	}
	for _, want := range []string{"phase.parse", "phase.validate", "phase.annotate", "phase.happens-before", "phase.race-scan"} {
		if !phases[want] {
			t.Errorf("missing %s span; phases seen: %v", want, phases)
		}
	}
}

// TestDuplicateCoalescingKeepsOriginalTrace holds a single-worker pool
// busy, submits a job under trace A, then the same body under trace B:
// the duplicate coalesces onto the in-flight work and the journal
// record keeps A — the trace that actually analyzed the input.
func TestDuplicateCoalescingKeepsOriginalTrace(t *testing.T) {
	b := startBackend(t, t.TempDir())

	corpus, err := flood.BuildCorpus([]string{"Music Player"}, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	body := corpus[0]
	key := server.IdempotencyKey(body)

	scA := obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID()}
	scB := obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID()}

	submit := func(sc obs.SpanContext) *server.SubmitResponse {
		req, err := http.NewRequest(http.MethodPost, b.url+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(obs.TraceparentHeader, sc.Traceparent())
		httpResp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer httpResp.Body.Close()
		var resp server.SubmitResponse
		if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		return &resp
	}

	first := submit(scA)
	if first.TraceID != scA.TraceID {
		t.Fatalf("first submission trace %q, want %q", first.TraceID, scA.TraceID)
	}
	// Whether the duplicate coalesces onto pending work or replays a
	// just-finished result, the answer must name trace A — the analysis
	// that owns the journal record — never B.
	second := submit(scB)
	if second.TraceID != scA.TraceID {
		t.Fatalf("duplicate submission trace %q, want the original %q (status %s)",
			second.TraceID, scA.TraceID, second.Status)
	}

	deadline := time.Now().Add(30 * time.Second)
	cl := server.Client{BaseURL: b.url}
	for {
		st, err := cl.Status(context.Background(), key)
		if err == nil && st.Status == server.StatusDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never completed")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := b.journalTraceID(t, key+".trace"); got != scA.TraceID {
		t.Fatalf("journal trace_id %q, want the original submission's %q", got, scA.TraceID)
	}
}

// spanNames summarizes spans for failure messages.
func spanNames(spans []obs.TraceSpan) []string {
	out := make([]string, 0, len(spans))
	for _, sp := range spans {
		n := sp.Name
		if b := sp.Attrs["backend"]; b != "" {
			n += "(" + b + " " + sp.Attrs["outcome"] + ")"
		}
		out = append(out, n)
	}
	return out
}
