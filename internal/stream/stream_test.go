package stream

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"droidracer/internal/apps"
	"droidracer/internal/explorer"
	"droidracer/internal/hb"
	"droidracer/internal/paper"
	"droidracer/internal/race"
	"droidracer/internal/trace"
	"droidracer/internal/vc"
)

func analyze(t testing.TB, tr *trace.Trace) *trace.Info {
	t.Helper()
	info, err := trace.Analyze(tr)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return info
}

func runStream(t testing.TB, info *trace.Info, cfg hb.Config, dedup bool) *Outcome {
	t.Helper()
	out, err := Run(info, Options{HB: cfg, Dedup: dedup, RecordClocks: true}, nil)
	if err != nil {
		t.Fatalf("stream.Run: %v", err)
	}
	return out
}

func graphRaces(t testing.TB, info *trace.Info, cfg hb.Config, dedup bool) []race.Race {
	t.Helper()
	g := hb.Build(info, cfg)
	d := race.NewDetector(g)
	if dedup {
		return d.DetectDeduped()
	}
	return d.Detect()
}

// dedupRaces derives the deduplicated set from the full sorted race list
// the way DetectDeduped does — first race per (location, category) — so
// comparisons against both reporting modes cost one graph build.
func dedupRaces(all []race.Race) []race.Race {
	type key struct {
		loc trace.Loc
		cat race.Category
	}
	seen := make(map[key]bool)
	var out []race.Race
	for _, r := range all {
		k := key{r.Loc, r.Category}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

// diffRaces compares two race sets; both are sorted by (First, Second).
func diffRaces(t *testing.T, want, got []race.Race) {
	t.Helper()
	if len(want) == 0 && len(got) == 0 {
		return
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("race sets diverge:\n graph:  %v\n stream: %v", want, got)
	}
}

// queriedPairs compares stream ordering against graph ordering for every
// pair of operations race analysis can query: two accesses, or two
// posts (the classifier's oracle). The engines intentionally differ on
// pairs outside these classes (e.g. a same-thread fork→init base mt
// edge, which no race query ever reads).
func queriedPairs(t *testing.T, info *trace.Info, g *hb.Graph, out *Outcome) {
	t.Helper()
	tr := info.Trace()
	var acc, posts []int
	for i, op := range tr.Ops() {
		switch {
		case op.Kind.IsAccess():
			acc = append(acc, i)
		case op.Kind == trace.OpPost && info.BeginIdx(op.Task) >= 0:
			posts = append(posts, i)
		}
	}
	check := func(idxs []int, kind string) {
		// The exhaustive sweep is quadratic; cap it so representative
		// traces with tens of thousands of accesses stay tractable. The
		// race-set diff still covers those in full.
		const maxClass = 2000
		if len(idxs) > maxClass {
			idxs = idxs[:maxClass]
		}
		for _, i := range idxs {
			for _, j := range idxs {
				if gw, sw := g.OrderedLE(i, j), out.OrderedLE(i, j); gw != sw {
					t.Errorf("%s pair (%d,%d): graph=%v stream=%v", kind, i, j, gw, sw)
				}
			}
		}
	}
	check(acc, "access")
	check(posts, "post")
}

// ablations are the configuration points the streaming engine supports;
// STOnly is excluded by contract (ErrSTOnly).
func ablations() map[string]hb.Config {
	def := hb.DefaultConfig()
	mk := func(mut func(*hb.Config)) hb.Config {
		c := def
		mut(&c)
		return c
	}
	return map[string]hb.Config{
		"default":         def,
		"no-merge":        mk(func(c *hb.Config) { c.MergeAccesses = false }),
		"no-enable":       mk(func(c *hb.Config) { c.EnableEdges = false }),
		"no-fifo":         mk(func(c *hb.Config) { c.FIFO = false }),
		"no-nopre":        mk(func(c *hb.Config) { c.NoPre = false }),
		"no-task-rules":   mk(func(c *hb.Config) { c.FIFO = false; c.NoPre = false }),
		"naive":           mk(func(c *hb.Config) { c.Naive = true }),
		"whole-thread-po": mk(func(c *hb.Config) { c.WholeThreadPO = true }),
	}
}

func TestStreamMatchesGraphOnFigures(t *testing.T) {
	for name, tr := range map[string]*trace.Trace{
		"figure3": paper.Figure3(),
		"figure4": paper.Figure4(),
	} {
		info := analyze(t, tr)
		for cfgName, cfg := range ablations() {
			for _, dedup := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/%s/dedup=%v", name, cfgName, dedup), func(t *testing.T) {
					out := runStream(t, info, cfg, dedup)
					diffRaces(t, graphRaces(t, info, cfg, dedup), out.Races)
				})
			}
		}
	}
}

func TestStreamFigure4Races(t *testing.T) {
	// The paper reports exactly the (12, 21) and (16, 21) read/write
	// races on Figure 4; the streaming engine must find the same pairs.
	info := analyze(t, paper.Figure4())
	out := runStream(t, info, hb.DefaultConfig(), false)
	want := [][2]int{
		{paper.Idx(12), paper.Idx(21)},
		{paper.Idx(16), paper.Idx(21)},
	}
	if len(out.Races) != len(want) {
		t.Fatalf("got %d races %v, want %d", len(out.Races), out.Races, len(want))
	}
	for k, r := range out.Races {
		if r.First != want[k][0] || r.Second != want[k][1] {
			t.Errorf("race %d = (%d,%d), want (%d,%d)", k, r.First, r.Second, want[k][0], want[k][1])
		}
	}
}

func TestStreamMatchesGraphOnExplorerTraces(t *testing.T) {
	names := apps.Names()
	if testing.Short() {
		names = names[:3]
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			app, err := apps.New(name)
			if err != nil {
				t.Fatal(err)
			}
			test, err := apps.RepresentativeTest(app)
			if err != nil {
				t.Fatal(err)
			}
			info := analyze(t, test.Trace)
			cfg := hb.DefaultConfig()
			g := hb.Build(info, cfg)
			out := runStream(t, info, cfg, true)
			diffRaces(t, race.NewDetector(g).DetectDeduped(), out.Races)
			queriedPairs(t, info, g, out)
		})
	}
}

func TestStreamMatchesGraphOnRandomTraces(t *testing.T) {
	runs := 6
	if testing.Short() {
		runs = 2
	}
	// Traces above this size only run the default configuration: one
	// graph build on a large trace costs seconds, and the small traces
	// already exercise every ablation.
	const fullMatrixOps = 6000
	for _, name := range []string{"Aard Dictionary", "Music Player", "K-9 Mail"} {
		app, err := apps.New(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := explorer.RandomExplore(apps.Factory(app), explorer.RandomOptions{
			Events: 6, Runs: runs, Seed: 20260808,
		})
		if err != nil {
			t.Fatal(err)
		}
		for ti := range res.Tests {
			info := analyze(t, res.Tests[ti].Trace)
			cfgs := ablations()
			if len(res.Tests[ti].Trace.Ops()) > fullMatrixOps {
				cfgs = map[string]hb.Config{"default": hb.DefaultConfig()}
			}
			for cfgName, cfg := range cfgs {
				// One graph build answers both reporting modes.
				all := graphRaces(t, info, cfg, false)
				for _, dedup := range []bool{false, true} {
					out := runStream(t, info, cfg, dedup)
					want := all
					if dedup {
						want = dedupRaces(all)
					}
					if !reflect.DeepEqual(want, out.Races) && (len(want) > 0 || len(out.Races) > 0) {
						t.Errorf("%s test %d %s dedup=%v:\n graph:  %v\n stream: %v",
							name, ti, cfgName, dedup, want, out.Races)
					}
				}
			}
		}
	}
}

func TestStreamRejectsSTOnly(t *testing.T) {
	info := analyze(t, paper.Figure3())
	cfg := hb.DefaultConfig()
	cfg.STOnly = true
	if _, err := Run(info, Options{HB: cfg}, nil); err != ErrSTOnly {
		t.Fatalf("err = %v, want ErrSTOnly", err)
	}
}

// TestRuleTransfers exercises each async rule as a clock transfer
// against hand-computed ordering facts. Each case lists the op pairs
// (by trace index) that must be ordered and pairs that must not be.
func TestRuleTransfers(t *testing.T) {
	type pair struct{ a, b int }
	cases := []struct {
		name      string
		ops       []trace.Op
		ordered   []pair
		unordered []pair
	}{
		{
			// POST-ST: everything before the post happens before the
			// task body; a later same-looper access without an ordering
			// rule stays concurrent with a pre-post access only when on
			// another queue-less thread.
			name: "post",
			ops: []trace.Op{
				trace.ThreadInit(1), // 0
				trace.AttachQ(1),    // 1
				trace.LoopOnQ(1),    // 2
				trace.ThreadInit(2), // 3
				trace.Write(2, "x"), // 4
				trace.Post(2, "p", 1),
				trace.Begin(1, "p"),    // 6
				trace.Write(1, "x"),    // 7
				trace.End(1, "p"),      // 8
				trace.ThreadExit(2),    // 9
			},
			ordered:   []pair{{4, 7}, {5, 6}, {2, 6}},
			unordered: []pair{{7, 9}},
		},
		{
			// FIFO: two plain posts to one looper from one thread are
			// dispatched in post order, so end(p1) ≼ begin(p2) and the
			// task bodies are ordered.
			name: "fifo",
			ops: []trace.Op{
				trace.ThreadInit(1),   // 0
				trace.AttachQ(1),      // 1
				trace.LoopOnQ(1),      // 2
				trace.ThreadInit(2),   // 3
				trace.Post(2, "a", 1), // 4
				trace.Post(2, "b", 1), // 5
				trace.Begin(1, "a"),   // 6
				trace.Write(1, "x"),   // 7
				trace.End(1, "a"),     // 8
				trace.Begin(1, "b"),   // 9
				trace.Write(1, "x"),   // 10
				trace.End(1, "b"),     // 11
			},
			ordered:   []pair{{8, 9}, {7, 10}, {4, 5}},
			unordered: []pair{{4, 3}},
		},
		{
			// Delayed posts: a delayed post does not FIFO-order ahead of
			// a plain one, so the task bodies race; two delayed posts
			// with ascending delays are ordered.
			name: "delayed-post",
			ops: []trace.Op{
				trace.ThreadInit(1),                  // 0
				trace.AttachQ(1),                     // 1
				trace.LoopOnQ(1),                     // 2
				trace.ThreadInit(2),                  // 3
				trace.PostDelayed(2, "slow", 1, 100), // 4
				trace.Post(2, "quick", 1),            // 5
				trace.PostDelayed(2, "later", 1, 200),
				trace.Begin(1, "slow"),  // 7
				trace.Write(1, "x"),     // 8
				trace.End(1, "slow"),    // 9
				trace.Begin(1, "quick"), // 10
				trace.Write(1, "x"),     // 11
				trace.End(1, "quick"),   // 12
				trace.Begin(1, "later"), // 13
				trace.Write(1, "x"),     // 14
				trace.End(1, "later"),   // 15
			},
			// slow(δ=100) ≼ later(δ=200) by FIFO-delayed; quick enqueues
			// immediately so nothing orders slow before quick.
			ordered:   []pair{{9, 13}, {8, 14}, {12, 13}},
			unordered: []pair{{8, 11}, {11, 8}},
		},
		{
			// Front-of-queue: a front post overtakes the queue — FIFO
			// must not order the earlier-posted task before it.
			name: "front-of-queue",
			ops: []trace.Op{
				trace.ThreadInit(1),        // 0
				trace.AttachQ(1),           // 1
				trace.LoopOnQ(1),           // 2
				trace.ThreadInit(2),        // 3
				trace.Post(2, "a", 1),      // 4
				trace.PostFront(2, "f", 1), // 5
				trace.Begin(1, "f"),        // 6
				trace.Write(1, "x"),        // 7
				trace.End(1, "f"),          // 8
				trace.Begin(1, "a"),        // 9
				trace.Write(1, "x"),        // 10
				trace.End(1, "a"),          // 11
			},
			// f ran first; a's body is ordered after f's only via NOPRE
			// when f posted a — it did not, so the bodies stay
			// unordered and the accesses race.
			unordered: []pair{{7, 10}, {10, 7}},
			ordered:   []pair{{4, 9}},
		},
		{
			// ENABLE: the enable of an event precedes its post from
			// another thread, ordering the enabling task's earlier
			// writes before the handler.
			name: "enable",
			ops: []trace.Op{
				trace.ThreadInit(1),       // 0
				trace.AttachQ(1),          // 1
				trace.LoopOnQ(1),          // 2
				trace.Enable(1, "init"),   // 3
				trace.Post(0, "init", 1),  // 4
				trace.Begin(1, "init"),    // 5
				trace.Write(1, "x"),       // 6
				trace.Enable(1, "click"),  // 7
				trace.End(1, "init"),      // 8
				trace.Post(0, "click", 1), // 9
				trace.Begin(1, "click"),   // 10
				trace.Read(1, "x"),        // 11
				trace.End(1, "click"),     // 12
			},
			ordered: []pair{{7, 9}, {6, 11}, {8, 10}},
		},
		{
			// FORK/JOIN: fork's past reaches the child; the child's
			// whole lifetime reaches the join.
			name: "fork-join",
			ops: []trace.Op{
				trace.ThreadInit(1), // 0
				trace.Write(1, "x"), // 1
				trace.Fork(1, 2),    // 2
				trace.ThreadInit(2), // 3
				trace.Read(2, "x"),  // 4
				trace.Write(2, "y"), // 5
				trace.ThreadExit(2), // 6
				trace.Join(1, 2),    // 7
				trace.Read(1, "y"),  // 8
			},
			ordered: []pair{{1, 4}, {2, 3}, {5, 8}, {6, 7}},
		},
		{
			// LOCK: a release transfers the critical section to a later
			// cross-thread acquire, but NOT to a same-thread one — the
			// decomposed relation's key refinement, which keeps two
			// tasks on one looper sharing a lock racy.
			name: "lock",
			ops: []trace.Op{
				trace.ThreadInit(1),        // 0
				trace.AttachQ(1),           // 1
				trace.LoopOnQ(1),           // 2
				trace.ThreadInit(2),        // 3
				trace.Post(2, "a", 1),      // 4
				trace.PostFront(2, "f", 1), // 5
				trace.Begin(1, "f"),        // 6
				trace.Acquire(1, "l"),      // 7
				trace.Write(1, "x"),        // 8
				trace.Release(1, "l"),      // 9
				trace.End(1, "f"),          // 10
				trace.Begin(1, "a"),        // 11
				trace.Acquire(1, "l"),      // 12
				trace.Read(1, "x"),         // 13
				trace.Release(1, "l"),      // 14
				trace.End(1, "a"),          // 15
				trace.Acquire(2, "l"),      // 16
				trace.Read(2, "x"),         // 17
				trace.Release(2, "l"),      // 18
			},
			ordered:   []pair{{9, 16}, {8, 17}},
			unordered: []pair{{9, 12}, {8, 13}},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			info := analyze(t, trace.FromOps(tc.ops))
			cfg := hb.DefaultConfig()
			out := runStream(t, info, cfg, false)
			g := hb.Build(info, cfg)
			for _, p := range tc.ordered {
				if !g.OrderedLE(p.a, p.b) {
					t.Errorf("test vector wrong: graph says %d ⋠ %d", p.a, p.b)
				}
				if !out.OrderedLE(p.a, p.b) {
					t.Errorf("stream: want %d ≼ %d", p.a, p.b)
				}
			}
			for _, p := range tc.unordered {
				if g.OrderedLE(p.a, p.b) {
					t.Errorf("test vector wrong: graph says %d ≼ %d", p.a, p.b)
				}
				if out.OrderedLE(p.a, p.b) {
					t.Errorf("stream: want %d ⋠ %d", p.a, p.b)
				}
			}
		})
	}
}

// TestPostTransferClocks pins the exact clock contents after the POST
// transfer in the "post" trace above: context 0 is thread 1's root
// (three ops), context 1 is thread 2's root, context 2 is task p. The
// write inside p must carry thread 2's pre-post past only in its Full
// view (the post is cross-thread), never in its ST view.
func TestPostTransferClocks(t *testing.T) {
	info := analyze(t, trace.FromOps([]trace.Op{
		trace.ThreadInit(1),   // 0
		trace.AttachQ(1),      // 1
		trace.LoopOnQ(1),      // 2
		trace.ThreadInit(2),   // 3
		trace.Write(2, "x"),   // 4
		trace.Post(2, "p", 1), // 5
		trace.Begin(1, "p"),   // 6
		trace.Write(1, "x"),   // 7
		trace.End(1, "p"),     // 8
	}))
	out := runStream(t, info, hb.DefaultConfig(), false)
	st, full := out.Clocks(7)
	wantST := vc.VC{0: 3, 2: 2}
	wantFull := vc.VC{0: 3, 1: 3, 2: 2}
	if !st.Equal(wantST) {
		t.Errorf("ST view of op 7 = %v, want %v", st, wantST)
	}
	if !full.Equal(wantFull) {
		t.Errorf("Full view of op 7 = %v, want %v", full, wantFull)
	}
	if ep := out.EpochOf(7); ep != (vc.Epoch{C: 2, T: 2}) {
		t.Errorf("epoch of op 7 = %v, want 2@2", ep)
	}
}

// TestStreamRaceSetOrderStable is the quick.Check property that the
// streaming race set is deterministic and emerges already sorted by the
// (First, Second) merge order, independent of replay internals: two
// replays of one explored trace agree element-for-element.
func TestStreamRaceSetOrderStable(t *testing.T) {
	app, err := apps.New("Aard Dictionary")
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		res, err := explorer.RandomExplore(apps.Factory(app), explorer.RandomOptions{
			Events: 4, Runs: 1, Seed: seed,
		})
		if err != nil || len(res.Tests) == 0 {
			return false
		}
		info, err := trace.Analyze(res.Tests[0].Trace)
		if err != nil {
			return false
		}
		for _, dedup := range []bool{false, true} {
			a := runStream(t, info, hb.DefaultConfig(), dedup)
			b := runStream(t, info, hb.DefaultConfig(), dedup)
			if len(a.Races) != len(b.Races) {
				return false
			}
			for i := range a.Races {
				if a.Races[i] != b.Races[i] {
					return false
				}
				if i > 0 && (a.Races[i].First < a.Races[i-1].First ||
					(a.Races[i].First == a.Races[i-1].First && a.Races[i].Second <= a.Races[i-1].Second)) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 6}
	if testing.Short() {
		cfg.MaxCount = 2
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
