package android

import (
	"fmt"

	"droidracer/internal/sched"
	"droidracer/internal/trace"
)

// CustomQueue models an application-implemented task queue: a list of
// Runnables protected by a lock, drained by a plain worker thread — the
// construct §6 of the paper observes in Messenger and FBReader. To the
// instrumentation the worker is an ordinary thread: no attachQ, post,
// begin, or end operations are emitted; only the lock operations and the
// list-field accesses are visible. The analysis therefore applies the
// NO-Q-PO rule to the worker and derives spurious happens-before
// relations between runnables, which hides real races — the
// false-negative mode the paper describes. (It also cannot connect an
// enqueue to its runnable's execution beyond the lock edges, the
// corresponding false-positive mode.)
//
// Construct the queue with Mapped: true to apply the paper's proposed
// remedy — "a mapping of the high-level constructs (e.g., adding and
// removing from the list) to the operations in our core language": the
// queue then emits real attachQ/post/begin/end operations and the
// analysis sees it as what it is.
type CustomQueue struct {
	env    *Env
	name   string
	mapped bool

	// Unmapped implementation.
	worker *sched.Thread
	mu     trace.LockID
	list   trace.Loc
	items  []queuedRunnable

	// Mapped implementation reuses a real handler thread.
	handler *Handler
}

type queuedRunnable struct {
	name string
	fn   func(*Ctx)
}

// NewCustomQueue creates a custom task queue. With mapped=false the
// worker is an ordinary thread and the queue is invisible to the
// analysis; with mapped=true the queue is expressed in the core language.
func (c *Ctx) NewCustomQueue(name string, mapped bool) *CustomQueue {
	q := &CustomQueue{env: c.Env, name: name, mapped: mapped}
	if mapped {
		q.handler = c.NewHandlerThread(name)
		return q
	}
	q.mu = trace.LockID(name + ".listLock")
	q.list = trace.Loc(name + ".runnables")
	rec := c.rec
	q.worker = c.T.Fork(name+"-worker", func(t *sched.Thread) {
		t.SetDaemon(true)
		q.drainLoop(t, rec)
	})
	return q
}

// drainLoop is the unmapped worker: lock, pop, unlock, run, park.
func (q *CustomQueue) drainLoop(t *sched.Thread, rec *activityRecord) {
	sig := q.name + ".signal"
	for {
		t.Acquire(q.mu)
		t.Read(q.list)
		var item *queuedRunnable
		if len(q.items) > 0 {
			item = &q.items[0]
			q.items = q.items[1:]
			t.Write(q.list)
		}
		t.Release(q.mu)
		if item != nil {
			item.fn(q.env.ctx(t, rec))
			continue
		}
		t.ClearFlag(sig)
		if !t.WaitFlagOrQuit(sig) {
			return
		}
	}
}

// Enqueue adds a runnable. Unmapped queues emit only the lock and
// list-field operations of a real list-based queue; mapped queues emit a
// proper post.
func (q *CustomQueue) Enqueue(c *Ctx, name string, fn func(*Ctx)) {
	if q.mapped {
		q.handler.Post(c, fmt.Sprintf("%s.%s", q.name, name), fn)
		return
	}
	c.T.Acquire(q.mu)
	c.T.Write(q.list)
	q.items = append(q.items, queuedRunnable{name: name, fn: fn})
	c.T.Release(q.mu)
	c.T.SetFlag(q.name + ".signal")
}
