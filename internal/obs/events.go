package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// runCounter disambiguates run IDs minted within one process.
var runCounter atomic.Uint64

// NewRunID mints a short, sortable run identifier: unix-seconds, pid,
// and a per-process counter, e.g. "1754500000-4242-1". Every event a
// daemon incarnation emits carries it, so one grep isolates one run.
func NewRunID() string {
	return fmt.Sprintf("%d-%d-%d", time.Now().Unix(), os.Getpid(), runCounter.Add(1))
}

// NewEventLog returns a structured JSONL event logger writing to w.
// Every record carries the run ID under "run"; callers add correlation
// attributes per event (campaign name, job name, journal sequence
// number) so events can be joined against the write-ahead journal.
//
// Records look like:
//
//	{"time":"...","level":"INFO","msg":"job.finish","run":"...",
//	 "job":"trace1.txt","mode":"full","attempts":1,"journal_seq":7}
func NewEventLog(w io.Writer, runID string) *slog.Logger {
	h := slog.NewJSONHandler(w, nil)
	return slog.New(h).With("run", runID)
}

// Nop returns a logger that discards everything — the default wiring
// when no -events sink is configured, so instrumented code logs
// unconditionally.
func Nop() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}

// DefaultEventsMaxBytes caps an event-log file before rotation when the
// daemon does not override it: 64 MiB, weeks of events at fleet rates.
const DefaultEventsMaxBytes = 64 << 20

// eventRotationsTotal counts event-log rotations across the process.
var eventRotationsTotal = Default().Counter("droidracer_events_rotations_total",
	"Event-log files rotated out after reaching -events-max-bytes.")

// RotatingFile is a size-capped append-only log sink: when a write
// would push the file past max bytes, the current file is renamed to
// <path>.1 (replacing any previous .1) and a fresh file is started. A
// long-running daemon therefore holds at most 2×max bytes of events on
// disk — the bound matters more than deep history; the journal, not
// the event log, is the durable record.
type RotatingFile struct {
	mu   sync.Mutex
	path string
	max  int64
	f    *os.File
	size int64
}

// OpenRotatingFile opens (appending) path as a rotating event sink.
// maxBytes <= 0 selects DefaultEventsMaxBytes.
func OpenRotatingFile(path string, maxBytes int64) (*RotatingFile, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultEventsMaxBytes
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &RotatingFile{path: path, max: maxBytes, f: f, size: st.Size()}, nil
}

// Write appends p, rotating first if the file would exceed the cap. A
// single record larger than the cap is still written whole — events
// are JSONL and must never be split across files.
func (w *RotatingFile) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.size > 0 && w.size+int64(len(p)) > w.max {
		if err := w.rotate(); err != nil {
			return 0, err
		}
	}
	n, err := w.f.Write(p)
	w.size += int64(n)
	return n, err
}

// rotate is called with the lock held.
func (w *RotatingFile) rotate() error {
	if err := w.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(w.path, w.path+".1"); err != nil {
		return err
	}
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.f, w.size = f, 0
	eventRotationsTotal.Inc()
	return nil
}

// Close closes the underlying file.
func (w *RotatingFile) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}
