package baseline

import (
	"droidracer/internal/trace"
)

// Lockset is an Eraser-style lockset detector: every shared location must
// be consistently protected by some lock. It uses Eraser's ownership state
// machine (virgin → exclusive → shared / shared-modified) and reports a
// location once its candidate lockset becomes empty in the
// shared-modified state. Ordering-based synchronization (posts, fork/join
// hand-offs) is invisible, so event-ordered accesses are reported racy —
// the false-positive mode §7 attributes to lockset analyses.
type Lockset struct{}

// NewLockset returns the Eraser-style baseline detector.
func NewLockset() *Lockset { return &Lockset{} }

// Name implements Detector.
func (*Lockset) Name() string { return "eraser-lockset" }

type ownership uint8

const (
	virgin ownership = iota
	exclusive
	shared
	sharedModified
)

type locksetState struct {
	state     ownership
	owner     trace.ThreadID
	candidate map[trace.LockID]bool // nil until first transition out of exclusive
	lastOp    int
}

// Detect implements Detector.
func (d *Lockset) Detect(tr *trace.Trace) []Finding {
	held := make(map[trace.ThreadID]map[trace.LockID]int)
	locs := make(map[trace.Loc]*locksetState)
	found := make(map[trace.Loc]Finding)

	heldSet := func(t trace.ThreadID) map[trace.LockID]bool {
		out := make(map[trace.LockID]bool)
		for l, n := range held[t] {
			if n > 0 {
				out[l] = true
			}
		}
		return out
	}

	for i, op := range tr.Ops() {
		switch op.Kind {
		case trace.OpAcquire:
			if held[op.Thread] == nil {
				held[op.Thread] = make(map[trace.LockID]int)
			}
			held[op.Thread][op.Lock]++
		case trace.OpRelease:
			if m := held[op.Thread]; m != nil && m[op.Lock] > 0 {
				m[op.Lock]--
			}
		case trace.OpRead, trace.OpWrite:
			ls, ok := locs[op.Loc]
			if !ok {
				ls = &locksetState{state: virgin, lastOp: -1}
				locs[op.Loc] = ls
			}
			switch ls.state {
			case virgin:
				ls.state = exclusive
				ls.owner = op.Thread
			case exclusive:
				if op.Thread != ls.owner {
					ls.candidate = heldSet(op.Thread)
					if op.Kind == trace.OpWrite {
						ls.state = sharedModified
					} else {
						ls.state = shared
					}
				}
			case shared, sharedModified:
				if op.Kind == trace.OpWrite {
					ls.state = sharedModified
				}
				for l := range ls.candidate {
					if held[op.Thread][l] == 0 {
						delete(ls.candidate, l)
					}
				}
			}
			if ls.state == sharedModified && len(ls.candidate) == 0 {
				if _, already := found[op.Loc]; !already && ls.lastOp >= 0 {
					found[op.Loc] = Finding{Loc: op.Loc, First: ls.lastOp, Second: i}
				}
			}
			ls.lastOp = i
		}
	}

	out := make([]Finding, 0, len(found))
	for _, f := range found {
		out = append(out, f)
	}
	return sortFindings(out)
}
