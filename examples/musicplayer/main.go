// The paper's motivating example (Figures 1–4): the music player that
// downloads a file on an AsyncTask while the activity may be destroyed.
//
// The program reproduces both execution scenarios of §2:
//
//   - the PLAY scenario (Figure 3): the user waits for the download and
//     presses PLAY — every access to isActivityDestroyed is
//     happens-before ordered, so no race is reported;
//
//   - the BACK scenario (Figure 4): the user presses BACK — the
//     multithreaded race (doInBackground's read vs onDestroy's write) and
//     the cross-posted race (onPostExecute's read vs onDestroy's write)
//     are reported and then CONFIRMED by reorder-replay, the automated
//     version of the paper's debugger-based validation.
//
//     go run ./examples/musicplayer
package main

import (
	"fmt"
	"log"
	"os"

	"droidracer"
	"droidracer/internal/apps"
)

func main() {
	app := apps.NewPaperMusicPlayer()
	factory := apps.Factory(app)

	scenarios := []struct {
		name string
		seq  []droidracer.UIEvent
	}{
		{"PLAY (Figure 3)", []droidracer.UIEvent{{Kind: droidracer.EvClick, Widget: "play"}}},
		{"BACK (Figure 4)", []droidracer.UIEvent{{Kind: droidracer.EvBack}}},
	}
	for _, sc := range scenarios {
		tr, err := droidracer.Replay(factory, 0, sc.seq)
		if err != nil {
			log.Fatal(err)
		}
		result, err := droidracer.Analyze(tr, droidracer.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== scenario %s: %d ops, %d race report(s)\n", sc.name, tr.Len(), len(result.Races))
		for _, r := range result.Races {
			fmt.Printf("   %-13s race on %s\n", r.Category, r.Loc)
			v, err := droidracer.VerifyRace(factory, sc.seq, result.Info, r, 60)
			if err != nil {
				log.Fatal(err)
			}
			if v.Confirmed {
				fmt.Printf("   -> confirmed: alternate order produced under seed %d\n", v.Seed)
			} else {
				fmt.Printf("   -> not confirmed in %d attempts\n", v.Attempts)
			}
		}
	}

	// Print the BACK-scenario trace in the paper's textual format so it
	// can be compared with Figure 4 (or fed to cmd/racedet).
	tr, err := droidracer.Replay(factory, 0, []droidracer.UIEvent{{Kind: droidracer.EvBack}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== BACK-scenario execution trace (cf. Figure 4):")
	if err := droidracer.FormatTrace(os.Stdout, tr); err != nil {
		log.Fatal(err)
	}
}
