package race

import (
	"fmt"
	"strings"

	"droidracer/internal/trace"
)

// AccessKey identifies one access robustly across trace transformations
// (replays under other schedules, minimization): the memory location, the
// base name of the enclosing task (unique "#k" renaming suffixes are
// stripped, since numbering depends on global execution order), the
// executing thread, and the ordinal among accesses sharing all three.
type AccessKey struct {
	Loc      trace.Loc
	TaskBase string
	Thread   trace.ThreadID
	Ordinal  int
}

// TaskBase strips the unique-renaming suffix from a task name.
func TaskBase(t trace.TaskID) string {
	s := string(t)
	if i := strings.LastIndex(s, "#"); i >= 0 {
		return s[:i]
	}
	return s
}

// KeyOf computes the AccessKey of the access at trace index i.
func KeyOf(info *trace.Info, i int) (AccessKey, error) {
	tr := info.Trace()
	op := tr.Op(i)
	if !op.Kind.IsAccess() {
		return AccessKey{}, fmt.Errorf("race: op %d (%v) is not an access", i, op)
	}
	key := AccessKey{Loc: op.Loc, TaskBase: TaskBase(info.Task(i)), Thread: op.Thread}
	for j := 0; j < i; j++ {
		o := tr.Op(j)
		if o.Kind.IsAccess() && o.Loc == key.Loc && o.Thread == key.Thread &&
			TaskBase(info.Task(j)) == key.TaskBase {
			key.Ordinal++
		}
	}
	return key, nil
}

// FindAccess locates the trace index matching key, or -1.
func FindAccess(info *trace.Info, key AccessKey) int {
	tr := info.Trace()
	n := 0
	for i, op := range tr.Ops() {
		if !op.Kind.IsAccess() || op.Loc != key.Loc || op.Thread != key.Thread ||
			TaskBase(info.Task(i)) != key.TaskBase {
			continue
		}
		if n == key.Ordinal {
			return i
		}
		n++
	}
	return -1
}
