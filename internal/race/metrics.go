package race

import "droidracer/internal/obs"

// Detection metrics: Table 3's per-category race counts as live
// series. Category counters are pre-registered so a scrape sees the
// full classification (at zero) before the first detection. Counts are
// tallied locally per scan and published once at the end — nothing
// atomic in the per-pair loop.
var (
	categoryCounters = func() (c [len(categoryNames)]*obs.Counter) {
		for i := range categoryNames {
			c[i] = obs.Default().Counter("droidracer_races_total",
				"Data races detected, by paper category (§4.3).",
				"category", categoryNames[i])
		}
		return
	}()
	scansTotal = obs.Default().Counter("droidracer_race_scans_total",
		"Race detection scans executed.")
	scanDur = obs.Default().Histogram("droidracer_race_scan_duration_seconds",
		"Wall-clock time per race detection scan (detect + classify).",
		obs.DurationBuckets())
)

// publishScan records one finished scan into the registry.
func publishScan(races []Race, seconds float64) {
	if !obs.ExporterAttached() {
		return
	}
	scansTotal.Inc()
	scanDur.Observe(seconds)
	var byCat [len(categoryNames)]int
	for _, r := range races {
		if int(r.Category) < len(byCat) {
			byCat[r.Category]++
		}
	}
	for i, n := range byCat {
		categoryCounters[i].Add(n)
	}
}
