package obs

import "testing"

func BenchmarkPhasesFiveSpans(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ph := NewPhases()
		for _, name := range [...]string{"validate", "annotate", "happens-before", "race-scan", "degrade"} {
			sp := ph.Start(name)
			sp.End()
		}
		_ = ph.Timings()
	}
}
