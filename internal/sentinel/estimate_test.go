package sentinel

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"droidracer/internal/trace"
)

func TestEstimateBytesShape(t *testing.T) {
	body := strings.Join([]string{
		"# a comment line",
		"",
		"threadinit(t1)",
		"attachQ(t1)",
		"post(t0,A,t1)",
		"begin(t1,A)",
		"write(t1,x)", // opens an access run on t1 ...
		"read(t1,x)",  // ... merged into the same node
		"write(t1,y)", // still the same run: same thread, no break
		"write(t2,x)", // thread change breaks the run
		"end(t1,A)",
	}, "\n")
	est, err := EstimateBytes([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if est.Ops != 9 {
		t.Errorf("Ops = %d, want 9 (comments and blanks don't count)", est.Ops)
	}
	if est.Posts != 1 {
		t.Errorf("Posts = %d, want 1", est.Posts)
	}
	if est.Threads != 3 { // t0, t1, t2
		t.Errorf("Threads = %d, want 3", est.Threads)
	}
	// Nodes: threadinit, attachQ, post, begin, [write+read+write run],
	// write(t2), end = 7. The three t1 accesses merged into one.
	if est.Nodes != 7 {
		t.Errorf("Nodes = %d, want 7 (access-run merging)", est.Nodes)
	}
	if est.MemBytes <= 0 {
		t.Errorf("MemBytes = %d, want positive", est.MemBytes)
	}
}

func TestEstimateOverApproximatesNodes(t *testing.T) {
	// Alternating threads defeat node merging: every access is its own
	// node, so MemBytes grows quadratically — the memory-bomb shape the
	// soft ceiling must catch while the body itself stays small.
	const n = 20000
	var sb strings.Builder
	sb.WriteString("threadinit(t1)\nthreadinit(t2)\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "write(t%d,x)\n", 1+i%2)
	}
	bomb, err := EstimateBytes([]byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}

	// The same ops on one thread merge into a single node.
	sb.Reset()
	sb.WriteString("threadinit(t1)\n")
	for i := 0; i < n; i++ {
		sb.WriteString("write(t1,x)\n")
	}
	tame, err := EstimateBytes([]byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}

	if bomb.Nodes < n || tame.Nodes > 5 {
		t.Fatalf("nodes: bomb=%d tame=%d; merging not modeled", bomb.Nodes, tame.Nodes)
	}
	if bomb.MemBytes < 20*tame.MemBytes {
		t.Fatalf("mem: bomb=%d tame=%d; quadratic growth not modeled", bomb.MemBytes, tame.MemBytes)
	}
}

func TestEstimatePropagatesSizeError(t *testing.T) {
	var se *trace.SizeError
	_, err := EstimateBytes([]byte("#! ops=999999999\nthreadinit(t1)\n"))
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want *trace.SizeError", err)
	}
}

func TestClassify(t *testing.T) {
	lim := CostLimits{Soft: 100, Hard: 1000}
	if !lim.Enabled() {
		t.Fatal("limits not enabled")
	}
	if (CostLimits{}).Enabled() {
		t.Fatal("zero limits enabled")
	}
	for _, tc := range []struct {
		mem  int64
		want string
	}{
		{50, ClassNormal},
		{100, ClassNormal}, // ceilings are exclusive
		{101, ClassHeavy},
		{1000, ClassHeavy},
		{1001, ClassRejected},
	} {
		if got := (Estimate{MemBytes: tc.mem}).Classify(lim); got != tc.want {
			t.Errorf("Classify(%d) = %s, want %s", tc.mem, got, tc.want)
		}
	}
	// Soft-only: nothing is ever rejected.
	if got := (Estimate{MemBytes: 1 << 40}).Classify(CostLimits{Soft: 100}); got != ClassHeavy {
		t.Errorf("soft-only Classify = %s, want heavy", got)
	}
	// Disabled: everything is normal.
	if got := (Estimate{MemBytes: 1 << 40}).Classify(CostLimits{}); got != ClassNormal {
		t.Errorf("disabled Classify = %s, want normal", got)
	}
}
