package gateway

import (
	"fmt"
	"testing"

	"droidracer/internal/server"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(3)
	for i := 0; i < 4; i++ {
		c.add(fmt.Sprintf("k%d", i), server.SubmitResponse{Job: fmt.Sprintf("k%d", i), Status: server.StatusDone})
	}
	if c.len() != 3 {
		t.Fatalf("len = %d, want 3", c.len())
	}
	if _, ok := c.get("k0"); ok {
		t.Fatal("k0 should have been evicted as least-recently-used")
	}
	if _, ok := c.get("k3"); !ok {
		t.Fatal("k3 should be present")
	}
}

func TestCacheGetRefreshesRecency(t *testing.T) {
	c := newResultCache(2)
	c.add("a", server.SubmitResponse{Job: "a", Status: server.StatusDone})
	c.add("b", server.SubmitResponse{Job: "b", Status: server.StatusDone})
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.add("c", server.SubmitResponse{Job: "c", Status: server.StatusDone})
	if _, ok := c.get("a"); !ok {
		t.Fatal("a was evicted despite being recently used")
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been the LRU victim")
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := newResultCache(2)
	c.add("a", server.SubmitResponse{Job: "a", Status: server.StatusDone, Races: 1})
	c.add("a", server.SubmitResponse{Job: "a", Status: server.StatusDone, Races: 2})
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	got, _ := c.get("a")
	if got.Races != 2 {
		t.Fatalf("Races = %d, want the updated 2", got.Races)
	}
}
