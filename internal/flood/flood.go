// Package flood is the fleet load generator behind racedet -flood: it
// pushes a mixed corpus of real app traces at a target rate through the
// retrying client, with a duplicate-ratio knob that exercises the
// idempotent-replay paths (backend coalescing, gateway result cache),
// and reports a latency histogram plus a JSON summary the chaos tests
// and CI assert against.
package flood

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"droidracer/internal/android"
	"droidracer/internal/apps"
	"droidracer/internal/explorer"
	"droidracer/internal/server"
	"droidracer/internal/trace"
)

// BuildCorpus generates n distinct trace bodies from the named Table 2
// app models. Bodies vary by app and by click-sequence length (every
// profile app registers co-enabled <name>-action1/<name>-action2
// buttons), so each corpus entry hashes to a distinct idempotency key —
// duplicates in a flood come only from the duplicate knob.
func BuildCorpus(appNames []string, n int, seed int64) ([][]byte, error) {
	if len(appNames) == 0 {
		return nil, fmt.Errorf("flood: no apps")
	}
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		name := appNames[i%len(appNames)]
		app, err := apps.New(name)
		if err != nil {
			return nil, err
		}
		// Round r uses r+2 alternating clicks: longer sequences produce
		// strictly longer traces, so (app, round) pairs never collide.
		round := i / len(appNames)
		clicks := make([]android.UIEvent, 0, round+2)
		for c := 0; c < round+2; c++ {
			widget := name + "-action1"
			if c%2 == 1 {
				widget = name + "-action2"
			}
			clicks = append(clicks, android.UIEvent{Kind: android.EvClick, Widget: widget})
		}
		tr, err := explorer.Replay(apps.Factory(app), seed, clicks)
		if err != nil {
			return nil, fmt.Errorf("flood: replaying %s: %w", name, err)
		}
		var buf bytes.Buffer
		if err := trace.Format(&buf, tr); err != nil {
			return nil, err
		}
		out = append(out, buf.Bytes())
	}
	return out, nil
}

// Config configures one flood run.
type Config struct {
	// BaseURL is the submission endpoint (a backend or the gateway).
	BaseURL string
	// Requests is the total submission count. Required.
	Requests int
	// RPS is the target pace; 0 floods without pacing.
	RPS float64
	// DupRatio in [0,1] is the fraction of submissions that re-send an
	// already-sent body instead of a fresh corpus entry. 1.0 makes a
	// pure-duplicate wave (the cache-replay measurement).
	DupRatio float64
	// Corpus is the body pool (BuildCorpus). Fresh submissions draw from
	// it in order, wrapping — wrapped sends are duplicates too. Required.
	Corpus [][]byte
	// Seed drives duplicate selection and client backoff jitter.
	Seed int64
	// ClientID is sent as the rate-limit principal.
	ClientID string
	// Timeout bounds one submission including retries (default 30s).
	Timeout time.Duration
	// MaxAttempts per submission (default 3).
	MaxAttempts int
	// Concurrency caps in-flight submissions (default 64).
	Concurrency int
}

// Summary is the JSON result of a flood run.
type Summary struct {
	Sent           int            `json:"sent"`
	DuplicatesSent int            `json:"duplicates_sent"`
	Codes          map[string]int `json:"codes"`
	// Accepted counts submissions the fleet took responsibility for
	// (202 accepted, 202 coalesced-pending, or 200 already-done).
	Accepted int `json:"accepted"`
	// AcceptedKeys are the distinct idempotency keys behind Accepted —
	// the set the chaos proof checks for exactly-one journal record.
	AcceptedKeys []string `json:"accepted_keys"`
	// CacheHits counts responses marked Cached by the gateway.
	CacheHits int `json:"cache_hits"`
	Errors    int `json:"errors"`
	// Latency histogram (milliseconds) plus percentiles over terminal
	// response times.
	LatencyBucketsMS map[string]int `json:"latency_buckets_ms"`
	P50MS            float64        `json:"p50_ms"`
	P90MS            float64        `json:"p90_ms"`
	P99MS            float64        `json:"p99_ms"`
	MaxMS            float64        `json:"max_ms"`
	DurationSeconds  float64        `json:"duration_seconds"`
	AchievedRPS      float64        `json:"achieved_rps"`
}

var latencyBounds = []float64{5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// Run executes the flood and aggregates the summary.
func Run(ctx context.Context, cfg Config) (*Summary, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("flood: requests must be positive")
	}
	if len(cfg.Corpus) == 0 {
		return nil, fmt.Errorf("flood: empty corpus")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 64
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	sum := &Summary{
		Codes:            make(map[string]int),
		LatencyBucketsMS: make(map[string]int),
	}
	var (
		mu        sync.Mutex
		wg        sync.WaitGroup
		latencies []float64
		keys      = make(map[string]bool)
	)
	sem := make(chan struct{}, cfg.Concurrency)
	var interval time.Duration
	if cfg.RPS > 0 {
		interval = time.Duration(float64(time.Second) / cfg.RPS)
	}
	start := time.Now()
	fresh := 0 // next unsent corpus index
	for i := 0; i < cfg.Requests; i++ {
		if ctx.Err() != nil {
			break
		}
		var body []byte
		dup := false
		if fresh > 0 && (fresh >= len(cfg.Corpus) || rng.Float64() < cfg.DupRatio) {
			body = cfg.Corpus[rng.Intn(min(fresh, len(cfg.Corpus)))]
			dup = true
		} else {
			body = cfg.Corpus[fresh%len(cfg.Corpus)]
			fresh++
		}
		sum.Sent++
		if dup {
			sum.DuplicatesSent++
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(body []byte, seed int64) {
			defer wg.Done()
			defer func() { <-sem }()
			cl := server.Client{
				BaseURL:     cfg.BaseURL,
				MaxAttempts: cfg.MaxAttempts,
				Seed:        seed,
				ClientID:    cfg.ClientID,
			}
			sctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
			defer cancel()
			t0 := time.Now()
			resp, attempts, err := cl.Submit(sctx, body)
			ms := float64(time.Since(t0)) / float64(time.Millisecond)
			code := 0
			if len(attempts) > 0 {
				code = attempts[len(attempts)-1].Code
			}
			mu.Lock()
			defer mu.Unlock()
			latencies = append(latencies, ms)
			if code > 0 {
				sum.Codes[fmt.Sprintf("%d", code)]++
			}
			if err != nil && resp == nil {
				sum.Errors++
				return
			}
			if resp != nil {
				if resp.Cached {
					sum.CacheHits++
				}
				if code == 200 || code == 202 {
					sum.Accepted++
					if resp.Job != "" && !keys[resp.Job] {
						keys[resp.Job] = true
						sum.AcceptedKeys = append(sum.AcceptedKeys, resp.Job)
					}
				}
			}
			if err != nil {
				sum.Errors++
			}
		}(body, cfg.Seed+int64(i))
		if interval > 0 {
			select {
			case <-time.After(interval):
			case <-ctx.Done():
			}
		}
	}
	wg.Wait()
	sum.DurationSeconds = time.Since(start).Seconds()
	if sum.DurationSeconds > 0 {
		sum.AchievedRPS = float64(sum.Sent) / sum.DurationSeconds
	}
	sort.Strings(sum.AcceptedKeys)
	fillLatency(sum, latencies)
	return sum, nil
}

// fillLatency computes the histogram and percentiles.
func fillLatency(sum *Summary, latencies []float64) {
	if len(latencies) == 0 {
		return
	}
	sort.Float64s(latencies)
	for _, ms := range latencies {
		placed := false
		for _, b := range latencyBounds {
			if ms <= b {
				sum.LatencyBucketsMS[fmt.Sprintf("le_%g", b)]++
				placed = true
				break
			}
		}
		if !placed {
			sum.LatencyBucketsMS["le_inf"]++
		}
	}
	pct := func(p float64) float64 {
		idx := int(p * float64(len(latencies)-1))
		return latencies[idx]
	}
	sum.P50MS = pct(0.50)
	sum.P90MS = pct(0.90)
	sum.P99MS = pct(0.99)
	sum.MaxMS = latencies[len(latencies)-1]
}
