package explain

import (
	"strings"
	"testing"

	"droidracer/internal/hb"
	"droidracer/internal/paper"
	"droidracer/internal/race"
	"droidracer/internal/trace"
)

// analyze builds the graph and returns it with the detected races.
func analyze(t *testing.T, tr *trace.Trace) (*hb.Graph, []race.Race) {
	t.Helper()
	info, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	g := hb.Build(info, hb.DefaultConfig())
	return g, race.NewDetector(g).Detect()
}

func findCategory(t *testing.T, races []race.Race, cat race.Category) race.Race {
	t.Helper()
	for _, r := range races {
		if r.Category == cat {
			return r
		}
	}
	t.Fatalf("no %v race in %v", cat, races)
	return race.Race{}
}

func TestExplainFigure4Races(t *testing.T) {
	g, races := analyze(t, paper.Figure4())

	mt := Explain(g, findCategory(t, races, race.Multithreaded))
	if !strings.Contains(mt.Reason, "different threads") {
		t.Errorf("mt reason = %q", mt.Reason)
	}
	if len(mt.Hints) == 0 {
		t.Error("no hints for multithreaded race")
	}
	s := mt.String()
	for _, want := range []string{"multithreaded", "DwFileAct-obj", "hint:"} {
		if !strings.Contains(s, want) {
			t.Errorf("explanation missing %q:\n%s", want, s)
		}
	}

	cp := Explain(g, findCategory(t, races, race.CrossPosted))
	if !strings.Contains(cp.Reason, "posted from different threads") {
		t.Errorf("cross-posted reason = %q", cp.Reason)
	}
	// The chains end at the posts by t2 and t0.
	if len(cp.FirstChain) != 1 || cp.FirstChain[0].Op.Thread != 2 {
		t.Errorf("first chain = %+v", cp.FirstChain)
	}
	if len(cp.SecondChain) != 1 || cp.SecondChain[0].Op.Thread != 0 {
		t.Errorf("second chain = %+v", cp.SecondChain)
	}
	// onDestroy was enabled; onPostExecute was not — the near misses call
	// out the never-enabled task.
	joined := strings.Join(cp.NearMisses, "\n")
	if !strings.Contains(joined, "onPostExecute") || !strings.Contains(joined, "never explicitly enabled") {
		t.Errorf("near misses = %v", cp.NearMisses)
	}
}

func TestExplainCoEnabled(t *testing.T) {
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.Enable(1, "onClick1"),
		trace.Enable(1, "onClick2"),
		trace.LoopOnQ(1),
		trace.Post(1, "onClick1", 1),
		trace.Begin(1, "onClick1"),
		trace.Write(1, "x"),
		trace.End(1, "onClick1"),
		trace.Post(1, "onClick2", 1),
		trace.Begin(1, "onClick2"),
		trace.Write(1, "x"),
		trace.End(1, "onClick2"),
	})
	g, races := analyze(t, tr)
	e := Explain(g, findCategory(t, races, race.CoEnabled))
	if !strings.Contains(e.Reason, "onClick1") || !strings.Contains(e.Reason, "onClick2") {
		t.Errorf("reason = %q", e.Reason)
	}
	if !strings.Contains(strings.Join(e.NearMisses, "\n"), "FIFO inapplicable") {
		t.Errorf("near misses = %v", e.NearMisses)
	}
	if !strings.Contains(e.String(), "[enabled]") {
		t.Error("chain rendering misses the enabled marker")
	}
}

func TestExplainDelayed(t *testing.T) {
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.LoopOnQ(1),
		trace.ThreadInit(2),
		trace.PostDelayed(2, "d1", 1, 250),
		trace.Post(2, "p2", 1),
		trace.Begin(1, "p2"),
		trace.Write(1, "x"),
		trace.End(1, "p2"),
		trace.Begin(1, "d1"),
		trace.Write(1, "x"),
		trace.End(1, "d1"),
	})
	g, races := analyze(t, tr)
	e := Explain(g, findCategory(t, races, race.Delayed))
	joined := strings.Join(e.Hints, "\n")
	if !strings.Contains(joined, "δ=250ms") {
		t.Errorf("hints = %v", e.Hints)
	}
	if !strings.Contains(strings.Join(e.NearMisses, "\n"), "delayed-post timing") {
		t.Errorf("near misses = %v", e.NearMisses)
	}
}

func TestExplainUnknownFrontPost(t *testing.T) {
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.LoopOnQ(1),
		trace.Post(0, "parent", 1),
		trace.Begin(1, "parent"),
		trace.Post(1, "back", 1),
		trace.PostFront(1, "front", 1),
		trace.End(1, "parent"),
		trace.Begin(1, "front"),
		trace.Read(1, "x"),
		trace.End(1, "front"),
		trace.Begin(1, "back"),
		trace.Write(1, "x"),
		trace.End(1, "back"),
	})
	g, races := analyze(t, tr)
	e := Explain(g, findCategory(t, races, race.Unknown))
	if !strings.Contains(strings.Join(e.NearMisses, "\n"), "front-of-queue post") {
		t.Errorf("near misses should identify the FIFO override: %v", e.NearMisses)
	}
	if !strings.Contains(e.String(), "near miss:") {
		t.Error("rendering misses near misses")
	}
}

func TestExplainPlainThreadChainRendering(t *testing.T) {
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.ThreadInit(2),
		trace.Write(1, "x"),
		trace.Write(2, "x"),
	})
	g, races := analyze(t, tr)
	e := Explain(g, races[0])
	if !strings.Contains(e.String(), "plain thread code") {
		t.Errorf("rendering = %s", e.String())
	}
	if !strings.Contains(strings.Join(e.NearMisses, "\n"), "no fork/join, lock, or post edge") {
		t.Errorf("near misses = %v", e.NearMisses)
	}
}
