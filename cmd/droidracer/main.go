// Command droidracer runs the full DroidRacer pipeline on one application
// model: systematic UI exploration, trace generation, happens-before
// analysis, race detection, classification, and optional reorder-replay
// verification of each reported race (the paper's true-positive check).
//
// Usage:
//
//	droidracer -app "Music Player" [-k 2] [-max-tests 12] [-verify] [-v]
//	droidracer -list
package main

import (
	"flag"
	"fmt"
	"os"

	"droidracer"
	"droidracer/internal/apps"
	"droidracer/internal/explorer"
	"droidracer/internal/race"
)

func main() {
	appName := flag.String("app", "", "application model to test (see -list)")
	k := flag.Int("k", 0, "event-sequence bound (0 = the app's default)")
	maxTests := flag.Int("max-tests", 0, "cap on explored tests (0 = the app's default)")
	verify := flag.Bool("verify", false, "attempt reorder-replay verification of each reported race")
	attempts := flag.Int("attempts", 60, "verification attempts per race")
	verbose := flag.Bool("v", false, "print every explored test")
	list := flag.Bool("list", false, "list available application models")
	flag.Parse()

	if *list {
		for _, name := range apps.Names() {
			fmt.Println(name)
		}
		return
	}
	if *appName == "" {
		fatal(fmt.Errorf("missing -app (use -list to see models)"))
	}
	app, err := apps.New(*appName)
	if err != nil {
		fatal(err)
	}
	opts := app.Explore()
	if *k > 0 {
		opts.MaxEvents = *k
	}
	if *maxTests > 0 {
		opts.MaxTests = *maxTests
	}
	factory := apps.Factory(app)
	res, err := explorer.Explore(factory, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d tests explored (%d sequences, %d events fired)\n",
		app.Name(), len(res.Tests), res.SequencesExplored, res.EventsFired)

	type key struct {
		loc string
		cat race.Category
	}
	reported := map[key]bool{}
	for _, test := range res.Tests {
		result, err := droidracer.Analyze(test.Trace, droidracer.DefaultOptions())
		if err != nil {
			fatal(fmt.Errorf("test %s: %w", test.Name(), err))
		}
		if *verbose {
			fmt.Printf("  test %-40s %6d ops, %d race(s)\n", test.Name(), test.Trace.Len(), len(result.Races))
		}
		for _, r := range result.Races {
			kk := key{string(r.Loc), r.Category}
			if reported[kk] {
				continue
			}
			reported[kk] = true
			fmt.Printf("  %-13s race on %-40s (test %s)\n", r.Category, r.Loc, test.Name())
			if *verify {
				v, err := droidracer.VerifyRace(factory, test.Sequence, result.Info, r, *attempts)
				if err != nil {
					fatal(err)
				}
				if v.Confirmed {
					fmt.Printf("                CONFIRMED: reordered under seed %d (%d attempts)\n", v.Seed, v.Attempts)
				} else {
					fmt.Printf("                unconfirmed after %d attempts (possible false positive)\n", v.Attempts)
				}
			}
		}
	}
	fmt.Printf("%d distinct race report(s)\n", len(reported))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "droidracer:", err)
	os.Exit(1)
}
