package explorer_test

import (
	"context"
	"testing"
	"time"

	"droidracer/internal/android"
	"droidracer/internal/apps"
	"droidracer/internal/budget"
	"droidracer/internal/explorer"
	"droidracer/internal/race"
	"droidracer/internal/trace"
)

// slowButtonFactory builds an app whose single button posts a long chain
// of follow-up tasks, so each explored sequence takes many scheduler
// steps — enough work for a wall-clock budget to interrupt mid-run.
func slowButtonFactory() explorer.AppFactory {
	return func(seed int64) (*android.Env, error) {
		opts := android.DefaultOptions()
		opts.Seed = seed
		e := android.NewEnv(opts)
		e.RegisterActivity("Main", func() android.Activity { return &slowAct{} })
		if err := e.Launch("Main"); err != nil {
			e.Close()
			return nil, err
		}
		return e, nil
	}
}

type slowAct struct {
	android.BaseActivity
}

func (a *slowAct) OnCreate(c *android.Ctx) {
	c.AddButton("go", true, func(c *android.Ctx) {
		for i := 0; i < 200; i++ {
			c.Write("busy")
			c.Read("busy")
		}
	})
	c.AddButton("other", true, func(c *android.Ctx) { c.Write("other") })
}

// TestExploreSequenceBudget asserts MaxSequences stops the DFS with the
// tests recorded so far and a typed budget error.
func TestExploreSequenceBudget(t *testing.T) {
	res, err := explorer.Explore(twoButtonFactory(), explorer.Options{
		MaxEvents: 2,
		Budget:    budget.Limits{MaxSequences: 3},
	})
	be, ok := budget.AsError(err)
	if !ok || be.Resource != budget.ResourceSequences {
		t.Fatalf("want sequences budget error, got %v", err)
	}
	if res == nil || res.SequencesExplored != 3 {
		t.Fatalf("partial result = %+v", res)
	}
}

// TestExploreDeadline asserts a short wall-clock budget interrupts the
// exploration promptly, returning the partial result.
func TestExploreDeadline(t *testing.T) {
	start := time.Now()
	res, err := explorer.Explore(slowButtonFactory(), explorer.Options{
		MaxEvents: 8,
		Budget:    budget.Limits{Wall: 30 * time.Millisecond},
	})
	elapsed := time.Since(start)
	be, ok := budget.AsError(err)
	if !ok || be.Resource != budget.ResourceWallClock {
		t.Fatalf("want wall-clock budget error, got %v", err)
	}
	if res == nil {
		t.Fatal("no partial result")
	}
	if elapsed > time.Second {
		t.Fatalf("exploration ran %v past a 30ms budget", elapsed)
	}
}

// TestExploreCancellation asserts a canceled context stops exploration
// with a Canceled budget error.
func TestExploreCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := explorer.ExploreContext(ctx, twoButtonFactory(), explorer.Options{MaxEvents: 2})
	be, ok := budget.AsError(err)
	if !ok || !be.Canceled() {
		t.Fatalf("want canceled budget error, got %v", err)
	}
	if res == nil {
		t.Fatal("no partial result")
	}
}

// TestExploreUnbudgetedUnchanged asserts the unbudgeted DFS still
// enumerates the full tree (guards against budget plumbing changing
// exploration order or coverage).
func TestExploreUnbudgetedUnchanged(t *testing.T) {
	res, err := explorer.Explore(twoButtonFactory(), explorer.Options{MaxEvents: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tests) != 7 {
		t.Fatalf("tests = %d, want 7", len(res.Tests))
	}
}

// firstAccess returns the trace index of the first memory access.
func firstAccess(t *testing.T, tr *trace.Trace) int {
	t.Helper()
	for i, op := range tr.Ops() {
		if op.Kind.IsAccess() {
			return i
		}
	}
	t.Fatal("trace has no accesses")
	return -1
}

// TestVerifyRaceWithRetrySeedBlocks asserts retry rounds use disjoint
// seed blocks with deterministic, seeded backoff, and that the injected
// sleeper observes the expected number of pauses.
func TestVerifyRaceWithRetrySeedBlocks(t *testing.T) {
	app := apps.NewPaperMusicPlayer()
	factory := apps.Factory(app)
	tr, err := explorer.Replay(factory, 0, []android.UIEvent{{Kind: android.EvBack}})
	if err != nil {
		t.Fatal(err)
	}
	info, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	// A self-ordered pair (First == Second access on one task) can never
	// verify, forcing every round to run dry: both ends of the "race"
	// are the same access, so the opposite order never appears.
	fake := race.Race{First: firstAccess(t, tr), Second: firstAccess(t, tr)}
	var sleeps []time.Duration
	policy := explorer.RetryPolicy{
		Retries:          2,
		AttemptsPerRound: 3,
		BaseBackoff:      time.Millisecond,
		Seed:             7,
		Sleep:            func(d time.Duration) { sleeps = append(sleeps, d) },
	}
	v, err := explorer.VerifyRaceWithRetry(factory, []android.UIEvent{{Kind: android.EvBack}}, info, fake, policy)
	if err != nil {
		t.Fatal(err)
	}
	if v.Confirmed {
		t.Fatal("degenerate race cannot be confirmed")
	}
	if v.Rounds != 3 || v.Attempts != 9 {
		t.Fatalf("rounds=%d attempts=%d, want 3/9", v.Rounds, v.Attempts)
	}
	if len(sleeps) != 2 {
		t.Fatalf("sleeps = %v, want 2 backoff pauses", sleeps)
	}
	if sleeps[0] < time.Millisecond || sleeps[1] < 2*time.Millisecond {
		t.Fatalf("backoff did not grow: %v", sleeps)
	}
	// Deterministic: the same policy seed reproduces identical pauses.
	var again []time.Duration
	policy.Sleep = func(d time.Duration) { again = append(again, d) }
	if _, err := explorer.VerifyRaceWithRetry(factory, []android.UIEvent{{Kind: android.EvBack}}, info, fake, policy); err != nil {
		t.Fatal(err)
	}
	if len(again) != 2 || again[0] != sleeps[0] || again[1] != sleeps[1] {
		t.Fatalf("backoff not deterministic: %v vs %v", again, sleeps)
	}
}

// TestVerifyRaceCompatWrapper asserts the legacy VerifyRace entry point
// still behaves as a single round.
func TestVerifyRaceCompatWrapper(t *testing.T) {
	app := apps.NewPaperMusicPlayer()
	factory := apps.Factory(app)
	tr, err := explorer.Replay(factory, 0, []android.UIEvent{{Kind: android.EvBack}})
	if err != nil {
		t.Fatal(err)
	}
	info, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	fake := race.Race{First: firstAccess(t, tr), Second: firstAccess(t, tr)}
	v, err := explorer.VerifyRace(factory, []android.UIEvent{{Kind: android.EvBack}}, info, fake, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v.Rounds != 1 || v.Attempts != 4 {
		t.Fatalf("rounds=%d attempts=%d, want 1/4", v.Rounds, v.Attempts)
	}
}
