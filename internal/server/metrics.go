package server

import "droidracer/internal/obs"

// Ingestion metrics. Status codes and rejection reasons are
// pre-registered per label value so a scrape sees the complete series
// set (at zero) from process start.
var (
	requestsTotal = map[string]*obs.Counter{}
	rejectsTotal  = map[string]*obs.Counter{}
	inflightGauge = obs.Default().Gauge("droidracer_server_inflight",
		"Ingestion requests currently being admitted.")
	requestDur = obs.Default().Histogram("droidracer_server_request_duration_seconds",
		"Ingestion request latency.", obs.DurationBuckets())
	replaysTotal = map[string]*obs.Counter{}
	// retryAfterHist distributes every Retry-After hint the server sends,
	// so operators see when the EWMA-derived estimate drifts toward the
	// configured ceiling (one slow job polluting the estimator shows up
	// as mass in the top buckets).
	retryAfterHist = obs.Default().Histogram("droidracer_server_retry_after_seconds",
		"Retry-After hints sent with 429/503 refusals, in seconds.",
		[]float64{1, 2, 5, 10, 30, 60, 120, 300, 600})
	// reclaimedTotal counts spooled orphans deleted by the gateway's
	// reconcile handshake: submissions this backend durably spooled but
	// never acknowledged, which the fleet completed elsewhere.
	reclaimedTotal = obs.Default().Counter("droidracer_server_reclaimed_total",
		"In-doubt spool orphans reclaimed by the fleet reconcile handshake.")
)

// Admission rejection reasons (the reason label of
// droidracer_server_admission_rejected_total and the "reason" field of
// rejected SubmitResponses).
const (
	RejectBodyTooLarge = "body-too-large"
	RejectEmptyBody    = "empty-body"
	RejectKeyMismatch  = "key-mismatch"
	RejectRateLimited  = "rate-limited"
	RejectInflight     = "inflight-exceeded"
	RejectQueueFull    = "queue-full"
	RejectShuttingDown = "shutting-down"
	RejectBreakerOpen  = "breaker-open"
	// RejectStorageDegraded refuses submissions while the persistence
	// stack cannot deliver durability: a poisoned journal writer or a
	// failing spool. A 202 would promise what storage cannot keep.
	RejectStorageDegraded = "storage-degraded"
	// RejectCostExceeded refuses submissions whose estimated analysis
	// footprint exceeds the hard cost ceiling — the 413 carries the
	// estimate so the client learns why.
	RejectCostExceeded = "cost-exceeded"
	// RejectResourceDegraded refuses heavy submissions while the daemon
	// is in memory brownout; Retry-After is sourced from the sentinel's
	// recovery signal.
	RejectResourceDegraded = "resource-degraded"
	// RejectMalformedTrace refuses bodies whose size directive the input
	// cannot back (trace.SizeError) — a memory bomb aimed at parser
	// preallocation, caught before the body is spooled.
	RejectMalformedTrace = "malformed-trace"
)

func init() {
	for _, code := range []string{"200", "202", "400", "404", "413", "422", "429", "503"} {
		requestsTotal[code] = obs.Default().Counter("droidracer_server_requests_total",
			"Ingestion HTTP responses, by status code.", "code", code)
	}
	for _, reason := range []string{
		RejectBodyTooLarge, RejectEmptyBody, RejectKeyMismatch, RejectRateLimited,
		RejectInflight, RejectQueueFull, RejectShuttingDown, RejectBreakerOpen,
		RejectStorageDegraded, RejectCostExceeded, RejectResourceDegraded,
		RejectMalformedTrace,
	} {
		rejectsTotal[reason] = obs.Default().Counter("droidracer_server_admission_rejected_total",
			"Submissions refused at admission, by reason.", "reason", reason)
	}
	// Duplicate submissions answered without re-running the analysis:
	// from the journal (completed work), by coalescing onto queued or
	// in-flight work, or from the dead-letter record of a quarantined
	// input.
	for _, source := range []string{"journal", "pending", "quarantine"} {
		replaysTotal[source] = obs.Default().Counter("droidracer_server_replays_total",
			"Duplicate submissions answered idempotently, by answer source.", "source", source)
	}
}

// countCode bumps the per-code request counter, tolerating codes outside
// the pre-registered set.
func countCode(code string) {
	if c, ok := requestsTotal[code]; ok {
		c.Inc()
	}
}
