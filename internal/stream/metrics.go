package stream

import (
	"time"

	"droidracer/internal/obs"
)

// Replay metrics, pre-registered at init so a scrape sees the full
// droidracer_stream_* set (at zero) before the first trace is analyzed.
var (
	replaysTotal = obs.Default().Counter("droidracer_stream_replays_total",
		"Streaming-engine replays completed.")
	replayDur = obs.Default().Histogram("droidracer_stream_replay_duration_seconds",
		"Wall-clock time per streaming replay (clock transfers + shadow-state scan).",
		obs.DurationBuckets())
	opsTotal = obs.Default().Counter("droidracer_stream_ops_total",
		"Trace operations replayed by the streaming engine.")
	joinsTotal = obs.Default().Counter("droidracer_stream_clock_joins_total",
		"Vector-clock components raised by rule transfers.")
	epochHitsTotal = obs.Default().Counter("droidracer_stream_epoch_hits_total",
		"Shadow-state scans skipped because a summary clock was covered.")
	pairsTotal = obs.Default().Counter("droidracer_stream_scanned_pairs_total",
		"Candidate access pairs examined by the shadow-state scan.")
	contextsGauge = obs.Default().Gauge("droidracer_stream_contexts",
		"Clock contexts in the most recent streaming replay.")
	racesTotal = obs.Default().Counter("droidracer_stream_races_total",
		"Races reported by the streaming engine.")
)

// publishReplay records one finished replay into the process-wide
// registry. Called once per Run, never in the hot loop.
func publishReplay(o *Outcome, d time.Duration) {
	if !obs.ExporterAttached() {
		return
	}
	replaysTotal.Inc()
	replayDur.ObserveDuration(d)
	opsTotal.Add(o.Stats.Ops)
	joinsTotal.Add(o.Stats.Joins)
	epochHitsTotal.Add(o.Stats.EpochHits)
	pairsTotal.Add(o.Stats.Pairs)
	contextsGauge.Set(int64(o.Stats.Contexts))
	racesTotal.Add(len(o.Races))
}
