package gateway

import (
	"fmt"
	"sort"
)

// vnodes is the number of virtual points each backend owns on the hash
// circle. More points smooth the key distribution across a small static
// fleet; 64 keeps the per-key imbalance under a few percent for the
// 2–16 backend deployments this gateway targets.
const vnodes = 64

// Ring is a consistent-hash ring over a static backend list. Keys (the
// content-derived idempotency keys the backends already compute) hash to
// a point on the circle and are owned by the first backend point at or
// after it; the subsequent distinct backends in circle order are the
// key's failover sequence. Consistency is what makes failover safe to
// bound: a key always tries the same backends in the same order, so
// duplicates of a submission land where the original did.
type Ring struct {
	backends []string
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash    uint64
	backend int
}

// fnv64a is the FNV-1a hash used for both backend points and keys: no
// seeds, no dependencies, stable across processes — the chaos tests
// recompute ring placement out-of-process to pick their victims.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// NewRing builds the ring over the backend list (order-insensitive: the
// circle layout depends only on the backend names).
func NewRing(backends []string) *Ring {
	r := &Ring{backends: append([]string(nil), backends...)}
	r.points = make([]ringPoint, 0, len(backends)*vnodes)
	for bi, b := range r.backends {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    fnv64a(fmt.Sprintf("%s#%d", b, v)),
				backend: bi,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// Backends returns the backend list the ring was built over.
func (r *Ring) Backends() []string { return append([]string(nil), r.backends...) }

// Order returns every distinct backend in circle order starting at
// key's hash point: Order(key)[0] is the key's home, the rest its
// failover sequence.
func (r *Ring) Order(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := fnv64a(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.backends))
	seen := make(map[int]bool, len(r.backends))
	for i := 0; i < len(r.points) && len(out) < len(r.backends); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, r.backends[p.backend])
		}
	}
	return out
}
