package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// benchJSON renders one test2json output event carrying a benchmark
// result line, the format `go test -json -bench` emits.
func benchJSON(name string, nsop float64) string {
	return `{"Time":"2024-01-01T00:00:00Z","Action":"output","Package":"droidracer","Output":"` +
		name + `-8 \t       5\t  ` + strconv.FormatFloat(nsop, 'f', -1, 64) + ` ns/op\n"}` + "\n"
}

func writeBench(t *testing.T, path string, lines ...string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o666); err != nil {
		t.Fatal(err)
	}
}

func TestParseBenchBothFormats(t *testing.T) {
	in := benchJSON("BenchmarkHB", 1000) +
		`{"Action":"run","Test":"BenchmarkHB"}` + "\n" +
		"BenchmarkScan/workers-4-8 \t 5\t 2500 ns/op\n" +
		"ok \tdroidracer\t1.2s\n"
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got["BenchmarkHB"]) != 1 || got["BenchmarkHB"][0] != 1000 {
		t.Errorf("BenchmarkHB samples = %v, want [1000]", got["BenchmarkHB"])
	}
	if len(got["BenchmarkScan/workers-4"]) != 1 || got["BenchmarkScan/workers-4"][0] != 2500 {
		t.Errorf("sub-benchmark samples = %v, want [2500] (GOMAXPROCS suffix stripped)", got["BenchmarkScan/workers-4"])
	}
}

func TestParseBenchSplitEvents(t *testing.T) {
	// test2json emits the benchmark name before the run and the timing
	// after, as separate output events — possibly interleaved across
	// packages. The parser must reassemble lines per package.
	in := `{"Action":"output","Package":"a","Output":"BenchmarkHB/workers=2 \t"}` + "\n" +
		`{"Action":"output","Package":"b","Output":"BenchmarkOther-8 \t 5\t 7 ns/op\n"}` + "\n" +
		`{"Action":"output","Package":"a","Output":"       5\t 1234 ns/op\n"}` + "\n"
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got["BenchmarkHB/workers=2"]) != 1 || got["BenchmarkHB/workers=2"][0] != 1234 {
		t.Errorf("split-event samples = %v, want [1234]", got["BenchmarkHB/workers=2"])
	}
	if len(got["BenchmarkOther"]) != 1 || got["BenchmarkOther"][0] != 7 {
		t.Errorf("interleaved package samples = %v, want [7]", got["BenchmarkOther"])
	}
}

func TestParseBenchWorkerLabelSurvivesGOMAXPROCS1(t *testing.T) {
	// At GOMAXPROCS=1 go test appends no -N suffix; the stripper must
	// not eat a worker count, which is why the labels use workers=N.
	in := "BenchmarkHB/workers=8 \t 5\t 99 ns/op\n"
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got["BenchmarkHB/workers=8"]) != 1 {
		t.Errorf("parsed names = %v, want BenchmarkHB/workers=8", got)
	}
}

func TestMedianDampsOutlier(t *testing.T) {
	m := median(map[string][]float64{
		"BenchmarkX": {100, 100, 100, 100, 100, 9000}, // one descheduled run
	})
	if m["BenchmarkX"] != 100 {
		t.Errorf("median = %v, want 100", m["BenchmarkX"])
	}
}

func TestBenchCmpRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base, cur := filepath.Join(dir, "base.json"), filepath.Join(dir, "cur.json")
	writeBench(t, base, benchJSON("BenchmarkHB", 1000), benchJSON("BenchmarkScan", 1000))
	// 30% slower on both: geomean +30%, past the 20% gate.
	writeBench(t, cur, benchJSON("BenchmarkHB", 1300), benchJSON("BenchmarkScan", 1300))
	var out bytes.Buffer
	ok, err := runBenchCmp(&out, base, cur, 20)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("30%% regression passed the 20%% gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "EXCEEDS") {
		t.Errorf("verdict missing from output:\n%s", out.String())
	}
}

func TestBenchCmpImprovementPasses(t *testing.T) {
	dir := t.TempDir()
	base, cur := filepath.Join(dir, "base.json"), filepath.Join(dir, "cur.json")
	writeBench(t, base, benchJSON("BenchmarkHB", 1000), benchJSON("BenchmarkScan", 1000))
	writeBench(t, cur, benchJSON("BenchmarkHB", 500), benchJSON("BenchmarkScan", 900))
	var out bytes.Buffer
	ok, err := runBenchCmp(&out, base, cur, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("improvement failed the gate:\n%s", out.String())
	}
}

func TestBenchCmpMixedWithinThresholdPasses(t *testing.T) {
	dir := t.TempDir()
	base, cur := filepath.Join(dir, "base.json"), filepath.Join(dir, "cur.json")
	// One 15% slower, one 10% faster: geomean ≈ +1.7%, inside the gate.
	writeBench(t, base, benchJSON("BenchmarkHB", 1000), benchJSON("BenchmarkScan", 1000))
	writeBench(t, cur, benchJSON("BenchmarkHB", 1150), benchJSON("BenchmarkScan", 900))
	var out bytes.Buffer
	ok, err := runBenchCmp(&out, base, cur, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("small mixed delta failed the gate:\n%s", out.String())
	}
}

func TestBenchCmpMedianOverCounts(t *testing.T) {
	dir := t.TempDir()
	base, cur := filepath.Join(dir, "base.json"), filepath.Join(dir, "cur.json")
	writeBench(t, base, benchJSON("BenchmarkHB", 1000))
	// Five steady counts and one 10x outlier: the median (1000) passes
	// where the mean (2500) would fail the gate.
	writeBench(t, cur,
		benchJSON("BenchmarkHB", 1000), benchJSON("BenchmarkHB", 1000),
		benchJSON("BenchmarkHB", 1000), benchJSON("BenchmarkHB", 1000),
		benchJSON("BenchmarkHB", 1000), benchJSON("BenchmarkHB", 10000))
	var out bytes.Buffer
	ok, err := runBenchCmp(&out, base, cur, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("one outlier count failed the gate:\n%s", out.String())
	}
}

func TestBenchCmpMissingBaselineTolerated(t *testing.T) {
	dir := t.TempDir()
	cur := filepath.Join(dir, "cur.json")
	writeBench(t, cur, benchJSON("BenchmarkHB", 1000))
	var out bytes.Buffer
	ok, err := runBenchCmp(&out, filepath.Join(dir, "missing.json"), cur, 20)
	if err != nil {
		t.Fatalf("missing baseline should warn, not error: %v", err)
	}
	if !ok {
		t.Fatal("missing baseline should pass the gate")
	}
}

func TestBenchCmpMissingCurrentErrors(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	writeBench(t, base, benchJSON("BenchmarkHB", 1000))
	var out bytes.Buffer
	if _, err := runBenchCmp(&out, base, filepath.Join(dir, "missing.json"), 20); err == nil {
		t.Fatal("missing current run should be an error")
	}
}

func TestBenchCmpUnmatchedReported(t *testing.T) {
	dir := t.TempDir()
	base, cur := filepath.Join(dir, "base.json"), filepath.Join(dir, "cur.json")
	writeBench(t, base, benchJSON("BenchmarkHB", 1000), benchJSON("BenchmarkGone", 1000))
	writeBench(t, cur, benchJSON("BenchmarkHB", 1000), benchJSON("BenchmarkNew", 1000))
	var out bytes.Buffer
	if _, err := runBenchCmp(&out, base, cur, 20); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BenchmarkGone (baseline only)", "BenchmarkNew (current only)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
