package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(0)
	if s.Len() != 0 || s.Count() != 0 || s.Any() {
		t.Fatalf("zero-capacity set not empty: len=%d count=%d", s.Len(), s.Count())
	}
}

func TestSetHasClear(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Has(i) {
			t.Errorf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Has(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Clear(64)
	if s.Has(64) {
		t.Error("bit 64 still set after Clear")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count after clear = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for name, fn := range map[string]func(){
		"Set-neg":   func() { s.Set(-1) },
		"Set-high":  func() { s.Set(10) },
		"Has-high":  func() { s.Has(10) },
		"Clear-neg": func() { s.Clear(-1) },
		"New-neg":   func() { New(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestUnionWith(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(3)
	b.Set(70)
	b.Set(3)
	if !a.UnionWith(b) {
		t.Error("UnionWith did not report change")
	}
	if !a.Has(3) || !a.Has(70) {
		t.Error("union missing bits")
	}
	if a.UnionWith(b) {
		t.Error("second UnionWith reported change for subset")
	}
}

func TestUnionCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on capacity mismatch")
		}
	}()
	New(64).UnionWith(New(65))
}

func TestIntersectsWith(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(10)
	b.Set(11)
	if a.IntersectsWith(b) {
		t.Error("disjoint sets reported as intersecting")
	}
	b.Set(10)
	if !a.IntersectsWith(b) {
		t.Error("overlapping sets reported as disjoint")
	}
}

func TestCloneEqualReset(t *testing.T) {
	a := New(90)
	a.Set(5)
	a.Set(89)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal to original")
	}
	b.Set(6)
	if a.Equal(b) {
		t.Fatal("mutating clone affected equality with original unexpectedly")
	}
	if a.Has(6) {
		t.Fatal("clone shares storage with original")
	}
	a.Reset()
	if a.Any() || a.Count() != 0 {
		t.Fatal("Reset left bits set")
	}
	if a.Len() != 90 {
		t.Fatal("Reset changed capacity")
	}
}

func TestEqualDifferentCapacity(t *testing.T) {
	if New(64).Equal(New(65)) {
		t.Fatal("sets of different capacities reported equal")
	}
}

func TestForEachOrder(t *testing.T) {
	s := New(200)
	want := []int{0, 1, 64, 100, 199}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: got %v, want %v", got, want)
		}
	}
}

func TestNextSet(t *testing.T) {
	s := New(200)
	s.Set(5)
	s.Set(64)
	s.Set(199)
	cases := []struct{ from, want int }{
		{-3, 5}, {0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 199}, {199, 199}, {200, -1},
	}
	for _, c := range cases {
		if got := s.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := New(10).NextSet(0); got != -1 {
		t.Errorf("NextSet on empty = %d, want -1", got)
	}
}

// TestQuickModel checks the bitset against a map-based model under random
// operation sequences.
func TestQuickModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		s := New(n)
		model := map[int]bool{}
		for k := 0; k < 200; k++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				s.Set(i)
				model[i] = true
			case 1:
				s.Clear(i)
				delete(model, i)
			case 2:
				if s.Has(i) != model[i] {
					return false
				}
			}
		}
		if s.Count() != len(model) {
			return false
		}
		seen := 0
		ok := true
		s.ForEach(func(i int) {
			seen++
			if !model[i] {
				ok = false
			}
		})
		return ok && seen == len(model)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUnionIsUpperBound checks that a ∪ b contains exactly the bits of
// both operands.
func TestQuickUnionIsUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(256)
		a, b := New(n), New(n)
		for k := 0; k < n/2; k++ {
			a.Set(rng.Intn(n))
			b.Set(rng.Intn(n))
		}
		aOrig := a.Clone()
		a.UnionWith(b)
		for i := 0; i < n; i++ {
			want := aOrig.Has(i) || b.Has(i)
			if a.Has(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
