// Engine-differential gates: the streaming vector-clock engine must
// report exactly the races the graph engine reports — same locations,
// same access pairs, same categories — on every Table 2 application
// trace and on a generated random-trace corpus. CI runs these as the
// engine-differential job and uploads any divergent trace as an
// artifact; FuzzStreamVsGraph extends the same property to adversarial
// inputs in the fuzz smoke step.
package droidracer_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"droidracer"
	"droidracer/internal/apps"
	"droidracer/internal/explorer"
	"droidracer/internal/paper"
	"droidracer/internal/sentinel"
	"droidracer/internal/trace"
)

// engineOpts returns the default analysis options pinned to one engine.
func engineOpts(engine string) droidracer.Options {
	opts := droidracer.DefaultOptions()
	opts.Engine = engine
	return opts
}

// diffEngines analyzes tr under both engines and reports the two race
// sets plus whether they diverge. Validation runs once (it is engine
// independent); a trace both engines reject is not a divergence.
func diffEngines(t *testing.T, tr *droidracer.Trace) (graph, stream []droidracer.Race, diverged bool) {
	t.Helper()
	gres, gerr := droidracer.Analyze(tr, engineOpts(droidracer.EngineGraph))
	sres, serr := droidracer.Analyze(tr, engineOpts(droidracer.EngineStream))
	if (gerr == nil) != (serr == nil) {
		t.Errorf("engines disagree on acceptance: graph err=%v, stream err=%v", gerr, serr)
		return nil, nil, true
	}
	if gerr != nil {
		return nil, nil, false
	}
	graph, stream = gres.Races, sres.Races
	if len(graph) == 0 && len(stream) == 0 {
		return graph, stream, false
	}
	return graph, stream, !reflect.DeepEqual(graph, stream)
}

// TestEngineEquivalence is the acceptance gate from the paper
// reproduction: on every Table 2 application's representative trace,
// -engine=stream reports the identical deduplicated race set the graph
// engine reports.
func TestEngineEquivalence(t *testing.T) {
	for _, app := range apps.All() {
		name := app.Name()
		t.Run(name, func(t *testing.T) {
			tr := representative(t, name).Trace
			graph, stream, diverged := diffEngines(t, tr)
			if diverged {
				t.Errorf("race sets diverge on %s:\n graph:  %v\n stream: %v", name, graph, stream)
			}
		})
	}
}

// TestEngineDifferentialCorpus runs both engines over a generated
// corpus of random explorer traces and fails on any divergence,
// writing the offending trace where CI can pick it up as an artifact
// (ENGINE_DIFF_DIR, defaulting to the test's temp dir).
func TestEngineDifferentialCorpus(t *testing.T) {
	perApp := 40
	if testing.Short() {
		perApp = 6
	}
	corpusApps := []string{"Aard Dictionary", "Music Player", "Messenger", "My Tracks", "Tomdroid Notes"}
	total, divergent := 0, 0
	for _, name := range corpusApps {
		app, err := apps.New(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := explorer.RandomExplore(apps.Factory(app), explorer.RandomOptions{
			Events: 4, Runs: perApp, Seed: 20260808,
		})
		if err != nil {
			t.Fatal(err)
		}
		for ti, tst := range res.Tests {
			total++
			graph, stream, diverged := diffEngines(t, tst.Trace)
			if !diverged {
				continue
			}
			divergent++
			path := saveDivergentTrace(t, fmt.Sprintf("%s-%d", strings.ReplaceAll(name, " ", "_"), ti),
				tst.Trace, graph, stream)
			t.Errorf("%s trace %d: engines diverge (saved to %s)\n graph:  %v\n stream: %v",
				name, ti, path, graph, stream)
		}
	}
	t.Logf("engine-differential corpus: %d traces, %d divergent", total, divergent)
}

// saveDivergentTrace writes the trace text and both race sets to the
// artifact directory so a CI failure ships a reproducer.
func saveDivergentTrace(t *testing.T, name string, tr *droidracer.Trace, graph, stream []droidracer.Race) string {
	t.Helper()
	dir := os.Getenv("ENGINE_DIFF_DIR")
	if dir == "" {
		dir = t.TempDir()
	} else if err := os.MkdirAll(dir, 0o777); err != nil {
		t.Logf("cannot create %s: %v", dir, err)
		dir = t.TempDir()
	}
	var sb strings.Builder
	if err := droidracer.FormatTrace(&sb, tr); err != nil {
		t.Fatalf("format divergent trace: %v", err)
	}
	sb.WriteString(fmt.Sprintf("\n# graph:  %v\n# stream: %v\n", graph, stream))
	path := filepath.Join(dir, name+".divergent.trace")
	if err := os.WriteFile(path, []byte(sb.String()), 0o666); err != nil {
		t.Logf("cannot write %s: %v", path, err)
	}
	return path
}

// hostileTrace builds the alternating-thread write bomb: n ops that
// merge into almost no graph nodes' worth of runs (every access flips
// threads, so every access is its own node) — the shape that maximizes
// the O(nodes²) closure. The streaming engine replays it with two
// clock contexts and per-location shadow state in O(n).
func hostileTrace(tb testing.TB, n int) *droidracer.Trace {
	tb.Helper()
	ops := make([]trace.Op, 0, n+4)
	ops = append(ops,
		trace.ThreadInit(1),
		trace.Fork(1, 2), trace.ThreadInit(2),
		trace.Fork(1, 3), trace.ThreadInit(3),
	)
	for i := len(ops); i < n; i++ {
		th := trace.ThreadID(2 + i%2)
		ops = append(ops, trace.Write(th, "Bomb.value"))
	}
	return trace.FromOps(ops)
}

// TestStreamAdmitsHostileTrace is the cost-governance acceptance gate:
// the alternating-thread bomb that admission 413s under the graph
// engine's quadratic model classifies as normal work under the
// streaming engine's linear model — and the stream engine actually
// analyzes it, finding its races, without building a graph.
func TestStreamAdmitsHostileTrace(t *testing.T) {
	n := 1_000_000
	if testing.Short() {
		n = 100_000
	}
	tr := hostileTrace(t, n)
	var sb strings.Builder
	if err := droidracer.FormatTrace(&sb, tr); err != nil {
		t.Fatal(err)
	}
	est, err := sentinel.EstimateBytes([]byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	// A soft budget generous enough for any linear-cost job: the graph
	// engine's quadratic estimate for this trace (~hundreds of GB)
	// overshoots even the hard ceiling by orders of magnitude, while the
	// stream engine's linear estimate (~160 MB for a million ops) sits
	// comfortably under the soft one.
	lim := sentinel.CostLimits{Soft: 256 << 20, Hard: 1 << 30}
	if got := est.ClassifyEngine(lim, false); got != sentinel.ClassRejected {
		t.Errorf("graph engine should reject the bomb (est %d bytes), classified %s", est.MemBytes, got)
	}
	if got := est.ClassifyEngine(lim, true); got != sentinel.ClassNormal {
		t.Errorf("stream engine should admit the bomb (est %d bytes), classified %s", est.StreamBytes, got)
	}

	opts := engineOpts(droidracer.EngineStream)
	opts.Validate = false // the replay semantics check is O(n) but not the point here
	res, err := droidracer.Analyze(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph != nil {
		t.Error("stream result should carry no graph")
	}
	if res.Engine != droidracer.EngineStream {
		t.Errorf("result engine = %q, want %q", res.Engine, droidracer.EngineStream)
	}
	found := false
	for _, r := range res.Races {
		if r.Loc == "Bomb.value" && r.Category == droidracer.Multithreaded {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a multithreaded race on Bomb.value, got %v", res.Races)
	}
}

// FuzzStreamVsGraph fuzzes trace text through both engines: any input
// both accept must yield identical race sets, and acceptance itself
// must agree. The seed corpus (testdata/fuzz/FuzzStreamVsGraph) holds
// the paper figures and an async-rule sampler.
func FuzzStreamVsGraph(f *testing.F) {
	for _, tr := range []*droidracer.Trace{paper.Figure3(), paper.Figure4()} {
		var sb strings.Builder
		if err := droidracer.FormatTrace(&sb, tr); err != nil {
			f.Fatal(err)
		}
		f.Add([]byte(sb.String()))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // keep per-input analysis bounded
		}
		tr, err := droidracer.ParseTrace(strings.NewReader(string(data)))
		if err != nil {
			return
		}
		gres, gerr := droidracer.Analyze(tr, engineOpts(droidracer.EngineGraph))
		sres, serr := droidracer.Analyze(tr, engineOpts(droidracer.EngineStream))
		if (gerr == nil) != (serr == nil) {
			t.Fatalf("engines disagree on acceptance: graph err=%v, stream err=%v", gerr, serr)
		}
		if gerr != nil {
			return
		}
		if !reflect.DeepEqual(gres.Races, sres.Races) &&
			(len(gres.Races) > 0 || len(sres.Races) > 0) {
			t.Fatalf("race sets diverge:\n graph:  %v\n stream: %v", gres.Races, sres.Races)
		}
	})
}
