package core

import "droidracer/internal/obs"

// Analysis outcome counters, pre-registered per mode so the series set
// is complete from process start. Modes mirror report.Outcome: full,
// degraded (baseline fallback), partial (error alongside partial
// results), error (including panics).
var analysisCounters = map[string]*obs.Counter{}

func init() {
	for _, mode := range []string{"full", "degraded", "partial", "error"} {
		analysisCounters[mode] = obs.Default().Counter("droidracer_analyses_total",
			"Completed analyses, by outcome mode.", "mode", mode)
	}
}

// publishAnalysis counts one finished analysis by its outcome mode.
func publishAnalysis(res *Result, err error) {
	if !obs.ExporterAttached() {
		return
	}
	mode := "full"
	switch {
	case err != nil && res != nil:
		mode = "partial"
	case err != nil:
		mode = "error"
	case res != nil && res.Degraded:
		mode = "degraded"
	}
	analysisCounters[mode].Inc()
}
