package lifecycle

import "fmt"

// Service lifecycle callbacks (started services; binding is out of scope,
// as in the paper's discussion).
const (
	SvcOnCreate       Callback = "Service.onCreate"
	SvcOnStartCommand Callback = "Service.onStartCommand"
	SvcOnDestroy      Callback = "Service.onDestroy"
)

// ServiceState is the lifecycle state of a started service.
type ServiceState int

// Service states.
const (
	SvcIdle ServiceState = iota
	SvcRunning
	SvcDestroyed
)

func (s ServiceState) String() string {
	switch s {
	case SvcIdle:
		return "idle"
	case SvcRunning:
		return "running"
	case SvcDestroyed:
		return "destroyed"
	default:
		return fmt.Sprintf("ServiceState(%d)", int(s))
	}
}

// Service models a started service: onCreate once, any number of
// onStartCommand deliveries, onDestroy once.
type Service struct {
	state ServiceState
}

// NewService returns a service that has not been created yet.
func NewService() *Service { return &Service{} }

// State returns the current service state.
func (s *Service) State() ServiceState { return s.state }

// StartSequence returns the callbacks for a startService request: onCreate
// on first start, then onStartCommand.
func (s *Service) StartSequence() ([]Callback, error) {
	switch s.state {
	case SvcIdle:
		return []Callback{SvcOnCreate, SvcOnStartCommand}, nil
	case SvcRunning:
		return []Callback{SvcOnStartCommand}, nil
	}
	return nil, fmt.Errorf("lifecycle: startService on %s service", s.state)
}

// StopSequence returns the callbacks for stopService.
func (s *Service) StopSequence() ([]Callback, error) {
	if s.state != SvcRunning {
		return nil, fmt.Errorf("lifecycle: stopService on %s service", s.state)
	}
	return []Callback{SvcOnDestroy}, nil
}

// Apply performs one service callback transition.
func (s *Service) Apply(cb Callback) error {
	switch {
	case cb == SvcOnCreate && s.state == SvcIdle:
		s.state = SvcRunning
	case cb == SvcOnStartCommand && s.state == SvcRunning:
		// no state change
	case cb == SvcOnDestroy && s.state == SvcRunning:
		s.state = SvcDestroyed
	default:
		return fmt.Errorf("lifecycle: service callback %s not enabled in state %s", cb, s.state)
	}
	return nil
}

// Receiver models a dynamically registered BroadcastReceiver: onReceive is
// enabled between registration and unregistration.
type Receiver struct {
	registered bool
}

// NewReceiver returns an unregistered receiver.
func NewReceiver() *Receiver { return &Receiver{} }

// Register marks the receiver registered; onReceive becomes enabled.
func (r *Receiver) Register() error {
	if r.registered {
		return fmt.Errorf("lifecycle: receiver already registered")
	}
	r.registered = true
	return nil
}

// Unregister disables delivery.
func (r *Receiver) Unregister() error {
	if !r.registered {
		return fmt.Errorf("lifecycle: receiver not registered")
	}
	r.registered = false
	return nil
}

// CanReceive reports whether a broadcast may be delivered.
func (r *Receiver) CanReceive() bool { return r.registered }
