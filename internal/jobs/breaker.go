package jobs

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"droidracer/internal/budget"
)

// RetryPolicy bounds re-execution of failed job attempts. Retries target
// transient failures — scheduling-dependent divergence, a deadline that
// barely tripped under load — while the circuit breaker (BreakerPolicy)
// catches inputs that fail deterministically.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per job (minimum and
	// default 1: no retry).
	MaxAttempts int
	// BaseBackoff is the pause before the second attempt; it doubles per
	// attempt with up to 50% deterministic jitter from Seed.
	BaseBackoff time.Duration
	// Seed seeds the backoff jitter (default 1).
	Seed int64
	// Retryable decides whether an error is worth another attempt. The
	// default retries everything except explicit cancellation.
	Retryable func(error) bool
	// Sleep replaces the interruptible pause in tests.
	Sleep func(time.Duration)
}

func (r RetryPolicy) withDefaults() RetryPolicy {
	if r.MaxAttempts < 1 {
		r.MaxAttempts = 1
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Retryable == nil {
		r.Retryable = func(err error) bool {
			be, ok := budget.AsError(err)
			return !ok || !be.Canceled()
		}
	}
	return r
}

// pause sleeps the exponential backoff for the given 1-based attempt,
// interruptibly: a canceled pool context cuts the wait short so graceful
// shutdown is not held hostage by a backoff timer.
func (r RetryPolicy) pause(ctx context.Context, attempt int) error {
	if r.BaseBackoff <= 0 {
		return nil
	}
	d := r.BaseBackoff << (attempt - 1)
	rng := rand.New(rand.NewSource(r.Seed + int64(attempt)))
	d += time.Duration(rng.Int63n(int64(d)/2 + 1))
	if r.Sleep != nil {
		r.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return &budget.Error{Stage: "jobs", Resource: budget.ResourceContext, Cause: ctx.Err()}
	case <-t.C:
		return nil
	}
}

// BreakerPolicy configures the per-input circuit breaker: after
// Threshold consecutive hard failures (panics or wall-clock/budget
// exhaustion) on the same job key, the breaker opens for that key and
// subsequent runs go straight to the job's degraded fallback. Softer
// failures (parse errors, divergence) do not count — they are either
// permanent (retries won't help, but neither would the fallback) or
// transient (retries handle them).
type BreakerPolicy struct {
	// Threshold is the consecutive hard-failure count that opens the
	// breaker (default 3; negative disables the breaker).
	Threshold int
}

// breaker tracks consecutive hard failures per key. Once open for a key
// it stays open for the life of the pool: the same input deterministically
// re-fed to the code that paniced will panic again, so there is nothing
// a half-open probe would learn that costs less than the crash.
type breaker struct {
	mu          sync.Mutex
	threshold   int
	consecutive map[string]int
	open        map[string]error
}

func newBreaker(p BreakerPolicy) *breaker {
	t := p.Threshold
	if t == 0 {
		t = 3
	}
	return &breaker{
		threshold:   t,
		consecutive: make(map[string]int),
		open:        make(map[string]error),
	}
}

// openFor reports whether the breaker is open for key, with the failure
// that opened it.
func (b *breaker) openFor(key string) (error, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	err, ok := b.open[key]
	return err, ok
}

// success resets the consecutive-failure count for key.
func (b *breaker) success(key string) {
	b.mu.Lock()
	if b.consecutive[key] > 0 {
		// A sub-threshold hard-failure streak ended in success. The
		// breaker never opened for this key, so this is not a state
		// transition — the closed series stays 0, like half-open —
		// just a streak reset, counted on its own metric.
		breakerStreakResets.Inc()
	}
	delete(b.consecutive, key)
	b.mu.Unlock()
}

// failure records a failed attempt; hard failures (panic, budget
// exhaustion) count toward the threshold. It reports whether this
// failure opened the breaker.
func (b *breaker) failure(key string, err error) bool {
	if b.threshold < 0 || !hardFailure(err) {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, already := b.open[key]; already {
		return false
	}
	b.consecutive[key]++
	if b.consecutive[key] >= b.threshold {
		b.open[key] = err
		breakerTransitions["open"].Inc()
		breakersOpen.Set(int64(len(b.open)))
		return true
	}
	return false
}

// hardFailure reports whether err is the kind of failure the breaker
// counts: a recovered panic or exhausted budget (wall clock, graph
// nodes, closure edges, sequences) — not cancellation, not plain errors.
func hardFailure(err error) bool {
	var pe *budget.PanicError
	if errors.As(err, &pe) {
		return true
	}
	if be, ok := budget.AsError(err); ok {
		return !be.Canceled()
	}
	return false
}
