// Systematic UI testing: the DroidRacer UI Explorer enumerates event
// sequences depth-first over a two-screen application, analyzes every
// explored test, and aggregates the races it exposed — including a
// co-enabled race that only appears when two buttons on the same screen
// fire in a particular combination.
//
//	go run ./examples/explorer
package main

import (
	"fmt"
	"log"

	"droidracer"
)

// listActivity shows a list and offers refresh and sort actions. Both
// handlers touch the shared cursor without ordering: a co-enabled race.
// The "open" button starts a detail activity.
type listActivity struct {
	droidracer.BaseActivity
}

func (a *listActivity) OnCreate(c *droidracer.Ctx) {
	c.Write("List.cursor")
	c.AddButton("refresh", true, func(c *droidracer.Ctx) {
		c.Write("List.cursor")
	})
	c.AddButton("sort", true, func(c *droidracer.Ctx) {
		c.Read("List.cursor")
	})
	c.AddButton("open", true, func(c *droidracer.Ctx) {
		c.StartActivity("Detail")
	})
}

type detailActivity struct {
	droidracer.BaseActivity
}

func (a *detailActivity) OnCreate(c *droidracer.Ctx) {
	c.Read("List.cursor")
	c.Write("Detail.item")
}

func factory(seed int64) (*droidracer.Env, error) {
	opts := droidracer.DefaultEnvOptions()
	opts.Seed = seed
	env := droidracer.NewEnv(opts)
	env.RegisterActivity("List", func() droidracer.Activity { return &listActivity{} })
	env.RegisterActivity("Detail", func() droidracer.Activity { return &detailActivity{} })
	if err := env.Launch("List"); err != nil {
		env.Close()
		return nil, err
	}
	return env, nil
}

func main() {
	res, err := droidracer.Explore(factory, droidracer.ExploreOptions{MaxEvents: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explored %d tests (%d sequences, %d events fired)\n",
		len(res.Tests), res.SequencesExplored, res.EventsFired)

	type key struct {
		loc string
		cat droidracer.Category
	}
	seen := map[key][]string{}
	for _, test := range res.Tests {
		result, err := droidracer.Analyze(test.Trace, droidracer.DefaultOptions())
		if err != nil {
			log.Fatalf("test %s: %v", test.Name(), err)
		}
		for _, r := range result.Races {
			k := key{string(r.Loc), r.Category}
			seen[k] = append(seen[k], test.Name())
		}
	}
	if len(seen) == 0 {
		fmt.Println("no races exposed")
		return
	}
	for k, tests := range seen {
		fmt.Printf("%-13s race on %-14s exposed by %d/%d tests (e.g. %s)\n",
			k.cat, k.loc, len(tests), len(res.Tests), tests[0])
	}
}
