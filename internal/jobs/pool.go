// Package jobs is the supervised job-execution layer of the resilient
// analysis service: a worker pool with a bounded queue, admission
// control and load-shedding; per-job supervision composing budget.Limits
// with retry-with-backoff and a per-input circuit breaker that falls
// back to the degraded pure-MT baseline; crash-safe checkpoint/resume of
// exploration campaigns over a write-ahead journal; and graceful
// shutdown that drains in-flight work, checkpoints the rest, and
// reports per-job outcomes through the report package.
//
// The design follows the paper's economics: the UI Explorer's bound-k
// DFS (§5) is the expensive resource, so its progress is journaled and
// resumable (see Campaign), while individual trace analyses are cheap
// enough to restart whole and are tracked at job granularity.
package jobs

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"droidracer/internal/budget"
	"droidracer/internal/core"
	"droidracer/internal/faultinject"
	"droidracer/internal/journal"
	"droidracer/internal/obs"
	"droidracer/internal/report"
	"droidracer/internal/storage"
	"droidracer/internal/trace"
)

// Job is one unit of supervised work.
type Job struct {
	// Name labels the job in reports and journals.
	Name string
	// Key groups jobs for the circuit breaker: repeated panics or
	// timeouts under the same key open the breaker for that input.
	// Defaults to Name.
	Key string
	// Run performs the full-fidelity work under ctx and the pool's
	// per-attempt budget limits.
	Run func(ctx context.Context, lim budget.Limits) (*core.Result, error)
	// Fallback, when non-nil, is the degraded path used once the breaker
	// for Key is open; reason is the failure that opened it. It should
	// avoid the code that failed (e.g. core.AnalyzeBaseline instead of
	// the full pipeline).
	Fallback func(ctx context.Context, reason error) (*core.Result, error)
	// Path, when set, is the job's input file on disk. The pool's
	// quarantine (Config.Quarantine) moves it to the dead-letter
	// directory when the job proves poisonous.
	Path string
	// Trace, when set, is the distributed-trace recorder the job's spans
	// (queue-wait, job.run, analysis phases) buffer into; the pool makes
	// the commit decision at finish time (see Config.TraceSlow). When
	// nil, the pool mints an unsampled recorder so slow, failed, and
	// quarantined jobs from any intake path (spool sweep, CLI) are still
	// tail-captured.
	Trace *obs.TraceRec
	// TraceParent is the span ID the job's spans hang under — typically
	// the ingestion server's admission span.
	TraceParent string
}

func (j Job) key() string {
	if j.Key != "" {
		return j.Key
	}
	return j.Name
}

// RejectionError is the typed load-shedding rejection: a saturated or
// shutting-down pool refuses work immediately instead of blocking the
// producer or growing without bound.
type RejectionError struct {
	// Reason is ReasonQueueFull or ReasonShuttingDown.
	Reason string
	// Depth and Capacity describe the queue at rejection time.
	Depth, Capacity int
}

// Shedding reasons.
const (
	ReasonQueueFull    = "queue-full"
	ReasonShuttingDown = "shutting-down"
)

// Error implements error.
func (e *RejectionError) Error() string {
	return fmt.Sprintf("jobs: rejected (%s, %d/%d queued)", e.Reason, e.Depth, e.Capacity)
}

// Config configures a pool. The zero value gets one worker, a
// 16-deep queue, no retries, and a breaker threshold of 3.
type Config struct {
	// Workers is the number of concurrent job executors (default 1).
	Workers int
	// QueueDepth bounds the admission queue (default 16). Submit sheds
	// with a *RejectionError once the queue is full.
	QueueDepth int
	// Budget bounds each execution attempt; composed with the job's
	// context (the earlier deadline wins, see budget.NewChecker).
	Budget budget.Limits
	// Parallelism is the per-job analysis worker budget: how many
	// goroutines one job's happens-before closure and race scan may
	// shard across (core.Options.Parallelism). 0 divides GOMAXPROCS
	// evenly among the pool's workers (minimum 1), so an 8-worker pool
	// on 8 cores runs 8 serial analyses instead of oversubscribing the
	// machine 8×8. The resolved value is exposed as JobParallelism for
	// the layer that builds analysis options (racedetd, the ingestion
	// server).
	Parallelism int
	// Retry bounds re-execution of failed attempts.
	Retry RetryPolicy
	// Breaker configures the per-input circuit breaker.
	Breaker BreakerPolicy
	// Journal, when set, receives a "job" entry per finished job, fsync'd
	// immediately, so a restarted daemon can skip completed inputs. The
	// pool does not close it.
	Journal *journal.Writer
	// Events, when set, receives structured lifecycle events (job.finish,
	// job.shed, job.quarantine) — see obs.NewEventLog. Finish events
	// carry the journal sequence number of the job's entry so log lines
	// correlate with WAL records.
	Events *slog.Logger
	// Quarantine, when set, dead-letters poison inputs: a job that fails
	// deterministically after retries (see Poisonous) gets a quarantine
	// journal entry instead of a job entry, its outcome is marked
	// report.JobQuarantined, and its input file (Job.Path) is moved into
	// the quarantine directory so a restart never re-ingests it.
	Quarantine *Quarantine
	// OnFinish, when set, observes every finished outcome (including
	// drained and quarantined ones) after it is journaled. It runs on the
	// worker goroutine; the ingestion layer uses it to answer duplicate
	// submissions from completed work.
	OnFinish func(report.Outcome)
	// TraceSlow is the tail-capture threshold: an unsampled job whose
	// execution (queue wait included) exceeds it commits its trace to the
	// span store even though no client asked for it. Failed and
	// quarantined jobs always commit. 0 disables the slowness trigger
	// (failure capture stays on).
	TraceSlow time.Duration
}

// queuedJob pairs a job with its admission time so the worker can
// reconstruct the queue-wait span without widening the Job API.
type queuedJob struct {
	Job
	enqueued time.Time
}

// Pool runs submitted jobs on a fixed set of workers.
type Pool struct {
	cfg     Config
	queue   chan queuedJob
	rootCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	brk     *Breaker

	mu       sync.Mutex
	idle     *sync.Cond
	draining bool
	pending  int            // accepted jobs not yet finished
	queued   map[string]int // name -> pending count (not yet started)
	sheds    map[string]int // rejection reason -> count
	outcomes []report.Outcome
}

// NewPool starts a pool with cfg.
func NewPool(cfg Config) *Pool {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 16
	}
	if cfg.Parallelism < 1 {
		cfg.Parallelism = runtime.GOMAXPROCS(0) / cfg.Workers
		if cfg.Parallelism < 1 {
			cfg.Parallelism = 1
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		cfg:     cfg,
		queue:   make(chan queuedJob, cfg.QueueDepth),
		rootCtx: ctx,
		cancel:  cancel,
		brk:     newBreaker(cfg.Breaker),
		queued:  make(map[string]int),
		sheds:   make(map[string]int),
	}
	queueCapacity.Set(int64(cap(p.queue)))
	queueDepth.Set(0)
	p.idle = sync.NewCond(&p.mu)
	for i := 0; i < cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// JobParallelism returns the resolved per-job analysis worker budget
// (Config.Parallelism after defaulting against GOMAXPROCS and the
// worker count). The layer that builds core.Options for submitted jobs
// copies it into Options.Parallelism.
func (p *Pool) JobParallelism() int { return p.cfg.Parallelism }

// Submit enqueues a job. It never blocks: when the queue is full or the
// pool is shutting down it sheds the job, recording a shed outcome and
// returning the *RejectionError so the producer can spill, requeue, or
// surface it.
func (p *Pool) Submit(job Job) error {
	p.mu.Lock()
	if p.draining {
		p.mu.Unlock()
		return p.shed(job.Name, ReasonShuttingDown)
	}
	select {
	case p.queue <- queuedJob{Job: job, enqueued: time.Now()}:
		p.queued[job.Name]++
		p.pending++
		p.mu.Unlock()
		queueDepth.Set(int64(len(p.queue)))
		return nil
	default:
		p.mu.Unlock()
		return p.shed(job.Name, ReasonQueueFull)
	}
}

// shed records a load-shedding rejection: the outcome row, the
// per-reason tallies (local for Sheds, global for the registry), an
// optional structured event, and the returned *RejectionError carrying
// the queue state observed at rejection time.
func (p *Pool) shed(name, reason string) *RejectionError {
	depth := len(p.queue)
	if reason == ReasonQueueFull {
		// The failed non-blocking send observed a full queue; a worker
		// may have drained it since, so re-reading len here could yield a
		// "queue full" message with depth < capacity. Report the state
		// the producer actually hit.
		depth = cap(p.queue)
	}
	rej := &RejectionError{Reason: reason, Depth: depth, Capacity: cap(p.queue)}
	shedCounters[reason].Inc()
	p.mu.Lock()
	p.sheds[reason]++
	p.outcomes = append(p.outcomes, report.Outcome{Name: name, JobState: report.JobShed, Err: rej})
	p.mu.Unlock()
	if p.cfg.Events != nil {
		p.cfg.Events.Info("job.shed", "job", name, "reason", reason,
			"depth", rej.Depth, "capacity", rej.Capacity)
	}
	return rej
}

// Sheds returns the number of jobs shed per rejection reason.
func (p *Pool) Sheds() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int, len(p.sheds))
	for reason, n := range p.sheds {
		out[reason] = n
	}
	return out
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for qj := range p.queue {
		job := qj.Job
		queueDepth.Set(int64(len(p.queue)))
		p.mu.Lock()
		if p.queued[job.Name]--; p.queued[job.Name] == 0 {
			delete(p.queued, job.Name)
		}
		draining := p.draining
		p.mu.Unlock()
		if draining {
			// Jobs still queued at shutdown are checkpointed, not run:
			// they will be resubmitted by the next incarnation.
			p.finish(report.Outcome{Name: job.Name, JobState: report.JobDrained, TraceID: job.Trace.TraceID()})
			job.Trace.Commit(false)
			continue
		}
		if job.Trace == nil {
			// Untraced intake (spool sweep, direct Submit): record under a
			// fresh unsampled trace so tail capture still sees slow and
			// failed work nobody asked to watch.
			job.Trace = obs.Traces().Begin(obs.NewTraceID(), false)
		}
		job.Trace.AddSpan("queue-wait", job.TraceParent, qj.enqueued, time.Since(qj.enqueued))
		sp := job.Trace.StartSpan("job.run", job.TraceParent)
		inflight.Inc()
		out := p.runJob(job, obs.ContextWithTrace(p.rootCtx, job.Trace, sp.ID()))
		inflight.Dec()
		sp.SetAttr("mode", OutcomeMode(out))
		sp.SetErr(out.Err)
		sp.End()
		out.TraceID = job.Trace.TraceID()
		if p.cfg.Quarantine != nil && Poisonous(out) {
			p.quarantine(job, &out)
		}
		p.finish(out)
		// Tail capture: keep the trace when the client sampled it, the job
		// failed or was quarantined, or it blew the slowness threshold.
		force := out.Err != nil || out.JobState == report.JobQuarantined ||
			(p.cfg.TraceSlow > 0 && time.Since(qj.enqueued) > p.cfg.TraceSlow)
		job.Trace.Commit(force)
	}
}

// quarantine dead-letters a poison input: the quarantine journal entry
// is made durable first, then the input file moves to the quarantine
// directory. A crash between the two is converged by the next
// incarnation, which replays the journal entry and re-does the move.
func (p *Pool) quarantine(job Job, out *report.Outcome) {
	out.JobState = report.JobQuarantined
	if p.cfg.Journal != nil {
		jerr := p.cfg.Journal.Append(quarantineEntryType, QuarantineEntry{
			Name:    out.Name,
			Reason:  out.Err.Error(),
			TraceID: out.TraceID,
		})
		if jerr == nil {
			jerr = p.cfg.Journal.Sync()
		}
		if jerr != nil && p.cfg.Events != nil {
			// The dead-letter entry is not durable: a restart may
			// re-ingest this poison input once more. Surface it — the
			// poisoned writer also flips the daemon unready, so the
			// re-ingestion loop cannot run unobserved.
			p.cfg.Events.Error("job.quarantine-journal-failed", "job", out.Name, "err", jerr.Error())
		}
	}
	if err := p.cfg.Quarantine.Absorb(job.Path); err != nil && p.cfg.Events != nil {
		p.cfg.Events.Warn("job.quarantine-move-failed", "job", out.Name, "err", err.Error())
	}
	quarantinedTotal.Inc()
	if p.cfg.Events != nil {
		p.cfg.Events.Info("job.quarantine", "job", out.Name, "reason", out.Err.Error())
	}
}

// record appends an outcome without journaling (shed jobs never ran; a
// restart should still see their input pending).
func (p *Pool) record(out report.Outcome) {
	p.mu.Lock()
	p.outcomes = append(p.outcomes, out)
	p.mu.Unlock()
}

// finish appends an outcome, journals it when the pool has a journal,
// and wakes Quiesce waiters.
func (p *Pool) finish(out report.Outcome) {
	p.record(out)
	seq := 0
	if p.cfg.Journal != nil && out.JobState != report.JobDrained && out.JobState != report.JobQuarantined {
		// AppendSeq returns the number assigned under the journal's own
		// mutex: with several workers finishing at once, re-reading Seq()
		// here could observe another job's entry. Quarantined jobs were
		// already dead-lettered with their own entry type.
		je := JobEntry{
			Name:     out.Name,
			Mode:     OutcomeMode(out),
			Attempts: out.Attempts,
			TraceID:  out.TraceID,
		}
		if out.Result != nil {
			je.Races = len(out.Result.Races)
			je.Digest = ResultDigest(out.Result)
		}
		var jerr error
		seq, jerr = p.cfg.Journal.AppendSeq("job", je)
		if jerr == nil {
			jerr = p.cfg.Journal.Sync()
		}
		if jerr != nil {
			// The outcome is correct but not durably recorded: a restart
			// will re-analyze this input (idempotent — same digest). The
			// error must not vanish: the writer is now poisoned and the
			// server's storage check turns submissions away, but the job
			// that crossed the failure is logged here.
			seq = 0
			if p.cfg.Events != nil {
				p.cfg.Events.Error("job.journal-failed", "job", out.Name, "err", jerr.Error())
			}
		}
	}
	if p.cfg.Events != nil {
		attrs := []any{"job", out.Name, "mode", OutcomeMode(out), "attempts", out.Attempts}
		if out.JobState == report.JobDrained {
			attrs = append(attrs, "drained", true)
		}
		if seq > 0 {
			attrs = append(attrs, "journal_seq", seq)
		}
		if out.TraceID != "" {
			attrs = append(attrs, "trace_id", out.TraceID)
		}
		if out.Err != nil {
			attrs = append(attrs, "err", out.Err.Error())
		}
		p.cfg.Events.Info("job.finish", attrs...)
	}
	p.mu.Lock()
	p.pending--
	p.idle.Broadcast()
	p.mu.Unlock()
	if p.cfg.OnFinish != nil {
		p.cfg.OnFinish(out)
	}
}

// Quiesce blocks until every accepted job has finished (or been
// checkpointed by a concurrent drain). It does not stop the pool; the
// daemon's one-shot mode uses it between spool sweeps.
func (p *Pool) Quiesce() {
	p.mu.Lock()
	for p.pending > 0 {
		p.idle.Wait()
	}
	p.mu.Unlock()
}

// Outcomes returns a snapshot of per-job outcomes so far, including a
// queued placeholder row per not-yet-started job.
func (p *Pool) Outcomes() []report.Outcome {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := append([]report.Outcome(nil), p.outcomes...)
	for name, n := range p.queued {
		for i := 0; i < n; i++ {
			out = append(out, report.Outcome{Name: name, JobState: report.JobQueued})
		}
	}
	return out
}

// Shutdown gracefully stops the pool: intake is closed (further Submits
// shed with ReasonShuttingDown), jobs already executing run to
// completion or until ctx expires — whichever comes first — and jobs
// still queued are checkpointed as drained instead of started. It
// returns every per-job outcome, ready for report.Pipeline.
func (p *Pool) Shutdown(ctx context.Context) []report.Outcome {
	p.mu.Lock()
	if p.draining {
		p.mu.Unlock()
		p.wg.Wait()
		return p.Outcomes()
	}
	p.draining = true
	p.mu.Unlock()
	close(p.queue)
	// Kill-point: process death after intake closes but before in-flight
	// jobs finish draining — the window where queued work exists only in
	// the journal.
	faultinject.Crash("jobs.drain")
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Drain deadline: cancel in-flight jobs; their budget checkers
		// turn the cancellation into structured partial outcomes.
		p.cancel()
		<-done
	}
	p.cancel()
	return p.Outcomes()
}

// runJob supervises one job execution: breaker short-circuit, bounded
// retries with backoff, budget composition, and panic isolation. ctx is
// the pool's root context, optionally carrying the job's trace recorder
// (see worker) so analysis phases become child spans.
func (p *Pool) runJob(job Job, ctx context.Context) report.Outcome {
	out := report.Outcome{Name: job.Name}
	key := job.key()
	if reason, open := p.brk.OpenFor(key); open {
		return p.degrade(ctx, job, out, reason)
	}
	retry := p.cfg.Retry.withDefaults()
	var lastErr error
	for attempt := 1; attempt <= retry.MaxAttempts; attempt++ {
		out.Attempts = attempt
		if attempt > 1 {
			retriesTotal.Inc()
		}
		if err := p.rootCtx.Err(); err != nil {
			out.Err = &budget.Error{Stage: "jobs", Resource: budget.ResourceContext, Cause: err}
			return out
		}
		res, err := p.runAttempt(job, ctx)
		if err == nil {
			p.brk.Success(key)
			out.Result = res
			return out
		}
		lastErr = err
		out.Result = res // keep the partial result of the last attempt
		if be, ok := budget.AsError(err); ok && be.Canceled() {
			// Explicit cancellation is never retried and never counts
			// against the input.
			out.Err = err
			return out
		}
		if opened := p.brk.Failure(key, err); opened {
			// The breaker opened on this failure; stop burning attempts
			// on an input that keeps killing the full pipeline.
			return p.degrade(ctx, job, out, err)
		}
		if !retry.Retryable(err) {
			break
		}
		if attempt < retry.MaxAttempts {
			if err := retry.pause(p.rootCtx, attempt); err != nil {
				out.Err = err
				return out
			}
		}
	}
	if reason, open := p.brk.OpenFor(key); open {
		return p.degrade(ctx, job, out, reason)
	}
	out.Err = lastErr
	return out
}

// runAttempt executes one attempt under the pool budget, isolating
// panics that escape the job's own boundaries.
func (p *Pool) runAttempt(job Job, ctx context.Context) (res *core.Result, err error) {
	if p.cfg.Budget.Wall > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.cfg.Budget.Wall)
		defer cancel()
	}
	ierr := budget.Isolate("jobs.run", func() error {
		res, err = job.Run(ctx, p.cfg.Budget)
		return nil
	})
	if ierr != nil {
		return nil, ierr
	}
	return res, err
}

// degrade runs the job's fallback (if any) because the breaker is open.
func (p *Pool) degrade(ctx context.Context, job Job, out report.Outcome, reason error) report.Outcome {
	if job.Fallback == nil {
		out.Err = fmt.Errorf("jobs: breaker open for %s: %w", job.key(), reason)
		return out
	}
	res, err := job.Fallback(ctx, reason)
	out.Result, out.Err = res, err
	return out
}

// JobEntry is the journal payload recorded per finished job. Races and
// Digest fingerprint the result's race set (see ResultDigest), so a
// duplicate submission of completed work can be answered from the
// journal — including across restarts — without re-running the analysis.
type JobEntry struct {
	Name     string `json:"name"`
	Mode     string `json:"mode"`
	Attempts int    `json:"attempts,omitempty"`
	Races    int    `json:"races,omitempty"`
	Digest   string `json:"digest,omitempty"`
	// TraceID is the distributed trace that analyzed this input, so an
	// operator can go from a journal record (or a duplicate submission
	// replayed from it) back to the exact admission, queue wait, and
	// per-phase spans that produced the result.
	TraceID string `json:"trace_id,omitempty"`
}

// OutcomeMode renders the outcome's analysis disposition for journaling:
// "full", "degraded", "partial", or "error" (supervisor states are not
// journaled — a drained or shed job is still pending).
func OutcomeMode(out report.Outcome) string {
	switch {
	case out.Result != nil && out.Result.Degraded:
		return "degraded"
	case out.Err != nil && out.Result != nil:
		return "partial"
	case out.Err != nil:
		return "error"
	default:
		return "full"
	}
}

// CompletedJobs extracts the names of successfully finished jobs ("full"
// or "degraded") from journal entries, so a restarted daemon re-runs
// only unfinished inputs.
func CompletedJobs(entries []journal.Entry) map[string]bool {
	done := make(map[string]bool)
	for name := range CompletedRecords(entries) {
		done[name] = true
	}
	return done
}

// CompletedRecords is CompletedJobs keeping the full journal record per
// completed job (latest entry wins), so the ingestion layer can replay
// mode, race count, and race-set digest to duplicate submissions.
func CompletedRecords(entries []journal.Entry) map[string]JobEntry {
	done := make(map[string]JobEntry)
	for _, e := range entries {
		if e.Type != "job" {
			continue
		}
		var je JobEntry
		if err := e.Decode(&je); err != nil {
			continue
		}
		if je.Mode == "full" || je.Mode == "degraded" {
			done[je.Name] = je
		}
	}
	return done
}

// BreakerOpen reports whether the per-input circuit breaker is open for
// key, with the failure that opened it. The ingestion layer consults it
// at admission time so a known-bad input is refused with 503 instead of
// burning a worker on its degraded fallback.
func (p *Pool) BreakerOpen(key string) (error, bool) {
	return p.brk.OpenFor(key)
}

// parseSpoolFile reads and parses the spool file at path through the
// spool's storage layer (so chaos tests can inject read faults), with
// read-back verification for content-named files: a <key>.trace name
// commits to the sha256-derived key of the bytes it was written with,
// and a mismatch returns a *storage.CorruptError instead of a parsed
// trace — analyzing rotted bytes would produce a confidently wrong
// result under the original body's idempotency key. Verified files are
// read whole, which is bounded by the ingestion body cap that produced
// them; foreign names (no content key) still stream.
func parseSpoolFile(path string) (*trace.Trace, error) {
	fsys := faultinject.Storage("spool")
	base := filepath.Base(path)
	if _, keyed := storage.ContentKey(base); !keyed {
		f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
		if err != nil {
			return nil, storage.CountError("spool.read", err)
		}
		defer f.Close()
		return trace.Parse(f)
	}
	body, err := fsys.ReadFile(path)
	if err != nil {
		return nil, storage.CountError("spool.read", err)
	}
	if err := storage.VerifyBody(base, body); err != nil {
		return nil, storage.CountError("spool.read", err)
	}
	return trace.ParseBytes(body)
}

// TraceJob builds the supervised job that analyzes the trace file at
// path: the full pipeline under the pool budget, with the pure-MT
// baseline as the breaker fallback. The file is re-read and re-verified
// per attempt (see parseSpoolFile) — a corrupt read fails the attempt
// with a deterministic error, which exhausts retries and dead-letters
// the file through the quarantine with its `corrupt` reason — and the
// parse itself is inside the supervised boundary.
func TraceJob(name, path string, opts core.Options) Job {
	return Job{
		Name: name,
		Key:  path,
		Path: path,
		Run: func(ctx context.Context, lim budget.Limits) (*core.Result, error) {
			t0 := time.Now()
			tr, err := parseSpoolFile(path)
			if rec, parent := obs.TraceFromContext(ctx); rec != nil {
				rec.AddSpan("phase.parse", parent, t0, time.Since(t0))
			}
			if err != nil {
				return nil, err
			}
			o := opts
			if o.Budget.IsZero() {
				o.Budget = lim
			}
			return core.AnalyzeContext(ctx, tr, o)
		},
		Fallback: func(ctx context.Context, reason error) (*core.Result, error) {
			tr, err := parseSpoolFile(path)
			if err != nil {
				return nil, err
			}
			return core.AnalyzeBaseline(tr, opts, reason)
		},
	}
}

// BaselineTraceJob builds a job that skips the full pipeline entirely
// and runs the linear pure-MT baseline — the brownout path: while the
// daemon is above its memory watermark, non-heavy work still gets an
// answer, just never an O(nodes²) one. reason is recorded as the
// degradation cause.
func BaselineTraceJob(name, path string, opts core.Options, reason error) Job {
	run := func(ctx context.Context, _ budget.Limits) (*core.Result, error) {
		tr, err := parseSpoolFile(path)
		if err != nil {
			return nil, err
		}
		return core.AnalyzeBaseline(tr, opts, reason)
	}
	return Job{
		Name: name,
		Key:  path,
		Path: path,
		Run:  run,
		Fallback: func(ctx context.Context, _ error) (*core.Result, error) {
			return run(ctx, budget.Limits{})
		},
	}
}

// Runner executes one trace analysis out of process; the sentinel
// Isolator satisfies it. The indirection keeps jobs ignorant of how the
// sandbox works while still owning the supervision around it.
type Runner interface {
	Run(ctx context.Context, path string, opts core.Options) (*core.Result, error)
}

// IsolatedTraceJob builds a job whose analysis runs in a sandboxed
// worker subprocess via iso — the heavy path: an input whose estimated
// closure footprint exceeds the soft cost ceiling never touches the
// daemon's heap. A dead sandbox surfaces as a deterministic resource
// error (see sentinel.ResourceError): no retries, no in-process
// fallback — re-running a memory bomb on the shared heap is exactly
// what isolation exists to prevent — so the input dead-letters through
// the quarantine with its "resource:" reason.
func IsolatedTraceJob(name, path string, opts core.Options, iso Runner) Job {
	return Job{
		Name: name,
		Key:  path,
		Path: path,
		Run: func(ctx context.Context, lim budget.Limits) (*core.Result, error) {
			o := opts
			if o.Budget.IsZero() {
				o.Budget = lim
			}
			return iso.Run(ctx, path, o)
		},
	}
}
