package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark-regression gate (-benchcmp): compare a fresh `go test -bench
// -json` run against a committed baseline and fail on a geometric-mean
// slowdown past the threshold. CI runs the gate benchmarks with
// -benchtime=5x -count=6; the per-benchmark median over the six counts
// damps scheduler noise, and the geomean over benchmarks keeps one noisy
// microbenchmark from failing (or masking) the gate.

// benchLine matches one `go test -bench` result line:
// "BenchmarkName-8   5   123456 ns/op ...". The -N GOMAXPROCS suffix is
// stripped so runs from machines with different core counts compare.
var benchLine = regexp.MustCompile(`^(Benchmark[^\s-]+(?:/[^\s]+?)?)(?:-\d+)?\s+\d+\s+([0-9.eE+]+) ns/op`)

// testEvent is the subset of the `go test -json` (test2json) event
// stream the parser needs.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// parseBench reads benchmark results from r, accepting both the
// test2json event stream (`go test -json -bench ...`) and the plain
// text format, and returns every ns/op sample per benchmark name.
//
// test2json splits a benchmark result across output events — the name
// is printed before the run, the timing after — so output fragments
// are reassembled into lines per package before matching.
func parseBench(r io.Reader) (map[string][]float64, error) {
	samples := make(map[string][]float64)
	scan := func(text string) error {
		m := benchLine.FindStringSubmatch(text)
		if m == nil {
			return nil
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return fmt.Errorf("bad ns/op in %q: %w", text, err)
		}
		samples[m[1]] = append(samples[m[1]], ns)
		return nil
	}
	pending := make(map[string]string) // package → unterminated output
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) > 0 && line[0] == '{' {
			var ev testEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				return nil, fmt.Errorf("bad test2json line %q: %w", string(line), err)
			}
			if ev.Action != "output" {
				continue
			}
			buf := pending[ev.Package] + ev.Output
			for {
				nl := strings.IndexByte(buf, '\n')
				if nl < 0 {
					break
				}
				if err := scan(buf[:nl]); err != nil {
					return nil, err
				}
				buf = buf[nl+1:]
			}
			pending[ev.Package] = buf
			continue
		}
		if err := scan(string(line)); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, buf := range pending {
		if err := scan(buf); err != nil {
			return nil, err
		}
	}
	return samples, nil
}

// median reduces each benchmark's samples to their median, the robust
// center for -count runs (one descheduled iteration moves the mean, not
// the median).
func median(samples map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(samples))
	for name, s := range samples {
		sorted := append([]float64(nil), s...)
		sort.Float64s(sorted)
		n := len(sorted)
		if n%2 == 1 {
			out[name] = sorted[n/2]
		} else {
			out[name] = (sorted[n/2-1] + sorted[n/2]) / 2
		}
	}
	return out
}

// cmpRow is one benchmark's baseline-versus-current comparison.
type cmpRow struct {
	name     string
	old, new float64
	ratio    float64 // new/old; > 1 is a slowdown
}

// compareBench pairs the benchmarks present in both runs and computes
// the geometric mean of their new/old ratios. Benchmarks present in
// only one run are returned separately — a renamed benchmark must not
// silently drop out of the gate.
func compareBench(base, cur map[string]float64) (rows []cmpRow, unmatched []string, geomean float64) {
	for name, old := range base {
		if now, ok := cur[name]; ok && old > 0 {
			rows = append(rows, cmpRow{name: name, old: old, new: now, ratio: now / old})
		} else if !ok {
			unmatched = append(unmatched, name+" (baseline only)")
		}
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			unmatched = append(unmatched, name+" (current only)")
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	sort.Strings(unmatched)
	if len(rows) == 0 {
		return rows, unmatched, 1
	}
	logSum := 0.0
	for _, r := range rows {
		logSum += math.Log(r.ratio)
	}
	return rows, unmatched, math.Exp(logSum / float64(len(rows)))
}

// runBenchCmp executes the gate: parse both files, compare, render the
// table to w, and report whether the geomean regression stays within
// threshold percent. A missing baseline is tolerated with a warning —
// the first run on a new branch has nothing to compare against — but a
// missing current file is an error.
func runBenchCmp(w io.Writer, baselinePath, currentPath string, thresholdPct float64) (ok bool, err error) {
	bf, err := os.Open(baselinePath)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "benchtables: no baseline at %s; skipping the regression gate\n", baselinePath)
			return true, nil
		}
		return false, err
	}
	defer bf.Close()
	cf, err := os.Open(currentPath)
	if err != nil {
		return false, err
	}
	defer cf.Close()

	baseSamples, err := parseBench(bf)
	if err != nil {
		return false, fmt.Errorf("%s: %w", baselinePath, err)
	}
	curSamples, err := parseBench(cf)
	if err != nil {
		return false, fmt.Errorf("%s: %w", currentPath, err)
	}
	if len(curSamples) == 0 {
		return false, fmt.Errorf("%s: no benchmark results", currentPath)
	}
	rows, unmatched, geomean := compareBench(median(baseSamples), median(curSamples))

	fmt.Fprintf(w, "%-60s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, r := range rows {
		fmt.Fprintf(w, "%-60s %14.0f %14.0f %+7.1f%%\n", r.name, r.old, r.new, 100*(r.ratio-1))
	}
	for _, name := range unmatched {
		fmt.Fprintf(w, "%-60s %s\n", name, "unmatched, excluded from the gate")
	}
	ok = geomean <= 1+thresholdPct/100
	verdict := "within"
	if !ok {
		verdict = "EXCEEDS"
	}
	fmt.Fprintf(w, "\ngeomean delta %+.1f%% over %d benchmark(s): %s the %.0f%% regression threshold\n",
		100*(geomean-1), len(rows), verdict, thresholdPct)
	return ok, nil
}
