package android

import (
	"strings"
	"testing"

	"droidracer/internal/trace"
)

// TestThreeDeepBackStack drives A → B → C, then BACK twice, checking the
// stack unwinds with the right lifecycle callbacks.
func TestThreeDeepBackStack(t *testing.T) {
	var log []string
	mkAct := func(name, next string) func() Activity {
		return func() Activity {
			return &testActivity{
				log: &log,
				onCreate: func(c *Ctx) {
					log = append(log, name+".created")
					if next != "" {
						c.AddButton("go", true, func(c *Ctx) { c.StartActivity(next) })
					}
				},
			}
		}
	}
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("A", mkAct("A", "B"))
	e.RegisterActivity("B", mkAct("B", "C"))
	e.RegisterActivity("C", mkAct("C", ""))
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	for i := 0; i < 2; i++ {
		if err := e.Fire(UIEvent{Kind: EvClick, Widget: "go"}); err != nil {
			t.Fatal(err)
		}
		mustRun(t, e)
	}
	if got := e.foreground().name; got != "C" {
		t.Fatalf("foreground = %s, want C", got)
	}
	// BACK from C returns to B; BACK from B returns to A.
	for _, want := range []string{"B", "A"} {
		if err := e.Fire(UIEvent{Kind: EvBack}); err != nil {
			t.Fatal(err)
		}
		mustRun(t, e)
		if got := e.foreground().name; got != want {
			t.Fatalf("foreground = %s, want %s", got, want)
		}
		if e.Exited() {
			t.Fatal("app exited with activities on the stack")
		}
	}
	finish(t, e)
	joined := strings.Join(log, ",")
	for _, want := range []string{"A.created", "B.created", "C.created"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("log = %q missing %s", joined, want)
		}
	}
}

// TestFinishFromCode: an activity finishing itself behaves like BACK.
func TestFinishFromCode(t *testing.T) {
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("A", func() Activity {
		return &testActivity{onCreate: func(c *Ctx) {
			c.AddButton("done", true, func(c *Ctx) { c.Finish() })
		}}
	})
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	if err := e.Fire(UIEvent{Kind: EvClick, Widget: "done"}); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	finish(t, e)
	if !e.Exited() {
		t.Fatal("finish() did not exit the root activity")
	}
}

// TestDoubleFinishIsIdempotent: finishing twice (e.g. finish() in a
// handler plus a BACK press racing in) must not double-destroy.
func TestDoubleFinishIsIdempotent(t *testing.T) {
	destroys := 0
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("A", func() Activity {
		return &testActivity{
			onCreate: func(c *Ctx) {
				c.AddButton("done", true, func(c *Ctx) {
					c.Finish()
					c.Finish()
				})
			},
			onDestroy: func(c *Ctx) { destroys++ },
		}
	})
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	if err := e.Fire(UIEvent{Kind: EvClick, Widget: "done"}); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	finish(t, e)
	if destroys != 1 {
		t.Fatalf("onDestroy ran %d times", destroys)
	}
}

// TestBackNotFireableTwice: the BACK event consumes its armed task; a
// second BACK without re-arming is rejected rather than double-posting.
func TestBackNotFireableTwice(t *testing.T) {
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("A", func() Activity { return &testActivity{} })
	e.RegisterActivity("B", func() Activity { return &testActivity{} })
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	if err := e.Fire(UIEvent{Kind: EvBack}); err != nil {
		t.Fatal(err)
	}
	// Without running, the same armed id is consumed.
	if err := e.Fire(UIEvent{Kind: EvBack}); err == nil {
		t.Fatal("second BACK accepted before the first was processed")
	}
	mustRun(t, e)
	finish(t, e)
}

// TestWidgetOnSecondActivity: widgets belong to their activity; the
// explorer sees only the foreground screen's events.
func TestWidgetOnSecondActivity(t *testing.T) {
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("A", func() Activity {
		return &testActivity{onCreate: func(c *Ctx) {
			c.AddButton("open", true, func(c *Ctx) { c.StartActivity("B") })
		}}
	})
	e.RegisterActivity("B", func() Activity {
		return &testActivity{onCreate: func(c *Ctx) {
			c.AddButton("save", true, func(c *Ctx) { c.Write("B.saved") })
		}}
	})
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	if err := e.Fire(UIEvent{Kind: EvClick, Widget: "open"}); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	var names []string
	for _, ev := range e.EnabledEvents() {
		if ev.Kind == EvClick {
			names = append(names, ev.Widget)
		}
	}
	if len(names) != 1 || names[0] != "save" {
		t.Fatalf("foreground widgets = %v, want only B's save", names)
	}
	// A's widget is not fireable while covered.
	if err := e.Fire(UIEvent{Kind: EvClick, Widget: "open"}); err == nil {
		t.Fatal("covered activity's widget fired")
	}
	finish(t, e)
}

// TestAsyncTaskNilCallbacks: all callbacks optional.
func TestAsyncTaskNilCallbacks(t *testing.T) {
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("A", func() Activity {
		return &testActivity{onResume: func(c *Ctx) {
			c.Execute(&AsyncTask{Name: "noop"})
		}}
	})
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	tr := finish(t, e)
	forks := 0
	for _, op := range tr.Ops() {
		if op.Kind == trace.OpFork {
			forks++
		}
	}
	if forks != 1 {
		t.Fatalf("forks = %d, want the background thread", forks)
	}
}

// TestRemoveCallbacksAfterDispatchIsNoop: cancelling a task that already
// ran must not corrupt the trace.
func TestRemoveCallbacksAfterDispatchIsNoop(t *testing.T) {
	ran := false
	e := NewEnv(DefaultOptions())
	e.RegisterActivity("A", func() Activity {
		return &testActivity{onCreate: func(c *Ctx) {
			h := c.Env.MainHandler()
			id := h.Post(c, "job", func(c *Ctx) { ran = true })
			c.AddButton("cancel", true, func(c *Ctx) {
				h.RemoveCallbacks(c, id) // job already ran by now
			})
		}}
	})
	if err := e.Launch("A"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	if err := e.Fire(UIEvent{Kind: EvClick, Widget: "cancel"}); err != nil {
		t.Fatal(err)
	}
	mustRun(t, e)
	finish(t, e)
	if !ran {
		t.Fatal("job did not run")
	}
}
