package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"droidracer/internal/server"
)

// fakeBackend is a scriptable racedetd stand-in.
type fakeBackend struct {
	srv      *httptest.Server
	submits  atomic.Int64
	statuses atomic.Int64
	ready    atomic.Bool
	// onSubmit scripts POST /v1/jobs; nil accepts with 202.
	onSubmit func(w http.ResponseWriter, r *http.Request)
	// onStatus scripts GET /v1/jobs/{id}; nil answers unknown. Swapped
	// atomically so tests can change the script mid-flight.
	onStatus atomic.Pointer[func(w http.ResponseWriter, r *http.Request)]
	// reclaimed records keys received via /v1/reconcile.
	reclaimed chan []string
}

func newFakeBackend(t *testing.T) *fakeBackend {
	t.Helper()
	b := &fakeBackend{reclaimed: make(chan []string, 4)}
	b.ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		b.submits.Add(1)
		if b.onSubmit != nil {
			b.onSubmit(w, r)
			return
		}
		key := r.Header.Get("Idempotency-Key")
		writeJSON(w, http.StatusAccepted, &server.SubmitResponse{Job: key, Status: server.StatusAccepted})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		b.statuses.Add(1)
		if h := b.onStatus.Load(); h != nil {
			(*h)(w, r)
			return
		}
		writeJSON(w, http.StatusOK, &server.SubmitResponse{Job: r.PathValue("id"), Status: "unknown"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if !b.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v1/reconcile", func(w http.ResponseWriter, r *http.Request) {
		var req server.ReconcileRequest
		json.NewDecoder(r.Body).Decode(&req)
		b.reclaimed <- req.Reclaim
		writeJSON(w, http.StatusOK, &server.ReconcileResponse{Reclaimed: len(req.Reclaim)})
	})
	b.srv = httptest.NewServer(mux)
	t.Cleanup(b.srv.Close)
	return b
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// newTestGateway builds a gateway over the fakes with every backend
// already live (probing is exercised separately).
func newTestGateway(t *testing.T, cfg Config, backends ...*fakeBackend) *Gateway {
	t.Helper()
	for _, b := range backends {
		cfg.Backends = append(cfg.Backends, b.srv.URL)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range g.backends {
		st.live.Store(true)
	}
	return g
}

func postBody(t *testing.T, g *Gateway, body string) (*server.SubmitResponse, int) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body))
	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, req)
	var resp server.SubmitResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatalf("decoding response (%d): %v", rec.Code, err)
	}
	return &resp, rec.Code
}

func TestGatewayRoutesByKeyAndCoalescesDuplicates(t *testing.T) {
	b1, b2 := newFakeBackend(t), newFakeBackend(t)
	g := newTestGateway(t, Config{}, b1, b2)

	body := "post(t0,LAUNCH_ACTIVITY,t1)\n"
	resp, code := postBody(t, g, body)
	if code != http.StatusAccepted || resp.Status != server.StatusAccepted {
		t.Fatalf("submit: %d %s, want 202 accepted", code, resp.Status)
	}
	if resp.Job != server.IdempotencyKey([]byte(body)) {
		t.Fatalf("job %s, want the content key", resp.Job)
	}
	total := b1.submits.Load() + b2.submits.Load()
	if total != 1 {
		t.Fatalf("%d backend submits, want 1", total)
	}
	// A duplicate routes to the same (pending) backend and coalesces.
	if _, code = postBody(t, g, body); code != http.StatusAccepted {
		t.Fatalf("duplicate: %d, want 202", code)
	}
	if got := b1.submits.Load() + b2.submits.Load(); got != 2 {
		t.Fatalf("%d backend submits after duplicate, want 2", got)
	}
	if b1.submits.Load() != 0 && b2.submits.Load() != 0 {
		t.Fatal("duplicate was routed to a different backend than the original")
	}
}

func TestGatewayCacheServesTerminalReplays(t *testing.T) {
	b := newFakeBackend(t)
	b.onSubmit = func(w http.ResponseWriter, r *http.Request) {
		key := r.Header.Get("Idempotency-Key")
		writeJSON(w, http.StatusOK, &server.SubmitResponse{
			Job: key, Status: server.StatusDone, Mode: "full", Races: 3, Digest: "00000000000000ab",
		})
	}
	g := newTestGateway(t, Config{}, b)

	body := "post(t0,LAUNCH_ACTIVITY,t1)\n"
	resp, code := postBody(t, g, body)
	if code != http.StatusOK || resp.Cached {
		t.Fatalf("first submit: %d cached=%v, want 200 uncached", code, resp.Cached)
	}
	resp, code = postBody(t, g, body)
	if code != http.StatusOK || !resp.Cached || resp.Races != 3 {
		t.Fatalf("replay: %d cached=%v races=%d, want 200 cached with the journal record", code, resp.Cached, resp.Races)
	}
	if got := b.submits.Load(); got != 1 {
		t.Fatalf("backend saw %d submits, want 1 — the replay must not touch it", got)
	}
}

func TestGatewayFailoverOnBackendFailure(t *testing.T) {
	bad, good := newFakeBackend(t), newFakeBackend(t)
	bad.onSubmit = func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}
	g := newTestGateway(t, Config{EjectThreshold: 2}, bad, good)

	// Find a body whose home is the bad backend.
	body := homeBody(t, g, bad.srv.URL, 0)
	resp, code := postBody(t, g, body)
	if code != http.StatusAccepted || resp.Status != server.StatusAccepted {
		t.Fatalf("failover submit: %d %s, want 202 from the good peer", code, resp.Status)
	}
	if good.submits.Load() == 0 {
		t.Fatal("good backend never saw the failed-over submission")
	}
	if failoversTotal.Value() == 0 {
		t.Fatal("failover counter did not move")
	}
}

func TestGatewayEjectsAfterConsecutiveFailures(t *testing.T) {
	bad, good := newFakeBackend(t), newFakeBackend(t)
	bad.onSubmit = func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
	}
	g := newTestGateway(t, Config{EjectThreshold: 2}, bad, good)

	for i := 0; i < 4; i++ {
		postBody(t, g, homeBody(t, g, bad.srv.URL, i))
	}
	live := g.LiveBackends()
	if len(live) != 1 || live[0] != good.srv.URL {
		t.Fatalf("live = %v, want only the good backend", live)
	}
}

func TestGatewayRejectionPassThrough(t *testing.T) {
	b := newFakeBackend(t)
	b.onSubmit = func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "7")
		writeJSON(w, http.StatusTooManyRequests, &server.SubmitResponse{
			Status: server.StatusRejected, Reason: server.RejectRateLimited, RetryAfterSeconds: 7,
		})
	}
	g := newTestGateway(t, Config{}, b)

	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader("post(t0,X,t1)\n"))
	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("code %d, want the backend's 429 passed through", rec.Code)
	}
	if rec.Header().Get("Retry-After") != "7" {
		t.Fatalf("Retry-After %q, want the backend's honest hint", rec.Header().Get("Retry-After"))
	}
	if len(g.LiveBackends()) != 1 {
		t.Fatal("a 4xx rejection must not eject the backend")
	}
}

func TestGatewayFleetUnavailable(t *testing.T) {
	b := newFakeBackend(t)
	g := newTestGateway(t, Config{RetryAfter: 15 * time.Second}, b)
	g.backends[b.srv.URL].live.Store(false)

	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader("post(t0,X,t1)\n"))
	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("code %d, want 503 when every backend is down", rec.Code)
	}
	if rec.Header().Get("Retry-After") != "15" {
		t.Fatalf("Retry-After %q, want 15", rec.Header().Get("Retry-After"))
	}
	// Readiness reflects the same truth.
	rr := httptest.NewRecorder()
	g.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz %d, want 503 with zero live backends", rr.Code)
	}
}

func TestGatewayPendingAnswersWhenAcceptorDown(t *testing.T) {
	b1, b2 := newFakeBackend(t), newFakeBackend(t)
	g := newTestGateway(t, Config{}, b1, b2)

	body := "post(t0,LAUNCH_ACTIVITY,t1)\n"
	if _, code := postBody(t, g, body); code != http.StatusAccepted {
		t.Fatalf("seed submit: %d, want 202", code)
	}
	// Kill the accepting backend. A duplicate must coalesce locally —
	// never re-execute on the surviving peer.
	acceptor := b1
	if b1.submits.Load() == 0 {
		acceptor = b2
	}
	g.backends[acceptor.srv.URL].live.Store(false)
	before := b1.submits.Load() + b2.submits.Load()
	resp, code := postBody(t, g, body)
	if code != http.StatusAccepted || !resp.Coalesced {
		t.Fatalf("duplicate with acceptor down: %d coalesced=%v, want local 202 coalesced", code, resp.Coalesced)
	}
	if got := b1.submits.Load() + b2.submits.Load(); got != before {
		t.Fatal("duplicate of pending work was re-forwarded while its acceptor was down")
	}
}

func TestGatewayStatusWarmsCache(t *testing.T) {
	b := newFakeBackend(t)
	g := newTestGateway(t, Config{}, b)
	body := "post(t0,LAUNCH_ACTIVITY,t1)\n"
	resp, _ := postBody(t, g, body)
	key := resp.Job

	getStatus := func() (*server.SubmitResponse, int) {
		rec := httptest.NewRecorder()
		g.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/"+key, nil))
		var sr server.SubmitResponse
		json.NewDecoder(rec.Body).Decode(&sr)
		return &sr, rec.Code
	}
	// Backend says unknown, but the gateway knows the key is pending
	// there: answered 200 pending rather than 404.
	sr, code := getStatus()
	if code != http.StatusOK || sr.Status != server.StatusPending {
		t.Fatalf("status of pending job: %d %s, want 200 pending", code, sr.Status)
	}
	// The job finishes: a status poll observes the terminal answer and
	// fills the cache on the way through.
	doneHandler := func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, &server.SubmitResponse{
			Job: r.PathValue("id"), Status: server.StatusDone, Mode: "full", Races: 2, Digest: "00000000000000cd",
		})
	}
	b.onStatus.Store(&doneHandler)
	if sr, code = getStatus(); code != http.StatusOK || sr.Status != server.StatusDone {
		t.Fatalf("status after finish: %d %s, want 200 done", code, sr.Status)
	}
	// A duplicate submission now replays from the cache without touching
	// the backend.
	before := b.submits.Load()
	dup, code := postBody(t, g, body)
	if code != http.StatusOK || !dup.Cached || dup.Races != 2 {
		t.Fatalf("duplicate after poll: %d cached=%v races=%d, want cached 200", code, dup.Cached, dup.Races)
	}
	if b.submits.Load() != before {
		t.Fatal("cached replay touched the backend")
	}
}

func TestGatewayAcceptanceClearsInDoubtLedger(t *testing.T) {
	b := newFakeBackend(t)
	var dieInFlight atomic.Bool
	dieInFlight.Store(true)
	b.onSubmit = func(w http.ResponseWriter, r *http.Request) {
		if dieInFlight.Load() {
			// Die in flight: the backend may have spooled the trace, so
			// the gateway must treat the key as in doubt.
			if conn, _, err := w.(http.Hijacker).Hijack(); err == nil {
				conn.Close()
			}
			return
		}
		key := r.Header.Get("Idempotency-Key")
		writeJSON(w, http.StatusAccepted, &server.SubmitResponse{Job: key, Status: server.StatusAccepted})
	}
	g := newTestGateway(t, Config{EjectThreshold: 100}, b)

	body := "post(t0,LAUNCH_ACTIVITY,t1)\n"
	key := server.IdempotencyKey([]byte(body))
	if _, code := postBody(t, g, body); code != http.StatusServiceUnavailable {
		t.Fatalf("in-flight death on the only backend: %d, want 503", code)
	}
	g.mu.Lock()
	_, ledgered := g.ledger[b.srv.URL][key]
	g.mu.Unlock()
	if !ledgered {
		t.Fatal("in-flight death did not ledger the key in doubt")
	}
	// The client retries and the backend acknowledges the key it had
	// spooled: the backend now owns the work, so the in-doubt entry must
	// die with the acknowledgment — a later reconcile asking the backend
	// to reclaim this key would delete an accepted, unfinished job.
	dieInFlight.Store(false)
	if _, code := postBody(t, g, body); code != http.StatusAccepted {
		t.Fatalf("retry after recovery: %d, want 202", code)
	}
	g.backends[b.srv.URL].live.Store(false)
	if !g.reinstate(context.Background(), g.backends[b.srv.URL]) {
		t.Fatal("reinstate failed")
	}
	select {
	case keys := <-b.reclaimed:
		for _, k := range keys {
			if k == key {
				t.Fatal("reconcile asked the backend to reclaim an acknowledged key")
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reconcile never reached the backend")
	}
}

func TestGatewayClientDisconnectNotCountedAgainstBackend(t *testing.T) {
	b := newFakeBackend(t)
	b.onSubmit = func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first (as the real daemon does): the server only
		// detects a dropped peer once the request body is consumed.
		io.ReadAll(r.Body)
		<-r.Context().Done() // hold the forward until the inbound client gives up
	}
	// Threshold 1: a single counted failure would eject, so survival
	// proves the disconnect was not counted.
	g := newTestGateway(t, Config{EjectThreshold: 1}, b)

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs",
		strings.NewReader("post(t0,LAUNCH_ACTIVITY,t1)\n")).WithContext(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		g.Handler().ServeHTTP(httptest.NewRecorder(), req)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for b.submits.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("backend never saw the forward")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	<-done
	if len(g.LiveBackends()) != 1 {
		t.Fatal("a client disconnect ejected a healthy backend")
	}
	g.mu.Lock()
	inDoubt := len(g.ledger[b.srv.URL])
	g.mu.Unlock()
	if inDoubt != 0 {
		t.Fatalf("client disconnect ledgered %d in-doubt keys; a reconcile could reclaim live work", inDoubt)
	}
}

// homeBody generates a trace body whose idempotency key hashes home to
// the given backend; distinct salts give distinct bodies.
func homeBody(t *testing.T, g *Gateway, backend string, salt int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		body := fmt.Sprintf("post(t0,LAUNCH_ACTIVITY,t1)\npost(t0,SEEK_%d_%d,t1)\n", salt, i)
		key := server.IdempotencyKey([]byte(body))
		if g.ring.Order(key)[0] == backend {
			return body
		}
	}
	t.Fatal("no body hashed home to the backend in 10000 tries")
	return ""
}
