package lifecycle

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLaunchSequence(t *testing.T) {
	a := NewActivity()
	seq, err := a.ApplyEvent(Launch)
	if err != nil {
		t.Fatal(err)
	}
	want := []Callback{OnCreate, OnStart, OnResume}
	if len(seq) != len(want) {
		t.Fatalf("seq = %v", seq)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("seq = %v, want %v", seq, want)
		}
	}
	if a.State() != Running {
		t.Fatalf("state = %v, want running", a.State())
	}
}

func TestMustOrdering(t *testing.T) {
	a := NewActivity()
	// onStart before onCreate is illegal.
	if err := a.Apply(OnStart); err == nil {
		t.Fatal("onStart accepted in launched state")
	}
	if err := a.Apply(OnCreate); err != nil {
		t.Fatal(err)
	}
	// onResume before onStart is illegal.
	if err := a.Apply(OnResume); err == nil {
		t.Fatal("onResume accepted in created state")
	}
}

func TestMayChoicesAfterOnStart(t *testing.T) {
	// Figure 8: onStart has may-successors onResume and onStop.
	a := NewActivity()
	if err := a.Apply(OnCreate); err != nil {
		t.Fatal(err)
	}
	if err := a.Apply(OnStart); err != nil {
		t.Fatal(err)
	}
	enabled := a.Enabled()
	has := map[Callback]bool{}
	for _, cb := range enabled {
		has[cb] = true
	}
	if !has[OnResume] || !has[OnStop] || len(enabled) != 2 {
		t.Fatalf("enabled after onStart = %v, want {onResume, onStop}", enabled)
	}
}

func TestFullCycleThroughRestart(t *testing.T) {
	a := NewActivity()
	steps := []Callback{OnCreate, OnStart, OnResume, OnPause, OnStop, OnRestart, OnStart, OnResume, OnPause, OnStop, OnDestroy}
	for i, cb := range steps {
		if err := a.Apply(cb); err != nil {
			t.Fatalf("step %d (%s): %v", i, cb, err)
		}
	}
	if a.State() != Destroyed {
		t.Fatalf("state = %v, want destroyed", a.State())
	}
	if got := a.Enabled(); len(got) != 0 {
		t.Fatalf("enabled after destroy = %v", got)
	}
}

func TestEventSequences(t *testing.T) {
	cases := []struct {
		prep []Event
		ev   Event
		want []Callback
	}{
		{nil, Launch, []Callback{OnCreate, OnStart, OnResume}},
		{[]Event{Launch}, LeaveForeground, []Callback{OnPause, OnStop}},
		{[]Event{Launch, LeaveForeground}, Return, []Callback{OnRestart, OnStart, OnResume}},
		{[]Event{Launch}, Finish, []Callback{OnPause, OnStop, OnDestroy}},
		{[]Event{Launch, LeaveForeground}, Finish, []Callback{OnDestroy}},
		{[]Event{Launch}, Relaunch, []Callback{OnPause, OnStop, OnDestroy, OnCreate, OnStart, OnResume}},
	}
	for _, c := range cases {
		a := NewActivity()
		for _, p := range c.prep {
			if _, err := a.ApplyEvent(p); err != nil {
				t.Fatalf("prep %v: %v", p, err)
			}
		}
		seq, err := a.ApplyEvent(c.ev)
		if err != nil {
			t.Fatalf("%v after %v: %v", c.ev, c.prep, err)
		}
		if len(seq) != len(c.want) {
			t.Fatalf("%v: seq = %v, want %v", c.ev, seq, c.want)
		}
		for i := range c.want {
			if seq[i] != c.want[i] {
				t.Fatalf("%v: seq = %v, want %v", c.ev, seq, c.want)
			}
		}
	}
}

func TestIllegalEvents(t *testing.T) {
	a := NewActivity()
	for _, ev := range []Event{LeaveForeground, Return, Finish, Relaunch} {
		if _, err := a.ApplyEvent(ev); err == nil {
			t.Errorf("%v accepted before launch", ev)
		}
	}
	if _, err := a.ApplyEvent(Launch); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ApplyEvent(Launch); err == nil {
		t.Error("double launch accepted")
	}
}

func TestRelaunchResets(t *testing.T) {
	a := NewActivity()
	if _, err := a.ApplyEvent(Launch); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ApplyEvent(Relaunch); err != nil {
		t.Fatal(err)
	}
	if a.State() != Running {
		t.Fatalf("state after relaunch = %v, want running", a.State())
	}
}

// TestQuickRandomEventWalksStayLegal drives random legal events and checks
// the machine never reaches an inconsistent state and every produced
// sequence is applicable step by step.
func TestQuickRandomEventWalksStayLegal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewActivity()
		if _, err := a.ApplyEvent(Launch); err != nil {
			return false
		}
		for k := 0; k < 30; k++ {
			evs := []Event{LeaveForeground, Return, Finish, Relaunch}
			ev := evs[rng.Intn(len(evs))]
			shadow := *a
			seq, err := shadow.Sequence(ev)
			if err != nil {
				continue // not applicable now; skip
			}
			got, err := a.ApplyEvent(ev)
			if err != nil {
				t.Logf("seed %d: %v unexpectedly failed: %v", seed, ev, err)
				return false
			}
			if len(got) != len(seq) {
				return false
			}
			if a.State() == Destroyed {
				a = NewActivity()
				if _, err := a.ApplyEvent(Launch); err != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestServiceLifecycle(t *testing.T) {
	s := NewService()
	if s.State() != SvcIdle {
		t.Fatal("fresh service not idle")
	}
	seq, err := s.StartSequence()
	if err != nil || len(seq) != 2 || seq[0] != SvcOnCreate || seq[1] != SvcOnStartCommand {
		t.Fatalf("start seq = %v, %v", seq, err)
	}
	for _, cb := range seq {
		if err := s.Apply(cb); err != nil {
			t.Fatal(err)
		}
	}
	// Second start: only onStartCommand.
	seq, err = s.StartSequence()
	if err != nil || len(seq) != 1 || seq[0] != SvcOnStartCommand {
		t.Fatalf("restart seq = %v, %v", seq, err)
	}
	if err := s.Apply(SvcOnStartCommand); err != nil {
		t.Fatal(err)
	}
	seq, err = s.StopSequence()
	if err != nil || len(seq) != 1 || seq[0] != SvcOnDestroy {
		t.Fatalf("stop seq = %v, %v", seq, err)
	}
	if err := s.Apply(SvcOnDestroy); err != nil {
		t.Fatal(err)
	}
	if s.State() != SvcDestroyed {
		t.Fatal("service not destroyed")
	}
	if _, err := s.StartSequence(); err == nil {
		t.Fatal("start accepted on destroyed service")
	}
	if err := s.Apply(SvcOnCreate); err == nil {
		t.Fatal("onCreate accepted on destroyed service")
	}
}

func TestServiceStopIdleFails(t *testing.T) {
	if _, err := NewService().StopSequence(); err == nil {
		t.Fatal("stop accepted on idle service")
	}
}

func TestReceiver(t *testing.T) {
	r := NewReceiver()
	if r.CanReceive() {
		t.Fatal("unregistered receiver can receive")
	}
	if err := r.Register(); err != nil {
		t.Fatal(err)
	}
	if !r.CanReceive() {
		t.Fatal("registered receiver cannot receive")
	}
	if err := r.Register(); err == nil {
		t.Fatal("double register accepted")
	}
	if err := r.Unregister(); err != nil {
		t.Fatal(err)
	}
	if r.CanReceive() {
		t.Fatal("unregistered receiver can receive")
	}
	if err := r.Unregister(); err == nil {
		t.Fatal("double unregister accepted")
	}
}

func TestStateStrings(t *testing.T) {
	if Launched.String() != "launched" || Destroyed.String() != "destroyed" {
		t.Fatal("state names wrong")
	}
	if SvcRunning.String() != "running" {
		t.Fatal("service state names wrong")
	}
	if Launch.String() != "launch" || Relaunch.String() != "relaunch" {
		t.Fatal("event names wrong")
	}
}
