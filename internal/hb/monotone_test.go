package hb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"droidracer/internal/semantics"
	"droidracer/internal/trace"
)

// relationSubset checks g1's relation is contained in g2's over all
// operation pairs.
func relationSubset(tr *trace.Trace, g1, g2 *Graph) (int, int, bool) {
	for i := 0; i < tr.Len(); i++ {
		for j := 0; j < tr.Len(); j++ {
			if i != j && g1.HappensBefore(i, j) && !g2.HappensBefore(i, j) {
				return i, j, false
			}
		}
	}
	return 0, 0, true
}

// TestQuickAblationMonotonicity: removing rules can only shrink the
// relation, and the naive combination can only grow it. Checked pairwise
// on random valid traces:
//
//	st-only ⊆ full,  no-enable ⊆ full,  no-fifo ⊆ full,
//	no-nopre ⊆ full, full ⊆ naive.
func TestQuickAblationMonotonicity(t *testing.T) {
	cfg := semantics.DefaultGenConfig()
	cfg.MaxOps = 70
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := semantics.RandomTrace(rng, cfg)
		info, err := trace.Analyze(tr)
		if err != nil {
			return false
		}
		full := Build(info, DefaultConfig())
		weaker := map[string]Config{}
		c := DefaultConfig()
		c.STOnly = true
		weaker["st-only"] = c
		c = DefaultConfig()
		c.EnableEdges = false
		weaker["no-enable"] = c
		c = DefaultConfig()
		c.FIFO = false
		weaker["no-fifo"] = c
		c = DefaultConfig()
		c.NoPre = false
		weaker["no-nopre"] = c
		for name, wc := range weaker {
			g := Build(info, wc)
			if i, j, ok := relationSubset(tr, g, full); !ok {
				t.Logf("seed %d: %s derived (%d,%d) that the full relation lacks", seed, name, i, j)
				return false
			}
		}
		naiveCfg := DefaultConfig()
		naiveCfg.Naive = true
		naive := Build(info, naiveCfg)
		if i, j, ok := relationSubset(tr, full, naive); !ok {
			t.Logf("seed %d: full relation derived (%d,%d) that naive lacks", seed, i, j)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWholeThreadPOSupersetOnSameThread: whole-thread program order
// must order every same-thread pair, subsuming the precise relation
// there.
func TestQuickWholeThreadPOSupersetOnSameThread(t *testing.T) {
	cfg := semantics.DefaultGenConfig()
	cfg.MaxOps = 60
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := semantics.RandomTrace(rng, cfg)
		info, err := trace.Analyze(tr)
		if err != nil {
			return false
		}
		wcfg := DefaultConfig()
		wcfg.WholeThreadPO = true
		w := Build(info, wcfg)
		for i := 0; i < tr.Len(); i++ {
			for j := i + 1; j < tr.Len(); j++ {
				if tr.Op(i).Thread == tr.Op(j).Thread && !w.HappensBefore(i, j) {
					t.Logf("seed %d: same-thread pair (%d,%d) unordered under whole-thread PO", seed, i, j)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
