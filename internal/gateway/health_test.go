package gateway

import (
	"testing"
	"time"
)

func TestNextBackoff(t *testing.T) {
	const iv = time.Second
	cases := []struct {
		name    string
		cur     time.Duration
		probeOK bool
		want    time.Duration
	}{
		{"failure doubles", iv, false, 2 * iv},
		{"failure reaches cap", 8 * iv, false, 16 * iv},
		{"failure holds cap", 16 * iv, false, 16 * iv},
		{"failure clamps overshoot", 30 * iv, false, 16 * iv},
		// A passing probe resets to the base cadence even when the
		// reconcile handshake failed: a backend answering /readyz must
		// not wait out a dead-backend backoff for reinstatement.
		{"success resets from cap", 16 * iv, true, iv},
		{"success resets early", 2 * iv, true, iv},
	}
	for _, c := range cases {
		if got := nextBackoff(c.cur, iv, c.probeOK); got != c.want {
			t.Errorf("%s: nextBackoff(%v, ok=%v) = %v, want %v", c.name, c.cur, c.probeOK, got, c.want)
		}
	}
}
