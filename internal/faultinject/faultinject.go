// Package faultinject is the fault-injection harness of the hardened
// pipeline: deterministic corruption operators over textual traces and
// scheduler-level fault hooks, used by chaos tests to assert that the
// analysis degrades with a structured error or report — never a process
// crash — on adversarial input.
//
// Trace operators work on the textual format so they model the faults a
// real trace-collection pipeline produces: truncated uploads, dropped
// and duplicated log records, reordered buffers, corrupted thread IDs.
// Scheduler hooks model faults inside a run of the simulated
// environment itself (see sched.Options.FaultHook).
package faultinject

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"

	"droidracer/internal/trace"
)

// Operator is one deterministic corruption of a textual trace. Apply
// must be a pure function of its inputs: the same lines and seed always
// produce the same corruption, so chaos-test failures replay exactly.
type Operator struct {
	// Name identifies the operator in test output.
	Name string
	// Apply returns the corrupted lines. It must not modify its input.
	Apply func(lines []string, rng *rand.Rand) []string
}

// Operators returns every corruption operator, in a fixed order.
func Operators() []Operator {
	return []Operator{
		{Name: "truncate", Apply: truncate},
		{Name: "drop-ops", Apply: dropOps},
		{Name: "duplicate-ops", Apply: duplicateOps},
		{Name: "swap-adjacent", Apply: swapAdjacent},
		{Name: "scramble-threads", Apply: scrambleThreads},
		{Name: "garble-bytes", Apply: garbleBytes},
	}
}

// truncate cuts the trace at a random line, modeling an interrupted
// upload. The cut can fall mid-line, leaving a syntactically broken
// final record.
func truncate(lines []string, rng *rand.Rand) []string {
	if len(lines) == 0 {
		return nil
	}
	out := append([]string(nil), lines[:rng.Intn(len(lines))]...)
	if len(out) > 0 && rng.Intn(2) == 0 {
		last := out[len(out)-1]
		out[len(out)-1] = last[:rng.Intn(len(last)+1)]
	}
	return out
}

// dropOps removes a random ~20% of the lines, modeling lost records.
func dropOps(lines []string, rng *rand.Rand) []string {
	var out []string
	for _, l := range lines {
		if rng.Intn(5) == 0 {
			continue
		}
		out = append(out, l)
	}
	return out
}

// duplicateOps repeats a random ~20% of the lines in place, modeling
// re-delivered records (duplicate posts and begins included).
func duplicateOps(lines []string, rng *rand.Rand) []string {
	var out []string
	for _, l := range lines {
		out = append(out, l)
		if rng.Intn(5) == 0 {
			out = append(out, l)
		}
	}
	return out
}

// swapAdjacent exchanges random adjacent pairs, modeling reordered
// buffers; the result usually violates the execution semantics (begin
// before post, FIFO inversions).
func swapAdjacent(lines []string, rng *rand.Rand) []string {
	out := append([]string(nil), lines...)
	for i := 0; i+1 < len(out); i++ {
		if rng.Intn(4) == 0 {
			out[i], out[i+1] = out[i+1], out[i]
		}
	}
	return out
}

// scrambleThreads rewrites random thread IDs, producing out-of-range and
// mismatched thread references.
func scrambleThreads(lines []string, rng *rand.Rand) []string {
	out := append([]string(nil), lines...)
	for i, l := range out {
		if rng.Intn(4) != 0 {
			continue
		}
		switch rng.Intn(3) {
		case 0:
			out[i] = strings.Replace(l, "(t", fmt.Sprintf("(t%d", rng.Intn(1000)), 1)
		case 1:
			out[i] = strings.Replace(l, "(t", "(t-", 1)
		default:
			out[i] = strings.Replace(l, "(t", "(t99999999999999999999", 1)
		}
	}
	return out
}

// garbleBytes overwrites random bytes of random lines, modeling storage
// corruption.
func garbleBytes(lines []string, rng *rand.Rand) []string {
	out := append([]string(nil), lines...)
	for i, l := range out {
		if rng.Intn(4) != 0 || l == "" {
			continue
		}
		b := []byte(l)
		for k := 0; k < 1+rng.Intn(3); k++ {
			b[rng.Intn(len(b))] = byte(rng.Intn(256))
		}
		out[i] = string(b)
	}
	return out
}

// MutateText applies the seed-selected operator to textual trace data
// and returns the corrupted text. It is the entry point fuzz drivers
// use to derive corrupt variants of valid traces.
func MutateText(data []byte, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	ops := Operators()
	op := ops[rng.Intn(len(ops))]
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	out := op.Apply(lines, rng)
	if len(out) == 0 {
		return nil
	}
	return []byte(strings.Join(out, "\n") + "\n")
}

// FailAt returns a scheduler fault hook that injects an error at the
// n-th scheduling point (see sched.Options.FaultHook): the run fails
// with the returned cause in its error chain.
func FailAt(n int, cause error) func(step int, op trace.Op) error {
	return func(step int, op trace.Op) error {
		if step == n {
			return cause
		}
		return nil
	}
}

// PanicAt returns a scheduler fault hook that panics with value at the
// n-th scheduling point, exercising the scheduler's panic recovery.
func PanicAt(n int, value any) func(step int, op trace.Op) error {
	return func(step int, op trace.Op) error {
		if step == n {
			panic(value)
		}
		return nil
	}
}

// Kill-points model hard process death (power loss, OOM-kill, SIGKILL) at
// named code locations, so chaos tests can prove that checkpoint/resume
// survives a crash at exactly the worst moment. A kill-point is armed by
// setting the EnvKillpoint environment variable to its name, optionally
// suffixed with ":N" to crash on the N-th hit instead of the first, e.g.
//
//	DROIDRACER_KILLPOINT=journal.append:3 racedet -campaign ...
//
// Production binaries pay one environment lookup per kill-point hit when
// the variable is unset.

// EnvKillpoint is the environment variable that arms a kill-point.
const EnvKillpoint = "DROIDRACER_KILLPOINT"

// KillExitCode is the exit status of a triggered kill-point. 137 mirrors
// a SIGKILL'd process (128+9), which is what the kill-point simulates.
const KillExitCode = 137

var killMu sync.Mutex
var killHits = map[string]int{}

// armedKillpoint parses EnvKillpoint into a point name and a 1-based hit
// number (default 1).
func armedKillpoint() (string, int) {
	spec := os.Getenv(EnvKillpoint)
	if spec == "" {
		return "", 0
	}
	name, nth := spec, 1
	if i := strings.LastIndexByte(spec, ':'); i >= 0 {
		if n, err := strconv.Atoi(spec[i+1:]); err == nil && n > 0 {
			name, nth = spec[:i], n
		}
	}
	return name, nth
}

// Triggered reports whether this hit of the named kill-point is the one
// the environment armed. It consumes one hit. Callers that need custom
// crash behavior (torn writes) branch on it; plain crashes use Crash.
func Triggered(point string) bool {
	name, nth := armedKillpoint()
	if name != point {
		return false
	}
	killMu.Lock()
	killHits[point]++
	hit := killHits[point]
	killMu.Unlock()
	return hit == nth
}

// Crash kills the process with KillExitCode when the named kill-point is
// armed and this hit is the triggering one. No deferred functions run —
// like SIGKILL, nothing gets to clean up.
func Crash(point string) {
	if Triggered(point) {
		os.Exit(KillExitCode)
	}
}
