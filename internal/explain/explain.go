// Package explain generates debugging explanations for reported data
// races — the "better debugging support" the paper's conclusion lists as
// future work. For each race it reconstructs the chains of posts leading
// to the racing accesses, states why the classifier chose the category it
// did, and reports near misses: happens-before rules that almost ordered
// the pair and the exact premise that failed (for example, a FIFO
// application blocked by a delayed or front-of-queue post).
package explain

import (
	"fmt"
	"strings"

	"droidracer/internal/hb"
	"droidracer/internal/race"
	"droidracer/internal/trace"
)

// PostStep is one post operation in a chain, annotated for display.
type PostStep struct {
	Index   int // trace index of the post
	Op      trace.Op
	Enabled bool // the posted task was explicitly enabled
}

// Explanation is the debugging story of one race.
type Explanation struct {
	Race race.Race
	// FirstChain and SecondChain are the paper's chain(α) for each access.
	FirstChain, SecondChain []PostStep
	// Reason states why the category applies.
	Reason string
	// Hints are category-specific debugging suggestions (§4.3's "debugging
	// it would involve ..." guidance, made concrete).
	Hints []string
	// NearMisses list rules that almost ordered the pair.
	NearMisses []string
}

// Explain builds the explanation for r over the analyzed graph.
func Explain(g *hb.Graph, r race.Race) Explanation {
	info := g.Info()
	tr := info.Trace()
	e := Explanation{
		Race:        r,
		FirstChain:  chainSteps(info, r.First),
		SecondChain: chainSteps(info, r.Second),
	}
	a, b := tr.Op(r.First), tr.Op(r.Second)
	switch r.Category {
	case race.Multithreaded:
		e.Reason = fmt.Sprintf("the accesses run on different threads (t%d and t%d) with no synchronization between them", a.Thread, b.Thread)
		e.Hints = append(e.Hints,
			"protect the location with a common lock, or",
			fmt.Sprintf("hand the value off with an asynchronous post from t%d to t%d", a.Thread, b.Thread))
	case race.CoEnabled:
		ea, eb := lastEventPost(info, e.FirstChain), lastEventPost(info, e.SecondChain)
		e.Reason = fmt.Sprintf("both accesses descend from independently enabled environment events (%s and %s) that can fire in either order", taskOf(ea), taskOf(eb))
		e.Hints = append(e.Hints,
			"check whether the two events are really co-enabled (can the user trigger them in parallel?)",
			"disable one widget while the other handler runs, or guard the shared state")
	case race.Delayed:
		da, db := lastDelayedPost(e.FirstChain), lastDelayedPost(e.SecondChain)
		e.Reason = "a delayed post leaves the dispatch order to the timer"
		for _, d := range []*PostStep{da, db} {
			if d != nil {
				e.Hints = append(e.Hints, fmt.Sprintf(
					"inspect the timeout of %s (δ=%dms): is it guaranteed to expire after the conflicting task runs?",
					taskOf(d), d.Op.Delay))
			}
		}
	case race.CrossPosted:
		xa, xb := lastCrossPost(tr, e.FirstChain, a.Thread), lastCrossPost(tr, e.SecondChain, b.Thread)
		e.Reason = fmt.Sprintf("the tasks were posted from different threads (%s, %s) with no ordering between the posts", posterOf(xa), posterOf(xb))
		e.Hints = append(e.Hints,
			"order the posts (post the second only after the first task completes), or",
			"make the tasks commute on the shared state")
	default:
		e.Reason = "no classification criterion applies"
		e.Hints = append(e.Hints, "this often involves FIFO exceptions; see the near misses below")
	}
	e.NearMisses = nearMisses(g, r)
	return e
}

// chainSteps materializes chain(α) with display annotations.
func chainSteps(info *trace.Info, i int) []PostStep {
	var out []PostStep
	for _, p := range info.PostChain(i) {
		op := info.Trace().Op(p)
		out = append(out, PostStep{
			Index:   p,
			Op:      op,
			Enabled: info.EnableIdx(op.Task) >= 0,
		})
	}
	return out
}

func taskOf(s *PostStep) string {
	if s == nil {
		return "<none>"
	}
	return string(s.Op.Task)
}

func posterOf(s *PostStep) string {
	if s == nil {
		return "<none>"
	}
	return fmt.Sprintf("t%d", s.Op.Thread)
}

func lastEventPost(info *trace.Info, chain []PostStep) *PostStep {
	for k := len(chain) - 1; k >= 0; k-- {
		if chain[k].Enabled {
			return &chain[k]
		}
	}
	return nil
}

func lastDelayedPost(chain []PostStep) *PostStep {
	for k := len(chain) - 1; k >= 0; k-- {
		if chain[k].Op.Delayed {
			return &chain[k]
		}
	}
	return nil
}

func lastCrossPost(tr *trace.Trace, chain []PostStep, accessThread trace.ThreadID) *PostStep {
	for k := len(chain) - 1; k >= 0; k-- {
		if chain[k].Op.Thread != accessThread {
			return &chain[k]
		}
	}
	return nil
}

// nearMisses inspects the rules that could have ordered the racing pair
// and reports exactly which premise failed.
func nearMisses(g *hb.Graph, r race.Race) []string {
	info := g.Info()
	tr := info.Trace()
	var out []string
	taskA, taskB := info.Task(r.First), info.Task(r.Second)
	threadA, threadB := tr.Op(r.First).Thread, tr.Op(r.Second).Thread

	// Same-thread pair in different tasks: examine FIFO and NOPRE.
	if threadA == threadB && taskA != "" && taskB != "" && taskA != taskB {
		qa, qb := info.PostIdx(taskA), info.PostIdx(taskB)
		if qa >= 0 && qb >= 0 {
			pa, pb := tr.Op(qa), tr.Op(qb)
			ordered := g.OrderedLE(qa, qb) || g.OrderedLE(qb, qa)
			switch {
			case !ordered:
				out = append(out, fmt.Sprintf(
					"FIFO inapplicable: the posts of %s (by t%d) and %s (by t%d) are themselves unordered",
					taskA, pa.Thread, taskB, pb.Thread))
			case pa.Front || pb.Front:
				out = append(out, fmt.Sprintf(
					"FIFO blocked: a front-of-queue post (%s) overrides dispatch order",
					frontOne(pa, pb)))
			case pa.Delayed || pb.Delayed:
				out = append(out, fmt.Sprintf(
					"FIFO blocked by delayed-post timing: %s", delayedDetail(pa, pb)))
			}
			// NOPRE: did anything in the earlier task reach the later post?
			first, second := taskA, taskB
			qSecond := qb
			if info.BeginIdx(taskB) < info.BeginIdx(taskA) {
				first, second = taskB, taskA
				qSecond = qa
			}
			if !anyTaskOpReaches(g, first, qSecond) {
				out = append(out, fmt.Sprintf(
					"NOPRE inapplicable: no operation of %s happens before the post of %s",
					first, second))
			}
		}
	}
	if threadA != threadB {
		out = append(out, "no fork/join, lock, or post edge connects the two threads for this pair")
	}
	// Enables: an un-posted enable or a missing enable is a common cause.
	for _, task := range []trace.TaskID{taskA, taskB} {
		if task != "" && info.EnableIdx(task) < 0 {
			out = append(out, fmt.Sprintf(
				"task %s was never explicitly enabled — a missing enable instrumentation point causes false positives (§6)",
				task))
		}
	}
	return out
}

func frontOne(a, b trace.Op) string {
	if a.Front {
		return string(a.Task)
	}
	return string(b.Task)
}

func delayedDetail(a, b trace.Op) string {
	parts := []string{}
	for _, op := range []trace.Op{a, b} {
		if op.Delayed {
			parts = append(parts, fmt.Sprintf("%s is delayed by %dms", op.Task, op.Delay))
		}
	}
	return strings.Join(parts, "; ")
}

// anyTaskOpReaches reports whether some operation of task p happens before
// the operation at trace index j.
func anyTaskOpReaches(g *hb.Graph, p trace.TaskID, j int) bool {
	info := g.Info()
	begin, end := info.BeginIdx(p), info.EndIdx(p)
	if begin < 0 {
		return false
	}
	if end < 0 {
		end = info.Trace().Len() - 1
	}
	for i := begin; i <= end; i++ {
		if info.Task(i) == p && g.OrderedLE(i, j) {
			return true
		}
	}
	return false
}

// String renders the explanation as a multi-line report.
func (e Explanation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s race on %s (ops %d, %d)\n", e.Race.Category, e.Race.Loc, e.Race.First, e.Race.Second)
	fmt.Fprintf(&sb, "  why: %s\n", e.Reason)
	writeChain := func(label string, chain []PostStep) {
		fmt.Fprintf(&sb, "  %s: ", label)
		if len(chain) == 0 {
			sb.WriteString("(no posts: plain thread code)\n")
			return
		}
		for k, s := range chain {
			if k > 0 {
				sb.WriteString(" -> ")
			}
			fmt.Fprintf(&sb, "%v", s.Op)
			if s.Enabled {
				sb.WriteString(" [enabled]")
			}
		}
		sb.WriteByte('\n')
	}
	writeChain("chain of first access ", e.FirstChain)
	writeChain("chain of second access", e.SecondChain)
	for _, h := range e.Hints {
		fmt.Fprintf(&sb, "  hint: %s\n", h)
	}
	for _, m := range e.NearMisses {
		fmt.Fprintf(&sb, "  near miss: %s\n", m)
	}
	return sb.String()
}
