package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync/atomic"
	"time"
)

// runCounter disambiguates run IDs minted within one process.
var runCounter atomic.Uint64

// NewRunID mints a short, sortable run identifier: unix-seconds, pid,
// and a per-process counter, e.g. "1754500000-4242-1". Every event a
// daemon incarnation emits carries it, so one grep isolates one run.
func NewRunID() string {
	return fmt.Sprintf("%d-%d-%d", time.Now().Unix(), os.Getpid(), runCounter.Add(1))
}

// NewEventLog returns a structured JSONL event logger writing to w.
// Every record carries the run ID under "run"; callers add correlation
// attributes per event (campaign name, job name, journal sequence
// number) so events can be joined against the write-ahead journal.
//
// Records look like:
//
//	{"time":"...","level":"INFO","msg":"job.finish","run":"...",
//	 "job":"trace1.txt","mode":"full","attempts":1,"journal_seq":7}
func NewEventLog(w io.Writer, runID string) *slog.Logger {
	h := slog.NewJSONHandler(w, nil)
	return slog.New(h).With("run", runID)
}

// Nop returns a logger that discards everything — the default wiring
// when no -events sink is configured, so instrumented code logs
// unconditionally.
func Nop() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}
