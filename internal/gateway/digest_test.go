package gateway

import (
	"net/http"
	"testing"

	"droidracer/internal/server"
)

// TestCacheFillRejectsMalformedDigest: a done answer whose digest is
// not a well-formed jobs.ResultDigest is relayed to its client but must
// never take a cache slot — the cache serves duplicates forever, and an
// unverifiable entry is unfalsifiable forever.
func TestCacheFillRejectsMalformedDigest(t *testing.T) {
	b := newFakeBackend(t)
	b.onSubmit = func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, &server.SubmitResponse{
			Job: r.Header.Get("Idempotency-Key"), Status: server.StatusDone,
			Mode: "full", Races: 1, Digest: "not-a-digest",
		})
	}
	g := newTestGateway(t, Config{}, b)
	body := "post(t0,LAUNCH_ACTIVITY,t1)\n"
	resp, code := postBody(t, g, body)
	if code != http.StatusOK || resp.Status != server.StatusDone {
		t.Fatalf("relay of unverifiable answer: %d %s, want 200 done", code, resp.Status)
	}
	if g.cache.len() != 0 {
		t.Fatal("malformed digest admitted to the cache")
	}
	// The duplicate goes back to the backend instead of replaying a
	// fact the gateway could not verify the shape of.
	before := b.submits.Load()
	if resp, _ := postBody(t, g, body); resp.Cached {
		t.Fatal("duplicate served from a cache that should be empty")
	}
	if b.submits.Load() != before+1 {
		t.Fatal("duplicate did not re-consult the backend")
	}
}

// TestCacheFillEvictsOnDigestMismatch: two backends answering one
// content key with different digests is fleet-level corruption — the
// cache must stop serving either side rather than pick one.
func TestCacheFillEvictsOnDigestMismatch(t *testing.T) {
	g := newTestGateway(t, Config{}, newFakeBackend(t))
	key := "00000000000000aa"
	first := server.SubmitResponse{Job: key, Status: server.StatusDone, Mode: "full", Digest: "1111111111111111"}
	g.cacheFill(key, "b1", first)
	if g.cache.len() != 1 {
		t.Fatal("well-formed digest refused a cache slot")
	}
	conflicting := first
	conflicting.Digest = "2222222222222222"
	g.cacheFill(key, "b2", conflicting)
	if g.cache.len() != 0 {
		t.Fatal("contradictory digests left a cache entry standing")
	}
	// Re-agreement is allowed to refill.
	g.cacheFill(key, "b1", first)
	if got, ok := g.cache.get(key); !ok || got.Digest != first.Digest {
		t.Fatal("cache did not refill after eviction")
	}
}
