package gateway

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"droidracer/internal/core"
	"droidracer/internal/faultinject"
	"droidracer/internal/flood"
	"droidracer/internal/jobs"
	"droidracer/internal/journal"
	"droidracer/internal/obs"
	"droidracer/internal/report"
	"droidracer/internal/sentinel"
	"droidracer/internal/server"
)

// sentinelBackendEnv marks the re-exec'd resource-governed backend of
// the sentinel fleet chaos test; its value is the backend's root dir.
const sentinelBackendEnv = "DROIDRACER_GW_SENTINEL_BACKEND"

// sentinelWorkerMarker marks the isolated worker subprocess those
// backends re-exec for heavy inputs.
const sentinelWorkerMarker = "DROIDRACER_GW_SENTINEL_WORKER"

// sentinelWorkerMem is the worker sandbox budget in the chaos test,
// deliberately far below what a bomb's closure needs.
const sentinelWorkerMem = 64 << 20

// TestSentinelWorkerHelper is the isolated worker subprocess of the
// sentinel chaos test — racedetd -worker in test-binary clothing.
func TestSentinelWorkerHelper(t *testing.T) {
	if os.Getenv(sentinelWorkerMarker) != "1" {
		t.Skip("helper subprocess only")
	}
	os.Exit(sentinel.WorkerMain())
}

// TestSentinelBackendProcess is the subprocess body of the sentinel
// fleet chaos test: the TestGatewayBackendProcess miniature racedetd
// plus full resource governance — cost admission, worker isolation for
// heavy inputs, a fast-sampling brownout sentinel, and a debug listener
// so the parent can scrape droidracer_sentinel_* series.
func TestSentinelBackendProcess(t *testing.T) {
	dir := os.Getenv(sentinelBackendEnv)
	if dir == "" {
		t.Skip("helper subprocess only")
	}
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "sentinel backend helper:", err)
		os.Exit(1)
	}
	spool := filepath.Join(dir, "spool")
	state := filepath.Join(dir, "state")
	if err := os.MkdirAll(spool, 0o777); err != nil {
		die(err)
	}
	if err := os.MkdirAll(state, 0o777); err != nil {
		die(err)
	}
	jpath := filepath.Join(state, "daemon.journal")
	entries, err := journal.Recover(jpath)
	if err != nil {
		die(err)
	}
	w, err := journal.Create(jpath)
	if err != nil {
		die(err)
	}
	events := obs.NewEventLog(os.Stderr, filepath.Base(dir))
	// The watermark is far above anything this backend's own heap
	// reaches; only the DROIDRACER_SENTINEL_FAULT brownout window (armed
	// per backend by the parent) trips it, on a fast sampling interval so
	// the forced window opens and closes within the test's patience.
	snt := sentinel.New(sentinel.Config{
		Watermark: 8 << 30,
		Interval:  25 * time.Millisecond,
		Events:    events,
	})
	snt.Start()
	defer snt.Stop()
	var srv *server.Server
	pool := jobs.NewPool(jobs.Config{
		Workers:    1,
		QueueDepth: 16,
		Journal:    w,
		Quarantine: &jobs.Quarantine{Dir: filepath.Join(state, "quarantine")},
		OnFinish: func(out report.Outcome) {
			if s := srv; s != nil {
				s.JobFinished(out)
			}
		},
	})
	srv = server.New(server.Config{
		Pool:        pool,
		Spool:       spool,
		Analyze:     core.DefaultOptions(),
		Workers:     1,
		Events:      events,
		Rate:        10000,
		Burst:       10000,
		MaxInflight: 256,
		StorageErr:  w.Err,
		Completed:   jobs.CompletedRecords(entries),
		Quarantined: jobs.QuarantinedJobs(entries),
		Sentinel:    snt,
		// Soft ceiling only: bombs are flagged heavy and ACCEPTED — the
		// sandbox, not the front door, is what must absorb them.
		Cost: sentinel.CostLimits{Soft: sentinelWorkerMem},
		Isolator: &sentinel.Isolator{
			Exe:      os.Args[0],
			Args:     []string{"-test.run=^TestSentinelWorkerHelper$", "-test.v"},
			Env:      []string{sentinelWorkerMarker + "=1"},
			MemLimit: sentinelWorkerMem,
			Wall:     time.Minute,
			Events:   events,
		},
	})
	if _, mbound, err := obs.ServeDebug("127.0.0.1:0", obs.Default()); err == nil {
		if err := os.WriteFile(filepath.Join(dir, "metrics"), []byte(mbound), 0o666); err != nil {
			die(err)
		}
	}
	addrPath := filepath.Join(dir, "addr")
	listen := "127.0.0.1:0"
	if b, rerr := os.ReadFile(addrPath); rerr == nil && len(b) > 0 {
		listen = string(b)
	}
	var bound string
	bindDeadline := time.Now().Add(10 * time.Second)
	for {
		_, bound, err = srv.Serve(listen)
		if err == nil {
			break
		}
		if time.Now().After(bindDeadline) {
			die(err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := os.WriteFile(addrPath+".tmp", []byte(bound), 0o666); err != nil {
		die(err)
	}
	if err := os.Rename(addrPath+".tmp", addrPath); err != nil {
		die(err)
	}
	for {
		if srv.SweepReady() {
			if ents, err := os.ReadDir(spool); err == nil {
				for _, e := range ents {
					if e.IsDir() || strings.HasPrefix(e.Name(), ".") {
						continue
					}
					if !srv.Claim(e.Name()) {
						continue
					}
					// The governed sweep path: a swept bomb runs isolated,
					// exactly like an HTTP-admitted one.
					job := srv.SpoolJob(e.Name(), filepath.Join(spool, e.Name()))
					if err := pool.Submit(job); err != nil {
						srv.Release(e.Name())
					}
				}
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// sentinelBackendCmd re-execs the test binary as a resource-governed
// backend over dir, stripping every chaos variable from the parent.
func sentinelBackendCmd(t *testing.T, dir string, extraEnv ...string) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestSentinelBackendProcess$", "-test.v")
	for _, kv := range os.Environ() {
		if strings.HasPrefix(kv, faultinject.EnvKillpoint+"=") ||
			strings.HasPrefix(kv, faultinject.EnvStorageFault+"=") ||
			strings.HasPrefix(kv, sentinel.EnvSentinelFault+"=") ||
			strings.HasPrefix(kv, backendHelperEnv+"=") ||
			strings.HasPrefix(kv, backendGraceEnv+"=") ||
			strings.HasPrefix(kv, sentinelBackendEnv+"=") {
			continue
		}
		cmd.Env = append(cmd.Env, kv)
	}
	cmd.Env = append(cmd.Env, sentinelBackendEnv+"="+dir)
	cmd.Env = append(cmd.Env, extraEnv...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	return cmd, &out
}

// bombBody builds a valid, small (sub-megabyte) trace whose alternating-
// thread accesses defeat §6 node merging: the closure's two n×n bitset
// matrices for its ~60k nodes need ~900 MB, an order of magnitude past
// the worker sandbox. An unguarded daemon analyzing it in-process dies.
func bombBody(writes int) []byte {
	var sb strings.Builder
	sb.Grow(writes*12 + 64)
	sb.WriteString("threadinit(t1)\nfork(t1,t2)\nthreadinit(t2)\n")
	for i := 0; i < writes; i++ {
		fmt.Fprintf(&sb, "write(t%d,x)\n", 1+i%2)
	}
	return []byte(sb.String())
}

// TestSentinelFleetChaos is the resource-governance fleet proof: memory
// bombs mixed into normal traffic through the gateway cost the fleet
// exactly one "resource" quarantine record each and zero daemon deaths;
// every normal key still converges with the digest an independent local
// analysis produces; and a browned-out backend is routed around and
// reinstated like any other degraded one.
func TestSentinelFleetChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	root := t.TempDir()
	const nBackends = 3
	dirs := make([]string, nBackends)
	cmds := make([]*exec.Cmd, nBackends)
	logs := make([]*bytes.Buffer, nBackends)
	addrs := make([]string, nBackends)
	for i := range dirs {
		dirs[i] = filepath.Join(root, fmt.Sprintf("b%d", i))
		if err := os.MkdirAll(dirs[i], 0o777); err != nil {
			t.Fatal(err)
		}
		cmds[i], logs[i] = sentinelBackendCmd(t, dirs[i])
		if err := cmds[i].Start(); err != nil {
			t.Fatal(err)
		}
		addrs[i] = "http://" + waitBackendAddr(t, dirs[i], logs[i])
	}
	defer func() {
		for _, c := range cmds {
			if c.Process != nil {
				c.Process.Kill()
				c.Wait()
			}
		}
	}()

	gwLog := &syncBuffer{}
	g, err := New(Config{
		Backends:       addrs,
		ProbeInterval:  50 * time.Millisecond,
		ProbeTimeout:   2 * time.Second,
		EjectThreshold: 2,
		RetryAfter:     5 * time.Second,
		Seed:           1,
		Events:         obs.NewEventLog(gwLog, "gw"),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g.StartProbing(ctx)
	waitLive(t, g, nBackends, "startup")
	gwSrv, gwAddr, err := g.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gwSrv.Close()
	gwURL := "http://" + gwAddr

	corpus, err := flood.BuildCorpus([]string{"Music Player", "Aard Dictionary"}, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	keyToBody := make(map[string][]byte, len(corpus))
	for _, b := range corpus {
		keyToBody[server.IdempotencyKey(b)] = b
	}
	bombs := [][]byte{bombBody(60000), bombBody(64000)}
	bombKeys := make([]string, len(bombs))
	for i, b := range bombs {
		bombKeys[i] = server.IdempotencyKey(b)
	}

	// Flood normal traffic; mid-flood, lob the bombs in through the same
	// front door.
	floodDone := make(chan struct {
		sum *flood.Summary
		err error
	}, 1)
	go func() {
		sum, err := flood.Run(ctx, flood.Config{
			BaseURL:     gwURL,
			Requests:    30,
			RPS:         100,
			DupRatio:    0.3,
			Corpus:      corpus,
			Seed:        2,
			MaxAttempts: 4,
			Timeout:     20 * time.Second,
		})
		floodDone <- struct {
			sum *flood.Summary
			err error
		}{sum, err}
	}()
	time.Sleep(100 * time.Millisecond)
	for i, bomb := range bombs {
		r, err := http.Post(gwURL+"/v1/jobs", "text/plain", bytes.NewReader(bomb))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		// The soft ceiling flags bombs heavy but ACCEPTS them: absorbing
		// the hit in the sandbox, not refusing, is what this test proves.
		if r.StatusCode != http.StatusAccepted {
			t.Fatalf("bomb %d = %d, want 202", i, r.StatusCode)
		}
	}
	res := <-floodDone
	if res.err != nil {
		t.Fatalf("flood: %v", res.err)
	}
	sum := res.sum
	if len(sum.AcceptedKeys) == 0 {
		t.Fatalf("flood accepted nothing: %+v", sum)
	}

	// Every normal key converges to done; every bomb to quarantined with
	// a resource reason — all through the gateway.
	cl := &server.Client{BaseURL: gwURL}
	pollCtx, pollCancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer pollCancel()
	for _, key := range sum.AcceptedKeys {
		for {
			resp, err := cl.Status(pollCtx, key)
			if err == nil && resp.Status == server.StatusDone {
				break
			}
			if err == nil && resp.Status == server.StatusQuarantined {
				t.Fatalf("normal key %s quarantined (%s)", key, resp.Reason)
			}
			if pollCtx.Err() != nil {
				t.Fatalf("key %s never completed\ngateway:\n%s", key, gwLog.String())
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	for i, key := range bombKeys {
		for {
			resp, err := cl.Status(pollCtx, key)
			if err == nil && resp.Status == server.StatusQuarantined {
				if !strings.HasPrefix(resp.Reason, "resource: ") {
					t.Fatalf("bomb %d quarantine reason = %q, want a resource: prefix", i, resp.Reason)
				}
				break
			}
			if err == nil && resp.Status == server.StatusDone {
				t.Fatalf("bomb %d completed?! a %d-byte worker sandbox absorbed a ~900MB closure", i, sentinelWorkerMem)
			}
			if pollCtx.Err() != nil {
				t.Fatalf("bomb %d never quarantined\ngateway:\n%s", i, gwLog.String())
			}
			time.Sleep(25 * time.Millisecond)
		}
	}

	// Zero daemon deaths: every backend still answers liveness on its
	// original address after digesting the bombs.
	for i, addr := range addrs {
		hr, err := http.Get(addr + "/healthz")
		if err != nil {
			t.Fatalf("backend %d dead after the bombs: %v\n%s", i, err, logs[i].String())
		}
		hr.Body.Close()
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("backend %d healthz = %d after the bombs", i, hr.StatusCode)
		}
	}

	// The sentinel series are scrapeable, and some backend counted an
	// isolated execution.
	sawIsolated := false
	for i, dir := range dirs {
		maddr, err := os.ReadFile(filepath.Join(dir, "metrics"))
		if err != nil {
			t.Fatalf("backend %d published no metrics address: %v", i, err)
		}
		mr, err := http.Get("http://" + string(maddr) + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		scrape, _ := io.ReadAll(mr.Body)
		mr.Body.Close()
		if !bytes.Contains(scrape, []byte("droidracer_sentinel_mem_bytes")) ||
			!bytes.Contains(scrape, []byte("droidracer_sentinel_estimates_total")) {
			t.Fatalf("backend %d scrape lacks sentinel series", i)
		}
		for _, line := range strings.Split(string(scrape), "\n") {
			if strings.HasPrefix(line, "droidracer_sentinel_isolated_total") &&
				!strings.HasSuffix(strings.TrimSpace(line), " 0") {
				sawIsolated = true
			}
		}
	}
	if !sawIsolated {
		t.Fatal("no backend counted an isolated worker execution")
	}

	// Brownout routing: restart backend 0 with a forced brownout window.
	// Its /readyz must report "resource", the prober must route around
	// it, and — once the window passes — reinstate it.
	cmds[0].Process.Kill()
	cmds[0].Wait()
	waitLive(t, g, nBackends-1, "after brownout kill")
	cmds[0], logs[0] = sentinelBackendCmd(t, dirs[0],
		sentinel.EnvSentinelFault+"=brownout:1-120") // 120 samples x 25ms = a ~3s window
	if err := cmds[0].Start(); err != nil {
		t.Fatal(err)
	}
	waitBackendAddr(t, dirs[0], logs[0])
	readyzDeadline := time.Now().Add(15 * time.Second)
	for {
		rz, err := http.Get(addrs[0] + "/readyz")
		if err == nil {
			cond, _ := io.ReadAll(rz.Body)
			rz.Body.Close()
			if rz.StatusCode == http.StatusServiceUnavailable && strings.TrimSpace(string(cond)) == "resource" {
				break
			}
		}
		if time.Now().After(readyzDeadline) {
			t.Fatalf("backend 0 never reported resource-degraded readiness\n%s", logs[0].String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if n := len(g.LiveBackends()); n != nBackends-1 {
		t.Fatalf("browned-out backend still routed to: live=%d", n)
	}
	// The forced window expires; the sampler recovers; the prober
	// reinstates the backend without a restart.
	waitLive(t, g, nBackends, "after brownout recovery")

	// The convergence proof over the journals: exactly one record per
	// normal key with the independent digest, exactly one resource
	// quarantine record per bomb, fleet-wide.
	for _, c := range cmds {
		c.Process.Kill()
		c.Wait()
	}
	records := fleetRecords(t, dirs)
	for _, key := range sum.AcceptedKeys {
		name := key + ".trace"
		recs := records[name]
		if len(recs) != 1 {
			t.Errorf("key %s: %d journal records across the fleet, want exactly 1: %+v", key, len(recs), recs)
			continue
		}
		if want := localDigest(t, keyToBody[key]); recs[0].Digest != want {
			t.Errorf("key %s: fleet digest %q != local digest %q", key, recs[0].Digest, want)
		}
	}
	quarantines := make(map[string][]string) // name -> reasons across the fleet
	for _, dir := range dirs {
		entries, err := journal.Recover(filepath.Join(dir, "state", "daemon.journal"))
		if err != nil {
			t.Fatal(err)
		}
		for name, reason := range jobs.QuarantinedJobs(entries) {
			quarantines[name] = append(quarantines[name], reason)
		}
	}
	for i, key := range bombKeys {
		reasons := quarantines[key+".trace"]
		if len(reasons) != 1 {
			t.Errorf("bomb %d: %d quarantine records across the fleet, want exactly 1: %v", i, len(reasons), reasons)
			continue
		}
		if !strings.HasPrefix(reasons[0], "resource: ") {
			t.Errorf("bomb %d: quarantine reason %q lacks the resource prefix", i, reasons[0])
		}
	}
	if t.Failed() {
		t.Logf("gateway:\n%s", gwLog.String())
		for i, l := range logs {
			t.Logf("b%d:\n%s", i, l.String())
		}
	}
}
