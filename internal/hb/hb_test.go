package hb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"droidracer/internal/paper"
	"droidracer/internal/semantics"
	"droidracer/internal/trace"
)

// build analyzes tr and builds the happens-before graph, failing the test
// on malformed traces.
func build(t *testing.T, tr *trace.Trace, cfg Config) *Graph {
	t.Helper()
	info, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	return Build(info, cfg)
}

// i converts a 1-based paper figure index to a trace index.
func i(paperIdx int) int { return paper.Idx(paperIdx) }

func TestFigure3Edges(t *testing.T) {
	g := build(t, paper.Figure3(), DefaultConfig())

	// Edge a: fork(8) ≼mt threadinit(11) — FORK rule.
	if !g.MTHas(i(8), i(11)) {
		t.Error("edge a: fork !≼mt threadinit")
	}
	// Edge b: post(13) ≼mt begin(15) — POST-MT rule.
	if !g.MTHas(i(13), i(15)) {
		t.Error("edge b: post !≼mt begin")
	}
	// Edge c: end(10) ≼st begin(15) — the thread-local edge between the
	// two asynchronous tasks, derivable only by combining multithreaded
	// and asynchronous reasoning (NOPRE through the forked thread).
	if !g.STHas(i(10), i(15)) {
		t.Error("edge c: end(LAUNCH_ACTIVITY) !≼st begin(onPostExecute)")
	}
	// Edge d: enable(17) ≼st post(19) — ENABLE-ST rule.
	if !g.STHas(i(17), i(19)) {
		t.Error("edge d: enable !≼st post (same thread)")
	}
	// Edge e: enable(21) ≼mt post(23) — ENABLE-MT rule (t1 to t0).
	if !g.MTHas(i(21), i(23)) {
		t.Error("edge e: enable !≼mt post (cross thread)")
	}
}

func TestFigure3NoRaces(t *testing.T) {
	g := build(t, paper.Figure3(), DefaultConfig())
	// Conflicting pairs (7,12) and (7,16) are both ordered (§2.4).
	if !g.HappensBefore(i(7), i(12)) {
		t.Error("write(7) !≼ read(12): fork edge chain missing")
	}
	if !g.HappensBefore(i(7), i(16)) {
		t.Error("write(7) !≼ read(16): thread-local task edge missing")
	}
}

func TestFigure4Races(t *testing.T) {
	g := build(t, paper.Figure4(), DefaultConfig())
	// The paper reports races (12,21) and (16,21): no ordering either way.
	for _, pair := range [][2]int{{12, 21}, {16, 21}} {
		a, b := i(pair[0]), i(pair[1])
		if g.HappensBefore(a, b) || g.HappensBefore(b, a) {
			t.Errorf("ops (%d,%d) ordered; paper reports a race", pair[0], pair[1])
		}
	}
	// The write pair (7,21) is NOT a race: enable(9) ≼ post(19) ≼ begin(20)
	// orders it (via NOPRE for the same-thread composition).
	if !g.HappensBefore(i(7), i(21)) {
		t.Error("write(7) !≼ write(21): enable modeling failed")
	}
}

// figure4BinderPool is Figure 4 with the onDestroy post issued by a second
// binder thread t3 instead of t0. The paper's binder threads come from a
// thread pool, so consecutive IPCs need not share a thread; in the literal
// figure both posts are on t0 and program order on the plain binder thread
// incidentally orders them.
func figure4BinderPool() *trace.Trace {
	tr := paper.Figure4().Clone()
	ops := tr.Ops()
	ops[paper.Idx(19)].Thread = 3
	return tr
}

func TestFigure4WithoutEnableModelingFalsePositive(t *testing.T) {
	// §2.4: "Without the enable operation ... we could not have derived the
	// required happens-before ordering between operations 7 and 21,
	// resulting in a false positive."
	tr := figure4BinderPool()
	cfg := DefaultConfig()
	cfg.EnableEdges = false
	g := build(t, tr, cfg)
	if g.HappensBefore(i(7), i(21)) {
		t.Error("(7,21) ordered without enable edges; expected the false positive")
	}
	// With enable modeling the ordering is recovered and the false
	// positive disappears.
	g = build(t, tr, DefaultConfig())
	if !g.HappensBefore(i(7), i(21)) {
		t.Error("(7,21) unordered with enable edges")
	}
}

func TestFigure4LiteralBinderProgramOrder(t *testing.T) {
	// On the literal figure both posts run on binder thread t0, a thread
	// without a queue, so NO-Q-PO orders post(5) before post(19) and FIFO
	// orders the tasks even without enable edges.
	cfg := DefaultConfig()
	cfg.EnableEdges = false
	g := build(t, paper.Figure4(), cfg)
	if !g.STHas(i(5), i(19)) {
		t.Error("binder posts not program-ordered on the shared binder thread")
	}
	if !g.HappensBefore(i(7), i(21)) {
		t.Error("(7,21) unordered despite binder program order + FIFO")
	}
}

// lockTrace builds the paper's §1 scenario: two asynchronous tasks on one
// thread both using lock l, posted by two different threads with no
// ordering between the posts.
func lockTrace() *trace.Trace {
	return trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.LoopOnQ(1),
		trace.ThreadInit(2),
		trace.ThreadInit(3),
		trace.Post(2, "a", 1),
		trace.Post(3, "b", 1),
		trace.Begin(1, "a"),
		trace.Acquire(1, "l"),
		trace.Write(1, "x"),
		trace.Release(1, "l"),
		trace.End(1, "a"),
		trace.Begin(1, "b"),
		trace.Acquire(1, "l"),
		trace.Write(1, "x"),
		trace.Release(1, "l"),
		trace.End(1, "b"),
	})
}

func TestLocksDoNotOrderSameThreadTasks(t *testing.T) {
	g := build(t, lockTrace(), DefaultConfig())
	w1, w2 := 9, 14 // the two writes to x
	if g.HappensBefore(w1, w2) || g.HappensBefore(w2, w1) {
		t.Error("lock spuriously ordered tasks on the same thread")
	}
}

func TestNaiveCombinationOrdersSameThreadTasks(t *testing.T) {
	// The ablation: with the naive combination the release of task a and
	// the acquire of task b are ordered, masking the race.
	cfg := DefaultConfig()
	cfg.Naive = true
	g := build(t, lockTrace(), cfg)
	if !g.HappensBefore(9, 14) {
		t.Error("naive combination did not order the writes; ablation broken")
	}
}

func TestLockOrdersAcrossThreads(t *testing.T) {
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.ThreadInit(2),
		trace.Acquire(1, "l"),
		trace.Write(1, "x"),
		trace.Release(1, "l"),
		trace.Acquire(2, "l"),
		trace.Write(2, "x"),
		trace.Release(2, "l"),
	})
	g := build(t, tr, DefaultConfig())
	if !g.MTHas(4, 5) {
		t.Error("release !≼mt acquire across threads")
	}
	if !g.HappensBefore(3, 6) {
		t.Error("writes under a common lock on two threads unordered")
	}
}

func TestFIFOOrdersTasks(t *testing.T) {
	// Two posts from the same thread to the same queue: FIFO orders the
	// tasks, so accesses in them are ordered.
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.LoopOnQ(1),
		trace.ThreadInit(2),
		trace.Post(2, "a", 1),
		trace.Post(2, "b", 1),
		trace.Begin(1, "a"),
		trace.Write(1, "x"),
		trace.End(1, "a"),
		trace.Begin(1, "b"),
		trace.Write(1, "x"),
		trace.End(1, "b"),
	})
	g := build(t, tr, DefaultConfig())
	if !g.STHas(8, 9) {
		t.Error("end(a) !≼st begin(b) under FIFO")
	}
	if !g.HappensBefore(7, 10) {
		t.Error("writes in FIFO-ordered tasks unordered")
	}
	// Ablation: dropping FIFO gives the non-deterministic semantics.
	cfg := DefaultConfig()
	cfg.FIFO = false
	cfg.NoPre = false
	g = build(t, tr, cfg)
	if g.HappensBefore(7, 10) {
		t.Error("writes ordered with FIFO disabled")
	}
}

func TestFIFOAcrossPostingThreads(t *testing.T) {
	// FIFO applies "irrespective of whether the post operations belong to
	// the same thread or not": posts from different threads ordered via
	// fork are FIFO-ordered.
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.LoopOnQ(1),
		trace.ThreadInit(2),
		trace.Post(2, "a", 1),
		trace.Fork(2, 3),
		trace.ThreadInit(3),
		trace.Post(3, "b", 1),
		trace.Begin(1, "a"),
		trace.Write(1, "x"),
		trace.End(1, "a"),
		trace.Begin(1, "b"),
		trace.Write(1, "x"),
		trace.End(1, "b"),
	})
	g := build(t, tr, DefaultConfig())
	// post(a)=4 ≼ fork(5) ≼ threadinit(6) ≼ post(b)=7, so FIFO applies.
	if !g.STHas(10, 11) {
		t.Error("end(a) !≼st begin(b): cross-thread FIFO missed")
	}
}

func TestUnorderedPostsToDistinctThreadsNotOrdered(t *testing.T) {
	// No analogue of FIFO for distinct destination threads: tasks may
	// interleave arbitrarily.
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.LoopOnQ(1),
		trace.ThreadInit(2),
		trace.AttachQ(2),
		trace.LoopOnQ(2),
		trace.ThreadInit(3),
		trace.Post(3, "a", 1),
		trace.Post(3, "b", 2),
		trace.Begin(1, "a"),
		trace.Write(1, "x"),
		trace.End(1, "a"),
		trace.Begin(2, "b"),
		trace.Write(2, "x"),
		trace.End(2, "b"),
	})
	g := build(t, tr, DefaultConfig())
	if g.HappensBefore(10, 13) || g.HappensBefore(13, 10) {
		t.Error("tasks on distinct threads spuriously ordered")
	}
}

func TestNoPreRule(t *testing.T) {
	// Task a posts b to its own thread from inside itself and then keeps
	// running (the write at op 8 follows the post). POST-ST alone orders
	// the post before begin(b) but not the rest of task a; only NOPRE
	// (run-to-completion) orders end(a) before begin(b) and with it the
	// trailing write.
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.LoopOnQ(1),
		trace.ThreadInit(2),
		trace.Post(2, "a", 1),
		trace.Begin(1, "a"),
		trace.Post(1, "b", 1), // 6
		trace.Write(1, "x"),   // 7: after the post, ordered only by NOPRE
		trace.End(1, "a"),     // 8
		trace.Begin(1, "b"),   // 9
		trace.Write(1, "x"),   // 10
		trace.End(1, "b"),
	})
	cfg := DefaultConfig()
	cfg.FIFO = false // isolate NOPRE
	g := build(t, tr, cfg)
	if !g.STHas(8, 9) {
		t.Error("end(a) !≼st begin(b) under NOPRE")
	}
	if !g.HappensBefore(7, 10) {
		t.Error("trailing write unordered despite NOPRE")
	}
	cfg.NoPre = false
	g = build(t, tr, cfg)
	if g.HappensBefore(7, 10) {
		t.Error("trailing write ordered with NOPRE disabled")
	}
	// The early path through POST-ST still orders the post itself.
	if !g.HappensBefore(6, 10) {
		t.Error("post !≼ op in posted task (POST-ST broken)")
	}
}

func TestDelayedPostFIFORefinement(t *testing.T) {
	mk := func(post1, post2 trace.Op) *trace.Trace {
		return trace.FromOps([]trace.Op{
			trace.ThreadInit(1),
			trace.AttachQ(1),
			trace.LoopOnQ(1),
			trace.ThreadInit(2),
			post1,
			post2,
			trace.Begin(1, "a"),
			trace.End(1, "a"),
			trace.Begin(1, "b"),
			trace.End(1, "b"),
		})
	}
	cases := []struct {
		name    string
		p1, p2  trace.Op
		ordered bool
	}{
		{"both-plain", trace.Post(2, "a", 1), trace.Post(2, "b", 1), true},
		{"second-delayed", trace.Post(2, "a", 1), trace.PostDelayed(2, "b", 1, 100), true},
		{"first-delayed", trace.PostDelayed(2, "a", 1, 100), trace.Post(2, "b", 1), false},
		{"both-delayed-le", trace.PostDelayed(2, "a", 1, 100), trace.PostDelayed(2, "b", 1, 200), true},
		{"both-delayed-eq", trace.PostDelayed(2, "a", 1, 100), trace.PostDelayed(2, "b", 1, 100), true},
		{"both-delayed-gt", trace.PostDelayed(2, "a", 1, 300), trace.PostDelayed(2, "b", 1, 200), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.NoPre = false // isolate FIFO
			g := build(t, mk(c.p1, c.p2), cfg)
			if got := g.STHas(7, 8); got != c.ordered {
				t.Errorf("end(a) ≼st begin(b) = %v, want %v", got, c.ordered)
			}
		})
	}
}

func TestFrontPostNotFIFOOrdered(t *testing.T) {
	// A front post as the second post overtakes the queue: no FIFO edge.
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.LoopOnQ(1),
		trace.ThreadInit(2),
		trace.Post(2, "a", 1),
		trace.PostFront(2, "b", 1),
		trace.Begin(1, "a"), // dispatch happened to run a first anyway
		trace.End(1, "a"),
		trace.Begin(1, "b"),
		trace.End(1, "b"),
	})
	cfg := DefaultConfig()
	cfg.NoPre = false
	g := build(t, tr, cfg)
	if g.STHas(6, 8) {
		t.Error("front post FIFO-ordered; overtaking ignored")
	}
	// A front post as the FIRST post still guarantees order: it is already
	// queued when the second (back) post arrives.
	tr = trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.LoopOnQ(1),
		trace.ThreadInit(2),
		trace.PostFront(2, "a", 1),
		trace.Post(2, "b", 1),
		trace.Begin(1, "a"),
		trace.End(1, "a"),
		trace.Begin(1, "b"),
		trace.End(1, "b"),
	})
	g = build(t, tr, cfg)
	if !g.STHas(7, 8) {
		t.Error("front-then-back posts not FIFO-ordered")
	}
}

func TestAttachQOrdersPosts(t *testing.T) {
	g := build(t, paper.Figure3(), DefaultConfig())
	// attachQ(2) ≼mt post(5) from the binder thread.
	if !g.MTHas(i(2), i(5)) {
		t.Error("attachQ !≼mt cross-thread post")
	}
}

func TestJoinEdge(t *testing.T) {
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.Fork(1, 2),
		trace.ThreadInit(2),
		trace.Write(2, "x"),
		trace.ThreadExit(2),
		trace.Join(1, 2),
		trace.Write(1, "x"),
	})
	g := build(t, tr, DefaultConfig())
	if !g.MTHas(4, 5) {
		t.Error("threadexit !≼mt join")
	}
	if !g.HappensBefore(3, 6) {
		t.Error("write before exit !≼ write after join")
	}
}

func TestAlternatingThreadChainNotDerivable(t *testing.T) {
	// A subtle consequence of the restricted transitivity: on QUEUE
	// threads, a causal chain that alternates A→B→A→B through four
	// distinct tasks is not recorded, because every intermediate
	// composition lands on a same-thread pair in different tasks (blocked
	// for TRANS-MT, and no task-level st rule applies: the posts are
	// unordered and the locks do not reach the posts).
	//
	// Threads: 1 (queue, "A"), 2 (queue, "B"); 3–6 independent posters.
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.LoopOnQ(1),
		trace.ThreadInit(2),
		trace.AttachQ(2),
		trace.LoopOnQ(2),
		trace.ThreadInit(3),
		trace.ThreadInit(4),
		trace.ThreadInit(5),
		trace.ThreadInit(6),
		trace.Post(3, "task1", 1),
		trace.Post(4, "task2", 2),
		trace.Post(5, "task3", 1),
		trace.Post(6, "task4", 2),
		trace.Begin(1, "task1"),
		trace.Acquire(1, "l1"),
		trace.Release(1, "l1"), // 16: r1 on A (task1)
		trace.End(1, "task1"),
		trace.Begin(2, "task2"),
		trace.Acquire(2, "l1"), // 19: a1 on B — r1 ≼mt a1
		trace.Acquire(2, "l2"),
		trace.Release(2, "l2"), // 21: r2 on B (task2)
		trace.End(2, "task2"),
		trace.Begin(1, "task3"),
		trace.Acquire(1, "l2"), // 24: a2 on A — r2 ≼mt a2
		trace.Acquire(1, "l3"),
		trace.Release(1, "l3"), // 26: r3 on A (task3)
		trace.End(1, "task3"),
		trace.Begin(2, "task4"),
		trace.Acquire(2, "l3"), // 29: a3 on B — r3 ≼mt a3
		trace.End(2, "task4"),
	})
	g := build(t, tr, DefaultConfig())
	// The full chain r1(16) → a1(19) → r2(21) → a2(24) → r3(26) → a3(29)
	// has endpoints on different threads but is not derivable: every
	// composition passes through a blocked same-thread pair.
	if g.HappensBefore(16, 29) {
		t.Error("A-B-A-B chain recorded; transitivity restriction not faithful")
	}
	// Same-thread endpoints across tasks are blocked too — the paper's
	// motivating case.
	if g.HappensBefore(19, 29) || g.HappensBefore(16, 26) {
		t.Error("same-thread cross-task pair recorded through other threads")
	}
	// Two-step prefixes with distinct endpoint threads ARE derivable.
	if !g.HappensBefore(16, 21) {
		t.Error("A→B→B prefix not derivable")
	}
	if !g.HappensBefore(19, 26) {
		t.Error("B→A→A segment not derivable")
	}
	// Under the naive combination the whole chain is recorded.
	cfg := DefaultConfig()
	cfg.Naive = true
	gn := build(t, tr, cfg)
	if !gn.HappensBefore(16, 29) {
		t.Error("naive combination should record the full chain")
	}
}

func TestHappensBeforeWithinMergedNode(t *testing.T) {
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.Read(1, "x"),
		trace.Write(1, "y"),
		trace.Read(1, "z"),
	})
	g := build(t, tr, DefaultConfig())
	if g.NodeCount() != 2 {
		t.Fatalf("NodeCount = %d, want 2 (threadinit + merged block)", g.NodeCount())
	}
	if !g.HappensBefore(1, 3) || g.HappensBefore(3, 1) {
		t.Error("program order within merged node wrong")
	}
	if !g.OrderedLE(1, 1) || g.HappensBefore(1, 1) {
		t.Error("reflexivity handling wrong")
	}
}

func TestMergingAcrossTaskBoundariesForbidden(t *testing.T) {
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.LoopOnQ(1),
		trace.ThreadInit(2),
		trace.Post(2, "a", 1),
		trace.Post(2, "b", 1),
		trace.Begin(1, "a"),
		trace.Write(1, "x"),
		trace.End(1, "a"),
		trace.Begin(1, "b"),
		trace.Write(1, "x"),
		trace.End(1, "b"),
	})
	g := build(t, tr, DefaultConfig())
	if g.NodeOf(7) == g.NodeOf(10) {
		t.Error("accesses in different tasks merged into one node")
	}
}

func TestMergingInterleavedThreads(t *testing.T) {
	// Accesses on t1 stay contiguous on their thread even when t2's
	// operations interleave in the trace.
	tr := trace.FromOps([]trace.Op{
		trace.ThreadInit(1),
		trace.ThreadInit(2),
		trace.Read(1, "a"),
		trace.Write(2, "b"),
		trace.Read(1, "c"),
	})
	g := build(t, tr, DefaultConfig())
	if g.NodeOf(2) != g.NodeOf(4) {
		t.Error("thread-contiguous accesses not merged across interleaving")
	}
	if g.NodeOf(2) == g.NodeOf(3) {
		t.Error("accesses of different threads merged")
	}
}

// raceSet returns the set of unordered conflicting op pairs as a map.
func raceSet(g *Graph, tr *trace.Trace) map[[2]int]bool {
	out := make(map[[2]int]bool)
	for a := 0; a < tr.Len(); a++ {
		if !tr.Op(a).Kind.IsAccess() {
			continue
		}
		for b := a + 1; b < tr.Len(); b++ {
			if !tr.Op(b).Kind.IsAccess() || !tr.Op(a).Conflicts(tr.Op(b)) {
				continue
			}
			if !g.HappensBefore(a, b) && !g.HappensBefore(b, a) {
				out[[2]int{a, b}] = true
			}
		}
	}
	return out
}

// TestQuickMergingPreservesDetection is the paper's claim that node
// merging loses no precision: merged and unmerged graphs produce the same
// races on random valid traces.
func TestQuickMergingPreservesDetection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := semantics.RandomTrace(rng, semantics.DefaultGenConfig())
		info, err := trace.Analyze(tr)
		if err != nil {
			return false
		}
		merged := Build(info, DefaultConfig())
		cfg := DefaultConfig()
		cfg.MergeAccesses = false
		unmerged := Build(info, cfg)
		ra, rb := raceSet(merged, tr), raceSet(unmerged, tr)
		if len(ra) != len(rb) {
			t.Logf("seed %d: merged %d races, unmerged %d", seed, len(ra), len(rb))
			return false
		}
		for k := range ra {
			if !rb[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStrictPartialOrder checks that ≼ restricted to distinct ops is
// irreflexive, antisymmetric and transitive on random valid traces.
func TestQuickStrictPartialOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := semantics.DefaultGenConfig()
		cfg.MaxOps = 60
		tr := semantics.RandomTrace(rng, cfg)
		info, err := trace.Analyze(tr)
		if err != nil {
			return false
		}
		g := Build(info, DefaultConfig())
		n := tr.Len()
		for a := 0; a < n; a++ {
			if g.HappensBefore(a, a) {
				t.Logf("seed %d: reflexive at %d", seed, a)
				return false
			}
			for b := 0; b < n; b++ {
				if a != b && g.HappensBefore(a, b) && g.HappensBefore(b, a) {
					t.Logf("seed %d: symmetric pair (%d,%d)", seed, a, b)
					return false
				}
			}
		}
		// Transitivity of the combined relation restricted as the rules
		// demand is built in; check the recorded relation is closed under
		// the unrestricted-when-derivable forms: st∘st ⊆ ≼ and the
		// different-thread composition ⊆ ≼.
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if !g.HappensBefore(a, b) {
					continue
				}
				for c := 0; c < n; c++ {
					if !g.HappensBefore(b, c) {
						continue
					}
					tA := tr.Op(a).Thread
					tC := tr.Op(c).Thread
					if tA != tC && !g.HappensBefore(a, c) {
						t.Logf("seed %d: TRANS-MT not closed at (%d,%d,%d)", seed, a, b, c)
						return false
					}
					if g.STHas(a, b) && g.STHas(b, c) && !g.STHas(a, c) {
						t.Logf("seed %d: TRANS-ST not closed at (%d,%d,%d)", seed, a, b, c)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHBRespectsTraceOrder checks that ≼ never orders a later
// operation before an earlier one on valid traces (edges point forward).
func TestQuickHBRespectsTraceOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := semantics.RandomTrace(rng, semantics.DefaultGenConfig())
		info, err := trace.Analyze(tr)
		if err != nil {
			return false
		}
		g := Build(info, DefaultConfig())
		if g.Skipped() != 0 {
			t.Logf("seed %d: %d backward rule instances on a valid trace", seed, g.Skipped())
			return false
		}
		for a := 0; a < tr.Len(); a++ {
			for b := 0; b < a; b++ {
				if g.HappensBefore(a, b) {
					t.Logf("seed %d: %d ≼ %d against trace order", seed, a, b)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFIFOSameDestination checks the FIFO property end-to-end: plain
// posts from one thread to one destination always order their tasks.
func TestQuickFIFOSameDestination(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := semantics.DefaultGenConfig()
		cfg.PDelayed, cfg.PFront = 0, 0
		tr := semantics.RandomTrace(rng, cfg)
		info, err := trace.Analyze(tr)
		if err != nil {
			return false
		}
		g := Build(info, DefaultConfig())
		ops := tr.Ops()
		for a := 0; a < len(ops); a++ {
			if ops[a].Kind != trace.OpPost {
				continue
			}
			for b := a + 1; b < len(ops); b++ {
				if ops[b].Kind != trace.OpPost ||
					ops[b].Thread != ops[a].Thread || ops[b].Other != ops[a].Other {
					continue
				}
				e1, b2 := info.EndIdx(ops[a].Task), info.BeginIdx(ops[b].Task)
				if e1 < 0 || b2 < 0 {
					continue
				}
				// Same-thread posts are PO-ordered when outside the loop
				// region or in the same task; either way if ≼ holds between
				// the posts, FIFO must order the tasks.
				if g.OrderedLE(a, b) && !g.STHas(e1, b2) {
					t.Logf("seed %d: FIFO violated for posts %d,%d", seed, a, b)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphAccessors(t *testing.T) {
	g := build(t, paper.Figure3(), DefaultConfig())
	if g.Info() == nil {
		t.Error("Info nil")
	}
	if g.NodeCount() <= 0 || g.NodeCount() > paper.Figure3().Len() {
		t.Errorf("NodeCount = %d out of range", g.NodeCount())
	}
	if g.EdgeCount() <= 0 {
		t.Error("EdgeCount = 0")
	}
	if g.Skipped() != 0 {
		t.Errorf("Skipped = %d on a valid trace", g.Skipped())
	}
}

func TestWholeThreadPOHidesSingleThreadedRaces(t *testing.T) {
	g := build(t, paper.Figure4(), Config{MergeAccesses: true, WholeThreadPO: true, EnableEdges: true})
	// With whole-thread program order, ops 16 and 21 (same thread) become
	// ordered: the single-threaded race disappears (false negative).
	if !g.HappensBefore(i(16), i(21)) {
		t.Error("whole-thread PO did not order same-thread ops")
	}
}
