// Package server is the network ingestion and admission layer of the
// resilient analysis service: an HTTP surface that accepts execution
// traces, derives a content-hash idempotency key per submission, and
// feeds the supervised job pool — while shedding load it cannot absorb
// with honest Retry-After hints instead of queueing without bound.
//
// The deployment shape follows the paper's §5 architecture: the Race
// Detector runs as a separate offline phase fed by generated traces, so
// many producers (device farms, CI fleets) push traces to one analysis
// service that must stay up, refuse what it cannot take, and never lose
// work it acknowledged.
//
// Admission control layers, in order: a drain check (a daemon that got
// SIGTERM stops accepting immediately), a global in-flight cap, a
// per-client token bucket, a body-size bound, idempotent replay
// (duplicates of completed work answer from the journal; duplicates of
// queued or in-flight work coalesce), a per-input circuit-breaker check,
// and finally the pool's own bounded queue. An accepted trace is durably
// spooled — file fsync'd, then its directory — before the 202 goes out,
// which is what makes the acceptance a promise: a SIGKILL after the
// response loses nothing, because the next incarnation sweeps the spool.
//
// Poison inputs (deterministic failures after retries: parse errors,
// isolated panics) are dead-lettered by the pool's quarantine; the
// server answers their duplicates with 422 from the dead-letter record
// so clients stop resubmitting work that will never succeed.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"droidracer/internal/budget"
	"droidracer/internal/core"
	"droidracer/internal/faultinject"
	"droidracer/internal/jobs"
	"droidracer/internal/journal"
	"droidracer/internal/obs"
	"droidracer/internal/report"
	"droidracer/internal/sentinel"
	"droidracer/internal/storage"
)

// Submission status values (the "status" field of SubmitResponse).
const (
	StatusAccepted    = "accepted"
	StatusPending     = "pending"
	StatusDone        = "done"
	StatusQuarantined = "quarantined"
	StatusRejected    = "rejected"
)

// SubmitResponse is the JSON body of every /v1/jobs response, shared
// with the retrying client.
type SubmitResponse struct {
	// Job is the content-derived job ID (the idempotency key).
	Job string `json:"job,omitempty"`
	// Status is one of the Status* values.
	Status string `json:"status"`
	// Coalesced marks a duplicate answered from queued/in-flight work.
	Coalesced bool `json:"coalesced,omitempty"`
	// Mode, Races, and Digest replay the journal record of completed
	// work: analysis mode (full/degraded), race count, and the stable
	// race-set fingerprint (jobs.ResultDigest).
	Mode   string `json:"mode,omitempty"`
	Races  int    `json:"races,omitempty"`
	Digest string `json:"digest,omitempty"`
	// Reason explains a rejection or quarantine.
	Reason string `json:"reason,omitempty"`
	// RetryAfterSeconds mirrors the Retry-After header on 429/503.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
	// Cached marks a replay served from the gateway's result cache
	// without touching any backend.
	Cached bool `json:"cached,omitempty"`
	// TraceID is the distributed trace under which this job was (or is
	// being) analyzed. Replays — from the index, the journal, or the
	// gateway's result cache — report the original analyzing trace, not
	// the replaying request's, so a cached answer still points at the
	// spans that did the work.
	TraceID string `json:"trace_id,omitempty"`
	// Estimate carries the admission cost estimate on 413 cost-exceeded
	// rejections: the client learns which trace shape put it over the
	// ceiling.
	Estimate *sentinel.Estimate `json:"estimate,omitempty"`
}

// ReconcileRequest is the body of POST /v1/reconcile: the gateway's
// in-doubt reclamation handshake. Reclaim lists idempotency keys whose
// submissions were forwarded to this backend but never acknowledged —
// the gateway failed them over to another ring peer, so a spooled orphan
// here must not be analyzed into a duplicate fleet record.
type ReconcileRequest struct {
	Reclaim []string `json:"reclaim,omitempty"`
}

// ReconcileResponse reports how many orphaned spool files the handshake
// removed.
type ReconcileResponse struct {
	Reclaimed int `json:"reclaimed"`
}

// Config configures the ingestion server.
type Config struct {
	// Pool executes accepted jobs. Required.
	Pool *jobs.Pool
	// Spool is the directory accepted trace bodies are durably written
	// to; the daemon's restart sweep re-ingests unfinished ones from
	// here. Required.
	Spool string
	// Analyze is the base analysis configuration for accepted jobs; a
	// request's X-Analysis-Deadline can only tighten its wall budget.
	Analyze core.Options
	// Workers is the pool's worker count, used to derive Retry-After
	// from queue depth (default 1).
	Workers int
	// MaxBody bounds the request body in bytes (default 8 MiB).
	MaxBody int64
	// MaxInflight caps concurrently admitted submissions (default 64).
	MaxInflight int
	// Rate and Burst configure the per-client token bucket (default 10
	// tokens/s, burst 20).
	Rate  float64
	Burst int
	// MaxDeadline caps the per-request X-Analysis-Deadline (default 2m).
	MaxDeadline time.Duration
	// DrainRetryAfter is the Retry-After hint while shutting down
	// (default 10s) — roughly when a replacement should be serving.
	DrainRetryAfter time.Duration
	// BreakerRetryAfter is the Retry-After hint for breaker-open inputs
	// (default 60s): the breaker never re-closes within one incarnation,
	// so this is the restart horizon, not a backoff.
	BreakerRetryAfter time.Duration
	// MaxRetryAfter caps the queue-derived Retry-After estimate (EWMA
	// service time × queue depth ÷ workers), default 5m. One pathological
	// job polluting the EWMA must not tell every client to go away for
	// the full estimate.
	MaxRetryAfter time.Duration
	// SweepGrace holds the restart spool sweep until either the gateway's
	// reconcile handshake (POST /v1/reconcile) arrives or the grace
	// elapses. Zero (the default) sweeps immediately — the standalone
	// daemon behavior. Fleet backends run with a grace so in-doubt
	// orphans the gateway failed over elsewhere are reclaimed before the
	// sweep can analyze them into duplicate records.
	SweepGrace time.Duration
	// Completed seeds the idempotency index with journal records
	// recovered at startup (jobs.CompletedRecords).
	Completed map[string]jobs.JobEntry
	// Quarantined seeds the dead-letter index (jobs.QuarantinedJobs).
	Quarantined map[string]string
	// Events, when set, receives request.accept / request.reject /
	// server.drain lifecycle events.
	Events *slog.Logger
	// StorageErr, when set, reports the persistence stack's health —
	// typically the journal writer's poison state (journal.Writer.Err).
	// A non-nil return means completed work can no longer be durably
	// recorded: /readyz answers 503 "storage" and submissions are
	// refused 503 storage-degraded while in-flight work finishes in
	// memory. The condition is sticky for the life of the process
	// (fsyncgate semantics); recovery is a restart.
	StorageErr func() error
	// StorageRetryAfter is the Retry-After hint on storage-degraded
	// refusals (default 30s): long enough for an operator or supervisor
	// to restart the backend, short enough that clients re-probe a
	// recovered one.
	StorageRetryAfter time.Duration
	// Sentinel, when set, reports the daemon's memory-brownout state:
	// while browned out, heavy submissions are refused 503
	// resource-degraded (Retry-After sourced from the sentinel's
	// recovery signal), non-heavy ones degrade to the pure-MT baseline,
	// and /readyz answers 503 "resource" so gateway probers route
	// around this backend until it recovers. Nil disables.
	Sentinel *sentinel.Sentinel
	// Cost are the admission cost ceilings over the per-submission
	// estimate (sentinel.EstimateBytes): above Hard, refuse 413
	// cost-exceeded; above Soft, flag heavy. The zero value disables
	// cost governance (but not the size-directive validation, which is
	// free).
	Cost sentinel.CostLimits
	// Isolator, when set, runs heavy submissions in a sandboxed worker
	// subprocess (rlimit + watchdog) instead of on the daemon's heap.
	// Nil analyzes heavy work in-process like any other.
	Isolator jobs.Runner
}

// jobState is one entry of the idempotency index.
type jobState struct {
	status  string // StatusPending, StatusDone, StatusQuarantined
	entry   jobs.JobEntry
	reason  string
	traceID string // the analyzing trace (entry.TraceID once done)
}

// Server is the HTTP ingestion and admission layer over a job pool.
type Server struct {
	cfg        Config
	mux        *http.ServeMux
	draining   atomic.Bool
	reconciled atomic.Bool
	// spoolFailing remembers that the last spool write failed. Unlike a
	// poisoned journal it is recoverable in-process: a full disk gets
	// space freed. While set, /readyz answers 503 "storage" but probes
	// the spool with a tiny durable write, and submissions still attempt
	// their spool write — either success clears the flag.
	spoolFailing atomic.Bool
	boot         time.Time
	sem          chan struct{}
	buckets      *buckets
	est          *estimator
	keys         KeyedMutex

	mu    sync.Mutex
	state map[string]*jobState
}

// New builds a server over cfg, seeding the idempotency index from the
// recovered journal records. Wire JobFinished as the pool's OnFinish
// hook so completions (and quarantines) update the index.
func New(cfg Config) *Server {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 8 << 20
	}
	if cfg.MaxInflight < 1 {
		cfg.MaxInflight = 64
	}
	if cfg.MaxDeadline <= 0 {
		cfg.MaxDeadline = 2 * time.Minute
	}
	if cfg.DrainRetryAfter <= 0 {
		cfg.DrainRetryAfter = 10 * time.Second
	}
	if cfg.BreakerRetryAfter <= 0 {
		cfg.BreakerRetryAfter = time.Minute
	}
	if cfg.MaxRetryAfter <= 0 {
		cfg.MaxRetryAfter = 5 * time.Minute
	}
	if cfg.StorageRetryAfter <= 0 {
		cfg.StorageRetryAfter = 30 * time.Second
	}
	if cfg.Events == nil {
		cfg.Events = obs.Nop()
	}
	s := &Server{
		cfg:     cfg,
		boot:    time.Now(),
		sem:     make(chan struct{}, cfg.MaxInflight),
		buckets: newBuckets(cfg.Rate, cfg.Burst),
		est:     &estimator{},
		state:   make(map[string]*jobState),
	}
	for name, je := range cfg.Completed {
		s.state[name] = &jobState{status: StatusDone, entry: je}
	}
	for name, reason := range cfg.Quarantined {
		s.state[name] = &jobState{status: StatusQuarantined, reason: reason}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.instrument(s.handleSubmit))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.instrument(s.handleStatus))
	s.mux.HandleFunc("POST /v1/reconcile", s.instrument(s.handleReconcile))
	s.mux.HandleFunc("GET /healthz", s.instrument(s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.instrument(s.handleReadyz))
	return s
}

// Handler returns the ingestion mux (a private mux, so embedding it in a
// larger server never inherits unexpected routes).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve binds addr and serves the ingestion API in the background,
// returning the http.Server (for Close on shutdown) and the bound
// address (useful with ":0"). A bind failure is returned synchronously.
func (s *Server) Serve(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: s.mux}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// BeginDrain flips readiness off: /readyz answers 503 and new
// submissions are refused with shutting-down from this moment — before
// Pool.Shutdown starts draining in-flight work — so load balancers stop
// routing while the daemon finishes what it already accepted.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.cfg.Events.Info("server.drain")
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// IdempotencyKey derives the content-hash job ID for a trace body. The
// client sends it as the Idempotency-Key header; the server recomputes
// it from the bytes it received, so a body corrupted in transit is
// refused (400) instead of being analyzed under the wrong identity. It
// is storage.Key: the same commitment the spool verifies on every read
// back, making the integrity check end to end — wire to disk to
// re-analysis.
func IdempotencyKey(body []byte) string {
	return storage.Key(body)
}

// storageErr reports the sticky persistence-stack failure, if any.
func (s *Server) storageErr() error {
	if s.cfg.StorageErr == nil {
		return nil
	}
	return s.cfg.StorageErr()
}

// jobName maps a job ID to its spool file name.
func jobName(id string) string { return id + ".trace" }

// Claim marks name as submitted this incarnation, returning false when
// it is already known (accepted over HTTP, swept earlier, completed, or
// quarantined). The daemon's spool sweep shares the idempotency index
// through it so HTTP-accepted files are not double-submitted. It takes
// the per-key admission lock: a concurrent handleSubmit durably spools
// the body before registering it in the index, and a sweep that lists
// the spool directory inside that window must not submit the file a
// second time.
func (s *Server) Claim(name string) bool {
	defer s.keys.Lock(name).Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.state[name]; ok {
		return false
	}
	s.state[name] = &jobState{status: StatusPending}
	return true
}

// Release drops a pending claim (a swept submission the pool shed), so
// the next sweep retries it.
func (s *Server) Release(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.state[name]; ok && st.status == StatusPending {
		delete(s.state, name)
	}
}

// JobFinished is the pool OnFinish hook: it moves the idempotency index
// entry for the finished job to its terminal state, so duplicates are
// answered from memory in this incarnation and from the journal in the
// next.
func (s *Server) JobFinished(out report.Outcome) {
	name := out.Name
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case out.JobState == report.JobQuarantined:
		reason := ""
		if out.Err != nil {
			reason = out.Err.Error()
		}
		s.state[name] = &jobState{status: StatusQuarantined, reason: reason, traceID: out.TraceID}
	case out.JobState == report.JobDrained:
		// Checkpointed for the next incarnation: still pending.
	case out.JobState != "":
		// Shed or queued placeholders never reach finish; ignore.
	default:
		mode := jobs.OutcomeMode(out)
		if mode == "full" || mode == "degraded" {
			je := jobs.JobEntry{Name: name, Mode: mode, Attempts: out.Attempts, TraceID: out.TraceID}
			if out.Result != nil {
				je.Races = len(out.Result.Races)
				je.Digest = jobs.ResultDigest(out.Result)
			}
			s.state[name] = &jobState{status: StatusDone, entry: je}
			return
		}
		// Transient failure (budget exhaustion, shutdown cancellation):
		// drop the claim so a resubmission — or the next sweep — retries.
		delete(s.state, name)
	}
}

// lookup answers a duplicate submission from the idempotency index.
func (s *Server) lookup(name string) (*SubmitResponse, int, bool) {
	s.mu.Lock()
	st, ok := s.state[name]
	s.mu.Unlock()
	if !ok {
		return nil, 0, false
	}
	id := strings.TrimSuffix(name, ".trace")
	switch st.status {
	case StatusDone:
		return &SubmitResponse{
			Job: id, Status: StatusDone,
			Mode: st.entry.Mode, Races: st.entry.Races, Digest: st.entry.Digest,
			TraceID: st.entry.TraceID,
		}, http.StatusOK, true
	case StatusQuarantined:
		return &SubmitResponse{Job: id, Status: StatusQuarantined, Reason: st.reason, TraceID: st.traceID},
			http.StatusUnprocessableEntity, true
	default:
		return &SubmitResponse{Job: id, Status: StatusPending, Coalesced: true, TraceID: st.traceID},
			http.StatusAccepted, true
	}
}

// codeWriter captures the response status for metrics.
type codeWriter struct {
	http.ResponseWriter
	code int
}

func (w *codeWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the request metrics: per-code counts,
// a latency histogram, and the in-flight gauge.
func (s *Server) instrument(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inflightGauge.Inc()
		cw := &codeWriter{ResponseWriter: w, code: http.StatusOK}
		h(cw, r)
		inflightGauge.Dec()
		countCode(strconv.Itoa(cw.code))
		requestDur.ObserveDuration(time.Since(start))
	}
}

// respond writes a SubmitResponse as JSON, mirroring RetryAfterSeconds
// into the Retry-After header.
func respond(w http.ResponseWriter, code int, resp *SubmitResponse) {
	w.Header().Set("Content-Type", "application/json")
	if resp.RetryAfterSeconds > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(resp.RetryAfterSeconds))
		retryAfterHist.Observe(float64(resp.RetryAfterSeconds))
	}
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(resp)
}

// reject refuses a submission: metrics, event, and the structured
// rejection body with its Retry-After hint (0 = no hint: the client
// should fix the request, not retry it).
func (s *Server) reject(w http.ResponseWriter, code int, reason string, retryAfter time.Duration) {
	if c, ok := rejectsTotal[reason]; ok {
		c.Inc()
	}
	resp := &SubmitResponse{Status: StatusRejected, Reason: reason}
	if retryAfter > 0 {
		secs := int(retryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		resp.RetryAfterSeconds = secs
	}
	s.cfg.Events.Info("request.reject", "reason", reason, "code", code,
		"retry_after_s", resp.RetryAfterSeconds)
	respond(w, code, resp)
}

// clientID identifies the rate-limit principal: the X-Client-ID header
// when present, else the remote host.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// DeadlineHeader carries the per-request analysis wall budget (a Go
// duration). It can only tighten the server's configured budget, and is
// capped by Config.MaxDeadline.
const DeadlineHeader = "X-Analysis-Deadline"

// EngineHeader selects the analysis backend for one submission
// ("graph" or "stream"); absent, the server's configured engine runs.
// The choice also selects the admission cost model — see admitCost.
const EngineHeader = "X-Analysis-Engine"

// requestOptions derives the analysis options for one submission from
// the base options and the deadline and engine headers.
func (s *Server) requestOptions(r *http.Request) (core.Options, error) {
	opts := s.cfg.Analyze
	req := time.Duration(0)
	if h := r.Header.Get(DeadlineHeader); h != "" {
		d, err := time.ParseDuration(h)
		if err != nil || d <= 0 {
			return opts, fmt.Errorf("bad %s %q", DeadlineHeader, h)
		}
		req = d
	}
	if req > s.cfg.MaxDeadline {
		req = s.cfg.MaxDeadline
	}
	if req > 0 && (opts.Budget.Wall == 0 || req < opts.Budget.Wall) {
		opts.Budget.Wall = req
	}
	if h := r.Header.Get(EngineHeader); h != "" {
		eng, err := core.NormalizeEngine(h)
		if err != nil {
			return opts, fmt.Errorf("bad %s: %w", EngineHeader, err)
		}
		opts.Engine = eng
	}
	return opts, nil
}

// handleSubmit is POST /v1/jobs: the trace shell around the admission
// pipeline. Every submission runs under a "server.submit" span — under
// the client's traceparent when it sent one (sampled: the trace will be
// kept), under a fresh unsampled trace otherwise (kept only if the job
// turns out slow, failed, or quarantined; see jobs.Config.TraceSlow).
// When the job is handed to the pool the recorder travels with it and
// the pool makes the commit decision at finish; otherwise (reject,
// replay) the request is the whole trace and the decision happens here.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	sc, sampled := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
	traceID := sc.TraceID
	if !sampled {
		traceID = obs.NewTraceID()
	}
	rec := obs.Traces().Begin(traceID, sampled)
	sp := rec.StartSpan("server.submit", sc.SpanID)
	cw := &codeWriter{ResponseWriter: w, code: http.StatusOK}
	handed := s.admitSubmit(cw, r, rec, sp)
	sp.SetAttr("http_status", strconv.Itoa(cw.code))
	sp.End()
	if !handed {
		rec.Commit(false)
	}
}

// admitSubmit is the admission pipeline proper. It reports whether the
// trace recorder was handed to the pool (accepted work: the job commits
// the trace when it finishes).
func (s *Server) admitSubmit(w http.ResponseWriter, r *http.Request, rec *obs.TraceRec, sp *obs.TSpan) bool {
	if s.draining.Load() {
		s.reject(w, http.StatusServiceUnavailable, RejectShuttingDown, s.cfg.DrainRetryAfter)
		return false
	}
	if err := s.storageErr(); err != nil {
		// The journal can no longer record completions durably, so a
		// 202 here would promise durability the backend cannot deliver.
		// In-flight work still finishes in memory and /v1/jobs/{id}
		// still answers; only new acceptances stop.
		s.reject(w, http.StatusServiceUnavailable, RejectStorageDegraded,
			clampRetry(s.cfg.StorageRetryAfter, s.cfg.MaxRetryAfter))
		return false
	}
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.reject(w, http.StatusTooManyRequests, RejectInflight, time.Second)
		return false
	}
	if wait, ok := s.buckets.take(clientID(r)); !ok {
		s.reject(w, http.StatusTooManyRequests, RejectRateLimited, wait)
		return false
	}
	body, err := readBody(w, r, s.cfg.MaxBody)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.reject(w, http.StatusRequestEntityTooLarge, RejectBodyTooLarge, 0)
		} else {
			s.reject(w, http.StatusBadRequest, RejectEmptyBody, 0)
		}
		return false
	}
	id := IdempotencyKey(body)
	sp.SetAttr("job", id)
	if key := r.Header.Get("Idempotency-Key"); key != "" && key != id {
		// The client hashed different bytes than we received: transit
		// corruption. Refusing (instead of analyzing under our hash)
		// lets the retrying client resubmit the intact body.
		s.reject(w, http.StatusBadRequest, RejectKeyMismatch, 0)
		return false
	}
	name := jobName(id)

	// Fast path: duplicates answered from the index without touching
	// the spool.
	if resp, code, ok := s.lookup(name); ok {
		s.countReplay(resp)
		respond(w, code, resp)
		return false
	}

	// Admission critical section per idempotency key: two concurrent
	// submissions of the same body must not both spool and submit.
	defer s.keys.Lock(name).Unlock()
	if resp, code, ok := s.lookup(name); ok {
		s.countReplay(resp)
		respond(w, code, resp)
		return false
	}

	path := filepath.Join(s.cfg.Spool, name)
	if _, open := s.cfg.Pool.BreakerOpen(path); open {
		// The breaker never re-closes within one incarnation: full-
		// fidelity service for this input is gone until a restart, so
		// refuse instead of burning a worker on the degraded fallback.
		s.reject(w, http.StatusServiceUnavailable, RejectBreakerOpen, s.cfg.BreakerRetryAfter)
		return false
	}
	opts, err := s.requestOptions(r)
	if err != nil {
		s.reject(w, http.StatusBadRequest, RejectEmptyBody, 0)
		return false
	}

	// Resource governance: a cheap line scan predicts the analysis
	// footprint before the body costs anything durable. The scan also
	// validates any declared-size directive — a count the bytes cannot
	// back is refused here, before the parser would have trusted it into
	// an allocation.
	est, heavy, ok := s.admitCost(w, sp, body, opts.Engine)
	if !ok {
		return false
	}

	// Durability point: body fsync'd, then the spool directory. Only
	// after this may the job be acknowledged — a crash later never loses
	// it, because the restart sweep re-ingests the spool.
	if err := writeDurable(path, body); err != nil {
		// The body is not durable, so 202 is a lie the restart sweep
		// cannot make true. Refuse honestly and mark the spool degraded;
		// /readyz flips to 503 "storage" so the gateway routes around
		// this backend until a probe (or a later submission's write)
		// proves the spool recovered.
		if s.spoolFailing.CompareAndSwap(false, true) {
			s.cfg.Events.Error("server.storage-degraded", "op", "spool.write", "err", err.Error())
		}
		s.cfg.Events.Warn("request.spool-failed", "job", id, "err", err.Error())
		s.reject(w, http.StatusServiceUnavailable, RejectStorageDegraded,
			clampRetry(s.cfg.StorageRetryAfter, s.cfg.MaxRetryAfter))
		return false
	}
	if s.spoolFailing.CompareAndSwap(true, false) {
		s.cfg.Events.Info("server.storage-recovered", "op", "spool.write")
	}
	// Kill-point: process death after the trace is durable but before
	// the pool accepted it or the client heard 202 — the window the
	// restart sweep and client retry must converge over.
	faultinject.Crash("server.accept")

	job := s.buildJob(name, path, opts, est, heavy)
	// The admission span ends at the hand-off: the recorder travels with
	// the job, whose queue-wait and analysis spans hang under it, and the
	// pool commits (or discards) the whole trace when the job finishes.
	sp.End()
	job.Trace = rec
	job.TraceParent = sp.ID()

	s.mu.Lock()
	s.state[name] = &jobState{status: StatusPending, traceID: rec.TraceID()}
	s.mu.Unlock()
	if err := s.cfg.Pool.Submit(job); err != nil {
		s.Release(name)
		os.Remove(path) // not accepted; admission control must not leak spool growth
		var rej *jobs.RejectionError
		if errors.As(err, &rej) && rej.Reason == jobs.ReasonShuttingDown {
			s.reject(w, http.StatusServiceUnavailable, RejectShuttingDown, s.cfg.DrainRetryAfter)
			return false
		}
		retry := s.est.queueWait(queueDepth(err), s.cfg.Workers, s.cfg.MaxRetryAfter)
		s.reject(w, http.StatusTooManyRequests, RejectQueueFull, retry)
		return false
	}
	s.cfg.Events.Info("request.accept", "job", id, "bytes", len(body), "trace_id", rec.TraceID())
	respond(w, http.StatusAccepted, &SubmitResponse{Job: id, Status: StatusAccepted, TraceID: rec.TraceID()})
	return true
}

// governed reports whether resource governance is configured at all.
func (s *Server) governed() bool {
	return s.cfg.Cost.Enabled() || s.cfg.Sentinel != nil
}

// admitCost is the resource-governance stage of admission: estimate the
// analysis footprint from the body's shape under the engine that will
// run it, refuse what no ceiling allows, and — during brownout — refuse
// heavy work with an honest recovery hint. Reports (estimate, heavy,
// admitted). The engine matters: a trace shaped to maximize the graph
// closure (the alternating-thread bomb) costs O(nodes²) there but only
// O(ops) under the streaming engine, so the same body can be a 413 for
// one engine and normal work for the other.
func (s *Server) admitCost(w http.ResponseWriter, sp *obs.TSpan, body []byte, engine string) (sentinel.Estimate, bool, bool) {
	if !s.governed() {
		return sentinel.Estimate{}, false, true
	}
	est, err := sentinel.EstimateBytes(body)
	if err != nil {
		// A size directive the bytes cannot back: the parse would be
		// refused anyway, so say so now — before the body is spooled.
		s.reject(w, http.StatusUnprocessableEntity, RejectMalformedTrace, 0)
		return est, false, false
	}
	stream := engine == core.EngineStream
	sp.SetAttr("est_bytes", strconv.FormatInt(est.MemBytes, 10))
	sp.SetAttr("est_nodes", strconv.Itoa(est.Nodes))
	if stream {
		sp.SetAttr("est_stream_bytes", strconv.FormatInt(est.StreamBytes, 10))
	}
	class := est.ClassifyEngine(s.cfg.Cost, stream)
	if class == sentinel.ClassRejected {
		if c, ok := rejectsTotal[RejectCostExceeded]; ok {
			c.Inc()
		}
		e := est
		s.cfg.Events.Info("request.reject", "reason", RejectCostExceeded, "code",
			http.StatusRequestEntityTooLarge, "est_bytes", est.MemBytes, "est_nodes", est.Nodes)
		respond(w, http.StatusRequestEntityTooLarge,
			&SubmitResponse{Status: StatusRejected, Reason: RejectCostExceeded, Estimate: &e})
		return est, false, false
	}
	heavy := class == sentinel.ClassHeavy
	if heavy && s.cfg.Sentinel.Brownout() {
		// Browned out: the daemon is fighting for its own heap. Heavy
		// work is refused outright; the hint is the sentinel's expected
		// recovery, not the queue-derived estimate, which knows nothing
		// about memory pressure.
		s.reject(w, http.StatusServiceUnavailable, RejectResourceDegraded, s.brownoutRetryAfter())
		return est, heavy, false
	}
	return est, heavy, true
}

// brownoutRetryAfter sources the resource-degraded hint from the
// sentinel's recovery signal, clamped to [1s, MaxRetryAfter] like every
// other degraded-state hint.
func (s *Server) brownoutRetryAfter() time.Duration {
	hint := s.cfg.Sentinel.RetryAfter()
	if hint <= 0 {
		hint = s.cfg.StorageRetryAfter
	}
	return clampRetry(hint, s.cfg.MaxRetryAfter)
}

// clampRetry bounds a degraded-state Retry-After hint to [1s, max]: a
// sub-second hint invites hammering and an unclamped one (a sentinel
// that has watched one pathological ten-minute brownout) turns clients
// away for longer than a restart would take.
func clampRetry(d, max time.Duration) time.Duration {
	if d < time.Second {
		d = time.Second
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}

// buildJob constructs the pool job for an admitted submission under the
// current resource regime: heavy work runs in the isolation sandbox,
// non-heavy work during brownout degrades to the pure-MT baseline, and
// everything else takes the full in-process pipeline. The wrapper feeds
// the service-time EWMA and — when governance is on — emits a job.cost
// event pairing the admission estimate with the observed allocation.
func (s *Server) buildJob(name, path string, opts core.Options, est sentinel.Estimate, heavy bool) jobs.Job {
	var job jobs.Job
	mode := "full"
	switch {
	case heavy && s.cfg.Isolator != nil:
		job = jobs.IsolatedTraceJob(name, path, opts, s.cfg.Isolator)
		mode = "isolated"
	case !heavy && s.cfg.Sentinel.Brownout():
		job = jobs.BaselineTraceJob(name, path, opts, sentinel.ErrBrownout)
		mode = "baseline"
	default:
		job = jobs.TraceJob(name, path, opts)
	}
	run := job.Run
	governed := s.governed()
	job.Run = func(ctx context.Context, lim budget.Limits) (*core.Result, error) {
		t0 := time.Now()
		var before runtime.MemStats
		if governed {
			runtime.ReadMemStats(&before)
		}
		res, rerr := run(ctx, lim)
		s.est.observe(time.Since(t0))
		if governed {
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			// TotalAlloc delta: this process's allocation churn across the
			// job — the in-process "actual" against the admission estimate
			// (isolated jobs report their child's peak separately in
			// sentinel.isolated events).
			s.cfg.Events.Info("job.cost", "job", strings.TrimSuffix(name, ".trace"),
				"path", mode, "est_bytes", est.MemBytes, "est_nodes", est.Nodes,
				"actual_alloc_bytes", int64(after.TotalAlloc-before.TotalAlloc),
				"elapsed", time.Since(t0).String())
		}
		return res, rerr
	}
	return job
}

// SpoolJob builds the job for a swept spool file under the same
// resource governance as HTTP admission. The file is already durable,
// so nothing is refused here: anything at or above the soft ceiling —
// including what admission would have called cost-exceeded — runs in
// the isolation sandbox, where the worst it can do is die alone. An
// unreadable file falls through to the in-process path, whose
// per-attempt read reports the failure with proper classification.
func (s *Server) SpoolJob(name, path string) jobs.Job {
	opts := s.cfg.Analyze
	var est sentinel.Estimate
	heavy := false
	if s.governed() {
		if body, err := os.ReadFile(path); err == nil {
			if e, eerr := sentinel.EstimateBytes(body); eerr == nil {
				est = e
				heavy = est.ClassifyEngine(s.cfg.Cost, opts.Engine == core.EngineStream) != sentinel.ClassNormal
			}
		}
	}
	return s.buildJob(name, path, opts, est, heavy)
}

// countReplay bumps the idempotent-replay counter for an index answer.
func (s *Server) countReplay(resp *SubmitResponse) {
	source := "pending"
	switch resp.Status {
	case StatusDone:
		source = "journal"
	case StatusQuarantined:
		source = "quarantine"
	}
	if c, ok := replaysTotal[source]; ok {
		c.Inc()
	}
}

// queueDepth extracts the rejected depth from a pool rejection (falling
// back to 1 for unexpected error shapes).
func queueDepth(err error) int {
	var rej *jobs.RejectionError
	if errors.As(err, &rej) {
		return rej.Depth
	}
	return 1
}

// readBody reads at most max bytes, rejecting empty bodies.
func readBody(w http.ResponseWriter, r *http.Request, max int64) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, max))
	if err != nil {
		return nil, err
	}
	if len(strings.TrimSpace(string(body))) == 0 {
		return nil, fmt.Errorf("empty body")
	}
	return body, nil
}

// writeDurable writes body to path via a hidden temp file (the restart
// sweep skips dotfiles), fsyncs it, renames it into place, and fsyncs
// the directory — the full accepted-work durability chain. I/O goes
// through the spool's storage layer so chaos tests can inject disk
// faults (ENOSPC, EIO, short writes, failed renames) at every link of
// the chain; failures are classified into
// droidracer_storage_errors_total before they propagate.
func writeDurable(path string, body []byte) error {
	fsys := faultinject.Storage("spool")
	dir := filepath.Dir(path)
	tmp := filepath.Join(dir, "."+filepath.Base(path)+".tmp")
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o666)
	if err != nil {
		return storage.CountError("spool.write", err)
	}
	if _, err := f.Write(body); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return storage.CountError("spool.write", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return storage.CountError("spool.sync", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return storage.CountError("spool.write", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return storage.CountError("spool.rename", err)
	}
	return journal.SyncDir(dir)
}

// probeSpool attempts a tiny durable write in the spool directory — the
// readiness probe's independent evidence for whether a failing spool
// has recovered (space freed) without waiting for a client to volunteer
// a submission as the probe.
func (s *Server) probeSpool() error {
	fsys := faultinject.Storage("spool")
	tmp := filepath.Join(s.cfg.Spool, ".readyz-probe.tmp")
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o666)
	if err != nil {
		return storage.CountError("spool.write", err)
	}
	_, werr := f.Write([]byte("probe\n"))
	serr := f.Sync()
	f.Close()
	fsys.Remove(tmp)
	if werr != nil {
		return storage.CountError("spool.write", werr)
	}
	return storage.CountError("spool.sync", serr)
}

// handleReconcile is POST /v1/reconcile: the gateway's reinstatement
// handshake. Listed keys whose submissions this backend never got to
// acknowledge (the gateway failed them over to another peer) have their
// spooled orphans deleted, and the restart sweep is released — the fleet
// has told this backend everything it needs to know about its in-doubt
// window.
func (s *Server) handleReconcile(w http.ResponseWriter, r *http.Request) {
	var req ReconcileRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil && err != io.EOF {
		respond(w, http.StatusBadRequest, &SubmitResponse{Status: StatusRejected, Reason: "bad-reconcile-body"})
		return
	}
	reclaimed := 0
	for _, id := range req.Reclaim {
		name := jobName(strings.TrimSuffix(id, ".trace"))
		unlock := s.keys.Lock(name)
		s.mu.Lock()
		_, known := s.state[name]
		s.mu.Unlock()
		// A known key was acknowledged (HTTP accept), already swept, or
		// finished — its record legitimately belongs to this backend, so
		// the conservative reclaim list leaves it alone.
		if known {
			s.cfg.Events.Info("request.reclaim-skipped", "job", strings.TrimSuffix(name, ".trace"))
		} else if err := os.Remove(filepath.Join(s.cfg.Spool, name)); err == nil {
			reclaimed++
			reclaimedTotal.Inc()
			s.cfg.Events.Info("request.reclaim", "job", strings.TrimSuffix(name, ".trace"))
		} else if !os.IsNotExist(err) {
			s.cfg.Events.Warn("request.reclaim-failed", "job", strings.TrimSuffix(name, ".trace"), "err", err.Error())
		}
		unlock.Unlock()
	}
	wasHeld := !s.reconciled.Swap(true)
	if wasHeld && s.cfg.SweepGrace > 0 {
		s.cfg.Events.Info("server.reconciled", "reclaim_listed", len(req.Reclaim), "reclaimed", reclaimed)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(&ReconcileResponse{Reclaimed: reclaimed})
}

// SweepReady reports whether the restart spool sweep may run: always for
// a standalone daemon (no SweepGrace), otherwise only once the gateway's
// reconcile handshake arrived or the grace period expired.
func (s *Server) SweepReady() bool {
	if s.cfg.SweepGrace <= 0 || s.reconciled.Load() {
		return true
	}
	if time.Since(s.boot) >= s.cfg.SweepGrace {
		s.reconciled.Store(true)
		s.cfg.Events.Warn("server.sweep-grace-expired", "grace", s.cfg.SweepGrace.String())
		return true
	}
	return false
}

// handleStatus is GET /v1/jobs/{id}: the index entry for one job.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimSuffix(r.PathValue("id"), ".trace")
	if resp, _, ok := s.lookup(jobName(id)); ok {
		respond(w, http.StatusOK, resp)
		return
	}
	respond(w, http.StatusNotFound, &SubmitResponse{Job: id, Status: "unknown"})
}

// handleHealthz reports liveness: the process is up.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports readiness: false from the moment a drain starts
// (so routing stops before in-flight work finishes) and false with
// reason "storage" while the persistence stack is degraded — a poisoned
// journal (sticky until restart) or a failing spool (re-probed here
// with a tiny durable write, so readiness returns by itself once space
// does).
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	if err := s.storageErr(); err != nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "storage")
		return
	}
	if s.spoolFailing.Load() {
		if err := s.probeSpool(); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "storage")
			return
		}
		if s.spoolFailing.CompareAndSwap(true, false) {
			s.cfg.Events.Info("server.storage-recovered", "op", "spool.probe")
		}
	}
	if s.cfg.Sentinel.Brownout() {
		// Memory brownout: still alive (healthz answers 200, in-flight
		// work finishes degraded) but new routing should go elsewhere
		// until the heap recedes below the recovery level.
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "resource")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}
