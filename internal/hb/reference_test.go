package hb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"droidracer/internal/semantics"
	"droidracer/internal/trace"
)

// referenceHB is a deliberately naive, rule-by-rule fixpoint over
// operation pairs — no bitsets, no node merging, no pass ordering. It
// exists purely as a correctness anchor for the optimized engine: both
// must compute the same relation on every valid trace.
type referenceHB struct {
	tr   *trace.Trace
	info *trace.Info
	st   map[[2]int]bool
	mt   map[[2]int]bool
}

func newReferenceHB(t *testing.T, tr *trace.Trace) *referenceHB {
	t.Helper()
	info, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	r := &referenceHB{tr: tr, info: info, st: map[[2]int]bool{}, mt: map[[2]int]bool{}}
	r.fixpoint()
	return r
}

func (r *referenceHB) le(i, j int) bool { return i == j || r.st[[2]int{i, j}] || r.mt[[2]int{i, j}] }

func (r *referenceHB) addST(i, j int) bool {
	if i == j || r.st[[2]int{i, j}] {
		return false
	}
	r.st[[2]int{i, j}] = true
	return true
}

func (r *referenceHB) addMT(i, j int) bool {
	if i == j || r.mt[[2]int{i, j}] {
		return false
	}
	r.mt[[2]int{i, j}] = true
	return true
}

// fixpoint applies every Figure 6/7 rule to all operation pairs until
// nothing changes.
func (r *referenceHB) fixpoint() {
	ops := r.tr.Ops()
	n := len(ops)
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.applyPair(i, j) {
					changed = true
				}
			}
		}
		// Transitivity.
		for i := 0; i < n; i++ {
			for k := 0; k < n; k++ {
				if k == i {
					continue
				}
				for j := 0; j < n; j++ {
					if j == i || j == k {
						continue
					}
					if r.st[[2]int{i, k}] && r.st[[2]int{k, j}] && r.addST(i, j) {
						changed = true
					}
					if r.le(i, k) && r.le(k, j) && ops[i].Thread != ops[j].Thread &&
						!r.mt[[2]int{i, j}] && i != j {
						// TRANS-MT composes recorded ≼ pairs only.
						if (r.st[[2]int{i, k}] || r.mt[[2]int{i, k}]) &&
							(r.st[[2]int{k, j}] || r.mt[[2]int{k, j}]) {
							if r.addMT(i, j) {
								changed = true
							}
						}
					}
				}
			}
		}
	}
}

// applyPair applies the non-transitive rules to the ordered pair (i, j).
func (r *referenceHB) applyPair(i, j int) bool {
	ops := r.tr.Ops()
	a, b := ops[i], ops[j]
	info := r.info
	changed := false
	same := a.Thread == b.Thread

	if same {
		loop := info.LoopIdx(a.Thread)
		if loop < 0 || i <= loop { // NO-Q-PO
			changed = r.addST(i, j) || changed
		} else if ta := info.Task(i); ta != "" && ta == info.Task(j) { // ASYNC-PO
			changed = r.addST(i, j) || changed
		}
		// ENABLE-ST / POST-ST
		if a.Kind == trace.OpEnable && b.Kind == trace.OpPost && a.Task == b.Task {
			changed = r.addST(i, j) || changed
		}
		if a.Kind == trace.OpPost && b.Kind == trace.OpBegin && a.Task == b.Task && a.Other == b.Thread {
			changed = r.addST(i, j) || changed
		}
		// FIFO / NOPRE
		if a.Kind == trace.OpEnd && b.Kind == trace.OpBegin {
			qa, qb := info.PostIdx(a.Task), info.PostIdx(b.Task)
			if qa >= 0 && qb >= 0 {
				if fifoCompatible(ops[qa], ops[qb]) && r.le(qa, qb) {
					changed = r.addST(i, j) || changed
				}
				// NOPRE: ∃ αk ∈ task(a) with αk ≼ post(b).
				for k := 0; k < len(ops); k++ {
					if info.Task(k) == a.Task && r.le(k, qb) {
						changed = r.addST(i, j) || changed
						break
					}
				}
			}
		}
	} else {
		if a.Kind == trace.OpEnable && b.Kind == trace.OpPost && a.Task == b.Task {
			changed = r.addMT(i, j) || changed
		}
		if a.Kind == trace.OpPost && b.Kind == trace.OpBegin && a.Task == b.Task && a.Other == b.Thread {
			changed = r.addMT(i, j) || changed
		}
		if a.Kind == trace.OpAttachQ && b.Kind == trace.OpPost && b.Other == a.Thread {
			changed = r.addMT(i, j) || changed
		}
		if a.Kind == trace.OpFork && b.Kind == trace.OpThreadInit && a.Other == b.Thread {
			changed = r.addMT(i, j) || changed
		}
		if a.Kind == trace.OpThreadExit && b.Kind == trace.OpJoin && b.Other == a.Thread {
			changed = r.addMT(i, j) || changed
		}
		if a.Kind == trace.OpRelease && b.Kind == trace.OpAcquire && a.Lock == b.Lock {
			changed = r.addMT(i, j) || changed
		}
	}
	return changed
}

// TestQuickEngineMatchesReference compares the optimized engine against
// the brute-force reference on random valid traces, pair by pair.
func TestQuickEngineMatchesReference(t *testing.T) {
	cfg := semantics.DefaultGenConfig()
	cfg.MaxOps = 45 // the reference is O(n^4); keep traces small
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := semantics.RandomTrace(rng, cfg)
		info, err := trace.Analyze(tr)
		if err != nil {
			return false
		}
		engCfg := DefaultConfig()
		engCfg.MergeAccesses = false
		eng := Build(info, engCfg)
		ref := newReferenceHB(t, tr)
		for i := 0; i < tr.Len(); i++ {
			for j := 0; j < tr.Len(); j++ {
				if i == j {
					continue
				}
				if got, want := eng.HappensBefore(i, j), ref.st[[2]int{i, j}] || ref.mt[[2]int{i, j}]; got != want {
					t.Logf("seed %d: pair (%d:%v, %d:%v): engine %v, reference %v",
						seed, i, tr.Op(i), j, tr.Op(j), got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineMatchesReferenceOnFigures pins the equivalence on the paper's
// traces as well.
func TestEngineMatchesReferenceOnFigures(t *testing.T) {
	for name, tr := range map[string]*trace.Trace{
		"lock-example": lockTrace(),
	} {
		info, err := trace.Analyze(tr)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.MergeAccesses = false
		eng := Build(info, cfg)
		ref := newReferenceHB(t, tr)
		for i := 0; i < tr.Len(); i++ {
			for j := 0; j < tr.Len(); j++ {
				if i == j {
					continue
				}
				got := eng.HappensBefore(i, j)
				want := ref.st[[2]int{i, j}] || ref.mt[[2]int{i, j}]
				if got != want {
					t.Errorf("%s: pair (%d,%d): engine %v, reference %v", name, i, j, got, want)
				}
			}
		}
	}
}
