package apps

// The five proprietary applications of Table 2. The paper ran these as
// unmodified binaries and could not triage their races (no source, no
// debug info), so the models return no ground truth: the harness reports
// raw counts only, as Table 3 does. The true/false seed splits below are
// therefore arbitrary mixtures — what matters is the reported totals and
// the concurrency shape.

func init() {
	register("Remind Me", newRemindMe)
	register("Twitter", newTwitter)
	register("Adobe Reader", newAdobeReader)
	register("Facebook", newFacebook)
	register("Flipkart", newFlipkart)
}

// newRemindMe models Remind Me: a small reminder app dominated by
// co-enabled UI races (33) and cross-posted list refreshes (21).
func newRemindMe() App {
	return &profileApp{p: profile{
		name: "Remind Me", proprietary: true,
		maxEvents: 2, maxTests: 12,
		launchFields: 118, rereads: 77,
		crossTrue: 8, crossFalse: 13, crossPerTask: 3,
		coTrue: 20, coFalse: 13, coWork: 6,
		tasks:     150, // reminder-list refresh storm
		tasksMain: 7,
	}}
}

// newTwitter models Twitter: a large thread population (21 plain threads,
// 5 queue threads) with comparatively few races.
func newTwitter() App {
	return &profileApp{p: profile{
		name: "Twitter", proprietary: true,
		maxEvents: 2, maxTests: 12,
		launchFields: 1020, rereads: 13,
		crossTrue: 9, crossFalse: 11, crossPerTask: 4,
		coTrue: 5, coFalse: 2, coWork: 10,
		delayedTrue: 2, delayedFalse: 2, delayedPerTask: 2,
		plainThreads: 17, plainWork: 6,
		queueThreads: 4, queueJobs: 8, queueWork: 4,
		tasks:     40,
		tasksMain: 6,
	}}
}

// newAdobeReader models Adobe Reader: rendering workers produce the
// second-highest multithreaded count (34) plus delayed and unknown races
// (the paper reports 9 unknown-category races for it).
func newAdobeReader() App {
	return &profileApp{p: profile{
		name: "Adobe Reader", proprietary: true,
		maxEvents: 2, maxTests: 12,
		launchFields: 740, rereads: 41,
		mtTrue: 10, mtFalse: 24,
		crossTrue: 20, crossFalse: 53, crossPerTask: 6,
		coWork:      8,
		delayedTrue: 3, delayedFalse: 6, delayedPerTask: 3,
		unkTrue: 4, unkFalse: 5, unkPerTask: 3,
		plainThreads: 12, plainWork: 6,
		queueThreads: 3, queueJobs: 20, queueWork: 3,
		tasks:     110,
		tasksMain: 13,
	}}
}

// newFacebook models Facebook: a very long trace with remarkably few
// asynchronous tasks (16) — heavy in-thread feed processing instead.
func newFacebook() App {
	return &profileApp{p: profile{
		name: "Facebook", proprietary: true,
		maxEvents: 2, maxTests: 12,
		launchFields: 630, rereads: 80,
		mtTrue: 5, mtFalse: 7,
		crossTrue: 4, crossFalse: 6, crossPerTask: 4,
		coWork:       10,
		plainThreads: 13, plainWork: 8,
		queueThreads: 2, queueJobs: 2, queueWork: 3,
		tasksMain: 3,
	}}
}

// newFlipkart models Flipkart: the largest trace of the evaluation (157K
// operations, 36 plain threads) and the most races in every category.
func newFlipkart() App {
	return &profileApp{p: profile{
		name: "Flipkart", proprietary: true,
		maxEvents: 2, maxTests: 8,
		launchFields: 1385, rereads: 110,
		mtTrue: 5, mtFalse: 7,
		crossTrue: 60, crossFalse: 92, crossPerTask: 8,
		coTrue: 50, coFalse: 34, coWork: 12,
		delayedTrue: 10, delayedFalse: 20, delayedPerTask: 5,
		unkTrue: 16, unkFalse: 20, unkPerTask: 6,
		plainThreads: 31, plainWork: 8,
		queueThreads: 2, queueJobs: 5, queueWork: 4,
		tasks:     20,
		tasksMain: 6,
	}}
}
