// Package trace defines the core concurrency language of the DroidRacer
// paper (Table 1) and the execution traces built from it.
//
// An execution trace is a sequence of low-level, concurrency-relevant
// operations observed while an Android application runs: thread lifecycle
// (threadinit, threadexit, fork, join), task-queue management (attachQ,
// loopOnQ), asynchronous procedure calls (post, begin, end), lock-based
// synchronization (acquire, release), memory accesses (read, write), and
// the enable operation used to model the Android runtime environment.
//
// Beyond the paper's Table 1, the package supports three task-management
// refinements from §4.2 of the paper: delayed posts (a timeout attached to
// a post), cancellation of posted tasks, and posts to the front of the
// queue (listed as future work in the paper; implemented here as an
// extension).
package trace

import "fmt"

// ThreadID identifies a thread within a trace. Thread t0 is conventionally
// the binder thread and t1 the main (UI) thread, following the paper's
// examples, but the analysis assigns no special meaning to particular IDs.
type ThreadID int32

// TaskID names an asynchronously called procedure instance. The paper
// assumes every procedure occurs at most once per trace (distinct
// occurrences are uniquely renamed), so a TaskID identifies a single
// posted task.
type TaskID string

// Loc identifies a memory location (a heap object field in the paper's
// instrumentation).
type Loc string

// LockID identifies a lock.
type LockID string

// Kind enumerates the operation kinds of the core language.
type Kind uint8

// Operation kinds. OpInvalid is the zero value and never appears in a
// well-formed trace.
const (
	OpInvalid Kind = iota
	OpThreadInit
	OpThreadExit
	OpFork
	OpJoin
	OpAttachQ
	OpLoopOnQ
	OpPost
	OpBegin
	OpEnd
	OpAcquire
	OpRelease
	OpRead
	OpWrite
	OpEnable
	OpCancel
)

var kindNames = [...]string{
	OpInvalid:    "invalid",
	OpThreadInit: "threadinit",
	OpThreadExit: "threadexit",
	OpFork:       "fork",
	OpJoin:       "join",
	OpAttachQ:    "attachQ",
	OpLoopOnQ:    "loopOnQ",
	OpPost:       "post",
	OpBegin:      "begin",
	OpEnd:        "end",
	OpAcquire:    "acquire",
	OpRelease:    "release",
	OpRead:       "read",
	OpWrite:      "write",
	OpEnable:     "enable",
	OpCancel:     "cancel",
}

// String returns the lower-case opcode name used in the textual trace
// format, e.g. "post" or "loopOnQ".
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsAccess reports whether k is a memory access (read or write).
func (k Kind) IsAccess() bool { return k == OpRead || k == OpWrite }

// Op is a single operation in an execution trace. Only the fields relevant
// to the Kind are meaningful; the rest are zero.
type Op struct {
	Kind   Kind
	Thread ThreadID // executing thread; first parameter of every opcode
	Other  ThreadID // fork/join: the forked/joined thread; post: destination
	Task   TaskID   // post/begin/end/enable/cancel: the task
	Loc    Loc      // read/write: the memory location
	Lock   LockID   // acquire/release: the lock

	// Delayed and Delay model delayed posts (§4.2): the task runs when the
	// timeout Delay (in virtual milliseconds) expires.
	Delayed bool
	Delay   int64

	// Front marks a post to the front of the destination queue, overriding
	// FIFO order (extension beyond the paper).
	Front bool
}

// String renders the operation in the paper's textual form, e.g.
// "post(t0,LAUNCH_ACTIVITY,t1)".
func (o Op) String() string {
	switch o.Kind {
	case OpThreadInit, OpThreadExit, OpAttachQ, OpLoopOnQ:
		return fmt.Sprintf("%s(t%d)", o.Kind, o.Thread)
	case OpFork, OpJoin:
		return fmt.Sprintf("%s(t%d,t%d)", o.Kind, o.Thread, o.Other)
	case OpPost:
		switch {
		case o.Delayed:
			return fmt.Sprintf("postd(t%d,%s,t%d,%d)", o.Thread, o.Task, o.Other, o.Delay)
		case o.Front:
			return fmt.Sprintf("postf(t%d,%s,t%d)", o.Thread, o.Task, o.Other)
		default:
			return fmt.Sprintf("post(t%d,%s,t%d)", o.Thread, o.Task, o.Other)
		}
	case OpBegin, OpEnd, OpEnable, OpCancel:
		return fmt.Sprintf("%s(t%d,%s)", o.Kind, o.Thread, o.Task)
	case OpAcquire, OpRelease:
		return fmt.Sprintf("%s(t%d,%s)", o.Kind, o.Thread, o.Lock)
	case OpRead, OpWrite:
		return fmt.Sprintf("%s(t%d,%s)", o.Kind, o.Thread, o.Loc)
	default:
		return fmt.Sprintf("invalid(t%d)", o.Thread)
	}
}

// Conflicts reports whether o and p form a conflicting pair: both access
// the same memory location and at least one is a write.
func (o Op) Conflicts(p Op) bool {
	if !o.Kind.IsAccess() || !p.Kind.IsAccess() {
		return false
	}
	if o.Loc != p.Loc {
		return false
	}
	return o.Kind == OpWrite || p.Kind == OpWrite
}

// Trace is an execution trace: an append-only sequence of operations.
// The zero value is an empty trace ready to use.
type Trace struct {
	ops []Op
}

// New returns an empty trace with capacity for n operations.
func New(n int) *Trace { return &Trace{ops: make([]Op, 0, n)} }

// FromOps returns a trace wrapping the given operations. The slice is not
// copied; the caller must not modify it afterwards.
func FromOps(ops []Op) *Trace { return &Trace{ops: ops} }

// Append adds op to the end of the trace and returns its index.
func (t *Trace) Append(op Op) int {
	t.ops = append(t.ops, op)
	return len(t.ops) - 1
}

// Len returns the number of operations in the trace.
func (t *Trace) Len() int { return len(t.ops) }

// Op returns the i-th operation. It panics if i is out of range.
func (t *Trace) Op(i int) Op { return t.ops[i] }

// Ops returns the underlying operation slice. The caller must treat it as
// read-only.
func (t *Trace) Ops() []Op { return t.ops }

// Clone returns an independent copy of the trace.
func (t *Trace) Clone() *Trace {
	ops := make([]Op, len(t.ops))
	copy(ops, t.ops)
	return &Trace{ops: ops}
}

// WithoutCancelled returns a copy of the trace with every cancelled post
// removed, implementing the paper's treatment of task cancellation (§4.2):
// "the cancellation of posted tasks is handled by removing the
// corresponding post operations from the trace". The cancel operations
// themselves are removed too. A cancel with no matching pending post is
// ignored.
func (t *Trace) WithoutCancelled() *Trace {
	cancelled := make(map[TaskID]bool)
	began := make(map[TaskID]bool)
	for _, op := range t.ops {
		switch op.Kind {
		case OpCancel:
			cancelled[op.Task] = true
		case OpBegin:
			began[op.Task] = true
		}
	}
	out := New(len(t.ops))
	for _, op := range t.ops {
		switch op.Kind {
		case OpCancel:
			continue
		case OpPost:
			// A cancelled task that still began (cancel raced with dispatch)
			// keeps its post; only posts of never-begun cancelled tasks are
			// dropped.
			if cancelled[op.Task] && !began[op.Task] {
				continue
			}
		}
		out.Append(op)
	}
	return out
}

// Convenience constructors for each operation kind. They keep trace
// construction in tests and the runtime short and uniform.

// ThreadInit returns a threadinit(t) operation.
func ThreadInit(t ThreadID) Op { return Op{Kind: OpThreadInit, Thread: t} }

// ThreadExit returns a threadexit(t) operation.
func ThreadExit(t ThreadID) Op { return Op{Kind: OpThreadExit, Thread: t} }

// Fork returns a fork(t,t2) operation: t creates thread t2.
func Fork(t, t2 ThreadID) Op { return Op{Kind: OpFork, Thread: t, Other: t2} }

// Join returns a join(t,t2) operation: t consumes the completed thread t2.
func Join(t, t2 ThreadID) Op { return Op{Kind: OpJoin, Thread: t, Other: t2} }

// AttachQ returns an attachQ(t) operation.
func AttachQ(t ThreadID) Op { return Op{Kind: OpAttachQ, Thread: t} }

// LoopOnQ returns a loopOnQ(t) operation.
func LoopOnQ(t ThreadID) Op { return Op{Kind: OpLoopOnQ, Thread: t} }

// Post returns a post(t,p,dest) operation: t posts task p to thread dest.
func Post(t ThreadID, p TaskID, dest ThreadID) Op {
	return Op{Kind: OpPost, Thread: t, Task: p, Other: dest}
}

// PostDelayed returns a delayed post with the given timeout.
func PostDelayed(t ThreadID, p TaskID, dest ThreadID, delay int64) Op {
	return Op{Kind: OpPost, Thread: t, Task: p, Other: dest, Delayed: true, Delay: delay}
}

// PostFront returns a post to the front of the destination queue.
func PostFront(t ThreadID, p TaskID, dest ThreadID) Op {
	return Op{Kind: OpPost, Thread: t, Task: p, Other: dest, Front: true}
}

// Begin returns a begin(t,p) operation: thread t starts executing task p.
func Begin(t ThreadID, p TaskID) Op { return Op{Kind: OpBegin, Thread: t, Task: p} }

// End returns an end(t,p) operation: thread t finishes executing task p.
func End(t ThreadID, p TaskID) Op { return Op{Kind: OpEnd, Thread: t, Task: p} }

// Acquire returns an acquire(t,l) operation.
func Acquire(t ThreadID, l LockID) Op { return Op{Kind: OpAcquire, Thread: t, Lock: l} }

// Release returns a release(t,l) operation.
func Release(t ThreadID, l LockID) Op { return Op{Kind: OpRelease, Thread: t, Lock: l} }

// Read returns a read(t,m) operation.
func Read(t ThreadID, m Loc) Op { return Op{Kind: OpRead, Thread: t, Loc: m} }

// Write returns a write(t,m) operation.
func Write(t ThreadID, m Loc) Op { return Op{Kind: OpWrite, Thread: t, Loc: m} }

// Enable returns an enable(t,p) operation: the posting of task p is now
// permitted by the environment.
func Enable(t ThreadID, p TaskID) Op { return Op{Kind: OpEnable, Thread: t, Task: p} }

// Cancel returns a cancel(t,p) operation removing a pending post of p.
func Cancel(t ThreadID, p TaskID) Op { return Op{Kind: OpCancel, Thread: t, Task: p} }
