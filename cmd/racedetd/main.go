// Command racedetd is the resilient analysis daemon: it watches a spool
// directory for trace files, runs each through the supervised job pool
// (bounded queue, per-job budgets, retry-with-backoff, per-input circuit
// breaker with the pure-MT baseline as the degraded fallback), and
// journals finished work under a state directory so a restarted daemon
// re-analyzes only unfinished inputs.
//
// Usage:
//
//	racedetd -spool DIR -state DIR [-workers N] [-queue N]
//	         [-deadline 30s] [-retries N] [-poll 2s] [-once]
//	         [-drain-timeout 30s] [-metrics-addr HOST:PORT]
//	         [-events PATH] [-listen HOST:PORT] [-max-body BYTES]
//	         [-rate N] [-burst N] [-max-inflight N] [-max-deadline 2m]
//	         [-mem-watermark BYTES] [-cost-soft BYTES] [-cost-hard BYTES]
//	         [-worker-mem BYTES] [-worker-wall 2m] [-isolate]
//
// Resource governance (see internal/sentinel and DESIGN.md §16):
// -cost-hard refuses submissions whose estimated analysis footprint no
// ceiling allows (413 cost-exceeded, estimate in the body); -cost-soft
// flags them heavy, and with -isolate (the default) heavy inputs run in
// a re-exec'd `racedetd -worker` subprocess under -worker-mem
// (GOMEMLIMIT + RLIMIT_AS) and the -worker-wall watchdog, so a memory
// bomb costs one quarantine record instead of the daemon.
// -mem-watermark arms the brownout sentinel: above that heap level the
// daemon degrades non-heavy work to the pure-MT baseline, refuses heavy
// work 503 resource-degraded, and reports "resource" on /readyz so
// gateway probers route around it until it recovers.
//
// -metrics-addr starts the debug HTTP listener: Prometheus-text
// /metrics, expvar /debug/vars, and net/http/pprof under /debug/pprof/.
// The bound address is printed to stderr (port 0 picks a free port).
// -events appends a structured JSONL event log (log/slog) with a
// per-incarnation run ID; job-finish events carry the journal sequence
// number of their WAL record.
//
// -listen starts the ingestion API (see internal/server and DESIGN.md
// §11): POST /v1/jobs accepts a trace body under admission control
// (body-size bound via -max-body, per-client token bucket via -rate and
// -burst, global in-flight cap via -max-inflight, request deadlines
// capped by -max-deadline), answers duplicates idempotently from the
// journal, and spools accepted bodies durably before acknowledging
// them. /healthz reports liveness; /readyz flips to 503 the moment a
// shutdown signal arrives, before in-flight work finishes draining.
//
// Poison inputs — jobs that fail deterministically after retries with a
// parse error or an isolated panic — are dead-lettered: a quarantine
// journal entry is made durable and the trace file moves to
// <state>/quarantine/, so a restart never re-ingests it.
//
// SIGINT/SIGTERM trigger a graceful shutdown: readiness flips false,
// intake closes, in-flight analyses run to completion (bounded by
// -drain-timeout, after which they are cancelled into partial
// outcomes), queued jobs are recorded as drained for the next
// incarnation, and the per-job report prints to stdout. -once sweeps
// the spool a single time, waits for the pool to quiesce, and exits —
// the mode batch pipelines and the CI smoke test drive.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"droidracer/internal/budget"
	"droidracer/internal/core"
	"droidracer/internal/jobs"
	"droidracer/internal/journal"
	"droidracer/internal/obs"
	"droidracer/internal/report"
	"droidracer/internal/sentinel"
	"droidracer/internal/server"
	"droidracer/internal/storage"
)

// journalName is the daemon's completed-work journal inside -state.
const journalName = "daemon.journal"

// quarantineDir is the dead-letter directory inside -state.
const quarantineDir = "quarantine"

func main() {
	// The -worker subcommand is the sandboxed analysis child the sentinel
	// isolator re-execs for heavy inputs. It must run before flag.Parse:
	// the worker's contract is the DROIDRACER_WORKER spec, not the
	// daemon's flag set.
	if len(os.Args) > 1 && os.Args[1] == "-worker" {
		os.Exit(sentinel.WorkerMain())
	}
	spool := flag.String("spool", "", "directory of trace files to analyze")
	state := flag.String("state", "", "state directory for the completed-work journal")
	workers := flag.Int("workers", 2, "concurrent analysis workers")
	parallelism := flag.Int("parallelism", 0, "per-job worker goroutines for the closure and race scan (0 = GOMAXPROCS/workers, 1 = serial)")
	queue := flag.Int("queue", 16, "admission queue depth; a full queue sheds new work")
	engine := flag.String("engine", "", "default analysis engine: graph (default) or stream; a request's X-Analysis-Engine overrides per submission")
	deadline := flag.Duration("deadline", 0, "wall-clock budget per analysis attempt (0 = unlimited)")
	retries := flag.Int("retries", 1, "extra attempts per job after a transient failure")
	backoff := flag.Duration("backoff", 100*time.Millisecond, "base backoff between attempts")
	breaker := flag.Int("breaker", 3, "consecutive hard failures on one input before degrading it (-1 disables)")
	poll := flag.Duration("poll", 2*time.Second, "spool re-scan interval")
	once := flag.Bool("once", false, "sweep the spool once, drain, and exit")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound for in-flight jobs")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof/ on this address (empty = off)")
	eventsPath := flag.String("events", "", "append structured JSONL lifecycle events to this file (empty = off)")
	listen := flag.String("listen", "", "serve the trace-ingestion API on this address (empty = off)")
	maxBody := flag.Int64("max-body", 8<<20, "largest accepted trace body in bytes")
	rate := flag.Float64("rate", 10, "per-client submissions per second")
	burst := flag.Int("burst", 20, "per-client submission burst")
	maxInflight := flag.Int("max-inflight", 64, "concurrently admitted submissions")
	maxDeadline := flag.Duration("max-deadline", 2*time.Minute, "cap on per-request X-Analysis-Deadline")
	maxRetryAfter := flag.Duration("max-retry-after", 5*time.Minute, "ceiling on queue-derived Retry-After hints")
	sweepGrace := flag.Duration("sweep-grace", 0, "hold the restart spool sweep until a gateway reconcile arrives or this grace expires (0 = sweep immediately)")
	traceSlow := flag.Duration("trace-slow", time.Second, "tail-capture threshold: unsampled jobs slower than this keep their trace in /debug/traces (0 = only failures)")
	memWatermark := flag.Int64("mem-watermark", 0, "heap bytes that flip the daemon into memory brownout (0 = off)")
	costSoft := flag.Int64("cost-soft", 0, "estimated analysis bytes above which a submission runs isolated (0 = off)")
	costHard := flag.Int64("cost-hard", 0, "estimated analysis bytes above which a submission is refused 413 (0 = off)")
	workerMem := flag.Int64("worker-mem", 512<<20, "memory budget per isolated worker subprocess (GOMEMLIMIT + RLIMIT_AS)")
	workerWall := flag.Duration("worker-wall", 2*time.Minute, "wall-clock watchdog per isolated worker subprocess")
	isolate := flag.Bool("isolate", true, "run heavy submissions in a sandboxed -worker subprocess")
	eventsMaxBytes := flag.Int64("events-max-bytes", obs.DefaultEventsMaxBytes, "rotate the -events file after this many bytes (kept as <file>.1)")
	flag.Parse()
	obs.SetServiceName("racedetd")
	if *spool == "" || *state == "" {
		fatal(fmt.Errorf("missing -spool or -state"))
	}

	events := obs.Nop()
	runID := obs.NewRunID()
	if *eventsPath != "" {
		ef, err := obs.OpenRotatingFile(*eventsPath, *eventsMaxBytes)
		if err != nil {
			fatal(err)
		}
		defer ef.Close()
		events = obs.NewEventLog(ef, runID)
	}

	var debugSrv interface{ Close() error }
	if *metricsAddr != "" {
		srv, bound, err := obs.ServeDebug(*metricsAddr, obs.Default())
		if err != nil {
			fatal(err)
		}
		debugSrv = srv
		fmt.Fprintf(os.Stderr, "racedetd: debug listener on http://%s/ (metrics, expvar, pprof)\n", bound)
		events.Info("daemon.debug-listener", "addr", bound)
	}

	jpath := filepath.Join(*state, journalName)
	entries, rstats, err := journal.RecoverStats(jpath)
	if err != nil {
		if storage.IsCorrupt(err) {
			// Acknowledged, fsync'd history changed under us. Truncating
			// it away silently would drop work a client was promised, so
			// the daemon refuses to start; the operator decides.
			fatal(fmt.Errorf("%w\nthe journal is corrupt; inspect it with `racedet -fsck %s` and repair with `racedet -fsck %s -repair`",
				err, *state, *state))
		}
		fatal(err)
	}
	if rstats.Torn() {
		// A hard crash left a torn tail; the discarded bytes were never
		// acknowledged durable, but say what resume is not replaying.
		fmt.Fprintf(os.Stderr, "racedetd: journal recovery discarded a torn tail (%d entr(ies), %d bytes)\n",
			rstats.DiscardedEntries, rstats.DiscardedBytes)
	}
	completed := jobs.CompletedRecords(entries)
	quarantined := jobs.QuarantinedJobs(entries)
	if len(completed) > 0 {
		fmt.Fprintf(os.Stderr, "racedetd: journal holds %d completed input(s); skipping them\n", len(completed))
	}
	q := &jobs.Quarantine{Dir: filepath.Join(*state, quarantineDir)}
	// Replay dead-letter moves: a crash between the quarantine journal
	// entry and the file rename leaves the poison input in the spool;
	// the journal is the truth, so converge the file system to it.
	for name := range quarantined {
		if err := q.Absorb(filepath.Join(*spool, name)); err != nil {
			fmt.Fprintf(os.Stderr, "racedetd: quarantine replay %s: %v\n", name, err)
		}
	}
	if len(quarantined) > 0 {
		fmt.Fprintf(os.Stderr, "racedetd: journal holds %d quarantined input(s); never re-ingesting them\n", len(quarantined))
	}
	events.Info("daemon.start", "spool", *spool, "state", *state,
		"recovered_entries", rstats.Entries,
		"torn_entries", rstats.DiscardedEntries, "torn_bytes", rstats.DiscardedBytes,
		"completed_jobs", len(completed), "quarantined_jobs", len(quarantined))
	w, err := journal.Create(jpath)
	if err != nil {
		fatal(err)
	}

	// The server holds the idempotency index even when -listen is off:
	// the spool sweep claims names through it, and the pool's OnFinish
	// hook moves them to their terminal states. The indirection through
	// srv is safe: it is assigned before any job can be submitted.
	var srv *server.Server
	pool := jobs.NewPool(jobs.Config{
		Workers:     *workers,
		Parallelism: *parallelism,
		QueueDepth:  *queue,
		Budget:      budget.Limits{Wall: *deadline},
		Retry:       jobs.RetryPolicy{MaxAttempts: 1 + *retries, BaseBackoff: *backoff},
		Breaker:     jobs.BreakerPolicy{Threshold: *breaker},
		Journal:     w,
		Events:      events,
		Quarantine:  q,
		TraceSlow:   *traceSlow,
		OnFinish: func(out report.Outcome) {
			if s := srv; s != nil {
				s.JobFinished(out)
			}
		},
	})
	// Each analysis gets the pool's resolved per-job worker budget, so
	// -workers jobs running their closures in parallel never oversubscribe
	// the machine.
	aopts := core.DefaultOptions()
	aopts.Parallelism = pool.JobParallelism()
	eng, err := core.NormalizeEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "racedetd: %v\n", err)
		os.Exit(2)
	}
	aopts.Engine = eng
	// Resource governance: the brownout sentinel samples the daemon's own
	// heap, and the isolator re-execs this binary as `racedetd -worker`
	// for heavy inputs so a memory bomb dies in a subprocess.
	snt := sentinel.New(sentinel.Config{Watermark: *memWatermark, Events: events})
	snt.Start()
	defer snt.Stop()
	var iso jobs.Runner
	if *isolate {
		if exe, err := os.Executable(); err == nil {
			iso = &sentinel.Isolator{
				Exe:      exe,
				Args:     []string{"-worker"},
				MemLimit: *workerMem,
				Wall:     *workerWall,
				Events:   events,
			}
		} else {
			fmt.Fprintf(os.Stderr, "racedetd: isolation disabled, cannot resolve own executable: %v\n", err)
		}
	}
	srv = server.New(server.Config{
		Pool:          pool,
		Spool:         *spool,
		Analyze:       aopts,
		Workers:       *workers,
		MaxBody:       *maxBody,
		MaxInflight:   *maxInflight,
		Rate:          *rate,
		Burst:         *burst,
		MaxDeadline:   *maxDeadline,
		MaxRetryAfter: *maxRetryAfter,
		SweepGrace:    *sweepGrace,
		Completed:     completed,
		Quarantined:   quarantined,
		Events:        events,
		// A poisoned journal writer (failed fsync — fsyncgate) flips the
		// daemon storage-degraded: /readyz 503 "storage", submissions
		// refused 503 storage-degraded until a restart re-proves what is
		// actually on disk.
		StorageErr: w.Err,
		Sentinel:   snt,
		Cost:       sentinel.CostLimits{Soft: *costSoft, Hard: *costHard},
		Isolator:   iso,
	})
	var ingestSrv interface{ Close() error }
	if *listen != "" {
		hs, bound, err := srv.Serve(*listen)
		if err != nil {
			fatal(err)
		}
		ingestSrv = hs
		fmt.Fprintf(os.Stderr, "racedetd: ingestion listener on http://%s/v1/jobs\n", bound)
		events.Info("daemon.ingest-listener", "addr", bound)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Readiness must flip the moment the signal lands — before the sweep
	// loop notices, before Pool.Shutdown — so load balancers stop routing
	// while accepted work drains.
	go func() {
		<-ctx.Done()
		srv.BeginDrain()
	}()

	for {
		// Behind a gateway, the restart sweep waits for the reconcile
		// handshake (or the grace deadline): spooled orphans the fleet
		// completed elsewhere must be reclaimed, not re-analyzed.
		if srv.SweepReady() {
			if err := sweep(pool, srv, *spool); err != nil {
				fmt.Fprintf(os.Stderr, "racedetd: %v\n", err)
			}
		}
		if *once {
			pool.Quiesce()
			break
		}
		select {
		case <-ctx.Done():
		case <-time.After(*poll):
			continue
		}
		break
	}

	srv.BeginDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	events.Info("daemon.drain", "timeout", drainTimeout.String())
	outs := pool.Shutdown(drainCtx)
	fmt.Print(report.Pipeline(outs))
	events.Info("daemon.stop", "outcomes", len(outs), "journal_seq", w.Seq())
	if ingestSrv != nil {
		ingestSrv.Close()
	}
	if debugSrv != nil {
		debugSrv.Close()
	}
	if err := w.Close(); err != nil {
		fatal(err)
	}
}

// sweep submits every spool file not already claimed in the server's
// idempotency index — which covers journal-completed work, quarantined
// inputs, HTTP-accepted submissions, and earlier sweeps. A shed
// submission (saturated queue) releases its claim, so the next sweep
// retries it — the producer-side reaction to backpressure. Dotfiles are
// skipped: the ingestion layer stages bodies as hidden temp files
// before the durable rename.
func sweep(pool *jobs.Pool, srv *server.Server, spool string) error {
	ents, err := os.ReadDir(spool)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() && !strings.HasPrefix(e.Name(), ".") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if !srv.Claim(name) {
			continue
		}
		// SpoolJob applies the same resource governance as HTTP admission:
		// a swept file that estimates heavy runs in the isolation sandbox
		// instead of on the daemon's heap.
		job := srv.SpoolJob(name, filepath.Join(spool, name))
		if err := pool.Submit(job); err != nil {
			srv.Release(name)
			fmt.Fprintf(os.Stderr, "racedetd: %s: %v\n", name, err)
			continue
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "racedetd:", err)
	os.Exit(1)
}
