// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6). One benchmark family per artifact:
//
//	BenchmarkFigure3Analysis / BenchmarkFigure4Analysis — the motivating
//	    traces through the full pipeline (Figures 3 and 4);
//	BenchmarkFigure5Validation — the operational-semantics replay;
//	BenchmarkFigure6n7HappensBefore — happens-before construction;
//	BenchmarkFigure8Lifecycle — the lifecycle state machine;
//	BenchmarkTable2TraceGen/<app> — trace generation for each Table 2 row
//	    (the representative test's event sequence, replayed);
//	BenchmarkTable3Detection/<app> — race detection + classification on
//	    each representative trace (Table 3);
//	BenchmarkNodeMerging/{merged,unmerged} — the §6 graph-size optimization;
//	BenchmarkTraceGenOverhead/{recording,no-recording} — the §6 "up to 5x
//	    slowdown" instrumentation-overhead experiment;
//	BenchmarkAblation/* — the §4.1 specializations and the naive
//	    combination (DESIGN.md ablations);
//	BenchmarkBaseline/* — the §7 comparison detectors.
package droidracer_test

import (
	"fmt"
	"sync"
	"testing"

	"droidracer"
	"droidracer/internal/android"
	"droidracer/internal/apps"
	"droidracer/internal/baseline"
	"droidracer/internal/explorer"
	"droidracer/internal/hb"
	"droidracer/internal/paper"
	"droidracer/internal/race"
	"droidracer/internal/semantics"
	"droidracer/internal/sentinel"
	"droidracer/internal/trace"
)

// benchApps are the Table 2/3 rows benchmarked individually. The full
// 15-app set runs through cmd/benchtables; the benchmarks cover a spread
// of trace sizes (smallest, the motivating app's scale, mid, largest).
var benchApps = []string{
	"Aard Dictionary",
	"Music Player",
	"K-9 Mail",
	"Flipkart",
}

// repCache holds each app's representative test, computed once.
var (
	repMu    sync.Mutex
	repCache = map[string]*explorer.Test{}
)

func representative(tb testing.TB, name string) *explorer.Test {
	tb.Helper()
	repMu.Lock()
	defer repMu.Unlock()
	if t, ok := repCache[name]; ok {
		return t
	}
	app, err := apps.New(name)
	if err != nil {
		tb.Fatal(err)
	}
	t, err := apps.RepresentativeTest(app)
	if err != nil {
		tb.Fatal(err)
	}
	repCache[name] = t
	return t
}

func analyzeInfo(tb testing.TB, tr *trace.Trace) *trace.Info {
	tb.Helper()
	info, err := trace.Analyze(tr)
	if err != nil {
		tb.Fatal(err)
	}
	return info
}

func BenchmarkFigure3Analysis(b *testing.B) {
	tr := paper.Figure3()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := droidracer.Analyze(tr, droidracer.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Races) != 0 {
			b.Fatalf("Figure 3 should be race free, got %v", res.Races)
		}
	}
}

func BenchmarkFigure4Analysis(b *testing.B) {
	tr := paper.Figure4()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := droidracer.Analyze(tr, droidracer.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Races) != 2 {
			b.Fatalf("Figure 4 should have 2 races, got %v", res.Races)
		}
	}
}

func BenchmarkFigure5Validation(b *testing.B) {
	tr := representative(b, "Music Player").Trace
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if idx, err := semantics.ValidateInferred(tr); err != nil {
			b.Fatalf("op %d: %v", idx, err)
		}
	}
}

func BenchmarkFigure6n7HappensBefore(b *testing.B) {
	info := analyzeInfo(b, representative(b, "Music Player").Trace)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hb.Build(info, hb.DefaultConfig())
	}
}

func BenchmarkFigure8Lifecycle(b *testing.B) {
	opts := droidracer.DefaultEnvOptions()
	for i := 0; i < b.N; i++ {
		env := droidracer.NewEnv(opts)
		env.RegisterActivity("A", func() droidracer.Activity { return &benchActivity{} })
		if err := env.Launch("A"); err != nil {
			b.Fatal(err)
		}
		if err := env.Run(); err != nil {
			b.Fatal(err)
		}
		if err := env.Fire(droidracer.UIEvent{Kind: droidracer.EvBack}); err != nil {
			b.Fatal(err)
		}
		if err := env.Run(); err != nil {
			b.Fatal(err)
		}
		if err := env.Shutdown(); err != nil {
			b.Fatal(err)
		}
	}
}

type benchActivity struct {
	droidracer.BaseActivity
}

func (a *benchActivity) OnCreate(c *droidracer.Ctx) { c.Write("A.state") }

func BenchmarkTable2TraceGen(b *testing.B) {
	for _, name := range benchApps {
		name := name
		b.Run(name, func(b *testing.B) {
			rep := representative(b, name)
			app, err := apps.New(name)
			if err != nil {
				b.Fatal(err)
			}
			factory := apps.Factory(app)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr, err := explorer.Replay(factory, 0, rep.Sequence)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(tr.Len()), "trace-ops")
			}
		})
	}
}

func BenchmarkTable3Detection(b *testing.B) {
	for _, name := range benchApps {
		name := name
		b.Run(name, func(b *testing.B) {
			tr := representative(b, name).Trace
			info := analyzeInfo(b, tr)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := hb.Build(info, hb.DefaultConfig())
				races := race.NewDetector(g).DetectDeduped()
				b.ReportMetric(float64(len(races)), "races")
				b.ReportMetric(float64(g.NodeCount()), "graph-nodes")
			}
		})
	}
}

// BenchmarkParallelHB measures the column-sharded happens-before closure
// against the serial engine on the closure-heaviest Table 2 trace (K-9
// Mail: ~3.5k nodes, ~4.3M pairs). The serial/workers=N ratio is the
// wall-clock speedup; outputs are byte-identical (TestParallelEquivalence).
func BenchmarkParallelHB(b *testing.B) {
	info := analyzeInfo(b, representative(b, "K-9 Mail").Trace)
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(workerLabel(workers), func(b *testing.B) {
			cfg := hb.DefaultConfig()
			cfg.Parallelism = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hb.Build(info, cfg)
			}
		})
	}
}

// BenchmarkParallelDetect measures the sharded conflict scan on the
// detection-heaviest Table 2 trace (Flipkart: ~157k ops, 314 racing
// pairs).
func BenchmarkParallelDetect(b *testing.B) {
	info := analyzeInfo(b, representative(b, "Flipkart").Trace)
	g := hb.Build(info, hb.DefaultConfig())
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(workerLabel(workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := race.NewDetector(g)
				d.Parallelism = workers
				races := d.Detect()
				b.ReportMetric(float64(len(races)), "racing-pairs")
			}
		})
	}
}

// BenchmarkSentinelOverhead pins what the resource-governance layer
// costs when it is DISABLED — the default standalone-daemon
// configuration, and the price every job pays for the sentinel merely
// existing. The governed variant runs the closure-heaviest workload
// (BenchmarkParallelHB's K-9 Mail build) plus the exact disabled-path
// checks the server performs per job: the nil-receiver brownout probes
// and the zero-ceiling class check. Its budget is within 5% of baseline;
// the benchtables regression gate holds it there against the committed
// BENCH_baseline.json.
func BenchmarkSentinelOverhead(b *testing.B) {
	info := analyzeInfo(b, representative(b, "K-9 Mail").Trace)
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hb.Build(info, hb.DefaultConfig())
		}
	})
	b.Run("governed", func(b *testing.B) {
		var snt *sentinel.Sentinel
		var lim sentinel.CostLimits
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if lim.Enabled() || snt != nil {
				b.Fatal("governance unexpectedly enabled")
			}
			if snt.Brownout() {
				b.Fatal("nil sentinel browned out")
			}
			_ = snt.RetryAfter()
			hb.Build(info, hb.DefaultConfig())
		}
	})
}

// BenchmarkStreamEngine pins the graph↔stream crossover: both engines
// analyze the closure-heaviest Table 2 trace (K-9 Mail), and the
// streaming engine alone analyzes a generated million-op
// alternating-thread trace whose graph closure is out of admission
// range under any cost ceiling (hostileTrace, the memory-chaos bomb
// shape). `benchtables -crossover` renders the table appended to the
// bench artifact from these series; the regression gate holds both
// engines to the committed baseline.
func BenchmarkStreamEngine(b *testing.B) {
	run := func(b *testing.B, tr *trace.Trace, engine string) {
		opts := droidracer.DefaultOptions()
		opts.Engine = engine
		// Engine cost only: the semantics replay is engine-independent.
		opts.Validate = false
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := droidracer.Analyze(tr, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(res.Races)), "races")
		}
	}
	b.Run("K-9 Mail", func(b *testing.B) {
		tr := representative(b, "K-9 Mail").Trace
		b.Run("graph", func(b *testing.B) { run(b, tr, droidracer.EngineGraph) })
		b.Run("stream", func(b *testing.B) { run(b, tr, droidracer.EngineStream) })
	})
	b.Run("bomb-1M", func(b *testing.B) {
		tr := hostileTrace(b, 1_000_000)
		// No graph column: admission rejects this shape under the graph
		// cost model (TestStreamAdmitsHostileTrace), so the stream series
		// is the whole point.
		b.Run("stream", func(b *testing.B) { run(b, tr, droidracer.EngineStream) })
	})
}

// workerLabel names the sub-benchmark for a worker count. The = form
// (not workers-N) keeps the trailing digits distinguishable from the
// -GOMAXPROCS suffix `go test` appends on multi-core machines, which
// the benchcmp gate strips to compare runs across machines.
func workerLabel(workers int) string {
	if workers == 1 {
		return "serial"
	}
	return fmt.Sprintf("workers=%d", workers)
}

func BenchmarkNodeMerging(b *testing.B) {
	info := analyzeInfo(b, representative(b, "Music Player").Trace)
	b.Run("merged", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := hb.Build(info, hb.DefaultConfig())
			b.ReportMetric(float64(g.NodeCount()), "nodes")
		}
	})
	b.Run("unmerged", func(b *testing.B) {
		cfg := hb.DefaultConfig()
		cfg.MergeAccesses = false
		for i := 0; i < b.N; i++ {
			g := hb.Build(info, cfg)
			b.ReportMetric(float64(g.NodeCount()), "nodes")
		}
	})
}

func BenchmarkTraceGenOverhead(b *testing.B) {
	app, err := apps.New("Aard Dictionary")
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, record bool) {
		for i := 0; i < b.N; i++ {
			opts := app.Options()
			opts.Record = record
			env := android.NewEnv(opts)
			app.Register(env)
			if err := env.Launch(app.MainActivity()); err != nil {
				b.Fatal(err)
			}
			if err := env.Run(); err != nil {
				b.Fatal(err)
			}
			if err := env.Shutdown(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("recording", func(b *testing.B) { run(b, true) })
	b.Run("no-recording", func(b *testing.B) { run(b, false) })
}

func BenchmarkAblation(b *testing.B) {
	// The ablation workload is race free under the full rules except for
	// one real race; each disabled rule surfaces its specific false
	// positives (see internal/apps/ablation.go).
	info := analyzeInfo(b, representative(b, "Ablation Workload").Trace)
	cases := []struct {
		name string
		mut  func(*hb.Config)
	}{
		{"full", func(*hb.Config) {}},
		{"no-enable", func(c *hb.Config) { c.EnableEdges = false }},
		{"no-fifo", func(c *hb.Config) { c.FIFO = false }},
		{"no-nopre", func(c *hb.Config) { c.NoPre = false }},
		{"naive-combination", func(c *hb.Config) { c.Naive = true }},
		{"event-only", func(c *hb.Config) { c.STOnly = true }},
		{"whole-thread-po", func(c *hb.Config) { c.WholeThreadPO = true }},
	}
	for _, cse := range cases {
		cse := cse
		b.Run(cse.name, func(b *testing.B) {
			cfg := hb.DefaultConfig()
			cse.mut(&cfg)
			for i := 0; i < b.N; i++ {
				g := hb.Build(info, cfg)
				// Undeduplicated pairs discriminate the rule sets better
				// than per-location reports.
				races := race.NewDetector(g).Detect()
				b.ReportMetric(float64(len(races)), "racing-pairs")
			}
		})
	}
}

func BenchmarkBaseline(b *testing.B) {
	tr := representative(b, "Music Player").Trace
	for _, d := range baseline.All() {
		d := d
		b.Run(d.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fs := d.Detect(tr)
				b.ReportMetric(float64(len(fs)), "racy-locs")
			}
		})
	}
}
