package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The word-range operations back the column-sharded parallel closure:
// disjoint [lo, hi) word windows must behave exactly like the whole-set
// operations restricted to bits [lo*64, hi*64).

func TestWordLen(t *testing.T) {
	for _, tc := range []struct{ n, words int }{
		{0, 0}, {1, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3},
	} {
		if got := New(tc.n).WordLen(); got != tc.words {
			t.Errorf("New(%d).WordLen() = %d, want %d", tc.n, got, tc.words)
		}
	}
}

func TestUnionWordRange(t *testing.T) {
	s, u := New(200), New(200)
	u.Set(3)   // word 0
	u.Set(70)  // word 1
	u.Set(130) // word 2
	u.Set(199) // word 3

	if !s.UnionWordRange(u, 1, 3) {
		t.Fatal("union into empty range reported no change")
	}
	for i, want := range map[int]bool{3: false, 70: true, 130: true, 199: false} {
		if got := s.Has(i); got != want {
			t.Errorf("after UnionWordRange(1,3): Has(%d) = %v, want %v", i, got, want)
		}
	}
	if s.UnionWordRange(u, 1, 3) {
		t.Error("idempotent union reported a change")
	}
	if s.UnionWordRange(u, 2, 2) {
		t.Error("empty word range reported a change")
	}
}

func TestCountAndResetWordRange(t *testing.T) {
	s := New(200)
	for _, i := range []int{0, 63, 64, 100, 128, 199} {
		s.Set(i)
	}
	if got := s.CountWordRange(0, s.WordLen()); got != s.Count() {
		t.Errorf("full-range count %d != Count %d", got, s.Count())
	}
	if got := s.CountWordRange(1, 2); got != 2 { // bits 64, 100
		t.Errorf("CountWordRange(1,2) = %d, want 2", got)
	}
	s.ResetWordRange(1, 2)
	for i, want := range map[int]bool{0: true, 63: true, 64: false, 100: false, 128: true, 199: true} {
		if got := s.Has(i); got != want {
			t.Errorf("after ResetWordRange(1,2): Has(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestCopyFrom(t *testing.T) {
	s, u := New(130), New(130)
	s.Set(5)
	u.Set(99)
	s.CopyFrom(u)
	if s.Has(5) || !s.Has(99) || !s.Equal(u) {
		t.Errorf("CopyFrom did not overwrite: %v vs %v", s, u)
	}
	u.Set(1)
	if s.Has(1) {
		t.Error("CopyFrom aliased the source words")
	}
}

func TestUnionCount(t *testing.T) {
	s, u := New(130), New(130)
	s.Set(0)
	s.Set(64)
	u.Set(64)
	u.Set(129)
	if got := s.UnionCount(u); got != 3 {
		t.Errorf("UnionCount = %d, want 3", got)
	}
	// And it must not modify either operand.
	if s.Count() != 2 || u.Count() != 2 {
		t.Errorf("UnionCount mutated operands: %d, %d bits", s.Count(), u.Count())
	}
}

func TestWordRangeCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("UnionWordRange on mismatched capacities did not panic")
		}
	}()
	New(64).UnionWordRange(New(128), 0, 1)
}

// TestQuickShardedUnionMatchesWhole is the sharding property the
// parallel engine rests on: unioning each word shard separately is the
// whole-set union, and the per-shard change verdicts OR to the
// whole-set verdict.
func TestQuickShardedUnionMatchesWhole(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		mk := func() *Set {
			s := New(n)
			for i := 0; i < n; i++ {
				if rng.Intn(3) == 0 {
					s.Set(i)
				}
			}
			return s
		}
		base, add := mk(), mk()
		whole := base.Clone()
		wantChanged := whole.UnionWith(add)

		sharded := base.Clone()
		workers := 1 + rng.Intn(5)
		words := sharded.WordLen()
		gotChanged := false
		for w := 0; w < workers; w++ {
			lo, hi := w*words/workers, (w+1)*words/workers
			if sharded.UnionWordRange(add, lo, hi) {
				gotChanged = true
			}
		}
		if !sharded.Equal(whole) || gotChanged != wantChanged {
			t.Logf("seed %d: sharded union diverges (changed %v vs %v)", seed, gotChanged, wantChanged)
			return false
		}
		if whole.Count() != base.UnionCount(add) {
			t.Logf("seed %d: UnionCount %d, union has %d", seed, base.UnionCount(add), whole.Count())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
