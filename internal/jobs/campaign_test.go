package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"droidracer/internal/apps"
	"droidracer/internal/budget"
	"droidracer/internal/core"
	"droidracer/internal/explorer"
	"droidracer/internal/faultinject"
)

// paperCampaign is the fixed campaign all resume tests run: the paper's
// motivating Music Player model (Figure 1), explored to depth 2. Its two
// Figure 4 races are the ground truth the chaos tests must preserve
// across every kill/resume schedule.
func paperCampaign() Campaign {
	app, err := apps.New("Paper Music Player")
	if err != nil {
		panic(err)
	}
	return Campaign{
		Name:    "paper-player",
		Factory: apps.Factory(app),
		Explore: explorer.Options{MaxEvents: 2},
		Analyze: core.DefaultOptions(),
	}
}

func TestCampaignRunsToCompletion(t *testing.T) {
	dir := t.TempDir()
	res, err := RunCampaign(context.Background(), paperCampaign(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.Resumed {
		t.Fatalf("first run: %+v", res)
	}
	if len(res.Races) == 0 || res.Tests == 0 || res.SequencesExplored == 0 {
		t.Fatalf("empty campaign result: %+v", res)
	}
	// Figure 4's multithreaded and cross-posted races must both surface.
	if res.Summary.Multithreaded == 0 || res.Summary.CrossPosted == 0 {
		t.Fatalf("summary = %+v", res.Summary)
	}
}

func TestCampaignResumeOfCompleteRunIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	first, err := RunCampaign(context.Background(), paperCampaign(), dir)
	if err != nil {
		t.Fatal(err)
	}
	again, err := RunCampaign(context.Background(), paperCampaign(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Complete || !again.Resumed {
		t.Fatalf("re-resume: %+v", again)
	}
	if again.SequencesExplored != 0 {
		t.Fatalf("complete campaign re-explored %d sequences", again.SequencesExplored)
	}
	if !reflect.DeepEqual(first.Races, again.Races) || first.Summary != again.Summary {
		t.Fatalf("rebuilt result diverged:\nfirst %+v\nagain %+v", first, again)
	}
}

func TestCampaignRejectsMismatchedStateDir(t *testing.T) {
	dir := t.TempDir()
	if _, err := RunCampaign(context.Background(), paperCampaign(), dir); err != nil {
		t.Fatal(err)
	}
	c := paperCampaign()
	c.Explore.MaxEvents = 3
	if _, err := RunCampaign(context.Background(), c, dir); err == nil ||
		!strings.Contains(err.Error(), "holds campaign") {
		t.Fatalf("mismatched resume err = %v", err)
	}
}

func TestCampaignBudgetTripCheckpointsThenResumes(t *testing.T) {
	baseline, err := RunCampaign(context.Background(), paperCampaign(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	limited := paperCampaign()
	limited.Explore.Budget = budget.Limits{MaxSequences: 2}
	partial, err := RunCampaign(context.Background(), limited, dir)
	if _, ok := budget.AsError(err); !ok {
		t.Fatalf("limited run err = %v", err)
	}
	if partial == nil || partial.Complete {
		t.Fatalf("limited run result = %+v", partial)
	}
	// Resume without the budget: the campaign must finish and find the
	// same races as the uninterrupted baseline.
	resumed, err := RunCampaign(context.Background(), paperCampaign(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Complete {
		t.Fatalf("resumed run incomplete: %+v", resumed)
	}
	if !reflect.DeepEqual(baseline.Races, resumed.Races) || baseline.Summary != resumed.Summary {
		t.Fatalf("race set diverged after budget trip:\nbaseline %+v\nresumed  %+v",
			baseline.Races, resumed.Races)
	}
}

func TestCampaignCancellationLeavesResumableState(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCampaign(ctx, paperCampaign(), dir)
	if be, ok := budget.AsError(err); !ok || !be.Canceled() {
		t.Fatalf("canceled run err = %v", err)
	}
	res, err := RunCampaign(context.Background(), paperCampaign(), dir)
	if err != nil || !res.Complete {
		t.Fatalf("resume after cancellation: res=%+v err=%v", res, err)
	}
}

// campaignHelperEnv marks the re-exec'd helper process of the chaos test.
const campaignHelperEnv = "DROIDRACER_CAMPAIGN_HELPER"

// TestCampaignHelperProcess is not a test: it is the subprocess body the
// kill/resume chaos test re-executes so an armed kill-point can kill a
// real process (os.Exit) without taking the test runner down with it.
func TestCampaignHelperProcess(t *testing.T) {
	dir := os.Getenv(campaignHelperEnv)
	if dir == "" {
		t.Skip("helper subprocess only")
	}
	if _, err := RunCampaign(context.Background(), paperCampaign(), dir); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// runCampaignProcess re-executes the test binary as a campaign helper
// against dir, with the given kill-point armed (empty = disarmed), and
// returns the process exit code.
func runCampaignProcess(t *testing.T, dir, killpoint string) int {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCampaignHelperProcess$")
	for _, kv := range os.Environ() {
		if strings.HasPrefix(kv, faultinject.EnvKillpoint+"=") ||
			strings.HasPrefix(kv, campaignHelperEnv+"=") {
			continue
		}
		cmd.Env = append(cmd.Env, kv)
	}
	cmd.Env = append(cmd.Env, campaignHelperEnv+"="+dir)
	if killpoint != "" {
		cmd.Env = append(cmd.Env, faultinject.EnvKillpoint+"="+killpoint)
	}
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("helper did not run: %v\n%s", err, out)
	}
	if code := ee.ExitCode(); code == faultinject.KillExitCode {
		return code
	}
	t.Fatalf("helper failed (not a kill-point): %v\n%s", err, out)
	return -1
}

// TestCampaignKillAndResumeYieldsIdenticalRaces is the chaos guarantee of
// the resilient service: a campaign SIGKILL'd at any journal kill-point —
// mid-append, mid-torn-write, right after an fsync — and then resumed
// produces exactly the race set (same identities, same classification
// counts) of an uninterrupted run.
func TestCampaignKillAndResumeYieldsIdenticalRaces(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	baseline, err := RunCampaign(context.Background(), paperCampaign(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	killpoints := []string{
		"journal.synced:1", // dies right after the header fsync
		"journal.synced:2", // dies after the first subtree's durability barrier
		"journal.synced:3",
		"journal.append:2", // entry buffered, never flushed: work re-done on resume
		"journal.append:4",
		"journal.torn:2", // half a line on disk: recovery must discard the tail
		"journal.torn:5",
	}
	for _, kp := range killpoints {
		kp := kp
		t.Run(kp, func(t *testing.T) {
			dir := t.TempDir()
			if code := runCampaignProcess(t, dir, kp); code != faultinject.KillExitCode {
				// The run finished before the armed hit count was reached;
				// the resume below must then be a pure journal rebuild.
				t.Logf("kill-point %s never fired (exit %d)", kp, code)
			}
			// Resume in-process with the kill-point disarmed.
			res, err := RunCampaign(context.Background(), paperCampaign(), dir)
			if err != nil {
				t.Fatalf("resume after %s: %v", kp, err)
			}
			if !res.Complete {
				t.Fatalf("resume after %s incomplete: %+v", kp, res)
			}
			if !reflect.DeepEqual(baseline.Races, res.Races) {
				t.Fatalf("race set diverged after kill at %s:\nbaseline %+v\nresumed  %+v",
					kp, baseline.Races, res.Races)
			}
			if baseline.Summary != res.Summary {
				t.Fatalf("classification counts diverged after kill at %s: %+v vs %+v",
					kp, baseline.Summary, res.Summary)
			}
			if journaled, err := os.Stat(filepath.Join(dir, JournalName)); err != nil || journaled.Size() == 0 {
				t.Fatalf("campaign journal missing after resume: %v", err)
			}
		})
	}
}
