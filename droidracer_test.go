package droidracer_test

import (
	"strings"
	"testing"

	"droidracer"
)

// counterActivity is a small racy app used to exercise the public API.
type counterActivity struct {
	droidracer.BaseActivity
}

func (a *counterActivity) OnCreate(c *droidracer.Ctx) {
	c.Write("Counter.value")
	c.AddButton("inc", true, func(c *droidracer.Ctx) {
		c.Fork("worker", func(b *droidracer.Ctx) {
			// Some private work before the racy update widens the window
			// in which two workers overlap.
			b.Read("Counter.config")
			b.Read("Counter.config")
			b.Read("Counter.config")
			b.Write("Counter.value") // races with any other unsynced access
		})
	})
}

func factory(seed int64) (*droidracer.Env, error) {
	opts := droidracer.DefaultEnvOptions()
	opts.Seed = seed
	env := droidracer.NewEnv(opts)
	env.RegisterActivity("Main", func() droidracer.Activity { return &counterActivity{} })
	if err := env.Launch("Main"); err != nil {
		env.Close()
		return nil, err
	}
	return env, nil
}

func TestPublicAPIEndToEnd(t *testing.T) {
	env, err := factory(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for _, ev := range []droidracer.UIEvent{{Kind: droidracer.EvClick, Widget: "inc"}, {Kind: droidracer.EvClick, Widget: "inc"}} {
		if err := env.Fire(ev); err != nil {
			t.Fatal(err)
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.Shutdown(); err != nil {
		t.Fatal(err)
	}
	result, err := droidracer.Analyze(env.Trace(), droidracer.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The two worker writes race with each other (multithreaded).
	found := false
	for _, r := range result.Races {
		if r.Loc == "Counter.value" && r.Category == droidracer.Multithreaded {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected multithreaded race on Counter.value; got %v", result.Races)
	}
}

func TestPublicAPIExplore(t *testing.T) {
	res, err := droidracer.Explore(factory, droidracer.ExploreOptions{MaxEvents: 2, MaxTests: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tests) == 0 {
		t.Fatal("no tests")
	}
	tr, err := droidracer.Replay(factory, 0, res.Tests[0].Sequence)
	if err != nil {
		t.Fatal(err)
	}
	if i, err := droidracer.ValidateTrace(tr); err != nil {
		t.Fatalf("op %d: %v", i, err)
	}
}

func TestPublicAPITraceRoundTrip(t *testing.T) {
	env, err := factory(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if err := env.Shutdown(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := droidracer.FormatTrace(&sb, env.Trace()); err != nil {
		t.Fatal(err)
	}
	back, err := droidracer.ParseTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != env.Trace().Len() {
		t.Fatalf("round trip %d ops, want %d", back.Len(), env.Trace().Len())
	}
	if _, err := droidracer.Analyze(back, droidracer.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIVerifyRace(t *testing.T) {
	env, err := factory(0)
	if err != nil {
		t.Fatal(err)
	}
	seq := []droidracer.UIEvent{{Kind: droidracer.EvClick, Widget: "inc"}, {Kind: droidracer.EvClick, Widget: "inc"}}
	for _, ev := range seq {
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		if err := env.Fire(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if err := env.Shutdown(); err != nil {
		t.Fatal(err)
	}
	result, err := droidracer.Analyze(env.Trace(), droidracer.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var target *droidracer.Race
	for i := range result.Races {
		if result.Races[i].Category == droidracer.Multithreaded {
			target = &result.Races[i]
		}
	}
	if target == nil {
		t.Fatalf("no multithreaded race in %v", result.Races)
	}
	v, err := droidracer.VerifyRace(factory, seq, result.Info, *target, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Confirmed {
		t.Fatalf("true race not confirmed in %d attempts", v.Attempts)
	}
}
