package apps

import (
	"fmt"

	"droidracer/internal/android"
	"droidracer/internal/trace"
)

// Extras give the application models the distinctive framework components
// the real apps are built from — started services, intent services,
// broadcast receivers, periodic timers, idle handlers, and the custom
// task queues §6 calls out in Messenger and FBReader. Their fields are
// private to each component, so they enrich the trace structure without
// perturbing Table 3.

// customQueueExtra drains n jobs through a raw (unmapped) custom task
// queue — the list-of-Runnables construct §6 observes in Messenger and
// FBReader. The worker is invisible to the analysis as a queue: only its
// lock and list-field operations appear, and NO-Q-PO chains its jobs.
// Adds one thread without a queue.
func customQueueExtra(name string, n int) func(c *android.Ctx) {
	return func(c *android.Ctx) {
		q := c.NewCustomQueue(name+".runnables", false)
		for i := 0; i < n; i++ {
			loc := trace.Loc(fmt.Sprintf("%s.job%d", name, i))
			q.Enqueue(c, fmt.Sprintf("job%d", i), func(w *android.Ctx) {
				w.Write(loc)
				w.Read(loc)
			})
		}
	}
}

// trackingServiceExtra models My Tracks' recording service: a started
// Service plus a periodic GPS sampling timer. Adds one queue thread (the
// timer) and 1 + ticks asynchronous tasks.
func trackingServiceExtra(ticks int) func(c *android.Ctx) {
	return func(c *android.Ctx) {
		c.Env.RegisterService("TrackRecording", func() android.Service {
			return &recordingService{}
		})
		c.StartService("TrackRecording")
		c.SchedulePeriodic("My Tracks.gpsSample", 20, ticks, func(tc *android.Ctx) {
			tc.Write("My Tracks.lastFix")
			tc.Read("My Tracks.lastFix")
		})
	}
}

type recordingService struct {
	android.BaseService
}

func (s *recordingService) OnCreate(c *android.Ctx)       { c.Write("TrackRecording.state") }
func (s *recordingService) OnStartCommand(c *android.Ctx) { c.Read("TrackRecording.state") }

// syncServiceExtra models K-9's folder synchronization as an
// IntentService handling `starts` sync requests on a dedicated worker.
// Adds one queue thread (the worker) and 2·starts asynchronous tasks.
func syncServiceExtra(starts int) func(c *android.Ctx) {
	return func(c *android.Ctx) {
		c.Env.RegisterService("FolderSync", func() android.Service {
			return &android.IntentService{Name: "FolderSync", OnHandleIntent: func(w *android.Ctx) {
				fieldSweep(w, "FolderSync.batch", 4)
			}}
		})
		for i := 0; i < starts; i++ {
			c.StartService("FolderSync")
		}
	}
}

// receiverExtra registers a broadcast receiver and delivers one broadcast
// from a worker thread (a sync-complete notification). Adds one plain
// thread and one asynchronous task.
func receiverExtra(action string) func(c *android.Ctx) {
	return func(c *android.Ctx) {
		c.RegisterReceiver(action, func(rc *android.Ctx, a string) {
			rc.Write(trace.Loc(a + ".received"))
		})
		c.Fork(action+"-notifier", func(b *android.Ctx) {
			fieldSweep(b, action+".payload", 2)
			b.SendBroadcast(action)
		})
	}
}

// idleExtra registers an idle handler warming a cache once the launch
// storm settles. Adds one asynchronous task.
func idleExtra(name string) func(c *android.Ctx) {
	return func(c *android.Ctx) {
		c.AddIdleHandler(name+".warmCaches", func(ic *android.Ctx) {
			fieldSweep(ic, name+".cache", 3)
		})
	}
}

// combineExtras runs several extras in order.
func combineExtras(extras ...func(c *android.Ctx)) func(c *android.Ctx) {
	return func(c *android.Ctx) {
		for _, ex := range extras {
			ex(c)
		}
	}
}
