package vc

import "fmt"

// Epoch is a single (context, time) component — the FastTrack-style
// compressed timestamp of one operation. The streaming engine stamps
// every operation with an epoch and answers most ordering queries by a
// single component comparison against a clock, falling back to full
// clock scans only when the epoch test is inconclusive.
type Epoch struct {
	C ID
	T uint64
}

// LEq reports whether the epoch is covered by clock v: the operation it
// stamps (and, by program order, every earlier operation of its
// context) happens before the point v describes.
func (e Epoch) LEq(v VC) bool { return e.T <= v.Get(e.C) }

// String renders the epoch as "c@t".
func (e Epoch) String() string { return fmt.Sprintf("%d@%d", e.C, e.T) }

// JoinCounted sets v to the pointwise maximum of v and o, like Join,
// and additionally reports how many components were raised. The
// streaming engine feeds the count into its join-work metrics, so the
// cost of clock transfers is observable without a second pass.
func (v VC) JoinCounted(o VC) int {
	raised := 0
	for id, t := range o {
		if t > v[id] {
			v[id] = t
			raised++
		}
	}
	return raised
}

// JoinEpoch raises the single component for e.C to at least e.T,
// reporting whether the clock changed. Joining an operation's epoch on
// top of its context view is how an edge transfers the source
// operation's own position (the view transfers its past).
func (v VC) JoinEpoch(e Epoch) bool {
	if e.T > v[e.C] {
		v[e.C] = e.T
		return true
	}
	return false
}

// Covers reports o ≤ v pointwise — the containment test the shadow
//-memory fast path runs against per-location summary clocks.
func (v VC) Covers(o VC) bool { return o.LessEq(v) }
