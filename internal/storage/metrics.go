package storage

import "droidracer/internal/obs"

// Storage failures are classified into one labeled counter family so a
// single alert ("storage errors > 0") covers the whole persistence
// stack; the op label localizes the failing layer and the kind label
// separates disk-full (operator-actionable) from bit rot
// (integrity-critical).
const errorsTotalName = "droidracer_storage_errors_total"

func errorsTotal(op, kind string) *obs.Counter {
	return obs.Default().Counter(errorsTotalName,
		"Storage-layer failures by operation and kind.",
		"op", op, "kind", kind)
}

func init() {
	// Pre-register the expected series so scrapes see the full matrix at
	// zero from process start, matching the registry convention.
	for _, op := range []string{
		"journal.write", "journal.sync", "journal.read",
		"spool.write", "spool.sync", "spool.read", "spool.rename",
	} {
		for _, kind := range []string{"enospc", "eio", "corrupt", "other"} {
			errorsTotal(op, kind)
		}
	}
}
