package hb

import (
	"sync"
	"sync/atomic"

	"droidracer/internal/bitset"
)

// This file implements the parallel closure engine (Config.Parallelism).
//
// The serial fixpoint (rules.go) is a Gauss-Seidel sweep: every edge
// points forward in trace order, so one descending pass over the rows
// closes the relation — when row i is processed, the rows of all its
// successors (higher indices) are already final for this pass. That
// dependency chain runs through the whole graph (program order alone
// chains a thread's nodes end to end), so sharding the sweep by *node
// ranges* yields wavefronts only as wide as the thread count.
//
// Instead the engine shards by *columns*: each worker owns a contiguous
// range of the 64-bit words that back every row's bitset and performs
// the same descending sweep over its own words. Bits never move between
// word ranges during a union, so workers share no mutable state:
// worker w reads successor rows' w-columns (which w itself finalized —
// all workers descend) and writes row i's w-columns (which only w
// touches). The successor *list* of a row spans all columns, so the
// planning step extracts it behind a barrier before workers start: into
// a plain index slice (per-successor iteration cost is the one part of
// the sweep that does not shard, so it is paid once in the plan, not
// once per worker), plus — for the TRANS-MT pass, which must also test
// membership — an immutable pass-start row snapshot.
//
// Determinism is stronger than "bitset unions commute": each pass
// reproduces the serial pass's output exactly. The planning step marks
// every row that can reach a changed row through pass-start edges
// (work[i]); rows the serial sweep would have processed beyond that set
// can only perform no-op unions (their successors' rows are unchanged,
// hence already absorbed), so both engines leave identical rows, edge
// counts, and change sets after every pass — and therefore identical
// rule attribution, since the FIFO/NOPRE step between passes sees
// identical state. TestParallelMatchesSerial anchors this bit-for-bit.
//
// The transitive work[i] set over-approximates serial needsWork, so
// each worker prunes it back per shard (anyChanged): skip a row unless
// it is seeded or some successor is in the seed or in the worker's own
// change set — which, because w is the only writer of its columns, is
// a precise record of the successor rows whose w-columns changed this
// pass. The pruned rows are exactly no-ops in w's shard, so the
// pass-exact argument is untouched, and the engine performs the same
// row/successor union work as the serial sweep.
//
// Budget: workers poll the shared checker behind a mutex every
// parPollRows processed rows and bail out through an atomic stop flag.
// A tripped parallel build, like a tripped serial one, leaves a sound
// under-approximation of ≼ (workers only ever add valid closure bits),
// but which bits made it in before the trip depends on timing — only
// completed builds are guaranteed byte-identical across engines.

// parPollRows is how many processed rows a worker handles between
// wall-clock/context polls of the shared budget checker.
const parPollRows = 64

// closureWorkers resolves Config.Parallelism against the graph shape:
// there is no point in more workers than 64-bit words per row.
func (g *Graph) closureWorkers() int {
	w := g.cfg.Parallelism
	if w <= 1 {
		return 1
	}
	if words := (len(g.nodes) + 63) / 64; w > words {
		w = words
	}
	if w < 1 {
		w = 1
	}
	return w
}

// fixpointParallel mirrors fixpoint with the closure passes executed by
// the column-sharded worker pool. The FIFO/NOPRE step between passes
// stays serial — it is O(tasks²), trivial next to the closures.
func (g *Graph) fixpointParallel(workers int) {
	n := len(g.nodes)
	pc := newParCloser(g, workers)
	dirty := bitset.New(n)
	for i := 0; i < n; i++ {
		dirty.Set(i)
	}
	for dirty.Any() && g.check() {
		next := bitset.New(n)
		pc.closeST(dirty, next)
		if g.buildErr == nil && !g.cfg.STOnly {
			pc.closeMT(dirty, next)
		}
		if g.buildErr == nil && (g.cfg.FIFO || g.cfg.NoPre) {
			g.applyTaskRules(next)
		}
		dirty = next
	}
}

// parCloser owns the scratch state of one parallel fixpoint: the word
// shards, the per-pass work plan with its extracted successor lists,
// the closeMT row snapshots, and the per-worker change/edge
// accumulators that keep the hot loops free of shared writes.
type parCloser struct {
	g      *Graph
	n      int
	lo, hi []int // word range [lo[w], hi[w]) per worker

	work    []bool        // rows to process this pass
	reach   *bitset.Set   // rows reaching the pass's seed set (planning)
	succ    [][]int32     // per work row: successors > row, pass-start
	succBuf []int32       // backing store for succ, reused across passes
	snap    []*bitset.Set // closeMT pass-start row snapshots (Has checks)

	changed []*bitset.Set  // per-worker rows whose shard words changed
	edges   []atomic.Int64 // per-worker edge deltas, readable by poll
	acc     []*bitset.Set  // per-worker closeMT accumulators

	stop    atomic.Bool
	pollMu  sync.Mutex
	pollErr error
}

func newParCloser(g *Graph, workers int) *parCloser {
	n := len(g.nodes)
	words := (n + 63) / 64
	pc := &parCloser{
		g:       g,
		n:       n,
		work:    make([]bool, n),
		reach:   bitset.New(n),
		succ:    make([][]int32, n),
		snap:    make([]*bitset.Set, n),
		changed: make([]*bitset.Set, workers),
		edges:   make([]atomic.Int64, workers),
		acc:     make([]*bitset.Set, workers),
	}
	for w := 0; w < workers; w++ {
		pc.lo = append(pc.lo, w*words/workers)
		pc.hi = append(pc.hi, (w+1)*words/workers)
		pc.changed[w] = bitset.New(n)
		pc.acc[w] = bitset.New(n)
	}
	return pc
}

// run executes fn once per worker shard and waits for all of them; the
// WaitGroup barrier orders each phase's writes before the next phase's
// reads.
func (pc *parCloser) run(fn func(w int)) {
	var wg sync.WaitGroup
	for w := range pc.lo {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// poll consults the shared budget checker; false stops the pass. It is
// called by workers, so the non-concurrency-safe checker sits behind a
// mutex and the verdict fans out through the atomic stop flag. Besides
// the wall clock and context it enforces MaxClosureEdges against the
// merged count plus every worker's in-flight delta — the same bound the
// serial sweep checks per row, at per-poll granularity.
func (pc *parCloser) poll() bool {
	if pc.stop.Load() {
		return false
	}
	pc.pollMu.Lock()
	defer pc.pollMu.Unlock()
	if pc.stop.Load() {
		return false
	}
	err := pc.g.ck.CheckNow()
	if err == nil {
		total := pc.g.edges
		for w := range pc.edges {
			total += int(pc.edges[w].Load())
		}
		err = pc.g.ck.Edges(total)
	}
	if err != nil {
		pc.pollErr = err
		pc.stop.Store(true)
		return false
	}
	return true
}

// merge folds the per-worker results of one pass into the shared state
// on the coordinating goroutine: changed rows into next, edge deltas
// into the budgeted counter, and a budget trip into buildErr.
func (pc *parCloser) merge(next *bitset.Set) {
	for w := range pc.lo {
		next.UnionWith(pc.changed[w])
		pc.changed[w].Reset()
		pc.g.edges += int(pc.edges[w].Swap(0))
	}
	if pc.pollErr != nil && pc.g.buildErr == nil {
		pc.g.buildErr = pc.pollErr
		pc.pollErr = nil
	}
}

// plan computes the pass's work set: row i is processed when it changed
// last pass (seed) or reaches — through pass-start edges — a row that
// did. reach is built in one descending sweep: successors are visited
// before their predecessors, so membership propagates backward along
// edges in a single pass. Work rows get their pass-start successor list
// (the bits above the diagonal) extracted into an index slice;
// includeMT widens rows to st ∪ mt for the TRANS-MT pass and also keeps
// the snapshot bitset closeMT's membership filter needs. Serial and
// cheap: one O(n²/64) scan plus one iteration per successor, a small
// constant next to the per-worker sweeps it saves that work.
func (pc *parCloser) plan(seed *bitset.Set, includeMT bool) {
	g := pc.g
	r := pc.reach
	r.CopyFrom(seed)
	pc.succBuf = pc.succBuf[:0]
	for i := pc.n - 1; i >= 0; i-- {
		reaches := g.st[i].IntersectsWith(r)
		if !reaches && includeMT {
			reaches = g.mt[i].IntersectsWith(r)
		}
		if reaches {
			r.Set(i)
		}
		pc.work[i] = reaches || seed.Has(i)
		if !pc.work[i] {
			continue
		}
		row := g.st[i]
		if includeMT {
			if pc.snap[i] == nil {
				pc.snap[i] = bitset.New(pc.n)
			}
			pc.snap[i].CopyFrom(g.st[i])
			pc.snap[i].UnionWith(g.mt[i])
			row = pc.snap[i]
		}
		// Appends may grow succBuf away from earlier rows' backing
		// array; their slices keep the already-written data, and the
		// next pass's truncation only recycles the final array.
		start := len(pc.succBuf)
		for k := row.NextSet(i + 1); k != -1; k = row.NextSet(k + 1) {
			pc.succBuf = append(pc.succBuf, int32(k))
		}
		pc.succ[i] = pc.succBuf[start:len(pc.succBuf):len(pc.succBuf)]
	}
}

// anyChanged reports whether any successor row may have changed in
// worker w's columns since row i last absorbed them: changed last pass
// in any column (in seed) or changed this pass in w's columns (in
// changed[w], which w itself maintains — and, sweeping descending, has
// already finalized for every row above i). When it returns false the
// union for row i is provably a no-op in w's shard and can be skipped,
// recovering the serial needsWork pruning that plan()'s transitive
// reach over-approximates.
func (pc *parCloser) anyChanged(succ []int32, seed *bitset.Set, w int) bool {
	ch := pc.changed[w]
	for _, k := range succ {
		if seed.Has(int(k)) || ch.Has(int(k)) {
			return true
		}
	}
	return false
}

// closeST is the parallel TRANS-ST pass: the serial closeST sweep with
// each worker unioning successor rows into its own word range.
func (pc *parCloser) closeST(dirty, next *bitset.Set) {
	pc.plan(dirty, false)
	budgeted := pc.g.ck != nil
	pc.run(func(w int) {
		g := pc.g
		lo, hi := pc.lo[w], pc.hi[w]
		polled := 0
		for i := pc.n - 1; i >= 0; i-- {
			if !pc.work[i] {
				continue
			}
			if budgeted {
				if pc.stop.Load() {
					return
				}
				if polled++; polled%parPollRows == 0 && !pc.poll() {
					return
				}
			}
			succ := pc.succ[i]
			// Rows in dirty gained successors last pass that were never
			// absorbed; everything else only needs reprocessing when a
			// successor's shard columns actually changed.
			if !dirty.Has(i) && !pc.anyChanged(succ, dirty, w) {
				continue
			}
			row := g.st[i]
			before := 0
			if budgeted {
				before = row.CountWordRange(lo, hi)
			}
			rowChanged := false
			for _, k := range succ {
				if row.UnionWordRange(g.st[k], lo, hi) {
					rowChanged = true
				}
			}
			if rowChanged {
				pc.changed[w].Set(i)
				if budgeted {
					pc.edges[w].Add(int64(row.CountWordRange(lo, hi) - before))
				}
			}
		}
	})
	pc.merge(next)
}

// closeMT is the parallel TRANS-MT pass. Each worker accumulates the
// combined ≼ rows of row i's successors into its word range of a
// private scratch set, then applies the different-thread filter to the
// accumulated bits it owns — exactly the serial loop, restricted to one
// column shard.
func (pc *parCloser) closeMT(dirty, next *bitset.Set) {
	// The serial sweep consults rows changed earlier in this iteration
	// (closeST's output) as well as last iteration's; seed with both.
	seed := dirty.Clone()
	seed.UnionWith(next)
	pc.plan(seed, true)
	budgeted := pc.g.ck != nil
	pc.run(func(w int) {
		g := pc.g
		lo, hi := pc.lo[w], pc.hi[w]
		hiBit := hi * 64
		if hiBit > pc.n {
			hiBit = pc.n
		}
		acc := pc.acc[w]
		polled := 0
		for i := pc.n - 1; i >= 0; i-- {
			if !pc.work[i] {
				continue
			}
			if budgeted {
				if pc.stop.Load() {
					return
				}
				if polled++; polled%parPollRows == 0 && !pc.poll() {
					return
				}
			}
			succ := pc.succ[i]
			if len(succ) == 0 {
				continue
			}
			// seed covers rows whose own relation grew (new successors);
			// otherwise skip unless a successor changed in this shard.
			if !seed.Has(i) && !pc.anyChanged(succ, seed, w) {
				continue
			}
			sn := pc.snap[i]
			acc.ResetWordRange(lo, hi)
			for _, k := range succ {
				acc.UnionWordRange(g.st[k], lo, hi)
				acc.UnionWordRange(g.mt[k], lo, hi)
			}
			ti := g.nodes[i].Thread
			mti := g.mt[i]
			start := lo * 64
			if i+1 > start {
				start = i + 1
			}
			rowEdges := 0
			for j := acc.NextSet(start); j != -1 && j < hiBit; j = acc.NextSet(j + 1) {
				if sn.Has(j) || mti.Has(j) {
					continue
				}
				if g.cfg.Naive || g.nodes[j].Thread != ti {
					mti.Set(j)
					rowEdges++
				}
			}
			if rowEdges > 0 {
				pc.changed[w].Set(i)
				pc.edges[w].Add(int64(rowEdges))
			}
		}
	})
	pc.merge(next)
}
