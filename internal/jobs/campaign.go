package jobs

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"

	"droidracer/internal/android"
	"droidracer/internal/core"
	"droidracer/internal/explorer"
	"droidracer/internal/journal"
	"droidracer/internal/race"
	"droidracer/internal/trace"
)

// Campaign is one restartable exploration campaign: a bound-k DFS over
// an app model's UI events (§5) with every recorded test analyzed for
// races as it is produced. Its progress lives in a write-ahead journal
// under a state directory, so a crash — power loss, OOM-kill, SIGKILL
// mid-drain — loses at most the subtree currently being explored; a
// resume skips every journaled subtree and merges the journaled race
// results with the newly computed ones.
//
// Resume invariant: the explorer marks a subtree done only after all of
// its tests are durably journaled (explorer.CheckpointSink), so
// union(journaled races, re-explored races) over any crash/resume
// schedule equals the race set of an uninterrupted run.
type Campaign struct {
	// Name identifies the campaign; a journal records it and refuses to
	// resume under a different name.
	Name string
	// Factory builds the app environment per exploration run.
	Factory explorer.AppFactory
	// Explore bounds the DFS. Checkpoint and OnTest are owned by the
	// campaign runner and must be nil.
	Explore explorer.Options
	// Analyze configures the per-test race analysis.
	Analyze core.Options
}

// RaceID identifies a race stably across runs and replays: the
// classification, the location, and the replay-stable access keys of the
// two accesses (see race.AccessKey). Journaled races from a pre-crash
// run are merged with post-resume races by this identity.
type RaceID struct {
	Cat      int    `json:"cat"`
	Category string `json:"category"`
	Loc      string `json:"loc"`
	First    string `json:"first"`
	Second   string `json:"second"`
}

func (id RaceID) less(o RaceID) bool {
	if id.Cat != o.Cat {
		return id.Cat < o.Cat
	}
	if id.Loc != o.Loc {
		return id.Loc < o.Loc
	}
	if id.First != o.First {
		return id.First < o.First
	}
	return id.Second < o.Second
}

// CampaignResult is the merged outcome of a (possibly resumed) campaign.
type CampaignResult struct {
	// Name echoes the campaign name.
	Name string
	// Races is the deduplicated union of races across all tests, sorted.
	Races []RaceID
	// Summary tallies Races by category — the classification counts the
	// chaos tests compare across kill/resume schedules.
	Summary race.Summary
	// Tests counts distinct recorded tests (journaled + new).
	Tests int
	// ResumedTests counts tests recovered from the journal rather than
	// re-executed.
	ResumedTests int
	// SequencesExplored counts DFS prefixes executed in this process
	// (resumed subtrees are skipped, not re-counted).
	SequencesExplored int
	// Resumed reports that journaled pre-crash work contributed.
	Resumed bool
	// Complete reports that the DFS ran to the bound; false when a
	// budget trip or drain checkpointed mid-campaign.
	Complete bool
	// Recovered reports what journal recovery kept and discarded when
	// this run reopened the state directory (zero on a fresh start):
	// a non-zero torn tail means the previous incarnation died
	// mid-append and that work will be re-explored.
	Recovered journal.RecoveryStats
}

// Journal entry payloads.
type campaignHeader struct {
	Name      string `json:"name"`
	MaxEvents int    `json:"maxEvents"`
	Seed      int64  `json:"seed"`
	RecordAll bool   `json:"recordAll"`
}

type testEntry struct {
	Key   string   `json:"key"`
	Mode  string   `json:"mode"` // "full", "degraded", "error"
	Races []RaceID `json:"races,omitempty"`
	Err   string   `json:"err,omitempty"`
}

type doneEntry struct {
	Key string `json:"key"`
}

// JournalName is the campaign journal file inside a state directory.
const JournalName = "campaign.journal"

// seqKey renders an event sequence as its stable journal key, e.g.
// "click(play);BACK" ("<root>" for the empty prefix, which is also a
// DFS node).
func seqKey(seq []android.UIEvent) string {
	if len(seq) == 0 {
		return "<root>"
	}
	s := ""
	for i, ev := range seq {
		if i > 0 {
			s += ";"
		}
		s += ev.String()
	}
	return s
}

// Header reads the campaign identity journaled under stateDir: the
// campaign (= app model) name and the exploration options the campaign
// was started with. Resume front-ends use it to rebuild the Campaign
// value without the caller re-specifying the original flags.
func Header(stateDir string) (string, explorer.Options, error) {
	st, err := recoverCampaign(filepath.Join(stateDir, JournalName))
	if err != nil {
		return "", explorer.Options{}, err
	}
	if st.header == nil {
		return "", explorer.Options{}, fmt.Errorf("jobs: %s holds no campaign journal", stateDir)
	}
	return st.header.Name, explorer.Options{
		MaxEvents: st.header.MaxEvents,
		Seed:      st.header.Seed,
		RecordAll: st.header.RecordAll,
	}, nil
}

// campaignState is what recovery reads back from a journal.
type campaignState struct {
	header   *campaignHeader
	done     map[string]bool
	tests    map[string]testEntry
	complete bool
}

func recoverCampaign(path string) (*campaignState, error) {
	entries, err := journal.Recover(path)
	if err != nil {
		return nil, err
	}
	st := &campaignState{done: make(map[string]bool), tests: make(map[string]testEntry)}
	for _, e := range entries {
		switch e.Type {
		case "campaign":
			var h campaignHeader
			if err := e.Decode(&h); err != nil {
				return nil, err
			}
			st.header = &h
		case "test":
			var t testEntry
			if err := e.Decode(&t); err != nil {
				return nil, err
			}
			// A crash between a test entry and its subtree's done marker
			// re-records the test on resume; last write wins.
			st.tests[t.Key] = t
		case "done":
			var d doneEntry
			if err := e.Decode(&d); err != nil {
				return nil, err
			}
			st.done[d.Key] = true
		case "campaign-done":
			st.complete = true
		}
	}
	return st, nil
}

// journalSink adapts the journal to explorer.CheckpointSink: done
// markers are fsync'd before SubtreeDone returns, making "skip this
// subtree on resume" safe.
type journalSink struct {
	w    *journal.Writer
	done map[string]bool
}

func (s *journalSink) SkipSubtree(prefix []android.UIEvent) bool {
	return s.done[seqKey(prefix)]
}

func (s *journalSink) SubtreeDone(prefix []android.UIEvent) error {
	key := seqKey(prefix)
	if err := s.w.Append("done", doneEntry{Key: key}); err != nil {
		return err
	}
	// The done marker is the durability barrier: every test entry of the
	// subtree precedes it in the journal, so one fsync covers them all.
	if err := s.w.Sync(); err != nil {
		return err
	}
	s.done[key] = true
	return nil
}

// RunCampaign executes (or resumes) a campaign with its journal under
// stateDir. A first run explores from scratch, journaling as it goes; a
// resume validates the journal header against c, skips completed
// subtrees, and merges journaled test results. A campaign whose journal
// already holds the campaign-done marker is rebuilt entirely from the
// journal without touching the app model (idempotent re-resume).
//
// On a budget trip or context cancellation the work completed so far is
// journaled and the partial CampaignResult is returned together with the
// error — the state directory is always left resumable.
func RunCampaign(ctx context.Context, c Campaign, stateDir string) (*CampaignResult, error) {
	if c.Explore.Checkpoint != nil || c.Explore.OnTest != nil {
		return nil, fmt.Errorf("jobs: campaign %s: Explore.Checkpoint/OnTest are owned by the campaign runner", c.Name)
	}
	path := filepath.Join(stateDir, JournalName)
	st, err := recoverCampaign(path)
	if err != nil {
		return nil, err
	}
	if st.header != nil {
		h := *st.header
		if h.Name != c.Name || h.MaxEvents != c.Explore.MaxEvents ||
			h.Seed != c.Explore.Seed || h.RecordAll != c.Explore.RecordAll {
			return nil, fmt.Errorf("jobs: state dir %s holds campaign %q (k=%d, seed=%d), not %q (k=%d, seed=%d)",
				stateDir, h.Name, h.MaxEvents, h.Seed, c.Name, c.Explore.MaxEvents, c.Explore.Seed)
		}
	}
	resumedTests := len(st.tests)
	if st.complete {
		// Nothing left to explore; the journal is the result.
		res := mergeCampaign(c.Name, st.tests, nil, resumedTests, 0)
		res.Resumed = true
		res.Complete = true
		return res, nil
	}
	w, err := journal.Create(path)
	if err != nil {
		return nil, err
	}
	defer w.Close()
	if st.header == nil {
		if err := w.Append("campaign", campaignHeader{
			Name: c.Name, MaxEvents: c.Explore.MaxEvents,
			Seed: c.Explore.Seed, RecordAll: c.Explore.RecordAll,
		}); err != nil {
			return nil, err
		}
		if err := w.Sync(); err != nil {
			return nil, err
		}
	}

	newTests := make(map[string]testEntry)
	opts := c.Explore
	opts.Checkpoint = &journalSink{w: w, done: st.done}
	opts.OnTest = func(t *explorer.Test) error {
		entry := analyzeTest(ctx, c.Analyze, t)
		newTests[entry.Key] = entry
		// Durable before the subtree's done marker (explorer calls
		// SubtreeDone, which syncs, strictly afterwards); the explicit
		// append keeps the entry inside the next sync's chunk.
		return w.Append("test", entry)
	}

	res, xerr := explorer.ExploreContext(ctx, c.Factory, opts)
	explored := 0
	if res != nil {
		explored = res.SequencesExplored
	}
	if xerr != nil {
		// Checkpointed mid-campaign (budget, cancellation, model error):
		// persist what we have and hand back a resumable partial result.
		w.Sync()
		out := mergeCampaign(c.Name, st.tests, newTests, resumedTests, explored)
		out.Resumed = resumedTests > 0
		out.Recovered = w.Recovered()
		return out, xerr
	}
	if err := w.Append("campaign-done", struct{}{}); err != nil {
		return nil, err
	}
	if err := w.Sync(); err != nil {
		return nil, err
	}
	out := mergeCampaign(c.Name, st.tests, newTests, resumedTests, explored)
	out.Resumed = resumedTests > 0
	out.Complete = true
	out.Recovered = w.Recovered()
	return out, nil
}

// analyzeTest runs the race analysis on one recorded test and renders
// the journal entry. Analysis failure is recorded, not fatal: the
// campaign's job is to preserve exploration work, and a deterministic
// analysis error will recur identically on resume.
func analyzeTest(ctx context.Context, opts core.Options, t *explorer.Test) testEntry {
	entry := testEntry{Key: seqKey(t.Sequence), Mode: "full"}
	res, err := core.AnalyzeContext(ctx, t.Trace, opts)
	if err != nil || res == nil {
		entry.Mode = "error"
		if err != nil {
			entry.Err = err.Error()
		}
		return entry
	}
	if res.Degraded {
		entry.Mode = "degraded"
	}
	entry.Races = raceIDs(res, t.Trace)
	return entry
}

// raceIDs converts detected races to their replay-stable identities.
// When the access-key computation is unavailable (no structural info in
// a degraded result and re-annotation fails), the trace indices — which
// are deterministic for a fixed exploration seed — stand in.
func raceIDs(res *core.Result, tr *trace.Trace) []RaceID {
	info := res.Info
	if info == nil {
		info, _ = trace.Analyze(tr)
	}
	ids := make([]RaceID, 0, len(res.Races))
	for _, r := range res.Races {
		id := RaceID{Cat: int(r.Category), Category: r.Category.String(), Loc: string(r.Loc)}
		if info != nil {
			if ka, err := race.KeyOf(info, r.First); err == nil {
				id.First = accessKeyString(ka)
			}
			if kb, err := race.KeyOf(info, r.Second); err == nil {
				id.Second = accessKeyString(kb)
			}
		}
		if id.First == "" {
			id.First = fmt.Sprintf("@%d", r.First)
		}
		if id.Second == "" {
			id.Second = fmt.Sprintf("@%d", r.Second)
		}
		ids = append(ids, id)
	}
	return ids
}

func accessKeyString(k race.AccessKey) string {
	return fmt.Sprintf("%s|%s|t%d|%d", k.Loc, k.TaskBase, k.Thread, k.Ordinal)
}

// mergeCampaign unions journaled and new test results into the final
// deduplicated, sorted race set.
func mergeCampaign(name string, old, new map[string]testEntry, resumedTests, explored int) *CampaignResult {
	seen := make(map[RaceID]bool)
	var races []RaceID
	var sum race.Summary
	tests := 0
	add := func(m map[string]testEntry) {
		for _, t := range m {
			tests++
			for _, id := range t.Races {
				if seen[id] {
					continue
				}
				seen[id] = true
				races = append(races, id)
				switch race.Category(id.Cat) {
				case race.Multithreaded:
					sum.Multithreaded++
				case race.CoEnabled:
					sum.CoEnabled++
				case race.Delayed:
					sum.Delayed++
				case race.CrossPosted:
					sum.CrossPosted++
				default:
					sum.Unknown++
				}
			}
		}
	}
	// New results win over journaled ones for the same key (a test
	// re-recorded after a crash between its entry and the done marker).
	merged := make(map[string]testEntry, len(old)+len(new))
	for k, v := range old {
		merged[k] = v
	}
	for k, v := range new {
		merged[k] = v
	}
	add(merged)
	sort.Slice(races, func(i, j int) bool { return races[i].less(races[j]) })
	return &CampaignResult{
		Name:              name,
		Races:             races,
		Summary:           sum,
		Tests:             tests,
		ResumedTests:      resumedTests,
		SequencesExplored: explored,
	}
}
