package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"droidracer/internal/core"
	"droidracer/internal/faultinject"
	"droidracer/internal/jobs"
	"droidracer/internal/journal"
	"droidracer/internal/trace"
)

// armStorageFault arms a disk-fault spec for this test and resets the
// package-global hit counters so every test starts its own arithmetic.
func armStorageFault(t *testing.T, spec string) {
	t.Helper()
	faultinject.ResetStorageHits()
	t.Setenv(faultinject.EnvStorageFault, spec)
	t.Cleanup(faultinject.ResetStorageHits)
}

// TestStorageErrRejectsAndUnreadies: a poisoned journal (sticky
// Config.StorageErr) turns every fresh submission away with an honest
// 503 storage-degraded + Retry-After — never a 202 whose completion
// record could not be made durable — and flips /readyz to 503 so the
// gateway routes around the backend.
func TestStorageErrRejectsAndUnreadies(t *testing.T) {
	poison := errors.New("journal: fsync: no space left on device")
	h := newHarness(t, jobs.Config{Workers: 1}, Config{StorageErr: func() error { return poison }})
	body := figure4Body(t)
	resp, httpResp := h.post(t, body, nil)
	if httpResp.StatusCode != http.StatusServiceUnavailable || resp.Reason != RejectStorageDegraded {
		t.Fatalf("submit on poisoned storage = %d %+v, want 503 %s", httpResp.StatusCode, resp, RejectStorageDegraded)
	}
	if httpResp.Header.Get("Retry-After") == "" || resp.RetryAfterSeconds < 1 {
		t.Fatalf("storage rejection without honest Retry-After: header=%q body=%+v",
			httpResp.Header.Get("Retry-After"), resp)
	}
	// The refusal happens before the spool write: nothing for a restart
	// sweep to resurrect.
	if _, err := os.Stat(filepath.Join(h.spool, jobName(IdempotencyKey(body)))); !os.IsNotExist(err) {
		t.Fatalf("refused submission reached the spool (err=%v)", err)
	}
	rz, err := http.Get(h.ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	reason, _ := io.ReadAll(rz.Body)
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable || string(reason) != "storage\n" {
		t.Fatalf("readyz = %d %q, want 503 storage", rz.StatusCode, reason)
	}
}

// TestSpoolFaultDegradesThenSelfHeals: an ENOSPC window on spool fsync
// degrades the backend (503 storage-degraded, readyz 503 storage), and
// once space returns the readiness probe's tiny durable write detects
// recovery in-process — no restart — after which the same body is
// accepted and analyzed.
func TestSpoolFaultDegradesThenSelfHeals(t *testing.T) {
	h := newHarness(t, jobs.Config{Workers: 1}, Config{})
	// Hit 1 is this submission's writeDurable fsync; hit 2 the first
	// readiness probe; hit 3 onward the disk has space again.
	armStorageFault(t, "spool.sync:enospc:1-2")
	body := figure4Body(t)
	resp, httpResp := h.post(t, body, nil)
	if httpResp.StatusCode != http.StatusServiceUnavailable || resp.Reason != RejectStorageDegraded {
		t.Fatalf("submit into ENOSPC = %d %+v, want 503 %s", httpResp.StatusCode, resp, RejectStorageDegraded)
	}
	if resp.RetryAfterSeconds < 1 {
		t.Fatalf("ENOSPC rejection without Retry-After: %+v", resp)
	}
	rz, err := http.Get(h.ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while degraded = %d, want 503", rz.StatusCode)
	}
	// Space returns: the next probe succeeds and clears the degradation
	// without a restart.
	rz, err = http.Get(h.ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusOK {
		t.Fatalf("readyz after heal = %d, want 200", rz.StatusCode)
	}
	resp, httpResp = h.post(t, body, nil)
	if httpResp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmission after heal = %d %+v, want 202", httpResp.StatusCode, resp)
	}
	done := h.waitStatus(t, resp.Job, StatusDone)
	if done.Digest == "" {
		t.Fatalf("healed submission finished without a digest: %+v", done)
	}
}

// TestServerJournalENOSPC is the ENOSPC acceptance proof at the daemon
// level: the journal device fills (fsync ENOSPC) while a job is being
// recorded. The writer poisons itself, the in-flight job still
// completes in memory and answers its client, every later submission is
// refused 503 storage-degraded with Retry-After — never acknowledged
// non-durably — and the on-disk journal stays uncorrupted. A restart
// with space available recovers cleanly and accepts again.
func TestServerJournalENOSPC(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	dir := t.TempDir()
	bodyA := figure4Body(t)
	// Same trace under a comment line: identical analysis, distinct
	// content key.
	bodyB := append([]byte("# enospc variant\n"), bodyA...)
	keyA, keyB := IdempotencyKey(bodyA), IdempotencyKey(bodyB)

	// Incarnation 1: journal fsync hits ENOSPC from hit 2 onward — hit 1
	// is Create's truncation sync, hit 2 the first job record's Sync.
	cmd, log := helperCmd(t, dir, false,
		faultinject.EnvStorageFault+"=journal.sync:enospc:2")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()
	base := "http://" + waitAddr(t, dir, log)
	c := &Client{BaseURL: base, BaseBackoff: 10 * time.Millisecond, MaxAttempts: 4, Seed: 11}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, _, err := c.Submit(ctx, bodyA)
	if err != nil {
		t.Fatalf("pre-fault submission refused: %v\n%s", err, log.String())
	}
	if resp.Job != keyA {
		t.Fatalf("job %q, want %q", resp.Job, keyA)
	}
	// The in-flight job completes in memory and answers, even though its
	// completion record could not be fsync'd.
	var done *SubmitResponse
	for deadline := time.Now().Add(20 * time.Second); time.Now().Before(deadline); {
		if done, err = c.Status(ctx, keyA); err == nil && done.Status == StatusDone {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if done == nil || done.Status != StatusDone {
		t.Fatalf("in-flight job never completed in memory: %+v\n%s", done, log.String())
	}

	// The poisoned daemon must refuse fresh work honestly: 503 with a
	// retry hint, never a 202 it cannot make durable.
	pr, err := http.Post(base+"/v1/jobs", "text/plain", bytes.NewReader(bodyB))
	if err != nil {
		t.Fatal(err)
	}
	var rej SubmitResponse
	if err := json.NewDecoder(pr.Body).Decode(&rej); err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusServiceUnavailable || rej.Reason != RejectStorageDegraded {
		t.Fatalf("submit on poisoned journal = %d %+v, want 503 %s\n%s",
			pr.StatusCode, rej, RejectStorageDegraded, log.String())
	}
	if pr.Header.Get("Retry-After") == "" {
		t.Fatalf("storage rejection without Retry-After header: %+v", rej)
	}
	if _, err := os.Stat(filepath.Join(dir, "spool", jobName(keyB))); !os.IsNotExist(err) {
		t.Fatalf("refused submission reached the spool (err=%v)", err)
	}
	rz, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz on poisoned journal = %d, want 503", rz.StatusCode)
	}
	cmd.Process.Kill()
	cmd.Wait()

	// The disk-full journal is degraded, never corrupted: recovery reads
	// a clean (possibly shorter) prefix.
	jpath := filepath.Join(dir, "state", "daemon.journal")
	if _, stats, err := journal.RecoverStats(jpath); err != nil || stats.Corrupt != 0 {
		t.Fatalf("journal after ENOSPC: corrupt=%d err=%v, want intact", stats.Corrupt, err)
	}

	// Incarnation 2: space is back (no fault). The daemon recovers and
	// accepts again; the refused body analyzes to the independent answer.
	if err := os.Remove(filepath.Join(dir, "addr")); err != nil {
		t.Fatal(err)
	}
	cmd2, log2 := helperCmd(t, dir, false)
	if err := cmd2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	base2 := "http://" + waitAddr(t, dir, log2)
	c2 := &Client{BaseURL: base2, BaseBackoff: 10 * time.Millisecond, MaxAttempts: 8, Seed: 12}
	if _, _, err := c2.Submit(ctx, bodyB); err != nil {
		t.Fatalf("post-restart submission refused: %v\n%s", err, log2.String())
	}
	for deadline := time.Now().Add(20 * time.Second); ; {
		if done, err = c2.Status(ctx, keyB); err == nil && done.Status == StatusDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-restart job never completed: %+v\n%s", done, log2.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
	cmd2.Process.Kill()
	cmd2.Wait()

	// Converged journal: uncorrupted, exactly one record per key, digest
	// matching an independent local analysis.
	entries, stats, err := journal.RecoverStats(jpath)
	if err != nil || stats.Corrupt != 0 {
		t.Fatalf("journal after recovery: corrupt=%d err=%v", stats.Corrupt, err)
	}
	perKey := map[string]int{}
	var digestB string
	for _, e := range entries {
		if e.Type != "job" {
			continue
		}
		var je jobs.JobEntry
		if err := e.Decode(&je); err != nil {
			t.Fatal(err)
		}
		perKey[je.Name]++
		if je.Name == jobName(keyB) {
			digestB = je.Digest
		}
	}
	if perKey[jobName(keyB)] != 1 {
		t.Fatalf("journal records per key = %v, want exactly one for %s", perKey, keyB)
	}
	tr, err := trace.ParseBytes(bodyB)
	if err != nil {
		t.Fatal(err)
	}
	localRes, err := core.AnalyzeContext(context.Background(), tr, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if want := jobs.ResultDigest(localRes); digestB != want || want == "" {
		t.Fatalf("journaled digest %q != local digest %q\n%s", digestB, want, fmt.Sprint(perKey))
	}
}
