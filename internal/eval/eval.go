// Package eval drives the paper's evaluation (§6): it runs each
// application model's representative test through the full DroidRacer
// pipeline — UI exploration, trace generation, happens-before analysis,
// race detection and classification — and tallies the rows of Table 2
// (trace statistics) and Table 3 (race reports with true positives), plus
// the performance measurements (§6 "Performance"): merged-graph size
// relative to trace length, analysis time, and trace-generation overhead.
package eval

import (
	"fmt"
	"time"

	"droidracer/internal/android"
	"droidracer/internal/apps"
	"droidracer/internal/budget"
	"droidracer/internal/explorer"
	"droidracer/internal/hb"
	"droidracer/internal/race"
	"droidracer/internal/semantics"
	"droidracer/internal/trace"
)

// CategoryCount pairs reported races with confirmed true positives for one
// category. True is -1 when ground truth is unavailable (proprietary
// applications).
type CategoryCount struct {
	Reported int
	True     int
}

// AppResult is the evaluation outcome for one application model.
type AppResult struct {
	App   apps.App
	Test  *explorer.Test
	Stats trace.Stats

	// Races are the deduplicated reports (one per location and category).
	Races []race.Race

	Multithreaded CategoryCount
	CrossPosted   CategoryCount
	CoEnabled     CategoryCount
	Delayed       CategoryCount
	Unknown       CategoryCount

	// Performance figures for the §6 paragraphs.
	GraphNodes    int
	MergeRatio    float64 // GraphNodes / Stats.Length
	AnalysisTime  time.Duration
	UnmergedNodes int
}

// TotalReported sums reported races over all categories.
func (r *AppResult) TotalReported() int {
	return r.Multithreaded.Reported + r.CrossPosted.Reported +
		r.CoEnabled.Reported + r.Delayed.Reported + r.Unknown.Reported
}

// TotalTrue sums confirmed true positives (0 when untriaged).
func (r *AppResult) TotalTrue() int {
	sum := 0
	for _, c := range []CategoryCount{r.Multithreaded, r.CrossPosted, r.CoEnabled, r.Delayed, r.Unknown} {
		if c.True > 0 {
			sum += c.True
		}
	}
	return sum
}

// RunApp evaluates one application model end to end.
func RunApp(app apps.App) (*AppResult, error) {
	test, err := apps.RepresentativeTest(app)
	if err != nil {
		return nil, err
	}
	return AnalyzeTest(app, test)
}

// AnalyzeTest runs the offline analysis on one explored test.
func AnalyzeTest(app apps.App, test *explorer.Test) (*AppResult, error) {
	tr := test.Trace
	if i, err := semantics.ValidateInferred(tr); err != nil {
		return nil, fmt.Errorf("%s: invalid trace at op %d: %w", app.Name(), i, err)
	}
	info, err := trace.Analyze(tr)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", app.Name(), err)
	}

	// System threads (the binder pool) are excluded from Table 2 counts,
	// as in the paper; the explorer recorded their IDs with the test.
	sys := make(map[trace.ThreadID]bool)
	for _, id := range test.SystemThreads {
		sys[id] = true
	}
	stats := trace.ComputeStats(tr, func(id trace.ThreadID) bool { return sys[id] })

	start := time.Now()
	g := hb.Build(info, hb.DefaultConfig())
	races := race.NewDetector(g).DetectDeduped()
	elapsed := time.Since(start)

	res := &AppResult{
		App:          app,
		Test:         test,
		Stats:        stats,
		Races:        races,
		GraphNodes:   g.NodeCount(),
		MergeRatio:   float64(g.NodeCount()) / float64(tr.Len()),
		AnalysisTime: elapsed,
		// Without merging every operation is its own node.
		UnmergedNodes: tr.Len(),
	}
	res.tally(app, races)
	return res, nil
}

// tally splits the reports by category and, for open-source apps, counts
// true positives against the seeded ground truth.
func (r *AppResult) tally(app apps.App, races []race.Race) {
	truth := make(map[trace.Loc]bool)
	for _, gt := range app.GroundTruth() {
		truth[gt.Loc] = true
	}
	counts := map[race.Category]*CategoryCount{
		race.Multithreaded: &r.Multithreaded,
		race.CrossPosted:   &r.CrossPosted,
		race.CoEnabled:     &r.CoEnabled,
		race.Delayed:       &r.Delayed,
		race.Unknown:       &r.Unknown,
	}
	if app.Proprietary() {
		for _, c := range counts {
			c.True = -1
		}
	}
	for _, rc := range races {
		c := counts[rc.Category]
		c.Reported++
		if !app.Proprietary() && truth[rc.Loc] {
			c.True++
		}
	}
}

// RunAll evaluates every given app in order.
func RunAll(list []apps.App) ([]*AppResult, error) {
	out := make([]*AppResult, 0, len(list))
	for _, app := range list {
		r, err := RunApp(app)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// AppFailure records one application model that failed evaluation:
// RunAllIsolated keeps going past it instead of aborting the batch.
type AppFailure struct {
	// App names the failed application model.
	App string
	// Err is the failure, with panics recovered as *budget.PanicError
	// (typed causes such as *android.ModelError remain reachable via
	// errors.As).
	Err error
}

// RunAllIsolated evaluates every given app, isolating each behind a
// panic boundary: one broken app model fails its own row, not the whole
// batch. Results and failures are returned in input order.
func RunAllIsolated(list []apps.App) ([]*AppResult, []AppFailure) {
	out := make([]*AppResult, 0, len(list))
	var failures []AppFailure
	for _, app := range list {
		var r *AppResult
		err := budget.Isolate("eval: "+app.Name(), func() error {
			var err error
			r, err = RunApp(app)
			return err
		})
		if err != nil {
			failures = append(failures, AppFailure{App: app.Name(), Err: err})
			continue
		}
		out = append(out, r)
	}
	return out, failures
}

// Overhead measures the trace-generation slowdown (§6: "Trace generation
// causes a slowdown up to 5x due to instrumentation overhead"): the app's
// representative startup is executed with recording on and off.
func Overhead(app apps.App, rounds int) (withTrace, without time.Duration, err error) {
	run := func(record bool) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < rounds; i++ {
			opts := app.Options()
			opts.Record = record
			e := android.NewEnv(opts)
			app.Register(e)
			if err := e.Launch(app.MainActivity()); err != nil {
				e.Close()
				return 0, err
			}
			if err := e.Run(); err != nil {
				return 0, err
			}
			if err := e.Shutdown(); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	if withTrace, err = run(true); err != nil {
		return 0, 0, err
	}
	if without, err = run(false); err != nil {
		return 0, 0, err
	}
	return withTrace, without, nil
}
