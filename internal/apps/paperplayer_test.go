package apps

import (
	"testing"

	"droidracer/internal/android"
	"droidracer/internal/explorer"
	"droidracer/internal/hb"
	"droidracer/internal/race"
	"droidracer/internal/semantics"
	"droidracer/internal/trace"
)

// detectOn runs the full analysis pipeline on a trace.
func detectOn(t *testing.T, tr *trace.Trace) []race.Race {
	t.Helper()
	if i, err := semantics.ValidateInferred(tr); err != nil {
		t.Fatalf("invalid trace at op %d: %v", i, err)
	}
	info, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	return race.NewDetector(hb.Build(info, hb.DefaultConfig())).DetectDeduped()
}

// runSequence executes one event sequence on the app.
func runSequence(t *testing.T, app App, seq []android.UIEvent) *trace.Trace {
	t.Helper()
	tr, err := explorer.Replay(Factory(app), 0, seq)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestPaperPlayerPlayScenarioRaceFree(t *testing.T) {
	// The Figure 3 scenario: wait for the download, then click PLAY. The
	// destroyed-flag accesses are all ordered; no race on it.
	app := NewPaperMusicPlayer()
	tr := runSequence(t, app, []android.UIEvent{{Kind: android.EvClick, Widget: "play"}})
	for _, r := range detectOn(t, tr) {
		if r.Loc == DestroyedFlag {
			t.Fatalf("race on %s in the PLAY scenario: %v", DestroyedFlag, r)
		}
	}
}

func TestPaperPlayerBackScenarioTwoRaces(t *testing.T) {
	// The Figure 4 scenario: press BACK instead. DroidRacer reports the
	// multithreaded race (doInBackground read vs onDestroy write) and the
	// cross-posted race (onPostExecute read vs onDestroy write).
	app := NewPaperMusicPlayer()
	tr := runSequence(t, app, []android.UIEvent{{Kind: android.EvBack}})
	races := detectOn(t, tr)
	var cats []race.Category
	for _, r := range races {
		if r.Loc == DestroyedFlag {
			cats = append(cats, r.Category)
		}
	}
	if len(cats) != 2 {
		t.Fatalf("races on %s = %v, want multithreaded + cross-posted", DestroyedFlag, races)
	}
	has := map[race.Category]bool{}
	for _, c := range cats {
		has[c] = true
	}
	if !has[race.Multithreaded] || !has[race.CrossPosted] {
		t.Fatalf("categories = %v, want {multithreaded, cross-posted}", cats)
	}
}

func TestPaperPlayerGroundTruthMatchesDetector(t *testing.T) {
	app := NewPaperMusicPlayer()
	tr := runSequence(t, app, []android.UIEvent{{Kind: android.EvBack}})
	races := detectOn(t, tr)
	for _, gt := range app.GroundTruth() {
		found := false
		for _, r := range races {
			if r.Loc == gt.Loc && r.Category == gt.Category {
				found = true
			}
		}
		if !found {
			t.Errorf("seeded race %v (%s) not detected", gt.Loc, gt.Category)
		}
	}
}

func TestPaperPlayerExploration(t *testing.T) {
	app := NewPaperMusicPlayer()
	res, err := explorer.Explore(Factory(app), app.Explore())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tests) == 0 {
		t.Fatal("no tests explored")
	}
	// Some explored test must expose the destroyed-flag races.
	exposed := false
	for _, test := range res.Tests {
		for _, r := range detectOn(t, test.Trace) {
			if r.Loc == DestroyedFlag {
				exposed = true
			}
		}
	}
	if !exposed {
		t.Fatal("no explored test exposed the Figure 4 races")
	}
}

func TestRepresentativeTestDeterministic(t *testing.T) {
	app := NewPaperMusicPlayer()
	a, err := RepresentativeTest(app)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RepresentativeTest(app)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != b.Name() || a.Trace.Len() != b.Trace.Len() {
		t.Fatalf("representative test not deterministic: %s/%d vs %s/%d",
			a.Name(), a.Trace.Len(), b.Name(), b.Trace.Len())
	}
}

func TestRegistryBasics(t *testing.T) {
	if _, err := New("No Such App"); err == nil {
		t.Fatal("unknown app lookup succeeded")
	}
}
