package jobs

import "droidracer/internal/obs"

// Pool and breaker metrics. Shed and transition counters are
// pre-registered per label value so a scrape sees the complete series
// set (at zero) from process start.
var (
	queueDepth = obs.Default().Gauge("droidracer_jobs_queue_depth",
		"Jobs waiting in the admission queue.")
	queueCapacity = obs.Default().Gauge("droidracer_jobs_queue_capacity",
		"Bound of the admission queue.")
	inflight = obs.Default().Gauge("droidracer_jobs_inflight",
		"Jobs currently executing on workers.")
	shedCounters = map[string]*obs.Counter{}
	retriesTotal = obs.Default().Counter("droidracer_jobs_retries_total",
		"Job attempts beyond each job's first.")
	breakersOpen = obs.Default().Gauge("droidracer_jobs_breakers_open",
		"Job keys whose circuit breaker is currently open.")
	breakerTransitions  = map[string]*obs.Counter{}
	breakerStreakResets = obs.Default().Counter("droidracer_jobs_breaker_streak_resets_total",
		"Sub-threshold consecutive hard-failure streaks cleared by a success before the breaker opened.")
	quarantinedTotal = obs.Default().Counter("droidracer_jobs_quarantined_total",
		"Poison inputs dead-lettered into the quarantine directory.")
)

func init() {
	for _, reason := range []string{ReasonQueueFull, ReasonShuttingDown} {
		shedCounters[reason] = obs.Default().Counter("droidracer_jobs_shed_total",
			"Jobs shed at admission, by rejection reason.", "reason", reason)
	}
	// half-open and closed are pre-registered for exposition-format
	// stability but stay 0: this breaker never half-opens or re-closes
	// once open (an input that paniced will panic again; see the breaker
	// type comment). Sub-threshold failure streaks cleared by a success
	// are counted separately on breakerStreakResets.
	for _, state := range []string{"open", "half-open", "closed"} {
		breakerTransitions[state] = obs.Default().Counter("droidracer_jobs_breaker_transitions_total",
			"Circuit breaker state entries, by state entered.", "state", state)
	}
}
