package sentinel

import (
	"testing"
	"time"
)

func TestNewDisabled(t *testing.T) {
	if s := New(Config{}); s != nil {
		t.Fatal("zero watermark must return the nil sentinel")
	}
	// The nil receiver is the "governance off" representation; every
	// method must be callable on it.
	var s *Sentinel
	s.Start()
	s.Stop()
	s.Sample()
	if s.Brownout() {
		t.Fatal("nil sentinel reports brownout")
	}
	if s.RetryAfter() != 0 {
		t.Fatal("nil sentinel reports a retry hint")
	}
}

func TestBrownoutTransitions(t *testing.T) {
	mem := int64(0)
	s := New(Config{Watermark: 1000, MemFn: func() int64 { return mem }})
	if s == nil {
		t.Fatal("sentinel disabled")
	}

	mem = 500
	s.Sample()
	if s.Brownout() {
		t.Fatal("browned out below the watermark")
	}
	if s.RetryAfter() != 0 {
		t.Fatal("retry hint while healthy")
	}

	mem = 1200
	s.Sample()
	if !s.Brownout() {
		t.Fatal("not browned out above the watermark")
	}
	if ra := s.RetryAfter(); ra < time.Second {
		t.Fatalf("first-brownout RetryAfter = %v, want the conservative default window", ra)
	}

	// Hysteresis: between the recovery level (default 80% = 800) and the
	// watermark, the state must hold — no flapping at the boundary.
	mem = 900
	s.Sample()
	if !s.Brownout() {
		t.Fatal("recovered inside the hysteresis band")
	}

	mem = 400
	s.Sample()
	if s.Brownout() {
		t.Fatal("still browned out below the recovery level")
	}
	if s.RetryAfter() != 0 {
		t.Fatal("retry hint after recovery")
	}
}

func TestRetryAfterTracksRecoveryHistory(t *testing.T) {
	mem := int64(0)
	s := New(Config{Watermark: 1000, MemFn: func() int64 { return mem }})

	// One full brownout teaches the EWMA its duration.
	mem = 2000
	s.Sample()
	s.mu.Lock()
	s.since = time.Now().Add(-4 * time.Second) // pretend it ran 4s
	s.mu.Unlock()
	mem = 100
	s.Sample()
	s.mu.Lock()
	ewma := s.recoverEWMA
	s.mu.Unlock()
	if ewma < 3*time.Second || ewma > 5*time.Second {
		t.Fatalf("recovery EWMA = %v, want ~4s", ewma)
	}

	// The next brownout's hint is the learned duration minus elapsed,
	// floored at 1s — an honest estimate, not a constant.
	mem = 2000
	s.Sample()
	ra := s.RetryAfter()
	if ra < time.Second || ra > ewma {
		t.Fatalf("RetryAfter = %v, want within (1s, %v]", ra, ewma)
	}
}

func resetFaultHits() {
	faultMu.Lock()
	faultHits = map[string]int{}
	faultMu.Unlock()
}

func TestForcedBrownoutFault(t *testing.T) {
	t.Setenv(EnvSentinelFault, "brownout:1-2")
	resetFaultHits()
	mem := int64(0) // far below the watermark; only the fault flips it
	s := New(Config{Watermark: 1000, MemFn: func() int64 { return mem }})
	s.Sample()
	if !s.Brownout() {
		t.Fatal("fault window hit 1: want forced brownout")
	}
	s.Sample()
	if !s.Brownout() {
		t.Fatal("fault window hit 2: want forced brownout")
	}
	s.Sample() // hit 3 is outside the window; mem is below recovery
	if s.Brownout() {
		t.Fatal("outside the fault window: want recovery")
	}
}
