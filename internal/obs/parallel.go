package obs

import (
	"strconv"
	"sync"
	"time"
)

// Parallel-phase metrics: the analysis engine's shardable phases (the
// happens-before closure, the race scan) record their wall-clock time
// labeled by the worker count they ran with, so a dashboard can read
// the speedup directly — the same phase shows up as one series per
// parallelism level:
//
//	droidracer_parallel_phase_duration_seconds{phase="hb-closure",workers="8"}
//
// Serial runs publish under workers="1", giving the comparison
// baseline for free.

// parallelHists caches the labeled series per (phase, workers): these
// observations come from the analysis hot path, once per build/scan,
// and re-resolving labels through the registry on each would cost more
// than a small trace's whole closure.
var parallelHists sync.Map // "phase|workers" -> *Histogram

// ParallelPhaseObserve records one parallel-phase duration into the
// default registry, labeled by phase and worker count. Like every
// default-registry publish it is gated on an attached exporter, so
// unexported processes pay only the gate check.
func ParallelPhaseObserve(phase string, workers int, d time.Duration) {
	if !ExporterAttached() {
		return
	}
	w := strconv.Itoa(workers)
	key := phase + "|" + w
	h, ok := parallelHists.Load(key)
	if !ok {
		h, _ = parallelHists.LoadOrStore(key, Default().Histogram(
			"droidracer_parallel_phase_duration_seconds",
			"Wall-clock time per shardable analysis phase, by worker count.",
			DurationBuckets(), "phase", phase, "workers", w))
	}
	h.(*Histogram).ObserveDuration(d)
}
