package race

import "droidracer/internal/trace"

// Classifier categorizes races per §4.3 over any happens-before
// backend. The graph engine answers the one cross-operation ordering
// query the criteria need (βi ≼ βj between event posts) from its
// reachability bitsets; the streaming engine answers it from retained
// post-clock snapshots. Everything else the classifier reads — threads,
// post chains, delayed/front flags, enable indices — comes from the
// trace annotations both engines share.
type Classifier struct {
	info *trace.Info
	// orderedLE reports αi ≼ αj with ≼ reflexive.
	orderedLE func(i, j int) bool
}

// NewClassifier returns a classifier over the given annotations and
// ordering oracle.
func NewClassifier(info *trace.Info, orderedLE func(i, j int) bool) *Classifier {
	return &Classifier{info: info, orderedLE: orderedLE}
}

// Classify categorizes the race between the operations at trace indices
// a and b (a < b) per §4.3. The criteria are checked in the paper's
// order: multithreaded, co-enabled, delayed, cross-posted, unknown.
func (c *Classifier) Classify(a, b int) Category {
	tr := c.info.Trace()
	if tr.Op(a).Thread != tr.Op(b).Thread {
		return Multithreaded
	}
	chainA := c.info.PostChain(a)
	chainB := c.info.PostChain(b)

	// Co-enabled: βi, βj are the most recent posts for environmental
	// events — posts of tasks the environment explicitly enabled. The race
	// is co-enabled when both exist and βi ⋠ βj.
	ea := c.lastMatching(chainA, c.isEventPost)
	eb := c.lastMatching(chainB, c.isEventPost)
	if ea >= 0 && eb >= 0 && !c.orderedLE(ea, eb) {
		return CoEnabled
	}

	// Delayed: βi, βj are the most recent delayed posts. The race is
	// delayed when only one is defined, or both are and they differ.
	da := c.lastMatching(chainA, func(i int) bool { return tr.Op(i).Delayed })
	db := c.lastMatching(chainB, func(i int) bool { return tr.Op(i).Delayed })
	if oneSidedOrDistinct(da, db) {
		return Delayed
	}

	// Cross-posted: βi, βj are the most recent posts executing on a thread
	// other than the racing access's thread.
	xa := c.lastMatching(chainA, func(i int) bool { return tr.Op(i).Thread != tr.Op(a).Thread })
	xb := c.lastMatching(chainB, func(i int) bool { return tr.Op(i).Thread != tr.Op(b).Thread })
	if oneSidedOrDistinct(xa, xb) {
		return CrossPosted
	}

	return Unknown
}

// lastMatching returns the last post index in chain satisfying pred, or -1.
func (c *Classifier) lastMatching(chain []int, pred func(int) bool) int {
	for k := len(chain) - 1; k >= 0; k-- {
		if pred(chain[k]) {
			return chain[k]
		}
	}
	return -1
}

// isEventPost reports whether the post at trace index i posts an
// environment-enabled task (a UI event handler or lifecycle callback).
func (c *Classifier) isEventPost(i int) bool {
	return c.info.EnableIdx(c.info.Trace().Op(i).Task) >= 0
}
