package baseline

import (
	"droidracer/internal/trace"
	"droidracer/internal/vc"
)

// PureMT is the classic multithreaded happens-before detector (the §4.1
// specialization that discards every asynchronous-call rule): vector
// clocks over threads with program order, fork/join, and lock
// release-acquire edges, in the style of DJIT+/FastTrack. Posts, begins,
// ends, queues, and enables are ignored.
type PureMT struct{}

// NewPureMT returns the pure multithreaded baseline detector.
func NewPureMT() *PureMT { return &PureMT{} }

// Name implements Detector.
func (*PureMT) Name() string { return "pure-mt-hb" }

// access is the vector-clock snapshot of one memory access, kept per
// location for race checking.
type access struct {
	op    int
	clock vc.VC
}

// locState tracks the last write and the last read per context for one
// location.
type locState struct {
	write access
	reads map[vc.ID]access
}

// mtState is the mutable analysis state shared by PureMT and
// AsyncAsThreads (which differ only in how they map operations to
// contexts).
type mtState struct {
	clocks  map[vc.ID]vc.VC // per-context clocks
	lockRel map[trace.LockID]vc.VC
	pending map[vc.ID]vc.VC // clock snapshots for not-yet-started contexts
	exited  map[vc.ID]vc.VC
	locs    map[trace.Loc]*locState
	found   map[trace.Loc]Finding
}

func newMTState() *mtState {
	return &mtState{
		clocks:  make(map[vc.ID]vc.VC),
		lockRel: make(map[trace.LockID]vc.VC),
		pending: make(map[vc.ID]vc.VC),
		exited:  make(map[vc.ID]vc.VC),
		locs:    make(map[trace.Loc]*locState),
		found:   make(map[trace.Loc]Finding),
	}
}

// clock returns (creating if needed) the clock of context id, joining any
// pending creation snapshot.
func (s *mtState) clock(id vc.ID) vc.VC {
	c, ok := s.clocks[id]
	if !ok {
		c = vc.New()
		if p, hasPending := s.pending[id]; hasPending {
			c.Join(p)
			delete(s.pending, id)
		}
		c.Tick(id)
		s.clocks[id] = c
	}
	return c
}

// record checks the access at op by context id against the location state
// and registers the first race per location.
func (s *mtState) record(id vc.ID, op trace.Op, opIdx int) {
	ls, ok := s.locs[op.Loc]
	if !ok {
		ls = &locState{write: access{op: -1}, reads: make(map[vc.ID]access)}
		s.locs[op.Loc] = ls
	}
	now := s.clock(id)
	_, already := s.found[op.Loc]
	if op.Kind == trace.OpWrite {
		if !already {
			if ls.write.op >= 0 && !ls.write.clock.LessEq(now) {
				s.found[op.Loc] = Finding{Loc: op.Loc, First: ls.write.op, Second: opIdx}
				already = true
			}
			if !already {
				// Choose the earliest racing read so reports are
				// deterministic under map iteration.
				best := -1
				for _, r := range ls.reads {
					if !r.clock.LessEq(now) && (best < 0 || r.op < best) {
						best = r.op
					}
				}
				if best >= 0 {
					s.found[op.Loc] = Finding{Loc: op.Loc, First: best, Second: opIdx}
				}
			}
		}
		ls.write = access{op: opIdx, clock: now.Copy()}
		// A write ordered after all previous reads supersedes them.
		ls.reads = map[vc.ID]access{}
		return
	}
	// Read: races only with the last write.
	if !already && ls.write.op >= 0 && !ls.write.clock.LessEq(now) {
		s.found[op.Loc] = Finding{Loc: op.Loc, First: ls.write.op, Second: opIdx}
	}
	ls.reads[id] = access{op: opIdx, clock: now.Copy()}
}

func (s *mtState) findings() []Finding {
	out := make([]Finding, 0, len(s.found))
	for _, f := range s.found {
		out = append(out, f)
	}
	return sortFindings(out)
}

// Detect implements Detector.
func (d *PureMT) Detect(tr *trace.Trace) []Finding {
	s := newMTState()
	tid := func(t trace.ThreadID) vc.ID { return vc.ID(t) }
	for i, op := range tr.Ops() {
		me := tid(op.Thread)
		switch op.Kind {
		case trace.OpFork:
			c := s.clock(me)
			s.pending[tid(op.Other)] = c.Copy()
			c.Tick(me)
		case trace.OpThreadInit:
			s.clock(me) // materializes the clock, consuming any fork snapshot
		case trace.OpThreadExit:
			s.exited[me] = s.clock(me).Copy()
		case trace.OpJoin:
			if ec, ok := s.exited[tid(op.Other)]; ok {
				s.clock(me).Join(ec)
			}
		case trace.OpAcquire:
			if rel, ok := s.lockRel[op.Lock]; ok {
				s.clock(me).Join(rel)
			}
		case trace.OpRelease:
			c := s.clock(me)
			s.lockRel[op.Lock] = c.Copy()
			c.Tick(me)
		case trace.OpRead, trace.OpWrite:
			s.record(me, op, i)
		}
		// post, begin, end, attachQ, loopOnQ, enable, cancel: ignored.
	}
	return s.findings()
}
