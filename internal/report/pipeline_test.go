package report_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"droidracer/internal/budget"
	"droidracer/internal/core"
	"droidracer/internal/obs"
	"droidracer/internal/paper"
	"droidracer/internal/report"
	"droidracer/internal/trace"
)

// bigTrace builds a valid looper trace large enough to blow a short
// deadline.
func bigTrace(tasks int) *trace.Trace {
	tr := &trace.Trace{}
	tr.Append(trace.ThreadInit(1))
	tr.Append(trace.AttachQ(1))
	tr.Append(trace.LoopOnQ(1))
	for i := 0; i < tasks; i++ {
		task := trace.TaskID(fmt.Sprintf("T%d", i))
		tr.Append(trace.Post(0, task, 1))
		tr.Append(trace.Begin(1, task))
		tr.Append(trace.Write(1, trace.Loc(fmt.Sprintf("s%d", i%64))))
		tr.Append(trace.End(1, task))
	}
	return tr
}

// TestPipelineRoundTripsEveryOutcome runs the pipeline into each of its
// four terminal states and asserts every one renders to a report row —
// the partial-results-round-trip-through-report property.
func TestPipelineRoundTripsEveryOutcome(t *testing.T) {
	var outcomes []report.Outcome

	// Full analysis.
	full, err := core.Analyze(paper.Figure4(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	outcomes = append(outcomes, report.Outcome{Name: "figure4-full", Result: full, Err: nil})

	// Degraded analysis.
	opts := core.DefaultOptions()
	opts.Budget = core.Budget{Wall: 30 * time.Millisecond}
	deg, err := core.Analyze(bigTrace(25000), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !deg.Degraded {
		t.Fatal("expected degraded result")
	}
	outcomes = append(outcomes, report.Outcome{Name: "big-degraded", Result: deg})

	// Partial result with a budget error.
	opts.DegradeOnBudget = false
	partial, perr := core.Analyze(bigTrace(25000), opts)
	if _, ok := budget.AsError(perr); !ok || partial == nil {
		t.Fatalf("expected partial result + budget error, got %v / %v", partial, perr)
	}
	outcomes = append(outcomes, report.Outcome{Name: "big-partial", Result: partial, Err: perr})

	// Hard failure (invalid trace).
	bad := &trace.Trace{}
	bad.Append(trace.Begin(1, "orphan"))
	_, berr := core.Analyze(bad, core.DefaultOptions())
	if berr == nil {
		t.Fatal("invalid trace did not error")
	}
	outcomes = append(outcomes, report.Outcome{Name: "bad-error", Err: berr})

	// Supervisor dispositions: jobs the pool queued, shed, drained,
	// retried, or resumed must round-trip through the same renderer.
	outcomes = append(outcomes,
		report.Outcome{Name: "job-queued", JobState: report.JobQueued},
		report.Outcome{Name: "job-shed", JobState: report.JobShed,
			Err: fmt.Errorf("jobs: rejected (queue-full, 16/16 queued)")},
		report.Outcome{Name: "job-drained", JobState: report.JobDrained},
		report.Outcome{Name: "job-quarantined", JobState: report.JobQuarantined,
			Err: fmt.Errorf("trace: line 3: bad op")},
	)

	out := report.Pipeline(outcomes)
	for _, want := range []string{
		"figure4-full", "full",
		"big-degraded", "degraded", "budget: wall-clock",
		"big-partial", "partial",
		"bad-error", "error",
		"job-queued", "queued",
		"job-shed", "shed", "queue-full",
		"job-drained", "drained",
		"job-quarantined", "quarantined", "bad op",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// The full row reports the paper's races; the degraded row still has
	// a numeric count column (possibly 0), not a crash.
	if len(full.Races) == 0 {
		t.Fatal("figure4 should report races")
	}
	sums := report.PipelineSummaries(outcomes)
	if _, ok := sums["figure4-full"]; !ok {
		t.Fatal("summaries missing full outcome")
	}
	if _, ok := sums["bad-error"]; ok {
		t.Fatal("summaries should skip result-less outcomes")
	}
}

// TestPipelineAnnotatesRetriedAndResumed checks the supervisor's mode
// annotations: attempts above one render "+retried", journal-recovered
// work renders "+resumed", and both compose with the analysis mode.
func TestPipelineAnnotatesRetriedAndResumed(t *testing.T) {
	full, err := core.Analyze(paper.Figure4(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	degraded := &core.Result{Degraded: true, DegradedReason: fmt.Errorf("breaker open")}
	out := report.Pipeline([]report.Outcome{
		{Name: "retried", Result: full, Attempts: 3},
		{Name: "resumed", Result: full, Resumed: true},
		{Name: "both", Result: degraded, Attempts: 2, Resumed: true},
	})
	for _, want := range []string{
		"full+retried",
		"full+resumed",
		"degraded+retried+resumed",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// Supervisor states must not pick up annotations: a drained job with
	// zero attempts renders as plain "drained".
	row := report.Pipeline([]report.Outcome{{Name: "d", JobState: report.JobDrained, Resumed: false}})
	if !strings.Contains(row, "drained") || strings.Contains(row, "+") {
		t.Fatalf("drained row = %q", row)
	}
}

// TestPipelineRendersPhaseTimings checks the Time column: it appears
// only when some outcome carries per-phase timings, rows without
// timings render "-", and timing-free reports keep the original header.
func TestPipelineRendersPhaseTimings(t *testing.T) {
	full, err := core.Analyze(paper.Figure4(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Phases) == 0 {
		t.Fatal("full analysis carries no phase timings")
	}
	timed := &core.Result{Phases: []obs.PhaseTiming{
		{Phase: "happens-before", Duration: 1500 * time.Millisecond},
		{Phase: "race-scan", Duration: 250 * time.Millisecond},
	}}
	out := report.Pipeline([]report.Outcome{
		{Name: "timed", Result: timed},
		{Name: "analyzed", Result: full},
		{Name: "shed", JobState: report.JobShed},
	})
	if !strings.Contains(out, "Time") {
		t.Fatalf("report missing Time column:\n%s", out)
	}
	if !strings.Contains(out, "1.75s") {
		t.Fatalf("report missing summed phase time:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	shedRow := lines[len(lines)-1]
	if !strings.Contains(shedRow, "-") {
		t.Fatalf("timing-less row has no placeholder: %q", shedRow)
	}

	// Without timings anywhere, the header stays as it always was.
	plain := report.Pipeline([]report.Outcome{{Name: "q", JobState: report.JobQueued}})
	if strings.Contains(plain, "Time") {
		t.Fatalf("timing-free report grew a Time column:\n%s", plain)
	}
}

// TestPhaseTable checks the racedet -phase-timings renderer: one row
// per phase in order, plus a total.
func TestPhaseTable(t *testing.T) {
	out := report.PhaseTable([]obs.PhaseTiming{
		{Phase: "validate", Duration: 2 * time.Millisecond},
		{Phase: "happens-before", Duration: 40 * time.Millisecond},
	})
	for _, want := range []string{"Phase", "Time", "validate", "2.00ms", "happens-before", "40.00ms", "total", "42.00ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("phase table missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "validate") > strings.Index(out, "happens-before") {
		t.Fatalf("phases out of order:\n%s", out)
	}
}
