package apps

import (
	"droidracer/internal/android"
	"droidracer/internal/explorer"
	"droidracer/internal/race"
	"droidracer/internal/trace"
)

// PaperMusicPlayer is the motivating example of the paper (Figure 1): the
// DwFileAct activity downloads a file with a FileDwTask AsyncTask, shows
// progress, and enables a PLAY button when done. The field
// isActivityDestroyed is read by the background download and by
// onPostExecute, and written by onDestroy — the two races of Figure 4.
//
// It is not a Table 2 row (the paper's "Music Player" is a real 11K-line
// application); it exists to reproduce the Figure 3/Figure 4 scenarios
// end-to-end through the simulated runtime.
type PaperMusicPlayer struct {
	// DownloadChunks is the number of progress updates the download makes.
	DownloadChunks int
}

// NewPaperMusicPlayer returns the model with the paper's behavior.
func NewPaperMusicPlayer() *PaperMusicPlayer { return &PaperMusicPlayer{DownloadChunks: 3} }

func init() {
	register("Paper Music Player", func() App { return NewPaperMusicPlayer() })
}

// DestroyedFlag is the racy field of Figure 1 (line 2).
const DestroyedFlag = trace.Loc("DwFileAct.isActivityDestroyed")

// Name implements App.
func (*PaperMusicPlayer) Name() string { return "Paper Music Player" }

// LOC implements App.
func (*PaperMusicPlayer) LOC() int { return 59 } // the Figure 1 listing

// Proprietary implements App.
func (*PaperMusicPlayer) Proprietary() bool { return false }

// MainActivity implements App.
func (*PaperMusicPlayer) MainActivity() string { return "DwFileAct" }

// Options implements App.
func (*PaperMusicPlayer) Options() android.Options { return android.DefaultOptions() }

// Explore implements App.
func (*PaperMusicPlayer) Explore() explorer.Options {
	return explorer.Options{MaxEvents: 2, MaxTests: 10}
}

// GroundTruth implements App: both Figure 4 races are true positives (the
// paper validates them by failing the assertions of Figure 1).
func (*PaperMusicPlayer) GroundTruth() []SeededRace {
	return []SeededRace{
		{Loc: DestroyedFlag, Category: race.Multithreaded,
			Note: "doInBackground asserts !isActivityDestroyed (line 41) against onDestroy"},
		{Loc: DestroyedFlag, Category: race.CrossPosted,
			Note: "onPostExecute asserts !isActivityDestroyed (line 53) against onDestroy"},
	}
}

// dwFileAct is the DwFileAct activity of Figure 1.
type dwFileAct struct {
	android.BaseActivity
	app *PaperMusicPlayer
}

// Register implements App.
func (p *PaperMusicPlayer) Register(e *android.Env) {
	e.RegisterActivity("DwFileAct", func() android.Activity { return &dwFileAct{app: p} })
	e.RegisterActivity("MusicPlayActivity", func() android.Activity { return &playActivity{} })
}

func (a *dwFileAct) OnCreate(c *android.Ctx) {
	// boolean isActivityDestroyed = false (line 2).
	c.Write(DestroyedFlag)
	// The PLAY button exists but is disabled until the download finishes.
	c.AddButton("play", false, func(c *android.Ctx) {
		// onPlayClick: startActivity(MusicPlayActivity) (lines 8–12).
		c.Read("DwFileAct.intent")
		c.StartActivity("MusicPlayActivity")
	})
}

func (a *dwFileAct) OnResume(c *android.Ctx) {
	// new FileDwTask(this).execute(...) (line 6).
	c.Execute(&android.AsyncTask{
		Name: "FileDwTask",
		OnPreExecute: func(c *android.Ctx) {
			// dialog = new ProgressDialog(act); dialog.show() (lines 27–29).
			c.Write("FileDwTask.dialog")
		},
		DoInBackground: func(c *android.Ctx, publish func()) {
			for i := 0; i < a.app.DownloadChunks; i++ {
				// progress += count (line 40).
				c.Write("FileDwTask.progress")
				// assertTrue(!act.isActivityDestroyed) (line 41).
				c.Read(DestroyedFlag)
				publish() // publishProgress (line 42).
			}
		},
		OnProgressUpdate: func(c *android.Ctx) {
			// dialog.setProgress(progress[0]) (line 48).
			c.Read("FileDwTask.dialog")
			c.Write("FileDwTask.progressBar")
		},
		OnPostExecute: func(c *android.Ctx) {
			// assertTrue(!act.isActivityDestroyed) (line 53).
			c.Read(DestroyedFlag)
			// dialog.dismiss(); btn.setEnabled(true) (lines 54–56).
			c.Write("FileDwTask.dialog")
			c.SetEnabled("play", true)
		},
	})
}

func (a *dwFileAct) OnDestroy(c *android.Ctx) {
	// isActivityDestroyed = true (line 15).
	c.Write(DestroyedFlag)
}

// playActivity is the MusicPlayActivity the PLAY button starts.
type playActivity struct {
	android.BaseActivity
}

func (p *playActivity) OnCreate(c *android.Ctx) {
	c.Read("MusicPlayActivity.file")
	c.Write("MusicPlayActivity.player")
}
