package baseline

import (
	"droidracer/internal/hb"
	"droidracer/internal/race"
	"droidracer/internal/trace"
)

// EventOnly applies the happens-before relation of single-threaded
// event-driven programs (the web-application analyses of §7) per thread:
// the thread-local rules with every inter-thread rule dropped. Cross-thread
// synchronization (fork/join, locks, cross-thread posts) is invisible, so
// correctly synchronized multithreaded code is reported racy.
type EventOnly struct{}

// NewEventOnly returns the event-only baseline detector.
func NewEventOnly() *EventOnly { return &EventOnly{} }

// Name implements Detector.
func (*EventOnly) Name() string { return "event-only" }

// Detect implements Detector. Structurally malformed traces yield no
// findings.
func (d *EventOnly) Detect(tr *trace.Trace) []Finding {
	info, err := trace.Analyze(tr)
	if err != nil {
		return nil
	}
	cfg := hb.DefaultConfig()
	cfg.STOnly = true
	g := hb.Build(info, cfg)
	seen := make(map[trace.Loc]bool)
	var out []Finding
	for _, r := range race.NewDetector(g).Detect() {
		if seen[r.Loc] {
			continue
		}
		seen[r.Loc] = true
		out = append(out, Finding{Loc: r.Loc, First: r.First, Second: r.Second})
	}
	return sortFindings(out)
}
