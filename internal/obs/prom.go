package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in the Prometheus
// text exposition format (version 0.0.4): one # HELP and # TYPE line
// per family, then one line per series, families sorted by name and
// series by label string so output is stable across scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	MarkExporterAttached()
	// The whole render happens under r.mu: series are still registered
	// at runtime (e.g. a phase histogram on first sight of a new phase
	// label), so family series maps can grow concurrently with a scrape.
	// Rendering is pure in-memory formatting of lock-free atomics; only
	// the final write to w runs unlocked.
	var sb strings.Builder
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.fams[name]
		if f.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.typ)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			switch {
			case s.counter != nil:
				fmt.Fprintf(&sb, "%s%s %d\n", f.name, s.labels, s.counter.Value())
			case s.gauge != nil:
				fmt.Fprintf(&sb, "%s%s %d\n", f.name, s.labels, s.gauge.Value())
			case s.hist != nil:
				writeHistogram(&sb, f.name, s)
			}
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, sb.String())
	return err
}

// writeHistogram renders one histogram series: cumulative _bucket lines
// (ending with le="+Inf"), then _sum and _count.
func writeHistogram(sb *strings.Builder, name string, s *series) {
	h := s.hist
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(sb, "%s_bucket%s %d\n", name, mergeLabel(s.labels, "le", formatBound(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(sb, "%s_bucket%s %d\n", name, mergeLabel(s.labels, "le", "+Inf"), cum)
	fmt.Fprintf(sb, "%s_sum%s %s\n", name, s.labels, formatFloat(h.Sum()))
	fmt.Fprintf(sb, "%s_count%s %d\n", name, s.labels, h.Count())
}

// mergeLabel splices one more label into an already-rendered label set.
func mergeLabel(labels, k, v string) string {
	extra := fmt.Sprintf("%s=%q", k, v)
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
