package storage

import (
	"errors"
	"fmt"
	"strings"
	"syscall"
	"testing"
)

func TestKeyIsStable(t *testing.T) {
	body := []byte("begin(t1)\n")
	k := Key(body)
	if len(k) != KeyLen {
		t.Fatalf("key length = %d, want %d", len(k), KeyLen)
	}
	if k != Key(body) {
		t.Fatal("key not deterministic")
	}
	if k == Key([]byte("begin(t2)\n")) {
		t.Fatal("distinct bodies share a key")
	}
}

func TestContentKey(t *testing.T) {
	key := Key([]byte("x"))
	cases := []struct {
		name string
		want string
		ok   bool
	}{
		{key + ".trace", key, true},
		{key, key, true},
		{"music.trace", "", false},
		{".(" + key + ").tmp", "", false},
		{strings.ToUpper(key) + ".trace", "", false},
		{key + "0.trace", "", false},
		{"", "", false},
	}
	for _, c := range cases {
		got, ok := ContentKey(c.name)
		if got != c.want || ok != c.ok {
			t.Errorf("ContentKey(%q) = %q, %v; want %q, %v", c.name, got, ok, c.want, c.ok)
		}
	}
}

func TestVerifyBody(t *testing.T) {
	body := []byte("begin(t1)\nend(t1)\n")
	name := Key(body) + ".trace"
	if err := VerifyBody(name, body); err != nil {
		t.Fatalf("pristine body: %v", err)
	}
	// One flipped bit must be caught and classified as corruption.
	flipped := append([]byte(nil), body...)
	flipped[len(flipped)/2] ^= 0x01
	err := VerifyBody(name, flipped)
	if err == nil {
		t.Fatal("flipped body verified")
	}
	if !IsCorrupt(err) {
		t.Fatalf("want CorruptError, got %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("error %q does not mention corruption", err)
	}
	// A name that carries no key is exempt — operators drop arbitrary
	// files into spools.
	if err := VerifyBody("music.trace", flipped); err != nil {
		t.Fatalf("keyless name verified: %v", err)
	}
}

func TestKindClassification(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{&CorruptError{Path: "x"}, "corrupt"},
		{fmt.Errorf("wrap: %w", &CorruptError{Path: "x"}), "corrupt"},
		{syscall.ENOSPC, "enospc"},
		{fmt.Errorf("journal: %w", syscall.ENOSPC), "enospc"},
		{syscall.EIO, "eio"},
		{errors.New("plain"), "other"},
	}
	for _, c := range cases {
		if got := Kind(c.err); got != c.want {
			t.Errorf("Kind(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestCountErrorPassesThrough(t *testing.T) {
	if CountError("spool.write", nil) != nil {
		t.Fatal("nil error changed")
	}
	err := syscall.ENOSPC
	before := errorsTotal("spool.write", "enospc").Value()
	if got := CountError("spool.write", err); got != error(err) {
		t.Fatalf("error changed: %v", got)
	}
	if after := errorsTotal("spool.write", "enospc").Value(); after != before+1 {
		t.Fatalf("counter %d -> %d, want +1", before, after)
	}
}
