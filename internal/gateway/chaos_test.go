package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"droidracer/internal/core"
	"droidracer/internal/faultinject"
	"droidracer/internal/flood"
	"droidracer/internal/jobs"
	"droidracer/internal/journal"
	"droidracer/internal/obs"
	"droidracer/internal/report"
	"droidracer/internal/server"
	"droidracer/internal/trace"
)

// backendHelperEnv marks the re-exec'd backend of the fleet chaos tests;
// its value is the backend's spool/state root.
const backendHelperEnv = "DROIDRACER_GW_BACKEND"

// backendGraceEnv optionally sets the backend's restart sweep grace.
const backendGraceEnv = "DROIDRACER_GW_GRACE"

// TestGatewayBackendProcess is the subprocess body of the fleet chaos
// tests: a miniature racedetd — journal recovery, pool, ingestion server
// with the fleet reconcile handshake, sweep-grace-gated spool sweep —
// that serves until the parent (or an armed kill-point) kills it.
func TestGatewayBackendProcess(t *testing.T) {
	dir := os.Getenv(backendHelperEnv)
	if dir == "" {
		t.Skip("helper subprocess only")
	}
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "backend helper:", err)
		os.Exit(1)
	}
	grace := time.Duration(0)
	if g := os.Getenv(backendGraceEnv); g != "" {
		d, err := time.ParseDuration(g)
		if err != nil {
			die(err)
		}
		grace = d
	}
	spool := filepath.Join(dir, "spool")
	state := filepath.Join(dir, "state")
	if err := os.MkdirAll(spool, 0o777); err != nil {
		die(err)
	}
	if err := os.MkdirAll(state, 0o777); err != nil {
		die(err)
	}
	jpath := filepath.Join(state, "daemon.journal")
	entries, err := journal.Recover(jpath)
	if err != nil {
		die(err)
	}
	w, err := journal.Create(jpath)
	if err != nil {
		die(err)
	}
	var srv *server.Server
	pool := jobs.NewPool(jobs.Config{
		Workers:    1,
		QueueDepth: 16,
		Journal:    w,
		Quarantine: &jobs.Quarantine{Dir: filepath.Join(state, "quarantine")},
		OnFinish: func(out report.Outcome) {
			if s := srv; s != nil {
				s.JobFinished(out)
			}
		},
	})
	srv = server.New(server.Config{
		Pool:    pool,
		Spool:   spool,
		Analyze: core.DefaultOptions(),
		Workers: 1,
		Events:  obs.NewEventLog(os.Stderr, filepath.Base(dir)),
		// The chaos floods hammer from one client; admission rate limits
		// are someone else's test.
		Rate:        10000,
		Burst:       10000,
		MaxInflight: 256,
		SweepGrace:  grace,
		StorageErr:  w.Err, // mirror racedetd: a poisoned journal refuses work
		Completed:   jobs.CompletedRecords(entries),
		Quarantined: jobs.QuarantinedJobs(entries),
	})
	// A restarted incarnation must rebind its previous address — the
	// gateway's static backend list points there.
	addrPath := filepath.Join(dir, "addr")
	listen := "127.0.0.1:0"
	if b, rerr := os.ReadFile(addrPath); rerr == nil && len(b) > 0 {
		listen = string(b)
	}
	var bound string
	bindDeadline := time.Now().Add(10 * time.Second)
	for {
		_, bound, err = srv.Serve(listen)
		if err == nil {
			break
		}
		if time.Now().After(bindDeadline) {
			die(err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := os.WriteFile(addrPath+".tmp", []byte(bound), 0o666); err != nil {
		die(err)
	}
	if err := os.Rename(addrPath+".tmp", addrPath); err != nil {
		die(err)
	}
	for {
		// The restart sweep honors the reconcile grace: spooled orphans
		// the fleet completed elsewhere must be reclaimed, not analyzed.
		if srv.SweepReady() {
			if ents, err := os.ReadDir(spool); err == nil {
				for _, e := range ents {
					if e.IsDir() || strings.HasPrefix(e.Name(), ".") {
						continue
					}
					if !srv.Claim(e.Name()) {
						continue
					}
					job := jobs.TraceJob(e.Name(), filepath.Join(spool, e.Name()), core.DefaultOptions())
					if err := pool.Submit(job); err != nil {
						srv.Release(e.Name())
					}
				}
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for gateway event logs.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// backendCmd re-execs the test binary as a backend over dir. Extra
// environment entries (e.g. a DROIDRACER_STORAGE_FAULT spec) apply to
// this backend only — the parent's chaos variables are stripped.
func backendCmd(t *testing.T, dir, grace string, arm bool, extraEnv ...string) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestGatewayBackendProcess$", "-test.v")
	for _, kv := range os.Environ() {
		if strings.HasPrefix(kv, faultinject.EnvKillpoint+"=") ||
			strings.HasPrefix(kv, faultinject.EnvStorageFault+"=") ||
			strings.HasPrefix(kv, backendHelperEnv+"=") ||
			strings.HasPrefix(kv, backendGraceEnv+"=") {
			continue
		}
		cmd.Env = append(cmd.Env, kv)
	}
	cmd.Env = append(cmd.Env, backendHelperEnv+"="+dir)
	cmd.Env = append(cmd.Env, extraEnv...)
	if grace != "" {
		cmd.Env = append(cmd.Env, backendGraceEnv+"="+grace)
	}
	if arm {
		cmd.Env = append(cmd.Env, faultinject.EnvKillpoint+"=server.accept")
	}
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	return cmd, &out
}

// waitBackendAddr polls for a backend's published listen address.
func waitBackendAddr(t *testing.T, dir string, log *bytes.Buffer) string {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(filepath.Join(dir, "addr")); err == nil && len(b) > 0 {
			return string(b)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("backend never published its address\n%s", log.String())
	return ""
}

// waitLive polls the gateway until exactly n backends are live.
func waitLive(t *testing.T, g *Gateway, n int, what string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if len(g.LiveBackends()) == n {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s: live backends = %v, want %d", what, g.LiveBackends(), n)
}

// fleetRecord is one "job" journal record plus the backend directory
// whose journal holds it.
type fleetRecord struct {
	dir string
	jobs.JobEntry
}

// fleetRecords counts "job" journal records per job name across every
// backend state directory.
func fleetRecords(t *testing.T, dirs []string) map[string][]fleetRecord {
	t.Helper()
	out := make(map[string][]fleetRecord)
	for _, dir := range dirs {
		entries, err := journal.Recover(filepath.Join(dir, "state", "daemon.journal"))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.Type != "job" {
				continue
			}
			var je jobs.JobEntry
			if err := e.Decode(&je); err != nil {
				t.Fatal(err)
			}
			out[je.Name] = append(out[je.Name], fleetRecord{dir: filepath.Base(dir), JobEntry: je})
		}
	}
	return out
}

// localDigest analyzes a trace body in-process — the independent answer
// the fleet's journaled digest must match.
func localDigest(t *testing.T, body []byte) string {
	t.Helper()
	tr, err := trace.ParseBytes(body)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AnalyzeContext(context.Background(), tr, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return jobs.ResultDigest(res)
}

// TestGatewayFleetChaos is the fleet convergence proof: flood a
// three-backend fleet through the gateway, SIGKILL one backend mid-
// flood, restart it, and require that every accepted key converges to
// exactly one journal record across the fleet with the digest an
// independent local analysis produces — then that a pure-duplicate wave
// replays from the gateway cache, and that a fully dead fleet gets an
// honest 503.
func TestGatewayFleetChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	root := t.TempDir()
	const nBackends = 3
	dirs := make([]string, nBackends)
	cmds := make([]*exec.Cmd, nBackends)
	logs := make([]*bytes.Buffer, nBackends)
	addrs := make([]string, nBackends)
	for i := range dirs {
		dirs[i] = filepath.Join(root, fmt.Sprintf("b%d", i))
		if err := os.MkdirAll(dirs[i], 0o777); err != nil {
			t.Fatal(err)
		}
		cmds[i], logs[i] = backendCmd(t, dirs[i], "30s", false)
		if err := cmds[i].Start(); err != nil {
			t.Fatal(err)
		}
		addrs[i] = "http://" + waitBackendAddr(t, dirs[i], logs[i])
	}
	defer func() {
		for _, c := range cmds {
			if c.Process != nil {
				c.Process.Kill()
				c.Wait()
			}
		}
	}()

	gwLog := &syncBuffer{}
	g, err := New(Config{
		Backends:       addrs,
		ProbeInterval:  50 * time.Millisecond,
		ProbeTimeout:   2 * time.Second,
		EjectThreshold: 2,
		RetryAfter:     5 * time.Second,
		Seed:           1,
		Events:         obs.NewEventLog(gwLog, "gw"),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g.StartProbing(ctx)
	waitLive(t, g, nBackends, "startup")
	gwSrv, gwAddr, err := g.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gwSrv.Close()
	gwURL := "http://" + gwAddr

	// Seven bodies: six for the flood, one held back so the fleet-down
	// probe below is guaranteed not to be answerable from the cache.
	all, err := flood.BuildCorpus([]string{"Music Player", "Aard Dictionary"}, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	corpus, fresh := all[:6], all[6]
	keyToBody := make(map[string][]byte, len(corpus))
	for _, b := range corpus {
		keyToBody[server.IdempotencyKey(b)] = b
	}

	// Pass 1: paced flood with duplicates; SIGKILL backend 0 mid-run.
	floodDone := make(chan struct {
		sum *flood.Summary
		err error
	}, 1)
	go func() {
		sum, err := flood.Run(ctx, flood.Config{
			BaseURL:     gwURL,
			Requests:    40,
			RPS:         100,
			DupRatio:    0.5,
			Corpus:      corpus,
			Seed:        2,
			MaxAttempts: 4,
			Timeout:     20 * time.Second,
		})
		floodDone <- struct {
			sum *flood.Summary
			err error
		}{sum, err}
	}()
	time.Sleep(150 * time.Millisecond)
	if err := cmds[0].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmds[0].Wait()
	res := <-floodDone
	if res.err != nil {
		t.Fatalf("flood: %v", res.err)
	}
	sum := res.sum
	if len(sum.AcceptedKeys) == 0 {
		t.Fatalf("flood accepted nothing: %+v", sum)
	}
	waitLive(t, g, nBackends-1, "after kill")

	// Restart the killed backend (it rebinds its old address). Its sweep
	// is grace-gated: the prober's reconcile handshake lands first and
	// reclaims in-doubt orphans.
	cmds[0], logs[0] = backendCmd(t, dirs[0], "30s", false)
	if err := cmds[0].Start(); err != nil {
		t.Fatal(err)
	}
	waitLive(t, g, nBackends, "after restart")

	// Converge: every accepted key must reach done through the gateway
	// (polling also warms the result cache).
	cl := &server.Client{BaseURL: gwURL}
	pollCtx, pollCancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer pollCancel()
	for _, key := range sum.AcceptedKeys {
		for {
			resp, err := cl.Status(pollCtx, key)
			if err == nil && resp.Status == server.StatusDone {
				break
			}
			if err == nil && resp.Status == server.StatusQuarantined {
				t.Fatalf("key %s quarantined (%s)", key, resp.Reason)
			}
			if pollCtx.Err() != nil {
				t.Fatalf("key %s never completed\nb0:\n%s", key, logs[0].String())
			}
			time.Sleep(25 * time.Millisecond)
		}
	}

	// Pass 2: a pure-duplicate wave replays from the cache — zero fresh
	// acceptances, every answer marked Cached.
	hitsBefore := cacheHits.Value()
	sum2, err := flood.Run(context.Background(), flood.Config{
		BaseURL:  gwURL,
		Requests: len(sum.AcceptedKeys),
		DupRatio: 1,
		Corpus:   acceptedBodies(t, sum.AcceptedKeys, keyToBody),
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Codes["202"] != 0 {
		t.Fatalf("duplicate wave produced %d fresh acceptances: %+v", sum2.Codes["202"], sum2)
	}
	if sum2.CacheHits < sum2.Sent*9/10 {
		t.Fatalf("cache served %d/%d duplicate replays, want >= 90%%", sum2.CacheHits, sum2.Sent)
	}
	if cacheHits.Value() == hitsBefore {
		t.Fatal("gateway cache-hit counter did not move during the duplicate wave")
	}

	// Kill the whole fleet: readiness flips and submissions get an
	// honest 503 with a Retry-After hint.
	for _, c := range cmds {
		c.Process.Kill()
		c.Wait()
	}
	waitLive(t, g, 0, "fleet down")
	rz, err := http.Get(gwURL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d with the fleet down, want 503", rz.StatusCode)
	}
	// A cached body would (correctly) still answer 200 here; a fresh one
	// must get the honest refusal.
	pr, err := http.Post(gwURL+"/v1/jobs", "text/plain", bytes.NewReader(fresh))
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Body.Close()
	if pr.StatusCode != http.StatusServiceUnavailable || pr.Header.Get("Retry-After") == "" {
		t.Fatalf("fleet-down submit = %d (Retry-After %q), want 503 with a hint",
			pr.StatusCode, pr.Header.Get("Retry-After"))
	}

	// The convergence proof: exactly one journal record per accepted key
	// across the fleet, with the independently computed digest.
	records := fleetRecords(t, dirs)
	for _, key := range sum.AcceptedKeys {
		name := key + ".trace"
		recs := records[name]
		if len(recs) != 1 {
			t.Errorf("key %s: %d journal records across the fleet, want exactly 1: %+v", key, len(recs), recs)
			continue
		}
		if want := localDigest(t, keyToBody[key]); recs[0].Digest != want {
			t.Errorf("key %s: fleet digest %q != local digest %q", key, recs[0].Digest, want)
		}
	}
	if t.Failed() {
		t.Logf("gateway:\n%s", gwLog.String())
		for i, l := range logs {
			t.Logf("b%d:\n%s", i, l.String())
		}
	}
}

// acceptedBodies maps accepted keys back to their corpus bodies.
func acceptedBodies(t *testing.T, keys []string, keyToBody map[string][]byte) [][]byte {
	t.Helper()
	out := make([][]byte, 0, len(keys))
	for _, k := range keys {
		body, ok := keyToBody[k]
		if !ok {
			t.Fatalf("accepted key %s not in the corpus", k)
		}
		out = append(out, body)
	}
	return out
}

// TestGatewayFailoverReclaim is the deterministic in-doubt proof: the
// home backend is killed at the server.accept kill-point — after the
// trace is durably spooled, before any acknowledgement — so the gateway
// fails the submission over to the peer. The orphaned spool file on the
// dead backend must be reclaimed by the reconcile handshake at restart,
// leaving exactly one journal record across the fleet.
func TestGatewayFailoverReclaim(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	root := t.TempDir()
	dirs := []string{filepath.Join(root, "b0"), filepath.Join(root, "b1")}
	cmds := make([]*exec.Cmd, 2)
	logs := make([]*bytes.Buffer, 2)
	addrs := make([]string, 2)
	for i, d := range dirs {
		if err := os.MkdirAll(d, 0o777); err != nil {
			t.Fatal(err)
		}
		cmds[i], logs[i] = backendCmd(t, d, "30s", false)
		if err := cmds[i].Start(); err != nil {
			t.Fatal(err)
		}
		addrs[i] = "http://" + waitBackendAddr(t, d, logs[i])
	}
	defer func() {
		for _, c := range cmds {
			if c.Process != nil {
				c.Process.Kill()
				c.Wait()
			}
		}
	}()

	gwLog := &syncBuffer{}
	g, err := New(Config{
		Backends:       addrs,
		ProbeInterval:  50 * time.Millisecond,
		ProbeTimeout:   2 * time.Second,
		EjectThreshold: 1,
		Seed:           1,
		Events:         obs.NewEventLog(gwLog, "gw"),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g.StartProbing(ctx)
	waitLive(t, g, 2, "startup")

	// A real (analyzable) corpus body; whichever backend the ring homes
	// it to is restarted ARMED (it rebinds its address), so the kill-point
	// deterministically fires on the submission's first hop.
	corpus, err := flood.BuildCorpus([]string{"Music Player", "Aard Dictionary"}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	body := corpus[0]
	key := server.IdempotencyKey(body)
	name := key + ".trace"
	home := 0
	if g.ring.Order(key)[0] != addrs[0] {
		home = 1
	}
	peer := 1 - home
	cmds[home].Process.Kill()
	cmds[home].Wait()
	cmds[home], logs[home] = backendCmd(t, dirs[home], "30s", true)
	if err := cmds[home].Start(); err != nil {
		t.Fatal(err)
	}
	waitLive(t, g, 2, "armed home restart")

	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body)))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("failover submit = %d, want 202 from the surviving peer\n%s", rec.Code, rec.Body.String())
	}
	var resp server.SubmitResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Job != key {
		t.Fatalf("job %s, want %s", resp.Job, key)
	}
	if failoversTotal.Value() == 0 {
		t.Fatal("failover counter did not move")
	}
	werr := cmds[home].Wait()
	var ee *exec.ExitError
	if !errors.As(werr, &ee) || ee.ExitCode() != faultinject.KillExitCode {
		t.Fatalf("home backend exit = %v, want kill at server.accept\n%s", werr, logs[home].String())
	}
	// The in-doubt window is real: the home backend durably spooled the
	// trace before dying, without ever answering.
	if _, err := os.Stat(filepath.Join(dirs[home], "spool", name)); err != nil {
		t.Fatalf("no orphaned spool file on the killed home backend: %v", err)
	}

	// Restart the home backend cleanly (it rebinds its old address).
	// Reinstatement runs the reconcile handshake before routing resumes;
	// the orphan must disappear without ever being analyzed.
	cmds[home], logs[home] = backendCmd(t, dirs[home], "30s", false)
	if err := cmds[home].Start(); err != nil {
		t.Fatal(err)
	}
	waitLive(t, g, 2, "after restart")
	orphanDeadline := time.Now().Add(20 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(dirs[home], "spool", name)); os.IsNotExist(err) {
			break
		}
		if time.Now().After(orphanDeadline) {
			t.Fatalf("orphaned spool file never reclaimed\ngateway:\n%s\nhome:\n%s", gwLog.String(), logs[home].String())
		}
		time.Sleep(25 * time.Millisecond)
	}

	// The failed-over job completes on the peer; the fleet holds exactly
	// one record with the independent digest.
	gwSrv, gwAddr, err := g.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gwSrv.Close()
	scl := &server.Client{BaseURL: "http://" + gwAddr}
	pollCtx, pollCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer pollCancel()
	for {
		st, err := scl.Status(pollCtx, key)
		if err == nil && st.Status == server.StatusDone {
			break
		}
		if err == nil && st.Status == server.StatusQuarantined {
			t.Fatalf("failed-over job quarantined (%s)\npeer:\n%s", st.Reason, logs[peer].String())
		}
		if pollCtx.Err() != nil {
			t.Fatalf("failed-over job never completed\npeer:\n%s", logs[peer].String())
		}
		time.Sleep(25 * time.Millisecond)
	}
	for _, c := range cmds {
		c.Process.Kill()
		c.Wait()
	}
	records := fleetRecords(t, dirs)
	recs := records[name]
	if len(recs) != 1 {
		t.Fatalf("fleet holds %d records for %s, want exactly 1: %+v\ngateway:\n%s\nhome:\n%s\npeer:\n%s",
			len(recs), name, recs, gwLog.String(), logs[home].String(), logs[peer].String())
	}
	if want := localDigest(t, body); recs[0].Digest != want {
		t.Fatalf("fleet digest %q != local digest %q", recs[0].Digest, want)
	}
}
