package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRotatingFile checks the size-capped event sink: rotation renames
// the live file to .1 (replacing the previous .1), no record is ever
// split across files, the on-disk footprint stays bounded, and the
// rotation counter moves.
func TestRotatingFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	before := eventRotationsTotal.Value()

	w, err := OpenRotatingFile(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	record := strings.Repeat("x", 39) + "\n" // 40 bytes: 2 fit under the cap, the 3rd rotates
	for i := 0; i < 7; i++ {
		if n, err := w.Write([]byte(record)); err != nil || n != len(record) {
			t.Fatalf("write %d: n=%d err=%v", i, n, err)
		}
	}

	live, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	old, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatalf("no rotated .1 file: %v", err)
	}
	if len(live)+len(old) > 2*100+len(record) {
		t.Fatalf("disk footprint %d+%d exceeds the 2×max bound", len(live), len(old))
	}
	for name, data := range map[string][]byte{"live": live, ".1": old} {
		for _, line := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
			if line != strings.Repeat("x", 39) {
				t.Fatalf("%s file holds a torn record %q", name, line)
			}
		}
	}
	if got := eventRotationsTotal.Value() - before; got < 2 {
		t.Fatalf("rotation counter moved %d, want >= 2", got)
	}

	// A single oversized record is written whole, not split or refused.
	big := strings.Repeat("y", 150) + "\n"
	if _, err := w.Write([]byte(big)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), big) {
		t.Fatal("oversized record not written whole")
	}

	// Reopening resumes from the existing size: the next write past the
	// cap rotates instead of growing forever.
	w2, err := OpenRotatingFile(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if _, err := w2.Write([]byte(record)); err != nil {
		t.Fatal(err)
	}
	rotated, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rotated), "y") {
		t.Fatal("reopen did not account for the existing file size")
	}
}
