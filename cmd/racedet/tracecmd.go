// Trace stitching for the racedet CLI: fetch one distributed trace's
// fragments from every process that recorded a piece of it — the
// gateway, each backend, and optionally a local -trace-out file — and
// render the merged parent/child tree as a waterfall. Each process only
// ever holds its own spans (there is no central collector), so the CLI
// is where the cross-process picture comes together.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"droidracer/internal/obs"
)

// writeClientSpan persists (and records) the client's side of a
// submission trace: the span covering the whole retrying Submit call,
// rooted at the SpanID the traceparent header carried, so the server's
// spans hang under it when the trace is stitched.
func writeClientSpan(sc obs.SpanContext, url, path string, start time.Time, d time.Duration, attempts int, submitErr error) {
	if path == "" {
		return
	}
	span := obs.TraceSpan{
		TraceID: sc.TraceID,
		SpanID:  sc.SpanID,
		Name:    "client.submit",
		Service: "racedet",
		Start:   start, Duration: d,
		Attrs: map[string]string{
			"url":      url,
			"attempts": fmt.Sprintf("%d", attempts),
		},
	}
	if submitErr != nil {
		span.Err = submitErr.Error()
	}
	data, err := json.MarshalIndent([]obs.TraceSpan{span}, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o666); err != nil {
		fatal(err)
	}
}

// runTrace is the -trace entry point: collect the trace's spans from
// every source, dedup, and print the waterfall. Sources that are
// unreachable or do not know the trace warn to stderr and are skipped;
// if nothing knows the trace the exit status is 1.
func runTrace(id string, sources []string) {
	if len(sources) == 0 {
		fatal(fmt.Errorf("-trace requires at least one source: a process base URL or a span-JSON file"))
	}
	var spans []obs.TraceSpan
	seen := make(map[string]bool)
	found := 0
	for _, src := range sources {
		frag, err := fetchSpans(id, src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "racedet: %s: %v\n", src, err)
			continue
		}
		if len(frag) == 0 {
			fmt.Fprintf(os.Stderr, "racedet: %s: trace %s not found\n", src, id)
			continue
		}
		found++
		for _, sp := range frag {
			if sp.TraceID != "" && sp.TraceID != id {
				continue
			}
			if sp.SpanID == "" || seen[sp.SpanID] {
				continue
			}
			seen[sp.SpanID] = true
			spans = append(spans, sp)
		}
	}
	if found == 0 || len(spans) == 0 {
		fmt.Fprintf(os.Stderr, "racedet: trace %s not found at any source\n", id)
		os.Exit(1)
	}
	fmt.Print(renderWaterfall(id, spans))
}

// fetchSpans loads one source's fragment of the trace. URLs are queried
// at /debug/traces/<id>; anything else is read as a local JSON file
// holding either a bare span array or a {"spans": [...]} document.
func fetchSpans(id, src string) ([]obs.TraceSpan, error) {
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		return fetchRemote(id, src)
	}
	data, err := os.ReadFile(src)
	if err != nil {
		return nil, err
	}
	return decodeSpans(data)
}

func fetchRemote(id, base string) ([]obs.TraceSpan, error) {
	cl := &http.Client{Timeout: 10 * time.Second}
	resp, err := cl.Get(strings.TrimSuffix(base, "/") + "/debug/traces/" + id)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	var doc struct {
		Spans []obs.TraceSpan `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return doc.Spans, nil
}

func decodeSpans(data []byte) ([]obs.TraceSpan, error) {
	var bare []obs.TraceSpan
	if err := json.Unmarshal(data, &bare); err == nil {
		return bare, nil
	}
	var doc struct {
		Spans []obs.TraceSpan `json:"spans"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	return doc.Spans, nil
}

// renderWaterfall builds the parent/child tree (orphans — spans whose
// parent lives in a process that was not queried — become roots) and
// renders one line per span: service, indented name with attributes,
// start offset from the earliest span, duration, and a proportional
// bar positioned on the trace's time axis.
func renderWaterfall(id string, spans []obs.TraceSpan) string {
	byID := make(map[string]int, len(spans))
	for i, sp := range spans {
		byID[sp.SpanID] = i
	}
	children := make(map[string][]int)
	var roots []int
	for i, sp := range spans {
		if sp.Parent != "" {
			if _, ok := byID[sp.Parent]; ok {
				children[sp.Parent] = append(children[sp.Parent], i)
				continue
			}
		}
		roots = append(roots, i)
	}
	byStart := func(idx []int) {
		sort.SliceStable(idx, func(a, b int) bool { return spans[idx[a]].Start.Before(spans[idx[b]].Start) })
	}
	byStart(roots)
	for _, c := range children {
		byStart(c)
	}

	t0 := spans[roots[0]].Start
	var tEnd time.Time
	services := make(map[string]bool)
	for _, sp := range spans {
		if sp.Start.Before(t0) {
			t0 = sp.Start
		}
		if e := sp.Start.Add(sp.Duration); e.After(tEnd) {
			tEnd = e
		}
		services[sp.Service] = true
	}
	total := tEnd.Sub(t0)
	if total <= 0 {
		total = time.Nanosecond
	}

	type line struct {
		service, label string
		span           obs.TraceSpan
	}
	var lines []line
	var walk func(idx []int, depth int)
	walk = func(idx []int, depth int) {
		for _, i := range idx {
			sp := spans[i]
			label := strings.Repeat("  ", depth) + sp.Name
			if a := formatAttrs(sp.Attrs); a != "" {
				label += " " + a
			}
			lines = append(lines, line{service: sp.Service, label: label, span: sp})
			walk(children[sp.SpanID], depth+1)
		}
	}
	walk(roots, 0)

	wService, wLabel := len("service"), 0
	for _, l := range lines {
		if len(l.service) > wService {
			wService = len(l.service)
		}
		if len(l.label) > wLabel {
			wLabel = len(l.label)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "trace %s: %d span(s) across %d service(s), %s total\n",
		id, len(lines), len(services), formatDur(total))
	for _, l := range lines {
		sp := l.span
		mark := " "
		if sp.Err != "" {
			mark = "!"
		}
		fmt.Fprintf(&b, "%s %-*s  %-*s  %9s  %9s  %s\n",
			mark, wService, l.service, wLabel, l.label,
			"+"+formatDur(sp.Start.Sub(t0)), formatDur(sp.Duration),
			bar(sp.Start.Sub(t0), sp.Duration, total))
		if sp.Err != "" {
			fmt.Fprintf(&b, "%*serr: %s\n", wService+4, "", sp.Err)
		}
	}
	return b.String()
}

// formatAttrs renders span attributes as a stable "[k=v k=v]" suffix.
func formatAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+attrs[k])
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// bar renders the span's position on the trace time axis: dots for the
// lead-in, blocks for the span's extent (at least one).
func bar(offset, d, total time.Duration) string {
	const width = 28
	lead := int(float64(offset) / float64(total) * width)
	span := int(float64(d) / float64(total) * width)
	if lead >= width {
		lead = width - 1
	}
	if span < 1 {
		span = 1
	}
	if lead+span > width {
		span = width - lead
	}
	return strings.Repeat("·", lead) + strings.Repeat("■", span) + strings.Repeat(" ", width-lead-span)
}

// formatDur renders durations at microsecond-to-second friendliness.
func formatDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
