package gateway

import "droidracer/internal/obs"

// Gateway metrics. Status codes are pre-registered so scrapes see the
// complete series set from process start; per-backend series (forwards,
// ejections, reinstatements) register at first use because the backend
// list is runtime configuration.
var (
	gwRequestsTotal = map[string]*obs.Counter{}
	cacheHits       = obs.Default().Counter("droidracer_gateway_cache_hits_total",
		"Duplicate submissions answered from the gateway result cache.")
	cacheMisses = obs.Default().Counter("droidracer_gateway_cache_misses_total",
		"Submissions not answerable from the gateway result cache.")
	cacheEvictions = obs.Default().Counter("droidracer_gateway_cache_evictions_total",
		"Terminal results evicted from the bounded gateway cache.")
	cacheEntriesGauge = obs.Default().Gauge("droidracer_gateway_cache_entries",
		"Terminal results currently held by the gateway cache.")
	failoversTotal = obs.Default().Counter("droidracer_gateway_failovers_total",
		"Submissions rehashed onto the next live ring peer after a backend failure.")
	backendsLiveGauge = obs.Default().Gauge("droidracer_gateway_backends_live",
		"Backends currently passing health probes.")
	fleetUnavailableTotal = obs.Default().Counter("droidracer_gateway_fleet_unavailable_total",
		"Submissions refused because every backend was down or ejected.")
	ledgerDroppedTotal = obs.Default().Counter("droidracer_gateway_ledger_dropped_total",
		"In-doubt keys dropped from the bounded reconcile ledger under overflow.")
	// Digest cross-check guards on cache fills: a done answer without a
	// well-formed result digest is served but never cached; conflicting
	// digests for one content key evict the cache entry. Either counter
	// moving means a backend served state that fails integrity checks.
	digestRejectsTotal = obs.Default().Counter("droidracer_gateway_digest_rejects_total",
		"Terminal answers refused a cache slot for lacking a well-formed result digest.")
	digestMismatchTotal = obs.Default().Counter("droidracer_gateway_digest_mismatch_total",
		"Cache evictions from backends answering one content key with contradictory digests.")
)

func init() {
	for _, code := range []string{"200", "202", "400", "404", "405", "413", "422", "429", "502", "503"} {
		gwRequestsTotal[code] = obs.Default().Counter("droidracer_gateway_requests_total",
			"Gateway HTTP responses, by status code.", "code", code)
	}
}

// countGatewayCode bumps the per-code request counter, tolerating codes
// outside the pre-registered set.
func countGatewayCode(code string) {
	if c, ok := gwRequestsTotal[code]; ok {
		c.Inc()
	}
}

func forwardsTotal(backend, outcome string) *obs.Counter {
	return obs.Default().Counter("droidracer_gateway_forwards_total",
		"Forward attempts per backend, by outcome (ok, rejected, failed, canceled).",
		"backend", backend, "outcome", outcome)
}

func ejectionsTotal(backend string) *obs.Counter {
	return obs.Default().Counter("droidracer_gateway_backend_ejections_total",
		"Health-probe or forward-failure ejections, per backend.", "backend", backend)
}

func reinstatementsTotal(backend string) *obs.Counter {
	return obs.Default().Counter("droidracer_gateway_backend_reinstatements_total",
		"Previously ejected backends reinstated after passing probes.", "backend", backend)
}
