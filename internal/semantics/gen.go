package semantics

import (
	"fmt"
	"math/rand"

	"droidracer/internal/trace"
)

// GenConfig controls RandomTrace.
type GenConfig struct {
	MaxOps     int     // approximate number of operations to generate
	MaxThreads int     // cap on total threads (≥ 2)
	Locs       int     // number of distinct memory locations
	Locks      int     // number of distinct locks
	PQueue     float64 // probability a forked thread attaches a task queue
	PDelayed   float64 // probability a post is delayed
	PFront     float64 // probability a post goes to the front of the queue
}

// DefaultGenConfig returns a configuration that produces small but
// structurally rich traces: multiple queue and non-queue threads, posts in
// all flavors, locks, and forks/joins.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		MaxOps:     120,
		MaxThreads: 6,
		Locs:       8,
		Locks:      3,
		PQueue:     0.5,
		PDelayed:   0.1,
		PFront:     0.05,
	}
}

// genThread is the generator's view of one simulated thread.
type genThread struct {
	id       trace.ThreadID
	hasQueue bool
	looping  bool
	inTask   trace.TaskID // "" when idle / between tasks
	queue    []trace.TaskID
	delayed  []trace.TaskID
	locks    []trace.LockID
	exited   bool
	started  bool
}

// RandomTrace generates a random execution trace that is valid under the
// Figure 5 semantics (Validate always succeeds on it). It simulates an
// application scheduling loop, choosing among enabled actions uniformly.
// The same rng state yields the same trace.
func RandomTrace(rng *rand.Rand, cfg GenConfig) *trace.Trace {
	if cfg.MaxThreads < 2 {
		cfg.MaxThreads = 2
	}
	tr := &trace.Trace{}
	taskSeq := 0
	newTask := func() trace.TaskID {
		taskSeq++
		return trace.TaskID(fmt.Sprintf("task%d", taskSeq))
	}

	// The main thread t1 has a queue and loops; thread t2 starts without
	// one (mirroring the paper's main + binder arrangement).
	threads := []*genThread{
		{id: 1, hasQueue: true},
		{id: 2},
	}
	nextID := trace.ThreadID(3)
	for _, t := range threads {
		tr.Append(trace.ThreadInit(t.id))
		t.started = true
	}
	tr.Append(trace.AttachQ(1))
	tr.Append(trace.LoopOnQ(1))
	threads[0].looping = true

	queueThreads := func() []*genThread {
		var qs []*genThread
		for _, t := range threads {
			if t.hasQueue && !t.exited {
				qs = append(qs, t)
			}
		}
		return qs
	}

	loc := func() trace.Loc { return trace.Loc(fmt.Sprintf("m%d", rng.Intn(cfg.Locs))) }

	lockFree := func(l trace.LockID, self *genThread) bool {
		for _, t := range threads {
			if t == self {
				continue
			}
			for _, held := range t.locks {
				if held == l {
					return false
				}
			}
		}
		return true
	}

	for tr.Len() < cfg.MaxOps {
		// Pick a runnable thread.
		var runnable []*genThread
		for _, t := range threads {
			if t.exited || !t.started {
				continue
			}
			if t.looping && t.inTask == "" && len(t.queue) == 0 && len(t.delayed) == 0 {
				continue // idle looper with empty queue blocks
			}
			runnable = append(runnable, t)
		}
		if len(runnable) == 0 {
			break
		}
		t := runnable[rng.Intn(len(runnable))]

		// An idle looper must begin a task before doing anything else.
		if t.looping && t.inTask == "" {
			var task trace.TaskID
			if len(t.delayed) > 0 && (len(t.queue) == 0 || rng.Intn(2) == 0) {
				i := rng.Intn(len(t.delayed))
				task = t.delayed[i]
				t.delayed = append(t.delayed[:i], t.delayed[i+1:]...)
			} else {
				task = t.queue[0]
				t.queue = t.queue[1:]
			}
			tr.Append(trace.Begin(t.id, task))
			t.inTask = task
			continue
		}

		// A non-queue thread or a looper inside a task picks an action.
		switch rng.Intn(10) {
		case 0, 1, 2: // memory access
			if rng.Intn(2) == 0 {
				tr.Append(trace.Read(t.id, loc()))
			} else {
				tr.Append(trace.Write(t.id, loc()))
			}
		case 3: // lock acquire/release
			if len(t.locks) > 0 && rng.Intn(2) == 0 {
				i := rng.Intn(len(t.locks))
				l := t.locks[i]
				t.locks = append(t.locks[:i], t.locks[i+1:]...)
				tr.Append(trace.Release(t.id, l))
			} else if cfg.Locks > 0 {
				l := trace.LockID(fmt.Sprintf("l%d", rng.Intn(cfg.Locks)))
				if lockFree(l, t) {
					t.locks = append(t.locks, l)
					tr.Append(trace.Acquire(t.id, l))
				}
			}
		case 4, 5: // post to a random queue thread
			qs := queueThreads()
			if len(qs) == 0 {
				continue
			}
			dest := qs[rng.Intn(len(qs))]
			task := newTask()
			if rng.Intn(3) == 0 {
				tr.Append(trace.Enable(t.id, task))
			}
			r := rng.Float64()
			switch {
			case r < cfg.PDelayed:
				tr.Append(trace.PostDelayed(t.id, task, dest.id, int64(rng.Intn(1000))))
				dest.delayed = append(dest.delayed, task)
			case r < cfg.PDelayed+cfg.PFront:
				tr.Append(trace.PostFront(t.id, task, dest.id))
				dest.queue = append([]trace.TaskID{task}, dest.queue...)
			default:
				tr.Append(trace.Post(t.id, task, dest.id))
				dest.queue = append(dest.queue, task)
			}
		case 6: // fork
			if len(threads) >= cfg.MaxThreads {
				continue
			}
			child := &genThread{id: nextID, hasQueue: rng.Float64() < cfg.PQueue}
			nextID++
			threads = append(threads, child)
			tr.Append(trace.Fork(t.id, child.id))
			tr.Append(trace.ThreadInit(child.id))
			child.started = true
			if child.hasQueue {
				tr.Append(trace.AttachQ(child.id))
				tr.Append(trace.LoopOnQ(child.id))
				child.looping = true
			}
		case 7: // join a finished thread
			for _, other := range threads {
				if other.exited && other != t {
					tr.Append(trace.Join(t.id, other.id))
					break
				}
			}
		case 8: // end current task (loopers) or exit (plain threads)
			if t.looping && t.inTask != "" {
				// Release any locks still held inside the task first to
				// keep lock usage well nested.
				for len(t.locks) > 0 {
					l := t.locks[len(t.locks)-1]
					t.locks = t.locks[:len(t.locks)-1]
					tr.Append(trace.Release(t.id, l))
				}
				tr.Append(trace.End(t.id, t.inTask))
				t.inTask = ""
			} else if !t.hasQueue && t.id != 2 {
				for len(t.locks) > 0 {
					l := t.locks[len(t.locks)-1]
					t.locks = t.locks[:len(t.locks)-1]
					tr.Append(trace.Release(t.id, l))
				}
				tr.Append(trace.ThreadExit(t.id))
				t.exited = true
			}
		case 9: // enable a task that may or may not be posted later
			tr.Append(trace.Enable(t.id, newTask()))
		}
	}

	// Drain: end any open tasks and release held locks so the trace is a
	// clean prefix of a terminating execution.
	for _, t := range threads {
		if t.exited || !t.started {
			continue
		}
		for len(t.locks) > 0 {
			l := t.locks[len(t.locks)-1]
			t.locks = t.locks[:len(t.locks)-1]
			tr.Append(trace.Release(t.id, l))
		}
		if t.inTask != "" {
			tr.Append(trace.End(t.id, t.inTask))
			t.inTask = ""
		}
	}
	return tr
}
