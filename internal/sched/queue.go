package sched

import "droidracer/internal/trace"

// message is one posted asynchronous task.
type message struct {
	task      trace.TaskID
	fn        TaskFunc
	cancelled bool
}

// msgQueue is a FIFO task queue with front insertion and cancellation.
type msgQueue struct {
	msgs  []*message
	known map[trace.TaskID]*message // every message ever routed here
}

func newMsgQueue() *msgQueue {
	return &msgQueue{known: make(map[trace.TaskID]*message)}
}

func (q *msgQueue) push(m *message)      { q.msgs = append(q.msgs, m) }
func (q *msgQueue) pushFront(m *message) { q.msgs = append([]*message{m}, q.msgs...) }

func (q *msgQueue) pop() *message {
	for len(q.msgs) > 0 {
		m := q.msgs[0]
		q.msgs = q.msgs[1:]
		if m.cancelled {
			continue
		}
		return m
	}
	return nil
}

func (q *msgQueue) remove(task trace.TaskID) {
	for i, m := range q.msgs {
		if m.task == task {
			q.msgs = append(q.msgs[:i], q.msgs[i+1:]...)
			return
		}
	}
}

func (q *msgQueue) empty() bool {
	for _, m := range q.msgs {
		if !m.cancelled {
			return false
		}
	}
	return true
}

// delayedMsg is a message waiting for the virtual clock.
type delayedMsg struct {
	due  int64
	seq  int // insertion order breaks due-time ties deterministically
	dest *Thread
	msg  *message
}

// delayHeap is a min-heap over (due, seq) implemented directly to keep the
// scheduler free of interface boxing in its hot path.
type delayHeap []*delayedMsg

func (h delayHeap) Len() int { return len(h) }

func (h delayHeap) less(i, j int) bool {
	if h[i].due != h[j].due {
		return h[i].due < h[j].due
	}
	return h[i].seq < h[j].seq
}

func (h *delayHeap) push(d *delayedMsg) {
	*h = append(*h, d)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *delayHeap) pop() *delayedMsg {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(*h) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(*h) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}
