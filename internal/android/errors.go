package android

import "fmt"

// ModelError reports a mistake in an application model — an unregistered
// activity or service, a missing widget, a lifecycle request the current
// state forbids. The model API is used inside callbacks running on
// simulated threads and has no error return path, so these are raised as
// panic(&ModelError{...}); the scheduler recovers them into the run's
// error (with the cause preserved for errors.As), and budget.Isolate
// does the same for panics escaping direct calls. Internal-invariant
// violations remain plain panics: they indicate bugs in the environment
// model, not in the app under test.
type ModelError struct {
	// Component is the model element involved, e.g. `activity "Music"`.
	Component string
	// Op is the API call that failed, e.g. "StartActivity".
	Op string
	// Err describes the mistake.
	Err error
}

// Error implements error.
func (e *ModelError) Error() string {
	return fmt.Sprintf("android: %s: %s: %v", e.Op, e.Component, e.Err)
}

// Unwrap exposes the cause.
func (e *ModelError) Unwrap() error { return e.Err }

// modelFail raises a ModelError from model-API code with no error
// return path; see the type comment for how it is recovered.
func modelFail(op, component string, format string, args ...any) {
	panic(&ModelError{Component: component, Op: op, Err: fmt.Errorf(format, args...)})
}
