// Package bitset provides a dense, fixed-capacity bit set used by the
// happens-before engine to represent reachability rows. The race detector
// computes transitive closures over graphs with thousands of nodes, so the
// per-row representation must support fast union and iteration; a []uint64
// with word-level operations gives both.
package bitset

import "math/bits"

const wordBits = 64

// Set is a fixed-capacity bit set. The zero value is an empty set of
// capacity zero; use New to create a set able to hold n bits.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with capacity for bits 0 through n-1.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity of the set in bits.
func (s *Set) Len() int { return s.n }

// Set sets bit i to 1. It panics if i is out of range.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear sets bit i to 0. It panics if i is out of range.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Has reports whether bit i is set. It panics if i is out of range.
func (s *Set) Has(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
}

// UnionWith sets s to s ∪ t and reports whether s changed.
// It panics if the sets have different capacities.
func (s *Set) UnionWith(t *Set) bool {
	if s.n != t.n {
		panic("bitset: capacity mismatch")
	}
	changed := false
	for i, w := range t.words {
		if nw := s.words[i] | w; nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// WordLen returns the number of 64-bit words backing the set. The
// parallel happens-before engine shards closure passes over contiguous
// word ranges, so the sharding arithmetic lives beside the layout it
// depends on.
func (s *Set) WordLen() int { return len(s.words) }

// UnionWordRange sets words [lo, hi) of s to the union with the same
// words of t and reports whether s changed in that range. It is the
// column-sharded form of UnionWith: two goroutines may union into the
// same set concurrently as long as their word ranges are disjoint.
// It panics if the sets have different capacities.
func (s *Set) UnionWordRange(t *Set, lo, hi int) bool {
	if s.n != t.n {
		panic("bitset: capacity mismatch")
	}
	changed := false
	// Reslice once so the loop body carries no bounds checks: after
	// tw = tw[:len(sw)] the compiler proves both indexings in range.
	sw := s.words[lo:hi]
	tw := t.words[lo:hi]
	tw = tw[:len(sw)]
	for i, w := range tw {
		if nw := sw[i] | w; nw != sw[i] {
			sw[i] = nw
			changed = true
		}
	}
	return changed
}

// CountWordRange returns the number of set bits in words [lo, hi).
func (s *Set) CountWordRange(lo, hi int) int {
	c := 0
	for i := lo; i < hi; i++ {
		c += bits.OnesCount64(s.words[i])
	}
	return c
}

// ResetWordRange clears words [lo, hi) without touching the rest of the
// set. Per-worker accumulators of the parallel engine recycle one
// full-capacity scratch set but only ever read and write their own word
// range, so clearing the whole set every row would waste the sharding.
func (s *Set) ResetWordRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		s.words[i] = 0
	}
}

// CopyFrom overwrites s with the contents of t.
// It panics if the sets have different capacities.
func (s *Set) CopyFrom(t *Set) {
	if s.n != t.n {
		panic("bitset: capacity mismatch")
	}
	copy(s.words, t.words)
}

// UnionCount returns |s ∪ t| without materializing the union — the
// allocation-free form of s.Clone().UnionWith(t).Count() that
// Graph.EdgeCount needs on every metrics publish.
// It panics if the sets have different capacities.
func (s *Set) UnionCount(t *Set) int {
	if s.n != t.n {
		panic("bitset: capacity mismatch")
	}
	c := 0
	for i, w := range t.words {
		c += bits.OnesCount64(s.words[i] | w)
	}
	return c
}

// IntersectsWith reports whether s ∩ t is non-empty.
// It panics if the sets have different capacities.
func (s *Set) IntersectsWith(t *Set) bool {
	if s.n != t.n {
		panic("bitset: capacity mismatch")
	}
	for i, w := range t.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether the set contains at least one bit.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Reset clears all bits without changing the capacity.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Equal reports whether s and t have the same capacity and contents.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for every set bit in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}
