package minimize

import (
	"testing"

	"droidracer/internal/android"
	"droidracer/internal/apps"
	"droidracer/internal/explorer"
	"droidracer/internal/hb"
	"droidracer/internal/paper"
	"droidracer/internal/race"
	"droidracer/internal/semantics"
	"droidracer/internal/trace"
)

// detect runs detection on tr.
func detect(t *testing.T, tr *trace.Trace) (*hb.Graph, []race.Race) {
	t.Helper()
	info, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	g := hb.Build(info, hb.DefaultConfig())
	return g, race.NewDetector(g).DetectDeduped()
}

func TestMinimizePaperPlayerTrace(t *testing.T) {
	app := apps.NewPaperMusicPlayer()
	tr, err := explorer.Replay(apps.Factory(app), 0, []android.UIEvent{{Kind: android.EvBack}})
	if err != nil {
		t.Fatal(err)
	}
	_, races := detect(t, tr)
	var target *race.Race
	for i := range races {
		if races[i].Loc == apps.DestroyedFlag && races[i].Category == race.Multithreaded {
			target = &races[i]
		}
	}
	if target == nil {
		t.Fatalf("no multithreaded race in %v", races)
	}
	res, err := Minimize(tr, *target, hb.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Len() >= tr.Len() {
		t.Fatalf("no reduction: %d -> %d", tr.Len(), res.Trace.Len())
	}
	if res.Removed != tr.Len()-res.Trace.Len() {
		t.Fatalf("Removed = %d", res.Removed)
	}
	// The reduced trace is a valid execution and still shows the race.
	if i, err := semantics.ValidateInferred(res.Trace); err != nil {
		t.Fatalf("reduced trace invalid at %d: %v", i, err)
	}
	_, reducedRaces := detect(t, res.Trace)
	found := false
	for _, r := range reducedRaces {
		if r.Loc == apps.DestroyedFlag && r.Category == race.Multithreaded {
			found = true
		}
	}
	if !found {
		t.Fatalf("race lost; reduced races = %v", reducedRaces)
	}
	// The re-indexed race in the result is the conflicting unordered pair.
	a, b := res.Race.First, res.Race.Second
	if !res.Trace.Op(a).Conflicts(res.Trace.Op(b)) {
		t.Fatalf("result race ops do not conflict: %v / %v", res.Trace.Op(a), res.Trace.Op(b))
	}
	// Substantial reduction is expected: the progress machinery drops.
	if res.Trace.Len() > tr.Len()*2/3 {
		t.Errorf("weak reduction: %d -> %d ops", tr.Len(), res.Trace.Len())
	}
}

func TestMinimizeSyntheticCrossPosted(t *testing.T) {
	// Three unrelated worker threads, sweeps, and one cross-posted race:
	// minimization should strip everything but the racing skeleton.
	ops := []trace.Op{
		trace.ThreadInit(1),
		trace.AttachQ(1),
		trace.LoopOnQ(1),
		trace.ThreadInit(2),
		trace.ThreadInit(3),
		trace.ThreadInit(4),
		trace.ThreadInit(5),
	}
	// Unrelated busywork threads.
	for _, tid := range []trace.ThreadID{4, 5} {
		for k := 0; k < 10; k++ {
			ops = append(ops, trace.Write(tid, trace.Loc("junk")))
		}
	}
	ops = append(ops,
		trace.Post(2, "update", 1),
		trace.Post(3, "query", 1),
		trace.Post(2, "banner", 1), // unrelated task
		trace.Begin(1, "update"),
		trace.Write(1, "row"),
		trace.End(1, "update"),
		trace.Begin(1, "query"),
		trace.Read(1, "row"),
		trace.End(1, "query"),
		trace.Begin(1, "banner"),
		trace.Write(1, "banner.text"),
		trace.End(1, "banner"),
	)
	tr := trace.FromOps(ops)
	_, races := detect(t, tr)
	var target *race.Race
	for i := range races {
		if races[i].Loc == "row" {
			target = &races[i]
		}
	}
	if target == nil {
		t.Fatalf("races = %v", races)
	}
	res, err := Minimize(tr, *target, hb.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Junk threads, the banner task, and the junk accesses all go.
	for _, op := range res.Trace.Ops() {
		if op.Thread == 4 || op.Thread == 5 {
			t.Fatalf("junk thread survived: %v", op)
		}
		if op.Task == "banner" || op.Loc == "junk" || op.Loc == "banner.text" {
			t.Fatalf("unrelated op survived: %v", op)
		}
	}
	if res.Race.Category != race.CrossPosted {
		t.Fatalf("category after minimization = %v", res.Race.Category)
	}
	if res.Trace.Len() > 14 {
		t.Errorf("reduced trace still has %d ops:\n", res.Trace.Len())
		for i, op := range res.Trace.Ops() {
			t.Logf("%2d %v", i, op)
		}
	}
}

func TestMinimizeRejectsNonRace(t *testing.T) {
	tr := paper.Figure3()
	// Ops 7 and 16 (1-based) conflict but are ordered: not a race.
	bogus := race.Race{First: paper.Idx(7), Second: paper.Idx(16), Loc: "DwFileAct-obj"}
	if _, err := Minimize(tr, bogus, hb.DefaultConfig()); err == nil {
		t.Fatal("minimize accepted an ordered pair")
	}
}

func TestMinimizeFigure4AlreadyMinimal(t *testing.T) {
	tr := paper.Figure4()
	_, races := detect(t, tr)
	var target *race.Race
	for i := range races {
		if races[i].Category == race.CrossPosted {
			target = &races[i]
		}
	}
	if target == nil {
		t.Fatal("cross-posted race missing")
	}
	res, err := Minimize(tr, *target, hb.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4 is nearly minimal for this race; whatever remains must
	// still be valid and racy.
	if i, err := semantics.ValidateInferred(res.Trace); err != nil {
		t.Fatalf("invalid at %d: %v", i, err)
	}
	_, reduced := detect(t, res.Trace)
	found := false
	for _, r := range reduced {
		if r.Loc == "DwFileAct-obj" && r.Category == race.CrossPosted {
			found = true
		}
	}
	if !found {
		t.Fatalf("race lost: %v", reduced)
	}
}
