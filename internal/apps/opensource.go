package apps

// The ten open-source applications of Table 2. Each profile reproduces the
// concurrency skeleton the paper observed for that application: the
// relative trace size, accessed-field count, thread/queue population,
// asynchronous task volume, and the per-category race counts of Table 3
// (split into true positives and ad-hoc-synchronized false positives).
// The numeric profile constants are calibrated against the published rows;
// TestTable2Shape and TestTable3MatchesPaper keep them honest.

func init() {
	register("Aard Dictionary", newAard)
	register("Music Player", newMusicPlayer)
	register("My Tracks", newMyTracks)
	register("Messenger", newMessenger)
	register("Tomdroid Notes", newTomdroid)
	register("FBReader", newFBReader)
	register("Browser", newBrowser)
	register("OpenSudoku", newOpenSudoku)
	register("K-9 Mail", newK9Mail)
	register("SGTPuzzles", newSGTPuzzles)
}

// newAard models Aard Dictionary (4K LOC): a dictionary UI backed by a
// loader service. The paper found one true multithreaded race — a Service
// object written by the main thread while a background thread reads it,
// letting lookups see empty dictionaries (§6, "A multi-threaded race").
func newAard() App {
	return &profileApp{p: profile{
		name: "Aard Dictionary", loc: 4044,
		maxEvents: 2, maxTests: 12,
		launchFields: 119, rereads: 6,
		mtTrue: 1,
		coWork: 5,
		tasks:  55, // dictionary-load progress posts
	}}
}

// newMusicPlayer models the Music Player application (11K LOC): playback
// control plus download/scan workers. Table 3: 17 cross-posted (4 true),
// 11 co-enabled (10 true), 4 delayed (0 true), and 3 unknown (2 true)
// races.
func newMusicPlayer() App {
	return &profileApp{p: profile{
		name: "Music Player", loc: 11012,
		maxEvents: 2, maxTests: 12,
		launchFields: 420, rereads: 10,
		crossTrue: 4, crossFalse: 13, crossPerTask: 2,
		coTrue: 10, coFalse: 1, coWork: 8,
		delayedFalse: 4, delayedPerTask: 1,
		unkTrue: 2, unkFalse: 1, unkPerTask: 1,
		queueThreads: 1, queueJobs: 6, queueWork: 4, // playback HandlerThread
		tasksMain: 20,
		extra:     idleExtra("Music Player"),
	}}
}

// newMyTracks models My Tracks (26K LOC), Google's GPS tracker: many
// sensor/location/database HandlerThreads (7 queue threads in the paper's
// run) and only three races, mostly false positives.
func newMyTracks() App {
	return &profileApp{p: profile{
		name: "My Tracks", loc: 26146,
		maxEvents: 2, maxTests: 12,
		launchFields: 400, rereads: 14,
		mtFalse:   1,
		crossTrue: 1, crossFalse: 1, crossPerTask: 1,
		coFalse: 1, coWork: 4,
		plainThreads: 8, plainWork: 3, // sensor pollers
		queueThreads: 5, queueJobs: 24, queueWork: 1,
		tasksMain: 33,
		// The recording Service plus the periodic GPS timer (the timer
		// thread is the seventh queue thread of the paper's run).
		extra: trackingServiceExtra(3),
	}}
}

// newMessenger models the Messenger application (27K LOC): conversation
// lists backed by database Cursors. The paper's single-threaded
// cross-posted races on the Cursor and on CursorAdapter.mDataValid /
// mRowIDColumn (§6) shape the cross-posted seeds here.
func newMessenger() App {
	return &profileApp{p: profile{
		name: "Messenger", loc: 27593,
		maxEvents: 2, maxTests: 12,
		launchFields: 675, rereads: 12,
		mtTrue:    1,
		crossTrue: 5, crossFalse: 10, crossPerTask: 2,
		coTrue: 3, coFalse: 1, coWork: 6,
		delayedTrue: 2, delayedPerTask: 1,
		plainThreads: 5, plainWork: 4,
		queueThreads: 3, queueJobs: 10, queueWork: 2,
		tasks:     40,
		tasksMain: 6,
		// The list-of-Runnables queue §6 observes in Messenger; its worker
		// is the sixth plain thread.
		extra: customQueueExtra("Messenger", 3),
	}}
}

// newTomdroid models Tomdroid Notes (3K LOC): a small note-taking app
// whose sync engine posts hundreds of tiny tasks (348 in the paper's
// trace, the second-highest task count of Table 2).
func newTomdroid() App {
	return &profileApp{p: profile{
		name: "Tomdroid Notes", loc: 3215,
		maxEvents: 2, maxTests: 12,
		launchFields: 60, rereads: 140,
		crossTrue: 2, crossFalse: 3, crossPerTask: 1,
		coFalse: 1, coWork: 4,
		tasks:     330, // note-sync task storm
		tasksMain: 4,
		extra:     idleExtra("Tomdroid Notes"),
	}}
}

// newFBReader models FBReader (50K LOC): a book reader with many plain
// worker threads. All 22 cross-posted reports were true positives in the
// paper — background loaders posting unsynchronized UI updates.
func newFBReader() App {
	return &profileApp{p: profile{
		name: "FBReader", loc: 50042,
		maxEvents: 2, maxTests: 12,
		launchFields: 155, rereads: 62,
		mtFalse:   1,
		crossTrue: 22, crossPerTask: 2,
		coTrue: 4, coFalse: 10, coWork: 6,
		plainThreads: 9, plainWork: 2,
		tasks:     88,
		tasksMain: 6,
		// The custom Runnable queue §6 observes in FBReader.
		extra: customQueueExtra("FBReader", 3),
	}}
}

// newBrowser models the stock Browser (31K LOC). The paper attributes its
// 62 false cross-posted reports to posts by untracked natively-created
// threads; here the ordering those native threads enforce is modeled with
// ad-hoc flags the instrumentation cannot see.
func newBrowser() App {
	return &profileApp{p: profile{
		name: "Browser", loc: 30874,
		maxEvents: 2, maxTests: 12,
		launchFields: 725, rereads: 23,
		mtTrue: 1, mtFalse: 1,
		crossTrue: 2, crossFalse: 62, crossPerTask: 4,
		coWork:       8,
		plainThreads: 9, plainWork: 4,
		queueThreads: 3, queueJobs: 8, queueWork: 3,
		tasks:     36,
		tasksMain: 6,
	}}
}

// newOpenSudoku models OpenSudoku (6K LOC): a puzzle game whose redraw
// loop re-reads the board state heavily (a long trace over few fields).
func newOpenSudoku() App {
	return &profileApp{p: profile{
		name: "OpenSudoku", loc: 6151,
		maxEvents: 2, maxTests: 12,
		launchFields: 276, rereads: 87,
		mtFalse:    1,
		crossFalse: 1, crossPerTask: 1,
		coWork:       5,
		plainThreads: 1, plainWork: 3,
		tasks:     36,
		tasksMain: 4,
	}}
}

// newK9Mail models K-9 Mail (54K LOC): folder synchronization posts the
// highest task count of Table 2 (689). Nine multithreaded reports, two of
// them true.
func newK9Mail() App {
	return &profileApp{p: profile{
		name: "K-9 Mail", loc: 54119,
		maxEvents: 2, maxTests: 12,
		launchFields: 553, rereads: 45,
		mtTrue: 2, mtFalse: 7,
		coFalse: 1, coWork: 8,
		plainThreads: 5, plainWork: 8,
		tasks:     660, // per-message sync tasks
		tasksMain: 8,
		// Folder synchronization as an IntentService; its worker is the
		// second queue thread of the paper's run.
		extra: syncServiceExtra(9),
	}}
}

// newSGTPuzzles models SGT Puzzles (2.4K LOC of Java around a native game
// engine): the longest open-source trace, with the most true
// multithreaded races (10 of 11) between the game thread and the UI.
func newSGTPuzzles() App {
	return &profileApp{p: profile{
		name: "SGTPuzzles", loc: 2368,
		maxEvents: 2, maxTests: 12,
		launchFields: 455, rereads: 82,
		mtTrue: 10, mtFalse: 1,
		crossTrue: 8, crossFalse: 13, crossPerTask: 3,
		coWork:       6,
		plainThreads: 1, plainWork: 5, // the game compute thread
		tasksMain: 61,
	}}
}
