package eval

import (
	"errors"
	"testing"

	"droidracer/internal/android"
	"droidracer/internal/apps"
	"droidracer/internal/budget"
	"droidracer/internal/explorer"
)

// brokenApp panics during registration — the worst-behaved app model a
// batch evaluation can meet.
type brokenApp struct{ apps.App }

func (brokenApp) Name() string              { return "Broken" }
func (brokenApp) LOC() int                  { return 0 }
func (brokenApp) Proprietary() bool         { return false }
func (brokenApp) MainActivity() string      { return "Main" }
func (brokenApp) Options() android.Options  { return android.DefaultOptions() }
func (brokenApp) Explore() explorer.Options { return explorer.Options{MaxEvents: 1} }
func (brokenApp) Register(e *android.Env)   { panic("broken app model") }
func (brokenApp) GroundTruth() []apps.SeededRace {
	return nil
}

// TestRunAllIsolatedSurvivesBrokenApp asserts one panicking app model
// fails its own row while the rest of the batch completes.
func TestRunAllIsolatedSurvivesBrokenApp(t *testing.T) {
	good := apps.NewPaperMusicPlayer()
	results, failures := RunAllIsolated([]apps.App{brokenApp{}, good})
	if len(results) != 1 || results[0].App.Name() != good.Name() {
		t.Fatalf("results = %v", results)
	}
	if len(failures) != 1 || failures[0].App != "Broken" {
		t.Fatalf("failures = %v", failures)
	}
	var pe *budget.PanicError
	if !errors.As(failures[0].Err, &pe) {
		t.Fatalf("want recovered panic, got %v", failures[0].Err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic stack missing")
	}
}
