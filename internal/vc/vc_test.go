package vc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValueReadable(t *testing.T) {
	var v VC
	if v.Get(1) != 0 {
		t.Fatal("nil clock component not zero")
	}
	o := New()
	o.Tick(1)
	if !v.LessEq(o) || !v.HappensBefore(o) {
		t.Fatal("nil clock not below ticked clock")
	}
	if v.String() != "[]" {
		t.Fatalf("String = %q", v.String())
	}
}

func TestTickGetSet(t *testing.T) {
	v := New()
	if got := v.Tick(3); got != 1 {
		t.Fatalf("first tick = %d", got)
	}
	if got := v.Tick(3); got != 2 {
		t.Fatalf("second tick = %d", got)
	}
	v.Set(5, 7)
	if v.Get(5) != 7 || v.Get(3) != 2 {
		t.Fatal("Get after Set wrong")
	}
	v.Set(5, 0)
	if _, ok := v[5]; ok {
		t.Fatal("Set(_,0) did not clear the component")
	}
}

func TestJoinCopy(t *testing.T) {
	a, b := New(), New()
	a.Set(1, 5)
	a.Set(2, 1)
	b.Set(2, 3)
	b.Set(3, 4)
	c := a.Copy()
	c.Join(b)
	if c.Get(1) != 5 || c.Get(2) != 3 || c.Get(3) != 4 {
		t.Fatalf("join = %v", c)
	}
	if a.Get(2) != 1 {
		t.Fatal("Copy shares storage")
	}
}

func TestOrderings(t *testing.T) {
	a, b := New(), New()
	a.Set(1, 1)
	b.Set(1, 2)
	if !a.HappensBefore(b) || b.HappensBefore(a) {
		t.Fatal("happens-before on single component wrong")
	}
	b.Set(2, 1)
	a.Set(3, 1)
	if !a.Concurrent(b) || !b.Concurrent(a) {
		t.Fatal("concurrent clocks not detected")
	}
	if !a.Equal(a.Copy()) {
		t.Fatal("clock not equal to its copy")
	}
	if a.Equal(b) {
		t.Fatal("distinct clocks equal")
	}
	if a.HappensBefore(a) {
		t.Fatal("happens-before reflexive")
	}
}

func TestString(t *testing.T) {
	v := New()
	v.Set(2, 1)
	v.Set(1, 3)
	if v.String() != "[1:3 2:1]" {
		t.Fatalf("String = %q", v.String())
	}
}

// TestQuickJoinIsLUB checks that Join computes the least upper bound.
func TestQuickJoinIsLUB(t *testing.T) {
	gen := func(rng *rand.Rand) VC {
		v := New()
		for i := 0; i < rng.Intn(6); i++ {
			v.Set(ID(rng.Intn(5)), uint64(1+rng.Intn(10)))
		}
		return v
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := gen(rng), gen(rng)
		j := a.Copy()
		j.Join(b)
		if !a.LessEq(j) || !b.LessEq(j) {
			return false
		}
		// Any upper bound dominates the join.
		u := a.Copy()
		u.Join(b)
		u.Tick(ID(rng.Intn(5)))
		return j.LessEq(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOrderTrichotomyExclusive checks that exactly one of a<b, b<a,
// equal, concurrent holds for any pair.
func TestQuickOrderTrichotomyExclusive(t *testing.T) {
	gen := func(rng *rand.Rand) VC {
		v := New()
		for i := 0; i < rng.Intn(6); i++ {
			v.Set(ID(rng.Intn(4)), uint64(1+rng.Intn(4)))
		}
		return v
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := gen(rng), gen(rng)
		states := 0
		if a.HappensBefore(b) {
			states++
		}
		if b.HappensBefore(a) {
			states++
		}
		if a.Equal(b) {
			states++
		}
		if a.Concurrent(b) {
			states++
		}
		return states == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
