// Package race implements the data race detection and classification
// algorithm of §4.3 of the DroidRacer paper.
//
// Two operations race when they conflict (same memory location, at least
// one write) and the happens-before relation orders them in neither
// direction. Each race is classified to aid debugging: multithreaded, or —
// for races between two tasks on one thread — co-enabled, delayed,
// cross-posted, or unknown, based on the chains of post operations leading
// to the racing accesses.
package race

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"droidracer/internal/budget"
	"droidracer/internal/hb"
	"droidracer/internal/obs"
	"droidracer/internal/trace"
)

// Category is the paper's race classification.
type Category int

// Race categories, in the order the classifier checks them (§4.3).
const (
	// Multithreaded races involve accesses on two different threads.
	Multithreaded Category = iota
	// CoEnabled single-threaded races stem from two independently enabled
	// environment events (e.g. two UI events on one screen).
	CoEnabled
	// Delayed single-threaded races involve a delayed post whose timing
	// determines the order.
	Delayed
	// CrossPosted single-threaded races involve tasks posted from other
	// threads.
	CrossPosted
	// Unknown races meet none of the above criteria.
	Unknown
)

var categoryNames = [...]string{
	Multithreaded: "multithreaded",
	CoEnabled:     "co-enabled",
	Delayed:       "delayed",
	CrossPosted:   "cross-posted",
	Unknown:       "unknown",
}

// String returns the category name used in reports.
func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// Race is one detected data race: a conflicting, happens-before-unordered
// pair of accesses. First < Second in trace order.
type Race struct {
	First    int
	Second   int
	Loc      trace.Loc
	Category Category
}

// String renders the race compactly, e.g.
// "cross-posted race on DwFileAct-obj: read(t1,...)@15 / write(t1,...)@20".
func (r Race) String() string {
	return fmt.Sprintf("%s race on %s between op %d and op %d", r.Category, r.Loc, r.First, r.Second)
}

// Detector detects and classifies data races over a happens-before graph.
type Detector struct {
	g    *hb.Graph
	info *trace.Info
	cl   *Classifier

	// Parallelism is the number of worker goroutines the per-location
	// conflict scan is sharded across; values ≤ 1 scan serially. The
	// graph and trace annotations are immutable, per-location scans are
	// independent, and the merged result is sorted by (First, Second)
	// before being returned, so the race set is byte-identical to the
	// serial scan at any setting.
	Parallelism int
}

// NewDetector returns a detector for the given graph.
func NewDetector(g *hb.Graph) *Detector {
	return &Detector{g: g, info: g.Info(), cl: NewClassifier(g.Info(), g.OrderedLE)}
}

// Detect returns every race witnessed in the trace, in order of (First,
// Second). This is the paper's exhaustive offline analysis.
func (d *Detector) Detect() []Race {
	races, _ := d.DetectBudgeted(nil)
	return races
}

// DetectBudgeted is Detect under a budget: the checker is polled once per
// candidate access pair. On a trip the races found so far are returned
// (sorted as usual) together with a *budget.Error; the partial list is
// sound — every entry is a real race under the supplied graph — but may
// miss races among unscanned pairs. A nil checker reproduces Detect.
func (d *Detector) DetectBudgeted(ck *budget.Checker) ([]Race, error) {
	start := time.Now()
	tr := d.info.Trace()
	byLoc := make(map[trace.Loc][]int)
	for i, op := range tr.Ops() {
		if op.Kind.IsAccess() {
			byLoc[op.Loc] = append(byLoc[op.Loc], i)
		}
	}
	var races []Race
	var tripErr error
	workers := d.scanWorkers(len(byLoc))
	if workers > 1 {
		races, tripErr = d.detectParallel(byLoc, ck, workers)
	} else {
	scan:
		for loc, accs := range byLoc {
			for x := 0; x < len(accs); x++ {
				a := accs[x]
				for y := x + 1; y < len(accs); y++ {
					if err := ck.Check(); err != nil {
						tripErr = err
						break scan
					}
					b := accs[y]
					if r, ok := d.checkPair(tr, loc, a, b); ok {
						races = append(races, r)
					}
				}
			}
		}
	}
	sort.Slice(races, func(i, j int) bool {
		if races[i].First != races[j].First {
			return races[i].First < races[j].First
		}
		return races[i].Second < races[j].Second
	})
	obs.ParallelPhaseObserve("race-scan", workers, time.Since(start))
	publishScan(races, time.Since(start).Seconds())
	return races, tripErr
}

// checkPair tests one candidate access pair (a < b) and classifies it
// when it races. Pure over the immutable graph and annotations, so the
// sharded scan calls it from worker goroutines.
func (d *Detector) checkPair(tr *trace.Trace, loc trace.Loc, a, b int) (Race, bool) {
	if !tr.Op(a).Conflicts(tr.Op(b)) {
		return Race{}, false
	}
	if d.g.HappensBefore(a, b) || d.g.HappensBefore(b, a) {
		return Race{}, false
	}
	return Race{First: a, Second: b, Loc: loc, Category: d.Classify(a, b)}, true
}

// scanWorkers resolves Parallelism against the workload: no more
// workers than locations to scan.
func (d *Detector) scanWorkers(locs int) int {
	w := d.Parallelism
	if w <= 1 {
		return 1
	}
	if w > locs {
		w = locs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// detectParallel shards the per-location conflict scan across workers.
// Locations are handed out through an atomic cursor over a sorted list
// (per-location cost is wildly uneven — work-stealing beats static
// ranges), each worker appends to a private slice, and the merged
// result is sorted by the caller. The budget checker is not safe for
// concurrent use, so workers poll it behind a mutex every
// checker-rate-limit's worth of pairs; the first trip stops the scan
// and is returned with the partial (still sound) race list.
func (d *Detector) detectParallel(byLoc map[trace.Loc][]int, ck *budget.Checker, workers int) ([]Race, error) {
	tr := d.info.Trace()
	locs := make([]trace.Loc, 0, len(byLoc))
	for loc := range byLoc {
		locs = append(locs, loc)
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })

	var (
		cursor  atomic.Int64
		stop    atomic.Bool
		pollMu  sync.Mutex
		tripErr error
		wg      sync.WaitGroup
	)
	out := make([][]Race, workers)
	poll := func() bool {
		if ck == nil {
			return true
		}
		if stop.Load() {
			return false
		}
		pollMu.Lock()
		defer pollMu.Unlock()
		if stop.Load() {
			return false
		}
		if err := ck.CheckNow(); err != nil {
			tripErr = err
			stop.Store(true)
			return false
		}
		return true
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pairs := 0
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(locs) || stop.Load() {
					return
				}
				loc := locs[i]
				accs := byLoc[loc]
				for x := 0; x < len(accs); x++ {
					a := accs[x]
					for y := x + 1; y < len(accs); y++ {
						if pairs++; pairs%scanPollPairs == 0 && !poll() {
							return
						}
						if r, ok := d.checkPair(tr, loc, a, accs[y]); ok {
							out[w] = append(out[w], r)
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var races []Race
	for _, rs := range out {
		races = append(races, rs...)
	}
	return races, tripErr
}

// scanPollPairs is how many candidate pairs a worker scans between
// polls of the shared budget checker — the same order of magnitude as
// the serial scan's rate-limited Check.
const scanPollPairs = 256

// DetectDeduped returns one representative race per (location, category),
// matching the paper's reporting: "If there are multiple races belonging
// to the same category on the same memory location, DroidRacer reports any
// one of them." The representative is the earliest by trace position, so
// reports are deterministic.
func (d *Detector) DetectDeduped() []Race {
	races, _ := d.DetectDedupedBudgeted(nil)
	return races
}

// DetectDedupedBudgeted is DetectDeduped under a budget; see
// DetectBudgeted for partial-result semantics.
func (d *Detector) DetectDedupedBudgeted(ck *budget.Checker) ([]Race, error) {
	all, err := d.DetectBudgeted(ck)
	type key struct {
		loc trace.Loc
		cat Category
	}
	seen := make(map[key]bool)
	var out []Race
	for _, r := range all {
		k := key{r.Loc, r.Category}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out, err
}

// Classify categorizes the race between the operations at trace indices a
// and b (a < b) per §4.3. It delegates to the shared Classifier with the
// graph's reachability as the ordering oracle; the streaming engine runs
// the same Classifier over its clock snapshots.
func (d *Detector) Classify(a, b int) Category {
	return d.cl.Classify(a, b)
}

// oneSidedOrDistinct implements the "only one of them is defined, or they
// are distinct" condition shared by the delayed and cross-posted criteria.
func oneSidedOrDistinct(a, b int) bool {
	if a < 0 && b < 0 {
		return false
	}
	if a < 0 || b < 0 {
		return true
	}
	return a != b
}

// Summary counts races per category.
type Summary struct {
	Multithreaded int
	CoEnabled     int
	Delayed       int
	CrossPosted   int
	Unknown       int
}

// Total returns the total number of races counted.
func (s Summary) Total() int {
	return s.Multithreaded + s.CoEnabled + s.Delayed + s.CrossPosted + s.Unknown
}

// Summarize tallies races by category.
func Summarize(races []Race) Summary {
	var s Summary
	for _, r := range races {
		switch r.Category {
		case Multithreaded:
			s.Multithreaded++
		case CoEnabled:
			s.CoEnabled++
		case Delayed:
			s.Delayed++
		case CrossPosted:
			s.CrossPosted++
		default:
			s.Unknown++
		}
	}
	return s
}
