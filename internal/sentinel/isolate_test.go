package sentinel

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"droidracer/internal/budget"
	"droidracer/internal/core"
	"droidracer/internal/trace"
)

// workerMarkerEnv gates TestSentinelWorkerProcess: set by the Isolator
// under test, absent in a normal `go test` invocation.
const workerMarkerEnv = "DROIDRACER_SENTINEL_TEST_WORKER"

// TestSentinelWorkerProcess is not a test: it is the worker subprocess
// the isolator tests re-exec this binary into (the standard
// helper-process pattern). It only acts when the marker env is set.
func TestSentinelWorkerProcess(t *testing.T) {
	if os.Getenv(workerMarkerEnv) != "1" {
		t.Skip("not a worker invocation")
	}
	os.Exit(WorkerMain())
}

// testIsolator builds an Isolator that re-execs this test binary into
// TestSentinelWorkerProcess, plus any extra child env (fault clauses).
func testIsolator(extraEnv ...string) *Isolator {
	return &Isolator{
		Exe:      os.Args[0],
		Args:     []string{"-test.run=^TestSentinelWorkerProcess$"},
		Env:      append([]string{workerMarkerEnv + "=1"}, extraEnv...),
		MemLimit: 64 << 20,
		Wall:     time.Minute,
	}
}

// racyTrace is a small trace with one clear multithreaded race.
const racyTrace = `threadinit(t1)
fork(t1,t2)
threadinit(t2)
write(t1,shared)
write(t2,shared)
`

func writeTrace(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "in.trace")
	if err := os.WriteFile(path, []byte(body), 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestIsolatedRunMatchesInProcess(t *testing.T) {
	path := writeTrace(t, racyTrace)
	opts := core.DefaultOptions()
	opts.Parallelism = 1

	res, err := testIsolator().Run(context.Background(), path, opts)
	if err != nil {
		t.Fatalf("isolated run: %v", err)
	}
	tr, err := trace.ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	local, err := core.AnalyzeContext(context.Background(), tr, opts)
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	if len(res.Races) != len(local.Races) {
		t.Fatalf("isolated found %d races, local %d", len(res.Races), len(local.Races))
	}
	for i, r := range res.Races {
		l := local.Races[i]
		if r.First != l.First || r.Second != l.Second || r.Loc != l.Loc || r.Category != l.Category {
			t.Fatalf("race %d differs across the process boundary: %+v vs %+v", i, r, l)
		}
	}
}

func TestIsolatedAnalysisErrorPreserved(t *testing.T) {
	// A malformed trace fails *analysis*, not the sandbox: the original
	// parse-error taxonomy must travel back verbatim so quarantine
	// reasons stay meaningful, and it must NOT classify as a resource
	// death.
	path := writeTrace(t, "not a trace at all\n")
	_, err := testIsolator().Run(context.Background(), path, core.DefaultOptions())
	if err == nil {
		t.Fatal("want error")
	}
	var re *ResourceError
	if errors.As(err, &re) {
		t.Fatalf("analysis error misclassified as resource death: %v", err)
	}
	if !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("parse error lost its shape: %v", err)
	}
}

func TestIsolatedChildOOM(t *testing.T) {
	// child-oom makes the worker allocate unboundedly after parsing; the
	// armed RLIMIT_AS must kill it and the parent must classify the death
	// as a memory class, deterministic (no retries).
	path := writeTrace(t, racyTrace)
	_, err := testIsolator(EnvSentinelFault+"=child-oom").
		Run(context.Background(), path, core.DefaultOptions())
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("got %v, want *ResourceError", err)
	}
	if re.Class != ClassMemLimit && re.Class != ClassOOMKill {
		t.Fatalf("class = %s, want %s or %s (stderr: %s)", re.Class, ClassMemLimit, ClassOOMKill, re.Detail)
	}
	if !re.Deterministic() {
		t.Fatal("resource death must be deterministic")
	}
	if !strings.HasPrefix(re.Error(), "resource: ") {
		t.Fatalf("quarantine reason lacks the resource prefix: %q", re.Error())
	}
}

func TestIsolatedChildPanic(t *testing.T) {
	path := writeTrace(t, racyTrace)
	_, err := testIsolator(EnvSentinelFault+"=child-panic").
		Run(context.Background(), path, core.DefaultOptions())
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("got %v, want *ResourceError", err)
	}
	if re.Class != ClassPanic {
		t.Fatalf("class = %s, want %s (detail: %s)", re.Class, ClassPanic, re.Detail)
	}
}

func TestIsolatedChildHang(t *testing.T) {
	// child-hang stalls the worker forever; the parent's wall watchdog
	// must kill it and report a deadline class, not wait.
	path := writeTrace(t, racyTrace)
	iso := testIsolator(EnvSentinelFault + "=child-hang")
	iso.Wall = 2 * time.Second
	start := time.Now()
	_, err := iso.Run(context.Background(), path, core.DefaultOptions())
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("got %v, want *ResourceError", err)
	}
	if re.Class != ClassDeadline {
		t.Fatalf("class = %s, want %s", re.Class, ClassDeadline)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("watchdog took %v", elapsed)
	}
}

func TestIsolatedParentCancelIsTransient(t *testing.T) {
	// The parent cancelling (shutdown drain) is the fleet's fault, not
	// the input's: the outcome must be a budget cancellation — retried by
	// the next incarnation — never a quarantinable resource error.
	path := writeTrace(t, racyTrace)
	ctx, cancel := context.WithCancel(context.Background())
	iso := testIsolator(EnvSentinelFault + "=child-hang")
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	_, err := iso.Run(ctx, path, core.DefaultOptions())
	be, ok := budget.AsError(err)
	if !ok || !be.Canceled() {
		t.Fatalf("got %v, want a cancelled budget error", err)
	}
	var re *ResourceError
	if errors.As(err, &re) {
		t.Fatalf("cancellation misclassified as resource death: %v", err)
	}
}

func TestClassifyExitTable(t *testing.T) {
	for _, tc := range []struct {
		stderr string
		want   string
	}{
		{"runtime: out of memory: cannot allocate 1048576-byte block\n", ClassMemLimit},
		{"fatal error: out of memory allocating heap arena map\n", ClassMemLimit},
		{"panic: runtime error: index out of range\n", ClassPanic},
		{"something else entirely\n", ClassCrash},
	} {
		re := classifyExit(errors.New("exit status 2"), tc.stderr)
		if re.Class != tc.want {
			t.Errorf("classifyExit(%q) = %s, want %s", tc.stderr, re.Class, tc.want)
		}
		if re.Detail == "" {
			t.Errorf("classifyExit(%q): empty detail", tc.stderr)
		}
	}
}
