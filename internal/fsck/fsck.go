// Package fsck is the offline storage-integrity scanner behind
// `racedet -fsck`: it walks a daemon state directory (journal,
// quarantine) and optionally its spool, verifies every integrity
// commitment the persistence stack makes — journal record checksums and
// sequence continuity, content-key digests of spool and quarantine
// bodies, no stale staging litter — and produces a repair plan. With
// repair enabled it executes the plan: the torn journal tail is
// truncated, a corrupt record and its untrusted suffix are moved into a
// quarantine sidecar before truncation, corrupt bodies move out of the
// sweep's reach, stale temp files are removed.
//
// Unlike journal recovery, which stops at the first problem (a daemon
// must not trust anything past it), the scanner keeps going: an
// operator deciding whether to repair wants the full extent of the
// damage, not its first symptom.
//
// Repair is deliberately conservative about work, not about bytes:
// truncating a corrupt journal suffix forgets completions, but the
// spool still holds those inputs and the restart sweep re-analyzes them
// idempotently (same content, same digest) — whereas trusting a rotted
// record could replay a wrong result forever.
package fsck

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"droidracer/internal/journal"
	"droidracer/internal/storage"
)

// Finding kinds.
const (
	KindJournalTorn      = "journal-torn-tail"
	KindJournalCorrupt   = "journal-corrupt"
	KindSpoolCorrupt     = "spool-corrupt"
	KindQuarantineRotted = "quarantine-corrupt"
	KindStaleTmp         = "stale-tmp"
)

// Finding is one integrity violation with its planned repair.
type Finding struct {
	Kind   string
	Path   string
	Detail string
	// Repair describes the planned (or, after a repair run, executed)
	// fix.
	Repair string
	// Repaired reports whether the fix was executed.
	Repaired bool
}

// Report is the outcome of one scan.
type Report struct {
	Findings []Finding
	// JournalEntries counts valid records across scanned journals;
	// JournalV1 of them carry no checksum (pre-v2) and verify by
	// sequence only.
	JournalEntries int
	JournalV1      int
	// SpoolChecked / SpoolSkipped count content-verified spool bodies
	// and files whose names commit to no key (unverifiable, left alone).
	SpoolChecked      int
	SpoolSkipped      int
	QuarantineChecked int
}

// Clean reports whether the scan found nothing wrong.
func (r *Report) Clean() bool { return len(r.Findings) == 0 }

// Repaired reports whether every finding's repair was executed.
func (r *Report) Repaired() bool {
	for _, f := range r.Findings {
		if !f.Repaired {
			return false
		}
	}
	return true
}

// Options configures a scan.
type Options struct {
	// State is the daemon state directory: its *.journal files and
	// quarantine/ subdirectory are scanned.
	State string
	// Spool, when set, is the spool directory to digest-verify.
	Spool string
	// Repair executes the repair plan instead of only printing it.
	Repair bool
	// Log receives the human-readable plan and actions (nil = discard).
	Log io.Writer
}

// Run scans per opts and returns the report. An error means the scan
// itself could not proceed (unreadable directory), not that damage was
// found — damage is findings.
func Run(opts Options) (*Report, error) {
	log := opts.Log
	if log == nil {
		log = io.Discard
	}
	rep := &Report{}
	ents, err := os.ReadDir(opts.State)
	if err != nil {
		return nil, fmt.Errorf("fsck: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".journal") {
			continue
		}
		if err := scanJournal(filepath.Join(opts.State, e.Name()), opts, rep, log); err != nil {
			return nil, err
		}
	}
	qdir := filepath.Join(opts.State, "quarantine")
	if err := scanBodies(qdir, true, opts, rep, log); err != nil {
		return nil, err
	}
	if opts.Spool != "" {
		if err := scanBodies(opts.Spool, false, opts, rep, log); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// scanJournal verifies one journal file: decodability, sequence
// continuity, and per-record checksums, scanning past the first damage
// to report the full extent. Repair truncates at the first bad offset;
// a corrupt (non-tail) suffix is preserved in a ".corrupt@<offset>"
// sidecar first, because unlike a torn tail it once held acknowledged
// records an operator may want to examine.
func scanJournal(path string, opts Options, rep *Report, log io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("fsck: %w", err)
	}
	defer f.Close()
	var (
		offset   int64
		wantSeq  = 1
		firstBad = int64(-1)
		tornOnly = false
		details  []string
	)
	r := bufio.NewReaderSize(f, 64*1024)
	for {
		line, rerr := r.ReadString('\n')
		if rerr == io.EOF {
			if len(line) > 0 && firstBad < 0 {
				firstBad = offset
				tornOnly = true
				details = append(details, fmt.Sprintf("unterminated torn tail (%d bytes) at offset %d", len(line), offset))
			}
			break
		}
		if rerr != nil {
			return fmt.Errorf("fsck: %s: %w", path, rerr)
		}
		var e journal.Entry
		uerr := json.Unmarshal([]byte(line), &e)
		switch {
		case uerr != nil:
			if firstBad < 0 {
				firstBad = offset
				details = append(details, fmt.Sprintf("undecodable record at offset %d", offset))
			}
		case firstBad < 0 && e.Seq != wantSeq:
			firstBad = offset
			details = append(details, fmt.Sprintf("out-of-sequence record at offset %d (want seq %d, got %d)", offset, wantSeq, e.Seq))
		case !e.ChecksumOK():
			if firstBad < 0 {
				firstBad = offset
			}
			details = append(details, fmt.Sprintf("checksum mismatch at offset %d (seq %d: recorded %s, computed %s)",
				offset, e.Seq, e.CRC, e.Checksum()))
		default:
			if firstBad < 0 {
				rep.JournalEntries++
				if e.CRC == "" {
					rep.JournalV1++
				}
				wantSeq++
			}
		}
		offset += int64(len(line))
	}
	if firstBad < 0 {
		fmt.Fprintf(log, "fsck: %s: %d record(s) ok (%d unchecksummed v1)\n", path, rep.JournalEntries, rep.JournalV1)
		return nil
	}
	// An undecodable or unterminated final line is the ordinary torn
	// tail; anything else is corruption.
	kind := KindJournalCorrupt
	if tornOnly {
		kind = KindJournalTorn
	}
	fnd := Finding{
		Kind:   kind,
		Path:   path,
		Detail: strings.Join(details, "; "),
	}
	if kind == KindJournalTorn {
		fnd.Repair = fmt.Sprintf("truncate to %d bytes", firstBad)
	} else {
		fnd.Repair = fmt.Sprintf("preserve bytes %d.. in %s.corrupt@%d, then truncate to %d bytes "+
			"(forgotten completions re-analyze idempotently from the spool)",
			firstBad, filepath.Base(path), firstBad, firstBad)
	}
	if opts.Repair {
		if err := repairJournal(path, firstBad, kind); err != nil {
			return fmt.Errorf("fsck: repairing %s: %w", path, err)
		}
		fnd.Repaired = true
		fmt.Fprintf(log, "fsck: %s: repaired: %s\n", path, fnd.Repair)
	} else {
		fmt.Fprintf(log, "fsck: %s: %s\n  plan: %s\n", path, fnd.Detail, fnd.Repair)
	}
	rep.Findings = append(rep.Findings, fnd)
	return nil
}

// repairJournal executes the journal repair: sidecar the untrusted
// suffix (corruption only — a torn tail carries nothing acknowledged),
// truncate, fsync file and directory.
func repairJournal(path string, cut int64, kind string) error {
	if kind == KindJournalCorrupt {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		sidecar := fmt.Sprintf("%s.corrupt@%d", path, cut)
		if err := os.WriteFile(sidecar, data[cut:], 0o666); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(cut); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return journal.SyncDir(filepath.Dir(path))
}

// scanBodies digest-verifies the content-named files of a spool or
// quarantine directory. In a spool, corrupt bodies and stale staging
// dotfiles are repairable (moved aside / removed) so a restarted daemon
// sweeps only verifiable work; in the quarantine, corrupt bodies are
// renamed inert — they are already dead letters, the rename only stops
// them masquerading as faithful evidence of the original poison input.
func scanBodies(dir string, isQuarantine bool, opts Options, rep *Report, log io.Writer) error {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("fsck: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		path := filepath.Join(dir, name)
		if strings.HasPrefix(name, ".") {
			if !strings.HasSuffix(name, ".tmp") {
				continue
			}
			// Pre-rename staging litter from a crash mid-accept: the
			// body was never acknowledged (the rename is what makes it
			// real), so removal loses nothing.
			fnd := Finding{Kind: KindStaleTmp, Path: path,
				Detail: "staging temp file left by an interrupted durable write",
				Repair: "remove"}
			if opts.Repair {
				if err := os.Remove(path); err != nil {
					return fmt.Errorf("fsck: %w", err)
				}
				fnd.Repaired = true
				fmt.Fprintf(log, "fsck: %s: removed stale temp file\n", path)
			} else {
				fmt.Fprintf(log, "fsck: %s: stale temp file\n  plan: remove\n", path)
			}
			rep.Findings = append(rep.Findings, fnd)
			continue
		}
		if strings.Contains(name, ".corrupt") {
			// Already marked inert by an earlier repair.
			continue
		}
		if _, keyed := storage.ContentKey(name); !keyed {
			rep.SpoolSkipped++
			continue
		}
		body, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("fsck: %w", err)
		}
		verr := storage.VerifyBody(name, body)
		if isQuarantine {
			rep.QuarantineChecked++
		} else {
			rep.SpoolChecked++
		}
		if verr == nil {
			continue
		}
		fnd := Finding{Path: path, Detail: verr.Error()}
		var dst string
		if isQuarantine {
			fnd.Kind = KindQuarantineRotted
			dst = path + ".corrupt"
			fnd.Repair = fmt.Sprintf("rename to %s (inert)", filepath.Base(dst))
		} else {
			fnd.Kind = KindSpoolCorrupt
			qdir := filepath.Join(opts.State, "quarantine")
			dst = filepath.Join(qdir, name+".corrupt")
			fnd.Repair = fmt.Sprintf("move to %s", dst)
		}
		if opts.Repair {
			if err := os.MkdirAll(filepath.Dir(dst), 0o777); err != nil {
				return fmt.Errorf("fsck: %w", err)
			}
			if err := os.Rename(path, dst); err != nil {
				return fmt.Errorf("fsck: %w", err)
			}
			if err := journal.SyncDir(filepath.Dir(dst)); err != nil {
				return err
			}
			if err := journal.SyncDir(dir); err != nil {
				return err
			}
			fnd.Repaired = true
			fmt.Fprintf(log, "fsck: %s: %s: moved aside\n", path, fnd.Kind)
		} else {
			fmt.Fprintf(log, "fsck: %s: %s\n  plan: %s\n", path, fnd.Detail, fnd.Repair)
		}
		rep.Findings = append(rep.Findings, fnd)
	}
	return nil
}
