package faultinject

// Storage faults model disk-level failures — ENOSPC mid-append, EIO on
// fsync, a short write, a bit flip on read, a failed rename — at the
// storage.FS seam the journal and spool do their I/O through. Like
// kill-points they are armed from the environment, so subprocess chaos
// tests drive them without test hooks in production code:
//
//	DROIDRACER_STORAGE_FAULT=journal.sync:enospc:2 racedetd ...
//
// The spec is a comma-separated list of <scope>.<op>:<kind>[:N[-M]]
// clauses. scope is the consumer ("journal", "spool"); op is one of
// write, sync, read, rename; kind is one of enospc, eio, short, flip,
// fail. A clause activates on the N-th hit of its (scope, op) pair
// (default 1) and — unlike kill-points, which fire exactly once — stays
// active from then on: a full disk does not heal between retries, and a
// fault that healed under retry would make injected corruption
// invisible. An optional -M bound deactivates it after the M-th hit,
// for tests that model a fault clearing (space freed) without a
// process restart.
//
// Production binaries pay one environment lookup per Storage call when
// the variable is unset.

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"droidracer/internal/storage"
)

// EnvStorageFault is the environment variable that arms storage faults.
const EnvStorageFault = "DROIDRACER_STORAGE_FAULT"

// StorageFault is one armed disk-fault clause.
type StorageFault struct {
	// Scope and Op select the injection point: the consumer's FS scope
	// ("journal", "spool") and the file operation (write, sync, read,
	// rename).
	Scope, Op string
	// Kind is the failure injected: enospc, eio, short (half write),
	// flip (one bit flipped on read), fail (generic EIO, for rename).
	Kind string
	// From is the 1-based hit of (Scope, Op) the fault activates on;
	// Until, when non-zero, is the last hit it stays active for.
	From, Until int
}

// ParseStorageFaults parses a DROIDRACER_STORAGE_FAULT spec. Malformed
// clauses are ignored rather than fatal: a chaos harness with a typo'd
// fault should look like no fault, the same way an unknown kill-point
// name never fires.
func ParseStorageFaults(spec string) []StorageFault {
	var out []StorageFault
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.Split(clause, ":")
		dot := strings.IndexByte(parts[0], '.')
		if len(parts) < 2 || dot <= 0 || dot == len(parts[0])-1 {
			continue
		}
		f := StorageFault{Scope: parts[0][:dot], Op: parts[0][dot+1:], Kind: parts[1], From: 1}
		if len(parts) >= 3 {
			rng := parts[2]
			if i := strings.IndexByte(rng, '-'); i >= 0 {
				if m, err := strconv.Atoi(rng[i+1:]); err == nil && m > 0 {
					f.Until = m
				}
				rng = rng[:i]
			}
			if n, err := strconv.Atoi(rng); err == nil && n > 0 {
				f.From = n
			}
		}
		out = append(out, f)
	}
	return out
}

// Storage returns the file layer for the named scope: the real file
// system, or a fault-injecting wrapper when EnvStorageFault arms a
// fault for this scope.
func Storage(scope string) storage.FS {
	spec := os.Getenv(EnvStorageFault)
	if spec == "" {
		return storage.OS
	}
	var faults []StorageFault
	for _, f := range ParseStorageFaults(spec) {
		if f.Scope == scope {
			faults = append(faults, f)
		}
	}
	if len(faults) == 0 {
		return storage.OS
	}
	return NewFaultFS(storage.OS, scope, faults)
}

// Hit counters are package-global, keyed by "<scope>.<op>", so the
// N-th-hit arithmetic survives the short-lived FS handles consumers
// build (one per Create call, say) — mirroring killHits.
var (
	storageMu   sync.Mutex
	storageHits = map[string]int{}
)

// ResetStorageHits clears the hit counters (tests only).
func ResetStorageHits() {
	storageMu.Lock()
	defer storageMu.Unlock()
	storageHits = map[string]int{}
}

// FaultFS is a storage.FS that injects the armed faults of one scope
// and passes everything else through to its base.
type FaultFS struct {
	base   storage.FS
	scope  string
	faults []StorageFault
}

// NewFaultFS wraps base with the given fault clauses (tests construct
// it directly; production goes through Storage and the environment).
func NewFaultFS(base storage.FS, scope string, faults []StorageFault) *FaultFS {
	return &FaultFS{base: base, scope: scope, faults: faults}
}

// active consumes one hit of (scope, op) and reports the fault clause
// in effect for it, if any.
func (f *FaultFS) active(op string) (StorageFault, bool) {
	var armed []StorageFault
	for _, ft := range f.faults {
		if ft.Op == op {
			armed = append(armed, ft)
		}
	}
	if len(armed) == 0 {
		return StorageFault{}, false
	}
	key := f.scope + "." + op
	storageMu.Lock()
	storageHits[key]++
	hit := storageHits[key]
	storageMu.Unlock()
	for _, ft := range armed {
		if hit >= ft.From && (ft.Until == 0 || hit <= ft.Until) {
			return ft, true
		}
	}
	return StorageFault{}, false
}

// errFor materializes a fault clause as an error carrying the matching
// errno, so storage.Kind classifies it exactly like the real failure.
func errFor(ft StorageFault, op string) error {
	errno := syscall.EIO
	if ft.Kind == "enospc" {
		errno = syscall.ENOSPC
	}
	return fmt.Errorf("faultinject: injected %s on %s.%s: %w", ft.Kind, ft.Scope, op, errno)
}

func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (storage.File, error) {
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	data, err := f.base.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if ft, ok := f.active("read"); ok {
		switch ft.Kind {
		case "flip":
			if len(data) > 0 {
				data[len(data)/2] ^= 0x01
			}
		default:
			return nil, errFor(ft, "read")
		}
	}
	return data, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if ft, ok := f.active("rename"); ok {
		return errFor(ft, "rename")
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error { return f.base.Remove(name) }

// faultFile injects write/sync/read faults on one open file.
type faultFile struct {
	storage.File
	fs *FaultFS
}

func (f *faultFile) Write(p []byte) (int, error) {
	if ft, ok := f.fs.active("write"); ok {
		if ft.Kind == "short" {
			// Half the bytes land, then the device gives up — the torn
			// state a real short write leaves behind.
			n, _ := f.File.Write(p[:len(p)/2])
			return n, fmt.Errorf("faultinject: injected short write on %s.write (%d of %d bytes): %w",
				ft.Scope, n, len(p), io.ErrShortWrite)
		}
		return 0, errFor(ft, "write")
	}
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	if ft, ok := f.fs.active("sync"); ok {
		return errFor(ft, "sync")
	}
	return f.File.Sync()
}

func (f *faultFile) Read(p []byte) (int, error) {
	n, err := f.File.Read(p)
	if n > 0 {
		if ft, ok := f.fs.active("read"); ok {
			switch ft.Kind {
			case "flip":
				p[n/2] ^= 0x01
			default:
				return 0, errFor(ft, "read")
			}
		}
	}
	return n, err
}
