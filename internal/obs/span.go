package obs

import (
	"sync"
	"time"
)

// PhaseTiming is one completed phase of a pipeline run: the phase name
// and how long it took. core.Result carries the full list so reports
// can render a per-phase timing table (racedet -phase-timings).
type PhaseTiming struct {
	Phase    string        `json:"phase"`
	Duration time.Duration `json:"duration"`
}

// Phases collects the phase timings of one pipeline run and mirrors
// each observation into the process-wide phase-duration histogram
// (droidracer_phase_duration_seconds{phase=...}). It is safe for
// concurrent use; a nil *Phases is a valid no-op collector, so
// instrumented code never needs to branch on whether timing was
// requested.
type Phases struct {
	mu      sync.Mutex
	timings []PhaseTiming
	reg     *Registry
	rec     *TraceRec
	parent  string
}

// NewPhases returns a collector publishing into the default registry.
func NewPhases() *Phases {
	// Capacity for the full pipeline (parse, validate, annotate,
	// happens-before, race-scan, degrade) without growing.
	return &Phases{reg: Default(), timings: make([]PhaseTiming, 0, 6)}
}

// NewPhasesIn returns a collector publishing into reg (tests).
func NewPhasesIn(reg *Registry) *Phases { return &Phases{reg: reg} }

// AttachTrace mirrors each subsequent phase timing into rec as a
// "phase.<name>" trace span hanging under parent, so one measurement
// feeds both the histogram and the distributed trace.
func (p *Phases) AttachTrace(rec *TraceRec, parent string) {
	if p == nil || rec == nil {
		return
	}
	p.mu.Lock()
	p.rec, p.parent = rec, parent
	p.mu.Unlock()
}

// Span is one in-flight phase measurement; End stops the clock.
type Span struct {
	p     *Phases
	phase string
	start time.Time
	done  bool
}

// Start begins timing a phase. Always pair with End (directly or via
// defer); phases may nest or repeat, every End appends one timing.
func (p *Phases) Start(phase string) *Span {
	return &Span{p: p, phase: phase, start: time.Now()}
}

// End stops the span, records the timing, and returns the duration.
// A second End is a no-op, so `defer sp.End()` composes with an
// explicit End on the happy path.
func (s *Span) End() time.Duration {
	if s == nil || s.done {
		return 0
	}
	s.done = true
	d := time.Since(s.start)
	if s.p != nil {
		s.p.add(s.phase, d)
	}
	return d
}

func (p *Phases) add(phase string, d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.timings = append(p.timings, PhaseTiming{Phase: phase, Duration: d})
	reg, rec, parent := p.reg, p.rec, p.parent
	p.mu.Unlock()
	if rec != nil {
		rec.AddSpan("phase."+phase, parent, time.Now().Add(-d), d)
	}
	// The default-registry mirror is only worth paying for when someone
	// can read it; the timings slice itself (what -phase-timings and
	// Result.Phases consume) is always recorded. Explicit registries
	// (NewPhasesIn) publish unconditionally — the caller asked for them.
	if reg != nil && (reg != Default() || ExporterAttached()) {
		phaseHistogram(reg, phase).ObserveDuration(d)
	}
}

// phaseHists caches the default registry's per-phase histogram series:
// a fresh Phases is created per analysis, and re-resolving the labeled
// series (render labels, registry map, mutex) on every span end costs
// more than the analysis of a small trace.
var phaseHists sync.Map // phase -> *Histogram

func phaseHistogram(reg *Registry, phase string) *Histogram {
	if reg == Default() {
		if h, ok := phaseHists.Load(phase); ok {
			return h.(*Histogram)
		}
	}
	h := reg.Histogram("droidracer_phase_duration_seconds",
		"Wall-clock time per pipeline phase.", DurationBuckets(),
		"phase", phase)
	if reg == Default() {
		phaseHists.Store(phase, h)
	}
	return h
}

// PhaseQuantiles reads the process-wide phase-duration histogram for
// one phase and estimates its p50/p90/p99. ok is false when the phase
// has no observations — e.g. no metrics consumer ever attached, so the
// default-registry mirror never ran.
func PhaseQuantiles(phase string) (p50, p90, p99 time.Duration, ok bool) {
	h := phaseHistogram(Default(), phase)
	if h.Count() == 0 {
		return 0, 0, 0, false
	}
	toDur := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	return toDur(h.Quantile(0.50)), toDur(h.Quantile(0.90)), toDur(h.Quantile(0.99)), true
}

// Record appends an externally measured timing (e.g. a parse done
// before the collector existed), mirroring it into the histogram.
func (p *Phases) Record(phase string, d time.Duration) {
	if p == nil {
		return
	}
	p.add(phase, d)
}

// Timings returns the recorded phases in completion order.
func (p *Phases) Timings() []PhaseTiming {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]PhaseTiming(nil), p.timings...)
}

// Total sums the recorded durations. Nested spans double-count by
// design — Total is a reading aid, not an invariant.
func Total(timings []PhaseTiming) time.Duration {
	var t time.Duration
	for _, pt := range timings {
		t += pt.Duration
	}
	return t
}
