// Package sched is a deterministic cooperative scheduler for simulated
// Android threads. It stands in for the paper's instrumented Dalvik VM
// (§5, Trace Generator): application models run as scheduler-gated
// goroutines, exactly one simulated thread executes at a time, every
// operation is a scheduling point, and each operation is logged in the
// core language of internal/trace.
//
// Determinism: given the same seed, policy, and program, the scheduler
// produces the identical interleaving and therefore the identical trace —
// the property DroidRacer's UI Explorer relies on for backtracking and
// replay. Delayed posts run against a virtual clock that advances only
// when every thread is blocked.
package sched

import (
	"fmt"
	"math/rand"

	"droidracer/internal/trace"
)

// Status is the result of a scheduling run.
type Status int

// Run outcomes.
const (
	// Quiescent: no thread is runnable and no delayed task is pending; the
	// remaining threads wait on empty queues. The driver may inject events.
	Quiescent Status = iota
	// Done: every thread has finished.
	Done
	// Paused: RunSteps exhausted its step budget with work remaining.
	Paused
)

func (s Status) String() string {
	switch s {
	case Done:
		return "done"
	case Paused:
		return "paused"
	default:
		return "quiescent"
	}
}

// Policy chooses the next thread among the runnable ones. Implementations
// must be deterministic functions of their own state and the argument.
type Policy interface {
	// Pick returns an index into the non-empty runnable list.
	Pick(runnable []*Thread) int
}

// RoundRobin cycles through runnable threads in queue order.
type RoundRobin struct{}

// Pick implements Policy.
func (RoundRobin) Pick([]*Thread) int { return 0 }

// RandomPolicy picks uniformly with a seeded generator.
type RandomPolicy struct{ rng *rand.Rand }

// NewRandomPolicy returns a seeded random policy.
func NewRandomPolicy(seed int64) *RandomPolicy {
	return &RandomPolicy{rng: rand.New(rand.NewSource(seed))}
}

// Pick implements Policy.
func (p *RandomPolicy) Pick(runnable []*Thread) int { return p.rng.Intn(len(runnable)) }

// NoisePolicy is a seeded priority-based scheduling policy in the style of
// PCT (probabilistic concurrency testing): every thread receives a random
// priority when first seen, the highest-priority runnable thread always
// runs, and priorities are occasionally demoted at random change points.
// A thread with an unluckily low priority is starved until everything else
// blocks — the scheduling analogue of the paper's
// stall-threads-in-the-debugger race validation. Deterministic for a given
// seed.
type NoisePolicy struct {
	rng   *rand.Rand
	prio  map[*Thread]int
	floor int // priorities below every assigned one, for demotions
}

// NewNoisePolicy returns a seeded noise policy.
func NewNoisePolicy(seed int64) *NoisePolicy {
	return &NoisePolicy{rng: rand.New(rand.NewSource(seed)), prio: make(map[*Thread]int)}
}

// Pick implements Policy.
func (p *NoisePolicy) Pick(runnable []*Thread) int {
	for _, t := range runnable {
		if _, ok := p.prio[t]; !ok {
			p.prio[t] = p.rng.Intn(1 << 20)
		}
	}
	best := 0
	for i := 1; i < len(runnable); i++ {
		if p.prio[runnable[i]] > p.prio[runnable[best]] {
			best = i
		}
	}
	// Random change point: demote the chosen thread below all others so a
	// different ordering unfolds from here.
	if p.rng.Intn(50) == 0 {
		p.floor--
		p.prio[runnable[best]] = p.floor
	}
	return best
}

// PreferPolicy deterministically prefers a specific thread when runnable
// (useful to reorder racy tasks during race validation), delegating to a
// fallback otherwise.
type PreferPolicy struct {
	Prefer   trace.ThreadID
	Fallback Policy
}

// Pick implements Policy.
func (p *PreferPolicy) Pick(runnable []*Thread) int {
	for i, t := range runnable {
		if t.id == p.Prefer {
			return i
		}
	}
	return p.Fallback.Pick(runnable)
}

// Options configure a simulation.
type Options struct {
	// Policy defaults to RoundRobin when nil.
	Policy Policy
	// Record controls trace emission; disabling it measures the
	// uninstrumented run for the §6 overhead experiment.
	Record bool
	// FaultHook, when non-nil, is consulted at every scheduling point
	// (each emitted operation, numbered from 0) before the operation is
	// recorded. A non-nil return injects a fault: the current thread
	// aborts and the run fails with that error as the cause. A panic in
	// the hook is recovered like any simulated-thread panic. The
	// fault-injection harness uses this to test that drivers survive
	// mid-run failures.
	FaultHook func(step int, op trace.Op) error
}

// DefaultOptions records traces under round-robin scheduling.
func DefaultOptions() Options { return Options{Policy: RoundRobin{}, Record: true} }

type eventKind int

const (
	evYield eventKind = iota
	evBlocked
	evFinished
)

type threadEvent struct {
	t    *Thread
	kind eventKind
}

// Sim is one simulated execution. Create with New, add framework threads
// with Spawn, then drive with Run/RunUntilQuiescent and inject events
// between quiescent phases. A Sim is not safe for concurrent driver use.
type Sim struct {
	opts    Options
	tr      *trace.Trace
	nextID  trace.ThreadID
	threads []*Thread
	ready   []*Thread
	events  chan threadEvent
	delayed delayHeap
	seq     int // tiebreaker for equal due times
	now     int64
	locks   map[trace.LockID]*lockState
	flags   map[string]bool
	taskSeq map[string]int
	emitted int
	err     error
	started bool
	closed  bool
}

type lockState struct {
	owner *Thread
	count int
}

// New returns an empty simulation.
func New(opts Options) *Sim {
	if opts.Policy == nil {
		opts.Policy = RoundRobin{}
	}
	return &Sim{
		opts:    opts,
		tr:      &trace.Trace{},
		nextID:  0,
		events:  make(chan threadEvent),
		locks:   make(map[trace.LockID]*lockState),
		flags:   make(map[string]bool),
		taskSeq: make(map[string]int),
	}
}

// Trace returns the trace recorded so far.
func (s *Sim) Trace() *trace.Trace { return s.tr }

// Now returns the virtual clock in milliseconds.
func (s *Sim) Now() int64 { return s.now }

// Err returns the first runtime error (misuse of the concurrency API or a
// deadlock), or nil.
func (s *Sim) Err() error { return s.err }

// FreshTask returns a unique task name derived from base, implementing the
// paper's unique renaming of procedure occurrences.
func (s *Sim) FreshTask(base string) trace.TaskID {
	s.taskSeq[base]++
	if s.taskSeq[base] == 1 {
		return trace.TaskID(base)
	}
	return trace.TaskID(fmt.Sprintf("%s#%d", base, s.taskSeq[base]))
}

// Spawn creates a framework thread (present from the start of the
// execution) running program. It must be called before the first Run.
func (s *Sim) Spawn(name string, program Program) *Thread {
	if s.started {
		panic("sched: Spawn after Run; use Thread.Fork from inside the program")
	}
	t := s.newThread(name)
	t.program = program
	s.makeReady(t)
	go t.main()
	return t
}

func (s *Sim) newThread(name string) *Thread {
	t := &Thread{
		sim:   s,
		id:    s.nextID,
		name:  name,
		grant: make(chan struct{}),
		held:  make(map[trace.LockID]int),
		state: stateNew,
	}
	s.nextID++
	s.threads = append(s.threads, t)
	return t
}

func (s *Sim) makeReady(t *Thread) {
	if t.state == stateReady || t.state == stateDone {
		return
	}
	t.state = stateReady
	s.ready = append(s.ready, t)
}

// wake moves a blocked thread back to the runnable list.
func (s *Sim) wake(t *Thread) {
	if t.state == stateBlocked {
		t.block = blockNone
		s.makeReady(t)
	}
}

// wakeQueueWaiter wakes t if it blocks waiting for queue input.
func (s *Sim) wakeQueueWaiter(t *Thread) {
	if t.state == stateBlocked && t.block == blockQueue {
		s.wake(t)
	}
}

func (s *Sim) emit(op trace.Op) {
	if s.opts.FaultHook != nil {
		step := s.emitted
		s.emitted++
		if err := s.opts.FaultHook(step, op); err != nil {
			s.fail("sched: injected fault at step %d (%s): %w", step, op, err)
		}
	}
	if s.opts.Record {
		s.tr.Append(op)
	}
}

// fail records the first runtime error and aborts the current thread.
func (s *Sim) fail(format string, args ...any) {
	if s.err == nil {
		s.err = fmt.Errorf(format, args...)
	}
	panic(killed{})
}

// RunUntilQuiescent schedules threads until every thread is finished or
// blocked on an empty queue with no delayed task pending. It returns Done
// when all threads finished. Deadlocks (threads blocked on locks or joins
// with nothing runnable) and API misuse surface as errors.
func (s *Sim) RunUntilQuiescent() (Status, error) {
	return s.run(-1)
}

// RunSteps schedules at most maxSteps operations, returning Paused when
// the budget runs out with work remaining. The race verifier uses it to
// inject events in the middle of ongoing work — the paper's
// stall-threads-in-the-debugger methodology.
func (s *Sim) RunSteps(maxSteps int) (Status, error) {
	return s.run(maxSteps)
}

func (s *Sim) run(maxSteps int) (Status, error) {
	s.started = true
	steps := 0
	for s.err == nil {
		if maxSteps >= 0 && steps >= maxSteps {
			return Paused, nil
		}
		steps++
		if len(s.ready) == 0 {
			if s.delayed.Len() > 0 {
				s.advanceClock()
				continue
			}
			allDone := true
			for _, t := range s.threads {
				switch t.state {
				case stateDone:
					continue
				case stateBlocked:
					allDone = false
					if t.block == blockFlag && t.daemon {
						continue // a parked service loop; not a deadlock
					}
					if t.block == blockLock || t.block == blockJoin || t.block == blockAttach || t.block == blockFlag {
						return Quiescent, fmt.Errorf("sched: deadlock: thread t%d (%s) blocked on %v", t.id, t.name, t.block)
					}
				default:
					allDone = false
				}
			}
			if allDone {
				return Done, nil
			}
			return Quiescent, nil
		}
		i := s.opts.Policy.Pick(s.ready)
		t := s.ready[i]
		s.ready = append(s.ready[:i], s.ready[i+1:]...)
		t.state = stateRunning
		// Every operation consumes one virtual millisecond, so delayed
		// tasks come due while other work proceeds — as on a real device.
		s.now++
		s.deliverDue()
		t.grant <- struct{}{}
		ev := <-s.events
		switch ev.kind {
		case evYield:
			s.makeReady(ev.t)
		case evBlocked:
			ev.t.state = stateBlocked
		case evFinished:
			ev.t.state = stateDone
			// Wake joiners so they can observe the exit.
			for _, o := range s.threads {
				if o.state == stateBlocked && o.block == blockJoin {
					s.wake(o)
				}
			}
		}
	}
	return Quiescent, s.err
}

// advanceClock jumps the virtual clock to the earliest pending delayed
// task and delivers everything that came due.
func (s *Sim) advanceClock() {
	if s.delayed.Len() == 0 {
		return
	}
	s.now = s.delayed[0].due
	s.deliverDue()
}

// deliverDue moves every delayed message whose timeout expired into its
// destination queue, waking idle loopers.
func (s *Sim) deliverDue() {
	for s.delayed.Len() > 0 && s.delayed[0].due <= s.now {
		d := s.delayed.pop()
		if d.msg.cancelled {
			continue
		}
		d.dest.queue.push(d.msg)
		s.wakeQueueWaiter(d.dest)
	}
}

// Inject queues a UI input event for the looper thread dest: when the
// looper becomes idle it emits post(dest, task, dest) itself — mirroring
// Android's input dispatch through the looper — and then runs fn as an
// asynchronous task. Call between scheduling runs.
func (s *Sim) Inject(dest *Thread, task trace.TaskID, fn TaskFunc) {
	dest.input = append(dest.input, &message{task: task, fn: fn})
	s.wakeQueueWaiter(dest)
}

// Exec queues a command for a command-loop thread (the binder model): the
// thread executes fn with its own identity, outside any task. Safe to call
// from the driver or from a running thread.
func (s *Sim) Exec(dest *Thread, fn func(*Thread)) {
	dest.cmds = append(dest.cmds, fn)
	s.wakeQueueWaiter(dest)
}

// RequestStop asks every looper and command loop to exit once drained.
// Parked daemons (custom queue workers waiting on flags) are woken so
// they can observe Quitting and return.
func (s *Sim) RequestStop() {
	for _, t := range s.threads {
		t.quit = true
		s.wakeQueueWaiter(t)
		if t.state == stateBlocked && t.block == blockFlag && t.daemon {
			s.wake(t)
		}
	}
}

// Shutdown stops all loops and runs the simulation to completion.
func (s *Sim) Shutdown() error {
	s.RequestStop()
	st, err := s.RunUntilQuiescent()
	if err != nil {
		s.Close()
		return err
	}
	if st != Done {
		s.Close()
		return fmt.Errorf("sched: shutdown left threads blocked")
	}
	return nil
}

// Close force-terminates every thread goroutine. It is safe to call after
// errors and multiple times; traces recorded so far remain readable.
func (s *Sim) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for {
		n := 0
		for _, t := range s.threads {
			if t.state == stateReady || t.state == stateBlocked {
				n++
				t.state = stateRunning
				close(t.grant)
				ev := <-s.events
				ev.t.state = stateDone
			}
		}
		s.ready = s.ready[:0]
		if n == 0 {
			return
		}
	}
}

// Threads returns all threads in creation order.
func (s *Sim) Threads() []*Thread {
	out := make([]*Thread, len(s.threads))
	copy(out, s.threads)
	return out
}
