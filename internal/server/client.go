package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"droidracer/internal/obs"
)

// Client submits traces to a racedetd ingestion endpoint, retrying
// retryable refusals (429/503, transport errors, 5xx) with jittered
// exponential backoff that honors Retry-After when the server sends one.
// The idempotency key is content-derived, so it is identical across
// attempts by construction — a retry of an accepted-but-unanswered
// submission coalesces server-side instead of duplicating work.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:7333".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MaxAttempts bounds submission attempts (default 5).
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff (default 200ms), used
	// when the server sends no Retry-After.
	BaseBackoff time.Duration
	// Seed makes the jitter deterministic for tests (0 = fixed default
	// stream; callers wanting per-process variation pass their own).
	Seed int64
	// Deadline, when positive, is sent as X-Analysis-Deadline.
	Deadline time.Duration
	// Engine, when set, is sent as X-Analysis-Engine and selects the
	// analysis backend ("graph" or "stream") for this submission.
	Engine string
	// ClientID, when set, is sent as X-Client-ID (the rate-limit
	// principal).
	ClientID string
	// RetryableStatus decides which HTTP status codes are worth another
	// attempt. Nil uses the default: 429, every 5xx, and anything below
	// 400. The gateway overrides it to 5xx-only so a backend's 429 (with
	// its honest Retry-After) passes through to the submitting client
	// instead of stalling a forward.
	RetryableStatus func(code int) bool
	// Sleep replaces the interruptible backoff pause in tests.
	Sleep func(time.Duration)
	// Traceparent, when set, is sent as the W3C traceparent header on
	// every attempt, marking the submission's distributed trace sampled
	// (kept by every process it crosses). Mint one with
	// obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID()}.
	Traceparent string
}

// Attempt records one submission attempt for diagnostics: the status
// code (0 for a transport error), the structured rejection reason the
// server sent, the transport error if any, and the backoff actually
// slept before the next attempt (0 on the terminal attempt).
type Attempt struct {
	Code   int
	Reason string
	Err    error
	Wait   time.Duration
}

// Submit posts body to /v1/jobs until it gets a terminal answer.
// Terminal: 200/202 (resp, nil), 422 quarantined (resp, nil — the
// caller inspects Status), and client errors 400/404/413 (resp, error).
// Everything else retries. The returned attempts describe the retry
// history.
func (c *Client) Submit(ctx context.Context, body []byte) (*SubmitResponse, []Attempt, error) {
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	max := c.MaxAttempts
	if max < 1 {
		max = 5
	}
	base := c.BaseBackoff
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	retryable := c.RetryableStatus
	if retryable == nil {
		retryable = func(code int) bool {
			return code == http.StatusTooManyRequests || code < 400 || code >= 500
		}
	}
	rng := rand.New(rand.NewSource(c.Seed))
	key := IdempotencyKey(body)
	var history []Attempt
	for attempt := 1; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			c.BaseURL+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return nil, history, err
		}
		req.Header.Set("Content-Type", "text/plain")
		req.Header.Set("Idempotency-Key", key)
		if c.Deadline > 0 {
			req.Header.Set(DeadlineHeader, c.Deadline.String())
		}
		if c.ClientID != "" {
			req.Header.Set("X-Client-ID", c.ClientID)
		}
		if c.Engine != "" {
			req.Header.Set(EngineHeader, c.Engine)
		}
		if c.Traceparent != "" {
			req.Header.Set(obs.TraceparentHeader, c.Traceparent)
		}
		resp, code, retryAfter, err := doSubmit(hc, req)
		at := Attempt{Code: code, Err: err}
		if resp != nil {
			at.Reason = resp.Reason
		}
		switch {
		case err == nil && (code == http.StatusOK || code == http.StatusAccepted ||
			code == http.StatusUnprocessableEntity):
			history = append(history, at)
			return resp, history, nil
		case err == nil && !retryable(code):
			history = append(history, at)
			return resp, history, fmt.Errorf("server: rejected (%d %s)", code, at.Reason)
		}
		// Retryable: a refused status (429, 503, other 5xx by default) or
		// a transport error.
		if attempt >= max {
			history = append(history, at)
			if err != nil {
				return nil, history, fmt.Errorf("server: %d attempts failed: %w", max, err)
			}
			return resp, history, fmt.Errorf("server: still refused after %d attempts (%d)", max, code)
		}
		wait := retryAfter
		if wait <= 0 {
			// Exponential backoff with full jitter: base·2^(n-1) scaled by
			// a uniform draw, so a burst of retrying clients decorrelates.
			exp := base << (attempt - 1)
			wait = time.Duration(rng.Float64() * float64(exp))
			if wait < base/4 {
				wait = base / 4
			}
		}
		at.Wait = wait
		history = append(history, at)
		if c.Sleep != nil {
			c.Sleep(wait)
			continue
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, history, ctx.Err()
		}
	}
}

// doSubmit performs one attempt, decoding the JSON body and Retry-After.
func doSubmit(hc *http.Client, req *http.Request) (*SubmitResponse, int, time.Duration, error) {
	httpResp, err := hc.Do(req)
	if err != nil {
		return nil, 0, 0, err
	}
	defer httpResp.Body.Close()
	var resp SubmitResponse
	if derr := json.NewDecoder(httpResp.Body).Decode(&resp); derr != nil {
		return nil, httpResp.StatusCode, 0, nil
	}
	retryAfter := time.Duration(0)
	if h := httpResp.Header.Get("Retry-After"); h != "" {
		if secs, perr := strconv.Atoi(h); perr == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return &resp, httpResp.StatusCode, retryAfter, nil
}

// Status fetches the index entry for a job ID. Unknown jobs return
// status "unknown" with a nil error.
func (c *Client) Status(ctx context.Context, id string) (*SubmitResponse, error) {
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	httpResp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	var resp SubmitResponse
	if derr := json.NewDecoder(httpResp.Body).Decode(&resp); derr != nil {
		return nil, fmt.Errorf("server: decoding status: %w", derr)
	}
	return &resp, nil
}
