package server

import (
	"sync"
	"time"
)

// buckets is the per-client token-bucket rate limiter of the admission
// layer. Each client (X-Client-ID header, falling back to the remote
// host) owns one bucket refilled at rate tokens per second up to burst.
// A submission costs one token; an empty bucket rejects with the time
// until the next token, which becomes the Retry-After header.
type buckets struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu sync.Mutex
	m  map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds the per-client map: past this, fully refilled
// buckets (clients idle long enough to be indistinguishable from new
// ones) are evicted. An adversary rotating client IDs degrades to the
// global in-flight limiter, not to unbounded memory.
const maxBuckets = 8192

func newBuckets(rate float64, burst int) *buckets {
	if rate <= 0 {
		rate = 10
	}
	if burst < 1 {
		burst = int(2 * rate)
		if burst < 1 {
			burst = 1
		}
	}
	return &buckets{rate: rate, burst: float64(burst), now: time.Now, m: make(map[string]*bucket)}
}

// take spends one token for client. When the bucket is empty it reports
// false and the wait until a token becomes available.
func (b *buckets) take(client string) (time.Duration, bool) {
	now := b.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	bk, ok := b.m[client]
	if !ok {
		if len(b.m) >= maxBuckets {
			b.evictFull(now)
		}
		bk = &bucket{tokens: b.burst, last: now}
		b.m[client] = bk
	}
	bk.tokens += now.Sub(bk.last).Seconds() * b.rate
	if bk.tokens > b.burst {
		bk.tokens = b.burst
	}
	bk.last = now
	if bk.tokens >= 1 {
		bk.tokens--
		return 0, true
	}
	wait := time.Duration((1 - bk.tokens) / b.rate * float64(time.Second))
	return wait, false
}

// evictFull drops buckets that have refilled completely; called with the
// lock held.
func (b *buckets) evictFull(now time.Time) {
	for client, bk := range b.m {
		if bk.tokens+now.Sub(bk.last).Seconds()*b.rate >= b.burst {
			delete(b.m, client)
		}
	}
}

// estimator tracks an exponentially weighted moving average of analysis
// service time, observed per completed job. Retry-After for a full queue
// is derived from it: depth ahead of the client divided by the worker
// count, times the expected service time — an honest estimate of when a
// queue slot frees up, not a constant.
type estimator struct {
	mu   sync.Mutex
	ewma time.Duration
}

// observe folds one completed job's service time into the average.
func (e *estimator) observe(d time.Duration) {
	if d <= 0 {
		return
	}
	e.mu.Lock()
	if e.ewma == 0 {
		e.ewma = d
	} else {
		e.ewma = time.Duration(0.7*float64(e.ewma) + 0.3*float64(d))
	}
	e.mu.Unlock()
}

// service returns the current estimate, defaulting to one second before
// any observation.
func (e *estimator) service() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ewma == 0 {
		return time.Second
	}
	return e.ewma
}

// queueWait estimates how long until the queue that just rejected a
// submission has a free slot: the rejected depth divided across the
// workers, at the observed service time, clamped to [1s, max]. The
// ceiling matters as much as the estimate: one pathologically slow job
// pollutes the EWMA for a while, and an unclamped hint would tell every
// client to stay away for the full inflated estimate.
func (e *estimator) queueWait(depth, workers int, max time.Duration) time.Duration {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	if max <= 0 {
		max = 5 * time.Minute
	}
	w := time.Duration(float64(e.service()) * (float64(depth)/float64(workers) + 1))
	if w < time.Second {
		w = time.Second
	}
	if w > max {
		w = max
	}
	return w
}

// KeyedMutex serializes work per idempotency key: two concurrent
// submissions of the same body must not both write the spool file and
// double-submit to the pool (and, at the gateway, must not both forward
// and race the result cache). Locks are striped by key hash, so distinct
// traces never contend and memory stays constant.
type KeyedMutex struct {
	stripes [64]sync.Mutex
}

// Lock acquires the stripe for key and returns it for unlocking.
func (k *KeyedMutex) Lock(key string) *sync.Mutex {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	m := &k.stripes[h%uint32(len(k.stripes))]
	m.Lock()
	return m
}
