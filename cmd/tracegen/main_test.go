package main

import (
	"testing"

	"droidracer"
)

func TestParseEvents(t *testing.T) {
	seq, err := parseEvents("click(play); BACK ;text(email=a@b.c);longclick(row);HOME;return;rotate")
	if err != nil {
		t.Fatal(err)
	}
	want := []droidracer.UIEvent{
		{Kind: droidracer.EvClick, Widget: "play"},
		{Kind: droidracer.EvBack},
		{Kind: droidracer.EvText, Widget: "email", Text: "a@b.c"},
		{Kind: droidracer.EvLongClick, Widget: "row"},
		{Kind: droidracer.EvHome},
		{Kind: droidracer.EvReturn},
		{Kind: droidracer.EvRotate},
	}
	if len(seq) != len(want) {
		t.Fatalf("seq = %v", seq)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, seq[i], want[i])
		}
	}
}

func TestParseEventsEmpty(t *testing.T) {
	seq, err := parseEvents("   ")
	if err != nil || seq != nil {
		t.Fatalf("seq=%v err=%v", seq, err)
	}
}

func TestParseEventsErrors(t *testing.T) {
	for _, bad := range []string{
		"tap(play)",
		"click(play",
		"text(email)",
		"click(play);;BACK",
	} {
		if _, err := parseEvents(bad); err == nil {
			t.Errorf("parseEvents(%q): no error", bad)
		}
	}
}
