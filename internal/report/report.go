// Package report renders the evaluation results in the shape of the
// paper's tables, side by side with the published numbers, for the
// benchmark harness and EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
)

// table is a minimal text-table builder with right-aligned columns.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&sb, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&sb, "%*s", widths[i], c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}
