// Package android models the Android runtime environment on top of the
// deterministic scheduler: the main (UI) looper thread, a binder thread
// acting for the ActivityManagerService, component lifecycles driven in
// the orders of internal/lifecycle, UI widgets with input dispatch through
// the looper, Handlers, HandlerThreads, AsyncTasks, Services, Broadcast
// Receivers, and timers.
//
// It is the stand-in for the instrumented Android 4.0 framework of §5 of
// the DroidRacer paper: application models written against this package
// execute under the simulated runtime and produce traces in the core
// language, with enable operations emitted at the instrumentation sites
// the paper describes (lifecycle transitions, UI widget arming, receiver
// registration, timer scheduling).
package android

import (
	"fmt"
	"sort"

	"droidracer/internal/sched"
	"droidracer/internal/trace"
)

// Options configure an environment.
type Options struct {
	// Seed selects the scheduling interleaving (0 uses round-robin).
	Seed int64
	// Record controls trace emission (see sched.Options.Record).
	Record bool
	// BinderThreads is the size of the binder thread pool (≥ 1). IPCs
	// rotate over the pool, as in Android.
	BinderThreads int
	// EnableRotate exposes screen rotation to the UI explorer.
	EnableRotate bool
	// EnableHome exposes HOME press / return to the UI explorer.
	EnableHome bool
	// EnableBack exposes the BACK button to the UI explorer.
	EnableBack bool
	// EnableBroadcasts exposes registered broadcast actions as explorer
	// events (system-sent intents) — the intent injection the paper lists
	// as future work for DroidRacer's testing phase.
	EnableBroadcasts bool
	// FaultHook is passed through to the scheduler (see
	// sched.Options.FaultHook); the fault-injection harness uses it to
	// abort or panic runs at chosen scheduling points.
	FaultHook func(step int, op trace.Op) error
}

// DefaultOptions enables recording, one binder thread, and BACK events.
func DefaultOptions() Options {
	return Options{Record: true, BinderThreads: 1, EnableBack: true}
}

// Env is one simulated Android process plus the slice of the system
// process (binder + ActivityManagerService model) the paper's traces
// capture through enable operations.
type Env struct {
	opts    Options
	sim     *sched.Sim
	main    *sched.Thread
	binders []*sched.Thread
	nextIPC int // rotates over the binder pool

	system map[trace.ThreadID]bool // threads excluded from Table 2 counts

	factories map[string]func() Activity
	stack     []*activityRecord // back stack; top is foreground
	exited    bool

	services  map[string]*serviceRecord
	receivers map[string][]*receiverRecord // by action

	timer *sched.Thread // lazily created timer HandlerThread

	idle []idleEntry // pending MessageQueue idle handlers
}

// NewEnv builds the environment: a binder pool servicing AMS commands and
// the main thread with its task queue and looper.
func NewEnv(opts Options) *Env {
	if opts.BinderThreads < 1 {
		opts.BinderThreads = 1
	}
	// Seeded runs use the noise policy (random scheduling with starvation
	// bursts) so that alternate seeds genuinely reorder asynchronous work;
	// seed 0 is deterministic round-robin.
	var policy sched.Policy = sched.RoundRobin{}
	if opts.Seed != 0 {
		policy = sched.NewNoisePolicy(opts.Seed)
	}
	e := &Env{
		opts:      opts,
		sim:       sched.New(sched.Options{Policy: policy, Record: opts.Record, FaultHook: opts.FaultHook}),
		system:    make(map[trace.ThreadID]bool),
		factories: make(map[string]func() Activity),
		services:  make(map[string]*serviceRecord),
		receivers: make(map[string][]*receiverRecord),
	}
	for i := 0; i < opts.BinderThreads; i++ {
		b := e.sim.Spawn(fmt.Sprintf("binder%d", i), func(t *sched.Thread) { t.CommandLoop() })
		e.binders = append(e.binders, b)
		e.system[b.ID()] = true
	}
	e.main = e.sim.Spawn("main", func(t *sched.Thread) {
		t.AttachQueue()
		t.SetIdleHook(e.dispatchIdleHandlers)
		t.Loop()
	})
	return e
}

// Sim exposes the underlying scheduler (driver-side use only).
func (e *Env) Sim() *sched.Sim { return e.sim }

// Main returns the main (UI) thread.
func (e *Env) Main() *sched.Thread { return e.main }

// Trace returns the trace recorded so far.
func (e *Env) Trace() *trace.Trace { return e.sim.Trace() }

// IsSystemThread reports whether id belongs to the binder pool or another
// runtime-internal thread, which Table 2 excludes from thread counts.
func (e *Env) IsSystemThread(id trace.ThreadID) bool { return e.system[id] }

// SystemThreads returns the IDs of all runtime-internal threads.
func (e *Env) SystemThreads() []trace.ThreadID {
	var out []trace.ThreadID
	for id := range e.system {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// binder returns the binder thread servicing the next IPC, rotating over
// the pool deterministically.
func (e *Env) binder() *sched.Thread {
	b := e.binders[e.nextIPC%len(e.binders)]
	e.nextIPC++
	return b
}

// amsExec runs fn on a binder thread on behalf of the
// ActivityManagerService. Callable from the driver or from inside any
// simulated thread. Binder commands target the main looper, so they wait
// for its queue first — in Android the main looper exists before any IPC
// reaches the application.
func (e *Env) amsExec(fn func(t *sched.Thread)) {
	e.sim.Exec(e.binder(), func(t *sched.Thread) {
		t.WaitQueue(e.main)
		fn(t)
	})
}

// RegisterActivity registers an activity class under name. The factory
// runs for every (re)launch, mirroring Android re-instantiating activities
// on configuration changes.
func (e *Env) RegisterActivity(name string, factory func() Activity) {
	e.factories[name] = factory
}

// Run drives the simulation until quiescence, surfacing scheduler errors.
func (e *Env) Run() error {
	_, err := e.sim.RunUntilQuiescent()
	if err != nil {
		e.sim.Close()
	}
	return err
}

// RunSteps drives at most n scheduling steps (see sched.Sim.RunSteps).
func (e *Env) RunSteps(n int) (sched.Status, error) {
	st, err := e.sim.RunSteps(n)
	if err != nil {
		e.sim.Close()
	}
	return st, err
}

// Shutdown stops all loopers and runs to completion.
func (e *Env) Shutdown() error { return e.sim.Shutdown() }

// Close force-releases all simulation goroutines.
func (e *Env) Close() { e.sim.Close() }

// Foreground returns the foreground activity record, or nil.
func (e *Env) foreground() *activityRecord {
	if len(e.stack) == 0 {
		return nil
	}
	return e.stack[len(e.stack)-1]
}

// Exited reports whether the user backed out of the root activity.
func (e *Env) Exited() bool { return e.exited }

// EventKind classifies UI-explorer-visible events.
type EventKind int

// Event kinds the explorer can fire.
const (
	EvClick EventKind = iota
	EvLongClick
	EvText
	EvBack
	EvHome
	EvReturn
	EvRotate
	EvBroadcast
)

func (k EventKind) String() string {
	switch k {
	case EvClick:
		return "click"
	case EvLongClick:
		return "long-click"
	case EvText:
		return "text"
	case EvBack:
		return "BACK"
	case EvHome:
		return "HOME"
	case EvReturn:
		return "return"
	case EvRotate:
		return "rotate"
	case EvBroadcast:
		return "broadcast"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// UIEvent is one fireable event on the current screen.
type UIEvent struct {
	Kind   EventKind
	Widget string // widget name for Click/LongClick/Text
	Text   string // input value for Text events
}

// String renders the event for sequence logs, e.g. "click(play)".
func (ev UIEvent) String() string {
	switch ev.Kind {
	case EvClick, EvLongClick, EvBroadcast:
		return fmt.Sprintf("%s(%s)", ev.Kind, ev.Widget)
	case EvText:
		return fmt.Sprintf("text(%s=%q)", ev.Widget, ev.Text)
	default:
		return ev.Kind.String()
	}
}

// EnabledEvents returns the events the explorer may fire now, in a
// deterministic order: widget events in registration order, then
// lifecycle events. Must be called at quiescence.
func (e *Env) EnabledEvents() []UIEvent {
	if e.exited {
		return nil
	}
	fg := e.foreground()
	if fg == nil {
		return nil
	}
	if fg.stopped {
		// Background activity: only returning to the app is meaningful.
		if e.opts.EnableHome {
			return []UIEvent{{Kind: EvReturn}}
		}
		return nil
	}
	var out []UIEvent
	for _, w := range fg.widgets {
		if !w.enabled || w.armed == "" {
			continue
		}
		switch w.kind {
		case EvClick, EvLongClick:
			out = append(out, UIEvent{Kind: w.kind, Widget: w.name})
		case EvText:
			for _, v := range w.inputs {
				out = append(out, UIEvent{Kind: EvText, Widget: w.name, Text: v})
			}
		}
	}
	if e.opts.EnableBack && fg.destroyArmed != "" {
		out = append(out, UIEvent{Kind: EvBack})
	}
	if e.opts.EnableHome && fg.stopArmed != "" {
		out = append(out, UIEvent{Kind: EvHome})
	}
	if e.opts.EnableRotate && fg.rotateArmed != "" {
		out = append(out, UIEvent{Kind: EvRotate})
	}
	if e.opts.EnableBroadcasts {
		for _, action := range e.registeredActions() {
			out = append(out, UIEvent{Kind: EvBroadcast, Widget: action})
		}
	}
	return out
}

// registeredActions returns the currently registered broadcast actions,
// sorted for deterministic exploration.
func (e *Env) registeredActions() []string {
	var out []string
	for action, recs := range e.receivers {
		for _, r := range recs {
			if r.registered && r.armed != "" {
				out = append(out, action)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// sortedServiceNames returns service names deterministically.
func (e *Env) sortedServiceNames() []string {
	names := make([]string, 0, len(e.services))
	for n := range e.services {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
