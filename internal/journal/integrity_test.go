package journal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"droidracer/internal/faultinject"
	"droidracer/internal/storage"
)

// armStorageFault arms a storage-fault spec for this test and resets
// the global hit counters so earlier tests' I/O does not shift the
// N-th-hit arithmetic.
func armStorageFault(t *testing.T, spec string) {
	t.Helper()
	faultinject.ResetStorageHits()
	t.Setenv(faultinject.EnvStorageFault, spec)
	t.Cleanup(faultinject.ResetStorageHits)
}

func TestAppendWritesChecksummedRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.journal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append("seq", payload{Key: "k", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.CRC == "" {
			t.Fatalf("entry %d written without a checksum", e.Seq)
		}
		if !e.ChecksumOK() {
			t.Fatalf("entry %d checksum does not verify", e.Seq)
		}
	}
}

// TestBitFlippedMiddleRecordDetected is the WAL v2 regression test: a
// corrupted record that is still valid JSON with an intact sequence
// number — invisible to decode- and seq-based recovery — must be caught
// by the checksum, stop recovery at the prefix, and make Create refuse
// the journal.
func TestBitFlippedMiddleRecordDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.journal")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append("seq", payload{Key: "k", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Rot one digit inside the middle record's payload: "n":1 becomes
	// "n":9. The line still decodes, seq is still 2 — only the CRC
	// knows.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(raw), `"n":1`, `"n":9`, 1)
	if mutated == string(raw) {
		t.Fatal("test setup: payload pattern not found")
	}
	if err := os.WriteFile(path, []byte(mutated), 0o666); err != nil {
		t.Fatal(err)
	}
	entries, stats, err := RecoverStats(path)
	if err == nil {
		t.Fatal("bit-flipped middle record recovered without error")
	}
	var ce *storage.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *storage.CorruptError, got %T: %v", err, err)
	}
	if ce.Seq != 2 {
		t.Fatalf("corruption located at seq %d, want 2", ce.Seq)
	}
	if stats.Corrupt != 1 || stats.Entries != 1 || len(entries) != 1 {
		t.Fatalf("stats %+v entries %d: want the 1-entry prefix and Corrupt=1", stats, len(entries))
	}
	// A daemon must not open (and silently truncate) a corrupt journal:
	// everything from seq 2 on was acknowledged, durable history.
	if _, err := Create(path); err == nil {
		t.Fatal("Create opened a corrupt journal")
	}
}

func TestUndecodableMiddleIsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.journal")
	body := `{"seq":1,"type":"a"}` + "\n" + "####garbage####\n" + `{"seq":3,"type":"c"}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o666); err != nil {
		t.Fatal(err)
	}
	_, stats, err := RecoverStats(path)
	var ce *storage.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("undecodable middle with a valid suffix must be corrupt, got %v", err)
	}
	if stats.Corrupt != 1 || stats.Entries != 1 {
		t.Fatalf("stats %+v, want 1 valid entry and Corrupt=1", stats)
	}
}

// TestV1V2MixedJournalReplay proves backward compatibility: a journal
// begun before checksums (no crc field) continues under a v2 writer and
// replays end to end, verifying only the records that carry a CRC.
func TestV1V2MixedJournalReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.journal")
	v1 := `{"seq":1,"type":"seq","data":{"key":"k","n":0}}` + "\n" +
		`{"seq":2,"type":"seq","data":{"key":"k","n":1}}` + "\n"
	if err := os.WriteFile(path, []byte(v1), 0o666); err != nil {
		t.Fatal(err)
	}
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := w.AppendSeq("seq", payload{Key: "k", N: 2}); err != nil || seq != 3 {
		t.Fatalf("append after v1 prefix: seq=%d err=%v", seq, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("recovered %d entries, want 3", len(entries))
	}
	if entries[0].CRC != "" || entries[1].CRC != "" {
		t.Fatal("v1 records grew checksums they were not written with")
	}
	if entries[2].CRC == "" || !entries[2].ChecksumOK() {
		t.Fatal("v2 record appended after a v1 prefix is unchecksummed")
	}
	var p payload
	if err := entries[2].Decode(&p); err != nil || p.N != 2 {
		t.Fatalf("payload %+v err %v", p, err)
	}
}

// TestSyncFailurePoisonsWriter pins the fsyncgate rule: one failed
// fsync and the writer never claims durability again.
func TestSyncFailurePoisonsWriter(t *testing.T) {
	// Hit 1 is Create's own truncation sync; the fault bites from the
	// first post-open barrier on.
	armStorageFault(t, "journal.sync:eio:2")
	w, err := Create(filepath.Join(t.TempDir(), "job.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append("seq", payload{N: 0}); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("want injected EIO from sync, got %v", err)
	}
	if err := w.Err(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("writer not poisoned after failed sync: %v", err)
	}
	seq, err := w.AppendSeq("seq", payload{N: 1})
	if seq != 0 || !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append on poisoned writer: seq=%d err=%v", seq, err)
	}
	if err := w.Sync(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("sync on poisoned writer: %v", err)
	}
}

// TestChunkBoundarySyncFailureReturnsSeqAndError audits the AppendSeq
// contract: the assigned number comes back (the entry reached the
// file), but so does the error — and the writer is poisoned, so the
// caller cannot mistake the entry for durable.
func TestChunkBoundarySyncFailureReturnsSeqAndError(t *testing.T) {
	armStorageFault(t, "journal.sync:eio:2")
	w, err := Create(filepath.Join(t.TempDir(), "job.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.SetChunk(1)
	seq, err := w.AppendSeq("seq", payload{N: 0})
	if seq != 1 {
		t.Fatalf("assigned seq = %d, want 1", seq)
	}
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("chunk-boundary sync failure not reported: %v", err)
	}
	if w.Err() == nil {
		t.Fatal("writer usable after failed chunk-boundary fsync")
	}
}

// TestCloseReportsSyncError: the final sync failure surfaces from Close
// (distinct from a close failure), so shutdown logs say "your last
// entries are not durable" rather than nothing.
func TestCloseReportsSyncError(t *testing.T) {
	armStorageFault(t, "journal.sync:eio:2")
	w, err := Create(filepath.Join(t.TempDir(), "job.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append("seq", payload{N: 0}); err != nil {
		t.Fatal(err)
	}
	err = w.Close()
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("Close swallowed the final sync error: %v", err)
	}
	if !strings.Contains(err.Error(), "fsync") {
		t.Fatalf("error %q does not identify the failing sync", err)
	}
}
