package apps

import (
	"droidracer/internal/android"
	"droidracer/internal/explorer"
	"droidracer/internal/race"
)

// profile declares the concurrency skeleton of one modeled application:
// how much state its startup touches, which worker threads and task queues
// it creates, how chatty its asynchronous messaging is, and how many races
// of each category it harbors (split into genuinely reorderable ones and
// ad-hoc-synchronized false positives). The per-app files instantiate one
// profile each, tuned so the resulting trace statistics land in the same
// regime as the paper's Table 2 row.
type profile struct {
	name        string
	loc         int
	proprietary bool

	// Exploration bounds for the representative test.
	maxEvents int
	maxTests  int

	// launchFields is the number of object fields the startup path
	// initializes; rereads re-scans them (list redraws, cache hits).
	launchFields int
	rereads      int

	// Race seeds per category: {true positives, false positives}, plus
	// task bundling width for the post-based categories.
	mtTrue, mtFalse           int
	crossTrue, crossFalse     int
	crossPerTask              int
	coTrue, coFalse           int
	coWork                    int
	delayedTrue, delayedFalse int
	delayedPerTask            int
	unkTrue, unkFalse         int
	unkPerTask                int

	// Background structure.
	plainThreads, plainWork            int
	queueThreads, queueJobs, queueWork int
	tasks                              int // posted from a dedicated pump thread
	tasksMain                          int // self-posted by the main thread (no extra thread)

	// extra hooks app-specific behavior into onResume.
	extra func(c *android.Ctx)
}

// app wraps a profile into the App interface.
type profileApp struct {
	p profile
}

// Name implements App.
func (a *profileApp) Name() string { return a.p.name }

// LOC implements App.
func (a *profileApp) LOC() int { return a.p.loc }

// Proprietary implements App.
func (a *profileApp) Proprietary() bool { return a.p.proprietary }

// MainActivity implements App.
func (a *profileApp) MainActivity() string { return a.p.name + "Activity" }

// Options implements App.
func (a *profileApp) Options() android.Options { return android.DefaultOptions() }

// Explore implements App.
func (a *profileApp) Explore() explorer.Options {
	return explorer.Options{MaxEvents: a.p.maxEvents, MaxTests: a.p.maxTests}
}

// GroundTruth implements App: the seeded true races, named by the seed
// blocks' location scheme. Proprietary apps return nil — their races were
// not triaged in the paper either.
func (a *profileApp) GroundTruth() []SeededRace {
	if a.p.proprietary {
		return nil
	}
	var out []SeededRace
	add := func(block string, n int, cat race.Category) {
		for _, l := range raceLocs(a.p.name, block, n) {
			out = append(out, SeededRace{Loc: l, Category: cat, Note: block + " seed"})
		}
	}
	add("mt", a.p.mtTrue, race.Multithreaded)
	add("cross", a.p.crossTrue, race.CrossPosted)
	add("co", a.p.coTrue, race.CoEnabled)
	add("delayed", a.p.delayedTrue, race.Delayed)
	add("unk", a.p.unkTrue, race.Unknown)
	return out
}

// Register implements App.
func (a *profileApp) Register(e *android.Env) {
	e.RegisterActivity(a.MainActivity(), func() android.Activity {
		return &profileActivity{p: &a.p}
	})
}

// profileActivity drives the profile through the activity lifecycle.
type profileActivity struct {
	android.BaseActivity
	p *profile
}

func (pa *profileActivity) OnCreate(c *android.Ctx) {
	p := pa.p
	// Startup initializes the app's object graph.
	fieldSweep(c, p.name+".init", p.launchFields)
	// Widgets: the co-enabled pair exists even with zero co seeds so that
	// every model has UI events to explore.
	coEnabledButtons(c, p.name, p.coTrue, p.coFalse, p.coWork)
}

func (pa *profileActivity) OnResume(c *android.Ctx) {
	p := pa.p
	for i := 0; i < p.rereads; i++ {
		readSweep(c, p.name+".init", p.launchFields)
	}
	if n := p.mtTrue + p.mtFalse; n > 0 {
		seedMTBatch(c, p.name, p.mtTrue, p.mtFalse)
	}
	if n := p.crossTrue + p.crossFalse; n > 0 {
		seedCrossBatch(c, p.name, p.crossTrue, p.crossFalse, p.crossPerTask)
	}
	if n := p.delayedTrue + p.delayedFalse; n > 0 {
		seedDelayedBatch(c, p.name, p.delayedTrue, p.delayedFalse, p.delayedPerTask)
	}
	if n := p.unkTrue + p.unkFalse; n > 0 {
		seedUnknownBatch(c, p.name, p.unkTrue, p.unkFalse, p.unkPerTask)
	}
	if p.plainThreads > 0 {
		plainWorkers(c, p.name+".worker", p.plainThreads, p.plainWork)
	}
	if p.queueThreads > 0 {
		queueWorkers(c, p.name+".hthread", p.queueThreads, p.queueJobs, p.queueWork)
	}
	if p.tasks > 0 {
		busyTasks(c, p.name+".pump", p.tasks)
	}
	if p.tasksMain > 0 {
		busyTasksMain(c, p.name+".self", p.tasksMain)
	}
	if p.extra != nil {
		p.extra(c)
	}
}
