package trace

import (
	"bytes"
	"strings"
	"testing"
)

// fuzzSeedOps covers every opcode once; the checked-in corpus under
// testdata/fuzz adds whole traces and mutated variants.
var fuzzSeedOps = []string{
	"threadinit(t1)",
	"threadexit(t1)",
	"attachQ(t1)",
	"loopOnQ(t1)",
	"fork(t1,t2)",
	"join(t1,t2)",
	"post(t0,LAUNCH_ACTIVITY,t1)",
	"postf(t1,onPlayClick,t1)",
	"postd(t1,tick,t1,250)",
	"begin(t1,LAUNCH_ACTIVITY)",
	"end(t1,LAUNCH_ACTIVITY)",
	"enable(t1,onPlayClick)",
	"cancel(t1,tick)",
	"acquire(t1,L)",
	"release(t1,L)",
	"read(t2,DwFileAct-obj)",
	"write(t1,DwFileAct-obj)",
}

// FuzzParseOp asserts ParseOp never panics, and that every accepted
// operation round-trips: ParseOp(op.String()) reproduces op exactly.
func FuzzParseOp(f *testing.F) {
	for _, s := range fuzzSeedOps {
		f.Add(s)
	}
	f.Add("post(t99999999999999999999,x,t1)")
	f.Add("postd(t1,x,t1,-5)")
	f.Add("read(t1,)")
	f.Add("bogus(t1)")
	f.Fuzz(func(t *testing.T, s string) {
		op, err := ParseOp(s)
		if err != nil {
			return
		}
		back, err := ParseOp(op.String())
		if err != nil {
			t.Fatalf("accepted op %q does not reparse: String()=%q: %v", s, op.String(), err)
		}
		if back != op {
			t.Fatalf("round trip changed the op: %q -> %+v -> %q -> %+v", s, op, op.String(), back)
		}
	})
}

// FuzzParse asserts Parse never panics, and that every accepted trace
// round-trips through Format byte-for-byte at the operation level.
func FuzzParse(f *testing.F) {
	f.Add([]byte(strings.Join(fuzzSeedOps, "\n")))
	f.Add([]byte("# comment\n\nthreadinit(t1)\r\nattachQ(t1)"))
	f.Add([]byte("threadinit(t1)\nthreadinit(t1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Parse(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Format(&buf, tr); err != nil {
			t.Fatalf("Format failed on accepted trace: %v", err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("formatted trace does not reparse: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip changed length: %d -> %d", tr.Len(), back.Len())
		}
		for i, op := range tr.Ops() {
			if back.Op(i) != op {
				t.Fatalf("round trip changed op %d: %+v -> %+v", i, op, back.Op(i))
			}
		}
	})
}
