package apps

import (
	"testing"

	"droidracer/internal/android"
	"droidracer/internal/hb"
	"droidracer/internal/race"
	"droidracer/internal/trace"
)

// ablationTrace runs the ablation workload's BACK test once.
func ablationTrace(t *testing.T) *trace.Trace {
	t.Helper()
	return runSequence(t, NewAblationWorkload(), []android.UIEvent{{Kind: android.EvBack}})
}

// racyLocs analyzes tr under cfg and returns the racy location set.
func racyLocs(t *testing.T, tr *trace.Trace, cfg hb.Config) map[trace.Loc]race.Category {
	t.Helper()
	info, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	out := map[trace.Loc]race.Category{}
	for _, r := range race.NewDetector(hb.Build(info, cfg)).DetectDeduped() {
		out[r.Loc] = r.Category
	}
	return out
}

func TestAblationWorkloadFullRules(t *testing.T) {
	tr := ablationTrace(t)
	locs := racyLocs(t, tr, hb.DefaultConfig())
	// Exactly one real race: the same-queue locked pair.
	if len(locs) != 1 {
		t.Fatalf("racy locs = %v, want only samequeue-lock.data", locs)
	}
	if cat, ok := locs["samequeue-lock.data"]; !ok || cat != race.CrossPosted {
		t.Fatalf("racy locs = %v", locs)
	}
}

// TestAblationEffects disables one rule at a time and checks exactly the
// expected location becomes a false positive.
func TestAblationEffects(t *testing.T) {
	tr := ablationTrace(t)
	base := racyLocs(t, tr, hb.DefaultConfig())
	cases := []struct {
		name    string
		mut     func(*hb.Config)
		addedFP []trace.Loc
	}{
		{"no-fifo", func(c *hb.Config) { c.FIFO = false }, []trace.Loc{"fifo.data"}},
		{"no-nopre", func(c *hb.Config) { c.NoPre = false }, []trace.Loc{"nopre.data"}},
		{"no-enable", func(c *hb.Config) { c.EnableEdges = false }, []trace.Loc{"enable.data"}},
	}
	for _, cse := range cases {
		t.Run(cse.name, func(t *testing.T) {
			cfg := hb.DefaultConfig()
			cse.mut(&cfg)
			got := racyLocs(t, tr, cfg)
			for _, fp := range cse.addedFP {
				if _, ok := got[fp]; !ok {
					t.Errorf("expected false positive on %s missing (got %v)", fp, got)
				}
			}
			// The real race must survive every ablation that weakens the
			// relation.
			if _, ok := got["samequeue-lock.data"]; !ok {
				t.Errorf("real race lost under %s", cse.name)
			}
			// No baseline race should disappear.
			for loc := range base {
				if _, ok := got[loc]; !ok {
					t.Errorf("race on %v disappeared under %s", loc, cse.name)
				}
			}
		})
	}
}

func TestAblationEventOnlyFalsePositives(t *testing.T) {
	tr := ablationTrace(t)
	cfg := hb.DefaultConfig()
	cfg.STOnly = true
	got := racyLocs(t, tr, cfg)
	for _, fp := range []trace.Loc{"lock.data", "post.data"} {
		if _, ok := got[fp]; !ok {
			t.Errorf("event-only should flag %s (cross-thread sync invisible); got %v", fp, got)
		}
	}
}

func TestAblationNaiveMasksRealRace(t *testing.T) {
	tr := ablationTrace(t)
	cfg := hb.DefaultConfig()
	cfg.Naive = true
	got := racyLocs(t, tr, cfg)
	if _, ok := got["samequeue-lock.data"]; ok {
		t.Errorf("naive combination should mask the same-queue lock race; got %v", got)
	}
	// The precise analysis reports it (checked in TestAblationWorkloadFullRules).
}

func TestAblationWholeThreadPOMasksSingleThreadedRaces(t *testing.T) {
	tr := ablationTrace(t)
	cfg := hb.DefaultConfig()
	cfg.WholeThreadPO = true
	got := racyLocs(t, tr, cfg)
	if _, ok := got["samequeue-lock.data"]; ok {
		t.Errorf("whole-thread PO should hide the same-thread race; got %v", got)
	}
}
