package explorer

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"droidracer/internal/android"
	"droidracer/internal/budget"
	"droidracer/internal/race"
	"droidracer/internal/sched"
	"droidracer/internal/trace"
)

// AccessID identifies one racing access robustly across replays. Thread
// IDs are stable across replays because thread creation order is fixed by
// the program structure. It is an alias of race.AccessKey, which trace
// minimization shares.
type AccessID = race.AccessKey

// IdentifyAccess computes the AccessID of the access at index i in tr.
func IdentifyAccess(info *trace.Info, i int) (AccessID, error) {
	return race.KeyOf(info, i)
}

// findAccess locates the trace index matching id, or -1.
func findAccess(info *trace.Info, id AccessID) int {
	return race.FindAccess(info, id)
}

// Verification is the outcome of a reorder-replay attempt.
type Verification struct {
	// Confirmed reports that some replay exhibited the opposite order of
	// the racing accesses — the paper's criterion for a true positive.
	Confirmed bool
	// Seed is the scheduling seed of the confirming replay.
	Seed int64
	// Attempts counts the replays executed.
	Attempts int
	// Rounds counts the retry rounds executed (1 without retries).
	Rounds int
}

// RetryPolicy bounds the retry-with-backoff wrapper around reorder
// replay. Verification is inherently nondeterministic — a schedule may
// deadlock, diverge, or simply not hit the window — so one round of
// seeds is not conclusive; retrying with fresh seed blocks and backoff
// between rounds trades time for confidence deterministically.
type RetryPolicy struct {
	// Retries is the number of additional rounds after the first (0 =
	// a single round, the plain VerifyRace behavior).
	Retries int
	// AttemptsPerRound is the number of scheduling seeds tried per
	// round.
	AttemptsPerRound int
	// BaseBackoff is the pause before the second round; it doubles each
	// round, jittered by up to 50% from the seeded generator so retry
	// timing is reproducible.
	BaseBackoff time.Duration
	// Seed seeds the backoff jitter.
	Seed int64
	// Sleep pauses between rounds; nil means time.Sleep. Tests inject a
	// recorder here.
	Sleep func(time.Duration)
}

// DefaultRetryPolicy retries twice with 10 ms initial backoff.
func DefaultRetryPolicy(attemptsPerRound int) RetryPolicy {
	return RetryPolicy{
		Retries:          2,
		AttemptsPerRound: attemptsPerRound,
		BaseBackoff:      10 * time.Millisecond,
		Seed:             1,
	}
}

// VerifyRace re-executes sequence under varying schedules and event
// timings, looking for an execution in which the two racing accesses of r
// (from origInfo's trace) occur in the opposite order. This automates the
// paper's validation methodology: "we classify only those reported races
// as true positives for which we could produce alternate ordering of racey
// memory accesses than the reported order in the trace" — their
// stall-threads-with-the-debugger procedure becomes mid-run event
// injection under alternate scheduler seeds.
func VerifyRace(factory AppFactory, sequence []android.UIEvent, origInfo *trace.Info, r race.Race, maxAttempts int) (Verification, error) {
	return VerifyRaceWithRetry(factory, sequence, origInfo, r,
		RetryPolicy{AttemptsPerRound: maxAttempts})
}

// VerifyRaceWithRetry is VerifyRace with bounded retry: each round tries
// policy.AttemptsPerRound fresh scheduling seeds (round n uses seeds
// n·AttemptsPerRound+1 … (n+1)·AttemptsPerRound, so no seed repeats),
// backing off between rounds per the policy. It stops at the first
// confirming replay. Errors computing the access identities are
// permanent and returned immediately; per-replay failures (divergence,
// deadlocked schedule) only consume the attempt.
func VerifyRaceWithRetry(factory AppFactory, sequence []android.UIEvent, origInfo *trace.Info, r race.Race, policy RetryPolicy) (Verification, error) {
	return VerifyRaceWithRetryContext(context.Background(), factory, sequence, origInfo, r, policy)
}

// VerifyRaceWithRetryContext is VerifyRaceWithRetry under ctx: the
// context is polled before every retry round and interrupts the backoff
// pause, so a supervisor draining jobs is not held up by a verification
// mid-backoff. On cancellation the rounds completed so far are returned
// together with a *budget.Error whose Canceled() reflects the cause.
func VerifyRaceWithRetryContext(ctx context.Context, factory AppFactory, sequence []android.UIEvent, origInfo *trace.Info, r race.Race, policy RetryPolicy) (Verification, error) {
	if policy.AttemptsPerRound <= 0 {
		return Verification{}, fmt.Errorf("explorer: verify: non-positive attempts per round")
	}
	idA, err := IdentifyAccess(origInfo, r.First)
	if err != nil {
		return Verification{}, err
	}
	idB, err := IdentifyAccess(origInfo, r.Second)
	if err != nil {
		return Verification{}, err
	}
	rng := rand.New(rand.NewSource(policy.Seed))
	backoff := policy.BaseBackoff
	v := Verification{}
	verifyRunsTotal.Inc()
	for round := 0; round <= policy.Retries; round++ {
		if err := ctxErr(ctx); err != nil {
			return v, err
		}
		if round > 0 && backoff > 0 {
			// Jitter by up to 50%, deterministically from the policy seed.
			pause := backoff + time.Duration(rng.Int63n(int64(backoff)/2+1))
			if policy.Sleep != nil {
				policy.Sleep(pause)
			} else if err := sleepCtx(ctx, pause); err != nil {
				return v, err
			}
			backoff *= 2
			// Cancellation may also arrive during an injected test sleep;
			// honor it before burning another round of replays.
			if err := ctxErr(ctx); err != nil {
				return v, err
			}
		}
		v.Rounds++
		if round > 0 {
			verifyRetriesTotal.Inc()
		}
		firstSeed := int64(round)*int64(policy.AttemptsPerRound) + 1
		if verifyRange(factory, sequence, idA, idB, firstSeed, policy.AttemptsPerRound, &v) {
			verifyConfirmedTotal.Inc()
			return v, nil
		}
	}
	return v, nil
}

// ctxErr converts a done context into the pipeline's structured budget
// error so callers can distinguish cancellation from deadline expiry.
func ctxErr(ctx context.Context) error {
	select {
	case <-ctx.Done():
		res := budget.ResourceContext
		if ctx.Err() == context.DeadlineExceeded {
			res = budget.ResourceWallClock
		}
		return &budget.Error{Stage: "verify", Resource: res, Cause: ctx.Err()}
	default:
		return nil
	}
}

// sleepCtx pauses for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctxErr(ctx)
	case <-t.C:
		return nil
	}
}

// verifyRange tries the attempts scheduling seeds starting at firstSeed,
// recording attempts into v and reporting whether one confirmed the
// reorder.
func verifyRange(factory AppFactory, sequence []android.UIEvent, idA, idB AccessID, firstSeed int64, attempts int, v *Verification) bool {
	for seed := firstSeed; seed < firstSeed+int64(attempts); seed++ {
		v.Attempts++
		verifyAttemptsTotal.Inc()
		tr, err := replayJittered(factory, seed, sequence)
		if err != nil {
			// Some schedules may diverge (a racy app can change its own
			// UI, or the forced order deadlocks); count the attempt as
			// unsuccessful.
			continue
		}
		info, err := trace.Analyze(tr)
		if err != nil {
			continue
		}
		a := findAccess(info, idA)
		b := findAccess(info, idB)
		if a < 0 || b < 0 {
			continue
		}
		if b < a {
			v.Confirmed = true
			v.Seed = seed
			return true
		}
	}
	return false
}

// replayJittered re-executes an event sequence firing each event after a
// random bounded amount of progress rather than at quiescence, so events
// can interleave with still-running background work.
func replayJittered(factory AppFactory, seed int64, sequence []android.UIEvent) (*trace.Trace, error) {
	env, err := factory(seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	for i, ev := range sequence {
		// Half the attempts fire as early as possible (maximal overlap
		// with background work); the rest fire after a random amount of
		// progress.
		jitter := 0
		if rng.Intn(2) == 0 {
			jitter = rng.Intn(120)
		}
		if _, err := env.RunSteps(jitter); err != nil {
			return nil, fmt.Errorf("explorer: jittered step %d: %w", i, err)
		}
		// Run until the event becomes fireable, in small quanta so it
		// fires as early as possible; give up at quiescence.
		for !contains(env.EnabledEvents(), ev) {
			st, err := env.RunSteps(3)
			if err != nil {
				return nil, fmt.Errorf("explorer: jittered step %d: %w", i, err)
			}
			if st != sched.Paused && !contains(env.EnabledEvents(), ev) {
				env.Close()
				return nil, fmt.Errorf("explorer: jittered replay divergence at step %d: %v", i, ev)
			}
		}
		if err := env.Fire(ev); err != nil {
			env.Close()
			return nil, fmt.Errorf("explorer: jittered step %d: %w", i, err)
		}
	}
	if err := env.Run(); err != nil {
		return nil, err
	}
	if err := env.Shutdown(); err != nil {
		return nil, err
	}
	return env.Trace(), nil
}
